package pinscope

import (
	"strings"
	"sync"
	"testing"
)

var (
	fOnce  sync.Once
	fStudy *Study
	fErr   error
)

func facadeStudy(t *testing.T) *Study {
	t.Helper()
	fOnce.Do(func() {
		fStudy, fErr = Run(MiniConfig(2024))
	})
	if fErr != nil {
		t.Fatal(fErr)
	}
	return fStudy
}

func TestAllPublicSectionsRender(t *testing.T) {
	s := facadeStudy(t)
	for _, sec := range Sections() {
		out, err := s.Report(sec)
		if err != nil {
			t.Fatalf("section %s: %v", sec, err)
		}
		if len(out) < 30 {
			t.Fatalf("section %s too short: %q", sec, out)
		}
	}
	if _, err := s.Report("nonsense"); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestFullReport(t *testing.T) {
	out := facadeStudy(t).FullReport()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "Figure 5") {
		t.Fatal("full report incomplete")
	}
}

func TestVerdictsConsistentWithTable3(t *testing.T) {
	s := facadeStudy(t)
	pinningByPlatform := map[Platform]int{}
	for _, v := range s.Verdicts() {
		if v.Pinned {
			pinningByPlatform[v.Platform]++
			if len(v.PinnedDomains) == 0 {
				t.Fatalf("app %s pinned without domains", v.AppID)
			}
		} else if len(v.PinnedDomains) != 0 {
			t.Fatalf("app %s not pinned but has pinned domains", v.AppID)
		}
	}
	if pinningByPlatform[Android] == 0 || pinningByPlatform[IOS] == 0 {
		t.Fatalf("no pinning apps found: %v", pinningByPlatform)
	}
}

func TestPinningRateAccessor(t *testing.T) {
	s := facadeStudy(t)
	for _, ds := range []string{"Common", "Popular", "Random"} {
		for _, plat := range []Platform{Android, IOS} {
			rate, err := s.PinningRate(ds, plat)
			if err != nil {
				t.Fatalf("%s/%s: %v", ds, plat, err)
			}
			if rate < 0 || rate > 100 {
				t.Fatalf("%s/%s rate %v", ds, plat, rate)
			}
		}
	}
	if _, err := s.PinningRate("Bogus", Android); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestSleepSweepAndAblationsViaFacade(t *testing.T) {
	s := facadeStudy(t)
	out, err := s.SleepSweep([]float64{15, 30, 60}, 10)
	if err != nil || !strings.Contains(out, "Avg TLS handshakes") {
		t.Fatalf("sweep: %v %q", err, out)
	}
	out, err = s.Ablations(10)
	if err != nil || !strings.Contains(out, "naive-detector") {
		t.Fatalf("ablations: %v %q", err, out)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Seed: 5}
	cc := cfg.toCore()
	if cc.Params.CommonSize != 575 || cc.Params.PopularSize != 1000 {
		t.Fatalf("defaults not applied: %+v", cc.Params)
	}
	if cc.Window != 30 {
		t.Fatalf("window default: %v", cc.Window)
	}
	mini := MiniConfig(5).toCore()
	if mini.Params.PopularCut >= 12000 {
		t.Fatalf("popular cut not scaled: %d", mini.Params.PopularCut)
	}
}

func TestExportDatasetViaFacade(t *testing.T) {
	s := facadeStudy(t)
	var buf strings.Builder
	if err := s.ExportDataset(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"pins_dynamic"`) || !strings.Contains(out, `"pinned_destinations"`) {
		t.Fatalf("export missing fields: %.200s", out)
	}
}

func TestValidationReport(t *testing.T) {
	out := facadeStudy(t).ValidationReport()
	if !strings.Contains(out, "precision") || !strings.Contains(out, "false positives:  0") {
		t.Fatalf("validation report: %s", out)
	}
}

func TestAdviseAppViaFacade(t *testing.T) {
	s := facadeStudy(t)
	var target *Verdict
	for i, v := range s.Verdicts() {
		if v.Pinned {
			vv := s.Verdicts()[i]
			target = &vv
			break
		}
	}
	if target == nil {
		t.Skip("no pinning app in this seed")
	}
	advice, err := s.AdviseApp(target.Platform, target.AppID)
	if err != nil || len(advice) == 0 {
		t.Fatalf("AdviseApp: %v (%d)", err, len(advice))
	}
	if _, err := s.AdviseApp(Android, "nope"); err == nil {
		t.Fatal("unknown app advised")
	}
}
