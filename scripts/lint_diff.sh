#!/bin/sh
# lint_diff.sh — run pinlint against the checked-in baseline: the gate
# fails only on findings not present in lint_baseline.json, so a legacy
# accepted finding cannot block unrelated work while any NEW finding
# still breaks the build. The baseline keys on analyzer+file+message
# (line numbers deliberately excluded), so findings do not churn when
# unrelated edits move code around.
#
# After deliberately fixing or accepting findings, regenerate with
# `make lint-baseline` and commit the result; the diff of the baseline
# file is then the reviewable record of what was accepted.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/pinlint -baseline lint_baseline.json ./...
