#!/bin/sh
# bench_compare.sh — regression gate between benchmark snapshots.
#
# Compares the given snapshot (default BENCH_5.json) against the most recent
# other BENCH_*.json at the repo root. With no previous snapshot this is a
# no-op — the first measured trajectory has nothing to regress against. A
# benchmark present in both snapshots may be up to 25% slower in ns/op
# before the script fails; new or removed benchmarks are reported but never
# fatal. Shell + awk only, reading the one-entry-per-line JSON bench.sh
# emits.
set -eu

cd "$(dirname "$0")/.."

new="${1:-BENCH_5.json}"
if [ ! -f "$new" ]; then
    echo "bench_compare.sh: $new not found (run scripts/bench.sh first)" >&2
    exit 1
fi

# The previous snapshot is the numerically largest BENCH_N.json that is not
# the one under test.
prev=$(ls BENCH_*.json 2>/dev/null | grep -v "^$new\$" | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$prev" ]; then
    echo "bench_compare.sh: no previous BENCH_*.json snapshot; nothing to compare"
    exit 0
fi

echo "==> comparing $new against $prev (fail threshold: +25% ns/op)"
awk -v newfile="$new" -v prevfile="$prev" '
    function record(file, name, ns) {
        if (file == newfile) newns[name] = ns; else prevns[name] = ns
    }
    match($0, /"Benchmark[^"]*"/) {
        name = substr($0, RSTART + 1, RLENGTH - 2)
        if (match($0, /"ns_per_op": [0-9]+/))
            record(FILENAME, name, substr($0, RSTART + 13, RLENGTH - 13) + 0)
    }
    END {
        bad = 0
        for (name in newns) {
            if (!(name in prevns)) {
                printf "  new benchmark %s: %.0f ns/op (no previous value)\n", name, newns[name]
                continue
            }
            # %.0f, not %d: ns/op can exceed 32-bit awk integers.
            ratio = newns[name] / prevns[name]
            printf "  %-34s %14.0f -> %14.0f ns/op  (%+.1f%%)\n", name, prevns[name], newns[name], (ratio - 1) * 100
            if (ratio > 1.25) {
                printf "  REGRESSION: %s is %.0f%% slower than %s\n", name, (ratio - 1) * 100, prevfile
                bad = 1
            }
        }
        for (name in prevns) if (!(name in newns))
            printf "  benchmark %s disappeared (was %.0f ns/op)\n", name, prevns[name]
        exit bad
    }
' "$prev" "$new"
echo "bench_compare.sh: OK"
