#!/bin/sh
# check.sh — the repo's one-command health gate: build, vet, full test
# suite, then a race-detector pass over the packages with real concurrency
# (the study runner's worker pool, the record pipes, the flow tap).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core ./internal/netem ./internal/dynamicanalysis

echo "OK"
