#!/bin/sh
# check.sh — the repo's one-command health gate: gofmt, build, vet, the
# pinlint invariant suite diffed against its checked-in baseline, full
# test suite (shuffled), a race-detector pass over the whole tree (minus
# the slowest fault-injection e2e sweeps), a race-checked network-chaos
# smoke over both shard transports, a one-iteration benchmark smoke, and
# a short fuzz smoke over journal recovery.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

# go vet with an explicit pass list rather than the implicit default set.
# The first three are the load-bearing ones for this codebase and must
# never silently fall out of the gate: copylocks (the study runner and
# record pipes pass sync-bearing structs through worker channels),
# loopclosure (the worker pool and serving tests start goroutines inside
# range loops), and atomic (the snapshot swap path must not mix atomic and
# plain access). The remainder is today's full standard suite, spelled out
# so a toolchain upgrade changing vet's defaults is a visible diff here,
# not a silent behavior change.
echo "==> go vet (explicit pass list)"
go vet -copylocks -loopclosure -atomic \
    -appends -asmdecl -assign -bools -buildtag -cgocall -composites \
    -defers -directive -errorsas -framepointer -httpresponse -ifaceassert \
    -lostcancel -nilfunc -printf -shift -sigchanyzer -slog -stdmethods \
    -stdversion -stringintconv -structtag -testinggoroutine -tests \
    -timeformat -unmarshal -unreachable -unsafeptr -unusedresult ./...

# pinlint runs before the expensive passes: the custom invariant suite
# (detrandonly, mapdeterminism, exportshape, atomicswap, atomicwrite,
# pkiissuance, goroutinelifetime, locksafety, journaldiscipline,
# detrandflow, errdrop) is diffed against the checked-in baseline, so
# only NEW findings fail the gate (see scripts/lint_diff.sh).
echo "==> pinlint (baseline diff)"
./scripts/lint_diff.sh

# -shuffle=on randomizes test and subtest execution order so accidental
# inter-test coupling (shared globals, order-dependent caches) cannot hide.
echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

# The race pass covers the WHOLE tree, not a hand-picked package list: a
# hand-picked list silently loses coverage every time a new package grows
# a goroutine. Only the multi-second fault-injection e2e sweeps are
# skipped under -race — they re-run work the shuffled pass above already
# covered and their cost multiplies badly under the race detector; the
# concurrency they exercise is still raced through the remaining tests of
# the same packages.
echo "==> go test -race ./..."
go test -race -timeout 20m \
    -skip 'TestFaultedStudyIsDeterministicAcrossSchedules|TestStudySurvivesHeavyFaults|TestKillAtEveryFrameBoundaryThenResume|TestDegradationAndQuarantinePaths' \
    ./...

# Network-chaos smoke, race-checked: the transported sharded run must
# merge byte-identical to the single-process study over BOTH transports —
# the simulated network under seeded delay/drop/dup/partition faults plus
# a mid-stream worker death, and real loopback TCP with a worker kill.
# The shuffled pass above already ran these once without -race; this pass
# races the coordinator event loop, the outbox pumps, and the lease
# takeover paths specifically, because those goroutines are exactly where
# a transport regression would hide.
echo "==> network-chaos smoke (-race, sim + loopback TCP)"
go test -race -count=1 \
    -run 'TestShardNetSimMergesByteIdentical|TestShardNetTCPMergesByteIdentical|TestShardNetRerunResumesAfterFleetDeath|TestShardNetDerivedPlanMergesByteIdentical' \
    ./internal/core

# Longitudinal smoke: the mini universe replayed across three root-program
# timeline points (two Android releases plus a public-CA distrust event),
# killed mid-timeline by fault injection while the second point's journal
# is being written, then resumed from the per-point WALs; every resumed
# per-point export must be byte-identical to the uninterrupted sweep's.
echo "==> longitudinal smoke (kill mid-timeline, resume, byte-compare)"
tldir=$(mktemp -d)
trap 'rm -rf "$tldir"' EXIT
pts="froyo,kitkat,distrust-ca-distrust"
go run ./cmd/pinstudy -scale mini -timeline -points "$pts" -export "$tldir/clean.json" > /dev/null
go run ./cmd/pinstudy -scale mini -timeline -points "$pts" -journal "$tldir/wal" \
    -kill-after 40 -kill-torn 5 -kill-at-point kitkat > /dev/null 2>&1 && {
    echo "longitudinal smoke: injected mid-timeline kill did not fire" >&2
    exit 1
}
go run ./cmd/pinstudy -scale mini -timeline -points "$pts" -journal "$tldir/wal" -export "$tldir/resumed.json" > /dev/null
for tag in froyo kitkat distrust-ca-distrust; do
    cmp "$tldir/clean-$tag.json" "$tldir/resumed-$tag.json"
done

# One iteration of every benchmark: proves the suite (including the
# crypto-plane trajectory benches) still runs; numbers are discarded.
echo "==> bench smoke"
./scripts/bench.sh --smoke

# A short native-fuzz smoke over journal recovery: whatever bytes end up
# on disk, Recover must never panic and never return unverified data.
echo "==> go test -fuzz=FuzzJournalRecover (5s smoke)"
go test ./internal/journal -run NONE -fuzz 'FuzzJournalRecover' -fuzztime 5s

echo "OK"
