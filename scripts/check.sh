#!/bin/sh
# check.sh — the repo's one-command health gate: gofmt, build, vet, full
# test suite, then a race-detector pass over the packages with real
# concurrency (the study runner's worker pool, the record pipes, the flow
# tap, the serving layer's snapshot swap).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core ./internal/netem ./internal/dynamicanalysis ./internal/pinserve

echo "OK"
