#!/bin/sh
# bench.sh — the benchmark-trajectory harness for the shared crypto plane.
#
# Modes:
#   ./scripts/bench.sh --smoke   one iteration of every benchmark; proves the
#                                suite still runs (check.sh uses this), emits
#                                nothing.
#   ./scripts/bench.sh           the full trajectory: runs the whole suite
#                                once, then measures the crypto-plane
#                                benchmarks (warm and cold end-to-end study,
#                                chain-store and handshake-memo micro
#                                benches), the sharded-coordinator pair
#                                (single shard vs 4 faulted shards), the
#                                transported sharded run over the simulated
#                                network, and the longitudinal three-point
#                                sweep, and writes BENCH_9.json at the repo
#                                root with ns/op, allocs/op, the warm/cold
#                                speedup, the speedup against the pre-plane
#                                baseline, speedup_vs_single_shard, the
#                                transport-overhead-vs-in-process ratio, and
#                                the longitudinal-vs-three-studies ratio.
#                                Finishes by diffing against the previous
#                                BENCH_*.json snapshot
#                                (scripts/bench_compare.sh).
#
# BASELINE_STUDY_NS is BenchmarkStudyEndToEnd measured at the commit before
# the crypto plane landed, on the reference runner. It prices the plane's
# end-to-end win in the emitted JSON; it is not a gate (bench_compare.sh
# gates against the previous snapshot instead).
set -eu

cd "$(dirname "$0")/.."

BASELINE_STUDY_NS=3086205112
OUT=BENCH_9.json

if [ "${1:-}" = "--smoke" ]; then
    echo "==> bench smoke (-benchtime 1x)"
    go test . -run NONE -bench . -benchtime 1x
    exit 0
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> full benchmark suite (-benchtime 1x)"
go test . -run NONE -bench . -benchtime 1x

echo "==> end-to-end study, warm and cold (-benchtime 3x -benchmem)"
go test . -run NONE -bench 'BenchmarkStudyEndToEnd' -benchtime 3x -benchmem | tee "$raw"

echo "==> crypto-plane micro benches (-benchmem)"
go test . -run NONE -bench 'BenchmarkChainStore$|BenchmarkHandshakeMemo$' -benchmem | tee -a "$raw"

echo "==> sharded coordinator, one shard vs 4 faulted shards (-benchtime 3x -benchmem)"
go test . -run NONE -bench 'BenchmarkStudySingleShard$|BenchmarkStudyShardedEndToEnd$' -benchtime 3x -benchmem | tee -a "$raw"

echo "==> transported sharded run over the simulated network (-benchtime 3x -benchmem)"
go test . -run NONE -bench 'BenchmarkStudyShardNetSim$' -benchtime 3x -benchmem | tee -a "$raw"

echo "==> longitudinal three-point sweep (-benchtime 3x -benchmem)"
go test . -run NONE -bench 'BenchmarkLongitudinalStudy$' -benchtime 3x -benchmem | tee -a "$raw"

# Parse `BenchmarkName  N  123 ns/op  456 B/op  789 allocs/op` lines into the
# snapshot JSON. One "key": value per line so bench_compare.sh can read it
# back with awk alone.
awk -v out="$OUT" -v baseline="$BASELINE_STUDY_NS" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix if present
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op")     ns[name] = $i
            if ($(i + 1) == "allocs/op") allocs[name] = $i
        }
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        if (!("BenchmarkStudyEndToEnd" in ns) || !("BenchmarkStudyEndToEndCold" in ns)) {
            print "bench.sh: end-to-end benchmarks missing from output" > "/dev/stderr"
            exit 1
        }
        if (!("BenchmarkStudySingleShard" in ns) || !("BenchmarkStudyShardedEndToEnd" in ns)) {
            print "bench.sh: sharded benchmarks missing from output" > "/dev/stderr"
            exit 1
        }
        if (!("BenchmarkStudyShardNetSim" in ns)) {
            print "bench.sh: transported sharded benchmark missing from output" > "/dev/stderr"
            exit 1
        }
        if (!("BenchmarkLongitudinalStudy" in ns)) {
            print "bench.sh: longitudinal benchmark missing from output" > "/dev/stderr"
            exit 1
        }
        # %.0f, not %d: ns/op can exceed 32-bit awk integers and micro
        # benches report fractional nanoseconds.
        printf "{\n" > out
        printf "  \"snapshot\": \"BENCH_9\",\n" >> out
        printf "  \"baseline_study_ns_per_op\": %s,\n", baseline >> out
        printf "  \"benchmarks\": {\n" >> out
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "    \"%s\": { \"ns_per_op\": %.0f, \"allocs_per_op\": %.0f }%s\n", \
                name, ns[name], allocs[name], (i < n ? "," : "") >> out
        }
        printf "  },\n" >> out
        printf "  \"speedup_vs_cold\": %.2f,\n", ns["BenchmarkStudyEndToEndCold"] / ns["BenchmarkStudyEndToEnd"] >> out
        printf "  \"speedup_vs_baseline\": %.2f,\n", baseline / ns["BenchmarkStudyEndToEnd"] >> out
        # 4 workers vs 1 on the study workload, including two injected
        # worker deaths, a lease takeover, and the streaming merge. On a
        # single-core runner this sits near 1.0 (the workers only share the
        # one core); on an N-core runner it approaches min(N, 4).
        printf "  \"speedup_vs_single_shard\": %.2f,\n", ns["BenchmarkStudySingleShard"] / ns["BenchmarkStudyShardedEndToEnd"] >> out
        # The same faulted 4-worker workload with every grant, heartbeat,
        # and result crossing the simulated message-framed transport,
        # divided by the in-process channel version. Prices frame
        # encode/decode, the coordinator event loop, and lease takeover
        # over the wire; values near 1.0 mean the transport is not the
        # bottleneck.
        printf "  \"transport_overhead_vs_inprocess\": %.2f,\n", ns["BenchmarkStudyShardNetSim"] / ns["BenchmarkStudyShardedEndToEnd"] >> out
        # Three timeline points against three independent studies: the
        # longitudinal runner builds the world once and re-measures, so a
        # value below 3.0 prices the shared-world and crypto-plane reuse.
        printf "  \"longitudinal_vs_three_studies\": %.2f\n", ns["BenchmarkLongitudinalStudy"] / (3 * ns["BenchmarkStudyEndToEnd"]) >> out
        printf "}\n" >> out
    }
' "$raw"

echo "==> wrote $OUT"
cat "$OUT"

./scripts/bench_compare.sh "$OUT"
