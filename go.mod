module pinscope

go 1.22
