package pinscope

// bench_test.go regenerates every table and figure of the paper from a
// shared study, one benchmark per experiment (see the DESIGN.md index).
// The shared study is built once; each benchmark times the experiment's
// computation (workload generation + measurement aggregation). The heavy
// pipeline stages have their own per-app benchmarks at the bottom.

import (
	"io"
	"os"
	"sync"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/faultinject"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/worldgen"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
	benchErr   error
)

// benchSetup builds one shared mini study for all aggregation benchmarks.
func benchSetup(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = core.Run(core.TestConfig(1234))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

func BenchmarkTable1DatasetOverview(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table1(10)
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkTable2PriorTechniques(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table2()
		if len(rows) < 9 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkTable3Prevalence(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := s.Table3()
		if len(cells) != 6 {
			b.Fatal("wrong cell count")
		}
	}
}

func BenchmarkTable4AndroidCategories(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.TableCategories(appmodel.Android, 10, 2); len(rows) == 0 {
			b.Fatal("no categories")
		}
	}
}

func BenchmarkTable5IOSCategories(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.TableCategories(appmodel.IOS, 10, 2); len(rows) == 0 {
			b.Fatal("no categories")
		}
	}
}

func BenchmarkFigure2CommonSplit(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.Figure2Data()
		if f.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkFigure3BothPlatformHeatmap(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Figure3Data()
	}
}

func BenchmarkFigure4ExclusiveHeatmap(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure4Data()
	}
}

func BenchmarkFigure5DomainSplit(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plat := range appmodel.Platforms {
			_ = s.Figure5Data(plat)
			_ = s.Figure5Stats(plat)
		}
	}
}

func BenchmarkTable6PKIType(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table6()
		if len(rows) != 2 {
			b.Fatal("wrong platform count")
		}
	}
}

func BenchmarkCAvsLeafPins(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.PinTargets()
	}
}

func BenchmarkSPKIvsWholeCert(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rotations()
	}
}

func BenchmarkValidationSubversion(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.ExpiredAccepted() != 0 {
			b.Fatal("expired certificates accepted at pinned destinations")
		}
	}
}

func BenchmarkTable7ThirdPartyFrameworks(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, plat := range appmodel.Platforms {
			_ = s.Table7(plat, 5, 2)
		}
	}
}

func BenchmarkTable8WeakCiphers(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := s.Table8()
		if len(cells) != 6 {
			b.Fatal("wrong cell count")
		}
	}
}

func BenchmarkTable9PII(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table9()
		if len(rows) == 0 {
			b.Fatal("no PII rows")
		}
	}
}

func BenchmarkCircumventionRate(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := s.Circumvention()
		if len(cs) != 2 {
			b.Fatal("wrong platform count")
		}
	}
}

func BenchmarkSleepSweep(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := core.SleepSweep(s.World, 99, []float64{15, 30, 60}, 10)
		if err != nil || len(points) != 3 {
			b.Fatalf("sweep failed: %v", err)
		}
	}
}

// --- ablation benches ---------------------------------------------------------

// benchAblation runs the named detector ablation over a small app sample.
func benchAblation(b *testing.B, name string) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.RunAblations(s.World, 77, 12)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Name == name {
				found = true
			}
		}
		if !found {
			b.Fatalf("ablation %s missing", name)
		}
	}
}

func BenchmarkAblationNaiveDetector(b *testing.B)       { benchAblation(b, "naive-detector") }
func BenchmarkAblationBackgroundExclusion(b *testing.B) { benchAblation(b, "no-background-exclusion") }
func BenchmarkAblationTLS13Heuristic(b *testing.B)      { benchAblation(b, "no-tls13-heuristic") }

func BenchmarkAblationNSCOnly(b *testing.B) {
	// NSC-only static detection (the prior-work technique) vs the full
	// static pipeline, per app.
	s := benchSetup(b)
	var apps []*appmodel.App
	for _, ds := range s.World.DS.All() {
		for _, a := range s.World.Apps(ds) {
			if a.Platform == appmodel.Android {
				apps = append(apps, a)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nsc, full := 0, 0
		for _, a := range apps {
			rep, err := staticanalysis.Analyze(a)
			if err != nil {
				b.Fatal(err)
			}
			if rep.NSCHasPins {
				nsc++
			}
			if rep.HasCertMaterial() {
				full++
			}
		}
		if nsc > full {
			b.Fatal("NSC-only found more than the full pipeline")
		}
	}
}

// --- pipeline micro/meso benches ------------------------------------------------

func BenchmarkWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := worldgen.Build(worldgen.TestParams(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticAnalysisPerApp(b *testing.B) {
	s := benchSetup(b)
	var apps []*appmodel.App
	for _, ds := range s.World.DS.All() {
		apps = append(apps, s.World.Apps(ds)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := apps[i%len(apps)]
		if a.Pkg.Encrypted {
			a.Pkg.DecryptIOS()
		}
		if _, err := staticanalysis.Analyze(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicDetectionPerApp(b *testing.B) {
	// Full differential per-app measurement: baseline run + MITM run +
	// verdicts, on a fresh network per iteration set.
	s := benchSetup(b)
	w := s.World
	var apps []*appmodel.App
	for _, ds := range w.DS.All() {
		apps = append(apps, w.Apps(ds)...)
	}
	netPlain := w.NewNetwork(true)
	netMITM := w.NewNetwork(true)
	proxy, err := mitmproxy.NewWithCA(detrand.New(55).Child("bench-proxy"))
	if err != nil {
		b.Fatal(err)
	}
	netMITM.SetInterceptor(proxy)
	devs := map[appmodel.Platform][2]*device.Device{}
	for _, plat := range appmodel.Platforms {
		base := map[appmodel.Platform]*pki.RootStore{
			appmodel.Android: w.Eco.OEM, appmodel.IOS: w.Eco.IOS,
		}[plat]
		dp := device.New(plat, netPlain, base, detrand.New(55).Child("bd/"+string(plat)))
		dm := device.New(plat, netMITM, base, detrand.New(55).Child("bd/"+string(plat)))
		dm.InstallCA(proxy.CACert())
		devs[plat] = [2]*device.Device{dp, dm}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := apps[i%len(apps)]
		d := devs[a.Platform]
		capA := d[0].Run(a, device.RunOptions{})
		capB := d[1].Run(a, device.RunOptions{})
		res := dynamicanalysis.Detect(a.ID, capA, capB, dynamicanalysis.Options{})
		_ = res.Pins()
	}
}

func BenchmarkChaosSweep(b *testing.B) {
	// Full study per fault rate; asserts the robustness envelope: rising
	// fault rates may erode coverage, but the Table 3 dynamic prevalences
	// must stay within a bounded drift of the fault-free reference, and
	// the study must complete (quarantine, not abort) at every rate.
	for i := 0; i < b.N; i++ {
		points, err := core.ChaosSweep(core.TestConfig(4242), []float64{0, 0.1, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		if points[0].MaxAbsDriftPP != 0 {
			b.Fatalf("rate-0 point drifted %.2fpp from its own reference", points[0].MaxAbsDriftPP)
		}
		for _, p := range points {
			if p.Stats.Apps == 0 {
				b.Fatalf("rate %.0f%%: no apps studied", p.Rate*100)
			}
			if p.Rate > 0 && p.Stats.Retried == 0 {
				b.Fatalf("rate %.0f%%: fault plan injected nothing", p.Rate*100)
			}
			if p.Sharded != nil && !p.Sharded.ByteIdentical {
				b.Fatalf("rate %.0f%%: sharded rerun's merged export diverged", p.Rate*100)
			}
			// Measured at this seed: ~7pp at a 10% fault rate, ~12pp at 20%,
			// dominated by the conservative direction (pins degrading to
			// misses; see EXPERIMENTS.md for the ground-truth decomposition).
			// 15pp leaves headroom without letting a detector regression
			// slip through.
			if p.MaxAbsDriftPP > 15 {
				b.Fatalf("rate %.0f%%: prevalence drift %.2fpp outside the 15pp envelope",
					p.Rate*100, p.MaxAbsDriftPP)
			}
		}
		// At this seed the 20% point derives a shard-death plan: its
		// sharded rerun must have survived a lease takeover and merged.
		last := points[len(points)-1]
		if last.Sharded == nil || last.Sharded.Stats.Reassigned == 0 {
			b.Fatalf("rate %.0f%%: shard drill missing or saw no lease takeover: %+v",
				last.Rate*100, last.Sharded)
		}
	}
}

func BenchmarkStudyEndToEnd(b *testing.B) {
	// The complete mini study: world build + all pipelines, with the
	// shared crypto plane on (the default). The seed is fixed because
	// re-running one configuration in a warm process is the trajectory the
	// plane optimizes — chaos sweeps, ablations and pinscoped snapshot
	// rebuilds all re-run identical seeds — so steady-state iterations hit
	// the interned certificates, forged chains and handshake memo.
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.TestConfig(9001)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyEndToEndCold(b *testing.B) {
	// The zero-cache path: the plane is disabled and every iteration uses a
	// fresh seed, so nothing — not the plane, not the process-global
	// issuance and signature memos — can carry work between runs. The seed
	// range is disjoint from the warm benchmark's to keep it that way. The
	// warm/cold ratio is the plane's end-to-end speedup (scripts/bench.sh
	// records it).
	for i := 0; i < b.N; i++ {
		cfg := core.TestConfig(int64(9100 + i))
		cfg.ColdCrypto = true
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongitudinalStudy(b *testing.B) {
	// The time axis end to end: one world build amortized across a
	// three-point replay — two root-program releases plus a distrust
	// event (see internal/rootprogram). The ratio to three times
	// BenchmarkStudyEndToEnd is the world-reuse and crypto-plane win of
	// the longitudinal runner (scripts/bench.sh records it as
	// longitudinal_vs_three_studies).
	for i := 0; i < b.N; i++ {
		ls, err := core.RunLongitudinal(core.TestConfig(9001), core.TimelineConfig{
			Points: []string{"froyo", "kitkat", "distrust-ca-distrust"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(ls.Points) != 3 {
			b.Fatal("wrong point count")
		}
		for _, p := range ls.Points {
			if p.Study.Cfg.Release != p.Point.Tag {
				b.Fatalf("point %q ran with release %q", p.Point.Tag, p.Study.Cfg.Release)
			}
		}
	}
}

func BenchmarkStudySingleShard(b *testing.B) {
	// The sharded machinery at its degenerate point — one shard, one
	// worker, no faults — including the journal writes and the streaming
	// merge to io.Discard. The gap to BenchmarkStudyEndToEnd is the price
	// of crash-tolerance (journaling + merge); the ratio to the sharded
	// benchmark below is the coordinator's scaling factor.
	for i := 0; i < b.N; i++ {
		benchSharded(b, 1, 1, nil)
	}
}

func BenchmarkStudyShardedEndToEnd(b *testing.B) {
	// The full crash-tolerant path: 4 workers over 4 slices with shard
	// kills at two distinct slice boundaries and an induced lease expiry,
	// then the streaming merge. Despite two worker deaths and a fenced
	// split-brain holder per iteration, the merged export is the canonical
	// dataset — scripts/bench.sh records the ratio to the single-shard
	// benchmark as speedup_vs_single_shard (≈1 on a single-core runner,
	// where extra workers add only coordination).
	faults := &faultinject.ShardPlan{
		Kills: []faultinject.ShardKill{
			{Slice: 1, AfterResults: 2, TornBytes: 7},
			{Slice: 3, AfterResults: 1, TornBytes: 13},
		},
		Expiries: []faultinject.LeaseExpiry{{Slice: 2, AfterResults: 1}},
	}
	for i := 0; i < b.N; i++ {
		benchSharded(b, 4, 4, faults)
	}
}

func BenchmarkStudyShardNetSim(b *testing.B) {
	// The transported analogue of BenchmarkStudyShardedEndToEnd: the same
	// 4-worker/4-slice workload with two injected worker deaths, but
	// every welcome, grant, heartbeat, and result crosses the simulated
	// message-framed transport — frame encode/decode, the coordinator's
	// event loop, lease takeover over the wire, and the clock-warp
	// machinery. scripts/bench.sh records the ratio to the in-process
	// sharded benchmark as transport_overhead_vs_inprocess.
	faults := &faultinject.ShardPlan{
		Kills: []faultinject.ShardKill{
			{Slice: 1, AfterResults: 2, TornBytes: 7},
			{Slice: 3, AfterResults: 1, TornBytes: 13},
		},
	}
	for i := 0; i < b.N; i++ {
		benchShardNet(b, 4, 4, faults)
	}
}

// benchShardNet runs one transported sharded iteration: run over the
// simulated network, merge, discard.
func benchShardNet(b *testing.B, shards, workers int, faults *faultinject.ShardPlan) {
	b.Helper()
	cfg := core.TestConfig(9001) // same seed as the in-process benches: comparable work
	dir, err := os.MkdirTemp("", "pinscope-bench-shardnet-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := core.ShardedConfig{Shards: shards, Workers: workers, Dir: dir, Faults: faults}
	if _, err := core.RunShardedNet(cfg, sc); err != nil {
		b.Fatal(err)
	}
	sc.Faults = nil
	if err := core.MergeShards(io.Discard, cfg, sc); err != nil {
		b.Fatal(err)
	}
}

// benchSharded runs one sharded study iteration: run, merge, discard.
func benchSharded(b *testing.B, shards, workers int, faults *faultinject.ShardPlan) {
	b.Helper()
	cfg := core.TestConfig(9001) // same seed as BenchmarkStudyEndToEnd: comparable work
	dir, err := os.MkdirTemp("", "pinscope-bench-shard-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := core.ShardedConfig{Shards: shards, Workers: workers, Dir: dir, Faults: faults}
	if _, err := core.RunSharded(cfg, sc); err != nil {
		b.Fatal(err)
	}
	sc.Faults = nil
	if err := core.MergeShards(io.Discard, cfg, sc); err != nil {
		b.Fatal(err)
	}
}

// --- crypto-plane micro benches --------------------------------------------------

func BenchmarkChainStore(b *testing.B) {
	// Steady-state forged-chain interning: after the first lap every
	// GetOrIssue is a hit, so ns/op measures the lookup, not the issuance.
	ca, err := pki.NewRootCA(detrand.New(1).Child("bench-ca"), "bench", "bench", 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := detrand.New(1).Child("bench-forge")
	hosts := []string{"api.example.com", "cdn.example.com", "auth.example.com", "img.example.com"}
	store := pki.NewChainStore()
	sum := pki.RawDigest(ca.Cert)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := hosts[i%len(hosts)]
		_, err := store.GetOrIssue(string(sum[:])+"|leaf/"+host, func() (pki.Chain, error) {
			leaf, err := ca.IssueLeaf(rng.Child("leaf/"+host), host, pki.LeafOptions{})
			if err != nil {
				return nil, err
			}
			return pki.Chain{leaf.Cert, ca.Cert}, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandshakeMemo(b *testing.B) {
	// Steady-state device measurement with a warm handshake memo: after
	// the first lap over the app list every connection replays from the
	// memo instead of re-running the TLS emulation.
	s := benchSetup(b)
	w := s.World
	var apps []*appmodel.App
	for _, ds := range w.DS.All() {
		apps = append(apps, w.Apps(ds)...)
	}
	net := w.NewNetwork(true)
	memo := device.NewHandshakeMemo()
	devs := map[appmodel.Platform]*device.Device{}
	for _, plat := range appmodel.Platforms {
		base := map[appmodel.Platform]*pki.RootStore{
			appmodel.Android: w.Eco.OEM, appmodel.IOS: w.Eco.IOS,
		}[plat]
		d := device.New(plat, net, base, detrand.New(55).Child("bm/"+string(plat)))
		d.UseHandshakeMemo(memo)
		devs[plat] = d
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := apps[i%len(apps)]
		cap := devs[a.Platform].Run(a, device.RunOptions{})
		cap.Release()
	}
}
