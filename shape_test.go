package pinscope

// shape_test.go asserts the paper's headline findings on a medium-scale
// world (~1/4 paper size): large enough that the shape claims of DESIGN.md
// §5 are statistically stable, small enough for CI. This is the regression
// net for calibration changes in internal/worldgen/params.go.

import (
	"sync"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
	"pinscope/internal/pii"
	"pinscope/internal/worldgen"
)

var (
	shapeOnce  sync.Once
	shapeStudy *core.Study
	shapeErr   error
)

func shapeShared(t *testing.T) *core.Study {
	t.Helper()
	if testing.Short() {
		t.Skip("medium-scale shape study skipped in -short mode")
	}
	shapeOnce.Do(func() {
		cfg := core.Config{
			Params: worldgen.Params{
				Seed:       314159,
				CommonSize: 150, PopularSize: 250, RandomSize: 250,
				StoreAndroid: 10500, StoreIOS: 9750,
				CrossProducts: 190, PopularCut: 3000,
			},
			Window: 30,
		}
		shapeStudy, shapeErr = core.Run(cfg)
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeStudy
}

// table3 pulls a cell by dataset/platform.
func table3Cell(t *testing.T, s *core.Study, dataset string, plat appmodel.Platform) core.Table3Cell {
	t.Helper()
	for _, c := range s.Table3() {
		if c.Cell.Dataset == dataset && c.Cell.Platform == plat {
			return c
		}
	}
	t.Fatalf("missing cell %s/%s", dataset, plat)
	return core.Table3Cell{}
}

func TestShapePrevalenceOrdering(t *testing.T) {
	s := shapeShared(t)
	for _, dataset := range []string{"Popular", "Random"} {
		a := table3Cell(t, s, dataset, appmodel.Android)
		i := table3Cell(t, s, dataset, appmodel.IOS)
		if float64(i.Dynamic)/float64(i.N) <= float64(a.Dynamic)/float64(a.N) {
			t.Fatalf("%s: iOS dynamic rate must exceed Android (%d/%d vs %d/%d)",
				dataset, i.Dynamic, i.N, a.Dynamic, a.N)
		}
	}
	for _, plat := range appmodel.Platforms {
		pop := table3Cell(t, s, "Popular", plat)
		rnd := table3Cell(t, s, "Random", plat)
		popRate := float64(pop.Dynamic) / float64(pop.N)
		rndRate := float64(rnd.Dynamic) / float64(rnd.N)
		if popRate < 2.5*rndRate {
			t.Fatalf("%s: popular (%f) must dwarf random (%f)", plat, popRate, rndRate)
		}
	}
}

func TestShapeDetectionGaps(t *testing.T) {
	s := shapeShared(t)
	for _, plat := range appmodel.Platforms {
		pop := table3Cell(t, s, "Popular", plat)
		if pop.StaticEmbedded < 2*pop.Dynamic {
			t.Fatalf("%s popular: static (%d) should be >=2x dynamic (%d)",
				plat, pop.StaticEmbedded, pop.Dynamic)
		}
	}
	for _, dataset := range []string{"Common", "Popular"} {
		a := table3Cell(t, s, dataset, appmodel.Android)
		if a.NSCPins >= a.Dynamic {
			t.Fatalf("%s Android: NSC-only (%d) should undercount dynamic (%d)",
				dataset, a.NSCPins, a.Dynamic)
		}
	}
}

func TestShapeFinanceElevated(t *testing.T) {
	// The paper's category finding, expressed as the scale-robust
	// invariant: Finance pins well above the platform-wide rate, Games
	// well below it. (Exact top-10 ordering needs paper-scale samples.)
	s := shapeShared(t)
	for _, plat := range appmodel.Platforms {
		rows := s.TableCategories(plat, 0, 1)
		var finRate float64
		platApps, platPins := 0, 0
		for _, r := range rows {
			platApps += r.Apps
			platPins += r.Pinning
			if r.Category == "Finance" {
				finRate = r.Pct / 100
			}
		}
		// TableCategories drops zero-pinning categories from rows; rebuild
		// the platform rate from Table 3 instead.
		var n, dyn int
		for _, c := range s.Table3() {
			if c.Cell.Platform == plat {
				n += c.N
				dyn += c.Dynamic
			}
		}
		platformRate := float64(dyn) / float64(n)
		if finRate < 1.5*platformRate {
			t.Fatalf("%s: finance rate %.3f not elevated over platform %.3f",
				plat, finRate, platformRate)
		}
		for _, r := range rows {
			if r.Category == "Games" && r.Apps >= 20 && r.Pct/100 > platformRate {
				t.Fatalf("%s: Games rate %.3f above platform %.3f", plat, r.Pct/100, platformRate)
			}
		}
	}
}

func TestShapeThirdPartyDominance(t *testing.T) {
	s := shapeShared(t)
	for _, plat := range appmodel.Platforms {
		f := s.Figure5Stats(plat)
		if f.PinnedDestsTP <= f.PinnedDestsFP {
			t.Fatalf("%s: third-party pinned (%d) must dominate first-party (%d)",
				plat, f.PinnedDestsTP, f.PinnedDestsFP)
		}
	}
}

func TestShapeDefaultPKIDominance(t *testing.T) {
	s := shapeShared(t)
	for _, row := range s.Table6() {
		others := row.CustomPKI + row.SelfSigned
		if row.DefaultPKI < 10*others {
			t.Fatalf("%s: default PKI (%d) must dwarf custom+self-signed (%d)",
				row.Platform, row.DefaultPKI, others)
		}
	}
}

func TestShapeWeakCipherContrast(t *testing.T) {
	s := shapeShared(t)
	for _, c := range s.Table8() {
		overall := float64(c.OverallWeak) / float64(c.OverallApps)
		if c.Cell.Platform == appmodel.IOS && overall < 0.70 {
			t.Fatalf("iOS %s overall weak rate %.2f too low (paper: >82%%)",
				c.Cell.Dataset, overall)
		}
		if c.Cell.Platform == appmodel.Android && overall > 0.30 {
			t.Fatalf("Android %s overall weak rate %.2f too high (paper: <19%%)",
				c.Cell.Dataset, overall)
		}
	}
}

func TestShapeCircumventionPartial(t *testing.T) {
	s := shapeShared(t)
	for _, c := range s.Circumvention() {
		// The rate is scale-sensitive (shared SDK/pool destinations weigh
		// more in larger worlds); the invariant is partial coverage.
		if c.Pct < 20 || c.Pct > 90 {
			t.Fatalf("%s circumvention %.1f%% outside the paper's regime", c.Platform, c.Pct)
		}
	}
	cs := s.Circumvention()
	if cs[1].Pct <= cs[0].Pct { // iOS after Android in Platforms order
		t.Fatalf("iOS circumvention (%.1f) should exceed Android (%.1f)", cs[1].Pct, cs[0].Pct)
	}
}

func TestShapeAdIDSkew(t *testing.T) {
	s := shapeShared(t)
	for _, r := range s.Table9() {
		if r.Kind != pii.AdID || r.Platform != appmodel.IOS {
			continue
		}
		if r.PctPinned <= r.PctNonPinned {
			t.Fatalf("iOS Ad ID: pinned (%.1f%%) must exceed non-pinned (%.1f%%)",
				r.PctPinned, r.PctNonPinned)
		}
	}
}

func TestShapeCommonSplit(t *testing.T) {
	s := shapeShared(t)
	f := s.Figure2Data()
	if f.PinsEither == 0 || f.PinsBoth == 0 || f.AndroidOnly == 0 || f.IOSOnly == 0 {
		t.Fatalf("degenerate common split: %+v", f)
	}
	// Most pinning products are NOT fully consistent across platforms.
	consistentShare := float64(f.Consistent) / float64(f.PinsEither)
	if consistentShare > 0.5 {
		t.Fatalf("consistent share %.2f too high — inconsistency is the finding", consistentShare)
	}
}

func TestShapeDetectorSound(t *testing.T) {
	q := shapeShared(t).Quality()
	if q.FalsePositives != 0 {
		t.Fatalf("%d false positives at medium scale", q.FalsePositives)
	}
	if q.Recall < 0.9 {
		t.Fatalf("recall %.3f below medium-scale bar", q.Recall)
	}
}
