// Package frida models the binary-instrumentation step of the study
// (§4.3): hooking an app's TLS libraries at run time to disable certificate
// validation and pin enforcement, so that pinned connections become
// interceptable and their plaintext observable.
//
// Hook coverage is a property of the TLS implementation, not the app:
// popular stacks (OkHttp, Conscrypt, NSURLSession, TrustKit, AFNetworking)
// have well-known validation entry points to patch, while statically linked
// custom stacks do not — which is why the paper could only circumvent
// pinning for ≈51.5% of pinned destinations on Android and ≈66% on iOS.
package frida

import (
	"errors"
	"sort"

	"pinscope/internal/appmodel"
)

// hookRegistry lists the TLS libraries each platform's scripts can patch.
var hookRegistry = map[appmodel.Platform]map[appmodel.TLSLib]bool{
	appmodel.Android: {
		appmodel.LibOkHttp:    true,
		appmodel.LibConscrypt: true,
		appmodel.LibWebView:   true,
		// Flutter's statically linked BoringSSL and bespoke native stacks
		// have no stable symbols to hook.
		appmodel.LibFlutterBoring: false,
		appmodel.LibCustomNative:  false,
	},
	appmodel.IOS: {
		appmodel.LibNSURLSession:  true,
		appmodel.LibTrustKit:      true,
		appmodel.LibAFNetworking:  true,
		appmodel.LibFlutterBoring: false,
		appmodel.LibCustomNative:  false,
	},
}

// ErrNotJailbroken is returned when attaching to an iOS device that cannot
// run the frida server.
var ErrNotJailbroken = errors.New("frida: iOS instrumentation requires a jailbroken device")

// Session is an attached instrumentation session for one app run.
type Session struct {
	platform appmodel.Platform
}

// Attach starts instrumentation on a device of the given platform.
// jailbroken reports the device state; it gates iOS (Android test devices
// run with adb root, no jailbreak concept applies).
func Attach(platform appmodel.Platform, jailbroken bool) (*Session, error) {
	if platform == appmodel.IOS && !jailbroken {
		return nil, ErrNotJailbroken
	}
	return &Session{platform: platform}, nil
}

// Covers reports whether the session's hooks disable certificate validation
// for connections made through lib.
func (s *Session) Covers(lib appmodel.TLSLib) bool {
	if s == nil {
		return false
	}
	return hookRegistry[s.platform][lib]
}

// HookableLibs returns the libraries the platform scripts cover, for
// reporting.
func HookableLibs(p appmodel.Platform) []appmodel.TLSLib {
	var out []appmodel.TLSLib
	for lib, ok := range hookRegistry[p] {
		if ok {
			out = append(out, lib)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
