package frida

import (
	"errors"
	"testing"

	"pinscope/internal/appmodel"
)

func TestAttachIOSRequiresJailbreak(t *testing.T) {
	if _, err := Attach(appmodel.IOS, false); !errors.Is(err, ErrNotJailbroken) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Attach(appmodel.IOS, true); err != nil {
		t.Fatalf("jailbroken attach failed: %v", err)
	}
	if _, err := Attach(appmodel.Android, false); err != nil {
		t.Fatalf("android attach failed: %v", err)
	}
}

func TestCoverage(t *testing.T) {
	a, _ := Attach(appmodel.Android, false)
	if !a.Covers(appmodel.LibOkHttp) || !a.Covers(appmodel.LibConscrypt) {
		t.Fatal("popular Android stacks not covered")
	}
	if a.Covers(appmodel.LibCustomNative) || a.Covers(appmodel.LibFlutterBoring) {
		t.Fatal("custom stacks reported hookable")
	}
	if a.Covers(appmodel.LibNSURLSession) {
		t.Fatal("iOS stack covered by Android session")
	}

	i, _ := Attach(appmodel.IOS, true)
	if !i.Covers(appmodel.LibNSURLSession) || !i.Covers(appmodel.LibTrustKit) {
		t.Fatal("popular iOS stacks not covered")
	}
	if i.Covers(appmodel.LibCustomNative) {
		t.Fatal("custom native reported hookable on iOS")
	}
}

func TestNilSessionCoversNothing(t *testing.T) {
	var s *Session
	if s.Covers(appmodel.LibOkHttp) {
		t.Fatal("nil session covers a lib")
	}
}

func TestHookableLibs(t *testing.T) {
	for _, p := range appmodel.Platforms {
		libs := HookableLibs(p)
		if len(libs) != 3 {
			t.Fatalf("%s: %d hookable libs", p, len(libs))
		}
	}
}
