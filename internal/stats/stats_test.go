package stats

import (
	"math"
	"testing"
	"testing/quick"

	"pinscope/internal/detrand"
)

func TestJaccardBasics(t *testing.T) {
	a := Set([]string{"x", "y", "z"})
	b := Set([]string{"y", "z", "w"})
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("self Jaccard = %v", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Fatalf("empty Jaccard = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Fatalf("disjoint-with-empty Jaccard = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	gen := detrand.New(100)
	randomSet := func(r *detrand.Source) map[string]bool {
		n := r.Intn(8)
		s := map[string]bool{}
		for i := 0; i < n; i++ {
			s[string(rune('a'+r.Intn(10)))] = true
		}
		return s
	}
	for i := 0; i < 500; i++ {
		a := randomSet(gen)
		b := randomSet(gen)
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		if j1 != j2 {
			t.Fatalf("Jaccard not symmetric: %v vs %v", j1, j2)
		}
		if j1 < 0 || j1 > 1 {
			t.Fatalf("Jaccard out of range: %v", j1)
		}
	}
}

func TestOverlap(t *testing.T) {
	a := Set([]string{"x", "y"})
	b := Set([]string{"y", "z"})
	if got := Overlap(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Overlap = %v", got)
	}
	if got := Overlap(nil, b); got != 0 {
		t.Fatalf("Overlap of empty = %v", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Fatalf("Overlap with empty = %v", got)
	}
}

func TestSortedKeys(t *testing.T) {
	s := Set([]string{"c", "a", "b"})
	got := SortedKeys(s)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v", got)
		}
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// Classic example: 2x2 table with clear association.
	//           present absent
	// pinned       90     10
	// unpinned     50     50
	stat, p := ChiSquare2x2(90, 10, 50, 50)
	// Expected statistic ~ 38.1 (computed by hand: n=200, exp a=70,b=30,c=70,d=30)
	want := 200.0 * math.Pow(90*50-10*50, 2) / (100 * 100 * 140 * 60)
	if math.Abs(stat-want) > 1e-9 {
		t.Fatalf("stat = %v, want %v", stat, want)
	}
	if p > 1e-6 {
		t.Fatalf("p = %v, expected extremely small", p)
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Perfectly proportional table → statistic 0, p = 1.
	stat, p := ChiSquare2x2(20, 80, 10, 40)
	if stat > 1e-9 {
		t.Fatalf("stat = %v on independent table", stat)
	}
	if p < 0.999 {
		t.Fatalf("p = %v on independent table", p)
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	for _, tc := range [][4]float64{
		{0, 0, 0, 0},
		{0, 0, 5, 5}, // empty row
		{0, 5, 0, 5}, // empty column
	} {
		stat, p := ChiSquare2x2(tc[0], tc[1], tc[2], tc[3])
		if stat != 0 || p != 1 {
			t.Fatalf("degenerate table %v: stat=%v p=%v", tc, stat, p)
		}
	}
}

func TestChiSquarePValueReference(t *testing.T) {
	// Reference values for df=1: P(X>=3.841) ≈ 0.05, P(X>=6.635) ≈ 0.01.
	cases := []struct {
		stat, want float64
	}{
		{3.841, 0.05},
		{6.635, 0.01},
		{2.706, 0.10},
	}
	for _, c := range cases {
		got := ChiSquarePValue(c.stat, 1)
		if math.Abs(got-c.want) > 0.001 {
			t.Fatalf("p(%v) = %v, want ~%v", c.stat, got, c.want)
		}
	}
	// df=2 reference: P(X>=5.991) ≈ 0.05.
	if got := ChiSquarePValue(5.991, 2); math.Abs(got-0.05) > 0.001 {
		t.Fatalf("df=2 p = %v", got)
	}
}

func TestChiSquarePValueMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a%1000)/10, float64(b%1000)/10
		if x > y {
			x, y = y, x
		}
		px := ChiSquarePValue(x, 1)
		py := ChiSquarePValue(y, 1)
		return py <= px+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPValueBounds(t *testing.T) {
	f := func(a uint32) bool {
		stat := float64(a%100000) / 100
		p := ChiSquarePValue(stat, 1)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1, 4); got != 25 {
		t.Fatalf("Percent = %v", got)
	}
	if got := Percent(3, 0); got != 0 {
		t.Fatalf("Percent with zero denominator = %v", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("b")
	c.Inc("a")
	c.Inc("a")
	c.Add("c", 5)
	if c.Get("a") != 2 || c.Get("c") != 5 || c.Get("missing") != 0 {
		t.Fatal("Get wrong")
	}
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	top := c.Top(2)
	if top[0].Key != "c" || top[1].Key != "a" {
		t.Fatalf("Top = %v", top)
	}
	all := c.Top(0)
	if len(all) != 3 {
		t.Fatalf("Top(0) = %v", all)
	}
	// Tie-break is alphabetical.
	c2 := NewCounter()
	c2.Inc("z")
	c2.Inc("m")
	got := c2.Top(0)
	if got[0].Key != "m" {
		t.Fatalf("tie break wrong: %v", got)
	}
}
