// Package stats provides the small statistical toolkit the pinning study
// needs: Jaccard similarity over domain sets, the chi-square test of
// independence used for the PII comparison (Table 9), and counting helpers
// shared by the report generators.
package stats

import (
	"math"
	"sort"
)

// Jaccard returns the Jaccard index |a∩b| / |a∪b| of two string sets.
// Two empty sets have similarity 1 by convention (they are identical).
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Overlap returns the fraction of elements of a that are also in b
// (|a∩b| / |a|). The paper uses this asymmetric measure when comparing a
// pinned-domain set against a not-pinned set. An empty a yields 0.
func Overlap(a, b map[string]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

// Set builds a string set from a slice.
func Set(items []string) map[string]bool {
	s := make(map[string]bool, len(items))
	for _, v := range items {
		s[v] = true
	}
	return s
}

// SortedKeys returns the keys of a set in sorted order, for deterministic
// report output.
func SortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ChiSquare2x2 runs the chi-square test of independence on a 2x2
// contingency table:
//
//	            present  absent
//	group A        a        b
//	group B        c        d
//
// It returns the test statistic and the p-value (df=1). Cells may be zero;
// if a whole row or column is zero the variables carry no information and
// the test returns statistic 0, p-value 1.
func ChiSquare2x2(a, b, c, d float64) (stat, p float64) {
	n := a + b + c + d
	if n == 0 {
		return 0, 1
	}
	row1, row2 := a+b, c+d
	col1, col2 := a+c, b+d
	if row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0 {
		return 0, 1
	}
	exp := [4]float64{
		row1 * col1 / n,
		row1 * col2 / n,
		row2 * col1 / n,
		row2 * col2 / n,
	}
	obs := [4]float64{a, b, c, d}
	for i := range obs {
		diff := obs[i] - exp[i]
		stat += diff * diff / exp[i]
	}
	return stat, ChiSquarePValue(stat, 1)
}

// ChiSquarePValue returns P(X >= stat) for a chi-square distribution with
// df degrees of freedom, i.e. the upper regularized incomplete gamma
// function Q(df/2, stat/2).
func ChiSquarePValue(stat float64, df int) float64 {
	if stat <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, stat/2)
}

// gammaQ computes the upper regularized incomplete gamma function Q(a, x)
// using the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes style).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Percent formats a ratio as a percentage value (0.123 → 12.3). Kept here
// so report code shares one rounding convention.
func Percent(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Counter counts string-keyed occurrences and reports them in deterministic
// rank order.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by n.
func (c *Counter) Add(key string, n int) {
	c.counts[key] += n
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Get returns the count for key.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Total returns the sum of all counts.
func (c *Counter) Total() int {
	t := 0
	for _, v := range c.counts {
		t += v
	}
	return t
}

// KV is a key with its count.
type KV struct {
	Key   string
	Count int
}

// Top returns the n highest-count entries, ties broken alphabetically so
// output is deterministic. n <= 0 returns all entries.
func (c *Counter) Top(n int) []KV {
	out := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}
