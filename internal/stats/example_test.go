package stats_test

import (
	"fmt"

	"pinscope/internal/stats"
)

// ExampleJaccard compares two pinned-domain sets the way the Figure 3
// heatmap does.
func ExampleJaccard() {
	android := stats.Set([]string{"api.x.com", "cdn.x.com"})
	ios := stats.Set([]string{"api.x.com"})
	fmt.Printf("%.2f\n", stats.Jaccard(android, ios))
	// Output: 0.50
}

// ExampleChiSquare2x2 runs the Table 9 significance test on a contingency
// table of destinations with/without a PII type, pinned vs non-pinned.
func ExampleChiSquare2x2() {
	_, p := stats.ChiSquare2x2(56, 161, 262, 1825)
	fmt.Println("significant:", p < 0.05)
	// Output: significant: true
}
