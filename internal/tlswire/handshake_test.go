package tlswire_test

// The handshake emulation is exercised over real netem pipes so these tests
// double as integration tests of the transport.

import (
	"errors"
	"strings"
	"testing"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

type fixture struct {
	net   *netem.Network
	eco   *pki.Ecosystem
	chain pki.Chain
	store *pki.RootStore
}

func newFixture(t *testing.T, host string, srvCfg *tlswire.ServerConfig) *fixture {
	t.Helper()
	eco, err := pki.BuildEcosystem(detrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := detrand.New(2)
	chain, _, err := eco.IssuePublicChain(rng, host, pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if srvCfg.Chain == nil {
		srvCfg.Chain = chain
	}
	n := netem.New()
	n.Listen(host, func(tr tlswire.Transport) { tlswire.Serve(tr, srvCfg) })
	return &fixture{net: n, eco: eco, chain: chain, store: eco.AOSP}
}

func dial(t *testing.T, f *fixture, host string, cap *netem.Capture) tlswire.Transport {
	t.Helper()
	tr, err := f.net.Dial(host, netem.DialOpts{Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHandshakeAndEchoTLS13(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)

	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  f.store,
	})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if conn.Version != tlswire.TLS13 {
		t.Fatalf("negotiated %s, want TLS1.3", conn.Version)
	}
	if len(conn.PeerChain) != 3 {
		t.Fatalf("peer chain length %d", len(conn.PeerChain))
	}
	if err := conn.Send([]byte("GET / HTTP/1.1")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "200") {
		t.Fatalf("response: %q", resp)
	}
	conn.Close()
	f.net.WaitIdle()

	flows := cap.Flows()
	if len(flows) != 1 {
		t.Fatalf("%d flows captured", len(flows))
	}
	fl := flows[0]
	if fl.SNI() != "api.example.com" {
		t.Fatalf("SNI %q", fl.SNI())
	}
	if fl.NegotiatedVersion() != tlswire.TLS13 {
		t.Fatalf("captured version %s", fl.NegotiatedVersion())
	}
	// TLS 1.3: certificates must NOT be visible to the capture.
	if fl.ObservedChain() != nil {
		t.Fatal("TLS 1.3 leaked cleartext certificates to the capture")
	}
	// Client app-data records: Finished + request + close_notify (all
	// disguised), i.e. > 2 → "used" by the paper's first heuristic.
	n := 0
	for _, r := range fl.Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData {
			n++
		}
	}
	if n <= 2 {
		t.Fatalf("used 1.3 connection shows only %d client app-data records", n)
	}
}

func TestHandshakeTLS12ExposesChainAndAppData(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{MaxVersion: tlswire.TLS12})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)

	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  f.store,
	})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if conn.Version != tlswire.TLS12 {
		t.Fatalf("negotiated %s", conn.Version)
	}
	conn.Send([]byte("hello"))
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	f.net.WaitIdle()

	fl := cap.Flows()[0]
	chain := fl.ObservedChain()
	if len(chain) != 3 {
		t.Fatalf("capture saw chain of %d certs, want 3 (cleartext in 1.2)", len(chain))
	}
	// In <=1.2 application data records appear only when data flows.
	app := 0
	for _, r := range fl.Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData {
			app++
		}
	}
	if app != 1 {
		t.Fatalf("client sent %d app-data records, want 1", app)
	}
}

func TestUntrustedChainRejected(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	// Client trusts an empty store.
	empty := pki.NewRootStore("empty")
	tr := dial(t, f, "api.example.com", nil)
	defer tr.Close(tlswire.CloseFIN)
	_, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  empty,
	})
	var he *tlswire.HandshakeError
	if !errors.As(err, &he) || he.Stage != "verify" {
		t.Fatalf("err = %v, want verify-stage failure", err)
	}
	f.net.WaitIdle()
}

func TestSkipVerifyAcceptsAnything(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	tr := dial(t, f, "api.example.com", nil)
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		SkipVerify: true,
	})
	if err != nil {
		t.Fatalf("SkipVerify handshake failed: %v", err)
	}
	conn.Close()
	f.net.WaitIdle()
}

func TestPinMatchSucceeds(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(f.chain[1], pki.SHA256)}} // CA pin
	tr := dial(t, f, "api.example.com", nil)
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  f.store,
		Pins:       pins,
	})
	if err != nil {
		t.Fatalf("pinned handshake failed against matching chain: %v", err)
	}
	conn.Close()
	f.net.WaitIdle()
}

// pinFailureSignature runs a pinned client against a non-matching chain in
// the given mode/version and returns the captured flow.
func pinFailureSignature(t *testing.T, mode tlswire.FailureMode, maxV tlswire.Version) *netem.Flow {
	t.Helper()
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{MaxVersion: maxV})
	// Pin a certificate that is NOT in the served chain.
	foreign, err := pki.NewSelfSigned(detrand.New(99), "other.example.com", 1)
	if err != nil {
		t.Fatal(err)
	}
	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(foreign.Cert, pki.SHA256)}}
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	_, err = tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  f.store,
		Pins:       pins,
		PinFailure: mode,
	})
	if !tlswire.IsPinFailure(err) {
		t.Fatalf("err = %v, want pin failure", err)
	}
	tr.Close(tlswire.CloseFIN) // app teardown
	f.net.WaitIdle()
	return cap.Flows()[0]
}

func TestPinFailureAlertTLS12(t *testing.T) {
	fl := pinFailureSignature(t, tlswire.FailAlertClose, tlswire.TLS12)
	sawAlert := false
	for _, r := range fl.Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData {
			t.Fatal("pinned-failed 1.2 connection carried app data")
		}
		if r.FromClient && r.HasAlert && r.Alert == tlswire.AlertBadCertificate {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Fatal("no client bad_certificate alert captured")
	}
	if c, _ := fl.CloseFlags(); c != tlswire.CloseFIN {
		t.Fatalf("client close flag %s, want FIN", c)
	}
}

func TestPinFailureAlertTLS13IsDisguised(t *testing.T) {
	fl := pinFailureSignature(t, tlswire.FailAlertClose, tlswire.TLS13)
	var clientApp []int
	for _, r := range fl.Records() {
		if r.FromClient && r.HasAlert {
			t.Fatal("1.3 alert visible as plaintext alert record")
		}
		if r.FromClient && r.WireType == tlswire.RecAppData {
			clientApp = append(clientApp, r.Length)
		}
	}
	// The failure signature: a single disguised record of exactly the
	// encrypted-alert length.
	if len(clientApp) != 1 || clientApp[0] != tlswire.EncryptedAlertWireLen {
		t.Fatalf("client app-data records %v, want one of length %d",
			clientApp, tlswire.EncryptedAlertWireLen)
	}
}

func TestPinFailureReset(t *testing.T) {
	fl := pinFailureSignature(t, tlswire.FailReset, tlswire.TLS13)
	if c, _ := fl.CloseFlags(); c != tlswire.CloseRST {
		t.Fatalf("client close flag %s, want RST", c)
	}
}

func TestPinFailureSilentIdle(t *testing.T) {
	fl := pinFailureSignature(t, tlswire.FailSilentIdle, tlswire.TLS13)
	// Handshake completes (client Finished goes out) but nothing further.
	clientApp := 0
	for _, r := range fl.Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData {
			clientApp++
		}
	}
	if clientApp != 1 {
		t.Fatalf("silent-idle client sent %d app-data records, want exactly 1 (Finished)", clientApp)
	}
	if c, _ := fl.CloseFlags(); c != tlswire.CloseFIN {
		t.Fatalf("client close flag %s, want FIN", c)
	}
}

func TestVersionNegotiationFailure(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{MinVersion: tlswire.TLS13})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)
	_, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName:   "api.example.com",
		MaxVersion:   tlswire.TLS11,
		CipherSuites: tlswire.LegacySuites,
		RootStore:    f.store,
	})
	var he *tlswire.HandshakeError
	if !errors.As(err, &he) || he.Stage != "peer-alert" || he.Alert != tlswire.AlertProtocolVersion {
		t.Fatalf("err = %v, want protocol_version peer alert", err)
	}
	f.net.WaitIdle()
	// This is the paper's confounder: an alert that is NOT pinning.
	fl := cap.Flows()[0]
	found := false
	for _, r := range fl.Records() {
		if !r.FromClient && r.HasAlert && r.Alert == tlswire.AlertProtocolVersion {
			found = true
		}
	}
	if !found {
		t.Fatal("no server protocol_version alert captured")
	}
}

func TestServerResetInjection(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{ResetOnAccept: true})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)
	_, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com",
		RootStore:  f.store,
	})
	if err == nil {
		t.Fatal("handshake succeeded against resetting server")
	}
	f.net.WaitIdle()
	if _, s := cap.Flows()[0].CloseFlags(); s != tlswire.CloseRST {
		t.Fatalf("server close flag %s, want RST", s)
	}
}

func TestNegotiateVersionAndCipherCoupling(t *testing.T) {
	// A 1.3 session must use a 1.3 suite even when the client also offers
	// legacy suites first.
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	tr := dial(t, f, "api.example.com", nil)
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName:   "api.example.com",
		RootStore:    f.store,
		CipherSuites: tlswire.LegacySuites,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !conn.Cipher.TLS13Suite() {
		t.Fatalf("1.3 session negotiated %s", conn.Cipher)
	}
	conn.Close()
	f.net.WaitIdle()
}

func TestWeakCipherClassification(t *testing.T) {
	weak := []tlswire.CipherSuite{
		tlswire.RSA_WITH_RC4_128_SHA, tlswire.RSA_WITH_DES_CBC_SHA,
		tlswire.RSA_WITH_3DES_EDE_CBC_SHA, tlswire.RSA_EXPORT_WITH_RC4_40_MD5,
		tlswire.RSA_EXPORT_WITH_DES40_CBC_SHA,
	}
	for _, c := range weak {
		if !c.IsWeak() {
			t.Fatalf("%s not classified weak", c)
		}
	}
	for _, c := range tlswire.ModernSuites {
		if c.IsWeak() {
			t.Fatalf("%s classified weak", c)
		}
	}
}

func TestExpiredLeafRejected(t *testing.T) {
	eco, err := pki.BuildEcosystem(detrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := detrand.New(4)
	chain, _, err := eco.IssuePublicChain(rng, "old.example.com", pki.LeafOptions{
		NotBefore: pki.StudyEpoch.AddDate(-2, 0, 0),
		NotAfter:  pki.StudyEpoch.AddDate(-1, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := netem.New()
	n.Listen("old.example.com", func(tr tlswire.Transport) {
		tlswire.Serve(tr, &tlswire.ServerConfig{Chain: chain})
	})
	tr, err := n.Dial("old.example.com", netem.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	_, err = tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "old.example.com",
		RootStore:  eco.AOSP,
	})
	var he *tlswire.HandshakeError
	if !errors.As(err, &he) || he.Stage != "verify" {
		t.Fatalf("expired chain: err = %v, want verify failure", err)
	}
	n.WaitIdle()
}

func TestDialUnknownHost(t *testing.T) {
	n := netem.New()
	if _, err := n.Dial("nowhere.invalid", netem.DialOpts{}); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
}

func TestConnSendAfterClose(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{})
	tr := dial(t, f, "api.example.com", nil)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com", RootStore: f.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := conn.Send([]byte("late")); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	f.net.WaitIdle()
}

func TestSessionTicketsDoNotDisturbClients(t *testing.T) {
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{SessionTickets: 2})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com", RootStore: f.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tickets arrive before the response; Recv must skip them.
	if err := conn.Send([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil || !strings.Contains(string(resp), "200") {
		t.Fatalf("resp %q err %v", resp, err)
	}
	conn.Close()
	f.net.WaitIdle()

	// The tickets appear on the wire as extra server application_data
	// records — and as exactly that, nothing else.
	fl := cap.Flows()[0]
	serverApp := 0
	for _, r := range fl.Records() {
		if !r.FromClient && r.WireType == tlswire.RecAppData {
			serverApp++
		}
	}
	// server flight (2) + 2 tickets + response + close_notify
	if serverApp < 5 {
		t.Fatalf("expected ticket records on the wire, saw %d server app-data records", serverApp)
	}
}

func TestSessionTicketsTLS12Ignored(t *testing.T) {
	// Tickets are a 1.3 feature here; a 1.2 session must not emit them.
	f := newFixture(t, "api.example.com", &tlswire.ServerConfig{
		MaxVersion: tlswire.TLS12, SessionTickets: 3,
	})
	cap := netem.NewCapture()
	tr := dial(t, f, "api.example.com", cap)
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "api.example.com", RootStore: f.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	f.net.WaitIdle()
	for _, r := range cap.Flows()[0].Records() {
		if !r.FromClient && r.WireType == tlswire.RecAppData {
			t.Fatal("1.2 session produced app-data records without app data")
		}
	}
}
