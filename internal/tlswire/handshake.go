package tlswire

import (
	"errors"
	"fmt"
	"time"

	"pinscope/internal/pki"
)

// ClientConfig configures the client half of an emulated TLS session.
type ClientConfig struct {
	// ServerName is sent as SNI and used for hostname verification.
	ServerName string
	// MaxVersion defaults to TLS13.
	MaxVersion Version
	// CipherSuites is the advertised offer, in preference order. Defaults
	// to ModernSuites. Offers containing weak suites are what Table 8
	// measures.
	CipherSuites []CipherSuite
	// RootStore anchors chain validation. Required unless SkipVerify.
	RootStore *pki.RootStore
	// Pins, when non-empty, are enforced after standard validation: the
	// served chain must contain a certificate matching the set.
	Pins *pki.PinSet
	// SkipVerify disables standard chain validation (hostname, expiry,
	// trust anchoring). Instrumentation hooks set this.
	SkipVerify bool
	// SkipPinning disables pin enforcement. Instrumentation hooks set this.
	SkipPinning bool
	// PinFailure selects the wire signature produced when validation or
	// pinning fails.
	PinFailure FailureMode
	// ALPN protocols, cleartext in the ClientHello.
	ALPN []string
	// Time is the validation instant; zero means pki.StudyEpoch.
	Time time.Time
}

func (c *ClientConfig) withDefaults() ClientConfig {
	cfg := *c
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = TLS13
	}
	if cfg.CipherSuites == nil {
		cfg.CipherSuites = ModernSuites
	}
	return cfg
}

// ServerConfig configures the server half.
type ServerConfig struct {
	// Chain is the certificate chain to serve, leaf first.
	Chain pki.Chain
	// GetChain, when set, overrides Chain per ClientHello. The MITM proxy
	// uses it to forge a leaf for the requested SNI.
	GetChain func(*HelloInfo) (pki.Chain, error)
	// MinVersion/MaxVersion default to TLS10/TLS13.
	MinVersion, MaxVersion Version
	// CipherSuites is the server preference order; defaults to ModernSuites.
	CipherSuites []CipherSuite
	// ResetOnAccept injects a server-side failure: the connection is torn
	// down with RST before the ServerHello. This is one of the confounders
	// the differential analysis must not mistake for pinning.
	ResetOnAccept bool
	// Respond produces the application response for a request. Nil echoes
	// a short acknowledgment.
	Respond func(req []byte) []byte
	// SessionTickets is the number of NewSessionTicket messages sent after
	// a completed TLS 1.3 handshake (most real servers send 1–2). On the
	// wire they are yet more application_data-disguised records — noise the
	// §4.2.2 heuristics must tolerate.
	SessionTickets int
}

func (c *ServerConfig) withDefaults() ServerConfig {
	cfg := *c
	if cfg.MinVersion == 0 {
		cfg.MinVersion = TLS10
	}
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = TLS13
	}
	if cfg.CipherSuites == nil {
		cfg.CipherSuites = ModernSuites
	}
	return cfg
}

// HandshakeError describes why a handshake failed.
type HandshakeError struct {
	Stage string // "transport", "negotiate", "verify", "pin", "peer-alert"
	Alert AlertCode
	Err   error
}

func (e *HandshakeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tlswire: handshake failed at %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("tlswire: handshake failed at %s (%s)", e.Stage, e.Alert)
}

func (e *HandshakeError) Unwrap() error { return e.Err }

// IsPinFailure reports whether err is a handshake error caused by pin
// enforcement. Endpoints know this; passive observers must infer it.
func IsPinFailure(err error) bool {
	var he *HandshakeError
	return errors.As(err, &he) && he.Stage == "pin"
}

// Conn is an established emulated TLS session.
type Conn struct {
	t         Transport
	isClient  bool
	Version   Version
	Cipher    CipherSuite
	PeerChain pki.Chain
	closed    bool
}

// Client runs the client side of the handshake over t. On failure it
// produces the configured wire signature (alert/RST/silent idle) and
// returns a *HandshakeError; the transport is closed except in
// FailSilentIdle mode, where the caller owns the idle connection and
// should Close(CloseFIN) it when the app "gives up".
func Client(t Transport, cfg0 *ClientConfig) (*Conn, error) {
	cfg := cfg0.withDefaults()
	hello := &HelloInfo{
		SNI:          cfg.ServerName,
		MaxVersion:   cfg.MaxVersion,
		CipherSuites: cfg.CipherSuites,
		ALPN:         cfg.ALPN,
	}
	rec := Record{
		WireType: RecHandshake,
		Length:   helloWireLen(hello),
		Hello:    hello,
		hsKind:   hsClientHello,
	}
	if err := t.Send(rec); err != nil {
		return nil, &HandshakeError{Stage: "transport", Err: err}
	}

	// ServerHello (or a plaintext alert / abrupt close).
	r, err := t.Recv()
	if err != nil {
		return nil, &HandshakeError{Stage: "transport", Err: err}
	}
	if r.WireType == RecAlert {
		t.Close(CloseFIN)
		return nil, &HandshakeError{Stage: "peer-alert", Alert: r.Alert}
	}
	if r.SHello == nil {
		t.Close(CloseRST)
		return nil, &HandshakeError{Stage: "transport", Err: errors.New("expected ServerHello")}
	}
	version, cipher := r.SHello.Version, r.SHello.Cipher

	// Certificate delivery.
	var chain pki.Chain
	if version == TLS13 {
		// EncryptedExtensions, Certificate, CertificateVerify, Finished —
		// all disguised as application_data. Collect until Finished.
		for {
			r, err = t.Recv()
			if err != nil {
				return nil, &HandshakeError{Stage: "transport", Err: err}
			}
			if r.WireType == RecChangeCipherSpec {
				continue // middlebox-compatibility CCS
			}
			if r.hiddenAlrt != 0 || (r.WireType == RecAlert) {
				t.Close(CloseFIN)
				return nil, &HandshakeError{Stage: "peer-alert", Alert: r.Alert}
			}
			if r.hiddenCert != nil {
				chain = r.hiddenCert
			}
			if r.hsKind == hsFinished {
				break
			}
		}
	} else {
		// Certificate (cleartext) then ServerHelloDone.
		for {
			r, err = t.Recv()
			if err != nil {
				return nil, &HandshakeError{Stage: "transport", Err: err}
			}
			if r.WireType == RecAlert {
				t.Close(CloseFIN)
				return nil, &HandshakeError{Stage: "peer-alert", Alert: r.Alert}
			}
			if r.Certs != nil {
				chain = r.Certs
			}
			if r.hsKind == hsServerHelloDone {
				break
			}
		}
	}

	// Standard certificate validation (hostname, expiry, anchoring).
	if !cfg.SkipVerify {
		if cfg.RootStore == nil {
			t.Close(CloseRST)
			return nil, &HandshakeError{Stage: "verify", Err: errors.New("no root store configured")}
		}
		if err := cfg.RootStore.Validate(chain, cfg.ServerName, orEpoch(cfg.Time)); err != nil {
			failConn(t, version, cfg.PinFailure)
			herr := &HandshakeError{Stage: "verify", Alert: AlertBadCertificate, Err: err}
			if cfg.PinFailure == FailSilentIdle {
				completeClientHandshake(t, version)
			}
			return nil, herr
		}
	}

	// Pin enforcement.
	if !cfg.SkipPinning && !cfg.Pins.Empty() {
		if !cfg.Pins.MatchChain(chain) {
			failConn(t, version, cfg.PinFailure)
			herr := &HandshakeError{Stage: "pin", Alert: AlertBadCertificate,
				Err: fmt.Errorf("served chain for %s matches no pin", cfg.ServerName)}
			if cfg.PinFailure == FailSilentIdle {
				completeClientHandshake(t, version)
			}
			return nil, herr
		}
	}

	if err := completeClientHandshake(t, version); err != nil {
		return nil, &HandshakeError{Stage: "transport", Err: err}
	}
	return &Conn{t: t, isClient: true, Version: version, Cipher: cipher, PeerChain: chain}, nil
}

// failConn emits the failure signature for the chosen mode. FailSilentIdle
// emits nothing here — the handshake is completed by the caller and the
// connection is left established-but-unused.
func failConn(t Transport, v Version, mode FailureMode) {
	switch mode {
	case FailAlertClose:
		t.Send(alertRecord(v, AlertBadCertificate))
		t.Close(CloseFIN)
	case FailReset:
		t.Close(CloseRST)
	case FailSilentIdle:
		// handled by caller
	}
}

// alertRecord builds an alert as it appears on the wire for the version: a
// plaintext alert record for TLS <= 1.2, an encrypted record disguised as
// application_data (with the characteristic length) for TLS 1.3.
func alertRecord(v Version, code AlertCode) Record {
	if v == TLS13 {
		return Record{
			WireType:   RecAppData,
			Length:     EncryptedAlertWireLen,
			inner:      RecAlert,
			hiddenAlrt: code,
		}
	}
	return Record{WireType: RecAlert, Length: recordHeaderLen + 2, Alert: code}
}

// completeClientHandshake sends the client's closing flight.
func completeClientHandshake(t Transport, v Version) error {
	if v == TLS13 {
		// Encrypted Finished, disguised as application_data: the client's
		// first encrypted record on every successful 1.3 connection.
		return t.Send(Record{
			WireType: RecAppData,
			Length:   finishedWireLen,
			inner:    RecHandshake,
			hsKind:   hsFinished,
		})
	}
	if err := t.Send(Record{WireType: RecHandshake, Length: recordHeaderLen + 4 + 66, hsKind: hsClientKeyExchange}); err != nil {
		return err
	}
	if err := t.Send(Record{WireType: RecChangeCipherSpec, Length: recordHeaderLen + 1}); err != nil {
		return err
	}
	// In TLS <= 1.2 the Finished message is encrypted but the record type
	// on the wire is still handshake(22).
	return t.Send(Record{WireType: RecHandshake, Length: recordHeaderLen + 40, hsKind: hsFinished})
}

// ServerHandshake runs the server side of the handshake and returns the
// established connection plus the observed ClientHello. The MITM proxy
// composes this with its own upstream Client call.
func ServerHandshake(t Transport, cfg0 *ServerConfig) (*Conn, *HelloInfo, error) {
	cfg := cfg0.withDefaults()
	r, err := t.Recv()
	if err != nil {
		return nil, nil, &HandshakeError{Stage: "transport", Err: err}
	}
	hello := r.Hello
	if hello == nil {
		t.Close(CloseRST)
		return nil, nil, &HandshakeError{Stage: "transport", Err: errors.New("expected ClientHello")}
	}
	if cfg.ResetOnAccept {
		t.Close(CloseRST)
		return nil, hello, &HandshakeError{Stage: "transport", Err: errors.New("injected server reset")}
	}
	version, cipher, err := negotiate(hello, cfg.MinVersion, cfg.MaxVersion, cfg.CipherSuites)
	if err != nil {
		t.Send(Record{WireType: RecAlert, Length: recordHeaderLen + 2, Alert: AlertProtocolVersion})
		t.Close(CloseFIN)
		return nil, hello, &HandshakeError{Stage: "negotiate", Alert: AlertProtocolVersion, Err: err}
	}

	chain := cfg.Chain
	if cfg.GetChain != nil {
		chain, err = cfg.GetChain(hello)
		if err != nil {
			t.Send(Record{WireType: RecAlert, Length: recordHeaderLen + 2, Alert: AlertInternalError})
			t.Close(CloseFIN)
			return nil, hello, &HandshakeError{Stage: "negotiate", Alert: AlertInternalError, Err: err}
		}
	}

	sh := &ServerHelloInfo{Version: version, Cipher: cipher}
	if err := t.Send(Record{WireType: RecHandshake, Length: recordHeaderLen + 4 + 72, SHello: sh, hsKind: hsServerHello}); err != nil {
		return nil, hello, &HandshakeError{Stage: "transport", Err: err}
	}

	if version == TLS13 {
		// Compatibility CCS, then the encrypted server flight disguised as
		// application_data: EncryptedExtensions+Certificate+CertificateVerify
		// folded into one record (as coalesced flights commonly are), then
		// Finished.
		if err := t.Send(Record{WireType: RecChangeCipherSpec, Length: recordHeaderLen + 1}); err != nil {
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
		certRec := Record{
			WireType:   RecAppData,
			Length:     chainWireLen(chain) + 64 + tls13InnerType + aeadOverhead,
			inner:      RecHandshake,
			hsKind:     hsCertificate,
			hiddenCert: chain,
		}
		if err := t.Send(certRec); err != nil {
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
		if err := t.Send(Record{WireType: RecAppData, Length: finishedWireLen, inner: RecHandshake, hsKind: hsFinished}); err != nil {
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
	} else {
		if err := t.Send(Record{WireType: RecHandshake, Length: chainWireLen(chain), Certs: chain, hsKind: hsCertificate}); err != nil {
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
		if err := t.Send(Record{WireType: RecHandshake, Length: recordHeaderLen + 4, hsKind: hsServerHelloDone}); err != nil {
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
	}

	// Client's closing flight — or its rejection of our certificate.
	for {
		r, err = t.Recv()
		if err != nil {
			// RST or FIN without alert: client aborted (e.g. FailReset pin
			// behaviour).
			return nil, hello, &HandshakeError{Stage: "transport", Err: err}
		}
		switch {
		case r.WireType == RecAlert:
			t.Close(CloseFIN)
			return nil, hello, &HandshakeError{Stage: "peer-alert", Alert: r.Alert}
		case r.inner == RecAlert:
			t.Close(CloseFIN)
			return nil, hello, &HandshakeError{Stage: "peer-alert", Alert: r.hiddenAlrt}
		case r.hsKind == hsFinished:
			if version != TLS13 {
				// Server's CCS + Finished complete the 1.2 handshake.
				if err := t.Send(Record{WireType: RecChangeCipherSpec, Length: recordHeaderLen + 1}); err != nil {
					return nil, hello, &HandshakeError{Stage: "transport", Err: err}
				}
				if err := t.Send(Record{WireType: RecHandshake, Length: recordHeaderLen + 40, hsKind: hsFinished}); err != nil {
					return nil, hello, &HandshakeError{Stage: "transport", Err: err}
				}
			} else {
				// Post-handshake NewSessionTickets, disguised on the wire.
				for i := 0; i < cfg.SessionTickets; i++ {
					if err := t.Send(Record{
						WireType: RecAppData,
						Length:   SessionTicketWireLen,
						inner:    RecHandshake,
						hsKind:   hsNewSessionTicket,
					}); err != nil {
						return nil, hello, &HandshakeError{Stage: "transport", Err: err}
					}
				}
			}
			return &Conn{t: t, Version: version, Cipher: cipher}, hello, nil
		}
		// Ignore CCS / ClientKeyExchange and keep reading.
	}
}

// Serve runs a complete server connection: handshake, then a request/
// response loop until the client closes. It returns the handshake error if
// any; a clean session returns nil.
func Serve(t Transport, cfg *ServerConfig) error {
	conn, _, err := ServerHandshake(t, cfg)
	if err != nil {
		return err
	}
	respond := cfg.Respond
	if respond == nil {
		respond = func([]byte) []byte { return []byte("HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok") }
	}
	for {
		req, err := conn.Recv()
		if err != nil {
			conn.shutdown(CloseFIN)
			return nil
		}
		if err := conn.Send(respond(req)); err != nil {
			return nil
		}
	}
}

// Send transmits application data.
func (c *Conn) Send(data []byte) error {
	if c.closed {
		return errors.New("tlswire: send on closed conn")
	}
	return c.t.Send(Record{
		WireType: RecAppData,
		Length:   appDataWireLen(c.Version, len(data)),
		inner:    RecAppData,
		appData:  data,
	})
}

// Recv returns the next application payload. Alerts (close_notify or
// otherwise) and transport closure surface as errors.
func (c *Conn) Recv() ([]byte, error) {
	for {
		r, err := c.t.Recv()
		if err != nil {
			return nil, err
		}
		switch {
		case r.WireType == RecAlert:
			return nil, fmt.Errorf("tlswire: received alert %s", r.Alert)
		case r.inner == RecAlert:
			return nil, fmt.Errorf("tlswire: received alert %s", r.hiddenAlrt)
		case r.inner == RecAppData:
			return r.appData, nil
		}
		// Skip post-handshake noise (tickets, CCS).
	}
}

// Close ends the session cleanly: close_notify then FIN.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.t.Send(alertRecord(c.Version, AlertCloseNotify))
	return c.shutdown(CloseFIN)
}

// Abort tears the connection down with a TCP reset.
func (c *Conn) Abort() error { return c.shutdown(CloseRST) }

func (c *Conn) shutdown(flag CloseFlag) error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.t.Close(flag)
}

// Transport exposes the underlying transport (used by the relay in
// mitmproxy).
func (c *Conn) Transport() Transport { return c.t }
