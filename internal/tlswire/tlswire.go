// Package tlswire emulates the TLS wire protocol at record granularity.
//
// The pinning study's dynamic methodology (§4.2.2 of the paper) never
// decrypts traffic: it classifies connections by the *shape* of the record
// stream — which records appear, in which direction, with what lengths, and
// how the connection is torn down (TLS alert, TCP RST, TCP FIN, or silent
// disuse). This package therefore reproduces record framing, version and
// cipher negotiation, certificate delivery, pin enforcement and failure
// signatures faithfully, while replacing bulk cryptography with structured
// messages: a passive observer can see exactly what a real observer would
// (ClientHello contents, cleartext certificates in TLS <= 1.2, record types
// and lengths) and nothing more. In TLS 1.3, every post-ServerHello record
// is disguised as application_data on the wire, exactly as in RFC 8446,
// which is what makes the paper's 1.3 heuristics necessary.
package tlswire

import (
	"errors"
	"fmt"
	"time"

	"pinscope/internal/pki"
)

// Version is a TLS protocol version.
type Version uint16

const (
	TLS10 Version = 0x0301
	TLS11 Version = 0x0302
	TLS12 Version = 0x0303
	TLS13 Version = 0x0304
)

func (v Version) String() string {
	switch v {
	case TLS10:
		return "TLS1.0"
	case TLS11:
		return "TLS1.1"
	case TLS12:
		return "TLS1.2"
	case TLS13:
		return "TLS1.3"
	}
	return fmt.Sprintf("TLS(%#04x)", uint16(v))
}

// CipherSuite is a TLS cipher suite identifier.
type CipherSuite uint16

// A representative suite registry. Values follow IANA assignments where
// they exist.
const (
	// TLS 1.3 suites.
	TLS_AES_128_GCM_SHA256       CipherSuite = 0x1301
	TLS_AES_256_GCM_SHA384       CipherSuite = 0x1302
	TLS_CHACHA20_POLY1305_SHA256 CipherSuite = 0x1303

	// Strong TLS <= 1.2 suites.
	ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 CipherSuite = 0xc02b
	ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 CipherSuite = 0xc02c
	ECDHE_RSA_WITH_AES_128_GCM_SHA256   CipherSuite = 0xc02f
	ECDHE_RSA_WITH_AES_256_GCM_SHA384   CipherSuite = 0xc030

	// Weak suites (DES, 3DES, RC4, EXPORT) — the "bad ciphers" of Table 8.
	RSA_WITH_RC4_128_SHA          CipherSuite = 0x0005
	RSA_WITH_DES_CBC_SHA          CipherSuite = 0x0009
	RSA_WITH_3DES_EDE_CBC_SHA     CipherSuite = 0x000a
	RSA_EXPORT_WITH_RC4_40_MD5    CipherSuite = 0x0003
	RSA_EXPORT_WITH_DES40_CBC_SHA CipherSuite = 0x0008
)

var cipherNames = map[CipherSuite]string{
	TLS_AES_128_GCM_SHA256:              "TLS_AES_128_GCM_SHA256",
	TLS_AES_256_GCM_SHA384:              "TLS_AES_256_GCM_SHA384",
	TLS_CHACHA20_POLY1305_SHA256:        "TLS_CHACHA20_POLY1305_SHA256",
	ECDHE_ECDSA_WITH_AES_128_GCM_SHA256: "ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
	ECDHE_ECDSA_WITH_AES_256_GCM_SHA384: "ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
	ECDHE_RSA_WITH_AES_128_GCM_SHA256:   "ECDHE_RSA_WITH_AES_128_GCM_SHA256",
	ECDHE_RSA_WITH_AES_256_GCM_SHA384:   "ECDHE_RSA_WITH_AES_256_GCM_SHA384",
	RSA_WITH_RC4_128_SHA:                "RSA_WITH_RC4_128_SHA",
	RSA_WITH_DES_CBC_SHA:                "RSA_WITH_DES_CBC_SHA",
	RSA_WITH_3DES_EDE_CBC_SHA:           "RSA_WITH_3DES_EDE_CBC_SHA",
	RSA_EXPORT_WITH_RC4_40_MD5:          "RSA_EXPORT_WITH_RC4_40_MD5",
	RSA_EXPORT_WITH_DES40_CBC_SHA:       "RSA_EXPORT_WITH_DES40_CBC_SHA",
}

func (c CipherSuite) String() string {
	if n, ok := cipherNames[c]; ok {
		return n
	}
	return fmt.Sprintf("CipherSuite(%#04x)", uint16(c))
}

var weakSuites = map[CipherSuite]bool{
	RSA_WITH_RC4_128_SHA:          true,
	RSA_WITH_DES_CBC_SHA:          true,
	RSA_WITH_3DES_EDE_CBC_SHA:     true,
	RSA_EXPORT_WITH_RC4_40_MD5:    true,
	RSA_EXPORT_WITH_DES40_CBC_SHA: true,
}

// IsWeak reports whether the suite is susceptible to known attacks
// (DES/3DES/RC4/EXPORT families).
func (c CipherSuite) IsWeak() bool { return weakSuites[c] }

// TLS13Suite reports whether the suite is exclusive to TLS 1.3.
func (c CipherSuite) TLS13Suite() bool { return c >= 0x1301 && c <= 0x1303 }

// ModernSuites is a sensible default offer for a well-configured client.
var ModernSuites = []CipherSuite{
	TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384, TLS_CHACHA20_POLY1305_SHA256,
	ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, ECDHE_RSA_WITH_AES_128_GCM_SHA256,
	ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, ECDHE_RSA_WITH_AES_256_GCM_SHA384,
}

// LegacySuites is ModernSuites plus weak suites, as advertised by clients
// that never pruned their defaults.
var LegacySuites = append(append([]CipherSuite{}, ModernSuites...),
	RSA_WITH_3DES_EDE_CBC_SHA, RSA_WITH_RC4_128_SHA, RSA_WITH_DES_CBC_SHA,
	RSA_EXPORT_WITH_RC4_40_MD5, RSA_EXPORT_WITH_DES40_CBC_SHA,
)

// RecordType is the content type in a TLS record header, as visible to a
// passive observer.
type RecordType uint8

const (
	RecChangeCipherSpec RecordType = 20
	RecAlert            RecordType = 21
	RecHandshake        RecordType = 22
	RecAppData          RecordType = 23
)

func (r RecordType) String() string {
	switch r {
	case RecChangeCipherSpec:
		return "change_cipher_spec"
	case RecAlert:
		return "alert"
	case RecHandshake:
		return "handshake"
	case RecAppData:
		return "application_data"
	}
	return fmt.Sprintf("record(%d)", uint8(r))
}

// AlertCode is a TLS alert description.
type AlertCode uint8

const (
	AlertCloseNotify        AlertCode = 0
	AlertHandshakeFailure   AlertCode = 40
	AlertBadCertificate     AlertCode = 42
	AlertCertificateExpired AlertCode = 45
	AlertCertificateUnknown AlertCode = 46
	AlertUnknownCA          AlertCode = 48
	AlertProtocolVersion    AlertCode = 70
	AlertInternalError      AlertCode = 80
)

func (a AlertCode) String() string {
	switch a {
	case AlertCloseNotify:
		return "close_notify"
	case AlertHandshakeFailure:
		return "handshake_failure"
	case AlertBadCertificate:
		return "bad_certificate"
	case AlertCertificateExpired:
		return "certificate_expired"
	case AlertCertificateUnknown:
		return "certificate_unknown"
	case AlertUnknownCA:
		return "unknown_ca"
	case AlertProtocolVersion:
		return "protocol_version"
	case AlertInternalError:
		return "internal_error"
	}
	return fmt.Sprintf("alert(%d)", uint8(a))
}

// Wire framing constants used to derive realistic record lengths.
const (
	recordHeaderLen = 5
	aeadOverhead    = 16 // AEAD tag
	tls13InnerType  = 1  // hidden content-type byte in TLS 1.3 records

	// EncryptedAlertWireLen is the on-wire length of an encrypted TLS 1.3
	// alert record: header + 2 alert bytes + inner type + AEAD tag. The
	// paper's second heuristic compares the client's second encrypted
	// record against exactly this length.
	EncryptedAlertWireLen = recordHeaderLen + 2 + tls13InnerType + aeadOverhead // 24

	// finishedLen is the on-wire length of an encrypted Finished message
	// (32-byte verify_data under SHA-256 transcripts).
	finishedWireLen = recordHeaderLen + 4 + 32 + tls13InnerType + aeadOverhead

	// FinishedWireLen exports the Finished record length for the detector's
	// record-size fingerprinting (§4.2.2 style): the client's first encrypted
	// record on every successful TLS 1.3 connection has exactly this length.
	FinishedWireLen = finishedWireLen

	// SessionTicketWireLen is the on-wire length of a NewSessionTicket
	// record (4-byte handshake header + 180-byte ticket body). Tickets,
	// Finished, and alerts are the only server records that follow the
	// certificate flight on connections the client never used, and all
	// three have fixed lengths — so a later server record of any other
	// length fingerprints an application response.
	SessionTicketWireLen = recordHeaderLen + 4 + 180 + tls13InnerType + aeadOverhead
)

// HelloInfo is the observable content of a ClientHello: everything here is
// cleartext on a real wire too.
type HelloInfo struct {
	SNI          string
	MaxVersion   Version
	CipherSuites []CipherSuite
	// ALPN is carried for realism in fingerprints; the detector ignores it.
	ALPN []string
}

// ServerHelloInfo is the observable content of a ServerHello.
type ServerHelloInfo struct {
	Version Version
	Cipher  CipherSuite
}

// handshakeKind distinguishes the handshake messages the emulation models.
type handshakeKind uint8

const (
	hsClientHello handshakeKind = iota + 1
	hsServerHello
	hsCertificate
	hsServerHelloDone
	hsClientKeyExchange
	hsFinished
	hsNewSessionTicket
)

// Record is one TLS record in flight. WireType and Length are what a
// passive observer sees; the remaining fields model message content. In
// TLS 1.3, records after ServerHello carry WireType RecAppData while the
// inner type (hidden from observers) says what they really are.
type Record struct {
	WireType RecordType
	Length   int // full on-wire length including the 5-byte header

	// Cleartext-observable content (nil/zero when not applicable):
	Hello  *HelloInfo       // ClientHello
	SHello *ServerHelloInfo // ServerHello
	Certs  pki.Chain        // cleartext Certificate message (TLS <= 1.2 only)
	Alert  AlertCode        // plaintext alert (TLS <= 1.2 only)

	// Endpoint-only content. A passive capture must never copy these; the
	// netem tap extracts a Summary instead.
	inner      RecordType
	hsKind     handshakeKind
	hiddenCert pki.Chain // TLS 1.3 certificate delivery
	hiddenAlrt AlertCode
	appData    []byte
}

// Summary is the passive observer's view of a record, as stored in packet
// captures.
type Summary struct {
	FromClient bool
	WireType   RecordType
	Length     int
	Hello      *HelloInfo
	SHello     *ServerHelloInfo
	Certs      pki.Chain // only populated when cleartext on the wire
	Alert      AlertCode // only meaningful for plaintext alert records
	HasAlert   bool
}

// Summarize produces the observer view of the record.
func (r Record) Summarize(fromClient bool) Summary {
	s := Summary{
		FromClient: fromClient,
		WireType:   r.WireType,
		Length:     r.Length,
		Hello:      r.Hello,
		SHello:     r.SHello,
		Certs:      r.Certs,
	}
	if r.WireType == RecAlert {
		s.Alert = r.Alert
		s.HasAlert = true
	}
	return s
}

// CloseFlag models how the TCP connection under the TLS session ends.
type CloseFlag uint8

const (
	CloseNone CloseFlag = iota
	CloseFIN
	CloseRST
)

func (c CloseFlag) String() string {
	switch c {
	case CloseFIN:
		return "FIN"
	case CloseRST:
		return "RST"
	}
	return "none"
}

// Transport moves records between two TLS endpoints. Implementations are
// provided by internal/netem; mitmproxy interposes by owning a Transport on
// each side.
type Transport interface {
	// Send transmits one record to the peer.
	Send(Record) error
	// Recv blocks for the next record from the peer. It returns
	// ErrPeerClosed (wrapped, carrying the close flag) once the peer has
	// closed and all buffered records are drained.
	Recv() (Record, error)
	// Close tears the connection down with the given TCP flag. Subsequent
	// Sends fail. Close is idempotent.
	Close(CloseFlag) error
}

// ErrPeerClosed is returned by Recv after the peer closed the transport.
var ErrPeerClosed = errors.New("tlswire: peer closed connection")

// PeerClosedError carries the close flag observed.
type PeerClosedError struct{ Flag CloseFlag }

func (e *PeerClosedError) Error() string {
	return fmt.Sprintf("tlswire: peer closed connection (%s)", e.Flag)
}

// Is makes errors.Is(err, ErrPeerClosed) work.
func (e *PeerClosedError) Is(target error) bool { return target == ErrPeerClosed }

// FailureMode is how a client reacts when certificate validation or pin
// checking fails. Different TLS libraries exhibit different signatures; the
// paper's detector must catch all of them (§4.2.2).
type FailureMode uint8

const (
	// FailAlertClose sends a bad_certificate alert then closes with FIN.
	FailAlertClose FailureMode = iota
	// FailReset aborts the TCP connection with RST and no alert.
	FailReset
	// FailSilentIdle completes the handshake but the application layer
	// swallows the pin error: the connection is never used and is
	// eventually closed with FIN. This produces the "established but
	// unused" signature.
	FailSilentIdle
)

func (f FailureMode) String() string {
	switch f {
	case FailAlertClose:
		return "alert+fin"
	case FailReset:
		return "rst"
	case FailSilentIdle:
		return "silent-idle"
	}
	return "unknown"
}

// chainWireLen approximates the length of a Certificate message from the
// real DER sizes of the chain.
func chainWireLen(chain pki.Chain) int {
	n := recordHeaderLen + 4 + 3 // record header + handshake header + length prefix
	for _, c := range chain {
		n += 3 + len(c.Raw)
	}
	return n
}

func helloWireLen(h *HelloInfo) int {
	n := recordHeaderLen + 4 + 2 + 32 + 1 + 32 // headers, version, random, session id
	n += 2 + 2*len(h.CipherSuites)
	n += 2 + 1 // compression
	n += 4 + len(h.SNI) + 5
	for _, a := range h.ALPN {
		n += len(a) + 1
	}
	n += 40 // misc extensions (supported_versions, key_share, ...)
	return n
}

func appDataWireLen(v Version, payload int) int {
	if v == TLS13 {
		return recordHeaderLen + payload + tls13InnerType + aeadOverhead
	}
	return recordHeaderLen + payload + aeadOverhead + 8 // explicit nonce/IV
}

// negotiate picks the session version and cipher. It returns an error when
// no overlap exists.
func negotiate(h *HelloInfo, minV, maxV Version, serverSuites []CipherSuite) (Version, CipherSuite, error) {
	v := h.MaxVersion
	if v > maxV {
		v = maxV
	}
	if v < minV {
		return 0, 0, fmt.Errorf("tlswire: no common protocol version (client max %s, server min %s)", h.MaxVersion, minV)
	}
	for _, sc := range serverSuites {
		for _, cc := range h.CipherSuites {
			if sc != cc {
				continue
			}
			// TLS 1.3 sessions need 1.3 suites and vice versa.
			if (v == TLS13) == sc.TLS13Suite() {
				return v, sc, nil
			}
		}
	}
	return 0, 0, errors.New("tlswire: no common cipher suite")
}

// now returns the wall-clock instant used for validity checks; nil-safe
// configs default to the study epoch.
func orEpoch(t time.Time) time.Time {
	if t.IsZero() {
		return pki.StudyEpoch
	}
	return t
}
