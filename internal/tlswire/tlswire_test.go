package tlswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVersionStrings(t *testing.T) {
	cases := map[Version]string{
		TLS10: "TLS1.0", TLS11: "TLS1.1", TLS12: "TLS1.2", TLS13: "TLS1.3",
		Version(0x9999): "TLS(0x9999)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Fatalf("%v.String() = %q, want %q", uint16(v), got, want)
		}
	}
}

func TestCipherSuiteStrings(t *testing.T) {
	if TLS_AES_128_GCM_SHA256.String() != "TLS_AES_128_GCM_SHA256" {
		t.Fatal("known suite name wrong")
	}
	if !strings.Contains(CipherSuite(0xdead).String(), "0xdead") {
		t.Fatal("unknown suite not hex-rendered")
	}
}

func TestTLS13SuiteClassification(t *testing.T) {
	for _, c := range []CipherSuite{TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384, TLS_CHACHA20_POLY1305_SHA256} {
		if !c.TLS13Suite() {
			t.Fatalf("%s not classified as 1.3", c)
		}
	}
	if ECDHE_RSA_WITH_AES_128_GCM_SHA256.TLS13Suite() {
		t.Fatal("1.2 suite classified as 1.3")
	}
}

func TestLegacySuitesSupersetOfModern(t *testing.T) {
	modern := map[CipherSuite]bool{}
	for _, c := range ModernSuites {
		modern[c] = true
	}
	weak := 0
	for _, c := range LegacySuites {
		if c.IsWeak() {
			weak++
		}
	}
	if weak == 0 {
		t.Fatal("LegacySuites offers no weak suites")
	}
	for _, c := range ModernSuites {
		found := false
		for _, l := range LegacySuites {
			if l == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("modern suite %s missing from legacy offer", c)
		}
	}
}

func TestRecordTypeStrings(t *testing.T) {
	cases := map[RecordType]string{
		RecChangeCipherSpec: "change_cipher_spec",
		RecAlert:            "alert",
		RecHandshake:        "handshake",
		RecAppData:          "application_data",
		RecordType(99):      "record(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Fatalf("%d.String() = %q", r, got)
		}
	}
}

func TestAlertCodeStrings(t *testing.T) {
	if AlertBadCertificate.String() != "bad_certificate" ||
		AlertCloseNotify.String() != "close_notify" ||
		AlertProtocolVersion.String() != "protocol_version" {
		t.Fatal("alert names wrong")
	}
	if !strings.Contains(AlertCode(200).String(), "200") {
		t.Fatal("unknown alert not numeric")
	}
}

func TestCloseFlagStrings(t *testing.T) {
	if CloseFIN.String() != "FIN" || CloseRST.String() != "RST" || CloseNone.String() != "none" {
		t.Fatal("close flag names wrong")
	}
}

func TestFailureModeStrings(t *testing.T) {
	if FailAlertClose.String() != "alert+fin" || FailReset.String() != "rst" ||
		FailSilentIdle.String() != "silent-idle" {
		t.Fatal("failure mode names wrong")
	}
}

func TestSummarizeHidesEndpointContent(t *testing.T) {
	r := Record{
		WireType: RecAppData,
		Length:   100,
		inner:    RecAppData,
		appData:  []byte("secret payload"),
	}
	s := r.Summarize(true)
	if !s.FromClient || s.WireType != RecAppData || s.Length != 100 {
		t.Fatalf("summary: %+v", s)
	}
	// Summary type has no payload field at all — this test documents that
	// the only record content exposed is the cleartext-observable part.
	if s.Hello != nil || s.Certs != nil || s.HasAlert {
		t.Fatalf("unexpected content in summary: %+v", s)
	}
}

func TestSummarizeAlert(t *testing.T) {
	r := Record{WireType: RecAlert, Length: 7, Alert: AlertBadCertificate}
	s := r.Summarize(false)
	if !s.HasAlert || s.Alert != AlertBadCertificate || s.FromClient {
		t.Fatalf("alert summary: %+v", s)
	}
}

func TestWireLengthsArePositiveAndOrdered(t *testing.T) {
	f := func(sniLen uint8, nCiphers uint8, payload uint16) bool {
		sni := strings.Repeat("a", int(sniLen%64)+1) + ".com"
		ciphers := make([]CipherSuite, int(nCiphers%16)+1)
		for i := range ciphers {
			ciphers[i] = TLS_AES_128_GCM_SHA256
		}
		h := &HelloInfo{SNI: sni, MaxVersion: TLS13, CipherSuites: ciphers}
		if helloWireLen(h) <= recordHeaderLen {
			return false
		}
		p := int(payload % 4096)
		l12 := appDataWireLen(TLS12, p)
		l13 := appDataWireLen(TLS13, p)
		if l12 <= p || l13 <= p {
			return false
		}
		// More payload never shrinks the record.
		return appDataWireLen(TLS13, p+1) > l13-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptedAlertLengthDistinct(t *testing.T) {
	// The §4.2.2 heuristic depends on the encrypted-alert length differing
	// from the Finished length.
	if EncryptedAlertWireLen == finishedWireLen {
		t.Fatal("alert and Finished records are indistinguishable by length")
	}
}

func TestNegotiateVersionClamping(t *testing.T) {
	h := &HelloInfo{MaxVersion: TLS13, CipherSuites: ModernSuites}
	v, c, err := negotiate(h, TLS10, TLS12, ModernSuites)
	if err != nil {
		t.Fatal(err)
	}
	if v != TLS12 || c.TLS13Suite() {
		t.Fatalf("negotiated %s/%s", v, c)
	}
	// Client below server minimum.
	h2 := &HelloInfo{MaxVersion: TLS10, CipherSuites: ModernSuites}
	if _, _, err := negotiate(h2, TLS12, TLS13, ModernSuites); err == nil {
		t.Fatal("negotiated below server minimum")
	}
	// No common suite.
	h3 := &HelloInfo{MaxVersion: TLS13, CipherSuites: []CipherSuite{RSA_WITH_RC4_128_SHA}}
	if _, _, err := negotiate(h3, TLS10, TLS13, ModernSuites); err == nil {
		t.Fatal("negotiated without a common suite")
	}
}

func TestFingerprintProperties(t *testing.T) {
	mk := func(v Version, suites []CipherSuite, alpn []string) *HelloInfo {
		return &HelloInfo{SNI: "x.example.com", MaxVersion: v, CipherSuites: suites, ALPN: alpn}
	}
	a := mk(TLS13, ModernSuites, []string{"h2"})
	b := mk(TLS13, ModernSuites, []string{"h2"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical hellos fingerprint differently")
	}
	// SNI must NOT influence the fingerprint (JA3 semantics) — this is
	// exactly why fingerprints cannot separate OS traffic (same stack,
	// different destination) from app traffic.
	c := mk(TLS13, ModernSuites, []string{"h2"})
	c.SNI = "totally-different.example.org"
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("SNI leaked into the fingerprint")
	}
	d := mk(TLS12, ModernSuites, []string{"h2"})
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("version change did not alter fingerprint")
	}
	e := mk(TLS13, LegacySuites, []string{"h2"})
	if a.Fingerprint() == e.Fingerprint() {
		t.Fatal("cipher change did not alter fingerprint")
	}
	var nilHello *HelloInfo
	if nilHello.Fingerprint() != "" {
		t.Fatal("nil hello fingerprint not empty")
	}
}
