package tlswire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint computes a JA3-style client fingerprint from the observable
// ClientHello: max version, offered cipher suites and ALPN list, hashed to
// a short hex digest.
//
// The study ran into exactly this technique's limit: iOS system services
// and regular apps both ride the platform TLS stack, so their fingerprints
// collide and OS-initiated traffic "exhibits a similar TLS fingerprint as
// regular app traffic" (§4.5) — which is why the paper had to exclude
// associated domains by name rather than by fingerprint. The function
// exists so that analysis code (and tests) can demonstrate that failure
// honestly instead of assuming it.
func (h *HelloInfo) Fingerprint() string {
	if h == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d,", uint16(h.MaxVersion))
	for i, c := range h.CipherSuites {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", uint16(c))
	}
	b.WriteByte(',')
	b.WriteString(strings.Join(h.ALPN, "-"))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}
