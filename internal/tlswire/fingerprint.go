package tlswire

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// Fingerprint computes a JA3-style client fingerprint from the observable
// ClientHello: max version, offered cipher suites and ALPN list, hashed to
// a short hex digest.
//
// The study ran into exactly this technique's limit: iOS system services
// and regular apps both ride the platform TLS stack, so their fingerprints
// collide and OS-initiated traffic "exhibits a similar TLS fingerprint as
// regular app traffic" (§4.5) — which is why the paper had to exclude
// associated domains by name rather than by fingerprint. The function
// exists so that analysis code (and tests) can demonstrate that failure
// honestly instead of assuming it.
func (h *HelloInfo) Fingerprint() string {
	if h == nil {
		return ""
	}
	// Hash the canonical byte string directly: one stack-backed append
	// chain instead of a strings.Builder + fmt round-trip per field.
	b := make([]byte, 0, 96)
	b = strconv.AppendUint(b, uint64(h.MaxVersion), 10)
	b = append(b, ',')
	for i, c := range h.CipherSuites {
		if i > 0 {
			b = append(b, '-')
		}
		b = strconv.AppendUint(b, uint64(c), 10)
	}
	b = append(b, ',')
	for i, p := range h.ALPN {
		if i > 0 {
			b = append(b, '-')
		}
		b = append(b, p...)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
