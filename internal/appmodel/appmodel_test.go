package appmodel

import "testing"

func TestContactedHosts(t *testing.T) {
	a := &App{Conns: []PlannedConn{
		{Host: "a.com"}, {Host: "b.com"}, {Host: "a.com"}, {Host: "c.com"},
	}}
	got := a.ContactedHosts()
	want := []string{"a.com", "b.com", "c.com"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPinnedHostSet(t *testing.T) {
	a := &App{Truth: GroundTruth{PinnedHosts: []string{"x.com", "y.com"}}}
	s := a.PinnedHostSet()
	if !s["x.com"] || !s["y.com"] || s["z.com"] {
		t.Fatalf("set: %v", s)
	}
}

func TestPlatformConstants(t *testing.T) {
	if len(Platforms) != 2 || Platforms[0] != Android || Platforms[1] != IOS {
		t.Fatalf("Platforms: %v", Platforms)
	}
}
