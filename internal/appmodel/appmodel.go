// Package appmodel defines the shared data model for simulated mobile
// applications: platform/category metadata, the packaged artifact, and the
// app's runtime behaviour plan (which destinations it contacts, when, with
// which TLS stack, pins and payloads). The world generator produces App
// values; internal/device executes their behaviour; the analysis pipelines
// observe only the resulting artifacts and traffic.
package appmodel

import (
	"pinscope/internal/apppkg"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// Platform identifies the mobile OS.
type Platform string

const (
	Android Platform = "android"
	IOS     Platform = "ios"
)

// Platforms lists both platforms in canonical order.
var Platforms = []Platform{Android, IOS}

// TLSLib names the TLS implementation behind a connection. Instrumentation
// hook coverage (§4.3) is a property of the library.
type TLSLib string

const (
	// Android stacks.
	LibOkHttp    TLSLib = "okhttp"
	LibConscrypt TLSLib = "conscrypt" // platform default TrustManager
	LibWebView   TLSLib = "android-webview"
	// iOS stacks.
	LibNSURLSession TLSLib = "nsurlsession"
	LibTrustKit     TLSLib = "trustkit"
	LibAFNetworking TLSLib = "afnetworking"
	// Cross-platform stacks.
	LibFlutterBoring TLSLib = "flutter-boringssl"
	LibCustomNative  TLSLib = "custom-native" // bespoke, statically linked; unhookable
)

// PlannedConn is one TLS connection the app will open when run.
type PlannedConn struct {
	// Host is the destination; it doubles as SNI.
	Host string
	// At is the offset in seconds from app launch. The dynamic pipeline's
	// capture window (§4.2.1's 15/30/60 s sweep) filters on it.
	At float64
	// Used marks connections that carry application data after the
	// handshake. Apps open redundant connections they never use; those have
	// Used=false and are a confounder the detector must survive.
	Used bool
	// Pins, when non-empty, are enforced on this connection.
	Pins *pki.PinSet
	// TrustAnchors, when non-nil, replaces the device trust store for this
	// connection — apps with custom PKIs ship and trust their own CA
	// (NSC <trust-anchors>, custom TrustManager / SecTrust policies).
	TrustAnchors *pki.RootStore
	// FailureMode is the wire signature on validation/pin failure.
	FailureMode tlswire.FailureMode
	// MaxVersion and Ciphers describe the client stack's offer.
	MaxVersion tlswire.Version
	Ciphers    []tlswire.CipherSuite
	// Lib is the TLS implementation making this connection.
	Lib TLSLib
	// PIIKinds are embedded into the request payload for this connection.
	PIIKinds []pii.Kind
	// Path is the HTTP request path used when building the payload.
	Path string
	// FirstParty is ground truth for domain ownership. Analysis pipelines
	// must NOT read it; they infer ownership via whois. It exists for
	// generator bookkeeping and test assertions.
	FirstParty bool
}

// GroundTruth records what the generator actually built into an app, for
// detector-quality assertions and EXPERIMENTS.md comparison only. Pipelines
// must never read it.
type GroundTruth struct {
	// PinsAtRuntime is true when at least one planned connection enforces
	// pins.
	PinsAtRuntime bool
	// PinnedHosts are the destinations with enforced pins.
	PinnedHosts []string
	// EmbedsPinMaterial is true when the package carries certificates or
	// pin hashes (whether or not they are enforced at runtime).
	EmbedsPinMaterial bool
	// UsesNSCPins is true when an Android NSC pin-set is declared.
	UsesNSCPins bool
	// Obfuscated marks apps whose pin material is hidden from static
	// analysis (encoded at rest, reconstructed at run time).
	Obfuscated bool
}

// App is one application on one platform.
type App struct {
	// ID is the package/bundle identifier (com.vendor.name).
	ID string
	// Name is the human-readable store name. Common apps share Name and
	// Developer across platforms.
	Name      string
	Developer string
	Platform  Platform
	Category  string
	// CrossKey links the Android and iOS builds of the same product; empty
	// for single-platform apps.
	CrossKey string
	// Release is the platform root-program release the app shipped against
	// (e.g. "kitkat", "ios14"); see internal/rootprogram. Empty when the
	// world was built without a timeline.
	Release string

	// Pkg is the store artifact; nil until materialized.
	Pkg *apppkg.Package
	// Conns is the behaviour plan executed by internal/device.
	Conns []PlannedConn
	// AssociatedDomains mirror the iOS entitlements; the OS contacts them
	// on install (§4.5). Empty on Android.
	AssociatedDomains []string

	// Truth is generator bookkeeping; see GroundTruth.
	Truth GroundTruth
}

// ContactedHosts returns the distinct hosts in the behaviour plan, in first
// occurrence order.
func (a *App) ContactedHosts() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range a.Conns {
		if !seen[c.Host] {
			seen[c.Host] = true
			out = append(out, c.Host)
		}
	}
	return out
}

// PinnedHostSet returns the ground-truth pinned hosts as a set (test helper).
func (a *App) PinnedHostSet() map[string]bool {
	s := make(map[string]bool, len(a.Truth.PinnedHosts))
	for _, h := range a.Truth.PinnedHosts {
		s[h] = true
	}
	return s
}
