package pii

import (
	"strings"
	"testing"

	"pinscope/internal/detrand"
)

func TestProfileDeterministic(t *testing.T) {
	p1 := NewProfile(detrand.New(1))
	p2 := NewProfile(detrand.New(1))
	if *p1 != *p2 {
		t.Fatal("profiles differ for same seed")
	}
	p3 := NewProfile(detrand.New(2))
	if p1.AdID == p3.AdID {
		t.Fatal("different seeds share an Ad ID")
	}
}

func TestProfileShapes(t *testing.T) {
	p := NewProfile(detrand.New(3))
	if len(p.IMEI) != 15 {
		t.Fatalf("IMEI %q not 15 digits", p.IMEI)
	}
	if len(strings.Split(p.AdID, "-")) != 5 {
		t.Fatalf("AdID %q not UUID-shaped", p.AdID)
	}
	if len(strings.Split(p.MAC, ":")) != 6 {
		t.Fatalf("MAC %q malformed", p.MAC)
	}
	if !strings.Contains(p.Email, "@") {
		t.Fatalf("email %q malformed", p.Email)
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	rng := detrand.New(4)
	prof := NewProfile(rng.Child("prof"))
	s := NewScanner(prof)
	for _, k := range AllKinds {
		payload := BuildPayload(rng.Child("p"+string(k)), "t.example.com", "/track", prof, []Kind{k})
		found := s.Scan(payload)
		if !found[k] {
			t.Fatalf("kind %s not detected in %q", k, payload)
		}
	}
}

func TestCleanPayloadHasNoPII(t *testing.T) {
	rng := detrand.New(5)
	prof := NewProfile(rng.Child("prof"))
	s := NewScanner(prof)
	payload := BuildPayload(rng.Child("p"), "t.example.com", "/ping", prof, nil)
	if found := s.Scan(payload); len(found) != 0 {
		t.Fatalf("PII %v detected in clean payload %q", found, payload)
	}
}

func TestMultiKindPayload(t *testing.T) {
	rng := detrand.New(6)
	prof := NewProfile(rng.Child("prof"))
	s := NewScanner(prof)
	kinds := []Kind{AdID, Email, GeoLat}
	payload := BuildPayload(rng.Child("p"), "t.example.com", "/v2/events", prof, kinds)
	found := s.Scan(payload)
	for _, k := range kinds {
		if !found[k] {
			t.Fatalf("missing %s in %q", k, payload)
		}
	}
	if found[IMEI] || found[MAC] {
		t.Fatalf("spurious detections: %v", found)
	}
}

func TestGeoRequiresBothCoordinates(t *testing.T) {
	s := NewScanner(NewProfile(detrand.New(7)))
	if got := s.Scan([]byte("GET /x?lat=42.3601 HTTP/1.1")); got[GeoLat] {
		t.Fatal("lat alone detected as geo")
	}
	if got := s.Scan([]byte("GET /x?lat=42.3601&lon=-71.0589")); !got[GeoLat] {
		t.Fatal("lat+lon pair not detected")
	}
}

func TestStateCityRequireProfileMatch(t *testing.T) {
	prof := NewProfile(detrand.New(8))
	s := NewScanner(prof)
	// A state value that is not the device's state must not count.
	other := "Nebraska"
	if other == prof.State {
		other = "Alaska"
	}
	if got := s.Scan([]byte("POST /t\r\n\r\nstate=" + other)); got[State] {
		t.Fatal("foreign state detected as device PII")
	}
	if got := s.Scan([]byte("POST /t\r\n\r\nstate=" + prof.State)); !got[State] {
		t.Fatal("device state not detected")
	}
}

func TestScanAllUnions(t *testing.T) {
	rng := detrand.New(9)
	prof := NewProfile(rng.Child("prof"))
	s := NewScanner(prof)
	p1 := BuildPayload(rng.Child("1"), "a.com", "/a", prof, []Kind{AdID})
	p2 := BuildPayload(rng.Child("2"), "b.com", "/b", prof, []Kind{Email})
	got := s.ScanAll([][]byte{p1, p2})
	if !got[AdID] || !got[Email] {
		t.Fatalf("union missing kinds: %v", got)
	}
}

func TestKeyVariantsAllDetected(t *testing.T) {
	// The generator rotates parameter spellings; the scanner must catch all
	// of them. Build many payloads to cover the variants.
	rng := detrand.New(10)
	prof := NewProfile(rng.Child("prof"))
	s := NewScanner(prof)
	for i := 0; i < 50; i++ {
		payload := BuildPayload(rng.ChildN("p", i), "t.example.com", "/t", prof, []Kind{AdID, IMEI, MAC})
		got := s.Scan(payload)
		if !got[AdID] || !got[IMEI] || !got[MAC] {
			t.Fatalf("iteration %d missed kinds in %q: %v", i, payload, got)
		}
	}
}
