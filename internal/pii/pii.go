// Package pii synthesizes and detects personally identifiable information
// in application payloads. The study (§4.4, Table 9) compares PII
// prevalence in pinned vs non-pinned traffic after circumventing pinning:
// payloads are generated with realistic identifier shapes by the world
// generator, and the scanner re-detects them with pattern matching — the
// same ReCon-style inference the paper relies on, with the same property
// that detection is approximate, not ground-truth lookup.
package pii

import (
	"fmt"
	"regexp"
	"strings"

	"pinscope/internal/detrand"
)

// Kind enumerates the identifier types the study searches for (§4.4).
type Kind string

const (
	IMEI   Kind = "imei"
	AdID   Kind = "ad_id"
	MAC    Kind = "wifi_mac"
	Email  Kind = "email"
	State  Kind = "state"
	City   Kind = "city"
	GeoLat Kind = "latitude" // latitude/longitude are detected as a pair
)

// AllKinds lists every detectable kind in report order.
var AllKinds = []Kind{IMEI, AdID, MAC, Email, State, City, GeoLat}

// Profile is the device identity whose identifiers may leak. One profile is
// generated per test device.
type Profile struct {
	IMEI  string
	AdID  string
	MAC   string
	Email string
	State string
	City  string
	Lat   string
	Lon   string
}

var usStates = []string{
	"Massachusetts", "California", "Virginia", "Texas", "Washington",
	"NewYork", "Illinois", "Oregon", "Colorado", "Georgia",
}

var usCities = []string{
	"Boston", "Sunnyvale", "Blacksburg", "Austin", "Seattle",
	"Brooklyn", "Chicago", "Portland", "Denver", "Atlanta",
}

// NewProfile generates a deterministic device identity.
func NewProfile(rng *detrand.Source) *Profile {
	digits := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%d", rng.Intn(10))
		}
		return b.String()
	}
	hexs := func(n int) string {
		const h = "0123456789abcdef"
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(h[rng.Intn(16)])
		}
		return b.String()
	}
	i := rng.Intn(len(usStates))
	return &Profile{
		IMEI: "35" + digits(13),
		AdID: fmt.Sprintf("%s-%s-%s-%s-%s", hexs(8), hexs(4), hexs(4), hexs(4), hexs(12)),
		MAC: fmt.Sprintf("%s:%s:%s:%s:%s:%s",
			hexs(2), hexs(2), hexs(2), hexs(2), hexs(2), hexs(2)),
		Email: fmt.Sprintf("tester%s@example-mail.com", digits(4)),
		State: usStates[i],
		City:  usCities[i],
		Lat:   fmt.Sprintf("%d.%s", 24+rng.Intn(24), digits(4)),
		Lon:   fmt.Sprintf("-%d.%s", 70+rng.Intn(50), digits(4)),
	}
}

// Value returns the profile's value for a kind (GeoLat returns the lat;
// payload builders emit lat and lon together).
func (p *Profile) Value(k Kind) string {
	switch k {
	case IMEI:
		return p.IMEI
	case AdID:
		return p.AdID
	case MAC:
		return p.MAC
	case Email:
		return p.Email
	case State:
		return p.State
	case City:
		return p.City
	case GeoLat:
		return p.Lat
	}
	return ""
}

// payloadKeys maps kinds to the request parameter names trackers commonly
// use; the generator picks one per emission so scanners cannot rely on a
// single spelling.
var payloadKeys = map[Kind][]string{
	IMEI:   {"imei", "device_id", "did"},
	AdID:   {"adid", "idfa", "advertising_id", "gaid"},
	MAC:    {"mac", "wifi_mac", "hw_addr"},
	Email:  {"email", "user_email", "login"},
	State:  {"state", "region"},
	City:   {"city", "locality"},
	GeoLat: {"lat", "latitude"},
}

var lonKeys = []string{"lon", "lng", "longitude"}

// BuildPayload renders an HTTP-ish request for host carrying the given PII
// kinds from the profile, plus benign telemetry fields. The result is what
// app connections transmit and what the MITM proxy logs.
func BuildPayload(rng *detrand.Source, host, path string, prof *Profile, kinds []Kind) []byte {
	var params []string
	params = append(params,
		"sdk_ver=4."+fmt.Sprint(rng.Intn(20)),
		"os="+[]string{"android", "ios"}[rng.Intn(2)],
		"session="+fmt.Sprintf("%08x", rng.Uint64()&0xffffffff),
	)
	for _, k := range kinds {
		keys := payloadKeys[k]
		key := keys[rng.Intn(len(keys))]
		params = append(params, key+"="+prof.Value(k))
		if k == GeoLat {
			params = append(params, lonKeys[rng.Intn(len(lonKeys))]+"="+prof.Lon)
		}
	}
	body := strings.Join(params, "&")
	return []byte(fmt.Sprintf(
		"POST %s HTTP/1.1\r\nhost: %s\r\ncontent-type: application/x-www-form-urlencoded\r\ncontent-length: %d\r\n\r\n%s",
		path, host, len(body), body))
}

// Scanner detects PII kinds in payloads. Detection is profile-aware for
// exact identifiers (as the paper's testbed knew its own device IDs) and
// shape-based as a fallback, mirroring ReCon-style matching.
type Scanner struct {
	prof       *Profile
	imeiRe     *regexp.Regexp
	adidRe     *regexp.Regexp
	macRe      *regexp.Regexp
	emailRe    *regexp.Regexp
	latlonRe   *regexp.Regexp
	stateRe    *regexp.Regexp
	cityRe     *regexp.Regexp
	geoPairKey *regexp.Regexp
}

// NewScanner builds a scanner for the given device profile.
func NewScanner(prof *Profile) *Scanner {
	return &Scanner{
		prof:       prof,
		imeiRe:     regexp.MustCompile(`(?i)(?:imei|device_id|did)=(\d{15})`),
		adidRe:     regexp.MustCompile(`(?i)(?:adid|idfa|advertising_id|gaid)=([0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12})`),
		macRe:      regexp.MustCompile(`(?i)(?:mac|wifi_mac|hw_addr)=([0-9a-f]{2}(?::[0-9a-f]{2}){5})`),
		emailRe:    regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`),
		latlonRe:   regexp.MustCompile(`(?i)(?:lat|latitude)=(-?\d{1,3}\.\d+)`),
		geoPairKey: regexp.MustCompile(`(?i)(?:lon|lng|longitude)=(-?\d{1,3}\.\d+)`),
		stateRe:    regexp.MustCompile(`(?i)(?:state|region)=([A-Za-z]+)`),
		cityRe:     regexp.MustCompile(`(?i)(?:city|locality)=([A-Za-z]+)`),
	}
}

// Scan reports the set of PII kinds found in payload.
func (s *Scanner) Scan(payload []byte) map[Kind]bool {
	found := make(map[Kind]bool)
	text := string(payload)
	if m := s.imeiRe.FindStringSubmatch(text); m != nil {
		found[IMEI] = true
	}
	if m := s.adidRe.FindStringSubmatch(text); m != nil {
		found[AdID] = true
	}
	if m := s.macRe.FindStringSubmatch(text); m != nil {
		found[MAC] = true
	}
	if s.emailRe.MatchString(text) {
		found[Email] = true
	}
	// Geo requires both coordinates to avoid matching random decimals.
	if s.latlonRe.MatchString(text) && s.geoPairKey.MatchString(text) {
		found[GeoLat] = true
	}
	if m := s.stateRe.FindStringSubmatch(text); m != nil && s.prof != nil && strings.EqualFold(m[1], s.prof.State) {
		found[State] = true
	}
	if m := s.cityRe.FindStringSubmatch(text); m != nil && s.prof != nil && strings.EqualFold(m[1], s.prof.City) {
		found[City] = true
	}
	return found
}

// ScanAll unions detections across payloads.
func (s *Scanner) ScanAll(payloads [][]byte) map[Kind]bool {
	found := make(map[Kind]bool)
	for _, p := range payloads {
		for k := range s.Scan(p) {
			found[k] = true
		}
	}
	return found
}
