package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestExportShape(t *testing.T) {
	cfg := &lint.Config{
		ExportRoots: []lint.TypeRef{{Pkg: "example.com/export", Name: "Snapshot"}},
	}
	linttest.Run(t, "testdata/exportshape", "example.com/export", lint.NewExportShape(cfg))
}

// TestExportShapeMissingRoot: a configured root that does not exist in the
// package must be reported, not silently skipped.
func TestExportShapeMissingRoot(t *testing.T) {
	cfg := &lint.Config{
		ExportRoots: []lint.TypeRef{{Pkg: "example.com/export", Name: "NoSuchType"}},
	}
	pkg, fset, err := lint.LoadDir("testdata/exportshape", "example.com/export")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewExportShape(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("expected exactly the missing-root diagnostic, got %v", diags)
	}
	if got := diags[0].Message; got != "export root example.com/export.NoSuchType not found" {
		t.Fatalf("unexpected message %q", got)
	}
}
