package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestDetrandFlow(t *testing.T) {
	cfg := &lint.Config{
		DetrandFlowPackages: []string{"example.com/dflow"},
		DetrandSourceTypes:  []lint.TypeRef{{Pkg: "pinscope/internal/detrand", Name: "Source"}},
	}
	linttest.Run(t, "testdata/detrandflow", "example.com/dflow", lint.NewDetrandFlow(cfg))
}

func TestDetrandFlowExemptPackage(t *testing.T) {
	// The detrand implementation itself builds labels from parameters by
	// design; under an exempted import path the fixture yields nothing.
	cfg := &lint.Config{
		DetrandFlowPackages: []string{"example.com/..."},
		DetrandFlowExempt:   []string{"example.com/dflow"},
		DetrandSourceTypes:  []lint.TypeRef{{Pkg: "pinscope/internal/detrand", Name: "Source"}},
	}
	pkg, fset, err := lint.LoadDir("testdata/detrandflow", "example.com/dflow")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewDetrandFlow(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}
