package lint

// cfg.go builds basic-block control-flow graphs over go/ast function
// bodies — the substrate the path-sensitive analyzers (goroutinelifetime,
// locksafety, journaldiscipline, errdrop) run on. The builder is
// deliberately conservative: it models Go's structured control flow
// (if/for/range/switch/select, labeled break/continue, goto, fallthrough),
// treats panic and the no-return terminators (os.Exit, log.Fatal*,
// runtime.Goexit) as dead ends rather than edges to the exit block, and
// collects deferred calls separately since they run on every exit path.
//
// A block's Nodes list is non-overlapping: a control statement contributes
// only its leaf components (init/cond/post expressions, comm statements,
// the range header) to blocks, never its nested bodies — those live in
// blocks of their own. Composite statements whose header an analyzer may
// still need (select dispatch, range loops, go/defer statements) are
// represented by a CtrlNode wrapper so Block.Inspect can surface the
// header without descending into the nested bodies twice.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CtrlNode wraps a control statement's header in a block's node list
// without pulling the statement's nested bodies into the block. It
// implements ast.Node positionally but must not be passed to ast.Inspect;
// Block.Inspect handles it.
type CtrlNode struct{ Stmt ast.Stmt }

// Pos implements ast.Node.
func (c CtrlNode) Pos() token.Pos { return c.Stmt.Pos() }

// End implements ast.Node.
func (c CtrlNode) End() token.Pos { return c.Stmt.End() }

// Inspect applies f to every AST node owned by the block, in order.
// CtrlNode headers are passed to f directly (no descent — their bodies
// live in other blocks), and function literals are not descended into:
// a literal's body is a different function with its own CFG.
func (b *Block) Inspect(f func(ast.Node) bool) {
	for _, n := range b.Nodes {
		if cn, ok := n.(CtrlNode); ok {
			f(cn)
			continue
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				f(m)
				return false
			}
			return f(m)
		})
	}
}

// CFG is one function body's control-flow graph. Entry is the first block;
// Exit is a synthetic empty block every return (and the fall-off end of
// the body) feeds. Panic and no-return terminator calls end their block
// with no successors, so Exit-reachability means "can return normally".
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists deferred calls in source order, regardless of path;
	// they run at every exit, so all-paths analyses treat a deferred
	// signal as covering the whole function.
	Defers []*ast.CallExpr
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label    string
	brk      *Block
	cont     *Block // nil for switch/select frames
	fallthru *Block // next case block, for fallthrough
}

type cfgBuilder struct {
	cfg    *CFG
	info   *types.Info
	cur    *Block // nil while unreachable (after return/branch)
	frames []loopFrame
	labels map[string]*Block // goto targets
	// pendingLabel names the label attached to the next loop/switch built.
	pendingLabel string
}

// BuildCFG constructs the control-flow graph of one function body. info
// may be nil; it is only consulted to recognize no-return terminator
// calls (os.Exit, log.Fatal*, runtime.Goexit) by qualified name.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	c := &CFG{Exit: &Block{}}
	b := &cfgBuilder{cfg: c, info: info, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, c.Exit)
	}
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a leaf node to the current block (no-op while unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Statements after a terminator still get blocks — unreachable ones,
	// with no predecessors — so analyses can see (and tests can assert on)
	// dead code.
	if b.cur == nil {
		switch s.(type) {
		case *ast.EmptyStmt:
			return
		}
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is a join point: goto targets land here.
		target, ok := b.labels[s.Label.Name]
		if !ok {
			target = b.newBlock()
			b.labels[s.Label.Name] = target
		}
		b.edge(b.cur, target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		var post *Block
		cont := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, CtrlNode{s})
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(CtrlNode{s})
		dispatch := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(dispatch, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
		// A select with no cases blocks forever; its after-block simply
		// has no predecessors then.

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
		b.add(CtrlNode{s})

	case *ast.GoStmt:
		// The spawned body is a different goroutine: its statements do
		// not belong to this function's blocks. The header (with the
		// call's arguments, evaluated here) is kept as a CtrlNode.
		b.add(CtrlNode{s})

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, etc.: straight-line.
		b.add(s)
	}
}

// switchStmt builds both expression and type switches.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		clauses = s.Body.List
	}
	cond := b.cur
	after := b.newBlock()
	hasDefault := false
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, caseBlocks[i])
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		frame := loopFrame{label: label, brk: after}
		if i+1 < len(caseBlocks) {
			frame.fallthru = caseBlocks[i+1]
		}
		b.frames = append(b.frames, frame)
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	b.cur = after
}

// branch resolves break/continue/goto/fallthrough against the frame stack.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	find := func(want func(loopFrame) *Block) *Block {
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if s.Label != nil && f.label != s.Label.Name {
				continue
			}
			if t := want(f); t != nil {
				return t
			}
		}
		return nil
	}
	var target *Block
	switch s.Tok {
	case token.BREAK:
		target = find(func(f loopFrame) *Block { return f.brk })
	case token.CONTINUE:
		target = find(func(f loopFrame) *Block { return f.cont })
	case token.FALLTHROUGH:
		target = find(func(f loopFrame) *Block { return f.fallthru })
	case token.GOTO:
		if s.Label != nil {
			t, ok := b.labels[s.Label.Name]
			if !ok {
				t = b.newBlock()
				b.labels[s.Label.Name] = t
			}
			target = t
		}
	}
	if target != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// noReturnFuncs are the stdlib calls that never return: a block ending in
// one has no successors, the same as panic.
var noReturnFuncs = map[[2]string]bool{
	{"os", "Exit"}:        true,
	{"runtime", "Goexit"}: true,
	{"log", "Fatal"}:      true,
	{"log", "Fatalf"}:     true,
	{"log", "Fatalln"}:    true,
}

// terminates reports whether call never returns (panic or a no-return
// stdlib function).
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if b.info == nil {
				return true
			}
			if _, isBuiltin := b.info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		if obj := b.info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			return noReturnFuncs[[2]string{obj.Pkg().Path(), obj.Name()}]
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// ExitReachable reports whether the function can return normally.
func (c *CFG) ExitReachable() bool {
	return c.Reachable()[c.Exit]
}
