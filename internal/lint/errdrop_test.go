package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestErrDrop(t *testing.T) {
	cfg := &lint.Config{
		ErrDropPackages:    []string{"example.com/edrop"},
		ErrDropCloserTypes: []lint.TypeRef{{Pkg: "pinscope/internal/journal", Name: "Writer"}},
		ErrDropExemptTypes: []lint.TypeRef{{Pkg: "pinscope/internal/atomicio", Name: "Writer"}},
	}
	linttest.Run(t, "testdata/errdrop", "example.com/edrop", lint.NewErrDrop(cfg))
}
