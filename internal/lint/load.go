package lint

// load.go enumerates and type-checks packages without any dependency
// outside the standard library. `go list -export -deps -json` yields, for
// every package in the transitive import graph, the path to the compiler's
// export data in the build cache; go/importer's "gc" mode accepts a lookup
// function that serves exactly those files. Each target package is then
// parsed from source and type-checked independently, importing everything
// else (stdlib and sibling module packages alike) from export data — the
// same architecture as a real go/analysis driver, minus the x/tools
// dependency this repo cannot take.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: %v failed: %v\n%s", cmd.Args, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages parses and type-checks the packages matching patterns,
// resolved relative to dir (a directory inside the module). The returned
// fset covers all of them and carries full comment positions.
func LoadPackages(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	})

	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// LoadDir parses and type-checks the single package rooted at dir as
// pkgPath. dir must sit inside a module (so `go list` can resolve the
// package's imports to export data); the files themselves need not be part
// of any `go list ./...` universe — this is what lets the linttest harness
// load testdata packages the build otherwise ignores.
func LoadDir(dir, pkgPath string) (*Package, *token.FileSet, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, m := range matches {
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Error"}, paths...)
		listed, err := goList(dir, args...)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: pkg, Info: info}, fset, nil
}

// checkPackage parses files and type-checks them as package pkgPath.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}
