package lint

// dataflow.go is the analysis layer over the CFG: reaching definitions for
// local variables (enough to ask "where was this receiver opened / derived
// from?") and the two all-paths predicates the discipline analyzers need —
// "does every path to the exit pass a node satisfying P" and "does every
// path to this node pass a node satisfying P first".

import (
	"go/ast"
	"go/types"
	"sort"
)

// ReachingDefs holds, per block, the definitions of each local variable
// that can reach the block's entry. A definition is the AST node that
// assigns the variable: an assignment or declaration statement, a range
// header (CtrlNode), or — for parameters and receivers — the *ast.Field
// that declares them.
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info
	in   map[*Block]map[*types.Var]map[ast.Node]bool
}

// BuildReachingDefs solves reaching definitions over c to a fixpoint.
// params (the function's receiver, parameter and named-result fields) seed
// the entry block's definitions.
func BuildReachingDefs(c *CFG, info *types.Info, params ...*ast.FieldList) *ReachingDefs {
	r := &ReachingDefs{cfg: c, info: info, in: map[*Block]map[*types.Var]map[ast.Node]bool{}}

	entry := map[*types.Var]map[ast.Node]bool{}
	for _, fl := range params {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					entry[v] = map[ast.Node]bool{f: true}
				}
			}
		}
	}
	r.in[c.Entry] = entry

	// Worklist to fixpoint: out(b) = gen(b) over in(b); in(b) = ∪ out(preds).
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := r.transferBlock(b, r.in[b])
		for _, s := range b.Succs {
			if r.merge(s, out) {
				work = append(work, s)
			}
		}
	}
	return r
}

// merge unions defs into in(b); reports whether anything changed.
func (r *ReachingDefs) merge(b *Block, defs map[*types.Var]map[ast.Node]bool) bool {
	in := r.in[b]
	if in == nil {
		in = map[*types.Var]map[ast.Node]bool{}
		r.in[b] = in
	}
	changed := false
	for v, nodes := range defs {
		dst := in[v]
		if dst == nil {
			dst = map[ast.Node]bool{}
			in[v] = dst
		}
		for n := range nodes {
			if !dst[n] {
				dst[n] = true
				changed = true
			}
		}
	}
	return changed
}

// transferBlock applies b's definitions to state, returning the out set.
func (r *ReachingDefs) transferBlock(b *Block, state map[*types.Var]map[ast.Node]bool) map[*types.Var]map[ast.Node]bool {
	out := map[*types.Var]map[ast.Node]bool{}
	for v, nodes := range state {
		cp := map[ast.Node]bool{}
		for n := range nodes {
			cp[n] = true
		}
		out[v] = cp
	}
	for _, n := range b.Nodes {
		r.transferNode(n, out)
	}
	return out
}

// transferNode kills and gens definitions for one block node.
func (r *ReachingDefs) transferNode(n ast.Node, state map[*types.Var]map[ast.Node]bool) {
	def := func(id *ast.Ident, site ast.Node) {
		var v *types.Var
		if d, ok := r.info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := r.info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return
		}
		state[v] = map[ast.Node]bool{site: true} // strong update: kill + gen
	}
	switch n := n.(type) {
	case CtrlNode:
		if rg, ok := n.Stmt.(*ast.RangeStmt); ok {
			if id, ok := rg.Key.(*ast.Ident); ok {
				def(id, n)
			}
			if id, ok := rg.Value.(*ast.Ident); ok {
				def(id, n)
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				def(id, n)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			def(id, n)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if id.Name != "_" {
							def(id, n)
						}
					}
				}
			}
		}
	}
}

// DefsAt returns the definitions of v that reach the use at node index idx
// within block b (i.e. after applying the block's first idx nodes).
func (r *ReachingDefs) DefsAt(b *Block, idx int, v *types.Var) []ast.Node {
	state := map[*types.Var]map[ast.Node]bool{}
	for vv, nodes := range r.in[b] {
		cp := map[ast.Node]bool{}
		for n := range nodes {
			cp[n] = true
		}
		state[vv] = cp
	}
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		r.transferNode(b.Nodes[i], state)
	}
	return sortedDefs(state[v])
}

// DefsReaching returns the definitions of v reaching the entry of b.
func (r *ReachingDefs) DefsReaching(b *Block, v *types.Var) []ast.Node {
	return sortedDefs(r.in[b][v])
}

// sortedDefs renders a definition set in source order, so diagnostics that
// mention definitions are deterministic.
func sortedDefs(set map[ast.Node]bool) []ast.Node {
	var out []ast.Node
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// EveryPathHits reports whether every entry→exit path passes through a
// block for which hit returns true. Paths that never reach the exit
// (infinite loops, paths ending in panic or a no-return call) do not
// count; use ExitReachable to detect functions that cannot return at all.
// Implementation: the exit must be unreachable once hitting blocks are
// removed from the graph.
func (c *CFG) EveryPathHits(hit func(*Block) bool) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool // returns true if exit reached avoiding hits
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if hit(b) {
			return false
		}
		if b == c.Exit {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return !walk(c.Entry)
}

// HitsBefore reports whether every entry path to target's node index
// targetIdx in block target passes a node satisfying hit first. Nodes
// earlier in the target block itself count. CtrlNode headers are passed
// to hit as-is; other nodes are inspected recursively.
func (c *CFG) HitsBefore(target *Block, targetIdx int, hit func(ast.Node) bool) bool {
	nodeHits := func(n ast.Node) bool {
		if cn, ok := n.(CtrlNode); ok {
			return hit(cn)
		}
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if m != nil && hit(m) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	blockHits := func(b *Block, upto int) bool {
		n := len(b.Nodes)
		if upto >= 0 && upto < n {
			n = upto
		}
		for i := 0; i < n; i++ {
			if nodeHits(b.Nodes[i]) {
				return true
			}
		}
		return false
	}
	// DFS from entry over non-hitting blocks; reaching target whose prefix
	// before targetIdx does not hit means an unguarded path exists.
	seen := map[*Block]bool{}
	var walk func(*Block) bool // true = unguarded path to target found
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if b == target {
			return !blockHits(b, targetIdx)
		}
		if blockHits(b, -1) {
			return false
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return !walk(c.Entry)
}
