package lint

// mapdeterminism catches the classic nondeterministic-report bug class: a
// `for ... range` over a map whose body lets iteration order escape — by
// appending to an outer slice, concatenating onto an outer string, or
// writing bytes into a writer or hash — without an evident sort
// re-establishing a total order afterwards.
//
// Commutative accumulation (integer sums, map/set inserts, min/max
// updates) is deliberately not a sink: those are order-insensitive.
// Floating-point accumulation over map order is order-sensitive in the
// last ulp but is ubiquitous and low-stakes, so it is out of scope here
// (see DESIGN.md).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewMapDeterminism builds the mapdeterminism analyzer over cfg.
func NewMapDeterminism(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "mapdeterminism",
		Doc: "flags map iteration whose order escapes into slices, output streams " +
			"or hashes without a subsequent sort",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.MapOrderPackages, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(pass.Info.TypeOf(rs.X)) {
					return true
				}
				for _, s := range findSinks(pass, rs) {
					if s.sortable && sortedAfter(pass, stack, rs, s) {
						continue
					}
					pass.Reportf(s.pos, "map iteration order escapes via %s; %s",
						s.what, s.remedy())
				}
				return true
			})
		}
		return nil
	}
	return a
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sink is one order-escaping operation found in a map-range body.
type sink struct {
	pos      token.Pos
	what     string
	target   string // rendered expr the escape accumulates into ("" for writes)
	bucketOf string // for M[k] targets, the rendered map expr M
	sortable bool   // a later sort of target redeems it
}

func (s sink) remedy() string {
	if s.sortable {
		return "sort " + s.target + " afterwards or iterate sorted keys"
	}
	return "collect and sort keys first, then iterate the sorted keys"
}

// findSinks scans the body of a map range for order-escaping operations.
// Nested map ranges are reported by their own visit, but their bodies still
// count as part of this loop's body (an escape two levels down still
// escapes this loop's order).
func findSinks(pass *Pass, rs *ast.RangeStmt) []sink {
	var sinks []sink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if s, ok := appendSink(pass, rs, x); ok {
				sinks = append(sinks, s)
			}
			if s, ok := concatSink(pass, rs, x); ok {
				sinks = append(sinks, s)
			}
		case *ast.CallExpr:
			if s, ok := writeSink(pass, rs, x); ok {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks
}

// appendSink matches `t = append(t2, ...)` where t is declared outside the
// loop.
func appendSink(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) (sink, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return sink{}, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") {
		return sink{}, false
	}
	if !outerTarget(pass, rs, as.Lhs[0]) {
		return sink{}, false
	}
	t := types.ExprString(as.Lhs[0])
	s := sink{pos: as.Pos(), what: "append to " + t, target: t, sortable: true}
	// M[k] = append(M[k], ...) is a per-bucket accumulation; a later
	// sort-every-bucket loop over M redeems it.
	if ix, ok := as.Lhs[0].(*ast.IndexExpr); ok && isMapType(pass.Info.TypeOf(ix.X)) {
		s.bucketOf = types.ExprString(ix.X)
	}
	return s, true
}

// concatSink matches `s += ...` on an outer string.
func concatSink(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) (sink, bool) {
	if as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
		return sink{}, false
	}
	lt := pass.Info.TypeOf(as.Lhs[0])
	if lt == nil {
		return sink{}, false
	}
	if b, ok := lt.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return sink{}, false
	}
	if !outerTarget(pass, rs, as.Lhs[0]) {
		return sink{}, false
	}
	t := types.ExprString(as.Lhs[0])
	return sink{pos: as.Pos(), what: "string concatenation onto " + t, target: t, sortable: true}, true
}

// writeMethods are receiver methods that emit bytes in call order (io
// writers, strings.Builder, hash.Hash).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtOutputFuncs are fmt functions that emit directly.
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// writeSink matches byte-emitting calls whose destination outlives the
// loop: w.Write*/b.WriteString/h.Write on an outer receiver, and
// fmt.Fprint*/fmt.Print*.
func writeSink(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) (sink, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return sink{}, false
	}
	if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if fmtOutputFuncs[obj.Name()] {
			// fmt.Print* writes os.Stdout; fmt.Fprint* writes its first
			// argument — outer unless created in the loop.
			if strings.HasPrefix(obj.Name(), "F") && len(call.Args) > 0 && !outerTarget(pass, rs, call.Args[0]) {
				return sink{}, false
			}
			return sink{pos: call.Pos(), what: "fmt." + obj.Name()}, true
		}
		return sink{}, false
	}
	if !writeMethods[sel.Sel.Name] {
		return sink{}, false
	}
	// Method call: only a sink when the receiver is a value from outside
	// the loop (a per-iteration buffer is order-local).
	if !outerTarget(pass, rs, sel.X) {
		return sink{}, false
	}
	return sink{pos: call.Pos(), what: types.ExprString(sel.X) + "." + sel.Sel.Name}, true
}

// isBuiltin reports whether fun denotes the builtin of the given name.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// outerTarget reports whether e refers to storage declared outside the
// range statement. Selectors, index expressions and non-local identifiers
// count as outer; identifiers whose declaration sits inside the loop do
// not.
func outerTarget(pass *Pass, rs *ast.RangeStmt, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(x)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr:
		return outerTarget(pass, rs, x.X)
	case *ast.IndexExpr:
		return outerTarget(pass, rs, x.X)
	case *ast.ParenExpr:
		return outerTarget(pass, rs, x.X)
	case *ast.StarExpr:
		return outerTarget(pass, rs, x.X)
	case *ast.CallExpr, *ast.UnaryExpr:
		// &buf, f() — conservatively outer.
		return true
	}
	return true
}

// sortedAfter reports whether, in some enclosing block, a statement after
// the range applies a sort/slices ordering call mentioning the sink's
// target, or — for per-bucket sinks — a sort-every-bucket loop over the
// sink's map.
func sortedAfter(pass *Pass, stack []ast.Node, rs *ast.RangeStmt, s sink) bool {
	var child ast.Node = rs
	for i := len(stack) - 1; i >= 0; i-- {
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			child = stack[i]
			continue
		}
		past := false
		for _, st := range blk.List {
			if !past {
				if st == child || containsNode(st, child) {
					past = true
				}
				continue
			}
			if sortsTarget(pass, st, s.target) {
				return true
			}
			if s.bucketOf != "" && sortsBuckets(pass, st, s.bucketOf) {
				return true
			}
		}
		child = blk
	}
	return false
}

// sortsBuckets recognizes the sort-every-bucket idiom:
//
//	for _, v := range M { sort.X(v) }
//
// anywhere inside stmt, for the map rendered as mapExpr.
func sortsBuckets(pass *Pass, stmt ast.Stmt, mapExpr string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || types.ExprString(rs.X) != mapExpr {
			return true
		}
		val, ok := rs.Value.(*ast.Ident)
		if !ok {
			return true
		}
		if sortsTarget(pass, rs.Body, val.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsNode reports whether outer's subtree contains n.
func containsNode(outer, n ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// sortsTarget reports whether stmt's subtree calls sort.* or slices.Sort*
// with an argument mentioning target.
func sortsTarget(pass *Pass, stmt ast.Stmt, target string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort":
			// every sort.* entry point orders its argument
		case "slices":
			if !strings.HasPrefix(obj.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprMentions reports whether some sub-expression of e renders exactly as
// target ("keys" matches sort.Sort(byLen(keys)) but not a variable named
// "monkeys").
func exprMentions(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// inspectWithStack is ast.Inspect with the path of ancestors (outermost
// first, excluding n itself) passed to f.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			// Still push: ast.Inspect will not descend, but it also will
			// not send the matching nil pop.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
