package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestLockSafety(t *testing.T) {
	cfg := &lint.Config{
		LockSafetyPackages: []string{"example.com/locks"},
	}
	linttest.Run(t, "testdata/locksafety", "example.com/locks", lint.NewLockSafety(cfg))
}
