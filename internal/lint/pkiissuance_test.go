package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestPKIIssuance(t *testing.T) {
	cfg := &lint.Config{
		PKIIssuancePackages: []string{"example.com/issuance"},
	}
	linttest.Run(t, "testdata/pkiissuance", "example.com/issuance", lint.NewPKIIssuance(cfg))
}

func TestPKIIssuanceExemptPackage(t *testing.T) {
	// The same fixture under an exempted import path yields nothing: the
	// pki implementation package is the designated issuance layer.
	cfg := &lint.Config{
		PKIIssuancePackages: []string{"example.com/..."},
		PKIIssuanceExempt:   []string{"example.com/issuance"},
	}
	pkg, fset, err := lint.LoadDir("testdata/pkiissuance", "example.com/issuance")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewPKIIssuance(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}
