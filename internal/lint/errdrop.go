package lint

// errdrop flags discarded errors from Close, Sync and Flush on write
// paths: a dropped Close on a written file can silently lose the final
// bytes (close is where delayed-write errors surface), a dropped Sync
// voids the durability the crash-only design depends on, and a dropped
// bufio Flush can lose the entire buffered tail.
//
// Watched receivers: *os.File handles opened for writing (decided by
// reaching definitions — handles from os.Open are read-only and exempt,
// handles of unknown provenance stay silent), *bufio.Writer, and the
// configured write-handle types (journal.Writer). Types in
// ErrDropExemptTypes are skipped (atomicio.Writer's post-Commit Close is a
// documented no-op). Two idioms are deliberately permitted: an explicit
// discard (`_ = f.Close()`) documents intent, and a drop inside a
// cleanup-on-error path — a statement list that goes on to return an
// error — is already failing, so the close error has nowhere better to go.

import (
	"go/ast"
	"go/types"
)

// errDropMethods are the checked method names.
var errDropMethods = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// NewErrDrop builds the errdrop analyzer over cfg.
func NewErrDrop(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc: "Close/Sync/Flush errors on write paths must be checked: dropped ones " +
			"silently lose buffered bytes or durability",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.ErrDropPackages, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			checkErrDrop(pass, cfg, file)
		}
		return nil
	}
	return a
}

// checkErrDrop scans one file's statement lists for dropped calls.
func checkErrDrop(pass *Pass, cfg *Config, file *ast.File) {
	// Per-function CFG + reaching defs, built lazily for os.File receivers.
	type fnState struct {
		cfg *CFG
		rd  *ReachingDefs
	}
	states := map[*ast.BlockStmt]*fnState{}
	var curBody *ast.BlockStmt

	stateFor := func() *fnState {
		st := states[curBody]
		if st == nil {
			c := BuildCFG(curBody, pass.Info)
			st = &fnState{cfg: c, rd: BuildReachingDefs(c, pass.Info, enclosingParams(pass, curBody)...)}
			states[curBody] = st
		}
		return st
	}

	// writeOpenedFile decides, via reaching definitions, whether recv is an
	// *os.File opened for writing at the dropped call. Handles from os.Open
	// are read-only; unknown provenance (parameters, struct fields, handles
	// returned by helpers) stays silent rather than guessing.
	writeOpenedFile := func(recv ast.Expr, at ast.Node) bool {
		id, ok := unparen(recv).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := objOf(pass.Info, id).(*types.Var)
		if !ok {
			return false
		}
		st := stateFor()
		blk, idx, found := findBlockNode(st.cfg, at.Pos())
		if !found {
			return false
		}
		for _, d := range st.rd.DefsAt(blk, idx, v) {
			as, ok := d.(*ast.AssignStmt)
			if !ok || len(as.Rhs) == 0 {
				continue
			}
			call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := CalleeOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				continue
			}
			switch fn.Name() {
			case "Create", "OpenFile", "CreateTemp":
				return true
			}
		}
		return false
	}

	// visitList checks one statement list; idx is the dropped call's
	// position so the cleanup-on-error idiom can look at what follows.
	visitList := func(list []ast.Stmt) {
		for i, s := range list {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !errDropMethods[sel.Sel.Name] {
				continue
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !returnsError(sig) {
				continue
			}
			recvType := sig.Recv().Type()
			if typeMatchesAny(recvType, cfg.ErrDropExemptTypes) {
				continue
			}
			watched := false
			switch {
			case typeMatchesAny(recvType, cfg.ErrDropCloserTypes):
				watched = true
			case typeMatchesAny(recvType, []TypeRef{{Pkg: "bufio", Name: "Writer"}}):
				watched = true
			case typeMatchesAny(recvType, []TypeRef{{Pkg: "os", Name: "File"}}):
				watched = writeOpenedFile(sel.X, es)
			}
			if !watched {
				continue
			}
			if errorReturnFollows(pass, list[i+1:]) {
				continue // cleanup on an already-failing path
			}
			pass.Reportf(call.Pos(),
				"error from %s.%s discarded on a write path; buffered bytes or durability can be lost silently",
				types.ExprString(sel.X), sel.Sel.Name)
		}
	}

	var inspectBody func(body *ast.BlockStmt)
	inspectBody = func(body *ast.BlockStmt) {
		prev := curBody
		curBody = body
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				inspectBody(n.Body)
				return false
			case *ast.BlockStmt:
				visitList(n.List)
			case *ast.CaseClause:
				visitList(n.Body)
			case *ast.CommClause:
				visitList(n.Body)
			}
			return true
		})
		curBody = prev
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			inspectBody(fd.Body)
		}
	}
}

// returnsError reports whether sig's last result is the error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errorReturnFollows reports whether rest (the statements after the
// dropped call in its list) returns a non-nil error expression — the
// cleanup-on-error idiom.
func errorReturnFollows(pass *Pass, rest []ast.Stmt) bool {
	for _, s := range rest {
		rs, ok := s.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, e := range rs.Results {
			if id, ok := unparen(e).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			t := pass.Info.TypeOf(e)
			if t == nil {
				continue
			}
			if named, ok := t.(*types.Named); ok &&
				named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
