package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestAtomicSwap(t *testing.T) {
	cfg := &lint.Config{
		AtomicSwapPackages: []string{"example.com/aswap"},
		SwapFuncs: map[string][]string{
			"example.com/aswap": {"Cache.swap"},
		},
	}
	linttest.Run(t, "testdata/atomicswap", "example.com/aswap", lint.NewAtomicSwap(cfg))
}
