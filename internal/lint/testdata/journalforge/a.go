// Package forge exercises journaldiscipline rule 1: outside the
// designated writer packages, WAL bytes may not be produced at all.
package forge

import (
	"os"

	"pinscope/internal/journal"
)

const walMagic = "PINWAL1\n" // want "WAL magic forged outside the journal package"

func forgeCreate(path string) (*journal.Writer, error) {
	return journal.Create(path, []byte("m")) // want "journal\.Create hands out a fresh WAL writer"
}

func forgeResume(path string) (*journal.Writer, error) {
	rec, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	return rec.AppendTo(path) // want "journal\.AppendTo hands out an append handle" "journal\.AppendTo not preceded by a journal meta check"
}

func forgeAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) // want "os\.O_APPEND outside the journal package"
}

func okReader(path string) (*journal.Reader, error) {
	return journal.OpenReader(path) // reading recovered journals is unrestricted
}
