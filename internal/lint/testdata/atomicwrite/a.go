// Package awrite is atomicwrite testdata: bare in-place file writes that
// must be routed through internal/atomicio, plus the patterns that stay
// legal (read-side os calls, temp files, and a justified allow).
package awrite

import "os"

// Export writes an artifact with os.Create: the torn-artifact window.
func Export(path string, data []byte) error {
	f, err := os.Create(path) // want "os.Create truncates the destination in place"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// Dump writes an artifact with os.WriteFile: same window, one call.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile writes the destination in place"
}

// Load only reads; read-side os calls are not the analyzer's business.
func Load(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path)
}

// Scratch uses a temp file it never promotes to an artifact; os.CreateTemp
// is the building block atomicio itself is made of and stays legal.
func Scratch() (*os.File, error) {
	return os.CreateTemp("", "scratch-*")
}

// PidFile is a deliberate non-artifact in-place write with a justification:
// the directive on the call line suppresses the finding.
func PidFile(path string, pid []byte) error {
	return os.WriteFile(path, pid, 0o644) //pinlint:allow atomicwrite pid files are advisory and rewritten on boot
}
