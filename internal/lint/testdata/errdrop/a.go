// Package edrop exercises errdrop: Close/Sync/Flush errors on write
// paths must be checked.
package edrop

import (
	"bufio"
	"os"

	"pinscope/internal/atomicio"
	"pinscope/internal/journal"
)

func dropCreateClose(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write([]byte("x"))
	f.Close() // want "error from f\.Close discarded on a write path"
}

func dropSync(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Sync()  // want "error from f\.Sync discarded on a write path"
	f.Close() // want "error from f\.Close discarded on a write path"
}

func okReadClose(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	f.Close() // read-only handle: close error is inconsequential
}

func okCleanupOnError(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close() // this path already returns the write error
		return err
	}
	return f.Close()
}

func okExplicitDiscard(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close()
}

func dropFlush(f *os.File) {
	bw := bufio.NewWriter(f)
	bw.WriteString("x")
	bw.Flush() // want "error from bw\.Flush discarded on a write path"
}

func dropJournalClose(path string) {
	w, err := journal.Create(path, []byte("m"))
	if err != nil {
		return
	}
	w.Close() // want "error from w\.Close discarded on a write path"
}

func okAtomicWriterClose(path string) error {
	w, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte("x")); err != nil {
		w.Close()
		return err
	}
	if err := w.Commit(); err != nil {
		w.Close()
		return err
	}
	w.Close() // post-Commit close is a documented no-op (exempt type)
	return nil
}

func okUnknownProvenance(f *os.File) {
	f.Close() // parameter: write-ness unknown, stay silent
}

func allowedDrop(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//pinlint:allow errdrop fixture: deliberate fire-and-forget close
	f.Close()
}
