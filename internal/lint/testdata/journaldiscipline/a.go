// Package jd exercises journaldiscipline's path-sensitive rules in a
// designated writer package: fsync before rename, and a recovered
// journal's meta must be checked before resuming it.
package jd

import (
	"bytes"
	"os"

	"pinscope/internal/journal"
)

func okRename(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

func badRename(f *os.File, tmp, dst string) error {
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want "os\.Rename not preceded by Sync on every path"
}

func branchRename(f *os.File, tmp, dst string, fast bool) error {
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmp, dst) // want "os\.Rename not preceded by Sync on every path"
}

func okResume(path string, meta []byte) (*journal.Writer, error) {
	r, err := journal.OpenReader(path)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(r.Meta(), meta) {
		r.Close()
		return nil, err
	}
	frames, size := r.Frames(), r.ValidSize()
	r.Close()
	return journal.ResumeWriter(path, frames, size)
}

func badResume(path string) (*journal.Writer, error) {
	return journal.ResumeWriter(path, 0, 0) // want "journal\.ResumeWriter not preceded by a journal meta check"
}

func okAppendTo(path string, meta []byte) (*journal.Writer, error) {
	rec, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(rec.Meta, meta) {
		return nil, err
	}
	return rec.AppendTo(path)
}

func badAppendTo(path string) (*journal.Writer, error) {
	rec, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	return rec.AppendTo(path) // want "journal\.AppendTo not preceded by a journal meta check"
}

func allowedResume(path string) (*journal.Writer, error) {
	//pinlint:allow journaldiscipline fixture: meta is checked by the caller
	return journal.ResumeWriter(path, 0, 0)
}
