// Package mapdet is mapdeterminism testdata: map ranges whose iteration
// order escapes (or provably does not).
package mapdet

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Keys leaks map order into a slice and never re-sorts it.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want "map iteration order escapes via append to out"
	}
	return out
}

// KeysSorted is the corrected form: same append, redeemed by the sort.
func KeysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysSlices is redeemed by slices.Sort instead of package sort.
func KeysSlices(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Join concatenates in map order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string concatenation onto s"
	}
	return s
}

// Dump prints in map order; no sort can redeem bytes already emitted.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map iteration order escapes via fmt.Println"
	}
}

// Render streams into an outer builder in map order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		fmt.Fprintf(&b, "%s\n", k) // want "map iteration order escapes via fmt.Fprintf"
	}
	return b.String()
}

// Build writes into a caller-owned builder in map order.
func Build(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "map iteration order escapes via b.WriteString"
	}
}

// Lines shows the order-local pattern: a per-iteration buffer is fine, and
// the outer append is redeemed by the sort after the loop.
func Lines(m map[string]int) []string {
	var out []string
	for k, v := range m {
		var lb strings.Builder
		lb.WriteString(k)
		lb.WriteByte('=')
		lb.WriteString(strconv.Itoa(v))
		out = append(out, lb.String())
	}
	sort.Strings(out)
	return out
}

// Total is commutative accumulation: order-insensitive, not a sink.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Index accumulates per-bucket and then sorts every bucket: clean.
func Index(entries map[string]string) map[string][]string {
	idx := map[string][]string{}
	for host, sdk := range entries {
		idx[sdk] = append(idx[sdk], host)
	}
	for _, hosts := range idx {
		sort.Strings(hosts)
	}
	return idx
}

// IndexUnsorted is the same bucket accumulation without the redeeming
// sort-every-bucket loop.
func IndexUnsorted(entries map[string]string) map[string][]string {
	idx := map[string][]string{}
	for host, sdk := range entries {
		idx[sdk] = append(idx[sdk], host) // want "map iteration order escapes via append to idx\[sdk\]"
	}
	return idx
}

// Mismatch sorts a different slice; that must not redeem out.
func Mismatch(m map[string]int) []string {
	var out, other []string
	for k := range m {
		out = append(out, k) // want "map iteration order escapes via append to out"
	}
	sort.Strings(other)
	return out
}
