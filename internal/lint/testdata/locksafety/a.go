// Package locks exercises locksafety: pairing on every path, no blocking
// operation or return while a mutex is definitely held.
package locks

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	cv *sync.Cond
	n  int
}

func (c *counter) ok() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) okDefer(b bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b {
		return
	}
	c.n++
}

func (c *counter) okDeferredLit() {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}

func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "c\.mu locked again while already held"
	c.mu.Unlock()
	c.mu.Unlock()
}

func (c *counter) earlyReturn(b bool) {
	c.mu.Lock()
	if b {
		return // want "returns with c\.mu held"
	}
	c.mu.Unlock()
}

func (c *counter) sendWhileHolding(ch chan int) {
	c.mu.Lock()
	ch <- 1 // want "channel send while holding c\.mu"
	c.mu.Unlock()
}

func (c *counter) recvWhileHolding(ch chan int) {
	c.mu.Lock()
	<-ch // want "channel receive while holding c\.mu"
	c.mu.Unlock()
}

func (c *counter) selectWhileHolding(a, b chan int) {
	c.mu.Lock()
	select { // want "select without default while holding c\.mu"
	case <-a:
	case b <- 1:
	}
	c.mu.Unlock()
}

func (c *counter) okSelectDefault(a chan int) {
	c.mu.Lock()
	select {
	case <-a:
	default:
	}
	c.mu.Unlock()
}

func (c *counter) waitWhileHolding(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want "blocking call wg\.Wait while holding c\.mu"
	c.mu.Unlock()
}

func (c *counter) sleepWhileHolding() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking call time\.Sleep while holding c\.mu"
	c.mu.Unlock()
}

func (c *counter) okCondWait() {
	c.mu.Lock()
	for c.n == 0 {
		c.cv.Wait() // releasing the mutex is Cond.Wait's contract: exempt
	}
	c.mu.Unlock()
}

func (c *counter) okConditionalRelease(b bool, ch chan int) {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
	}
	// Must-hold: the lock is only maybe-held here, so no report.
	ch <- 1
	if !b {
		c.mu.Unlock()
	}
}

func (c *counter) okRead() {
	c.rw.RLock()
	_ = c.n
	c.rw.RUnlock()
}

func (c *counter) okReentrantRead() {
	c.rw.RLock()
	c.rw.RLock() // shared locks are re-acquirable: no self-deadlock
	c.rw.RUnlock()
	c.rw.RUnlock()
}

func (c *counter) leakRead() {
	c.rw.RLock()
	_ = c.n
} // want "returns with c\.rw held"

func (c *counter) allowedHold(ch chan int) {
	c.mu.Lock()
	//pinlint:allow locksafety fixture: deliberate handoff send under lock
	ch <- 1
	c.mu.Unlock()
}
