// Package dflow exercises detrandflow: child labels must be reviewable
// constants, distinct per lineage, and loop derivations must vary.
package dflow

import "pinscope/internal/detrand"

func dyn() string { return "d" }

func okDistinct(rng *detrand.Source) {
	a := rng.Child("alpha")
	b := rng.Child("beta")
	_, _ = a, b
}

func dupLabel(rng *detrand.Source) {
	a := rng.Child("twin")
	b := rng.Child("twin") // want "duplicate child label \"twin\" on rng"
	_, _ = a, b
}

func okDistinctReceivers(rng *detrand.Source) {
	a := rng.Child("twin")
	b := a.Child("twin") // different lineage: parent differs, streams differ
	_ = b
}

func noConst(rng *detrand.Source) {
	label := dyn()
	_ = rng.Child(label) // want "child label has no compile-time constant component"
}

func okPrefix(rng *detrand.Source, host string) {
	_ = rng.Child("pin/" + host)
}

func loopInvariant(rng *detrand.Source) {
	for i := 0; i < 3; i++ {
		_ = rng.Child("iter") // want "derives the same stream every iteration"
	}
}

func okLoopVariant(rng *detrand.Source) {
	for i := 0; i < 3; i++ {
		r := rng.ChildN("iter", i)
		_ = r.Child("leaf") // receiver varies per iteration
	}
}

func okChildNLoop(rng *detrand.Source) {
	for i := 0; i < 4; i++ {
		_ = rng.ChildN("slot", i)
	}
}

func dupChildNSameIndex(rng *detrand.Source, i int) {
	a := rng.ChildN("q", i)
	b := rng.ChildN("q", i) // want "duplicate child label \"q\" on rng"
	_, _ = a, b
}

func okChildNDistinctIndex(rng *detrand.Source) {
	a := rng.ChildN("q", 1)
	b := rng.ChildN("q", 2)
	_, _ = a, b
}

func allowedDup(rng *detrand.Source) {
	a := rng.Child("dup")
	//pinlint:allow detrandflow fixture: sibling streams intentionally identical
	b := rng.Child("dup")
	_, _ = a, b
}
