// Package export is exportshape testdata: the root type Snapshot is
// configured as an export root, so its whole reachable closure must obey
// the versioned-snapshot shape rules.
package export

// Snapshot is the export root.
type Snapshot struct {
	Version int `json:"version"`
	Meta    struct {
		Seed   int64   `json:"seed"`
		Window float64 // want "exported field Snapshot.Meta.Window reachable from a snapshot root has no json tag"
	} `json:"meta"`
	Apps     []App          `json:"apps"`
	ByHost   map[string]App `json:"by_host"`
	Blob     any            `json:"blob"` // want "field Snapshot.Blob has interface type interface"
	NoTag    string         // want "exported field Snapshot.NoTag reachable from a snapshot root has no json tag"
	BadName  string         `json:",omitempty"` // want "field Snapshot.BadName has a json tag with no name"
	Embedded                // want "untagged embedded field Snapshot.Embedded splices its fields into the snapshot namespace"
	Skip     *Opaque        `json:"-"`
	internal int
}

// App is reached through Snapshot.Apps and Snapshot.ByHost; it is visited
// once and its map-of-any field is an interface leak.
type App struct {
	ID    string         `json:"id"`
	Extra map[string]any `json:"extra"` // want "field App.Extra has interface type interface"
}

// Embedded itself is well-formed; the violation is embedding it untagged.
type Embedded struct {
	E string `json:"e"`
}

// Opaque is only reachable through a json:"-" field, so its interface
// field must NOT be reported.
type Opaque struct {
	I interface{}
}

var _ = Snapshot{internal: 0}
