// Package aswap is atomicswap testdata: an atomic.Pointer snapshot field
// with a designated swap function ("Cache.swap" in the test's config).
package aswap

import "sync/atomic"

// Index stands in for a built snapshot.
type Index struct{ N int }

// Cache holds the snapshot pointer plus an unrelated atomic counter.
type Cache struct {
	ptr  atomic.Pointer[Index]
	hits atomic.Int64
}

// swap is the designated swap function: its Store is legitimate.
func (c *Cache) swap(v *Index) {
	c.ptr.Store(v)
}

// Torn loads the pointer twice; a swap between the loads would serve two
// different snapshots in one call.
func (c *Cache) Torn() int {
	a := c.ptr.Load()
	b := c.ptr.Load() // want "c.ptr.Load\(\) called 2 times in Cache.Torn"
	return a.N + b.N
}

// Get is the correct single-load pattern.
func (c *Cache) Get() *Index {
	return c.ptr.Load()
}

// Reset mutates the snapshot pointer outside the designated swap function.
func (c *Cache) Reset(v *Index) {
	c.ptr.Store(v) // want "c.ptr.Store outside the designated swap function"
}

// Reload swaps outside the designated swap function.
func Reload(c *Cache, v *Index) {
	old := c.ptr.Swap(v) // want "c.ptr.Swap outside the designated swap function"
	_ = old
}

// Count stores into an atomic.Int64 — not a snapshot pointer, not flagged.
func (c *Cache) Count() {
	c.hits.Store(c.hits.Load() + 1)
}
