// Package allownew exercises the //pinlint:allow grammar against the
// v2 analyzer names: a justified directive suppresses, a bare or
// misspelled one is itself a finding and suppresses nothing.
package allownew

import "sync"

var mu sync.Mutex

func suppressed(ch chan int) {
	mu.Lock()
	//pinlint:allow locksafety fixture: deliberate handoff send under lock
	ch <- 1
	mu.Unlock()
}

func unjustified(ch chan int) {
	mu.Lock()
	//pinlint:allow locksafety
	ch <- 1
	mu.Unlock()
}

func typo(ch chan int) {
	mu.Lock()
	//pinlint:allow locksafty deliberate handoff send under lock
	ch <- 1
	mu.Unlock()
}
