// Package issuance is pkiissuance testdata: ambient ECDSA key generation
// that must be routed through internal/pki, plus the patterns that stay
// legal (other crypto/ecdsa uses, and a justified allow).
package issuance

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
)

// MintKey generates a key outside the pki layer: the plane can neither
// intern nor reproduce it.
func MintKey() (*ecdsa.PrivateKey, error) {
	return ecdsa.GenerateKey(elliptic.P256(), rand.Reader) // want "ecdsa.GenerateKey mints key material outside internal/pki"
}

// Sign only uses an existing key; non-issuance ecdsa calls are not the
// analyzer's business.
func Sign(key *ecdsa.PrivateKey, msg []byte) ([]byte, error) {
	sum := sha256.Sum256(msg)
	return ecdsa.SignASN1(rand.Reader, key, sum[:])
}

// Verify is read-side crypto and stays legal too.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	sum := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pub, sum[:], sig)
}

// ThrowawayKey is a deliberate non-simulation key with a justification:
// the directive on the call line suppresses the finding.
func ThrowawayKey() (*ecdsa.PrivateKey, error) {
	return ecdsa.GenerateKey(elliptic.P256(), rand.Reader) //pinlint:allow pkiissuance test-only key never enters a study chain
}
