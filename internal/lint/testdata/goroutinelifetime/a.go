// Package golife exercises goroutinelifetime: every go statement must
// reach a completion signal on all paths.
package golife

import (
	"context"
	"sync"
)

func work() {}

// leakyHelper never signals, directly or transitively.
func leakyHelper() { work() }

// signalingHelper signals, so goroutines running it are bounded.
func signalingHelper(wg *sync.WaitGroup) { wg.Done() }

func leakPlain() {
	go func() { // want "goroutine can exit without signaling completion"
		work()
	}()
}

func okDeferDone(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func okDeferredLit(wg *sync.WaitGroup) {
	go func() {
		defer func() {
			wg.Done()
		}()
		work()
	}()
}

func leakEarlyReturn(ch chan int, b bool) {
	go func() { // want "goroutine can exit without signaling completion"
		if b {
			return
		}
		ch <- 1
	}()
}

func okAllPaths(ch chan int, b bool) {
	go func() {
		if b {
			ch <- 2
			return
		}
		ch <- 1
	}()
}

func okRangeWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func leakForever() {
	go func() { // want "goroutine loops forever without any completion signal"
		for {
			work()
		}
	}()
}

func okSelectLoop(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func okDirectCall(wg *sync.WaitGroup) {
	go signalingHelper(wg)
}

func leakDirectCall() {
	go leakyHelper() // want "goroutine runs leakyHelper, which never signals"
}

func okTransitiveCall(wg *sync.WaitGroup) {
	go func() {
		signalingHelper(wg)
	}()
}

func okClose(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

func allowedLeak() {
	//pinlint:allow goroutinelifetime fixture: demonstrates a justified suppression
	go leakyHelper()
}
