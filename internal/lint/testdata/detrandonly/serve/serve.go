// Package serve is detrandonly testdata for the checked (serving/CLI)
// tier: wall-clock reads pass only inside functions the config table
// allowlists.
package serve

import "time"

// Server mimics a serving-layer type with telemetry needs.
type Server struct{ start time.Time }

// wrap is allowlisted ("Server.wrap"): request-latency telemetry.
func (s *Server) wrap() time.Duration {
	return time.Since(s.start)
}

// handle is NOT allowlisted: new serving code must either inject a clock
// or earn a config-table entry.
func (s *Server) handle() time.Time {
	return time.Now() // want "time.Now in a checked serving/CLI package"
}

// main is allowlisted: CLI progress banner timing.
func main() {
	_ = time.Now()
}
