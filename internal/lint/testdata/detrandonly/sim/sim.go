// Package sim is detrandonly testdata: a strict simulation package where
// every ambient-entropy and wall-clock read must be flagged.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"

	"pinscope/internal/detrand"
)

// Bad reads the wall clock and ambient entropy every way the analyzer
// bans.
func Bad() {
	start := time.Now()                // want "time.Now in a simulation package"
	_ = time.Since(start)              // want "time.Since calls time.Now"
	_ = time.Until(start)              // want "time.Until calls time.Now"
	_ = rand.Int()                     // want "math/rand.Int in a simulation package"
	_, _ = crand.Read(make([]byte, 8)) // want "crypto/rand.Read in a simulation package"
	_ = os.Getpid()                    // want "os.Getpid in a simulation package: process-ambient entropy"
	_, _ = os.Hostname()               // want "os.Hostname in a simulation package"
}

// Good takes its time and randomness the sanctioned ways: injected, fixed,
// or derived from detrand.
func Good(now time.Time) time.Duration {
	epoch := time.Date(2021, time.May, 15, 12, 0, 0, 0, time.UTC)
	rng := detrand.New(7)
	_ = rng.Intn(10)
	return now.Sub(epoch)
}

// Suppressed shows the escape hatch: a justified allow directive on the
// preceding line silences the finding.
func Suppressed() time.Time {
	//pinlint:allow detrandonly testdata exercising the justified escape hatch
	return time.Now()
}
