// Package allowmisuse is testdata for the //pinlint:allow directive
// grammar itself: malformed directives must become findings.
package allowmisuse

import "time"

// NoAnalyzer: the directive names nothing.
func NoAnalyzer() time.Time {
	//pinlint:allow
	return time.Now()
}

// UnknownAnalyzer: the directive names an analyzer that does not exist, so
// it suppresses nothing and is itself reported.
func UnknownAnalyzer() time.Time {
	//pinlint:allow nosuchanalyzer because reasons
	return time.Now()
}

// NoReason: a bare analyzer name without a justification is rejected; the
// escape hatch requires saying why.
func NoReason() time.Time {
	//pinlint:allow detrandonly
	return time.Now()
}

// Justified is the well-formed directive: analyzer plus reason.
func Justified() time.Time {
	//pinlint:allow detrandonly testdata demonstrating a justified suppression
	return time.Now()
}

// Unrelated comments that merely mention pinlint:allow mid-text are not
// directives, and //pinlint:allowother is someone else's namespace.
func Other() {
	//pinlint:allowother detrandonly xyz
}
