package lint

// goroutinelifetime guards against goroutine leaks: every `go` statement in
// the configured packages must spawn a function that reaches a bounded exit
// signal — sync.WaitGroup.Done, a channel send, close or receive (which
// includes <-ctx.Done() and range-over-channel worker loops) — so the
// spawner can observe completion and the fleet-serving paths cannot
// accumulate orphaned workers.
//
// The check is path-sensitive on the goroutine body itself: if the body can
// return normally, every entry→exit path must pass a signal (a deferred
// signal covers all paths by construction). Bodies that never return (a
// worker's infinite select loop) need a signal anywhere — their bound is
// the channel or context they block on. Across call edges the analysis is
// transitive but path-insensitive: calling a function that signals
// somewhere counts, via the package call graph, which keeps `go s.run(ctx)`
// as analyzable as an inline literal. Cross-package callees have no body to
// inspect and are skipped.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewGoroutineLifetime builds the goroutinelifetime analyzer over cfg.
func NewGoroutineLifetime(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "goroutinelifetime",
		Doc: "every go statement must reach a completion signal (WaitGroup.Done, " +
			"channel send/close/receive, ctx done) on all paths, so goroutines cannot leak",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.GoroutineLifetimePackages, pass.PkgPath) {
			return nil
		}
		graph := BuildCallGraph(pass.Files, pass.Info)
		// marked: functions that contain a completion signal directly or
		// reach one through an intra-package call (any edge kind).
		marked := graph.TransitiveMarks(func(n *CGNode) bool {
			body := n.Body()
			if body == nil {
				return false
			}
			found := false
			ast.Inspect(body, func(m ast.Node) bool {
				if found {
					return false
				}
				if m != nil && signalNode(pass.Info, m) {
					found = true
					return false
				}
				return true
			})
			return found
		})

		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, graph, marked, gs)
				return true
			})
		}
		return nil
	}
	return a
}

// checkGoStmt verifies one go statement's spawned function.
func checkGoStmt(pass *Pass, graph *CallGraph, marked map[*CGNode]bool, gs *ast.GoStmt) {
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		checkGoroutineBody(pass, graph, marked, gs, fun.Body)
	default:
		// go f(...) / go s.run(...): the callee carries the lifetime. A
		// marked intra-package callee signals somewhere; cross-package or
		// dynamic callees have no body here and are skipped.
		fn := CalleeOf(pass.Info, gs.Call)
		if fn == nil {
			return
		}
		node := graph.NodeFor(fn)
		if node == nil || node.Body() == nil {
			return
		}
		if !marked[node] {
			pass.Reportf(gs.Pos(),
				"goroutine runs %s, which never signals completion (no WaitGroup.Done, channel send/close/receive, or ctx-done receive)",
				fn.Name())
		}
	}
}

// checkGoroutineBody runs the path-sensitive check on an inline literal.
func checkGoroutineBody(pass *Pass, graph *CallGraph, marked map[*CGNode]bool, gs *ast.GoStmt, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.Info)

	hitNode := func(n ast.Node) bool {
		if signalNode(pass.Info, n) {
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := CalleeOf(pass.Info, call); fn != nil {
				if node := graph.NodeFor(fn); node != nil && marked[node] {
					return true
				}
			}
		}
		return false
	}
	blockHits := func(b *Block) bool {
		found := false
		b.Inspect(func(n ast.Node) bool {
			if found {
				return false
			}
			if hitNode(n) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// Deferred signals run on every exit path.
	for _, d := range cfg.Defers {
		if hitNode(d) {
			return
		}
		if lit, ok := unparen(d.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if found {
					return false
				}
				if m != nil && hitNode(m) {
					found = true
					return false
				}
				return true
			})
			if found {
				return
			}
		}
	}

	if !cfg.ExitReachable() {
		// A worker loop that never returns: its bound is whatever it blocks
		// on, so one signal anywhere suffices.
		for b := range cfg.Reachable() {
			if blockHits(b) {
				return
			}
		}
		pass.Reportf(gs.Pos(),
			"goroutine loops forever without any completion signal (no channel op, WaitGroup.Done, or ctx-done receive)")
		return
	}
	if !cfg.EveryPathHits(blockHits) {
		pass.Reportf(gs.Pos(),
			"goroutine can exit without signaling completion on some path (add WaitGroup.Done, a channel send/close, or a ctx-done receive on every path)")
	}
}

// signalNode reports whether n is a completion-signal operation: a channel
// send, close or receive, a range over a channel, or WaitGroup.Done.
func signalNode(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case CtrlNode:
		if rg, ok := n.Stmt.(*ast.RangeStmt); ok {
			return isChanType(info.TypeOf(rg.X))
		}
	case *ast.RangeStmt:
		return isChanType(info.TypeOf(n.X))
	case *ast.CallExpr:
		switch fun := unparen(n.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "close" {
				_, isBuiltin := info.Uses[fun].(*types.Builtin)
				return isBuiltin
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return fn.FullName() == "(*sync.WaitGroup).Done"
			}
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
