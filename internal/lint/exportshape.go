package lint

// exportshape holds the versioned snapshot contract steady: every struct
// reachable from the configured export roots (the types core.WriteJSON
// writes and core.ReadJSON reads back, plus the serving layer's
// pre-rendered payloads) must marshal to a shape that cannot silently
// drift. Concretely, on every reachable struct:
//
//   - each exported field carries an explicit `json:"..."` tag, so a
//     renamed Go field cannot rename a wire field as a side effect;
//   - no field is interface-typed (interface{}/any/error marshal as
//     whatever happens to be inside, which DisallowUnknownFields readers
//     cannot round-trip);
//   - no embedded field is untagged (untagged embedding splices fields
//     into the parent namespace, so adding a field to the embedded type
//     silently changes the parent's wire shape).
//
// The walk follows named types across package boundaries through export
// data; findings on foreign types are anchored at the local field that
// reaches them.

import (
	"go/token"
	"go/types"
	"reflect"
)

// NewExportShape builds the exportshape analyzer over cfg.
func NewExportShape(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "exportshape",
		Doc: "structs reachable from snapshot roots need explicit json tags on all " +
			"exported fields, no interface-typed fields, and no untagged embedding",
	}
	a.Run = func(pass *Pass) error {
		for _, root := range cfg.ExportRoots {
			if root.Pkg != pass.PkgPath {
				continue
			}
			obj := pass.Pkg.Scope().Lookup(root.Name)
			if obj == nil {
				pass.Reportf(token.NoPos, "export root %s.%s not found", root.Pkg, root.Name)
				continue
			}
			tn, ok := obj.(*types.TypeName)
			if !ok {
				pass.Reportf(obj.Pos(), "export root %s.%s is not a type", root.Pkg, root.Name)
				continue
			}
			w := &shapeWalker{pass: pass, seen: map[types.Type]bool{}}
			w.visit(tn.Type(), obj.Pos(), root.Name)
		}
		return nil
	}
	return a
}

type shapeWalker struct {
	pass *Pass
	seen map[types.Type]bool
}

// visit walks t's structural closure. anchor is the position findings are
// reported at when t itself has no usable position (foreign or anonymous
// types); path names the route from the root for the message.
func (w *shapeWalker) visit(t types.Type, anchor token.Pos, path string) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true

	switch x := t.(type) {
	case *types.Named:
		w.visit(x.Underlying(), w.posOrAnchor(x.Obj().Pos(), anchor), x.Obj().Name())
	case *types.Alias:
		w.visit(types.Unalias(x), anchor, path)
	case *types.Pointer:
		w.visit(x.Elem(), anchor, path)
	case *types.Slice:
		w.visit(x.Elem(), anchor, path)
	case *types.Array:
		w.visit(x.Elem(), anchor, path)
	case *types.Map:
		w.visit(x.Key(), anchor, path)
		w.visit(x.Elem(), anchor, path)
	case *types.Struct:
		w.checkStruct(x, anchor, path)
	}
}

// checkStruct applies the three shape rules to every field, then recurses.
func (w *shapeWalker) checkStruct(st *types.Struct, anchor token.Pos, path string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // unexported fields never reach the wire
		}
		fieldPos := w.posOrAnchor(f.Pos(), anchor)
		fieldPath := path + "." + f.Name()
		tag := reflect.StructTag(st.Tag(i))
		jsonTag, hasTag := tag.Lookup("json")

		if f.Embedded() && !hasTag {
			w.pass.Reportf(fieldPos,
				"untagged embedded field %s splices its fields into the snapshot namespace; give it an explicit json tag or un-embed it", fieldPath)
		} else if !hasTag {
			w.pass.Reportf(fieldPos,
				"exported field %s reachable from a snapshot root has no json tag; the wire name would silently track the Go name", fieldPath)
		} else if jsonTag == "" || jsonTag[0] == ',' {
			w.pass.Reportf(fieldPos,
				"field %s has a json tag with no name (%q); name it explicitly or exclude it with json:\"-\"", fieldPath, jsonTag)
		}

		if jsonTag == "-" {
			continue // explicitly excluded from the wire
		}
		if iface := interfaceInside(f.Type()); iface != "" {
			w.pass.Reportf(fieldPos,
				"field %s has interface type %s; snapshot fields must be concrete so ReadJSON can round-trip them", fieldPath, iface)
		}
		w.visit(f.Type(), fieldPos, fieldPath)
	}
}

// posOrAnchor prefers a real position (types imported from export data may
// only have synthetic ones, but they still render; NoPos does not).
func (w *shapeWalker) posOrAnchor(pos, anchor token.Pos) token.Pos {
	if pos.IsValid() {
		return pos
	}
	return anchor
}

// interfaceInside returns the rendered type of the first interface found
// structurally inside t (not following named struct fields — those are
// checked as their own structs), or "".
func interfaceInside(t types.Type) string {
	switch x := t.(type) {
	case *types.Interface:
		return "interface"
	case *types.Named:
		if types.IsInterface(x) {
			return x.Obj().Name()
		}
		return ""
	case *types.Alias:
		return interfaceInside(types.Unalias(x))
	case *types.Pointer:
		return interfaceInside(x.Elem())
	case *types.Slice:
		return interfaceInside(x.Elem())
	case *types.Array:
		return interfaceInside(x.Elem())
	case *types.Map:
		if s := interfaceInside(x.Key()); s != "" {
			return s
		}
		return interfaceInside(x.Elem())
	}
	return ""
}
