package lint_test

import (
	"strings"
	"testing"

	"pinscope/internal/lint"
)

// TestAllowDirectiveGrammar: malformed //pinlint:allow directives are
// findings in their own right, well-formed ones suppress, and lookalike
// prefixes are ignored.
func TestAllowDirectiveGrammar(t *testing.T) {
	cfg := &lint.Config{
		StrictDeterminism: []string{"example.com/allowmisuse"},
	}
	pkg, fset, err := lint.LoadDir("testdata/allowmisuse", "example.com/allowmisuse")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, lint.Suite(cfg))
	if err != nil {
		t.Fatal(err)
	}

	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	// Three malformed directives -> three pinlint findings; the time.Now
	// they failed to suppress stays visible -> three detrandonly findings.
	// Justified's directive suppresses its time.Now and is not reported.
	if byAnalyzer["pinlint"] != 3 || byAnalyzer["detrandonly"] != 3 || len(diags) != 6 {
		t.Fatalf("expected 3 pinlint + 3 detrandonly diagnostics, got %v", diags)
	}

	wantSubstrings := []string{
		"names no analyzer",
		`unknown analyzer "nosuchanalyzer"`,
		"no justification",
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == "pinlint" && strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no pinlint diagnostic containing %q in %v", sub, diags)
		}
	}
}

// TestRepoIsClean runs the full default suite over the whole module — the
// same invocation as `make lint` — and requires zero findings. This keeps
// the acceptance property (pinlint clean on the tree) inside `go test`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint load is not short")
	}
	diags, err := lint.Run("../..", []string{"./..."}, lint.Suite(lint.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
