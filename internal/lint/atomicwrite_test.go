package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestAtomicWrite(t *testing.T) {
	cfg := &lint.Config{
		AtomicWritePackages: []string{"example.com/awrite"},
	}
	linttest.Run(t, "testdata/atomicwrite", "example.com/awrite", lint.NewAtomicWrite(cfg))
}

func TestAtomicWriteExemptPackage(t *testing.T) {
	// The same fixture under an exempted import path yields nothing: the
	// atomicio implementation package may use the raw primitives.
	cfg := &lint.Config{
		AtomicWritePackages: []string{"example.com/..."},
		AtomicWriteExempt:   []string{"example.com/awrite"},
	}
	pkg, fset, err := lint.LoadDir("testdata/atomicwrite", "example.com/awrite")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewAtomicWrite(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("exempt package still flagged: %v", diags)
	}
}
