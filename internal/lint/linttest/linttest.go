// Package linttest is the repo's analysistest counterpart: it loads a
// testdata package, runs analyzers over it, and checks the findings
// against `// want "regexp"` comments in the source.
//
// Expectation syntax follows golang.org/x/tools/go/analysis/analysistest:
// a comment `// want "rx1" "rx2"` on a line means exactly those
// diagnostics (in any order) are expected on that line; every diagnostic
// must be claimed by a want and every want must be claimed by a
// diagnostic. Lines carrying a //pinlint:allow directive are expected to
// produce nothing — that is how suppression cases are written.
package linttest

import (
	"fmt"
	"regexp"
	"testing"

	"pinscope/internal/lint"
)

// wantRe matches a want comment and captures the quoted patterns blob.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRe pulls the individual quoted patterns out of the blob.
var patRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// Run loads dir as a package named pkgPath, applies analyzers, and
// reports mismatches against the want comments as test errors. It returns
// the surviving diagnostics so callers can make extra assertions.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg, fset, err := lint.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, analyzers)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}

	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				pats := patRe.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					continue
				}
				for _, p := range pats {
					rx, err := regexp.Compile(p[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p[1], err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
	return diags
}

// claim marks the first unclaimed want matching d.
func claim(wants []*want, d lint.Diagnostic) bool {
	msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if w.used || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.rx.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}
