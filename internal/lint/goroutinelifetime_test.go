package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestGoroutineLifetime(t *testing.T) {
	cfg := &lint.Config{
		GoroutineLifetimePackages: []string{"example.com/golife"},
	}
	linttest.Run(t, "testdata/goroutinelifetime", "example.com/golife", lint.NewGoroutineLifetime(cfg))
}
