package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestMapDeterminism(t *testing.T) {
	cfg := &lint.Config{
		MapOrderPackages: []string{"example.com/mapdet"},
	}
	linttest.Run(t, "testdata/mapdeterminism", "example.com/mapdet", lint.NewMapDeterminism(cfg))
}
