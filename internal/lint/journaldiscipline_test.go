package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

// TestJournalDisciplinePaths runs the path-sensitive rules (fsync before
// rename, meta check before resume) in a designated writer package.
func TestJournalDisciplinePaths(t *testing.T) {
	cfg := &lint.Config{
		JournalPackages:       []string{"example.com/jd"},
		JournalWriterPackages: []string{"example.com/jd"},
		JournalImplPackage:    "pinscope/internal/journal",
	}
	linttest.Run(t, "testdata/journaldiscipline", "example.com/jd", lint.NewJournalDiscipline(cfg))
}

// TestJournalDisciplineForge runs rule 1 in a package that is NOT a
// designated writer: constructing WAL writers or forging WAL bytes is
// flagged outright.
func TestJournalDisciplineForge(t *testing.T) {
	cfg := &lint.Config{
		JournalPackages:    []string{"example.com/forge"},
		JournalImplPackage: "pinscope/internal/journal",
	}
	linttest.Run(t, "testdata/journalforge", "example.com/forge", lint.NewJournalDiscipline(cfg))
}

// TestJournalDisciplineImplExempt reruns the forge fixture as if it were
// the journal implementation package itself: everything is permitted.
func TestJournalDisciplineImplExempt(t *testing.T) {
	cfg := &lint.Config{
		JournalPackages:    []string{"example.com/..."},
		JournalImplPackage: "example.com/forge",
	}
	pkg, fset, err := lint.LoadDir("testdata/journalforge", "example.com/forge")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewJournalDiscipline(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("journal impl package still flagged: %v", diags)
	}
}
