// Package lint is pinscope's in-tree static-analysis suite. It enforces,
// by tooling rather than convention, the invariants the reproduction study
// depends on:
//
//   - detrandonly: simulation packages take no ambient entropy or wall
//     time — every random or temporal decision flows through
//     internal/detrand or is injected by the caller, so a world is
//     reproducible bit-for-bit from its seed.
//   - mapdeterminism: no map iteration order escapes into slices, output
//     streams or hashes without an intervening sort.
//   - exportshape: every struct reachable from the versioned snapshot
//     roots (core.WriteJSON / core.ReadJSON) keeps an explicit, drift-proof
//     JSON shape.
//   - atomicswap: the serving layer's atomic snapshot pointer is loaded at
//     most once per request scope and stored only inside the designated
//     swap function.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built on the standard library
// alone: packages are enumerated with `go list -export` and type-checked
// with go/types against the compiler's export data, so the linter needs no
// dependencies beyond the toolchain that builds the repo.
//
// Findings are suppressed with a justified escape hatch:
//
//	//pinlint:allow <analyzer> <reason>
//
// placed on, or immediately above, the offending line. A directive with no
// reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check, in the image of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pinlint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test compiled Go files.
	Files []*ast.File
	// PkgPath is the package's import path (module-qualified).
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// funcDisplayName renders the name detrandonly and atomicswap use in their
// config tables and messages: "F" for functions, "T.M" for methods (pointer
// receivers are folded onto the type name).
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// enclosingFunc returns the FuncDecl in file whose body spans pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
