package lint_test

import (
	"testing"

	"pinscope/internal/lint"
	"pinscope/internal/lint/linttest"
)

func TestDetrandOnlyStrict(t *testing.T) {
	cfg := &lint.Config{
		StrictDeterminism: []string{"example.com/sim"},
	}
	linttest.Run(t, "testdata/detrandonly/sim", "example.com/sim", lint.NewDetrandOnly(cfg))
}

func TestDetrandOnlyChecked(t *testing.T) {
	cfg := &lint.Config{
		CheckedDeterminism: []string{"example.com/serve"},
		AllowedWallClock: map[string][]string{
			"example.com/serve": {"Server.wrap", "main"},
		},
	}
	linttest.Run(t, "testdata/detrandonly/serve", "example.com/serve", lint.NewDetrandOnly(cfg))
}

// TestDetrandOnlyUnscannedPackage proves the analyzer keys off the config:
// the same violating source is silent when its package is in neither tier.
func TestDetrandOnlyUnscannedPackage(t *testing.T) {
	cfg := &lint.Config{
		StrictDeterminism: []string{"example.com/other"},
	}
	pkg, fset, err := lint.LoadDir("testdata/detrandonly/serve", "example.com/serve")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewDetrandOnly(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics for an unscanned package, got %v", diags)
	}
}
