package lint

// detrandonly enforces the repo's reproducibility bedrock: simulation
// packages must not read ambient entropy or the wall clock. The paper's
// claim that the pipelines re-discover ground truth from generated
// artifacts only holds if the same seed always generates the same world,
// so every random or temporal decision must flow through internal/detrand
// (or be injected by the caller, like pki.StudyEpoch).
//
// Serving and CLI packages are scanned too, but wall-clock reads there are
// operational telemetry, allowlisted per enclosing function in
// Config.AllowedWallClock.

import (
	"go/ast"
	"go/types"
)

// entropyPackages are wholesale off limits in checked packages: any
// reference to an object from one of these is ambient entropy.
var entropyPackages = map[string]string{
	"math/rand":    "use a detrand.Source instead",
	"math/rand/v2": "use a detrand.Source instead",
	"crypto/rand":  "derive bytes from a detrand.Source instead",
}

// bannedFuncs are individual stdlib functions that read the wall clock or
// process-ambient state.
var bannedFuncs = map[[2]string]string{
	{"time", "Now"}:    "reads the wall clock",
	{"time", "Since"}:  "reads the wall clock (time.Since calls time.Now)",
	{"time", "Until"}:  "reads the wall clock (time.Until calls time.Now)",
	{"os", "Getpid"}:   "process-ambient entropy",
	{"os", "Getppid"}:  "process-ambient entropy",
	{"os", "Hostname"}: "host-ambient entropy",
	{"os", "Environ"}:  "host-ambient state",
}

// NewDetrandOnly builds the detrandonly analyzer over cfg.
func NewDetrandOnly(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "detrandonly",
		Doc: "flags ambient entropy and wall-clock reads in simulation packages; " +
			"all randomness and time must flow through internal/detrand or be injected",
	}
	a.Run = func(pass *Pass) error {
		strict := matchPkg(cfg.StrictDeterminism, pass.PkgPath)
		checked := matchPkg(cfg.CheckedDeterminism, pass.PkgPath)
		if !strict && !checked {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				why, banned := bannedUse(obj)
				if !banned {
					return true
				}
				if !strict {
					// Checked (serving/CLI) package: permitted inside
					// allowlisted functions.
					fd := enclosingFunc(file, id.Pos())
					if fd != nil && allowedFunc(cfg.AllowedWallClock, pass.PkgPath, funcDisplayName(fd)) {
						return true
					}
				}
				pass.Reportf(id.Pos(), "%s.%s in %s package: %s; route it through internal/detrand, inject it, or add it to the pinlint config table",
					obj.Pkg().Path(), obj.Name(), tier(strict), why)
				return true
			})
		}
		return nil
	}
	return a
}

func tier(strict bool) string {
	if strict {
		return "a simulation"
	}
	return "a checked serving/CLI"
}

// bannedUse classifies one referenced object.
func bannedUse(obj types.Object) (why string, banned bool) {
	path := obj.Pkg().Path()
	if why, ok := entropyPackages[path]; ok {
		return why, true
	}
	if why, ok := bannedFuncs[[2]string{path, obj.Name()}]; ok {
		return why, true
	}
	return "", false
}
