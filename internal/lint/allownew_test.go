package lint_test

import (
	"strings"
	"testing"

	"pinscope/internal/lint"
)

// TestAllowGrammarNewAnalyzers checks the //pinlint:allow grammar against
// the v2 analyzer names: a justified directive suppresses its finding, a
// bare directive or a misspelled analyzer name is itself a pinlint
// finding and suppresses nothing.
func TestAllowGrammarNewAnalyzers(t *testing.T) {
	cfg := &lint.Config{
		LockSafetyPackages: []string{"example.com/allownew"},
	}
	pkg, fset, err := lint.LoadDir("testdata/allownew", "example.com/allownew")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AnalyzePackage(fset, pkg, []*lint.Analyzer{lint.NewLockSafety(cfg)})
	if err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	// suppressed() is clean; unjustified() and typo() each keep their
	// locksafety finding and add a pinlint one.
	if counts["pinlint"] != 2 || counts["locksafety"] != 2 || len(diags) != 4 {
		t.Fatalf("want 2 pinlint + 2 locksafety findings, got %v", diags)
	}
	var sawBare, sawTypo bool
	for _, d := range diags {
		if d.Analyzer != "pinlint" {
			continue
		}
		if strings.Contains(d.Message, "has no justification") {
			sawBare = true
		}
		if strings.Contains(d.Message, `unknown analyzer "locksafty"`) {
			sawTypo = true
		}
	}
	if !sawBare || !sawTypo {
		t.Fatalf("missing expected pinlint findings in %v", diags)
	}
}
