package lint

// detrandflow guards the detrand lineage contract: every Child/ChildN
// derivation must produce a stream distinct from its siblings, or two
// "independent" draws silently read identical bytes and the simulation's
// statistics are quietly correlated. Label collisions are otherwise caught
// only at runtime, if ever — the derivation is just SHA-256 of
// parent‖label, so nothing crashes. Three rules, per function:
//
//  1. a child label must have a compile-time-constant component — a fully
//     dynamic label gives reviewers (and this analyzer) nothing to check
//     distinctness against;
//  2. two derivations on the same receiver with the same method and the
//     same fully-constant label are identical streams — flagged at the
//     second site;
//  3. Child with a fully-constant label inside a loop, on a receiver that
//     is loop-invariant (all reaching definitions outside the loop),
//     derives the same child every iteration — use ChildN with the index
//     or fold a per-iteration component into the label.
//
// The detrand package itself is exempt (ChildN builds Child labels from a
// parameter by design).

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// NewDetrandFlow builds the detrandflow analyzer over cfg.
func NewDetrandFlow(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "detrandflow",
		Doc: "detrand child labels must be distinct compile-time constants per " +
			"lineage: constant component required, no duplicate labels, no " +
			"loop-invariant re-derivation",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.DetrandFlowPackages, pass.PkgPath) ||
			matchPkg(cfg.DetrandFlowExempt, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkDetrandFlow(pass, cfg, fd.Body)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkDetrandFlow(pass, cfg, lit.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// childCall is one Child/ChildN site with its loop context.
type childCall struct {
	call   *ast.CallExpr
	method string
	recv   ast.Expr
	loop   ast.Stmt // innermost enclosing for/range, nil outside loops
}

// checkDetrandFlow applies the three rules to one function body.
func checkDetrandFlow(pass *Pass, cfg *Config, body *ast.BlockStmt) {
	var calls []childCall
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return m.Body == body // literals are their own scope
			case *ast.ForStmt:
				loops = append(loops, m)
				walk(m.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.RangeStmt:
				loops = append(loops, m)
				walk(m.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				if method, recv, ok := childCallOf(pass.Info, cfg, m); ok {
					var loop ast.Stmt
					if len(loops) > 0 {
						loop = loops[len(loops)-1]
					}
					calls = append(calls, childCall{m, method, recv, loop})
				}
			}
			return true
		})
	}
	walk(body)
	if len(calls) == 0 {
		return
	}

	// Rules 1 and 2 need only the collected sites.
	seen := map[string]bool{} // recv ++ method ++ constant label
	for _, c := range calls {
		label := c.call.Args[0]
		if !hasConstComponent(pass.Info, label) {
			pass.Reportf(label.Pos(),
				"child label has no compile-time constant component; distinctness per lineage cannot be reviewed or checked")
			continue
		}
		val := constString(pass.Info, label)
		if val == "" {
			continue // constant component but not fully constant: dynamic part differentiates
		}
		key := types.ExprString(c.recv) + "\x00" + c.method + "\x00" + val
		if c.method == "ChildN" && len(c.call.Args) > 1 {
			// ChildN folds the index into the label: same label with a
			// different index is a different stream. Distinct constant
			// indexes differentiate; identical expressions collide.
			n := unparen(c.call.Args[1])
			if tv, ok := pass.Info.Types[n]; ok && tv.Value != nil {
				key += "\x00" + tv.Value.ExactString()
			} else {
				key += "\x00" + types.ExprString(n)
			}
		}
		if seen[key] {
			pass.Reportf(c.call.Pos(),
				"duplicate child label %q on %s: derives a stream identical to an earlier sibling; labels must be distinct per lineage",
				val, types.ExprString(c.recv))
			continue
		}
		seen[key] = true
	}

	// Rule 3 needs reaching definitions for receiver loop-invariance.
	var rd *ReachingDefs
	var c *CFG
	for _, cc := range calls {
		if cc.loop == nil || cc.method != "Child" {
			continue
		}
		if constString(pass.Info, cc.call.Args[0]) == "" {
			continue // dynamic component varies per iteration
		}
		recv, ok := unparen(cc.recv).(*ast.Ident)
		if !ok {
			continue // field or call receivers: tracked lineage unknown, stay silent
		}
		v, ok := objOf(pass.Info, recv).(*types.Var)
		if !ok {
			continue
		}
		if c == nil {
			c = BuildCFG(body, pass.Info)
			rd = BuildReachingDefs(c, pass.Info, enclosingParams(pass, body)...)
		}
		blk, idx, found := findBlockNode(c, cc.call.Pos())
		if !found {
			continue
		}
		defs := rd.DefsAt(blk, idx, v)
		if len(defs) == 0 {
			continue // parameter of a literal, or untracked: stay silent
		}
		invariant := true
		for _, d := range defs {
			if d.Pos() >= cc.loop.Pos() && d.Pos() < cc.loop.End() {
				invariant = false
				break
			}
		}
		if invariant {
			pass.Reportf(cc.call.Pos(),
				"Child(%s) on loop-invariant receiver %s derives the same stream every iteration; use ChildN with the loop index or add a per-iteration label component",
				types.ExprString(cc.call.Args[0]), recv.Name)
		}
	}
}

// childCallOf reports whether call is Child/ChildN on a detrand source.
func childCallOf(info *types.Info, cfg *Config, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil, false
	}
	if sel.Sel.Name != "Child" && sel.Sel.Name != "ChildN" {
		return "", nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, false
	}
	if !typeMatchesAny(sig.Recv().Type(), cfg.DetrandSourceTypes) {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// hasConstComponent reports whether some part of a label expression is a
// compile-time constant: the whole expression, an operand of a
// concatenation, or any argument of a formatting call.
func hasConstComponent(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return hasConstComponent(info, e.X) || hasConstComponent(info, e.Y)
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if hasConstComponent(info, arg) {
				return true
			}
		}
	}
	return false
}

// constString returns the label's constant string value, or "" when the
// label has any dynamic component.
func constString(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// typeMatchesAny reports whether t (possibly behind a pointer) is one of
// the named types in refs.
func typeMatchesAny(t types.Type, refs []TypeRef) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	for _, r := range refs {
		if r.Pkg == pkg && r.Name == name {
			return true
		}
	}
	return false
}

// enclosingParams finds the parameter lists of the function whose body this
// is, so reaching definitions can seed parameters and receivers.
func enclosingParams(pass *Pass, body *ast.BlockStmt) []*ast.FieldList {
	for _, file := range pass.Files {
		if !(file.Pos() <= body.Pos() && body.End() <= file.End()) {
			continue
		}
		var out []*ast.FieldList
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == body {
					out = []*ast.FieldList{n.Recv, n.Type.Params, n.Type.Results}
					return false
				}
			case *ast.FuncLit:
				if n.Body == body {
					out = []*ast.FieldList{n.Type.Params, n.Type.Results}
					return false
				}
			}
			return true
		})
		if out != nil {
			return out
		}
	}
	return nil
}
