package lint

// run.go drives the suite: load packages, run each analyzer, then apply
// the //pinlint:allow suppression pass and sort what remains.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Suite returns the full analyzer set over cfg, in stable order.
func Suite(cfg *Config) []*Analyzer {
	return []*Analyzer{
		NewDetrandOnly(cfg),
		NewMapDeterminism(cfg),
		NewExportShape(cfg),
		NewAtomicSwap(cfg),
		NewAtomicWrite(cfg),
		NewPKIIssuance(cfg),
		NewGoroutineLifetime(cfg),
		NewLockSafety(cfg),
		NewJournalDiscipline(cfg),
		NewDetrandFlow(cfg),
		NewErrDrop(cfg),
	}
}

// Run loads the packages matching patterns (relative to dir) and applies
// the analyzers. Suppressed findings are removed; malformed or misdirected
// //pinlint:allow directives are themselves reported. Diagnostics come
// back sorted by file position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, fset, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := AnalyzePackage(fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// AnalyzePackage applies analyzers to one loaded package and resolves
// //pinlint:allow suppressions (malformed directives come back as
// "pinlint" findings).
func AnalyzePackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			PkgPath:  pkg.PkgPath,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	allows, bad := collectAllows(fset, pkg, analyzerNames(analyzers))
	kept := diags[:0]
	for _, d := range diags {
		if allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, bad...), nil
}

func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// allowSet indexes directives by file and line.
type allowSet map[string]map[int][]string // filename -> line -> analyzers

// suppresses reports whether a directive for d's analyzer sits on d's line
// or the line immediately above (the attached-comment position).
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Position.Filename]
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

const allowPrefix = "//pinlint:allow"

// collectAllows scans a package's comments for //pinlint:allow directives.
// A directive must name a known analyzer and carry a justification; ones
// that do not are returned as findings in their own right, so the escape
// hatch cannot rot into a blanket mute.
func collectAllows(fset *token.FileSet, pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Analyzer: "pinlint",
			Pos:      pos,
			Position: fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //pinlint:allowother — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "allow directive names no analyzer (want \"%s <analyzer> <reason>\")", allowPrefix)
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), "allow directive names unknown analyzer %q", name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "allow directive for %s has no justification; say why the finding is acceptable", name)
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
	return allows, bad
}
