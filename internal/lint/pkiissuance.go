package lint

// pkiissuance guards the shared crypto plane's ownership of key material:
// every ECDSA key in the simulation must come from internal/pki, where
// issuance is detrand-derived (same seed, same SubjectPublicKeyInfo) and
// digests are interned in the content-addressed chain store. A bare
// crypto/ecdsa.GenerateKey elsewhere mints a key the plane cannot dedup or
// reproduce: it either consumes ambient entropy (breaking byte-identical
// replays outright) or silently forks a second issuance path whose chains
// bypass the interning and digest memoization the plane's performance
// contract rests on.
//
// internal/pki itself is exempt (it is the issuance layer), and a
// deliberate exception can carry a //pinlint:allow pkiissuance directive
// with its justification.

import (
	"go/ast"
)

// NewPKIIssuance builds the pkiissuance analyzer over cfg.
func NewPKIIssuance(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "pkiissuance",
		Doc: "flags crypto/ecdsa.GenerateKey outside internal/pki; " +
			"all simulation key material must be issued by the pki layer",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.PKIIssuancePackages, pass.PkgPath) ||
			matchPkg(cfg.PKIIssuanceExempt, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() != "crypto/ecdsa" || obj.Name() != "GenerateKey" {
					return true
				}
				pass.Reportf(id.Pos(),
					"ecdsa.GenerateKey mints key material outside internal/pki; "+
						"issue keys through the pki layer so the crypto plane can intern and reproduce them")
				return true
			})
		}
		return nil
	}
	return a
}
