package lint

// journaldiscipline guards the WAL's crash-safety contract from the
// outside in:
//
//  1. WAL bytes come only from the journal package. Constructing or
//     resuming a journal.Writer (journal.Create, journal.ResumeWriter,
//     Recovery.AppendTo) is restricted to the designated writer packages;
//     forging the WAL magic string or opening files with os.O_APPEND
//     anywhere else is flagged outright.
//  2. Durable writes fsync before rename: every os.Rename call must be
//     dominated by a Sync call — on all paths from the function entry to
//     the rename, a .Sync() happens first — so the renamed bytes are on
//     disk before the old artifact is unlinked.
//  3. Resuming is meta-checked: every ResumeWriter / AppendTo call outside
//     the journal package must be dominated by a read of the recovered
//     journal's Meta, the strict-config gate that keeps a foreign run's WAL
//     from being appended to.
//
// Rules 2 and 3 are path-sensitive (CFG + HitsBefore); rule 1 is a plain
// reference scan. The journal implementation package itself is exempt.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// restrictedJournalFuncs are the WAL-writer constructors of rule 1; the
// map value documents what each one hands out.
var restrictedJournalFuncs = map[string]string{
	"Create":       "a fresh WAL writer",
	"ResumeWriter": "an append handle to a recovered WAL",
	"AppendTo":     "an append handle to a recovered WAL",
}

// metaCheckedJournalFuncs are the rule-3 resume entry points.
var metaCheckedJournalFuncs = map[string]bool{
	"ResumeWriter": true,
	"AppendTo":     true,
}

// NewJournalDiscipline builds the journaldiscipline analyzer over cfg.
func NewJournalDiscipline(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "journaldiscipline",
		Doc: "WAL bytes only through journal.Writer, fsync before rename on durable " +
			"paths, and strict meta checks before resuming a recovered journal",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.JournalPackages, pass.PkgPath) || pass.PkgPath == cfg.JournalImplPackage {
			return nil
		}
		allowedWriter := matchPkg(cfg.JournalWriterPackages, pass.PkgPath)
		for _, file := range pass.Files {
			checkJournalRefs(pass, cfg, file, allowedWriter)
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkJournalPaths(pass, cfg, fd.Body)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkJournalPaths(pass, cfg, lit.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// journalFunc resolves obj to a function of the journal implementation
// package, returning its name.
func journalFunc(cfg *Config, obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cfg.JournalImplPackage {
		return "", false
	}
	return fn.Name(), true
}

// checkJournalRefs enforces rule 1 on one file.
func checkJournalRefs(pass *Pass, cfg *Config, file *ast.File, allowedWriter bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if allowedWriter {
				return true
			}
			name, ok := journalFunc(cfg, pass.Info.Uses[n])
			if !ok {
				return true
			}
			if what, restricted := restrictedJournalFuncs[name]; restricted {
				pass.Reportf(n.Pos(),
					"journal.%s hands out %s; only the designated writer packages may produce WAL bytes",
					name, what)
			}
		case *ast.BasicLit:
			//pinlint:allow journaldiscipline this literal is the analyzer's own match pattern, not WAL bytes
			if n.Kind == token.STRING && strings.Contains(n.Value, "PINWAL1") {
				pass.Reportf(n.Pos(),
					"WAL magic forged outside the journal package; all journal bytes must flow through journal.Writer")
			}
		case *ast.SelectorExpr:
			if obj := pass.Info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && obj.Name() == "O_APPEND" {
				pass.Reportf(n.Pos(),
					"os.O_APPEND outside the journal package; appending to artifacts bypasses the WAL's framing and recovery")
			}
		}
		return true
	})
}

// checkJournalPaths enforces the path-sensitive rules 2 and 3 on one body.
func checkJournalPaths(pass *Pass, cfg *Config, body *ast.BlockStmt) {
	// Collect the interesting call sites first; most bodies have none and
	// skip CFG construction entirely.
	type site struct {
		call *ast.CallExpr
		rule int // 2 = rename, 3 = resume
		name string
	}
	var sites []site
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are checked as their own bodies
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && obj.Name() == "Rename" {
				sites = append(sites, site{call, 2, "os.Rename"})
				return true
			}
		}
		if fn := CalleeOf(pass.Info, call); fn != nil {
			if name, ok := journalFunc(cfg, fn); ok && metaCheckedJournalFuncs[name] {
				sites = append(sites, site{call, 3, "journal." + name})
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	c := BuildCFG(body, pass.Info)
	for _, s := range sites {
		blk, idx, ok := findBlockNode(c, s.call.Pos())
		if !ok {
			continue
		}
		switch s.rule {
		case 2:
			guarded := c.HitsBefore(blk, idx, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return false
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				return ok && sel.Sel.Name == "Sync"
			})
			if !guarded {
				pass.Reportf(s.call.Pos(),
					"%s not preceded by Sync on every path; a crash can unlink the old artifact before the new bytes are durable", s.name)
			}
		case 3:
			guarded := c.HitsBefore(blk, idx, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				return ok && sel.Sel.Name == "Meta"
			})
			if !guarded {
				pass.Reportf(s.call.Pos(),
					"%s not preceded by a journal meta check on every path; resuming without it can append this run's frames to a foreign WAL", s.name)
			}
		}
	}
}

// findBlockNode locates the block node containing pos.
func findBlockNode(c *CFG, pos token.Pos) (*Block, int, bool) {
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return b, i, true
			}
		}
	}
	return nil, 0, false
}
