package lint

// locksafety checks Lock/Unlock discipline on sync.Mutex and sync.RWMutex
// with a must-hold dataflow over the CFG: at every block the analysis knows
// which locks are held on ALL incoming paths (intersection merge, so a
// conditionally-released lock degrades to "maybe held" and stays silent
// rather than false-positive). Three invariants:
//
//  1. no second Lock of a mutex that is definitely held (self-deadlock);
//  2. no return — explicit or fall-off — with a mutex definitely held,
//     unless a deferred Unlock covers it;
//  3. no blocking operation (channel send/receive, select without default,
//     WaitGroup.Wait, time.Sleep) while a mutex is definitely held —
//     sync.Cond.Wait is exempt since releasing the mutex is its contract.
//
// Locks are keyed by the receiver expression's source text ("s.mu"), which
// is exact for the struct-field mutexes this repo uses. The analysis is
// intra-procedural; helpers that return holding a lock are out of scope.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewLockSafety builds the locksafety analyzer over cfg.
func NewLockSafety(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "locksafety",
		Doc: "Lock/Unlock must pair on every path, no return or blocking operation " +
			"(channel op, select, WaitGroup.Wait) while a mutex is definitely held",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.LockSafetyPackages, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockSafety(pass, fd.Body)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockSafety(pass, lit.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// lockOp classifies one mutex call site.
type lockOp struct {
	key     string // receiver text, "#r"-suffixed for read locks
	acquire bool
	excl    bool // exclusive (Lock/Unlock) vs shared (RLock/RUnlock)
}

// mutexOps maps sync method names to their lock semantics.
var mutexOps = map[string]lockOp{
	"(*sync.Mutex).Lock":      {acquire: true, excl: true},
	"(*sync.Mutex).Unlock":    {acquire: false, excl: true},
	"(*sync.RWMutex).Lock":    {acquire: true, excl: true},
	"(*sync.RWMutex).Unlock":  {acquire: false, excl: true},
	"(*sync.RWMutex).RLock":   {acquire: true, excl: false},
	"(*sync.RWMutex).RUnlock": {acquire: false, excl: false},
}

// classifyLockCall returns the lock operation for call, if it is one.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockOp{}, false
	}
	op, ok := mutexOps[fn.FullName()]
	if !ok {
		return lockOp{}, false
	}
	op.key = types.ExprString(sel.X)
	if !op.excl {
		op.key += "#r"
	}
	return op, true
}

// checkLockSafety runs the must-hold analysis over one function body.
func checkLockSafety(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.Info)

	// Deferred unlocks cover every exit path.
	deferred := map[string]bool{}
	for _, d := range cfg.Defers {
		if op, ok := classifyLockCall(pass.Info, d); ok && !op.acquire {
			deferred[op.key] = true
		}
		if lit, ok := unparen(d.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if op, ok := classifyLockCall(pass.Info, call); ok && !op.acquire {
						deferred[op.key] = true
					}
				}
				return true
			})
		}
	}

	// Channel operations that are a select's comm clauses are reported once
	// at the select (which is what blocks), not per clause.
	commOps := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.SendStmt:
						commOps[m.Pos()] = true
					case *ast.UnaryExpr:
						if m.Op == token.ARROW {
							commOps[m.Pos()] = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	// transfer applies one block node to the held set; report is false
	// during the fixpoint and true during the final diagnostic pass.
	transfer := func(b *Block, held map[string]bool, report bool) map[string]bool {
		b.Inspect(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // its body is a separate function
			case *ast.CallExpr:
				if op, ok := classifyLockCall(pass.Info, n); ok {
					if op.acquire {
						if held[op.key] && op.excl && report {
							pass.Reportf(n.Pos(), "%s locked again while already held (self-deadlock)",
								trimReadSuffix(op.key))
						}
						held[op.key] = true
					} else {
						delete(held, op.key)
					}
					return false
				}
				if report && len(held) > 0 && isBlockingCall(pass.Info, n) {
					pass.Reportf(n.Pos(), "blocking call %s while holding %s",
						types.ExprString(n.Fun), heldList(held))
				}
			case *ast.SendStmt:
				if report && len(held) > 0 && !commOps[n.Pos()] {
					pass.Reportf(n.Pos(), "channel send while holding %s", heldList(held))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && report && len(held) > 0 && !commOps[n.Pos()] {
					pass.Reportf(n.Pos(), "channel receive while holding %s", heldList(held))
				}
			case CtrlNode:
				switch s := n.Stmt.(type) {
				case *ast.SelectStmt:
					if report && len(held) > 0 && !selectHasDefault(s) {
						pass.Reportf(s.Pos(), "select without default while holding %s", heldList(held))
					}
				case *ast.RangeStmt:
					if report && len(held) > 0 && isChanType(pass.Info.TypeOf(s.X)) {
						pass.Reportf(s.Pos(), "range over channel while holding %s", heldList(held))
					}
				}
			case *ast.ReturnStmt:
				if report {
					reportHeldAtReturn(pass, n.Pos(), held, deferred)
				}
			}
			return true
		})
		return held
	}

	// Must-hold fixpoint: in(b) = ∩ out(preds); entry starts empty.
	in := map[*Block]map[string]bool{cfg.Entry: {}}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := transfer(b, copySet(in[b]), false)
		for _, s := range b.Succs {
			cur, seen := in[s]
			next := copySet(out)
			if seen {
				next = intersect(cur, out)
				if len(next) == len(cur) {
					continue // no shrink, already propagated
				}
			}
			in[s] = next
			work = append(work, s)
		}
	}

	// Final pass: report with converged entry states. Explicit returns are
	// reported at the ReturnStmt inside transfer; a fall-off edge to the
	// exit (a block whose last node is not a return) is reported once at
	// the closing brace.
	fellOff := false
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok || b == cfg.Exit {
			continue // unreachable, or the synthetic exit
		}
		out := transfer(b, copySet(state), true)
		if fellOff || !hasSucc(b, cfg.Exit) || endsInReturn(b) {
			continue
		}
		if anyUncovered(out, deferred) {
			reportHeldAtReturn(pass, body.Rbrace, out, deferred)
			fellOff = true
		}
	}
}

func hasSucc(b, target *Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

func endsInReturn(b *Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

func anyUncovered(held, deferred map[string]bool) bool {
	for k := range held {
		if !deferred[k] {
			return true
		}
	}
	return false
}

// reportHeldAtReturn flags locks still definitely held at a return point
// and not covered by a deferred unlock.
func reportHeldAtReturn(pass *Pass, pos token.Pos, held, deferred map[string]bool) {
	for key := range held {
		if !deferred[key] {
			pass.Reportf(pos, "returns with %s held (no Unlock on this path, no deferred Unlock)",
				trimReadSuffix(key))
			return // one report per return point is enough
		}
	}
}

// blockingFuncs are calls that can block indefinitely. sync.Cond.Wait is
// deliberately absent: it releases the mutex while waiting.
var blockingFuncs = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"time.Sleep":             true,
}

func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeOf(info, call)
	if fn == nil {
		return false
	}
	return blockingFuncs[fn.FullName()]
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// heldList renders the held set for a message, smallest key first so the
// output is deterministic.
func heldList(held map[string]bool) string {
	best := ""
	for k := range held {
		k = trimReadSuffix(k)
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func trimReadSuffix(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "#r" {
		return key[:len(key)-2]
	}
	return key
}
