package lint

// callgraph.go builds a package-level call graph with go/types callee
// resolution: one node per declared function or method and per function
// literal, one edge per call site. Static calls (f(), pkg.F(), x.M() on a
// concrete receiver) resolve through types.Info; references to a function
// that are not direct calls — method values, functions assigned to
// variables or passed as arguments — become Dynamic edges, which keeps
// transitive properties (like goroutinelifetime's signal propagation)
// conservative without pointer analysis. Calls into other packages resolve
// to a *types.Func with no node (no body to analyze); analyzers treat
// those as leaves with known semantics.

import (
	"go/ast"
	"go/types"
)

// CGNode is one function in the call graph: a declared function/method
// (Fn, Decl set) or a function literal (Lit set).
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Calls are this function's outgoing edges, in source order.
	Calls []CGEdge
}

// Body returns the function's body (nil for bodiless declarations).
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// CGEdge is one call or reference site.
type CGEdge struct {
	// Site is the CallExpr for direct calls, or the referencing
	// expression for dynamic references.
	Site ast.Node
	// Callee is the intra-package target, nil when the target is another
	// package's function (see Fn) or a function literal from elsewhere.
	Callee *CGNode
	// Fn is the resolved function object, set whenever resolution
	// succeeded (including cross-package targets). Nil for calls through
	// plain function-typed variables.
	Fn *types.Func
	// Dynamic marks a reference that is not a direct call: a method
	// value, a function assigned or passed as a value. The target may or
	// may not be invoked at runtime.
	Dynamic bool
	// Go and Defer mark call sites inside go/defer statements.
	Go, Defer bool
}

// CallGraph is the package-level graph.
type CallGraph struct {
	// Funcs maps every declared function and method to its node.
	Funcs map[*types.Func]*CGNode
	// Lits maps every function literal to its node.
	Lits map[*ast.FuncLit]*CGNode
}

// NodeFor returns the node for a resolved function object, nil for
// cross-package functions.
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode { return g.Funcs[fn] }

// BuildCallGraph constructs the call graph of one type-checked package.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{Funcs: map[*types.Func]*CGNode{}, Lits: map[*ast.FuncLit]*CGNode{}}

	// Pass 1: create nodes for declarations and literals.
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Funcs[fn] = &CGNode{Fn: fn, Decl: fd}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				g.Lits[lit] = &CGNode{Lit: lit}
			}
			return true
		})
	}

	// Pass 2: edges. Each node's body is walked shallowly — nested
	// literals are their own nodes and contribute a Dynamic containment
	// edge (the enclosing function may invoke or leak them).
	for _, node := range g.Funcs {
		if node.Decl.Body != nil {
			g.buildEdges(node, node.Decl.Body, info)
		}
	}
	for lit, node := range g.Lits {
		g.buildEdges(node, lit.Body, info)
	}
	return g
}

// buildEdges records body's call and reference edges on from.
func (g *CallGraph) buildEdges(from *CGNode, body *ast.BlockStmt, info *types.Info) {
	// Idents consumed as the Fun of a direct call; references seen
	// elsewhere become dynamic edges.
	direct := map[ast.Node]bool{}

	var walk func(n ast.Node, inGo, inDefer bool)
	walk = func(n ast.Node, inGo, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true // the literal whose body we were asked to walk
				}
				// Nested literal: containment edge, body walked as its
				// own node.
				from.Calls = append(from.Calls, CGEdge{Site: m, Callee: g.Lits[m], Dynamic: true, Go: inGo, Defer: inDefer})
				return false
			case *ast.GoStmt:
				walkCall(g, from, m.Call, direct, info, true, inDefer, walk)
				return false
			case *ast.DeferStmt:
				walkCall(g, from, m.Call, direct, info, inGo, true, walk)
				return false
			case *ast.CallExpr:
				walkCall(g, from, m, direct, info, inGo, inDefer, walk)
				return false
			case *ast.Ident:
				if direct[m] {
					return true
				}
				if fn, ok := info.Uses[m].(*types.Func); ok {
					from.Calls = append(from.Calls, CGEdge{Site: m, Callee: g.Funcs[fn], Fn: fn, Dynamic: true, Go: inGo, Defer: inDefer})
				}
			}
			return true
		})
	}
	// Walk the literal body via a wrapper so the top-level FuncLit case
	// does not immediately return.
	for _, s := range body.List {
		walk(s, false, false)
	}
}

// walkCall records the edge for one call expression and recurses into its
// receiver and arguments.
func walkCall(g *CallGraph, from *CGNode, call *ast.CallExpr, direct map[ast.Node]bool,
	info *types.Info, inGo, inDefer bool, walk func(ast.Node, bool, bool)) {

	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: direct edge to the literal node.
		// Its body is walked from its own node, not from here.
		from.Calls = append(from.Calls, CGEdge{Site: call, Callee: g.Lits[f], Go: inGo, Defer: inDefer})
	default:
		if fn := CalleeOf(info, call); fn != nil {
			from.Calls = append(from.Calls, CGEdge{Site: call, Callee: g.Funcs[fn], Fn: fn, Go: inGo, Defer: inDefer})
			if id, ok := fun.(*ast.Ident); ok {
				direct[id] = true
			} else if sel, ok := fun.(*ast.SelectorExpr); ok {
				direct[sel.Sel] = true
			}
		}
		// Receiver expressions (x in x.M(), including chained calls)
		// may contain further calls and references.
		walk(call.Fun, inGo, inDefer)
	}
	for _, arg := range call.Args {
		walk(arg, inGo, inDefer)
	}
}

// CalleeOf resolves a call expression's static callee through the type
// checker: a plain function, a package-qualified function, a method on a
// concrete receiver, or a method expression. Returns nil for calls
// through function-typed variables, built-ins, and type conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// TransitiveMarks propagates a per-function property up the call graph:
// seed marks the base functions, and any function with an edge (direct or
// dynamic, including go/defer) to a marked function becomes marked, to a
// fixpoint. Mutual recursion converges because marking is monotone, and
// the result — a set — is independent of map iteration order.
func (g *CallGraph) TransitiveMarks(seed func(*CGNode) bool) map[*CGNode]bool {
	marked := map[*CGNode]bool{}
	seeded := map[*CGNode]bool{} // seed() memo: it scans bodies, call once
	visit := func(n *CGNode) bool {
		if marked[n] {
			return false
		}
		if !seeded[n] {
			seeded[n] = true
			if seed(n) {
				marked[n] = true
				return true
			}
		}
		for _, e := range n.Calls {
			if e.Callee != nil && marked[e.Callee] {
				marked[n] = true
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Funcs {
			if visit(n) {
				changed = true
			}
		}
		for _, n := range g.Lits {
			if visit(n) {
				changed = true
			}
		}
	}
	return marked
}
