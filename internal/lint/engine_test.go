package lint

// engine_test.go unit-tests the analysis engine itself — CFG shape,
// reaching definitions, the all-paths predicates, and call-graph
// resolution — on small inline sources, independent of any analyzer.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source file.
func typecheckSrc(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

func funcBody(t *testing.T, file *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no func %q", name)
	return nil
}

// findNode returns the first node under root for which pred is true.
func findNode(t *testing.T, root ast.Node, pred func(ast.Node) bool) ast.Node {
	t.Helper()
	var out ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if n != nil && pred(n) {
			out = n
			return false
		}
		return true
	})
	if out == nil {
		t.Fatal("node not found")
	}
	return out
}

// callTo matches a direct call of the named function.
func callTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func f() int {
	x := 1
	return x
	x = 2
	return x
}`)
	c := BuildCFG(funcBody(t, file, "f"), info)
	if !c.ExitReachable() {
		t.Fatal("exit should be reachable through the first return")
	}
	dead := findNode(t, file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ASSIGN
	})
	blk, _, ok := findBlockNode(c, dead.Pos())
	if !ok {
		t.Fatal("dead statement should still get a block")
	}
	if c.Reachable()[blk] {
		t.Fatal("statements after return must be unreachable")
	}
	if len(blk.Preds) != 0 {
		t.Fatalf("dead block has %d preds, want 0", len(blk.Preds))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func always() { panic("x") }
func maybe(b bool) {
	if b {
		panic("x")
	}
}`)
	if c := BuildCFG(funcBody(t, file, "always"), info); c.ExitReachable() {
		t.Fatal("a body ending in panic cannot return normally")
	}
	if c := BuildCFG(funcBody(t, file, "maybe"), info); !c.ExitReachable() {
		t.Fatal("the non-panicking path must reach the exit")
	}
}

func TestEveryPathHits(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func sig() {}
func both(b bool) {
	if b {
		sig()
	} else {
		sig()
	}
}
func one(b bool) {
	if b {
		sig()
	}
}`)
	hit := func(b *Block) bool {
		found := false
		b.Inspect(func(n ast.Node) bool {
			if callTo("sig")(n) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if c := BuildCFG(funcBody(t, file, "both"), info); !c.EveryPathHits(hit) {
		t.Fatal("both branches signal: every path hits")
	}
	if c := BuildCFG(funcBody(t, file, "one"), info); c.EveryPathHits(hit) {
		t.Fatal("the else path avoids the signal")
	}
}

func TestHitsBefore(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func guard()  {}
func target() {}
func always() {
	guard()
	target()
}
func sometimes(b bool) {
	if b {
		guard()
	}
	target()
}`)
	check := func(name string, want bool) {
		t.Helper()
		body := funcBody(t, file, name)
		c := BuildCFG(body, info)
		tgt := findNode(t, body, callTo("target"))
		blk, idx, ok := findBlockNode(c, tgt.Pos())
		if !ok {
			t.Fatalf("%s: target not in CFG", name)
		}
		got := c.HitsBefore(blk, idx, callTo("guard"))
		if got != want {
			t.Fatalf("%s: HitsBefore = %v, want %v", name, got, want)
		}
	}
	check("always", true)
	check("sometimes", false)
}

func TestReachingDefsMergeAcrossBranch(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func f(b bool) int {
	x := 1
	if b {
		x = 2
	}
	return x
}`)
	body := funcBody(t, file, "f")
	c := BuildCFG(body, info)
	rd := BuildReachingDefs(c, info)

	decl := findNode(t, body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.DEFINE
	})
	id := decl.(*ast.AssignStmt).Lhs[0].(*ast.Ident)
	v := info.Defs[id].(*types.Var)

	ret := findNode(t, body, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	blk, idx, ok := findBlockNode(c, ret.Pos())
	if !ok {
		t.Fatal("return not in CFG")
	}
	defs := rd.DefsAt(blk, idx, v)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs of x at the return, want 2 (join of both branches)", len(defs))
	}
	if defs[0].Pos() >= defs[1].Pos() {
		t.Fatal("DefsAt must return definitions in source order")
	}
}

func TestTransitiveMarksMutualRecursion(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func a(n int) {
	if n > 0 {
		b(n - 1)
	}
}
func b(n int) {
	if n > 0 {
		a(n - 1)
	}
	sig()
}
func sig()   {}
func lonely() {}`)
	g := BuildCallGraph([]*ast.File{file}, info)
	marked := g.TransitiveMarks(func(n *CGNode) bool {
		return n.Fn != nil && n.Fn.Name() == "sig"
	})
	status := map[string]bool{}
	for fn, node := range g.Funcs {
		status[fn.Name()] = marked[node]
	}
	for _, want := range []string{"a", "b", "sig"} {
		if !status[want] {
			t.Fatalf("%s should be marked (reaches sig), marks: %v", want, status)
		}
	}
	if status["lonely"] {
		t.Fatal("lonely calls nothing and must stay unmarked")
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	file, info := typecheckSrc(t, `package p
type T struct{}
func (T) M() {}
func f() {
	var t T
	m := t.M
	m()
}`)
	g := BuildCallGraph([]*ast.File{file}, info)
	var fNode *CGNode
	for fn, node := range g.Funcs {
		if fn.Name() == "f" {
			fNode = node
		}
	}
	found := false
	for _, e := range fNode.Calls {
		if e.Dynamic && e.Fn != nil && e.Fn.Name() == "M" {
			found = true
		}
	}
	if !found {
		t.Fatal("the method value t.M must produce a dynamic edge to M")
	}
}

func TestCallGraphGoDeferEdges(t *testing.T) {
	file, info := typecheckSrc(t, `package p
func f() {
	go h()
	defer h()
}
func h() {}`)
	g := BuildCallGraph([]*ast.File{file}, info)
	var fNode *CGNode
	for fn, node := range g.Funcs {
		if fn.Name() == "f" {
			fNode = node
		}
	}
	var goEdge, deferEdge bool
	for _, e := range fNode.Calls {
		if e.Fn == nil || e.Fn.Name() != "h" {
			continue
		}
		if e.Go {
			goEdge = true
		}
		if e.Defer {
			deferEdge = true
		}
	}
	if !goEdge || !deferEdge {
		t.Fatalf("want go and defer edges to h, got go=%v defer=%v", goEdge, deferEdge)
	}

	c := BuildCFG(funcBody(t, file, "f"), info)
	if len(c.Defers) != 1 {
		t.Fatalf("CFG should record 1 deferred call, got %d", len(c.Defers))
	}
}
