package lint

// atomicswap guards the serving layer's zero-downtime reload contract.
// The snapshot index lives behind an atomic.Pointer; correctness depends
// on two usage rules that the type system cannot express:
//
//  1. One load per request scope. Loading the pointer twice in one
//     function can observe two different snapshots across a reload — the
//     torn-snapshot bug (counts from one index, bodies from another).
//     Load once, pass the value down.
//  2. Stores only in the designated swap function. Reload logic must
//     funnel through one place (which also maintains the reload counters
//     and timestamps); a stray Store or Swap elsewhere bypasses it.

import (
	"go/ast"
	"go/types"
)

// atomicMutators replace the pointer; atomicLoads read it.
var atomicMutators = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true}

// NewAtomicSwap builds the atomicswap analyzer over cfg.
func NewAtomicSwap(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "atomicswap",
		Doc: "atomic.Pointer snapshot fields: at most one Load per function scope, " +
			"and Store/Swap only inside the designated swap function",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.AtomicSwapPackages, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(pass, cfg, fd)
			}
		}
		return nil
	}
	return a
}

func checkFunc(pass *Pass, cfg *Config, fd *ast.FuncDecl) {
	fname := funcDisplayName(fd)
	isSwapFunc := allowedFunc(cfg.SwapFuncs, pass.PkgPath, fname)
	loads := map[string]int{} // rendered receiver expr -> loads seen

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := atomicPointerRecv(pass, sel)
		if recv == "" {
			return true
		}
		switch {
		case sel.Sel.Name == "Load":
			loads[recv]++
			if loads[recv] > 1 {
				pass.Reportf(call.Pos(),
					"%s.Load() called %d times in %s: a reload between loads serves a torn snapshot; load once and pass the value",
					recv, loads[recv], fname)
			}
		case atomicMutators[sel.Sel.Name] && !isSwapFunc:
			pass.Reportf(call.Pos(),
				"%s.%s outside the designated swap function: route snapshot replacement through %v",
				recv, sel.Sel.Name, cfg.SwapFuncs[pass.PkgPath])
		}
		return true
	})
}

// atomicPointerRecv returns the rendered receiver expression when sel is a
// method selection on a sync/atomic Pointer[T] value, else "".
func atomicPointerRecv(pass *Pass, sel *ast.SelectorExpr) string {
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return ""
	}
	return types.ExprString(sel.X)
}
