package lint

// atomicwrite guards the crash-only artifact contract: every file the
// study writes (exports, journals, snapshots) must reach disk through
// internal/atomicio — temp file in the destination directory, fsync,
// rename — so a crash at any instant leaves either the old artifact or
// the new one, never a torn hybrid. A bare os.Create or os.WriteFile
// truncates or writes in place and reintroduces exactly the torn-artifact
// window the atomicio package exists to close.
//
// internal/atomicio itself is exempt (it is the implementation), and a
// deliberate non-artifact write can carry a //pinlint:allow atomicwrite
// directive with its justification.

import (
	"go/ast"
)

// bareWriteFuncs are the in-place file writers the analyzer bans.
var bareWriteFuncs = map[[2]string]string{
	{"os", "Create"}:    "truncates the destination in place; a crash mid-write leaves a torn artifact",
	{"os", "WriteFile"}: "writes the destination in place without fsync or rename",
}

// NewAtomicWrite builds the atomicwrite analyzer over cfg.
func NewAtomicWrite(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "atomicwrite",
		Doc: "flags bare os.Create/os.WriteFile in artifact-writing packages; " +
			"route writes through internal/atomicio (temp file + fsync + rename)",
	}
	a.Run = func(pass *Pass) error {
		if !matchPkg(cfg.AtomicWritePackages, pass.PkgPath) ||
			matchPkg(cfg.AtomicWriteExempt, pass.PkgPath) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				why, banned := bareWriteFuncs[[2]string{obj.Pkg().Path(), obj.Name()}]
				if !banned {
					return true
				}
				pass.Reportf(id.Pos(),
					"os.%s %s; write it through internal/atomicio (Create/WriteFile commit atomically)",
					obj.Name(), why)
				return true
			})
		}
		return nil
	}
	return a
}
