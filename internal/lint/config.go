package lint

import "strings"

// TypeRef names a type by package path and local name.
type TypeRef struct {
	Pkg  string
	Name string
}

// Config is the policy table the analyzers consult. The zero value checks
// nothing; DefaultConfig returns pinscope's real policy. Tests build small
// configs pointing at their testdata packages.
type Config struct {
	// StrictDeterminism lists the simulation packages in which detrandonly
	// permits NO ambient entropy or wall-clock reads at all: every source
	// of randomness or time must be internal/detrand or an injected value.
	// Entries ending in "/..." match by prefix.
	StrictDeterminism []string

	// CheckedDeterminism lists serving/CLI packages that detrandonly also
	// scans, but where wall-clock reads are legitimate for operational
	// telemetry (latency histograms, uptime). A finding there is allowed
	// only when the enclosing function appears in AllowedWallClock.
	// Entries ending in "/..." match by prefix.
	CheckedDeterminism []string

	// AllowedWallClock maps a checked package's import path to the
	// functions ("F" or "Type.Method") permitted to read the wall clock.
	AllowedWallClock map[string][]string

	// MapOrderPackages lists packages mapdeterminism scans. Entries ending
	// in "/..." match by prefix; a bare "..." matches everything.
	MapOrderPackages []string

	// ExportRoots are the types whose reachable closure exportshape holds
	// to the versioned-snapshot contract (explicit json tags on every
	// exported field, no interface-typed fields, no untagged embedding).
	ExportRoots []TypeRef

	// AtomicSwapPackages lists packages atomicswap scans for torn
	// atomic.Pointer snapshot reads and stray stores.
	AtomicSwapPackages []string

	// SwapFuncs maps a package's import path to the functions ("F" or
	// "Type.Method") designated to Store/Swap atomic.Pointer fields.
	SwapFuncs map[string][]string

	// AtomicWritePackages lists packages atomicwrite scans for bare
	// os.Create/os.WriteFile calls (artifact writes must flow through
	// internal/atomicio). Entries ending in "/..." match by prefix.
	AtomicWritePackages []string

	// AtomicWriteExempt lists packages atomicwrite skips even when matched
	// by AtomicWritePackages — internal/atomicio itself, which implements
	// the contract the analyzer enforces.
	AtomicWriteExempt []string

	// PKIIssuancePackages lists packages pkiissuance scans for bare
	// crypto/ecdsa.GenerateKey calls (all simulation key material must be
	// issued by internal/pki). Entries ending in "/..." match by prefix.
	PKIIssuancePackages []string

	// PKIIssuanceExempt lists packages pkiissuance skips even when matched
	// by PKIIssuancePackages — internal/pki itself, the issuance layer the
	// analyzer routes everyone else through.
	PKIIssuanceExempt []string

	// GoroutineLifetimePackages lists packages goroutinelifetime scans:
	// every go statement there must reach a completion signal. Entries
	// ending in "/..." match by prefix.
	GoroutineLifetimePackages []string

	// LockSafetyPackages lists packages locksafety scans for Lock/Unlock
	// pairing and blocking-while-locked. Entries ending in "/..." match by
	// prefix.
	LockSafetyPackages []string

	// JournalPackages lists packages journaldiscipline scans. Entries
	// ending in "/..." match by prefix.
	JournalPackages []string

	// JournalWriterPackages lists the packages permitted to construct or
	// resume WAL writers (journal.Create / ResumeWriter / AppendTo).
	JournalWriterPackages []string

	// JournalImplPackage is the WAL implementation package: exempt from
	// journaldiscipline, and the only place the magic and O_APPEND may
	// appear.
	JournalImplPackage string

	// DetrandFlowPackages lists packages detrandflow scans for child-label
	// discipline. Entries ending in "/..." match by prefix.
	DetrandFlowPackages []string

	// DetrandFlowExempt lists packages detrandflow skips even when matched
	// — internal/detrand itself, which builds labels from parameters by
	// design.
	DetrandFlowExempt []string

	// DetrandSourceTypes names the deterministic source types whose
	// Child/ChildN derivations detrandflow checks.
	DetrandSourceTypes []TypeRef

	// ErrDropPackages lists packages errdrop scans for discarded
	// Close/Sync/Flush errors. Entries ending in "/..." match by prefix.
	ErrDropPackages []string

	// ErrDropCloserTypes lists write-handle types (beyond *os.File and
	// *bufio.Writer) whose dropped Close/Sync/Flush errors are flagged.
	ErrDropCloserTypes []TypeRef

	// ErrDropExemptTypes lists types errdrop skips — atomicio.Writer,
	// whose post-Commit Close is a documented no-op.
	ErrDropExemptTypes []TypeRef
}

// DefaultConfig is pinscope's policy: the table the ISSUE calls for,
// consulted by cmd/pinlint and scripts/check.sh.
func DefaultConfig() *Config {
	return &Config{
		StrictDeterminism: []string{
			"pinscope",
			"pinscope/internal/appmodel",
			"pinscope/internal/apppkg",
			"pinscope/internal/appstore",
			"pinscope/internal/atomicio",
			"pinscope/internal/core",
			"pinscope/internal/ctlog",
			"pinscope/internal/detrand",
			"pinscope/internal/device",
			"pinscope/internal/dynamicanalysis",
			"pinscope/internal/faultinject",
			"pinscope/internal/frida",
			"pinscope/internal/journal",
			"pinscope/internal/mitmproxy",
			"pinscope/internal/netem",
			"pinscope/internal/pii",
			"pinscope/internal/pki",
			"pinscope/internal/report",
			"pinscope/internal/rootprogram",
			"pinscope/internal/sdkregistry",
			"pinscope/internal/shardcoord",
			"pinscope/internal/staticanalysis",
			"pinscope/internal/stats",
			"pinscope/internal/tlswire",
			"pinscope/internal/uiauto",
			"pinscope/internal/whois",
			"pinscope/internal/worldgen",
		},
		CheckedDeterminism: []string{
			"pinscope/internal/pinserve",
			"pinscope/internal/advisor",
			"pinscope/internal/shardnet",
			"pinscope/cmd/...",
		},
		AllowedWallClock: map[string][]string{
			// Serving-layer telemetry: request latency, uptime, snapshot
			// build and swap timestamps. None of it feeds study artifacts.
			"pinscope/internal/pinserve": {
				"Build",              // stats.BuildMicros
				"New",                // uptime epoch
				"Server.swap",        // last-load timestamp
				"Server.wrap",        // per-request latency histogram
				"Server.handleStats", // uptime report
			},
			// The TCP transport is the one shardnet file on real time:
			// frame deadlines and lease TTLs against remote peers have to
			// be wall-clock. Both readers implement the package's Clock
			// interface; everything else in the package schedules on it.
			"pinscope/internal/shardnet": {
				"wallClock.Now",
				"wallClock.WaitUntil",
				"wallDeadline",
			},
			// CLI progress banners time the run for the operator.
			"pinscope/cmd/worldgen":  {"main"},
			"pinscope/cmd/pinstudy":  {"main", "runSharded", "runShardServe", "runTimeline"},
			"pinscope/cmd/pinscoped": {"main", "runSelftest"},
		},
		MapOrderPackages: []string{"pinscope", "pinscope/..."},
		ExportRoots: []TypeRef{
			// The versioned snapshot written by core.WriteJSON and read
			// back by core.ReadJSON — the public dataset contract.
			{Pkg: "pinscope/internal/core", Name: "ExportedDataset"},
			// The serving layer's pre-rendered response payloads are
			// snapshot-derived JSON contracts of their own.
			{Pkg: "pinscope/internal/pinserve", Name: "DestInfo"},
			{Pkg: "pinscope/internal/pinserve", Name: "PinAnswer"},
			{Pkg: "pinscope/internal/pinserve", Name: "DistrustAnswer"},
			{Pkg: "pinscope/internal/pinserve", Name: "IndexStats"},
		},
		AtomicSwapPackages: []string{"pinscope/internal/pinserve"},
		SwapFuncs: map[string][]string{
			"pinscope/internal/pinserve": {"Server.swap"},
		},
		AtomicWritePackages:       []string{"pinscope", "pinscope/..."},
		AtomicWriteExempt:         []string{"pinscope/internal/atomicio"},
		PKIIssuancePackages:       []string{"pinscope", "pinscope/..."},
		PKIIssuanceExempt:         []string{"pinscope/internal/pki"},
		GoroutineLifetimePackages: []string{"pinscope", "pinscope/..."},
		LockSafetyPackages:        []string{"pinscope", "pinscope/..."},
		JournalPackages:           []string{"pinscope", "pinscope/..."},
		JournalWriterPackages: []string{
			"pinscope/internal/journal",
			"pinscope/internal/core",
			"pinscope/internal/shardcoord",
			"pinscope/internal/shardnet",
		},
		JournalImplPackage:  "pinscope/internal/journal",
		DetrandFlowPackages: []string{"pinscope", "pinscope/..."},
		DetrandFlowExempt:   []string{"pinscope/internal/detrand"},
		DetrandSourceTypes: []TypeRef{
			{Pkg: "pinscope/internal/detrand", Name: "Source"},
		},
		ErrDropPackages: []string{"pinscope", "pinscope/..."},
		ErrDropCloserTypes: []TypeRef{
			{Pkg: "pinscope/internal/journal", Name: "Writer"},
		},
		ErrDropExemptTypes: []TypeRef{
			{Pkg: "pinscope/internal/atomicio", Name: "Writer"},
		},
	}
}

// matchPkg reports whether path matches any entry in pats. An entry
// "p/..." matches p and everything under it; "..." matches everything.
func matchPkg(pats []string, path string) bool {
	for _, p := range pats {
		if p == path {
			return true
		}
		if p == "..." {
			return true
		}
		if strings.HasSuffix(p, "/...") {
			root := strings.TrimSuffix(p, "/...")
			if path == root || strings.HasPrefix(path, root+"/") {
				return true
			}
		}
	}
	return false
}

// allowedFunc reports whether fn ("F" or "Type.Method") is allowlisted for
// pkg in table.
func allowedFunc(table map[string][]string, pkg, fn string) bool {
	for _, f := range table[pkg] {
		if f == fn {
			return true
		}
	}
	return false
}
