package uiauto

import (
	"math"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
)

func appWithHosts(hosts ...string) *appmodel.App {
	a := &appmodel.App{ID: "com.t.app"}
	for _, h := range hosts {
		a.Conns = append(a.Conns, appmodel.PlannedConn{Host: h})
	}
	return a
}

func TestSemanticTriggersNeverFire(t *testing.T) {
	app := appWithHosts("a.com")
	extra := []InteractiveConn{
		{Trigger: TriggerSemantic, Conn: appmodel.PlannedConn{Host: "login.a.com"}},
	}
	for seed := int64(0); seed < 20; seed++ {
		got := Explore(app, extra, DefaultScript(seed))
		if len(got) != 0 {
			t.Fatalf("semantic trigger fired with seed %d", seed)
		}
	}
}

func TestLaunchTriggersAlwaysFire(t *testing.T) {
	app := appWithHosts("a.com")
	extra := []InteractiveConn{
		{Trigger: TriggerLaunch, Conn: appmodel.PlannedConn{Host: "x.a.com"}},
	}
	if got := Explore(app, extra, Script{Events: 0, Seed: 1}); len(got) != 1 {
		t.Fatalf("launch trigger did not fire: %v", got)
	}
}

func TestRandomReachableSaturatesWithEvents(t *testing.T) {
	app := appWithHosts("a.com")
	extra := []InteractiveConn{
		{Trigger: TriggerRandomReachable, Conn: appmodel.PlannedConn{Host: "promo.a.com"}},
	}
	hits := func(events int) int {
		n := 0
		for seed := int64(0); seed < 200; seed++ {
			if len(Explore(app, extra, Script{Events: events, Seed: seed})) > 0 {
				n++
			}
		}
		return n
	}
	few, many := hits(10), hits(2000)
	if few >= many {
		t.Fatalf("hit rate did not grow with events: %d vs %d", few, many)
	}
	if many < 180 {
		t.Fatalf("long sessions should almost always hit prominent elements: %d/200", many)
	}
}

func TestPlanForShape(t *testing.T) {
	rng := detrand.New(5)
	app := appWithHosts("a.com", "b.com")
	semantic, random := 0, 0
	for i := 0; i < 300; i++ {
		for _, ic := range PlanFor(app, rng.ChildN("p", i)) {
			switch ic.Trigger {
			case TriggerSemantic:
				semantic++
			case TriggerRandomReachable:
				random++
			}
		}
	}
	if semantic == 0 || random == 0 {
		t.Fatalf("plan lacks variety: semantic=%d random=%d", semantic, random)
	}
	if random >= semantic {
		t.Fatalf("random-reachable (%d) should be the minority vs semantic (%d)", random, semantic)
	}
	// No plan for an app with no hosts.
	if got := PlanFor(&appmodel.App{ID: "x"}, rng.Child("empty")); got != nil {
		t.Fatalf("plan for host-less app: %v", got)
	}
}

func TestCompareDomainsSmallChange(t *testing.T) {
	// The headline reproduction: random interaction changes the contacted
	// domain count only marginally (the paper found no significant change).
	var apps []*appmodel.App
	rng := detrand.New(9)
	for i := 0; i < 120; i++ {
		a := &appmodel.App{ID: "com.app" + string(rune('a'+i%26)) + string(rune('0'+i%10))}
		n := 5 + rng.Intn(15)
		for j := 0; j < n; j++ {
			a.Conns = append(a.Conns, appmodel.PlannedConn{
				Host: "h" + string(rune('a'+j)) + ".example.com",
			})
		}
		apps = append(apps, a)
	}
	res := CompareDomains(apps, 3)
	if res.Apps != 120 {
		t.Fatalf("apps %d", res.Apps)
	}
	if res.AvgDomainsInteractive < res.AvgDomainsLaunchOnly {
		t.Fatal("interaction cannot reduce domains")
	}
	if math.Abs(res.RelativeChange) > 0.10 {
		t.Fatalf("relative change %.3f too large — should be insignificant", res.RelativeChange)
	}
}

func TestTriggerStrings(t *testing.T) {
	if TriggerLaunch.String() != "launch" ||
		TriggerRandomReachable.String() != "random-reachable" ||
		TriggerSemantic.String() != "semantic" {
		t.Fatal("trigger names wrong")
	}
}
