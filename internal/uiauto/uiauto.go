// Package uiauto models the app-exploration tooling the paper evaluated
// and set aside (§4.2.1 "App Interaction", §5.7 "App Exploration"):
// UI Automator on Android and its iOS counterpart, driving random monkey
// interactions against a running app.
//
// The paper found that random interactions produced "no significant change
// in the number of domains contacted" versus launch-only runs, because the
// connections behind UI flows mostly require semantic actions (sign-up,
// log-in) that random tapping cannot perform. The model reproduces that:
// apps carry interactive connection plans gated on either a random-reachable
// trigger (a small minority — prominent buttons on the first screen) or a
// semantic trigger (the majority), and the monkey only fires the former.
package uiauto

import (
	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
)

// Trigger describes what it takes to reach a connection's code path.
type Trigger int

const (
	// TriggerLaunch connections happen on app start (the default plan in
	// appmodel.App.Conns).
	TriggerLaunch Trigger = iota
	// TriggerRandomReachable connections fire behind prominent first-screen
	// elements a monkey can hit.
	TriggerRandomReachable
	// TriggerSemantic connections require real flows (credentials, forms,
	// payments) out of reach for random input.
	TriggerSemantic
)

func (t Trigger) String() string {
	switch t {
	case TriggerLaunch:
		return "launch"
	case TriggerRandomReachable:
		return "random-reachable"
	}
	return "semantic"
}

// InteractiveConn is a connection gated behind UI interaction.
type InteractiveConn struct {
	Conn    appmodel.PlannedConn
	Trigger Trigger
}

// Script is one interaction session plan: a bounded stream of monkey
// events (taps, swipes, text garbage) like `adb shell monkey` or the
// UI Automator loops the authors experimented with.
type Script struct {
	Events int
	// Seed controls which random-reachable triggers actually get hit.
	Seed int64
}

// DefaultScript mirrors a short monkey burst per app.
func DefaultScript(seed int64) Script { return Script{Events: 250, Seed: seed} }

// Explore simulates running the script against an app's interactive plan
// and returns the additional connections the session unlocked. Semantic
// triggers never fire; random-reachable triggers fire with a probability
// that saturates with event count (every prominent element gets hit
// eventually).
func Explore(app *appmodel.App, extra []InteractiveConn, script Script) []appmodel.PlannedConn {
	rng := detrand.New(script.Seed).Child("explore/" + app.ID)
	// Probability a given prominent element is exercised at least once.
	pHit := 1.0 - 1.0/(1.0+float64(script.Events)/60.0)
	var out []appmodel.PlannedConn
	for i, ic := range extra {
		switch ic.Trigger {
		case TriggerLaunch:
			out = append(out, ic.Conn)
		case TriggerRandomReachable:
			if rng.ChildN("hit", i).Bool(pHit) {
				out = append(out, ic.Conn)
			}
		case TriggerSemantic:
			// Random input cannot sign in.
		}
	}
	return out
}

// PlanFor synthesizes an app's interactive connection plan: a handful of
// extra destinations, most gated semantically. The generator mirrors the
// study's observation — the interesting (often pinned, often credentialed)
// flows hide behind log-in walls.
func PlanFor(app *appmodel.App, rng *detrand.Source) []InteractiveConn {
	var out []InteractiveConn
	hosts := app.ContactedHosts()
	if len(hosts) == 0 {
		return nil
	}
	n := rng.Intn(4) // 0-3 extra interactive destinations
	for i := 0; i < n; i++ {
		host := hosts[rng.Intn(len(hosts))]
		// Most interactive flows hit hosts the app already talks to; a
		// minority reach a genuinely new destination (account service,
		// payment gateway) — this is what keeps the with/without-interaction
		// domain counts close but not identical.
		if rng.Bool(0.25) {
			if dot := indexByte(host, '.'); dot > 0 {
				host = "secure" + host[dot:]
			}
		}
		trig := TriggerSemantic
		if rng.Bool(0.22) {
			trig = TriggerRandomReachable
		}
		out = append(out, InteractiveConn{
			Trigger: trig,
			Conn: appmodel.PlannedConn{
				Host: host, At: 5 + rng.Float64()*20, Used: true,
				Path: "/api/v1/interactive",
				Lib:  appmodel.LibOkHttp,
			},
		})
	}
	return out
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// CompareResult summarizes the with/without-interaction experiment.
type CompareResult struct {
	Apps                  int
	AvgDomainsLaunchOnly  float64
	AvgDomainsInteractive float64
	// RelativeChange is (interactive-launch)/launch.
	RelativeChange float64
}

// CompareDomains reproduces the paper's check: does random interaction
// change the number of domains contacted? It evaluates the plans
// analytically (no network needed) over a set of apps.
func CompareDomains(apps []*appmodel.App, seed int64) CompareResult {
	rng := detrand.New(seed)
	var res CompareResult
	var sumBase, sumInter float64
	for _, a := range apps {
		res.Apps++
		base := map[string]bool{}
		for _, c := range a.Conns {
			base[c.Host] = true
		}
		sumBase += float64(len(base))

		plan := PlanFor(a, rng.Child("plan/"+a.ID))
		extra := Explore(a, plan, DefaultScript(seed))
		inter := map[string]bool{}
		for h := range base {
			inter[h] = true
		}
		for _, c := range extra {
			inter[c.Host] = true
		}
		sumInter += float64(len(inter))
	}
	if res.Apps > 0 {
		res.AvgDomainsLaunchOnly = sumBase / float64(res.Apps)
		res.AvgDomainsInteractive = sumInter / float64(res.Apps)
	}
	if res.AvgDomainsLaunchOnly > 0 {
		res.RelativeChange = (res.AvgDomainsInteractive - res.AvgDomainsLaunchOnly) /
			res.AvgDomainsLaunchOnly
	}
	return res
}
