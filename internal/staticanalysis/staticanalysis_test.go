package staticanalysis

import (
	"strings"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
	"pinscope/internal/ctlog"
	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

func mkChain(t *testing.T, seed int64, host string) pki.Chain {
	t.Helper()
	rng := detrand.New(seed)
	root, err := pki.NewRootCA(rng, "SA Root", "SA", 20)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(rng, host, pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pki.Chain{leaf.Cert, root.Cert}
}

func androidApp(pkg *apppkg.Package) *appmodel.App {
	return &appmodel.App{ID: pkg.AppID, Platform: appmodel.Android, Pkg: pkg}
}

func TestFindsPEMAssets(t *testing.T) {
	chain := mkChain(t, 1, "pin.example.com")
	pkg := apppkg.New("com.a.b")
	pkg.Add("assets/certs/server.pem", pki.EncodePEM(chain.Leaf()))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Certs) != 1 || !r.Certs[0].Cert.Equal(chain.Leaf()) {
		t.Fatalf("certs: %+v", r.Certs)
	}
	if !r.HasCertMaterial() {
		t.Fatal("HasCertMaterial false")
	}
}

func TestFindsRawDER(t *testing.T) {
	chain := mkChain(t, 2, "der.example.com")
	pkg := apppkg.New("com.a.b")
	pkg.Add("res/raw/ca.der", chain.Root().Raw)
	pkg.Add("res/raw/leaf.crt", chain.Leaf().Raw)
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Certs) != 2 {
		t.Fatalf("%d certs found", len(r.Certs))
	}
}

func TestFindsPEMInUnrelatedFile(t *testing.T) {
	chain := mkChain(t, 3, "json.example.com")
	pkg := apppkg.New("com.a.b")
	cfg := append([]byte(`{"tls_cert": "`), pki.EncodePEM(chain.Leaf())...)
	cfg = append(cfg, []byte(`"}`)...)
	pkg.Add("assets/config.json", cfg)
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Certs) != 1 {
		t.Fatalf("%d certs in config.json", len(r.Certs))
	}
}

func TestFindsPinStringsInCode(t *testing.T) {
	chain := mkChain(t, 4, "code.example.com")
	pin := pki.NewPin(chain.Leaf(), pki.SHA256)
	pkg := apppkg.New("com.a.b")
	code := `new CertificatePinner.Builder().add("code.example.com", "` + pin.String() + `").build();`
	pkg.Add("smali/com/a/b/Net.smali", []byte(code))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 1 || r.Pins[0].Pin.Key() != pin.Key() {
		t.Fatalf("pins: %+v", r.Pins)
	}
}

func TestFindsHexAndSHA1Pins(t *testing.T) {
	chain := mkChain(t, 5, "hex.example.com")
	p256 := pki.NewPin(chain.Leaf(), pki.SHA256)
	p256.Hex = true
	p1 := pki.NewPin(chain.Root(), pki.SHA1)
	pkg := apppkg.New("com.a.b")
	pkg.Add("assets/pins.txt", []byte(p256.String()+"\n"+p1.String()))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 2 {
		t.Fatalf("pins: %+v", r.Pins)
	}
}

func TestIgnoresMalformedPinStrings(t *testing.T) {
	pkg := apppkg.New("com.a.b")
	// Matches the regex shape but decodes to the wrong digest length.
	pkg.Add("assets/x.txt", []byte("sha256/aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 0 {
		t.Fatalf("malformed pin accepted: %+v", r.Pins)
	}
}

func TestFindsPinsInNativeLibStrings(t *testing.T) {
	chain := mkChain(t, 6, "native.example.com")
	pin := pki.NewPin(chain.Leaf(), pki.SHA256)
	blob := append([]byte{0x7f, 'E', 'L', 'F', 0x00, 0x01, 0x02}, []byte(pin.String())...)
	blob = append(blob, 0x00, 0xff, 0xfe)
	pkg := apppkg.New("com.a.b")
	pkg.AddExecutable("lib/arm64-v8a/libssl_helper.so", blob)
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 1 {
		t.Fatalf("pins in native lib: %+v", r.Pins)
	}
}

func TestExtractStrings(t *testing.T) {
	data := []byte("\x00\x01short\x00longer-string-here\x01\x02ok?not\xffabcdef")
	out := string(ExtractStrings(data, 6))
	if !strings.Contains(out, "longer-string-here") {
		t.Fatalf("missed long string: %q", out)
	}
	if strings.Contains(out, "short") {
		t.Fatalf("kept short run: %q", out)
	}
	if !strings.Contains(out, "abcdef") {
		t.Fatalf("missed trailing run: %q", out)
	}
}

func TestNSCDetection(t *testing.T) {
	chain := mkChain(t, 7, "nsc.example.com")
	pin := pki.NewPin(chain.Root(), pki.SHA256)
	pkg := apppkg.New("com.a.b")
	pkg.Add("AndroidManifest.xml", apppkg.BuildManifest("com.a.b", "A", "@xml/network_security_config"))
	pkg.Add("res/xml/network_security_config.xml", apppkg.BuildNSC(&apppkg.NSC{
		Domains: []apppkg.NSCDomain{{
			Domain: "nsc.example.com",
			Pins:   []apppkg.NSCPin{{Digest: "SHA-256", Value: pin.String()[len("sha256/"):]}},
		}},
	}))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if r.NSC == nil || !r.NSCHasPins {
		t.Fatalf("NSC not detected: %+v", r)
	}
	if len(r.Pins) != 1 || r.Pins[0].Pin.Key() != pin.Key() {
		t.Fatalf("NSC pin not extracted: %+v", r.Pins)
	}
}

func TestNSCWithoutPinsNotCounted(t *testing.T) {
	pkg := apppkg.New("com.a.b")
	pkg.Add("AndroidManifest.xml", apppkg.BuildManifest("com.a.b", "A", "@xml/nsc"))
	pkg.Add("res/xml/nsc.xml", apppkg.BuildNSC(&apppkg.NSC{
		Domains: []apppkg.NSCDomain{{Domain: "cleartext.example.com"}},
	}))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if r.NSC == nil {
		t.Fatal("NSC not parsed")
	}
	if r.NSCHasPins || r.HasCertMaterial() {
		t.Fatal("pinless NSC counted as pinning")
	}
}

func TestNSCMisconfigs(t *testing.T) {
	pkg := apppkg.New("com.a.b")
	pkg.Add("AndroidManifest.xml", apppkg.BuildManifest("com.a.b", "A", "@xml/nsc"))
	pkg.Add("res/xml/nsc.xml", apppkg.BuildNSC(&apppkg.NSC{
		Domains: []apppkg.NSCDomain{{
			Domain:       "example.com",
			Pins:         []apppkg.NSCPin{{Digest: "SHA-256", Value: "r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E="}},
			OverridePins: true,
		}},
	}))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Misconfigs) != 2 {
		t.Fatalf("misconfigs: %v", r.Misconfigs)
	}
}

func TestEncryptedIOSRejected(t *testing.T) {
	pkg := apppkg.New("com.ios.app")
	pkg.AddExecutable("Payload/App.app/App", []byte("sha256/AAAA..."))
	pkg.EncryptIOS()
	app := &appmodel.App{ID: pkg.AppID, Platform: appmodel.IOS, Pkg: pkg}
	if _, err := Analyze(app); err == nil {
		t.Fatal("encrypted package analyzed")
	}
	pkg.DecryptIOS()
	if _, err := Analyze(app); err != nil {
		t.Fatalf("decrypted package rejected: %v", err)
	}
}

func TestEncryptionHidesPins(t *testing.T) {
	// End-to-end: a pin visible in the decrypted binary is invisible when
	// scanning ciphertext (if someone skipped the decrypt step).
	chain := mkChain(t, 8, "enc.example.com")
	pin := pki.NewPin(chain.Leaf(), pki.SHA256)
	pkg := apppkg.New("com.ios.enc")
	pkg.AddExecutable("Payload/App.app/App", []byte("prefix "+pin.String()+" suffix"))
	app := &appmodel.App{ID: pkg.AppID, Platform: appmodel.IOS, Pkg: pkg}
	r, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 1 {
		t.Fatal("pin not found in decrypted binary")
	}
}

func TestIOSEntitlements(t *testing.T) {
	pkg := apppkg.New("com.ios.app")
	pkg.Add("Payload/App.app/embedded.mobileprovision",
		apppkg.BuildEntitlements("com.ios.app", []string{"links.example.com"}))
	app := &appmodel.App{ID: pkg.AppID, Platform: appmodel.IOS, Pkg: pkg}
	r, err := Analyze(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AssociatedDomains) != 1 || r.AssociatedDomains[0] != "links.example.com" {
		t.Fatalf("associated domains: %v", r.AssociatedDomains)
	}
}

func TestResolvePins(t *testing.T) {
	chain := mkChain(t, 9, "ct.example.com")
	log := ctlog.New()
	log.Submit(chain.Leaf()) // only the leaf is logged

	pkg := apppkg.New("com.a.b")
	leafPin := pki.NewPin(chain.Leaf(), pki.SHA256)
	unknownPin := pki.NewPin(chain.Root(), pki.SHA256) // root not logged
	pkg.Add("assets/pins.txt", []byte(leafPin.String()+"\n"+unknownPin.String()))
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	resolved, frac := ResolvePins(r, log)
	if len(resolved) != 1 || frac != 0.5 {
		t.Fatalf("resolved %d, fraction %v", len(resolved), frac)
	}
}

func TestAttributeFrameworks(t *testing.T) {
	chain := mkChain(t, 10, "sdk.example.com")
	mkReport := func(appID, path string) *Report {
		pkg := apppkg.New(appID)
		pkg.Add(path, pki.EncodePEM(chain.Leaf()))
		r, err := Analyze(&appmodel.App{ID: appID, Platform: appmodel.Android, Pkg: pkg})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	var reports []*Report
	for i := 0; i < 7; i++ {
		reports = append(reports, mkReport(
			"com.app"+string(rune('a'+i)),
			"smali/com/twitter/sdk/android/tls/cert.pem"))
	}
	reports = append(reports, mkReport("com.solo", "smali/com/mparticle/cert.pem"))
	reports = append(reports, mkReport("com.first", "smali/com/first/party/cert.pem"))

	fw := AttributeFrameworks(reports, appmodel.Android, 5)
	if len(fw) != 1 || fw[0].SDK.Name != "Twitter" || fw[0].Apps != 7 {
		t.Fatalf("frameworks: %+v", fw)
	}
	// minApps=1 includes MParticle but never the first-party path.
	fw = AttributeFrameworks(reports, appmodel.Android, 1)
	if len(fw) != 2 {
		t.Fatalf("frameworks at min 1: %+v", fw)
	}
	if fw[0].SDK.Name != "Twitter" || fw[1].SDK.Name != "MParticle" {
		t.Fatalf("ordering: %v %v", fw[0].SDK.Name, fw[1].SDK.Name)
	}
}

func TestDeduplicatesCertFindings(t *testing.T) {
	chain := mkChain(t, 11, "dup.example.com")
	pkg := apppkg.New("com.a.b")
	// Same cert twice in one file (PEM bundle duplicated).
	bundle := append(pki.EncodePEM(chain.Leaf()), pki.EncodePEM(chain.Leaf())...)
	pkg.Add("assets/bundle.pem", bundle)
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Certs) != 1 {
		t.Fatalf("%d certs after dedupe", len(r.Certs))
	}
}

func TestUniquePins(t *testing.T) {
	chain := mkChain(t, 12, "u.example.com")
	pin := pki.NewPin(chain.Leaf(), pki.SHA256)
	hexPin := pin
	hexPin.Hex = true
	pkg := apppkg.New("com.a.b")
	pkg.Add("a.txt", []byte(pin.String()))
	pkg.Add("b.txt", []byte(hexPin.String())) // same digest, hex form
	r, err := Analyze(androidApp(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pins) != 2 || len(r.UniquePins()) != 1 {
		t.Fatalf("pins %d unique %d", len(r.Pins), len(r.UniquePins()))
	}
}
