package staticanalysis

import (
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
)

// FuzzScanFile feeds arbitrary bytes through the full static scanner under
// every file role (text asset, cert-extension file, executable): the
// pipeline must never panic and never fabricate certificates from noise.
func FuzzScanFile(f *testing.F) {
	f.Add([]byte("-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----"))
	f.Add([]byte("sha256/r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E="))
	f.Add([]byte("sha1/aaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Add([]byte{0x30, 0x82, 0x01, 0x00})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkg := apppkg.New("com.fuzz.app")
		pkg.Add("assets/blob.bin", data)
		pkg.Add("res/raw/x.pem", data)
		pkg.AddExecutable("lib/libfuzz.so", data)
		app := &appmodel.App{ID: "com.fuzz.app", Platform: appmodel.Android, Pkg: pkg}
		r, err := Analyze(app)
		if err != nil {
			t.Fatalf("Analyze errored on fuzz input: %v", err)
		}
		for _, fc := range r.Certs {
			if fc.Cert == nil {
				t.Fatal("nil certificate reported")
			}
		}
		for _, fp := range r.Pins {
			if len(fp.Pin.Digest) != 20 && len(fp.Pin.Digest) != 32 {
				t.Fatalf("pin with digest length %d accepted", len(fp.Pin.Digest))
			}
		}
	})
}

// FuzzExtractStrings must never panic or return bytes outside printable
// ASCII plus separators.
func FuzzExtractStrings(f *testing.F) {
	f.Add([]byte("hello\x00world and some longer text"), 6)
	f.Add([]byte{}, 4)
	f.Fuzz(func(t *testing.T, data []byte, min int) {
		if min < 1 || min > 64 {
			min = 4
		}
		out := ExtractStrings(data, min)
		for _, b := range out {
			if b != '\n' && (b < 0x20 || b > 0x7e) {
				t.Fatalf("non-printable byte %#x in output", b)
			}
		}
	})
}
