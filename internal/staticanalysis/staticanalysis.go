// Package staticanalysis implements the study's static detection pipeline
// (§4.1): decompile/decrypt an app package, search every file for
// certificate material (cert-extension files, PEM delimiters) and SPKI pin
// hashes (the sha(1|256)/<base64-or-hex> regex), parse Android Network
// Security Configurations, extract strings from native binaries, attribute
// findings to third-party SDK code paths, and resolve pins to certificates
// through the CT log.
//
// The pipeline operates on bytes only. Obfuscated or run-time-constructed
// pin material is missed here — by design, that is the gap dynamic
// analysis closes.
package staticanalysis

import (
	"crypto/x509"
	"fmt"
	"path"
	"regexp"
	"sort"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
	"pinscope/internal/ctlog"
	"pinscope/internal/pki"
	"pinscope/internal/sdkregistry"
)

// pinRe is the exact expression from §4.1.2; the 28–64 length range covers
// base64 and hex encodings of SHA-1 and SHA-256 digests.
var pinRe = regexp.MustCompile(`sha(1|256)/[a-zA-Z0-9+/=]{28,64}`)

var certExtensions = map[string]bool{
	".der": true, ".pem": true, ".crt": true, ".cert": true, ".cer": true,
}

// FoundCert is an embedded certificate and where it was found.
type FoundCert struct {
	Path string
	Cert *x509.Certificate
}

// FoundPin is an embedded SPKI pin string and where it was found.
type FoundPin struct {
	Path string
	Raw  string
	Pin  pki.Pin
}

// Report is the static-analysis result for one app.
type Report struct {
	AppID    string
	Platform appmodel.Platform

	Certs []FoundCert
	Pins  []FoundPin

	// NSC is the parsed network security configuration (Android only).
	NSC *apppkg.NSC
	// NSCHasPins reports a declared <pin-set> (the prior-work detection
	// criterion used for Table 2/3 comparison).
	NSCHasPins bool

	// AssociatedDomains from iOS entitlements, needed by the dynamic
	// pipeline's background-traffic exclusion (§4.5).
	AssociatedDomains []string

	// Misconfigurations spotted in the NSC (Possemato-style findings).
	Misconfigs []string
}

// HasCertMaterial reports whether any certificate or pin material was
// embedded — the paper's "Embedded Certificates" static criterion.
func (r *Report) HasCertMaterial() bool {
	return len(r.Certs) > 0 || len(r.Pins) > 0
}

// UniquePins returns the distinct pins found, keyed canonically.
func (r *Report) UniquePins() []pki.Pin {
	seen := make(map[string]bool)
	var out []pki.Pin
	for _, fp := range r.Pins {
		k := fp.Pin.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, fp.Pin)
		}
	}
	return out
}

// Analyze runs the full static pipeline on an app. Android packages are
// scanned as produced by Apktool; iOS packages must be decrypted first
// (device.DecryptApp), otherwise an error is returned, mirroring the
// encrypted-IPA obstacle of Appendix A.
func Analyze(app *appmodel.App) (*Report, error) {
	if app.Pkg == nil {
		return nil, fmt.Errorf("staticanalysis: app %s has no package", app.ID)
	}
	if app.Pkg.Encrypted {
		return nil, fmt.Errorf("staticanalysis: package %s is encrypted; decrypt on a jailbroken device first", app.ID)
	}
	r := &Report{AppID: app.ID, Platform: app.Platform}
	scanFiles(app.Pkg, r)
	if app.Platform == appmodel.Android {
		analyzeNSC(app.Pkg, r)
	} else {
		analyzeEntitlements(app.Pkg, r)
	}
	return r, nil
}

// scanFiles performs the byte-level search of §4.1.2 over every file.
func scanFiles(pkg *apppkg.Package, r *Report) {
	seenCert := make(map[string]bool) // path+serial dedupe
	addCert := func(p string, c *x509.Certificate) {
		key := p + "|" + c.SerialNumber.String() + c.Subject.CommonName
		if seenCert[key] {
			return
		}
		seenCert[key] = true
		r.Certs = append(r.Certs, FoundCert{Path: p, Cert: c})
	}

	for _, f := range pkg.Files() {
		ext := strings.ToLower(path.Ext(f.Path))

		// 1. Certificate-looking files: PEM first, then raw DER.
		if certExtensions[ext] {
			if certs := pki.DecodeAllPEM(f.Data); len(certs) > 0 {
				for _, c := range certs {
					addCert(f.Path, c)
				}
			} else if c, err := x509.ParseCertificate(f.Data); err == nil {
				addCert(f.Path, c)
			}
		} else {
			// 2. PEM blocks hiding in any other file (JSON configs, code).
			// Decode from each delimiter offset so blocks not at line
			// starts are still recovered.
			data := f.Data
			for {
				i := strings.Index(string(data), "-----BEGIN CERTIFICATE-----")
				if i < 0 {
					break
				}
				certs := pki.DecodeAllPEM(data[i:])
				for _, c := range certs {
					addCert(f.Path, c)
				}
				if len(certs) > 0 {
					break // DecodeAllPEM consumed the rest of the file
				}
				data = data[i+1:]
			}
		}

		// 3. Pin hash strings — in text directly, in binaries via a
		// strings(1)-style pass (the paper used radare2 for native code).
		hay := f.Data
		if f.Executable {
			hay = ExtractStrings(f.Data, 6)
		}
		for _, m := range pinRe.FindAllString(string(hay), -1) {
			pin, err := pki.ParsePin(m)
			if err != nil {
				continue // regex matched but digest length is wrong
			}
			r.Pins = append(r.Pins, FoundPin{Path: f.Path, Raw: m, Pin: pin})
		}
	}
}

// ExtractStrings returns the printable-ASCII runs of length >= min in a
// binary, newline-joined — the strings(1)/radare2 step.
func ExtractStrings(data []byte, min int) []byte {
	var out []byte
	start := -1
	flush := func(end int) {
		if start >= 0 && end-start >= min {
			out = append(out, data[start:end]...)
			out = append(out, '\n')
		}
		start = -1
	}
	for i, b := range data {
		if b >= 0x20 && b <= 0x7e {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(data))
	return out
}

// analyzeNSC locates and parses the Android Network Security Configuration
// (§4.1.1) and flags known misconfigurations.
func analyzeNSC(pkg *apppkg.Package, r *Report) {
	mf := pkg.Get("AndroidManifest.xml")
	if mf == nil {
		return
	}
	_, nscRef, err := apppkg.ParseManifest(mf.Data)
	if err != nil || nscRef == "" {
		return
	}
	resPath := "res/xml/" + strings.TrimPrefix(nscRef, "@xml/") + ".xml"
	nf := pkg.Get(resPath)
	if nf == nil {
		return
	}
	nsc, err := apppkg.ParseNSC(nf.Data)
	if err != nil {
		return
	}
	r.NSC = nsc
	r.NSCHasPins = nsc.HasPins()
	for _, d := range nsc.Domains {
		if len(d.Pins) > 0 && d.OverridePins {
			r.Misconfigs = append(r.Misconfigs,
				fmt.Sprintf("pin-set for %s is bypassed by overridePins=true", d.Domain))
		}
		if d.Domain == "example.com" && len(d.Pins) > 0 {
			r.Misconfigs = append(r.Misconfigs, "pin-set declared for placeholder domain example.com")
		}
	}
	// NSC pins also count as pin material.
	for _, d := range nsc.Domains {
		for _, p := range d.Pins {
			alg := "sha256/"
			if strings.EqualFold(p.Digest, "SHA-1") {
				alg = "sha1/"
			}
			if pin, err := pki.ParsePin(alg + p.Value); err == nil {
				r.Pins = append(r.Pins, FoundPin{Path: resPath, Raw: alg + p.Value, Pin: pin})
			}
		}
	}
}

// analyzeEntitlements extracts iOS associated domains.
func analyzeEntitlements(pkg *apppkg.Package, r *Report) {
	for _, f := range pkg.Files() {
		if !strings.HasSuffix(f.Path, "embedded.mobileprovision") &&
			!strings.HasSuffix(f.Path, "Entitlements.plist") {
			continue
		}
		if ds, err := apppkg.ParseEntitlementsDomains(f.Data); err == nil {
			r.AssociatedDomains = append(r.AssociatedDomains, ds...)
		}
	}
}

// ResolvePins looks up each unique pin in the CT log (§4.1.3) and returns
// the associated certificates plus the fraction of pins that resolved.
func ResolvePins(r *Report, log *ctlog.Log) (resolved map[string][]*x509.Certificate, fraction float64) {
	pins := r.UniquePins()
	resolved = make(map[string][]*x509.Certificate)
	if len(pins) == 0 {
		return resolved, 0
	}
	hit := 0
	for _, p := range pins {
		if certs := log.Lookup(p); len(certs) > 0 {
			resolved[p.Key()] = certs
			hit++
		}
	}
	return resolved, float64(hit) / float64(len(pins))
}

// AttributedFramework is one third-party SDK found to carry certificate
// material, with the number of apps it appeared in (Table 7).
type AttributedFramework struct {
	SDK  sdkregistry.SDK
	Apps int
}

// AttributeFrameworks aggregates cert-material paths across reports and
// attributes them to SDK code paths, counting distinct apps per framework
// (§4.1.4 — the manual review of paths appearing in >minApps apps).
func AttributeFrameworks(reports []*Report, platform appmodel.Platform, minApps int) []AttributedFramework {
	perSDK := make(map[string]map[string]bool) // sdk name -> app set
	for _, r := range reports {
		if r.Platform != platform {
			continue
		}
		paths := make(map[string]bool)
		for _, c := range r.Certs {
			paths[c.Path] = true
		}
		for _, p := range r.Pins {
			paths[p.Path] = true
		}
		for p := range paths {
			if sdk, ok := sdkregistry.AttributePath(platform, p); ok {
				if perSDK[sdk.Name] == nil {
					perSDK[sdk.Name] = make(map[string]bool)
				}
				perSDK[sdk.Name][r.AppID] = true
			}
		}
	}
	var out []AttributedFramework
	for name, apps := range perSDK {
		if len(apps) < minApps {
			continue
		}
		sdk, _ := sdkregistry.ByName(platform, name)
		out = append(out, AttributedFramework{SDK: sdk, Apps: len(apps)})
	}
	// Sort by app count desc, name asc for determinism.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Apps != out[j].Apps {
			return out[i].Apps > out[j].Apps
		}
		return out[i].SDK.Name < out[j].SDK.Name
	})
	return out
}
