package whois

import "testing"

func TestLookupExact(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "api.acme.com", Org: "Acme Inc"})
	org, ok := r.Lookup("api.acme.com")
	if !ok || org != "Acme Inc" {
		t.Fatalf("got %q %v", org, ok)
	}
}

func TestLookupWalksToRegistrableParent(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "acme.com", Org: "Acme Inc"})
	org, ok := r.Lookup("deep.api.acme.com")
	if !ok || org != "Acme Inc" {
		t.Fatalf("parent walk failed: %q %v", org, ok)
	}
}

func TestLookupDoesNotCrossTLD(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "com", Org: "Registry Operator"})
	if _, ok := r.Lookup("unknown.example.com"); ok {
		t.Fatal("lookup walked into the TLD")
	}
}

func TestLookupUnknown(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("nobody.example.org"); ok {
		t.Fatal("unknown domain resolved")
	}
}

func TestPrivacyProtected(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "hidden.com", Org: "Secret Corp", Private: true})
	if _, ok := r.Lookup("hidden.com"); ok {
		t.Fatal("private registration leaked org")
	}
}

func TestCaseInsensitive(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "Acme.COM", Org: "Acme Inc"})
	if _, ok := r.Lookup("ACME.com"); !ok {
		t.Fatal("case-sensitive lookup")
	}
}

func TestLen(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "a.com", Org: "A"})
	r.Register(Record{Domain: "a.com", Org: "A2"}) // replace
	r.Register(Record{Domain: "b.com", Org: "B"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if org, _ := r.Lookup("a.com"); org != "A2" {
		t.Fatal("replacement failed")
	}
}
