// Package whois is the study's domain-ownership oracle. The paper
// attributes each contacted domain to a first or third party "using various
// points of information (whois data, certificate subject names, etc.)"
// (§5.2, Figure 5). Our substitute is a registry populated by the world
// generator from the same registration data a real registrar would hold:
// the organization that registered each domain.
//
// Attribution itself (matching a domain's registrant against an app's
// developer) lives in the analysis pipeline; this package only answers
// lookups, including the realistic failure mode of missing records.
package whois

import (
	"strings"
	"sync"
)

// Record is the registration data for one domain.
type Record struct {
	Domain string
	// Org is the registrant organization.
	Org string
	// Private marks WHOIS-privacy-protected registrations, for which Org
	// is withheld from lookups.
	Private bool
}

// Registry maps domains to registration records. Safe for concurrent reads
// after population.
type Registry struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{records: make(map[string]Record)}
}

// Register adds or replaces the record for a domain.
func (r *Registry) Register(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records[strings.ToLower(rec.Domain)] = rec
}

// Lookup returns the registrant organization for the domain or its
// registrable parent. Privacy-protected and unknown domains return ok=false
// — the analyst then falls back to other signals.
func (r *Registry) Lookup(domain string) (org string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d := strings.ToLower(domain)
	for {
		if rec, found := r.records[d]; found {
			if rec.Private {
				return "", false
			}
			return rec.Org, true
		}
		i := strings.Index(d, ".")
		if i < 0 || !strings.Contains(d[i+1:], ".") {
			return "", false
		}
		d = d[i+1:]
	}
}

// Len returns the number of registered domains.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}
