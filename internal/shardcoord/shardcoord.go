// Package shardcoord coordinates a sharded study run: an app universe cut
// into contiguous slices, handed to N in-process workers under
// time-bounded leases. Every slice is crash-only — each has its own
// append-only journal (internal/journal), so when the worker holding a
// lease dies mid-slice, the lease expires and a survivor resumes the
// slice *from its journal* instead of recomputing it.
//
// The protocol leans on one property the rest of the repo already
// guarantees: a result frame is a pure function of (run config, item
// index), never of which worker computed it or when. That makes every
// coordination decision content-free — leases, expiries, takeovers and
// even split-brain double-holders can reorder or repeat *work*, but the
// bytes that reach each journal are always the same. Determinism of the
// merged dataset therefore survives arbitrarily messy scheduling.
//
// Safety under expiry is enforced by epoch fencing: each lease grant
// increments the slice's epoch, and an append is admitted only if the
// appender still holds the current epoch — a stalled worker waking after
// its lease was reassigned is turned away (counted, not crashed). A
// per-slice mutex makes the fence-check-plus-append and the
// takeover-recovery (streaming read + truncate + reopen) mutually atomic.
//
// There is no wall clock anywhere (the package is in pinlint's
// StrictDeterminism set: no time.Now, no ambient entropy). Time is a
// logical clock that ticks once per journal append; lease deadlines and
// induced stalls are measured in those ticks. When every live worker is
// blocked — all waiting for a lease to expire or a stall to elapse — the
// coordinator warps the clock forward to the earliest deadline, the
// discrete-event-simulation step that makes expiry both deterministic in
// effect and free of busy-waiting.
package shardcoord

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
)

// Slice is one contiguous partition of the universe.
type Slice struct {
	// Path is the slice's journal file.
	Path string
	// Meta is the journal meta payload; on takeover (or when resuming a
	// previous run's journal) the on-disk meta must match byte-for-byte,
	// proving the journal belongs to this exact run and slice.
	Meta []byte
	// Items is the number of results the slice must produce.
	Items int
}

// Bench computes one result frame. Implementations are typically one
// study lab with its own crypto plane per worker; RunItem must be a pure
// function of (slice, item) so that recomputation after a crash and
// double-computation during a split-brain yield identical bytes.
type Bench interface {
	RunItem(slice, item int) ([]byte, error)
}

// Config parameterizes a sharded run.
type Config struct {
	Slices []Slice
	// Workers is the worker count; 0 means one per slice (capped at the
	// slice count either way).
	Workers int
	// LeaseTTL is the lease duration in logical ticks; 0 picks a default
	// generous enough that only death or an induced stall expires a lease
	// under fair scheduling.
	LeaseTTL int64
	// NewBench builds worker w's bench. Called once per worker, before it
	// acquires its first lease.
	NewBench func(worker int) (Bench, error)
	// Faults is the deterministic shard-death plan (nil injects nothing).
	Faults *faultinject.ShardPlan
}

// Stats summarizes a run. Scheduling-dependent counters (how often a
// lease expired, how much work a takeover replayed) vary run to run;
// tests assert inequalities on them, never exact values — the byte
// content of the journals is where exactness lives.
type Stats struct {
	Workers       int
	Slices        int
	WorkersKilled int   // workers lost to injected shard kills
	Expired       int   // leases expired (holder dead or stalled past TTL)
	Reassigned    int   // leases granted for a slice that had a prior holder
	ResumedFrames int   // frames takeovers recovered from journals instead of recomputing
	Fenced        int   // appends and completions refused by the epoch fence
	Ticks         int64 // final logical-clock reading
}

// errFenced tells a worker its lease is gone: abandon the slice and
// acquire a new one. Internal — it never escapes Run.
var errFenced = errors.New("shardcoord: lease fenced")

type sliceState struct {
	idx  int
	conf Slice

	// jmu serializes journal access: the fence-check-plus-append of the
	// holder and the read-truncate-reopen of a takeover are each atomic
	// under it. Lock order is jmu before the coordinator mutex, never the
	// reverse.
	jmu sync.Mutex
	w   *journal.Writer

	// Fields below are guarded by the coordinator mutex.
	next       int // result frames durably in the journal
	done       bool
	leased     bool
	holder     int
	epoch      int64
	deadline   int64
	everLeased bool
	killFired  bool
	stalled    bool // expiry fault already consumed
}

// lease is a worker's claim on a slice at a specific epoch.
type lease struct {
	s     *sliceState
	epoch int64
	start int // first item to compute (earlier ones recovered from the journal)
}

type coordinator struct {
	cfg Config
	ttl int64

	mu           sync.Mutex
	cond         *sync.Cond
	now          int64
	live         int
	blockedIdle  int
	blockedStall int
	stallWakes   map[int]int64
	slices       []*sliceState
	doneCount    int
	stats        Stats
	fatal        []error
	aborted      bool
}

// Run executes the sharded run to completion: every slice's journal ends
// with exactly Items verified frames. It fails if the run cannot finish
// (all workers dead with work remaining, a journal that belongs to a
// different run, unrecoverable I/O) — the journals written so far survive
// any failure and a rerun resumes from them.
func Run(cfg Config) (*Stats, error) {
	if len(cfg.Slices) == 0 {
		return nil, errors.New("shardcoord: no slices")
	}
	seen := map[string]bool{}
	for _, s := range cfg.Slices {
		if s.Path == "" || seen[s.Path] {
			return nil, fmt.Errorf("shardcoord: missing or duplicate slice path %q", s.Path)
		}
		seen[s.Path] = true
	}
	if cfg.NewBench == nil {
		return nil, errors.New("shardcoord: no bench constructor")
	}
	workers := cfg.Workers
	if workers <= 0 || workers > len(cfg.Slices) {
		workers = len(cfg.Slices)
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		maxItems := 0
		for _, s := range cfg.Slices {
			if s.Items > maxItems {
				maxItems = s.Items
			}
		}
		ttl = int64(4*maxItems + 16)
	}
	c := &coordinator{
		cfg:        cfg,
		ttl:        ttl,
		live:       workers,
		stallWakes: map[int]int64{},
	}
	c.cond = sync.NewCond(&c.mu)
	for i, s := range cfg.Slices {
		c.slices = append(c.slices, &sliceState{idx: i, conf: s})
	}
	c.stats.Workers = workers
	c.stats.Slices = len(cfg.Slices)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c.worker(id)
		}(w)
	}
	wg.Wait()

	// Close any writer a failure path left open (normal completion closes
	// per slice; killed writers closed themselves). A failed close means
	// the journal tail may not be durable — surface it, or a rerun would
	// trust a journal that silently lost its last frames.
	for _, s := range c.slices {
		s.jmu.Lock()
		if s.w != nil {
			if err := s.w.Close(); err != nil {
				c.fatal = append(c.fatal, fmt.Errorf("shardcoord: slice %d journal close: %w", s.idx, err))
			}
			s.w = nil
		}
		s.jmu.Unlock()
	}
	c.stats.Ticks = c.now
	if len(c.fatal) > 0 {
		return &c.stats, errors.Join(c.fatal...)
	}
	if c.doneCount < len(c.slices) {
		return &c.stats, fmt.Errorf("shardcoord: %d of %d slices incomplete: all workers dead (rerun to resume from the journals)",
			len(c.slices)-c.doneCount, len(c.slices))
	}
	return &c.stats, nil
}

func (c *coordinator) worker(id int) {
	defer func() {
		c.mu.Lock()
		c.live--
		c.mu.Unlock()
		c.cond.Broadcast()
	}()
	bench, err := c.cfg.NewBench(id)
	if err != nil {
		c.fail(fmt.Errorf("shardcoord: worker %d bench: %w", id, err))
		return
	}
	for {
		l, done := c.acquire(id)
		if done {
			return
		}
		abandoned := false
		for item := l.start; item < l.s.conf.Items; item++ {
			frame, err := bench.RunItem(l.s.idx, item)
			if err != nil {
				c.fail(fmt.Errorf("shardcoord: slice %d item %d: %w", l.s.idx, item, err))
				return
			}
			err = c.append(id, l, frame)
			switch {
			case errors.Is(err, errFenced):
				abandoned = true
			case errors.Is(err, journal.ErrKilled):
				return // this worker is dead; the lease will expire
			case err != nil:
				c.fail(err)
				return
			}
			if abandoned {
				break
			}
			c.maybeStall(id, l)
		}
		if !abandoned {
			c.complete(id, l)
		}
	}
}

// acquire blocks until the worker holds a lease, all work is done, or the
// run aborted. Preference order: never-leased or released slices first
// (in index order), then expired leases.
func (c *coordinator) acquire(worker int) (*lease, bool) {
	c.mu.Lock()
	for {
		if c.aborted || c.doneCount == len(c.slices) {
			c.mu.Unlock()
			return nil, true
		}
		var pick *sliceState
		reassigned := false
		for _, s := range c.slices {
			if !s.done && !s.leased {
				pick = s
				reassigned = s.everLeased
				break
			}
		}
		if pick == nil {
			for _, s := range c.slices {
				if s.leased && !s.done && c.now >= s.deadline {
					c.stats.Expired++
					pick = s
					reassigned = true
					break
				}
			}
		}
		if pick != nil {
			pick.leased = true
			pick.holder = worker
			pick.epoch++
			pick.deadline = c.now + c.ttl
			pick.everLeased = true
			if reassigned {
				c.stats.Reassigned++
			}
			epoch := pick.epoch
			c.mu.Unlock()

			start, err := c.openJournal(pick, epoch)
			if err != nil {
				c.fail(err)
				return nil, true
			}
			c.mu.Lock()
			c.stats.ResumedFrames += start
			c.mu.Unlock()
			return &lease{s: pick, epoch: epoch, start: start}, false
		}
		// Nothing to hand out: wait for an append, a death, or — if every
		// live worker is blocked like us — warp the clock to the earliest
		// lease deadline or stall wake so expiry needs no wall time.
		c.blockedIdle++
		if !c.quiescentLocked() || !c.warpLocked() {
			c.cond.Wait()
		}
		c.blockedIdle--
	}
}

// quiescentLocked reports that every live worker (including the caller,
// already counted by its blocked counter) is blocked waiting on the clock.
func (c *coordinator) quiescentLocked() bool {
	return c.blockedIdle+c.blockedStall >= c.live
}

// warpLocked advances the logical clock to the earliest pending deadline
// or stall wake strictly ahead of now. Returns false when there is
// nothing to warp to — then some worker is mid-transition and waiting is
// the right move.
func (c *coordinator) warpLocked() bool {
	target := int64(-1)
	for _, s := range c.slices {
		if s.leased && !s.done && s.deadline > c.now {
			if target < 0 || s.deadline < target {
				target = s.deadline
			}
		}
	}
	for _, wake := range c.stallWakes {
		if wake > c.now && (target < 0 || wake < target) {
			target = wake
		}
	}
	if target <= c.now {
		return false
	}
	c.now = target
	c.cond.Broadcast()
	return true
}

// openJournal creates or resumes the slice's journal under the new lease.
// A fresh slice gets Create; a slice with a prior holder (or a journal
// left by a previous, interrupted run) is resumed by streaming its
// verified frames — Reader + ResumeWriter, never a whole-WAL slurp — and
// continuing after them. Returns the first item index left to compute.
func (c *coordinator) openJournal(s *sliceState, epoch int64) (int, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.w != nil {
		// Prior holder's writer (already dead if killed; stalled holders
		// are fenced before they can touch it again). The resume below
		// re-verifies every frame on disk, so an undurable tail is simply
		// recomputed — but a failed close still gets surfaced: fsync and
		// close errors taint the filesystem state every later append
		// depends on, the same rule the completion path enforces.
		err := s.w.Close()
		s.w = nil
		if err != nil {
			return 0, fmt.Errorf("shardcoord: slice %d prior-writer close on takeover: %w", s.idx, err)
		}
	}
	var w *journal.Writer
	frames := 0
	if _, err := os.Stat(s.conf.Path); err == nil {
		r, err := journal.OpenReader(s.conf.Path)
		if err != nil {
			return 0, fmt.Errorf("shardcoord: resume slice %d: %w", s.idx, err)
		}
		if string(r.Meta()) != string(s.conf.Meta) {
			r.Close()
			return 0, fmt.Errorf("shardcoord: slice %d journal %s belongs to a different run (meta mismatch)",
				s.idx, s.conf.Path)
		}
		for {
			if _, err := r.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				r.Close()
				return 0, fmt.Errorf("shardcoord: resume slice %d: %w", s.idx, err)
			}
		}
		frames = r.Frames()
		size := r.ValidSize()
		r.Close()
		if frames > s.conf.Items {
			return 0, fmt.Errorf("shardcoord: slice %d journal has %d frames for %d items",
				s.idx, frames, s.conf.Items)
		}
		w, err = journal.ResumeWriter(s.conf.Path, frames, size)
		if err != nil {
			return 0, fmt.Errorf("shardcoord: resume slice %d: %w", s.idx, err)
		}
	} else {
		var cerr error
		w, cerr = journal.Create(s.conf.Path, s.conf.Meta)
		if cerr != nil {
			return 0, fmt.Errorf("shardcoord: slice %d: %w", s.idx, cerr)
		}
	}
	c.mu.Lock()
	if k := c.cfg.Faults.KillFor(s.idx); k != nil && !s.killFired {
		w.SetCrashTap(k.Tap())
	}
	s.w = w
	s.next = frames
	c.mu.Unlock()
	return frames, nil
}

// append admits one frame through the epoch fence and ticks the clock.
// The fence and the append are atomic under the slice mutex: a takeover
// cannot slip between them, so a fenced worker never writes and an
// admitted write is always observed by the next takeover's journal read.
func (c *coordinator) append(worker int, l *lease, frame []byte) error {
	s := l.s
	s.jmu.Lock()
	defer s.jmu.Unlock()
	c.mu.Lock()
	if s.done || !s.leased || s.holder != worker || s.epoch != l.epoch {
		c.stats.Fenced++
		c.mu.Unlock()
		return errFenced
	}
	w := s.w
	c.mu.Unlock()

	if err := w.Append(frame); err != nil {
		if errors.Is(err, journal.ErrKilled) {
			c.mu.Lock()
			s.killFired = true
			c.stats.WorkersKilled++
			c.mu.Unlock()
			c.cond.Broadcast()
			return err
		}
		return fmt.Errorf("shardcoord: slice %d append: %w", s.idx, err)
	}
	c.mu.Lock()
	c.now++
	s.next++
	s.deadline = c.now + c.ttl // the append is the heartbeat
	c.mu.Unlock()
	c.cond.Broadcast()
	return nil
}

// maybeStall consumes the slice's induced lease-expiry fault: after the
// configured append, the holder goes silent past its TTL. The stall only
// fires inside the leased region — while the slice still has work and the
// caller still holds a live lease. Without the s.next bound, a fault
// configured at AfterResults == Items would fire between the last append
// and the lease release in complete(): the holder would stall with the
// journal complete but still open, a survivor would "take over" finished
// work, and the prior writer's close would happen on the takeover path
// instead of the completion path.
func (c *coordinator) maybeStall(worker int, l *lease) {
	s := l.s
	c.mu.Lock()
	e := c.cfg.Faults.ExpiryFor(s.idx)
	if e == nil || s.stalled || s.done || !s.leased || s.next >= s.conf.Items ||
		s.next != e.AfterResults || s.holder != worker || s.epoch != l.epoch {
		c.mu.Unlock()
		return
	}
	s.stalled = true
	ticks := e.StallTicks
	if ticks <= 0 {
		ticks = c.ttl + 1
	}
	wake := c.now + ticks
	c.stallWakes[worker] = wake
	c.blockedStall++
	for c.now < wake && !c.aborted {
		if !c.quiescentLocked() || !c.warpLocked() {
			c.cond.Wait()
		}
	}
	c.blockedStall--
	delete(c.stallWakes, worker)
	c.mu.Unlock()
}

// complete marks the slice finished and closes its journal, through the
// same fence as appends: a stalled ex-holder cannot complete a slice that
// was taken over and finished by someone else.
func (c *coordinator) complete(worker int, l *lease) {
	s := l.s
	s.jmu.Lock()
	c.mu.Lock()
	if s.done || !s.leased || s.holder != worker || s.epoch != l.epoch {
		c.stats.Fenced++
		c.mu.Unlock()
		s.jmu.Unlock()
		return
	}
	s.done = true
	s.leased = false
	c.doneCount++
	w := s.w
	s.w = nil
	c.mu.Unlock()
	var err error
	if w != nil {
		err = w.Close()
	}
	s.jmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("shardcoord: slice %d close: %w", s.idx, err))
		return
	}
	c.cond.Broadcast()
}

// fail records a fatal error and aborts the run: workers drain on their
// next acquire, stalled workers wake immediately.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	c.fatal = append(c.fatal, err)
	c.aborted = true
	c.mu.Unlock()
	c.cond.Broadcast()
}
