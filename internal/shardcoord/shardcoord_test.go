package shardcoord_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
	"pinscope/internal/shardcoord"
)

// synthBench computes deterministic frames: the coordinator must produce
// identical journal bytes no matter which worker runs which item, how
// often leases bounce, or how much work a takeover recomputes.
type synthBench struct{ worker int }

func (b synthBench) RunItem(slice, item int) ([]byte, error) {
	// Deliberately independent of b.worker: purity of (slice, item).
	return []byte(fmt.Sprintf("slice=%d item=%d payload=%032d", slice, item, slice*1000+item)), nil
}

func synthConfig(dir string, slices, items, workers int) shardcoord.Config {
	cfg := shardcoord.Config{
		Workers:  workers,
		NewBench: func(worker int) (shardcoord.Bench, error) { return synthBench{worker: worker}, nil },
	}
	for i := 0; i < slices; i++ {
		cfg.Slices = append(cfg.Slices, shardcoord.Slice{
			Path:  filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i)),
			Meta:  []byte(fmt.Sprintf(`{"run":"synth","slice":%d}`, i)),
			Items: items,
		})
	}
	return cfg
}

// journalFiles reads every slice journal's raw bytes, keyed by base name.
func journalFiles(t *testing.T, cfg shardcoord.Config) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, s := range cfg.Slices {
		data, err := os.ReadFile(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(s.Path)] = data
	}
	return out
}

// verifyComplete recovers every slice journal and checks it holds exactly
// the expected frames.
func verifyComplete(t *testing.T, cfg shardcoord.Config) {
	t.Helper()
	for i, s := range cfg.Slices {
		rec, err := journal.Recover(s.Path)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		if rec.Truncated {
			t.Fatalf("slice %d: completed journal reports a torn tail", i)
		}
		if len(rec.Results) != s.Items {
			t.Fatalf("slice %d: %d frames, want %d", i, len(rec.Results), s.Items)
		}
		for item, got := range rec.Results {
			want, _ := synthBench{}.RunItem(i, item)
			if !bytes.Equal(got, want) {
				t.Fatalf("slice %d item %d: frame %q, want %q", i, item, got, want)
			}
		}
	}
}

func TestCleanRunCompletesAllSlices(t *testing.T) {
	cfg := synthConfig(t.TempDir(), 6, 9, 3)
	stats, err := shardcoord.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, cfg)
	if stats.Workers != 3 || stats.Slices != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.WorkersKilled != 0 || stats.Reassigned != 0 {
		t.Fatalf("clean run reported faults: %+v", stats)
	}
	if stats.Ticks != 6*9 {
		t.Fatalf("Ticks = %d, want one per append = %d", stats.Ticks, 6*9)
	}
}

// TestShardKillsReassignAndStayByteIdentical is the tentpole property:
// kill workers at two distinct slice boundaries, let leases expire and
// survivors resume from the dead shards' journals, and require the final
// journal files to be byte-identical to a fault-free run's.
func TestShardKillsReassignAndStayByteIdentical(t *testing.T) {
	clean := synthConfig(t.TempDir(), 6, 9, 4)
	if _, err := shardcoord.Run(clean); err != nil {
		t.Fatal(err)
	}
	want := journalFiles(t, clean)

	faulted := synthConfig(t.TempDir(), 6, 9, 4)
	faulted.Faults = &faultinject.ShardPlan{Kills: []faultinject.ShardKill{
		{Slice: 1, AfterResults: 3, TornBytes: 11},
		{Slice: 4, AfterResults: 7, TornBytes: 2},
	}}
	stats, err := shardcoord.Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, faulted)
	if stats.WorkersKilled != 2 {
		t.Fatalf("WorkersKilled = %d, want 2", stats.WorkersKilled)
	}
	if stats.Expired < 2 || stats.Reassigned < 2 {
		t.Fatalf("expected both dead leases to expire and reassign: %+v", stats)
	}
	if stats.ResumedFrames < 3+7 {
		t.Fatalf("takeovers resumed %d frames, want at least 10", stats.ResumedFrames)
	}
	got := journalFiles(t, faulted)
	for name, wantData := range want {
		if !bytes.Equal(got[name], wantData) {
			t.Fatalf("journal %s differs between faulted and clean runs", name)
		}
	}
}

// TestLeaseExpiryFencesStalledHolder stalls a live holder past its TTL:
// the slice must be reassigned while the holder still lives, and the
// holder's late append must be refused by the epoch fence — with the
// journal bytes unharmed.
func TestLeaseExpiryFencesStalledHolder(t *testing.T) {
	clean := synthConfig(t.TempDir(), 4, 8, 4)
	if _, err := shardcoord.Run(clean); err != nil {
		t.Fatal(err)
	}
	want := journalFiles(t, clean)

	faulted := synthConfig(t.TempDir(), 4, 8, 4)
	faulted.Faults = &faultinject.ShardPlan{Expiries: []faultinject.LeaseExpiry{
		{Slice: 2, AfterResults: 3},
	}}
	stats, err := shardcoord.Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, faulted)
	if stats.Expired < 1 || stats.Reassigned < 1 {
		t.Fatalf("stall did not expire the lease: %+v", stats)
	}
	if stats.Fenced < 1 {
		t.Fatalf("stalled holder was never fenced: %+v", stats)
	}
	if stats.WorkersKilled != 0 {
		t.Fatalf("expiry drill killed someone: %+v", stats)
	}
	got := journalFiles(t, faulted)
	for name, wantData := range want {
		if !bytes.Equal(got[name], wantData) {
			t.Fatalf("journal %s differs between stalled and clean runs", name)
		}
	}
}

// TestAllWorkersDeadThenRerunResumes kills the only worker, expects a
// loud failure, then reruns without the fault: the second run must resume
// from the surviving journal rather than recompute or clobber it.
func TestAllWorkersDeadThenRerunResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := synthConfig(dir, 2, 9, 1)
	cfg.Faults = &faultinject.ShardPlan{Kills: []faultinject.ShardKill{
		{Slice: 0, AfterResults: 4, TornBytes: 13},
	}}
	stats, err := shardcoord.Run(cfg)
	if err == nil {
		t.Fatal("run with every worker dead reported success")
	}
	if stats.WorkersKilled != 1 {
		t.Fatalf("WorkersKilled = %d, want 1", stats.WorkersKilled)
	}

	rerun := synthConfig(dir, 2, 9, 1)
	stats2, err := shardcoord.Run(rerun)
	if err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
	verifyComplete(t, rerun)
	if stats2.ResumedFrames < 4 {
		t.Fatalf("rerun resumed %d frames, want at least the 4 that survived the kill", stats2.ResumedFrames)
	}
}

// TestForeignJournalRejected points a slice at a journal from a different
// run: the meta fence must fail the run loudly instead of appending to
// (or truncating) someone else's data.
func TestForeignJournalRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := synthConfig(dir, 2, 3, 1)
	w, err := journal.Create(cfg.Slices[0].Path, []byte(`{"run":"someone else"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("their data")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(cfg.Slices[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shardcoord.Run(cfg); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("Run = %v, want meta-mismatch failure", err)
	}
	after, err := os.ReadFile(cfg.Slices[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("foreign journal was modified")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := shardcoord.Run(shardcoord.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	dup := synthConfig(t.TempDir(), 2, 1, 1)
	dup.Slices[1].Path = dup.Slices[0].Path
	if _, err := shardcoord.Run(dup); err == nil {
		t.Fatal("duplicate slice paths accepted")
	}
	nobench := synthConfig(t.TempDir(), 1, 1, 1)
	nobench.NewBench = nil
	if _, err := shardcoord.Run(nobench); err == nil {
		t.Fatal("nil bench constructor accepted")
	}
}

// TestManySlicesFewWorkersUnderChurn runs a larger matrix with kills and
// stalls together — primarily a race-detector workout (check.sh runs this
// package with -race) plus the byte-identity assertion once more.
func TestManySlicesFewWorkersUnderChurn(t *testing.T) {
	clean := synthConfig(t.TempDir(), 12, 7, 4)
	if _, err := shardcoord.Run(clean); err != nil {
		t.Fatal(err)
	}
	want := journalFiles(t, clean)

	faulted := synthConfig(t.TempDir(), 12, 7, 4)
	faulted.Faults = &faultinject.ShardPlan{
		Kills: []faultinject.ShardKill{
			{Slice: 0, AfterResults: 0, TornBytes: 0},
			{Slice: 5, AfterResults: 6, TornBytes: 21},
			{Slice: 9, AfterResults: 3, TornBytes: 1},
		},
		Expiries: []faultinject.LeaseExpiry{
			{Slice: 2, AfterResults: 1},
			{Slice: 7, AfterResults: 7},
		},
	}
	stats, err := shardcoord.Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, faulted)
	if stats.WorkersKilled != 3 {
		t.Fatalf("WorkersKilled = %d, want 3", stats.WorkersKilled)
	}
	got := journalFiles(t, faulted)
	for name, wantData := range want {
		if !bytes.Equal(got[name], wantData) {
			t.Fatalf("journal %s differs under churn", name)
		}
	}
}

// TestStallAtCompletionBoundaryDoesNotFire pins the maybeStall bound: an
// expiry configured at AfterResults == Items used to fire between the
// final append and the lease release in complete(), stalling a holder
// whose journal was already done — a survivor would "take over" finished
// work and the journal close would happen on the takeover path. The
// coordinator now refuses to honor a stall outside the leased region.
func TestStallAtCompletionBoundaryDoesNotFire(t *testing.T) {
	cfg := synthConfig(t.TempDir(), 3, 5, 2)
	cfg.Faults = &faultinject.ShardPlan{
		Expiries: []faultinject.LeaseExpiry{{Slice: 1, AfterResults: 5}},
	}
	stats, err := shardcoord.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, cfg)
	if stats.Expired != 0 || stats.Reassigned != 0 {
		t.Fatalf("completion-boundary stall fired: %+v", stats)
	}
}
