package device

import (
	"strings"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
	"pinscope/internal/detrand"
	"pinscope/internal/frida"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/netem"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// testWorld wires a minimal network: two app hosts plus the Apple
// background and associated domains.
type testWorld struct {
	net      *netem.Network
	eco      *pki.Ecosystem
	chains   map[string]pki.Chain
	proxy    *mitmproxy.Proxy
	deviceRS *pki.RootStore
}

var testHosts = []string{
	"api.myapp.example.com", "tracker.example.net",
	"icloud.com", "apple.com", "mzstatic.com", "assoc.myapp.example.com",
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	eco, err := pki.BuildEcosystem(detrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	n := netem.New()
	chains := map[string]pki.Chain{}
	rng := detrand.New(2)
	for _, h := range testHosts {
		chain, _, err := eco.IssuePublicChain(rng.Child(h), h, pki.LeafOptions{})
		if err != nil {
			t.Fatal(err)
		}
		chains[h] = chain
		host := h
		n.Listen(host, func(tr tlswire.Transport) {
			tlswire.Serve(tr, &tlswire.ServerConfig{Chain: chains[host]})
		})
	}
	proxy, err := mitmproxy.NewWithCA(detrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{net: n, eco: eco, chains: chains, proxy: proxy, deviceRS: eco.IOS}
}

func testApp(w *testWorld, platform appmodel.Platform) *appmodel.App {
	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(w.chains["api.myapp.example.com"][1], pki.SHA256)}}
	return &appmodel.App{
		ID:       "com.example.myapp",
		Name:     "My App",
		Platform: platform,
		Conns: []appmodel.PlannedConn{
			{Host: "api.myapp.example.com", At: 1, Used: true, Pins: pins,
				Lib: appmodel.LibNSURLSession, Path: "/login", FirstParty: true},
			{Host: "tracker.example.net", At: 2, Used: true,
				Lib: appmodel.LibNSURLSession, Path: "/t", PIIKinds: []pii.Kind{pii.AdID}},
			{Host: "tracker.example.net", At: 3, Used: false, // redundant
				Lib: appmodel.LibNSURLSession, Path: "/t"},
			{Host: "api.myapp.example.com", At: 75, Used: true, // outside every window
				Lib: appmodel.LibNSURLSession, Path: "/late", FirstParty: true},
		},
		AssociatedDomains: []string{"assoc.myapp.example.com"},
	}
}

func flowsTo(cap *netem.Capture, host string) []*netem.Flow {
	var out []*netem.Flow
	for _, f := range cap.Flows() {
		if f.Dst == host {
			out = append(out, f)
		}
	}
	return out
}

func hasClientAppData(f *netem.Flow) bool {
	n := 0
	for _, r := range f.Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData {
			n++
		}
	}
	return n > 0
}

func TestRunWithoutMITM(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(10))
	app := testApp(w, appmodel.IOS)
	// A 60 s window covers the whole associated-domain verification burst,
	// so its traffic is guaranteed to land inside the capture.
	cap := d.Run(app, RunOptions{Window: 60})

	// Window filtering: the At=55 connection must not appear.
	api := flowsTo(cap, "api.myapp.example.com")
	if len(api) != 1 {
		t.Fatalf("%d flows to api host, want 1 (late conn filtered)", len(api))
	}
	if !hasClientAppData(api[0]) {
		t.Fatal("pinned conn unused without MITM")
	}
	// Redundant connection: present but one of the two tracker flows
	// carries no request payload beyond the handshake.
	tracker := flowsTo(cap, "tracker.example.net")
	if len(tracker) != 2 {
		t.Fatalf("%d tracker flows", len(tracker))
	}
	// Apple background + associated domain traffic present (LaunchDelay 0).
	if len(flowsTo(cap, "icloud.com")) != 1 {
		t.Fatal("no Apple background traffic captured")
	}
	if len(flowsTo(cap, "assoc.myapp.example.com")) == 0 {
		t.Fatal("no associated-domain traffic captured at LaunchDelay 0")
	}
}

func TestRunAndroidHasNoOSBackground(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.Android, w.net, w.eco.OEM, detrand.New(11))
	app := testApp(w, appmodel.Android)
	app.AssociatedDomains = nil
	cap := d.Run(app, RunOptions{})
	if len(flowsTo(cap, "icloud.com")) != 0 {
		t.Fatal("Android run captured Apple background traffic")
	}
}

func TestLaunchDelaySkipsAssociatedDomains(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(12))
	app := testApp(w, appmodel.IOS)
	cap := d.Run(app, RunOptions{LaunchDelay: 120})
	if len(flowsTo(cap, "assoc.myapp.example.com")) != 0 {
		t.Fatal("associated-domain traffic captured despite 120s delay")
	}
	// Apple service domains persist regardless.
	if len(flowsTo(cap, "apple.com")) != 1 {
		t.Fatal("Apple service traffic missing in delayed run")
	}
}

func TestRunUnderMITM(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(13))
	d.InstallCA(w.proxy.CACert())
	w.net.SetInterceptor(w.proxy)
	app := testApp(w, appmodel.IOS)
	cap := d.Run(app, RunOptions{})

	// Pinned destination: no app data under MITM.
	for _, f := range flowsTo(cap, "api.myapp.example.com") {
		for _, r := range f.Records() {
			if r.FromClient && r.WireType == tlswire.RecAppData &&
				r.Length != tlswire.EncryptedAlertWireLen {
				t.Fatal("pinned conn transmitted data under MITM")
			}
		}
	}
	// Unpinned destination: data flows, proxy logged plaintext with AdID.
	sawAdID := false
	for _, lg := range w.proxy.Logs() {
		for _, p := range lg.Payloads {
			if strings.Contains(string(p), d.Profile.AdID) {
				sawAdID = true
			}
		}
	}
	if !sawAdID {
		t.Fatal("proxy did not observe the device Ad ID on unpinned traffic")
	}
	// OS associated-domain traffic fails under MITM (system store does not
	// trust the proxy CA) — the false-pinning confounder.
	for _, f := range flowsTo(cap, "assoc.myapp.example.com") {
		if hasClientAppData(f) {
			// TLS 1.3 alert is disguised as app data; require it to be
			// alert-sized only.
			for _, r := range f.Records() {
				if r.FromClient && r.WireType == tlswire.RecAppData && r.Length != tlswire.EncryptedAlertWireLen {
					t.Fatal("OS verification traffic succeeded under MITM")
				}
			}
		}
	}
}

func TestHooksDisablePinning(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(14))
	d.InstallCA(w.proxy.CACert())
	w.net.SetInterceptor(w.proxy)
	app := testApp(w, appmodel.IOS)

	hooks, err := frida.Attach(appmodel.IOS, d.Jailbroken)
	if err != nil {
		t.Fatal(err)
	}
	cap := d.Run(app, RunOptions{Hooks: hooks})
	api := flowsTo(cap, "api.myapp.example.com")
	if len(api) != 1 || !hasClientAppData(api[0]) {
		t.Fatal("hooked pinned conn still failed under MITM")
	}
	// Pinned plaintext is now visible at the proxy.
	sawLogin := false
	for _, lg := range w.proxy.Logs() {
		if lg.Host != "api.myapp.example.com" {
			continue
		}
		for _, p := range lg.Payloads {
			if strings.Contains(string(p), "/login") {
				sawLogin = true
			}
		}
	}
	if !sawLogin {
		t.Fatal("pinned payload not observed after circumvention")
	}
}

func TestHooksDoNotCoverCustomStacks(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(15))
	d.InstallCA(w.proxy.CACert())
	w.net.SetInterceptor(w.proxy)
	app := testApp(w, appmodel.IOS)
	app.Conns[0].Lib = appmodel.LibCustomNative

	hooks, _ := frida.Attach(appmodel.IOS, true)
	cap := d.Run(app, RunOptions{Hooks: hooks})
	api := flowsTo(cap, "api.myapp.example.com")
	for _, r := range api[0].Records() {
		if r.FromClient && r.WireType == tlswire.RecAppData && r.Length != tlswire.EncryptedAlertWireLen {
			t.Fatal("custom-native pinned conn was circumvented")
		}
	}
}

func TestDecryptAppRequiresJailbreak(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(16))
	app := testApp(w, appmodel.IOS)
	pkgApp := &appmodel.App{ID: "x"}
	pkgApp.Pkg = newEncryptedPkg()
	if err := d.DecryptApp(pkgApp); err != nil {
		t.Fatalf("jailbroken decrypt failed: %v", err)
	}
	if pkgApp.Pkg.Encrypted {
		t.Fatal("package still encrypted")
	}

	d2 := New(appmodel.Android, w.net, w.eco.OEM, detrand.New(17))
	d2.Jailbroken = false
	pkgApp2 := &appmodel.App{ID: "y", Pkg: newEncryptedPkg()}
	if err := d2.DecryptApp(pkgApp2); err == nil {
		t.Fatal("decrypt succeeded without jailbreak")
	}
	_ = app
}

func newEncryptedPkg() *apppkg.Package {
	p := apppkg.New("com.enc.app")
	p.AddExecutable("bin", []byte("secret"))
	p.EncryptIOS()
	return p
}

func TestProbeChainBypassesProxy(t *testing.T) {
	w := newTestWorld(t)
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(18))
	w.net.SetInterceptor(w.proxy)
	chain, err := d.ProbeChain("api.myapp.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Leaf().Equal(w.chains["api.myapp.example.com"].Leaf()) {
		t.Fatal("probe returned forged chain")
	}
	if _, err := d.ProbeChain("missing.example.com"); err == nil {
		t.Fatal("probe to unknown host succeeded")
	}
}

func TestSleepWindowSweep(t *testing.T) {
	// Larger windows capture monotonically more flows.
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	app.Conns[3].At = 40 // tail connection: only the 60 s window sees it
	var counts []int
	for i, win := range []float64{15, 30, 60} {
		d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(int64(20+i)))
		cap := d.Run(app, RunOptions{Window: win, LaunchDelay: 120})
		counts = append(counts, len(cap.Flows()))
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
		t.Fatalf("flow counts not monotone in window: %v", counts)
	}
	if counts[2] <= counts[0] {
		t.Fatalf("60s window captured no more than 15s: %v", counts)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Two devices built from the same seed produce byte-identical captures
	// for the same app: flow order, record sequence, and close flags.
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	snapshot := func(seed int64) []string {
		d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(seed))
		cap := d.Run(app, RunOptions{})
		var out []string
		for _, f := range cap.Flows() {
			line := f.Dst
			for _, r := range f.Records() {
				line += "|" + r.WireType.String() + ":" + itoa(r.Length)
			}
			c, s := f.CloseFlags()
			line += "|" + c.String() + "/" + s.String()
			out = append(out, line)
		}
		return out
	}
	a, b := snapshot(99), snapshot(99)
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
	c := snapshot(100)
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical captures (payload randomness dead)")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestProfileStableAcrossDevices(t *testing.T) {
	w := newTestWorld(t)
	d1 := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(42))
	d2 := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(42))
	if *d1.Profile != *d2.Profile {
		t.Fatal("same seed gave different device identities")
	}
}
