package device

import (
	"reflect"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/faultinject"
	"pinscope/internal/frida"
	"pinscope/internal/netem"
)

// captureShape extracts the comparable view of a capture: per-flow
// destination, records, and close flags, in dial order.
type flowShape struct {
	dst     string
	at      float64
	records string
	client  string
	server  string
}

func captureShapes(t *testing.T, cap *netem.Capture) []flowShape {
	t.Helper()
	var out []flowShape
	for _, f := range cap.Flows() {
		recs := f.Records()
		shape := flowShape{dst: f.Dst, at: f.At}
		for _, r := range recs {
			dir := "s"
			if r.FromClient {
				dir = "c"
			}
			shape.records += dir + ":" + string(rune('0'+int(r.WireType%10)))
		}
		cc, sc := f.CloseFlags()
		shape.client, shape.server = cc.String(), sc.String()
		out = append(out, shape)
	}
	return out
}

func TestHandshakeMemoReplayMatchesLive(t *testing.T) {
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	memo := NewHandshakeMemo()
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
	d.UseHandshakeMemo(memo)

	capLive := d.Run(app, RunOptions{})
	if memo.Hits() != 0 {
		t.Fatalf("first run hit the memo %d times", memo.Hits())
	}
	if memo.Len() == 0 {
		t.Fatal("first run filled nothing")
	}
	live := captureShapes(t, capLive)

	capReplay := d.Run(app, RunOptions{})
	if memo.Hits() == 0 {
		t.Fatal("second run of the identical app never hit the memo")
	}
	replay := captureShapes(t, capReplay)
	if !reflect.DeepEqual(live, replay) {
		t.Fatalf("replayed capture differs from live:\nlive:   %+v\nreplay: %+v", live, replay)
	}
}

func TestHandshakeMemoSharedAcrossDevices(t *testing.T) {
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	memo := NewHandshakeMemo()

	d1 := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
	d1.UseHandshakeMemo(memo)
	cap1 := d1.Run(app, RunOptions{})

	// A second device with the identical derivation (as every worker's
	// device in a study has) serves the whole run from the shared memo.
	d2 := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
	d2.UseHandshakeMemo(memo)
	hitsBefore := memo.Hits()
	cap2 := d2.Run(app, RunOptions{})
	if memo.Hits() == hitsBefore {
		t.Fatal("second device never hit the shared memo")
	}
	if !reflect.DeepEqual(captureShapes(t, cap1), captureShapes(t, cap2)) {
		t.Fatal("second device's capture differs from the first's")
	}
}

func TestHandshakeMemoBypasses(t *testing.T) {
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)

	// Prime a memo so any non-bypassed rerun would hit it.
	prime := func() (*Device, *HandshakeMemo) {
		memo := NewHandshakeMemo()
		d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
		d.UseHandshakeMemo(memo)
		d.Run(app, RunOptions{})
		if memo.Len() == 0 {
			t.Fatal("priming run filled nothing")
		}
		return d, memo
	}

	t.Run("hooked runs", func(t *testing.T) {
		d, memo := prime()
		before := memo.Hits()
		hooks, err := frida.Attach(appmodel.IOS, true)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(app, RunOptions{Hooks: hooks})
		if memo.Hits() != before {
			t.Fatal("hooked run consulted the memo")
		}
	})

	t.Run("device faults", func(t *testing.T) {
		d, memo := prime()
		before := memo.Hits()
		af := faultinject.NewPlan(7, faultinject.Uniform(0.9)).ForApp(app.ID, 0)
		d.Run(app, RunOptions{Faults: af.Run("baseline")})
		if memo.Hits() != before {
			t.Fatal("faulted run consulted the memo")
		}
	})

	t.Run("network fault tap", func(t *testing.T) {
		d, memo := prime()
		before := memo.Hits()
		af := faultinject.NewPlan(7, faultinject.Uniform(0.9)).ForApp(app.ID, 0)
		w.net.SetFaultTap(af.NetTap("baseline"))
		defer w.net.SetFaultTap(nil)
		d.Run(app, RunOptions{})
		if memo.Hits() != before {
			t.Fatal("run on a tapped network consulted the memo")
		}
	})

	t.Run("no memo installed", func(t *testing.T) {
		d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
		cap1 := d.Run(app, RunOptions{})
		if len(cap1.Flows()) == 0 {
			t.Fatal("memo-less device captured nothing")
		}
	})
}

func TestHandshakeMemoUnderMITM(t *testing.T) {
	// Pinned connections fail against the proxy's forged chain; that
	// failure outcome must memoize and replay like any success.
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	w.net.SetInterceptor(w.proxy)
	defer w.net.SetInterceptor(nil)

	memo := NewHandshakeMemo()
	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
	d.InstallCA(w.proxy.CACert())
	d.UseHandshakeMemo(memo)

	cap1 := d.Run(app, RunOptions{})
	cap2 := d.Run(app, RunOptions{})
	if memo.Hits() == 0 {
		t.Fatal("MITM rerun never hit the memo")
	}
	if !reflect.DeepEqual(captureShapes(t, cap1), captureShapes(t, cap2)) {
		t.Fatal("replayed MITM capture differs from live")
	}
}

func TestHandshakeMemoProxyPresenceSplitsKeys(t *testing.T) {
	// The same host measured with and without an interceptor has different
	// outcomes; the memo must never serve one leg's outcome to the other.
	w := newTestWorld(t)
	app := testApp(w, appmodel.IOS)
	memo := NewHandshakeMemo()

	d := New(appmodel.IOS, w.net, w.deviceRS, detrand.New(4))
	d.InstallCA(w.proxy.CACert())
	d.UseHandshakeMemo(memo)
	d.Run(app, RunOptions{})

	w.net.SetInterceptor(w.proxy)
	defer w.net.SetInterceptor(nil)
	before := memo.Hits()
	d.Run(app, RunOptions{})
	if memo.Hits() != before {
		t.Fatal("MITM leg was served plain-leg outcomes")
	}
}
