package device

// memo.go is the handshake-outcome memo of the shared crypto plane. A
// study runs the same deterministic connection thousands of times: the
// observable outcome — the record summaries crossing the monitoring point
// and the close flags — is fully determined by (proxy presence, host,
// trust-store content, pin set, TLS parameters, payload length). The memo
// caches that outcome once per key and replays it into later captures
// without touching the network, collapsing repeated ECDSA chain
// verifications and record churn across every worker sharing the memo.
//
// What is deliberately NOT memoized:
//   - any run with an installed fault tap, device-layer faults, or hooks
//     (Measure disables the memo wholesale): injected faults must hit real
//     handshakes, and hooked runs feed the proxy's plaintext logs, which a
//     replay would leave empty;
//   - probe connections (ProbeChain) — they fetch genuine chains for PKI
//     classification and run once per destination anyway;
//   - payload content: record summaries carry only lengths, so the key
//     needs the payload's length, never its bytes.
//
// Replay preserves byte-identical exports because every analysis consumer
// is insensitive to the one thing a live rerun could vary: the goroutine
// interleaving of client- and server-direction records. Per-direction
// order is deterministic, and the core equivalence test holds a memoized
// run to a cold run's exact export bytes.

import (
	"strconv"
	"sync"
	"sync/atomic"

	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// HandshakeMemo caches connection outcomes keyed by everything that
// determines them. Safe for concurrent use by any number of devices and
// workers; the zero value is NOT ready, use NewHandshakeMemo.
type HandshakeMemo struct {
	m    sync.Map // key string -> *memoEntry
	hits atomic.Int64
}

// NewHandshakeMemo returns an empty memo.
func NewHandshakeMemo() *HandshakeMemo { return &HandshakeMemo{} }

type memoEntry struct {
	records     []tlswire.Summary
	clientClose tlswire.CloseFlag
	serverClose tlswire.CloseFlag
}

// Hits reports how many connections were served from the memo.
func (m *HandshakeMemo) Hits() int64 { return m.hits.Load() }

// Len reports how many distinct outcomes are cached.
func (m *HandshakeMemo) Len() int {
	n := 0
	m.m.Range(func(any, any) bool { n++; return true })
	return n
}

func (m *HandshakeMemo) load(key string) (*memoEntry, bool) {
	v, ok := m.m.Load(key)
	if !ok {
		return nil, false
	}
	m.hits.Add(1)
	return v.(*memoEntry), true
}

// fill snapshots a completed flow into the memo. Callers must only fill
// after the network is idle, so the snapshot is the flow's final state.
// The first fill for a key wins; concurrent workers produce identical
// outcomes for identical keys, so which one lands is immaterial.
func (m *HandshakeMemo) fill(key string, f *netem.Flow) {
	if _, ok := m.m.Load(key); ok {
		return
	}
	cc, sc := f.CloseFlags()
	m.m.LoadOrStore(key, &memoEntry{records: f.Records(), clientClose: cc, serverClose: sc})
}

// pendingFill is a flow whose outcome will be memoized once the run's
// network goes idle.
type pendingFill struct {
	key  string
	flow *netem.Flow
}

// memoKey encodes everything the outcome of a connection depends on. ALPN
// is omitted because no device code path sets it; if one ever does, it
// must join the key.
func memoKey(proxied bool, host string, store *pki.RootStore, pins *pki.PinSet,
	mode tlswire.FailureMode, maxV tlswire.Version, suites []tlswire.CipherSuite,
	payloadLen int) string {
	b := make([]byte, 0, 160)
	if proxied {
		b = append(b, 'P')
	} else {
		b = append(b, 'D')
	}
	b = append(b, '|')
	b = append(b, host...)
	b = append(b, '|')
	b = append(b, store.Digest()...)
	b = append(b, '|')
	b = append(b, pins.DigestKey()...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(mode), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(maxV), 10)
	b = append(b, '|')
	for _, s := range suites {
		b = strconv.AppendUint(b, uint64(s), 10)
		b = append(b, '-')
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(payloadLen), 10)
	return string(b)
}
