// Package device models the study's test phones (a Pixel 3 on Android 11
// and a Checkra1n-jailbroken iPhone X on iOS 13.6) and the automation
// framework driving them (§4.2.1): install an app, run it for a capture
// window while recording its traffic, uninstall, repeat.
//
// The device executes an app's behaviour plan over the emulated network.
// Two trust stores exist, as on real phones: the store apps consult (where
// the mitmproxy CA gets installed for MITM experiments) and the store OS
// services consult, which never trusts user-added CAs — the root cause of
// the iOS associated-domains traffic looking pinned (§4.5).
package device

import (
	"fmt"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/faultinject"
	"pinscope/internal/frida"
	"pinscope/internal/netem"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// AppleBackgroundDomains are contacted by iOS itself throughout every test,
// regardless of the app under test (§4.5). The analysis pipeline excludes
// them by name, as the paper did.
var AppleBackgroundDomains = []string{"icloud.com", "apple.com", "mzstatic.com"}

// Device is one test phone.
type Device struct {
	Platform   appmodel.Platform
	Net        *netem.Network
	Jailbroken bool

	// Profile is the device identity whose PII may appear in traffic.
	Profile *pii.Profile

	userStore   *pki.RootStore // consulted by apps
	systemStore *pki.RootStore // consulted by OS services; no user CAs
	rng         *detrand.Source
	memo        *HandshakeMemo // nil = every connection runs live
}

// New creates a device whose app store trust anchors come from base.
func New(platform appmodel.Platform, net *netem.Network, base *pki.RootStore, rng *detrand.Source) *Device {
	jail := platform == appmodel.IOS // the study iPhone is jailbroken
	return &Device{
		Platform:    platform,
		Net:         net,
		Jailbroken:  jail,
		Profile:     pii.NewProfile(rng.Child("profile")),
		userStore:   base.Clone(string(platform) + "-user"),
		systemStore: base.Clone(string(platform) + "-system"),
		rng:         rng,
	}
}

// InstallCA adds a certificate to the store apps consult (the study phones
// were modified/configured to trust the mitmproxy CA). OS services remain
// unaffected.
func (d *Device) InstallCA(cert *pki.Authority) {
	d.userStore.Add(cert.Cert)
}

// UserStore exposes the app-visible trust store (read-only use).
func (d *Device) UserStore() *pki.RootStore { return d.userStore }

// UseStores replaces the device's private trust-store clones with shared,
// fully configured stores (the study's crypto plane builds one user store
// per platform/leg with any proxy CA already installed). Sharing pools the
// stores' validation caches across workers. Callers must not InstallCA on
// a device after adopting shared stores — configure the shared store once
// instead.
func (d *Device) UseStores(user, system *pki.RootStore) {
	d.userStore = user
	d.systemStore = system
}

// UseHandshakeMemo points the device at a shared handshake-outcome memo.
// Runs with hooks, device faults, or an installed network fault tap bypass
// it automatically (see memo.go for the contract).
func (d *Device) UseHandshakeMemo(m *HandshakeMemo) { d.memo = m }

// DecryptApp returns the decrypted package of an iOS app, as Flexdecrypt or
// Frida-iOS-Dump would. It fails off-jailbreak, which is what limited the
// paper's iOS dataset size (Appendix A).
func (d *Device) DecryptApp(app *appmodel.App) error {
	if app.Pkg == nil || !app.Pkg.Encrypted {
		return nil
	}
	if !d.Jailbroken {
		return fmt.Errorf("device: cannot decrypt %s without a jailbreak", app.ID)
	}
	app.Pkg.DecryptIOS()
	return nil
}

// RunOptions parameterize one app run.
type RunOptions struct {
	// Window is the capture duration in seconds after launch (the paper
	// settled on 30 s after sweeping 15/30/60, §4.2.1).
	Window float64
	// LaunchDelay is the idle time between install and launch. The Common
	// re-run uses 120 s so iOS associated-domain verification finishes
	// before capture (§4.5).
	LaunchDelay float64
	// Hooks, when non-nil, is an attached instrumentation session that
	// disables validation for covered TLS libraries.
	Hooks *frida.Session
	// Faults, when non-nil, injects the device-layer faults of this run:
	// capture-window truncation and app crashes (faultinject package).
	Faults *faultinject.RunFaults
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Window == 0 {
		o.Window = 30
	}
	return o
}

// osAssocWindow is how long after install the iOS associated-domains
// verification keeps generating traffic.
const osAssocWindow = 60.0

// truncTailSlack is how close (in seconds) to a capture cut a dial must be
// for its flow to lose its recorded tail rather than the whole flow.
const truncTailSlack = 4.0

// Run installs the app, launches it, captures traffic for the window, and
// uninstalls. The returned capture contains everything the monitoring point
// saw: app traffic inside the window plus any OS traffic overlapping it.
func (d *Device) Run(app *appmodel.App, opts RunOptions) *netem.Capture {
	cap, _ := d.Measure(app, opts)
	return cap
}

// Measure is Run with fault accounting: it additionally reports an error
// when an injected crash kills the app at launch, before any planned
// connection fired — the per-app failure the study runner retries. The
// capture is valid (OS traffic may be present) even when err is non-nil.
func (d *Device) Measure(app *appmodel.App, opts RunOptions) (*netem.Capture, error) {
	opts = opts.withDefaults()
	cap := netem.NewCapture()
	runRng := d.rng.Child("run/" + app.ID)

	// Device-layer faults: the monitoring point may stop early (capWindow)
	// and the app may die mid-run (crashAt).
	capWindow, truncated := opts.Faults.TruncatedWindow(opts.Window)
	crashAt, crashed := opts.Faults.CrashTime(opts.Window)

	// The handshake memo serves only clean, unhooked runs: injected faults
	// must hit real handshakes, and hooked runs feed the proxy's plaintext
	// logs, which a replayed flow would leave empty.
	memoOK := d.memo != nil && opts.Hooks == nil && opts.Faults == nil && !d.Net.HasFaultTap()
	var pending []pendingFill

	// OS background traffic first (it is concurrent in reality; ordering
	// within the capture does not matter to the analyses). It outlives the
	// app, so a crash does not silence it — but a capture cut does.
	if d.Platform == appmodel.IOS {
		osOpts := opts
		osOpts.Window = capWindow
		d.runIOSBackground(app, osOpts, cap, runRng.Child("os"), memoOK, &pending)
	}

	launched := false
	for i, pc := range app.Conns {
		if pc.At > opts.Window {
			continue // connection would occur after capture/uninstall
		}
		if crashed && pc.At > crashAt {
			continue // the app is dead; nothing later fires
		}
		connCap := cap
		var cf netem.ConnFaults
		if truncated {
			if pc.At > capWindow {
				// Monitoring already stopped; the app still talks (the
				// proxy still logs it) but the capture misses the flow.
				connCap = nil
			} else if capWindow-pc.At < truncTailSlack {
				// Dialed moments before the cut: the capture keeps the
				// handshake opening but loses the tail and the teardown.
				cf.CaptureTailAfter = 2
			}
		}
		d.runConn(app, pc, opts, connCap, cf, runRng.ChildN("conn", i), memoOK, &pending)
		launched = true
	}
	d.Net.WaitIdle()
	// The network is idle, so every pending flow holds its final record
	// sequence and close flags: snapshot them into the memo.
	for _, p := range pending {
		d.memo.fill(p.key, p.flow)
	}
	if crashed && !launched && firstConnAt(app, opts.Window) >= 0 {
		return cap, fmt.Errorf("device: app %s crashed %.1fs after launch, before any connection", app.ID, crashAt)
	}
	return cap, nil
}

// firstConnAt returns the dial time of the first planned connection inside
// the window, or -1 when the app plans none.
func firstConnAt(app *appmodel.App, window float64) float64 {
	first := -1.0
	for _, pc := range app.Conns {
		if pc.At > window {
			continue
		}
		if first < 0 || pc.At < first {
			first = pc.At
		}
	}
	return first
}

// runIOSBackground emits the OS-initiated traffic of §4.5: Apple service
// domains spanning the whole test, and associated-domain verification
// triggered by the install (which precedes launch by LaunchDelay).
func (d *Device) runIOSBackground(app *appmodel.App, opts RunOptions, cap *netem.Capture, rng *detrand.Source, memoOK bool, pending *[]pendingFill) {
	proxied := d.Net.HasInterceptor()
	osClient := func(host string, at float64) {
		payload := "GET /.well-known/apple-app-site-association HTTP/1.1\r\nhost: " + host + "\r\n\r\n"
		var key string
		if memoOK {
			key = memoKey(proxied, host, d.systemStore, nil, tlswire.FailAlertClose, 0, nil, len(payload))
			if e, ok := d.memo.load(key); ok {
				cap.AddReplayedFlow(host, at, e.records, e.clientClose, e.serverClose)
				return
			}
		}
		tr, err := d.Net.Dial(host, netem.DialOpts{At: at, Capture: cap})
		if err != nil {
			return
		}
		if key != "" {
			if f := cap.Last(); f != nil {
				*pending = append(*pending, pendingFill{key: key, flow: f})
			}
		}
		defer tr.Close(tlswire.CloseFIN)
		conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
			ServerName: host,
			RootStore:  d.systemStore, // user CAs are NOT trusted here
			PinFailure: tlswire.FailAlertClose,
		})
		if err != nil {
			return
		}
		conn.Send([]byte(payload))
		conn.Recv()
		conn.Close()
	}

	// Apple service domains: present in every capture window.
	for i, host := range AppleBackgroundDomains {
		osClient(host, float64(2+4*i))
	}

	// Associated-domain verification happens within osAssocWindow of the
	// install. With a long enough LaunchDelay it completes before capture.
	if opts.LaunchDelay >= osAssocWindow {
		return
	}
	for _, host := range app.AssociatedDomains {
		at := rng.Float64() * osAssocWindow
		if at < opts.LaunchDelay { // finished before capture started
			continue
		}
		if at-opts.LaunchDelay > opts.Window { // after capture ended
			continue
		}
		osClient(host, at-opts.LaunchDelay)
	}
}

// runConn executes one planned connection.
func (d *Device) runConn(app *appmodel.App, pc appmodel.PlannedConn, opts RunOptions, cap *netem.Capture, cf netem.ConnFaults, rng *detrand.Source, memoOK bool, pending *[]pendingFill) {
	hooked := opts.Hooks.Covers(pc.Lib)
	store := d.userStore
	if pc.TrustAnchors != nil {
		store = pc.TrustAnchors
	}
	// The payload is built ahead of the dial: it consumes only this
	// connection's private rng stream, and its length is part of the memo
	// key (content never reaches the capture — summaries carry lengths).
	payloadLen := -1 // sentinel: connection established but never used
	var payload []byte
	if pc.Used {
		payload = pii.BuildPayload(rng, pc.Host, pc.Path, d.Profile, pc.PIIKinds)
		payloadLen = len(payload)
	}
	var key string
	if memoOK && cap != nil {
		key = memoKey(d.Net.HasInterceptor(), pc.Host, store, pc.Pins, pc.FailureMode, pc.MaxVersion, pc.Ciphers, payloadLen)
		if e, ok := d.memo.load(key); ok {
			cap.AddReplayedFlow(pc.Host, pc.At, e.records, e.clientClose, e.serverClose)
			return
		}
	}

	tr, err := d.Net.Dial(pc.Host, netem.DialOpts{At: pc.At, Capture: cap, Faults: cf})
	if err != nil {
		return
	}
	if key != "" {
		if f := cap.Last(); f != nil {
			*pending = append(*pending, pendingFill{key: key, flow: f})
		}
	}
	// App teardown closes whatever is still open; Close is idempotent.
	defer tr.Close(tlswire.CloseFIN)

	cfg := &tlswire.ClientConfig{
		ServerName:   pc.Host,
		MaxVersion:   pc.MaxVersion,
		CipherSuites: pc.Ciphers,
		RootStore:    store,
		Pins:         pc.Pins,
		PinFailure:   pc.FailureMode,
		SkipVerify:   hooked,
		SkipPinning:  hooked,
	}
	conn, err := tlswire.Client(tr, cfg)
	if err != nil {
		return // failure signature already on the wire
	}
	if !pc.Used {
		// Redundant connection: established, never used, closed by the
		// deferred teardown.
		return
	}
	if err := conn.Send(payload); err != nil {
		return
	}
	conn.Recv()
	conn.Close()
}

// ProbeChain fetches the certificate chain served at host, bypassing any
// interceptor — the study's equivalent of an `openssl s_client` probe used
// for the PKI classification of pinned destinations (§5.3.1).
func (d *Device) ProbeChain(host string) (pki.Chain, error) {
	tr, err := d.Net.DialDirect(host)
	if err != nil {
		return nil, err
	}
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: host,
		SkipVerify: true,
	})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return conn.PeerChain, nil
}
