package journal_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pinscope/internal/journal"
)

// FuzzJournalRecover feeds arbitrary bytes to the recovery parser and
// checks its three contracts: it never panics, anything it returns is
// verified data — re-journaling the recovered frames and recovering again
// must reproduce them exactly, with no truncation — and the streaming
// Reader agrees with Recover byte-for-byte on every input, including how
// a torn tail ends the iteration and where interior corruption turns the
// walk loud.
func FuzzJournalRecover(f *testing.F) {
	// Seed corpus: a valid journal, its torn prefixes, and mutations.
	valid := func(results ...string) []byte {
		dir := f.TempDir()
		p := filepath.Join(dir, "seed.wal")
		w, err := journal.Create(p, []byte(`{"seed":1}`))
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range results {
			if err := w.Append([]byte(r)); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	clean := valid("app result one", "app result two", "app result three")
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	f.Add(clean[:11])
	mutated := append([]byte(nil), clean...)
	mutated[20] ^= 0x40
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte("PINWAL1\n"))
	f.Add([]byte("PINWAL1\n\xff\xff\xff\xff\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.wal")
		if err := os.WriteFile(in, data, 0o600); err != nil {
			t.Skip()
		}
		rec, err := journal.Recover(in)
		if err != nil {
			// Rejected: fine, as long as it did not panic — and the
			// streaming Reader must reject the same bytes. It may fail at
			// open (bad magic, no header) or mid-iteration (interior
			// corruption discovered after yielding verified frames), but
			// it must not walk the journal to a clean end.
			r, rerr := journal.OpenReader(in)
			if rerr != nil {
				return
			}
			defer r.Close()
			for {
				_, nerr := r.Next()
				if errors.Is(nerr, io.EOF) {
					t.Fatalf("Reader walked to clean EOF but Recover rejected the journal: %v", err)
				}
				if nerr != nil {
					return // loud mid-iteration, matching Recover
				}
			}
		}
		// Recover succeeded: the streaming Reader must yield exactly the
		// same meta and results, end with io.EOF, and agree on the torn
		// tail.
		r, rerr := journal.OpenReader(in)
		if rerr != nil {
			t.Fatalf("Recover succeeded but OpenReader failed: %v", rerr)
		}
		defer r.Close()
		if !bytes.Equal(r.Meta(), rec.Meta) {
			t.Fatalf("Reader meta %q != Recover meta %q", r.Meta(), rec.Meta)
		}
		for i := 0; ; i++ {
			payload, nerr := r.Next()
			if errors.Is(nerr, io.EOF) {
				if i != len(rec.Results) {
					t.Fatalf("Reader yielded %d results, Recover %d", i, len(rec.Results))
				}
				break
			}
			if nerr != nil {
				t.Fatalf("Reader failed at result %d of a journal Recover accepted: %v", i, nerr)
			}
			if i >= len(rec.Results) || !bytes.Equal(payload, rec.Results[i]) {
				t.Fatalf("Reader result %d disagrees with Recover", i)
			}
		}
		if r.Truncated() != rec.Truncated || r.TornBytes() != rec.TornBytes {
			t.Fatalf("torn tail disagreement: Reader (%v, %d) vs Recover (%v, %d)",
				r.Truncated(), r.TornBytes(), rec.Truncated, rec.TornBytes)
		}
		if r.Frames() != len(rec.Results) {
			t.Fatalf("Reader.Frames() = %d, want %d", r.Frames(), len(rec.Results))
		}
		if r.ValidSize() != int64(len(data))-rec.TornBytes {
			t.Fatalf("Reader.ValidSize() = %d, want %d", r.ValidSize(), int64(len(data))-rec.TornBytes)
		}
		if rec.Meta == nil {
			t.Fatal("successful recovery with nil Meta")
		}
		// No unverified data: everything recovered must round-trip through
		// a fresh journal byte-for-byte.
		out := filepath.Join(dir, "out.wal")
		w, err := journal.Create(out, rec.Meta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Results {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := journal.Recover(out)
		if err != nil {
			t.Fatalf("re-recovery of re-journaled data failed: %v", err)
		}
		if rec2.Truncated {
			t.Fatal("re-journaled data reported truncated")
		}
		if !bytes.Equal(rec2.Meta, rec.Meta) {
			t.Fatalf("meta changed across round trip: %q != %q", rec2.Meta, rec.Meta)
		}
		if len(rec2.Results) != len(rec.Results) {
			t.Fatalf("result count changed across round trip: %d != %d", len(rec2.Results), len(rec.Results))
		}
		for i := range rec.Results {
			if !bytes.Equal(rec2.Results[i], rec.Results[i]) {
				t.Fatalf("result %d changed across round trip", i)
			}
		}
	})
}
