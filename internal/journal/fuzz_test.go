package journal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pinscope/internal/journal"
)

// FuzzJournalRecover feeds arbitrary bytes to the recovery parser and
// checks its two contracts: it never panics, and anything it returns is
// verified data — re-journaling the recovered frames and recovering again
// must reproduce them exactly, with no truncation.
func FuzzJournalRecover(f *testing.F) {
	// Seed corpus: a valid journal, its torn prefixes, and mutations.
	valid := func(results ...string) []byte {
		dir := f.TempDir()
		p := filepath.Join(dir, "seed.wal")
		w, err := journal.Create(p, []byte(`{"seed":1}`))
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range results {
			if err := w.Append([]byte(r)); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	clean := valid("app result one", "app result two", "app result three")
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	f.Add(clean[:11])
	mutated := append([]byte(nil), clean...)
	mutated[20] ^= 0x40
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte("PINWAL1\n"))
	f.Add([]byte("PINWAL1\n\xff\xff\xff\xff\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.wal")
		if err := os.WriteFile(in, data, 0o600); err != nil {
			t.Skip()
		}
		rec, err := journal.Recover(in)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if rec.Meta == nil {
			t.Fatal("successful recovery with nil Meta")
		}
		// No unverified data: everything recovered must round-trip through
		// a fresh journal byte-for-byte.
		out := filepath.Join(dir, "out.wal")
		w, err := journal.Create(out, rec.Meta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Results {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := journal.Recover(out)
		if err != nil {
			t.Fatalf("re-recovery of re-journaled data failed: %v", err)
		}
		if rec2.Truncated {
			t.Fatal("re-journaled data reported truncated")
		}
		if !bytes.Equal(rec2.Meta, rec.Meta) {
			t.Fatalf("meta changed across round trip: %q != %q", rec2.Meta, rec.Meta)
		}
		if len(rec2.Results) != len(rec.Results) {
			t.Fatalf("result count changed across round trip: %d != %d", len(rec2.Results), len(rec.Results))
		}
		for i := range rec.Results {
			if !bytes.Equal(rec2.Results[i], rec.Results[i]) {
				t.Fatalf("result %d changed across round trip", i)
			}
		}
	})
}
