package journal_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pinscope/internal/journal"
)

// writeJournal creates a journal with the given result payloads and
// returns its path.
func writeJournal(t *testing.T, meta []byte, results ...[]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := journal.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	meta := []byte(`{"seed":42}`)
	results := [][]byte{[]byte("app-a"), []byte("app-b"), {}, []byte("app-d")}
	path := writeJournal(t, meta, results...)

	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Meta, meta) {
		t.Fatalf("Meta = %q, want %q", rec.Meta, meta)
	}
	if len(rec.Results) != len(results) {
		t.Fatalf("got %d results, want %d", len(rec.Results), len(results))
	}
	for i := range results {
		if !bytes.Equal(rec.Results[i], results[i]) {
			t.Fatalf("result %d = %q, want %q", i, rec.Results[i], results[i])
		}
	}
	if rec.Truncated {
		t.Fatal("clean journal reported as truncated")
	}
}

func TestCreateRefusesExistingFile(t *testing.T) {
	path := writeJournal(t, []byte("m"), []byte("r"))
	if _, err := journal.Create(path, []byte("m")); err == nil {
		t.Fatal("Create clobbered an existing journal")
	}
}

// TestTornTailTruncatedSilently cuts the journal after every possible byte
// length of the final frame and expects recovery to keep the intact
// results and silently drop the torn tail.
func TestTornTailTruncatedSilently(t *testing.T) {
	meta := []byte("meta-payload")
	keep := [][]byte{[]byte("first result"), []byte("second result")}
	path := writeJournal(t, meta, append(keep, []byte("the final, torn result"))...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Recover to learn where the last intact frame ends.
	recFull, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recFull.Results) != 3 {
		t.Fatalf("setup: %d results", len(recFull.Results))
	}
	// The boundary before the final frame: recover the prefix of every
	// length from there up to (but excluding) the full file.
	lastFrame := len(full) - (8 + 1 + len("the final, torn result"))
	for cut := lastFrame; cut < len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(p)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(rec.Results) != len(keep) {
			t.Fatalf("cut=%d: %d results, want %d", cut, len(rec.Results), len(keep))
		}
		if cut > lastFrame != rec.Truncated {
			t.Fatalf("cut=%d: Truncated = %v", cut, rec.Truncated)
		}
	}
}

func TestInteriorCorruptionRejectedLoudly(t *testing.T) {
	path := writeJournal(t, []byte("meta"), []byte("first result"), []byte("second result"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the FIRST result frame (there is intact
	// data after it, so this cannot be a torn tail).
	corrupt := append([]byte(nil), full...)
	off := 8 + 8 + 1 + len("meta") + 8 + 1 + 3 // magic, meta frame, into first result payload
	corrupt[off] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = journal.Recover(path)
	if !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Recover = %v, want ErrCorrupt", err)
	}
}

func TestImpossibleLengthRejected(t *testing.T) {
	path := writeJournal(t, []byte("meta"), []byte("result"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the result frame's length with garbage far beyond MaxFrame
	// while keeping trailing bytes present.
	off := 8 + 8 + 1 + len("meta")
	copy(full[off:off+4], []byte{0xff, 0xff, 0xff, 0xff})
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Recover(path); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Recover = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicAndMissingHeader(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.wal":     {},
		"garbage.wal":   []byte("definitely not a journal"),
		"magiconly.wal": []byte("PINWAL1\n"),
		"tornmeta.wal":  []byte("PINWAL1\n\x05\x00\x00"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := journal.Recover(p); !errors.Is(err, journal.ErrNoHeader) {
			t.Fatalf("%s: Recover = %v, want ErrNoHeader", name, err)
		}
	}
}

func TestAppendAfterRecover(t *testing.T) {
	path := writeJournal(t, []byte("meta"), []byte("r0"), []byte("r1"))
	// Tear the tail by appending garbage, as a crash mid-append would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || rec.TornBytes != 2 {
		t.Fatalf("Truncated=%v TornBytes=%d, want true/2", rec.Truncated, rec.TornBytes)
	}
	w, err := rec.AppendTo(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Appended() != 2 {
		t.Fatalf("Appended() = %d, want 2", w.Appended())
	}
	if err := w.Append([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("r0"), []byte("r1"), []byte("r2")}
	if len(rec2.Results) != len(want) || rec2.Truncated {
		t.Fatalf("after append: %d results, truncated=%v", len(rec2.Results), rec2.Truncated)
	}
	for i := range want {
		if !bytes.Equal(rec2.Results[i], want[i]) {
			t.Fatalf("result %d = %q, want %q", i, rec2.Results[i], want[i])
		}
	}
}

func TestCrashTapKillsDeterministically(t *testing.T) {
	for _, torn := range []int{0, 1, 5, 1 << 20} {
		t.Run(fmt.Sprintf("torn=%d", torn), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			w, err := journal.Create(path, []byte("meta"))
			if err != nil {
				t.Fatal(err)
			}
			w.SetCrashTap(func(i int) (int, bool) { return torn, i >= 2 })
			for i := 0; i < 2; i++ {
				if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append([]byte("killed")); !errors.Is(err, journal.ErrKilled) {
				t.Fatalf("Append = %v, want ErrKilled", err)
			}
			// The writer stays dead.
			if err := w.Append([]byte("more")); !errors.Is(err, journal.ErrKilled) {
				t.Fatalf("post-kill Append = %v, want ErrKilled", err)
			}
			rec, err := journal.Recover(path)
			if err != nil {
				t.Fatal(err)
			}
			// A torn write that happens to cover the whole frame means the
			// record hit disk before the cut: it survives, untruncated.
			frameLen := 8 + 1 + len("killed")
			wantResults, wantTornBytes := 2, torn
			if torn >= frameLen {
				wantResults, wantTornBytes = 3, 0
			}
			if len(rec.Results) != wantResults {
				t.Fatalf("%d results survive the cut, want %d", len(rec.Results), wantResults)
			}
			if rec.Truncated != (wantTornBytes > 0) || rec.TornBytes != int64(wantTornBytes) {
				t.Fatalf("Truncated=%v TornBytes=%d, want %v/%d",
					rec.Truncated, rec.TornBytes, wantTornBytes > 0, wantTornBytes)
			}
		})
	}
}

// readAll drains a Reader, failing the test on anything but io.EOF.
func readAll(t *testing.T, r *journal.Reader) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

func TestReaderStreamsCleanJournal(t *testing.T) {
	meta := []byte(`{"seed":42}`)
	results := [][]byte{[]byte("app-a"), []byte("app-b"), {}, []byte("app-d")}
	path := writeJournal(t, meta, results...)

	r, err := journal.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !bytes.Equal(r.Meta(), meta) {
		t.Fatalf("Meta() = %q, want %q", r.Meta(), meta)
	}
	got := readAll(t, r)
	if len(got) != len(results) {
		t.Fatalf("%d results, want %d", len(got), len(results))
	}
	for i := range results {
		if !bytes.Equal(got[i], results[i]) {
			t.Fatalf("result %d = %q, want %q", i, got[i], results[i])
		}
	}
	if r.Truncated() || r.Frames() != len(results) {
		t.Fatalf("Truncated=%v Frames=%d after clean walk", r.Truncated(), r.Frames())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.ValidSize() != fi.Size() {
		t.Fatalf("ValidSize() = %d, want file size %d", r.ValidSize(), fi.Size())
	}
	// io.EOF is sticky.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

// TestReaderTornTailMidIteration cuts the journal at every byte length of
// the final frame: the reader must yield the intact results, then end the
// iteration silently with the torn tail reported, exactly like Recover.
func TestReaderTornTailMidIteration(t *testing.T) {
	keep := [][]byte{[]byte("first result"), []byte("second result")}
	path := writeJournal(t, []byte("meta"), append(keep, []byte("the final, torn result"))...)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := len(full) - (8 + 1 + len("the final, torn result"))
	for cut := lastFrame; cut < len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := journal.OpenReader(p)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		got := readAll(t, r)
		if len(got) != len(keep) {
			t.Fatalf("cut=%d: %d results, want %d", cut, len(got), len(keep))
		}
		if want := cut > lastFrame; r.Truncated() != want {
			t.Fatalf("cut=%d: Truncated = %v, want %v", cut, r.Truncated(), want)
		}
		if r.TornBytes() != int64(cut-lastFrame) {
			t.Fatalf("cut=%d: TornBytes = %d, want %d", cut, r.TornBytes(), cut-lastFrame)
		}
		if r.ValidSize() != int64(lastFrame) {
			t.Fatalf("cut=%d: ValidSize = %d, want %d", cut, r.ValidSize(), lastFrame)
		}
		r.Close()
	}
}

func TestReaderInteriorCorruptionLoudMidIteration(t *testing.T) {
	path := writeJournal(t, []byte("meta"), []byte("first result"), []byte("second result"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	off := 8 + 8 + 1 + len("meta") + 8 + 1 + 3 // into the first result payload
	corrupt[off] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := journal.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Next = %v, want ErrCorrupt", err)
	}
	// The error is sticky.
	if _, err := r.Next(); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("second Next = %v, want sticky ErrCorrupt", err)
	}
}

func TestOpenReaderRejectsHeaderless(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.wal":     {},
		"garbage.wal":   []byte("definitely not a journal"),
		"magiconly.wal": []byte("PINWAL1\n"),
		"tornmeta.wal":  []byte("PINWAL1\n\x05\x00\x00"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := journal.OpenReader(p); !errors.Is(err, journal.ErrNoHeader) {
			t.Fatalf("%s: OpenReader = %v, want ErrNoHeader", name, err)
		}
	}
}

// TestResumeWriterAfterStreamingWalk is the shard-takeover path: stream a
// torn journal with Reader, then ResumeWriter at the verified boundary and
// keep appending — without ever holding the whole WAL in memory.
func TestResumeWriterAfterStreamingWalk(t *testing.T) {
	path := writeJournal(t, []byte("meta"), []byte("r0"), []byte("r1"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := journal.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	r.Close()
	if !r.Truncated() || r.TornBytes() != 2 {
		t.Fatalf("Truncated=%v TornBytes=%d, want true/2", r.Truncated(), r.TornBytes())
	}
	w, err := journal.ResumeWriter(path, r.Frames(), r.ValidSize())
	if err != nil {
		t.Fatal(err)
	}
	if w.Appended() != 2 {
		t.Fatalf("Appended() = %d, want 2", w.Appended())
	}
	if err := w.Append([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("r0"), []byte("r1"), []byte("r2")}
	if len(rec.Results) != len(want) || rec.Truncated {
		t.Fatalf("after resume: %d results, truncated=%v", len(rec.Results), rec.Truncated)
	}
	for i := range want {
		if !bytes.Equal(rec.Results[i], want[i]) {
			t.Fatalf("result %d = %q, want %q", i, rec.Results[i], want[i])
		}
	}
}

func TestConcurrentAppendsAllSurvive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := journal.Create(path, []byte("meta"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) { errc <- w.Append([]byte(fmt.Sprintf("result-%02d", i))) }(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != n {
		t.Fatalf("%d results, want %d", len(rec.Results), n)
	}
	seen := map[string]bool{}
	for _, r := range rec.Results {
		seen[string(r)] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct results, want %d", len(seen), n)
	}
}
