// Package journal is an append-only, crash-safe write-ahead log of study
// results. The study runner appends one frame per completed app, fsyncing
// each, so a process death at any instant loses at most the app being
// written — never the thousands already measured.
//
// File layout:
//
//	magic   8 bytes  "PINWAL1\n"
//	frame*  [len uint32 LE][crc32c uint32 LE][type 1 byte][payload]
//
// len counts the type byte plus the payload; the CRC32C (Castagnoli, the
// same checksum atomicio sidecars use) covers the same bytes. The first
// frame must be a meta frame (type 0x01) describing the run; every later
// frame is a result frame (type 0x02). Frames are versioned by the magic
// string and the type byte together: an unknown magic or frame type is
// rejected, never guessed at.
//
// Recovery semantics (the torn-tail rule): appends are sequential and
// fsynced, so a crash can only ever leave a *prefix* of the final frame on
// disk. Recover therefore truncates a final frame that is incomplete or
// fails its checksum silently — that is the normal post-crash state — but
// a bad frame with more data after it cannot be explained by a crash and
// is rejected loudly as interior corruption.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	magic = "PINWAL1\n"

	frameMeta   = 0x01
	frameResult = 0x02

	// headerSize is the per-frame prefix: length + checksum.
	headerSize = 8

	// MaxFrame bounds a single frame's (type+payload) length. Real frames
	// are a few KB of JSON; the bound keeps a corrupt length field from
	// provoking a giant allocation during recovery.
	MaxFrame = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrKilled is returned by Append when the crash tap fired: the simulated
// power cut has "killed the process", and the writer accepts nothing more.
var ErrKilled = errors.New("journal: killed by simulated power cut")

// ErrCorrupt marks interior corruption: a frame that fails validation with
// intact data after it, which no crash can produce.
var ErrCorrupt = errors.New("journal: interior corruption")

// ErrNoHeader marks a journal without an intact meta frame. Create fsyncs
// the header before returning, so this means the file is not a journal (or
// died during creation) — there is nothing to resume from.
var ErrNoHeader = errors.New("journal: no intact header frame")

// CrashTap simulates a power cut during the append of result frame i
// (0-based). When kill is true the writer persists only the first
// tornBytes bytes of that frame — any byte prefix is a state a real crash
// can leave — and then refuses all further writes with ErrKilled.
type CrashTap func(i int) (tornBytes int, kill bool)

// Writer appends checksummed frames with per-frame durability. Safe for
// concurrent use.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	n      int // result frames successfully appended
	tap    CrashTap
	killed bool
	closed bool
}

// Create starts a fresh journal at path, writing and fsyncing the magic
// and the meta frame before returning. It refuses to overwrite an existing
// file: a leftover journal is either a resumable run (pass it to Recover)
// or an operator mistake, and clobbering it would destroy completed work.
func Create(path string, meta []byte) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	w := &Writer{f: f}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write magic: %w", err)
	}
	if err := w.writeFrame(frameMeta, meta); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync header: %w", err)
	}
	return w, nil
}

// SetCrashTap installs the fault-injection power-cut tap (nil disables).
func (w *Writer) SetCrashTap(tap CrashTap) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tap = tap
}

// Appended returns the number of result frames this writer has durably
// appended (including, after a resume, the recovered ones).
func (w *Writer) Appended() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Append durably appends one result frame: write, then fsync, so a
// returned nil means the record survives any subsequent crash.
func (w *Writer) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return ErrKilled
	}
	if w.closed {
		return errors.New("journal: append to closed writer")
	}
	if w.tap != nil {
		if torn, kill := w.tap(w.n); kill {
			return w.die(payload, torn)
		}
	}
	if err := w.writeFrame(frameResult, payload); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	w.n++
	return nil
}

// die leaves a torn prefix of the frame on disk and kills the writer —
// the simulated power cut.
func (w *Writer) die(payload []byte, torn int) error {
	w.killed = true
	frame := encodeFrame(frameResult, payload)
	if torn < 0 {
		torn = 0
	}
	if torn > len(frame) {
		torn = len(frame)
	}
	if torn > 0 {
		if _, err := w.f.Write(frame[:torn]); err != nil {
			w.f.Close()
			return fmt.Errorf("journal: torn write: %w", err)
		}
	}
	w.f.Sync()
	w.f.Close()
	return ErrKilled
}

// Close fsyncs and closes the journal. The file stays on disk: a journal
// is the run's durable record, removed only by its owner.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.killed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: sync on close: %w", err)
	}
	return w.f.Close()
}

func (w *Writer) writeFrame(typ byte, payload []byte) error {
	if _, err := w.f.Write(encodeFrame(typ, payload)); err != nil {
		return fmt.Errorf("journal: write frame: %w", err)
	}
	return nil
}

// encodeFrame renders [len][crc32c][type][payload].
func encodeFrame(typ byte, payload []byte) []byte {
	body := make([]byte, headerSize+1+len(payload))
	body[headerSize] = typ
	copy(body[headerSize+1:], payload)
	binary.LittleEndian.PutUint32(body[0:4], uint32(1+len(payload)))
	binary.LittleEndian.PutUint32(body[4:8], crc32.Checksum(body[headerSize:], castagnoli))
	return body
}

// Recovery is the verified content of a journal.
type Recovery struct {
	// Meta is the header frame's payload.
	Meta []byte
	// Results are the verified result payloads, in append order.
	Results [][]byte
	// Truncated reports that a torn tail was dropped; TornBytes is how
	// many trailing bytes it spanned.
	Truncated bool
	TornBytes int64

	// validSize is the byte offset where the verified prefix ends —
	// AppendTo truncates the file here before reopening it for append.
	validSize int64
}

// Recover scans a journal, verifies every frame checksum, truncates a torn
// tail, and returns the verified content. Every byte of Meta and Results
// has passed its CRC: Recover never returns unverified data.
func Recover(path string) (*Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: recover: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("journal: %s: bad magic (not a pinscope journal): %w", path, ErrNoHeader)
	}
	rec := &Recovery{}
	off := int64(len(magic))
	size := int64(len(data))
	first := true
	for off < size {
		avail := size - off
		if avail < headerSize {
			// Partial frame header: only a crash mid-append leaves this.
			rec.truncate(off, size)
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length < 1 || length > MaxFrame {
			// A crash writes a byte prefix of a valid frame, so a fully
			// present length field is always a valid one; garbage here is
			// real corruption, not a torn tail.
			return nil, fmt.Errorf("journal: %s: frame at offset %d has impossible length %d: %w",
				path, off, length, ErrCorrupt)
		}
		end := off + headerSize + length
		if end > size {
			rec.truncate(off, size)
			break
		}
		body := data[off+headerSize : end]
		if crc32.Checksum(body, castagnoli) != wantCRC {
			if end == size {
				// CRC-failing final frame: a torn write that happened to
				// stop at a plausible length. Normal after a crash.
				rec.truncate(off, size)
				break
			}
			return nil, fmt.Errorf("journal: %s: frame at offset %d fails its checksum with %d intact bytes after it: %w",
				path, off, size-end, ErrCorrupt)
		}
		typ, payload := body[0], body[1:]
		switch {
		case first && typ == frameMeta:
			rec.Meta = append([]byte(nil), payload...)
		case !first && typ == frameResult:
			rec.Results = append(rec.Results, append([]byte(nil), payload...))
		default:
			return nil, fmt.Errorf("journal: %s: unexpected frame type %#02x at offset %d: %w",
				path, typ, off, ErrCorrupt)
		}
		first = false
		off = end
		rec.validSize = off
	}
	if first || rec.Meta == nil {
		return nil, fmt.Errorf("journal: %s: %w", path, ErrNoHeader)
	}
	return rec, nil
}

func (r *Recovery) truncate(off, size int64) {
	r.Truncated = true
	r.TornBytes = size - off
}

// AppendTo reopens a recovered journal for appending: the torn tail (if
// any) is cut off at the last verified frame boundary, and the returned
// writer continues numbering after the recovered results.
func (r *Recovery) AppendTo(path string) (*Writer, error) {
	return ResumeWriter(path, len(r.Results), r.validSize)
}

// ResumeWriter reopens a journal for appending after a streaming walk:
// the file is truncated at validSize (cutting any torn tail) and the
// returned writer continues numbering after frames recovered results.
// OpenReader + ResumeWriter is the bounded-memory equivalent of
// Recover + AppendTo: a shard takeover can resume a dead worker's journal
// without ever holding more than one frame in memory.
func ResumeWriter(path string, frames int, validSize int64) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: reopen: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: drop torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync after truncate: %w", err)
	}
	return &Writer{f: f, n: frames}, nil
}

// Reader streams a journal's verified frames one at a time, never holding
// more than a single frame in memory — the walk the sharded study's
// streaming merge and shard-takeover paths are built on. It applies
// exactly Recover's torn-tail rule: for any byte sequence on disk, the
// frames Next yields equal Recovery.Results, a torn tail ends the
// iteration silently (io.EOF with Truncated reporting true), and interior
// corruption — which can only surface mid-iteration, after earlier frames
// were already handed out — fails loudly with ErrCorrupt.
// FuzzJournalRecover holds Reader and Recover to each other.
type Reader struct {
	f    *os.File
	br   *bufio.Reader
	meta []byte

	off       int64 // end of the verified prefix so far
	frames    int   // result frames yielded
	truncated bool
	tornBytes int64
	err       error // sticky terminal state: io.EOF or a real error
}

// OpenReader opens a journal for streaming and verifies the magic and the
// meta frame. Like Recover, it returns ErrNoHeader when the file is not a
// journal or died during creation.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	r := &Reader{f: f, br: bufio.NewReader(f)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.br, head); err != nil || string(head) != magic {
		f.Close()
		return nil, fmt.Errorf("journal: %s: bad magic (not a pinscope journal): %w", path, ErrNoHeader)
	}
	r.off = int64(len(magic))
	typ, payload, err := r.readFrame()
	switch {
	case errors.Is(err, io.EOF):
		// Missing or torn meta frame: died during creation, nothing to
		// resume from. Same rule as Recover.
		f.Close()
		return nil, fmt.Errorf("journal: %s: %w", path, ErrNoHeader)
	case err != nil:
		f.Close()
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	case typ != frameMeta:
		f.Close()
		return nil, fmt.Errorf("journal: %s: unexpected frame type %#02x where meta frame belongs: %w",
			path, typ, ErrCorrupt)
	}
	r.meta = payload
	return r, nil
}

// Meta returns the verified header frame payload.
func (r *Reader) Meta() []byte { return r.meta }

// Next returns the next verified result payload. It returns io.EOF at the
// end of the journal — including after silently dropping a torn tail
// (check Truncated) — and ErrCorrupt on interior corruption.
func (r *Reader) Next() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	typ, payload, err := r.readFrame()
	if err != nil {
		r.err = err
		return nil, err
	}
	if typ != frameResult {
		r.err = fmt.Errorf("journal: unexpected frame type %#02x at offset %d: %w", typ, r.off, ErrCorrupt)
		return nil, r.err
	}
	r.frames++
	return payload, nil
}

// readFrame reads and verifies one frame, applying the torn-tail rule:
// a frame cut short by end-of-file, or one failing its CRC with no byte
// after it, is the normal post-crash state and reads as io.EOF; a bad
// length field or a CRC failure with intact data after it is ErrCorrupt.
func (r *Reader) readFrame() (byte, []byte, error) {
	header := make([]byte, headerSize)
	if n, err := io.ReadFull(r.br, header); err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return 0, nil, io.EOF // clean end on a frame boundary
		}
		r.truncate(int64(n))
		return 0, nil, io.EOF
	}
	length := int64(binary.LittleEndian.Uint32(header[0:4]))
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	if length < 1 || length > MaxFrame {
		// A crash writes a byte prefix of a valid frame, so a fully present
		// length field is always a valid one; garbage here is corruption.
		return 0, nil, fmt.Errorf("journal: frame at offset %d has impossible length %d: %w",
			r.off, length, ErrCorrupt)
	}
	body := make([]byte, length)
	if n, err := io.ReadFull(r.br, body); err != nil {
		r.truncate(headerSize + int64(n))
		return 0, nil, io.EOF
	}
	if crc32.Checksum(body, castagnoli) != wantCRC {
		if _, err := r.br.Peek(1); err != nil {
			// CRC-failing final frame: a torn write that happened to stop
			// at a plausible length. Normal after a crash.
			r.truncate(headerSize + length)
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("journal: frame at offset %d fails its checksum with intact bytes after it: %w",
			r.off, ErrCorrupt)
	}
	r.off += headerSize + length
	return body[0], body[1:], nil
}

func (r *Reader) truncate(torn int64) {
	r.truncated = true
	r.tornBytes = torn
}

// Frames returns the number of result frames yielded so far.
func (r *Reader) Frames() int { return r.frames }

// Truncated reports that the iteration ended at a torn tail; TornBytes is
// how many trailing bytes the tail spanned.
func (r *Reader) Truncated() bool { return r.truncated }

// TornBytes returns the length of the dropped torn tail, if any.
func (r *Reader) TornBytes() int64 { return r.tornBytes }

// ValidSize returns the byte offset where the verified prefix ends — the
// truncation point to hand ResumeWriter when taking over this journal.
func (r *Reader) ValidSize() int64 { return r.off }

// Close releases the underlying file. The iteration state survives Close:
// a takeover can Close the reader and still use Frames/ValidSize.
func (r *Reader) Close() error { return r.f.Close() }
