package netem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"pinscope/internal/tlswire"
)

func TestPipeSendRecv(t *testing.T) {
	c, s := newPipePair(nil)
	want := tlswire.Record{WireType: tlswire.RecHandshake, Length: 42}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.WireType != want.WireType || got.Length != want.Length {
		t.Fatalf("got %+v", got)
	}
}

func TestPipeDrainAfterPeerClose(t *testing.T) {
	c, s := newPipePair(nil)
	c.Send(tlswire.Record{Length: 1})
	c.Send(tlswire.Record{Length: 2})
	c.Close(tlswire.CloseFIN)

	r1, err := s.Recv()
	if err != nil || r1.Length != 1 {
		t.Fatalf("first drain: %v %v", r1, err)
	}
	r2, err := s.Recv()
	if err != nil || r2.Length != 2 {
		t.Fatalf("second drain: %v %v", r2, err)
	}
	_, err = s.Recv()
	var pe *tlswire.PeerClosedError
	if !errors.As(err, &pe) || pe.Flag != tlswire.CloseFIN {
		t.Fatalf("after drain: %v", err)
	}
	if !errors.Is(err, tlswire.ErrPeerClosed) {
		t.Fatal("errors.Is(ErrPeerClosed) false")
	}
}

func TestPipeSendAfterPeerRST(t *testing.T) {
	c, s := newPipePair(nil)
	s.Close(tlswire.CloseRST)
	err := c.Send(tlswire.Record{Length: 9})
	var pe *tlswire.PeerClosedError
	if !errors.As(err, &pe) || pe.Flag != tlswire.CloseRST {
		t.Fatalf("send to reset peer: %v", err)
	}
}

func TestPipeCloseIdempotent(t *testing.T) {
	c, _ := newPipePair(nil)
	if err := c.Close(tlswire.CloseRST); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(tlswire.CloseFIN); err != nil {
		t.Fatal(err)
	}
	// First flag wins.
	if got := c.localFlagLocked(); got != tlswire.CloseRST {
		t.Fatalf("flag after double close: %s", got)
	}
}

func TestPipeRecvUnblocksOnLocalClose(t *testing.T) {
	c, _ := newPipePair(nil)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	c.Close(tlswire.CloseFIN)
	if err := <-done; err == nil {
		t.Fatal("Recv returned nil after local close")
	}
}

func TestFlowCapturesSummariesNotSecrets(t *testing.T) {
	cap := NewCapture()
	fl := cap.newFlow("h.example.com", 1.5)
	c, _ := newPipePair(fl)
	hello := &tlswire.HelloInfo{SNI: "h.example.com", MaxVersion: tlswire.TLS13}
	c.Send(tlswire.Record{WireType: tlswire.RecHandshake, Length: 100, Hello: hello})
	c.Close(tlswire.CloseFIN)

	if fl.Dst != "h.example.com" || fl.At != 1.5 {
		t.Fatalf("flow metadata: %+v", fl)
	}
	if fl.SNI() != "h.example.com" {
		t.Fatalf("SNI %q", fl.SNI())
	}
	recs := fl.Records()
	if len(recs) != 1 || !recs[0].FromClient {
		t.Fatalf("records: %+v", recs)
	}
	cf, _ := fl.CloseFlags()
	if cf != tlswire.CloseFIN {
		t.Fatalf("client close %s", cf)
	}
}

func TestNetworkListenAndDial(t *testing.T) {
	n := New()
	served := make(chan tlswire.Record, 1)
	n.Listen("svc.example.com", func(tr tlswire.Transport) {
		r, err := tr.Recv()
		if err == nil {
			served <- r
		}
	})
	cap := NewCapture()
	tr, err := n.Dial("svc.example.com", DialOpts{At: 2, Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(tlswire.Record{Length: 7})
	tr.Close(tlswire.CloseFIN)
	n.WaitIdle()
	if r := <-served; r.Length != 7 {
		t.Fatalf("server saw %+v", r)
	}
	if len(cap.Flows()) != 1 {
		t.Fatalf("%d flows", len(cap.Flows()))
	}
}

type recordingInterceptor struct {
	mu    sync.Mutex
	hosts []string
}

func (ri *recordingInterceptor) HandleConn(cs tlswire.Transport, dst string, n *Network) {
	ri.mu.Lock()
	ri.hosts = append(ri.hosts, dst)
	ri.mu.Unlock()
	cs.Close(tlswire.CloseRST)
}

func TestInterceptorReceivesAllDials(t *testing.T) {
	n := New()
	ri := &recordingInterceptor{}
	n.SetInterceptor(ri)
	// Even unknown hosts route to the interceptor (it owns the routing).
	tr, err := n.Dial("anything.example.com", DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close(tlswire.CloseFIN)
	n.WaitIdle()
	if len(ri.hosts) != 1 || ri.hosts[0] != "anything.example.com" {
		t.Fatalf("interceptor hosts: %v", ri.hosts)
	}
}

func TestDialDirectBypassesInterceptor(t *testing.T) {
	n := New()
	ri := &recordingInterceptor{}
	n.SetInterceptor(ri)
	hit := make(chan bool, 1)
	n.Listen("direct.example.com", func(tr tlswire.Transport) { hit <- true })
	tr, err := n.DialDirect("direct.example.com")
	if err != nil {
		t.Fatal(err)
	}
	tr.Close(tlswire.CloseFIN)
	n.WaitIdle()
	if !<-hit {
		t.Fatal("direct handler not invoked")
	}
	if len(ri.hosts) != 0 {
		t.Fatal("interceptor saw a direct dial")
	}
}

func TestCaptureNilSafe(t *testing.T) {
	var c *Capture
	if c.Flows() != nil {
		t.Fatal("nil capture returned flows")
	}
}

func TestPipeOrderedDeliveryProperty(t *testing.T) {
	// Every record sent before a close arrives, in order. The sender here
	// has no concurrent receiver, so the burst is capped at pipeBuf — the
	// turn-based protocol's own bound on unacknowledged records (see the
	// pipeBuf comment).
	f := func(lengths []uint8) bool {
		if len(lengths) > pipeBuf {
			lengths = lengths[:pipeBuf]
		}
		c, s := newPipePair(nil)
		for i, l := range lengths {
			if err := c.Send(tlswire.Record{Length: int(l) + i<<8}); err != nil {
				return false
			}
		}
		c.Close(tlswire.CloseFIN)
		for i, l := range lengths {
			r, err := s.Recv()
			if err != nil || r.Length != int(l)+i<<8 {
				return false
			}
		}
		_, err := s.Recv()
		return err != nil // drained, then closed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureReleaseRecyclesBuffers(t *testing.T) {
	cap1 := NewCapture()
	f := cap1.newFlow("pool.example.com", 1)
	f.addRecord(true, tlswire.Record{Length: 11})
	f.addRecord(false, tlswire.Record{Length: 22})
	recs := f.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records before release", len(recs))
	}
	cap1.Release()
	if got := f.Records(); len(got) != 0 {
		t.Fatalf("released flow still exposes %d records", len(got))
	}
	if got := cap1.Flows(); len(got) != 0 {
		t.Fatalf("released capture still exposes %d flows", len(got))
	}
	// The snapshot taken before the release is untouched: Records copies.
	if recs[0].Length != 11 || recs[1].Length != 22 {
		t.Fatal("pre-release snapshot was clobbered by Release")
	}
	// Double release is a no-op.
	cap1.Release()
}

func TestAddReplayedFlow(t *testing.T) {
	snap := []tlswire.Summary{
		{FromClient: true, WireType: tlswire.RecHandshake, Length: 321},
		{FromClient: false, WireType: tlswire.RecAppData, Length: 55},
	}
	c := NewCapture()
	c.AddReplayedFlow("replay.example.com", 7.5, snap, tlswire.CloseFIN, tlswire.CloseFIN)
	flows := c.Flows()
	if len(flows) != 1 {
		t.Fatalf("got %d flows", len(flows))
	}
	f := flows[0]
	if f.Dst != "replay.example.com" || f.At != 7.5 {
		t.Fatalf("flow identity %q @ %v", f.Dst, f.At)
	}
	got := f.Records()
	if len(got) != 2 || got[0].Length != 321 || got[1].Length != 55 {
		t.Fatalf("replayed records %+v", got)
	}
	cc, sc := f.CloseFlags()
	if cc != tlswire.CloseFIN || sc != tlswire.CloseFIN {
		t.Fatalf("close flags %v/%v", cc, sc)
	}
	// The replayed flow owns its copy: mutating the snapshot afterwards
	// must not reach the capture.
	snap[0].Length = 999
	if f.Records()[0].Length != 321 {
		t.Fatal("replayed flow aliases the caller's snapshot")
	}
}

func TestLastFlow(t *testing.T) {
	var nilCap *Capture
	if nilCap.Last() != nil {
		t.Fatal("nil capture Last != nil")
	}
	c := NewCapture()
	if c.Last() != nil {
		t.Fatal("empty capture Last != nil")
	}
	c.newFlow("one.example.com", 0)
	f2 := c.newFlow("two.example.com", 1)
	if c.Last() != f2 {
		t.Fatal("Last is not the most recent flow")
	}
}
