package netem

import (
	"errors"
	"testing"

	"pinscope/internal/tlswire"
)

// faultServer echoes nothing; it drains records until the peer goes away and
// reports how many it received.
func faultServer(got *int) Handler {
	return func(tr tlswire.Transport) {
		for {
			if _, err := tr.Recv(); err != nil {
				return
			}
			*got++
		}
	}
}

func TestInjectedResetObservedServerSideOnly(t *testing.T) {
	// A mid-stream injected RST must look like a spoofed/middlebox reset on
	// the trace: the teardown arrives from the server direction, the client
	// never records a close of its own, and the lost record is not captured.
	n := New()
	received := 0
	n.Listen("rst.example.com", faultServer(&received))
	cap := NewCapture()
	tr, err := n.Dial("rst.example.com", DialOpts{
		Capture: cap,
		Faults:  ConnFaults{ResetAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(tlswire.Record{Length: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(tlswire.Record{Length: 2}); err != nil {
		t.Fatal(err)
	}
	err = tr.Send(tlswire.Record{Length: 3})
	var pe *tlswire.PeerClosedError
	if !errors.As(err, &pe) || pe.Flag != tlswire.CloseRST {
		t.Fatalf("third send past the budget: %v", err)
	}
	tr.Close(tlswire.CloseFIN) // idempotent; the reset already closed us
	n.WaitIdle()

	fl := cap.Flows()[0]
	if got := len(fl.Records()); got != 2 {
		t.Fatalf("captured %d records, want 2 (the reset record is lost)", got)
	}
	clientClose, serverClose := fl.CloseFlags()
	if clientClose != tlswire.CloseNone {
		t.Fatalf("client close %s, want none (client never tore down)", clientClose)
	}
	if serverClose != tlswire.CloseRST {
		t.Fatalf("server close %s, want RST", serverClose)
	}
	if received != 2 {
		t.Fatalf("server received %d records, want 2", received)
	}
}

func TestCaptureDropLeavesDeliveryIntact(t *testing.T) {
	// A tap drop is pure observation loss: the endpoints exchange every
	// record, the capture just misses some. Drop decisions are index-stable
	// against the full record stream.
	n := New()
	received := 0
	n.Listen("drop.example.com", faultServer(&received))
	cap := NewCapture()
	tr, err := n.Dial("drop.example.com", DialOpts{
		Capture: cap,
		Faults:  ConnFaults{DropCaptureRecord: func(i int) bool { return i == 1 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Send(tlswire.Record{Length: 10 + i}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close(tlswire.CloseFIN)
	n.WaitIdle()

	if received != 3 {
		t.Fatalf("server received %d records, want 3 (delivery must be unaffected)", received)
	}
	recs := cap.Flows()[0].Records()
	if len(recs) != 2 || recs[0].Length != 10 || recs[1].Length != 12 {
		t.Fatalf("captured %+v, want records 10 and 12 with 11 dropped", recs)
	}
	clientClose, _ := cap.Flows()[0].CloseFlags()
	if clientClose != tlswire.CloseFIN {
		t.Fatalf("client close %s; drops must not hide the teardown", clientClose)
	}
}

func TestCaptureTailCutHidesLaterRecordsAndCloses(t *testing.T) {
	// Once the capture window cuts off, later records AND the teardown go
	// unobserved — the flow ends inconclusive even though the connection
	// closed in an orderly way.
	n := New()
	received := 0
	n.Listen("cut.example.com", faultServer(&received))
	cap := NewCapture()
	tr, err := n.Dial("cut.example.com", DialOpts{
		Capture: cap,
		Faults:  ConnFaults{CaptureTailAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tr.Send(tlswire.Record{Length: i}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close(tlswire.CloseFIN)
	n.WaitIdle()

	if received != 4 {
		t.Fatalf("server received %d records, want 4", received)
	}
	fl := cap.Flows()[0]
	if got := len(fl.Records()); got != 2 {
		t.Fatalf("captured %d records, want 2", got)
	}
	clientClose, serverClose := fl.CloseFlags()
	if clientClose != tlswire.CloseNone || serverClose != tlswire.CloseNone {
		t.Fatalf("closes %s/%s observed after the window cut", clientClose, serverClose)
	}
}

// tapLateDials faults dials from logical second 1 on with a one-record
// reset budget; deterministic in (host, at) as the interface requires.
type tapLateDials struct{}

func (tapLateDials) ConnFaults(host string, at float64) ConnFaults {
	if at >= 1 {
		return ConnFaults{ResetAfter: 1}
	}
	return ConnFaults{}
}

func TestFaultTapConsultedOnDialNotDialDirect(t *testing.T) {
	// The network-wide tap faults Dials; DialDirect legs (the proxy's
	// upstream side, beyond the monitoring point) are never faulted.
	n := New()
	n.Listen("tap.example.com", func(tr tlswire.Transport) {
		for {
			if _, err := tr.Recv(); err != nil {
				return
			}
		}
	})
	n.SetFaultTap(tapLateDials{})

	send3 := func(tr tlswire.Transport) error {
		for i := 0; i < 3; i++ {
			if err := tr.Send(tlswire.Record{Length: i}); err != nil {
				return err
			}
		}
		return nil
	}
	tr1, _ := n.Dial("tap.example.com", DialOpts{At: 0})
	if err := send3(tr1); err != nil {
		t.Fatalf("unfaulted dial: %v", err)
	}
	tr1.Close(tlswire.CloseFIN)
	tr2, _ := n.Dial("tap.example.com", DialOpts{At: 1})
	if err := send3(tr2); err == nil {
		t.Fatal("faulted dial survived past its reset budget")
	}
	tr2.Close(tlswire.CloseFIN)
	trd, err := n.DialDirect("tap.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := send3(trd); err != nil {
		t.Fatalf("DialDirect leg was faulted: %v", err)
	}
	trd.Close(tlswire.CloseFIN)
	n.WaitIdle()
}
