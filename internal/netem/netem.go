// Package netem provides the in-memory network substrate for the study: an
// emulated WiFi segment where test devices dial destination hosts, every
// record crossing the client's access link is captured (the paper's
// tcpdump-at-the-hotspot vantage point), and an interceptor — the MITM
// proxy — can be inserted in front of every connection.
//
// Transports are turn-based record pipes. A passive capture stores only
// tlswire.Summary views of records, never endpoint-private content, so the
// analysis pipeline genuinely cannot cheat by peeking at plaintext.
package netem

import (
	"fmt"
	"sync"

	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// Flow is one captured TCP/TLS connection as seen from the monitoring
// point: destination, timing, the observable record sequence, and how each
// side closed.
type Flow struct {
	mu sync.Mutex

	// Dst is the hostname the client dialed (the capture's flow key; in
	// practice derived from DNS+SNI, and >99% of study traffic had SNI).
	Dst string
	// At is the logical time (seconds since app launch) of the dial.
	At float64

	records     []tlswire.Summary
	recBox      *[]tlswire.Summary // pooled backing array, nil once released
	clientClose tlswire.CloseFlag
	serverClose tlswire.CloseFlag

	// Monitoring-point fault injection: seen counts every record offered to
	// the tap (dropped or not) so drop decisions are index-stable; tailCut
	// is set once the tap stops recording (truncated capture).
	faults  ConnFaults
	seen    int
	tailCut bool
}

// Records returns a snapshot of the captured record summaries.
func (f *Flow) Records() []tlswire.Summary {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]tlswire.Summary, len(f.records))
	copy(out, f.records)
	return out
}

// SNI returns the server name from the captured ClientHello, or "".
func (f *Flow) SNI() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.records {
		if r.Hello != nil {
			return r.Hello.SNI
		}
	}
	return ""
}

// ClientHello returns the captured ClientHello, or nil.
func (f *Flow) ClientHello() *tlswire.HelloInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.records {
		if r.Hello != nil {
			return r.Hello
		}
	}
	return nil
}

// NegotiatedVersion returns the version from the captured ServerHello, or 0.
func (f *Flow) NegotiatedVersion() tlswire.Version {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.records {
		if r.SHello != nil {
			return r.SHello.Version
		}
	}
	return 0
}

// ObservedChain returns the certificate chain if it crossed the wire in
// cleartext (TLS <= 1.2 only), else nil.
func (f *Flow) ObservedChain() pki.Chain {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.records {
		if len(r.Certs) > 0 {
			return r.Certs
		}
	}
	return nil
}

// CloseFlags returns how the client and server sides ended.
func (f *Flow) CloseFlags() (client, server tlswire.CloseFlag) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clientClose, f.serverClose
}

func (f *Flow) addRecord(fromClient bool, r tlswire.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := f.seen
	f.seen++
	if f.faults.CaptureTailAfter > 0 && idx >= f.faults.CaptureTailAfter {
		// Monitoring stopped mid-flow (window cut / pcap truncation): the
		// record crosses but is never captured, nor is any later close.
		f.tailCut = true
		return
	}
	if f.faults.DropCaptureRecord != nil && f.faults.DropCaptureRecord(idx) {
		return // tap drop: delivery unaffected, observation lost
	}
	f.records = append(f.records, r.Summarize(fromClient))
}

func (f *Flow) addClose(fromClient bool, flag tlswire.CloseFlag) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tailCut {
		return // capture ended before the teardown was observed
	}
	if fromClient {
		if f.clientClose == tlswire.CloseNone {
			f.clientClose = flag
		}
	} else {
		if f.serverClose == tlswire.CloseNone {
			f.serverClose = flag
		}
	}
}

// Capture accumulates the flows of one experiment run.
type Capture struct {
	mu    sync.Mutex
	flows []*Flow
}

// flowRecPool recycles the record backing arrays of released captures. A
// study runs tens of thousands of flows whose summaries are read once by
// the analysis layer (which copies what it keeps) and then discarded;
// recycling the arrays keeps that churn out of the allocator. Recycled
// arrays may briefly pin Summary-referenced objects (hello infos, certs),
// all of which are world-owned and alive for the study anyway.
var flowRecPool = sync.Pool{
	New: func() any {
		s := make([]tlswire.Summary, 0, 16)
		return &s
	},
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// Flows returns the captured flows in dial order.
func (c *Capture) Flows() []*Flow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Flow, len(c.flows))
	copy(out, c.flows)
	return out
}

func (c *Capture) newFlow(dst string, at float64) *Flow {
	f := &Flow{Dst: dst, At: at}
	if c != nil {
		box := flowRecPool.Get().(*[]tlswire.Summary)
		f.records = (*box)[:0]
		f.recBox = box
		c.mu.Lock()
		c.flows = append(c.flows, f)
		c.mu.Unlock()
	}
	return f
}

// Last returns the most recently added flow, or nil. Dials are issued
// sequentially from a run's measurement goroutine, so immediately after a
// captured Dial this is that dial's flow.
func (c *Capture) Last() *Flow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.flows) == 0 {
		return nil
	}
	return c.flows[len(c.flows)-1]
}

// AddReplayedFlow appends a flow whose records come from a memoized
// handshake outcome rather than a live connection: dst and at are the
// would-be dial's, records and close flags are the snapshot's. The records
// are copied into the flow's (pooled) buffer, so the caller's slice is not
// retained.
func (c *Capture) AddReplayedFlow(dst string, at float64, records []tlswire.Summary, clientClose, serverClose tlswire.CloseFlag) {
	f := c.newFlow(dst, at)
	f.mu.Lock()
	f.records = append(f.records, records...)
	f.clientClose = clientClose
	f.serverClose = serverClose
	f.seen = len(records)
	f.mu.Unlock()
}

// Release returns the capture's pooled record buffers and drops its flows.
// Call it only once the consuming analysis is done with the capture AND the
// network is idle (no handler still appending); the flows' Records() views
// become empty afterwards. Releasing is optional — unreleased captures are
// simply garbage collected.
func (c *Capture) Release() {
	if c == nil {
		return
	}
	c.mu.Lock()
	flows := c.flows
	c.flows = nil
	c.mu.Unlock()
	for _, f := range flows {
		f.mu.Lock()
		box := f.recBox
		if box != nil {
			*box = f.records[:0]
			f.recBox = nil
			f.records = nil
		}
		f.mu.Unlock()
		if box != nil {
			flowRecPool.Put(box)
		}
	}
}

// Handler serves one inbound connection.
type Handler func(t tlswire.Transport)

// ConnFaults are the deterministic fault decisions for one connection. The
// zero value injects nothing.
type ConnFaults struct {
	// ResetAfter, when > 0, tears the connection down with a TCP RST once
	// that many records have crossed it — small values kill the handshake
	// mid-flight, the paper's confounding connection failures (§4.2.2).
	ResetAfter int
	// DropCaptureRecord, when non-nil, reports whether the monitoring tap
	// misses record index i. Delivery is unaffected: the endpoints see the
	// record, the capture does not (pcap drop at the hotspot).
	DropCaptureRecord func(i int) bool
	// CaptureTailAfter, when > 0, stops the tap recording after that many
	// records; later records AND close flags go unobserved, yielding the
	// truncated inconclusive flows of a capture window cut.
	CaptureTailAfter int
}

func (cf ConnFaults) merge(other ConnFaults) ConnFaults {
	if cf.ResetAfter == 0 {
		cf.ResetAfter = other.ResetAfter
	}
	if cf.DropCaptureRecord == nil {
		cf.DropCaptureRecord = other.DropCaptureRecord
	}
	if cf.CaptureTailAfter == 0 {
		cf.CaptureTailAfter = other.CaptureTailAfter
	}
	return cf
}

// FaultTap decides per-connection fault injection for dials on a network.
// Implementations must be safe for concurrent use and deterministic in
// (host, at) so studies stay reproducible.
type FaultTap interface {
	ConnFaults(host string, at float64) ConnFaults
}

// Interceptor sits in front of every intercepted dial; the MITM proxy
// implements it. It must eventually close clientSide.
type Interceptor interface {
	HandleConn(clientSide tlswire.Transport, dstHost string, net *Network)
}

// Network is the emulated network segment.
type Network struct {
	mu          sync.Mutex
	servers     map[string]Handler
	interceptor Interceptor
	faultTap    FaultTap
	wg          sync.WaitGroup
}

// New returns an empty network.
func New() *Network {
	return &Network{servers: make(map[string]Handler)}
}

// Listen registers the handler for host, replacing any previous one.
func (n *Network) Listen(host string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[host] = h
}

// SetInterceptor installs (or with nil removes) the interception proxy for
// subsequent Dials.
func (n *Network) SetInterceptor(i Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.interceptor = i
}

// SetFaultTap installs (or with nil removes) the fault-injection tap
// consulted on every subsequent Dial. DialDirect legs — the proxy's
// upstream side, beyond the monitoring point — are never faulted.
func (n *Network) SetFaultTap(t FaultTap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultTap = t
}

// HasInterceptor reports whether an interception proxy is installed —
// i.e. whether subsequent Dials terminate at the MITM instead of the
// genuine destination. Handshake memo keys include this bit.
func (n *Network) HasInterceptor() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.interceptor != nil
}

// HasFaultTap reports whether a fault-injection tap is installed. Runs on
// a tapped network must bypass handshake memoization so injected faults
// hit real handshakes.
func (n *Network) HasFaultTap() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultTap != nil
}

// HasHost reports whether host is served.
func (n *Network) HasHost(host string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.servers[host]
	return ok
}

// DialOpts parameterize a dial.
type DialOpts struct {
	// At is the logical dial time in seconds since app launch.
	At float64
	// Capture, when non-nil, records the client-side leg of this
	// connection.
	Capture *Capture
	// Faults injects per-connection faults on top of the network's fault
	// tap; caller-set fields win over tap decisions.
	Faults ConnFaults
}

// Dial opens a connection to host, routed through the interceptor if one
// is installed. The returned transport is the client side; the caller must
// Close it (closing is idempotent, so deferring a FIN is always safe).
func (n *Network) Dial(host string, opts DialOpts) (tlswire.Transport, error) {
	n.mu.Lock()
	interceptor := n.interceptor
	tap := n.faultTap
	handler, ok := n.servers[host]
	n.mu.Unlock()

	if interceptor == nil && !ok {
		return nil, fmt.Errorf("netem: no route to host %q", host)
	}

	faults := opts.Faults
	if tap != nil {
		faults = faults.merge(tap.ConnFaults(host, opts.At))
	}
	var flow *Flow
	if opts.Capture != nil {
		flow = opts.Capture.newFlow(host, opts.At)
		flow.faults = faults
	}
	client, server := newPipePair(flow)
	if faults.ResetAfter > 0 {
		st := &resetState{budget: faults.ResetAfter}
		client.reset = st
		server.reset = st
	}

	n.wg.Add(1)
	if interceptor != nil {
		go func() {
			defer n.wg.Done()
			interceptor.HandleConn(server, host, n)
		}()
	} else {
		go func() {
			defer n.wg.Done()
			defer server.Close(tlswire.CloseFIN)
			handler(server)
		}()
	}
	return client, nil
}

// DialDirect bypasses the interceptor — the proxy uses it for its upstream
// leg (which the monitoring point does not capture).
func (n *Network) DialDirect(host string) (tlswire.Transport, error) {
	n.mu.Lock()
	handler, ok := n.servers[host]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netem: no route to host %q", host)
	}
	client, server := newPipePair(nil)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer server.Close(tlswire.CloseFIN)
		handler(server)
	}()
	return client, nil
}

// WaitIdle blocks until every spawned handler and interceptor goroutine has
// returned. Callers must close all client transports first.
func (n *Network) WaitIdle() { n.wg.Wait() }

// --- record pipes ---------------------------------------------------------

// pipeBuf sizes each direction's record channel. The protocol is
// turn-based: the longest unacknowledged burst is the TLS 1.3 server
// flight (ServerHello, CCS, certificate record, Finished) plus session
// tickets, well under 16 records, so a small buffer never deadlocks — it
// just applies backpressure. At the study's connection volume the old
// 128-record channels were a measurable share of allocations (two channels
// per connection).
const pipeBuf = 16

// resetState is the shared record budget of a connection carrying an
// injected mid-stream RST; both pipe ends draw from it.
type resetState struct {
	mu     sync.Mutex
	budget int
}

// spend consumes one record from the budget and reports whether the
// connection must be reset instead of delivering it.
func (r *resetState) spend() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget <= 0 {
		return true
	}
	r.budget--
	return false
}

type pipe struct {
	fromClient bool
	out        chan tlswire.Record
	in         chan tlswire.Record

	localDone chan struct{}
	peerDone  chan struct{}

	reset *resetState

	mu        sync.Mutex
	localFlag tlswire.CloseFlag
	peer      *pipe
	flow      *Flow
}

// newPipePair returns the client and server ends of a connection, tapped
// into flow (which may be nil for uncaptured legs).
func newPipePair(flow *Flow) (client, server *pipe) {
	c2s := make(chan tlswire.Record, pipeBuf)
	s2c := make(chan tlswire.Record, pipeBuf)
	client = &pipe{
		fromClient: true,
		out:        c2s, in: s2c,
		localDone: make(chan struct{}),
		flow:      flow,
	}
	server = &pipe{
		fromClient: false,
		out:        s2c, in: c2s,
		localDone: make(chan struct{}),
		flow:      flow,
	}
	client.peerDone = server.localDone
	server.peerDone = client.localDone
	client.peer = server
	server.peer = client
	return client, server
}

func (p *pipe) Send(r tlswire.Record) error {
	select {
	case <-p.localDone:
		return &tlswire.PeerClosedError{Flag: p.localFlagLocked()}
	case <-p.peerDone:
		return &tlswire.PeerClosedError{Flag: p.peer.localFlagLocked()}
	default:
	}
	if p.reset != nil && p.reset.spend() {
		// Injected network reset: the record is lost and both ends go down
		// (closing wakes any peer blocked in Recv, so no goroutine strands).
		// The monitoring point sees the RST arrive from the server
		// direction — the client never sent a teardown of its own, so the
		// flow stays inconclusive instead of mimicking a client-side pin
		// rejection, exactly like a spoofed/middlebox RST on a real trace.
		if p.flow != nil {
			p.flow.addClose(false, tlswire.CloseRST)
		}
		p.peer.close(tlswire.CloseRST, false)
		p.close(tlswire.CloseRST, false)
		return &tlswire.PeerClosedError{Flag: tlswire.CloseRST}
	}
	if p.flow != nil {
		p.flow.addRecord(p.fromClient, r)
	}
	select {
	case p.out <- r:
		return nil
	case <-p.peerDone:
		return &tlswire.PeerClosedError{Flag: p.peer.localFlagLocked()}
	}
}

func (p *pipe) Recv() (tlswire.Record, error) {
	select {
	case r := <-p.in:
		return r, nil
	default:
	}
	select {
	case r := <-p.in:
		return r, nil
	case <-p.peerDone:
		// Final drain: the peer may have sent before closing.
		select {
		case r := <-p.in:
			return r, nil
		default:
			return tlswire.Record{}, &tlswire.PeerClosedError{Flag: p.peer.localFlagLocked()}
		}
	case <-p.localDone:
		return tlswire.Record{}, &tlswire.PeerClosedError{Flag: p.localFlagLocked()}
	}
}

func (p *pipe) Close(flag tlswire.CloseFlag) error { return p.close(flag, true) }

// close shuts the pipe end down; record controls whether the monitoring
// point observes the teardown (injected resets record their own
// server-direction observation instead).
func (p *pipe) close(flag tlswire.CloseFlag, record bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.localDone:
		return nil // idempotent
	default:
	}
	p.localFlag = flag
	if record && p.flow != nil {
		p.flow.addClose(p.fromClient, flag)
	}
	close(p.localDone)
	return nil
}

func (p *pipe) localFlagLocked() tlswire.CloseFlag {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.localFlag
}
