// Package advisor turns the study's findings into per-destination pinning
// guidance, the "better set of guidelines for developers" the paper's
// discussion calls for (§5.7). The rules condense the paper's observations
// and the sources it builds on (OWASP MASVS, Oltrogge et al.'s
// to-pin-or-not-to-pin criteria, Android's NSC documentation):
//
//   - pin what you control: first-party destinations where the same entity
//     ships the app and operates the server are the safe case (§2.1);
//   - never hand-pin third-party destinations — their operators rotate
//     certificates on their own schedule, and their SDKs pin themselves;
//   - prefer CA pins or SPKI pins with a backup over raw leaf certificates
//     (§5.3.3 shows raw-cert pinning survives only through key reuse);
//   - on Android, declare pins in the Network Security Configuration with
//     an expiration instead of code (§4.1.1), and never set overridePins;
//   - keep the policy consistent across platforms (§5.1/§5.7).
package advisor

import (
	"fmt"
	"sort"
)

// Strategy is a recommended pinning mechanism.
type Strategy int

const (
	// StrategyNone: do not pin this destination.
	StrategyNone Strategy = iota
	// StrategyCAPin: pin the issuing CA's SPKI plus a backup CA.
	StrategyCAPin
	// StrategySPKIWithBackup: pin the leaf SPKI plus a backup key.
	StrategySPKIWithBackup
)

func (s Strategy) String() string {
	switch s {
	case StrategyCAPin:
		return "pin issuing-CA SPKI (+backup CA)"
	case StrategySPKIWithBackup:
		return "pin leaf SPKI (+backup key)"
	}
	return "do not pin"
}

// Destination describes one host an app contacts, as the analyses see it.
type Destination struct {
	Host string
	// FirstParty: the app's developer controls the destination (whois/name
	// attribution, as in Figure 5).
	FirstParty bool
	// PinnedHere / PinnedOnSibling: current policy on this platform and on
	// the other platform's build of the same product.
	PinnedHere      bool
	PinnedOnSibling bool
	// SiblingContacts: the other platform's build talks to this host.
	SiblingContacts bool
	// CarriesCredentials / CarriesPII: what flows over the connection.
	CarriesCredentials bool
	CarriesPII         bool
	// KeyRotationFrequent: operator rotates keys (not just certs) often,
	// which makes leaf pinning a maintenance hazard.
	KeyRotationFrequent bool
}

// Profile is the per-app input.
type Profile struct {
	AppID string
	// Android apps should carry pins declaratively in the NSC.
	Android bool
	// SensitiveCategory: finance/health/dating etc. — the categories the
	// study found pinning concentrated in (Tables 4, 5).
	SensitiveCategory bool
	Destinations      []Destination
}

// Recommendation is the advice for one destination.
type Recommendation struct {
	Host      string
	Pin       bool
	Strategy  Strategy
	Mechanism string // "NSC pin-set" on Android, "pinning delegate" on iOS
	Rationale []string
	Warnings  []string
}

// Advise produces per-destination recommendations, sorted by host.
func Advise(p Profile) []Recommendation {
	var out []Recommendation
	for _, d := range p.Destinations {
		out = append(out, adviseOne(p, d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

func adviseOne(p Profile, d Destination) Recommendation {
	rec := Recommendation{Host: d.Host}
	if p.Android {
		rec.Mechanism = "NSC pin-set with expiration"
	} else {
		rec.Mechanism = "URLSession pinning delegate"
	}

	if !d.FirstParty {
		rec.Strategy = StrategyNone
		rec.Rationale = append(rec.Rationale,
			"third-party destination: its operator rotates certificates on their own schedule; pinning it risks breaking the app (§2.1)")
		if d.PinnedHere {
			rec.Warnings = append(rec.Warnings,
				"currently pinned by app code; if the pin comes from the vendor SDK leave it to the SDK, otherwise remove it")
		}
		return rec
	}

	// First-party destination.
	sensitive := d.CarriesCredentials || d.CarriesPII || p.SensitiveCategory
	if !sensitive {
		rec.Strategy = StrategyNone
		rec.Rationale = append(rec.Rationale,
			"first-party but low-sensitivity traffic: standard PKI validation suffices; pinning adds maintenance risk without a matching threat (§1)")
	} else {
		rec.Pin = true
		if d.KeyRotationFrequent {
			rec.Strategy = StrategyCAPin
			rec.Rationale = append(rec.Rationale,
				"keys rotate frequently: pin the issuing CA so server-side renewal never strands shipped app versions (§5.3.2)")
		} else {
			rec.Strategy = StrategySPKIWithBackup
			rec.Rationale = append(rec.Rationale,
				"developer controls both endpoints: leaf SPKI pinning with a backup key gives the strongest guarantee while surviving certificate renewal (§5.3.3)")
		}
		rec.Rationale = append(rec.Rationale,
			"never embed the raw certificate: renewals must not require app updates (§5.3.3)")
		if p.Android {
			rec.Rationale = append(rec.Rationale,
				"declare the pin-set in the Network Security Configuration with an expiration date, not in code (§4.1.1); never combine it with overridePins")
		}
	}

	// Cross-platform consistency (§5.1/§5.7): the reasoning behind pinning
	// is platform-independent.
	switch {
	case rec.Pin && d.SiblingContacts && !d.PinnedOnSibling:
		rec.Warnings = append(rec.Warnings,
			"the other platform's build contacts this host unpinned: align the policies (§5.7)")
	case !rec.Pin && d.PinnedOnSibling:
		rec.Warnings = append(rec.Warnings,
			"the other platform's build pins this host: either both builds face the threat or neither does (§5.7)")
	}
	if d.PinnedHere && !rec.Pin {
		rec.Warnings = append(rec.Warnings, "currently pinned against this advice")
	}
	if !d.PinnedHere && rec.Pin {
		rec.Warnings = append(rec.Warnings, "currently NOT pinned despite sensitive first-party traffic")
	}
	return rec
}

// Summary aggregates recommendations for reporting.
type Summary struct {
	Destinations   int
	RecommendPin   int
	Inconsistent   int // cross-platform warnings
	AgainstCurrent int // current policy contradicts the advice
}

// Summarize tallies a recommendation list.
func Summarize(recs []Recommendation) Summary {
	var s Summary
	for _, r := range recs {
		s.Destinations++
		if r.Pin {
			s.RecommendPin++
		}
		for _, w := range r.Warnings {
			switch {
			case contains(w, "other platform"):
				s.Inconsistent++
			case contains(w, "currently"):
				s.AgainstCurrent++
			}
		}
	}
	return s
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// String renders one recommendation compactly.
func (r Recommendation) String() string {
	return fmt.Sprintf("%s: %s via %s", r.Host, r.Strategy, r.Mechanism)
}
