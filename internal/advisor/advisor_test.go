package advisor

import (
	"strings"
	"testing"
)

func TestThirdPartyNeverPinned(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.a", Android: true, SensitiveCategory: true,
		Destinations: []Destination{
			{Host: "tracker.example.net", FirstParty: false, CarriesPII: true},
		},
	})
	if len(recs) != 1 || recs[0].Pin || recs[0].Strategy != StrategyNone {
		t.Fatalf("recs: %+v", recs)
	}
}

func TestThirdPartyAlreadyPinnedWarns(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.a",
		Destinations: []Destination{
			{Host: "t.example.net", PinnedHere: true},
		},
	})
	if len(recs[0].Warnings) == 0 || !strings.Contains(recs[0].Warnings[0], "SDK") {
		t.Fatalf("warnings: %v", recs[0].Warnings)
	}
}

func TestSensitiveFirstPartyGetsSPKIWithBackup(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.bank", Android: true, SensitiveCategory: true,
		Destinations: []Destination{
			{Host: "api.bank.com", FirstParty: true, CarriesCredentials: true},
		},
	})
	r := recs[0]
	if !r.Pin || r.Strategy != StrategySPKIWithBackup {
		t.Fatalf("rec: %+v", r)
	}
	if r.Mechanism != "NSC pin-set with expiration" {
		t.Fatalf("mechanism: %q", r.Mechanism)
	}
	joined := strings.Join(r.Rationale, " | ")
	if !strings.Contains(joined, "overridePins") {
		t.Fatalf("Android rationale missing NSC guidance: %s", joined)
	}
	// Not currently pinned: should warn.
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "NOT pinned") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing unpinned warning: %v", r.Warnings)
	}
}

func TestFrequentKeyRotationPrefersCAPin(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.shop",
		Destinations: []Destination{
			{Host: "api.shop.com", FirstParty: true, CarriesPII: true, KeyRotationFrequent: true},
		},
	})
	if recs[0].Strategy != StrategyCAPin {
		t.Fatalf("strategy: %v", recs[0].Strategy)
	}
	if recs[0].Mechanism != "URLSession pinning delegate" {
		t.Fatalf("iOS mechanism: %q", recs[0].Mechanism)
	}
}

func TestLowSensitivityFirstPartyNotPinned(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.game",
		Destinations: []Destination{
			{Host: "cdn.game.com", FirstParty: true},
		},
	})
	if recs[0].Pin {
		t.Fatalf("low-sensitivity CDN pinned: %+v", recs[0])
	}
}

func TestCrossPlatformInconsistencyWarnings(t *testing.T) {
	// Recommended pin here, sibling contacts host unpinned.
	recs := Advise(Profile{
		AppID: "com.x", SensitiveCategory: true,
		Destinations: []Destination{
			{Host: "api.x.com", FirstParty: true, CarriesCredentials: true,
				SiblingContacts: true, PinnedOnSibling: false},
		},
	})
	warned := false
	for _, w := range recs[0].Warnings {
		if strings.Contains(w, "other platform") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing cross-platform warning: %v", recs[0].Warnings)
	}

	// No pin recommended here, but sibling pins.
	recs = Advise(Profile{
		AppID: "com.x",
		Destinations: []Destination{
			{Host: "cdn.x.com", FirstParty: true, PinnedOnSibling: true},
		},
	})
	warned = false
	for _, w := range recs[0].Warnings {
		if strings.Contains(w, "other platform") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing reverse cross-platform warning: %v", recs[0].Warnings)
	}
}

func TestAgainstCurrentPolicy(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.x",
		Destinations: []Destination{
			{Host: "cdn.x.com", FirstParty: true, PinnedHere: true}, // low sensitivity, pinned
		},
	})
	found := false
	for _, w := range recs[0].Warnings {
		if strings.Contains(w, "against this advice") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing against-advice warning: %v", recs[0].Warnings)
	}
}

func TestSummarize(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.multi", SensitiveCategory: true,
		Destinations: []Destination{
			{Host: "api.multi.com", FirstParty: true, CarriesCredentials: true,
				SiblingContacts: true},
			{Host: "t.example.net"},
			{Host: "cdn.multi.com", FirstParty: true, PinnedHere: true},
		},
	})
	s := Summarize(recs)
	// api.multi.com (credentials) and cdn.multi.com (sensitive category)
	// both earn pins; the tracker does not.
	if s.Destinations != 3 || s.RecommendPin != 2 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Inconsistent == 0 || s.AgainstCurrent == 0 {
		t.Fatalf("warning tallies: %+v", s)
	}
}

func TestOutputSortedAndRendered(t *testing.T) {
	recs := Advise(Profile{
		AppID: "com.a",
		Destinations: []Destination{
			{Host: "z.example.com"}, {Host: "a.example.com"},
		},
	})
	if recs[0].Host != "a.example.com" {
		t.Fatalf("not sorted: %v", recs)
	}
	if !strings.Contains(recs[0].String(), "do not pin") {
		t.Fatalf("render: %q", recs[0].String())
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyNone.String() != "do not pin" ||
		!strings.Contains(StrategyCAPin.String(), "CA") ||
		!strings.Contains(StrategySPKIWithBackup.String(), "SPKI") {
		t.Fatal("strategy names wrong")
	}
}
