package ctlog

import (
	"sync"
	"testing"

	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

func buildChain(t *testing.T, seed int64, host string) pki.Chain {
	t.Helper()
	rng := detrand.New(seed)
	root, err := pki.NewRootCA(rng, "CT Root "+host, "CT", 20)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(rng, host, pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pki.Chain{leaf.Cert, root.Cert}
}

func TestSubmitAndLookup(t *testing.T) {
	l := New()
	chain := buildChain(t, 1, "a.example.com")
	l.SubmitChain(chain)

	if l.Size() != 2 {
		t.Fatalf("Size = %d, want 2", l.Size())
	}
	for _, alg := range []pki.HashAlg{pki.SHA256, pki.SHA1} {
		got := l.Lookup(pki.NewPin(chain.Leaf(), alg))
		if len(got) != 1 || !got[0].Equal(chain.Leaf()) {
			t.Fatalf("Lookup by %v failed: %v", alg, got)
		}
	}
}

func TestUnknownPinResolvesToNothing(t *testing.T) {
	l := New()
	l.SubmitChain(buildChain(t, 2, "b.example.com"))
	foreign := buildChain(t, 3, "c.example.com")
	if got := l.Lookup(pki.NewPin(foreign.Leaf(), pki.SHA256)); got != nil {
		t.Fatalf("unknown pin resolved: %v", got)
	}
}

func TestDuplicateSubmissionIgnored(t *testing.T) {
	l := New()
	chain := buildChain(t, 4, "d.example.com")
	l.Submit(chain.Leaf())
	l.Submit(chain.Leaf())
	if l.Size() != 1 {
		t.Fatalf("Size = %d after duplicate submit", l.Size())
	}
	if got := l.Lookup(pki.NewPin(chain.Leaf(), pki.SHA256)); len(got) != 1 {
		t.Fatalf("duplicate indexed: %d entries", len(got))
	}
}

func TestLookupByName(t *testing.T) {
	l := New()
	chain := buildChain(t, 5, "e.example.com")
	l.SubmitChain(chain)
	if got := l.LookupByName("e.example.com"); len(got) != 1 {
		t.Fatalf("LookupByName = %v", got)
	}
	if got := l.LookupByName("missing.example.com"); got != nil {
		t.Fatalf("missing name resolved: %v", got)
	}
}

func TestSharedKeyAcrossCerts(t *testing.T) {
	// Two certificates sharing a key (rotation with key reuse) must both be
	// returned for the shared pin.
	rng := detrand.New(6)
	root, err := pki.NewRootCA(rng, "R", "R", 20)
	if err != nil {
		t.Fatal(err)
	}
	leaf1, err := root.IssueLeaf(rng, "rot.example.com", pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	leaf2, err := root.ReissueLeaf(rng, leaf1, pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	l.Submit(leaf1.Cert)
	l.Submit(leaf2.Cert)
	got := l.Lookup(pki.NewPin(leaf1.Cert, pki.SHA256))
	if len(got) != 2 {
		t.Fatalf("shared-key pin resolved to %d certs, want 2", len(got))
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := New()
	chains := make([]pki.Chain, 8)
	for i := range chains {
		chains[i] = buildChain(t, int64(100+i), "conc.example.com")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.SubmitChain(chains[i])
			l.Lookup(pki.NewPin(chains[i].Leaf(), pki.SHA256))
			l.LookupByName("conc.example.com")
		}(i)
	}
	wg.Wait()
	if l.Size() != 16 {
		t.Fatalf("Size = %d, want 16", l.Size())
	}
}
