// Package ctlog is the study's stand-in for the crt.sh certificate search
// over Certificate Transparency logs. The static-analysis pipeline uses it
// to resolve SPKI pin hashes found in app code back to certificates
// (§4.1.3): given a pin, it returns every logged certificate whose
// SubjectPublicKeyInfo hashes to that value.
//
// Like the real CT ecosystem the log has partial coverage: only
// certificates explicitly submitted (in our world: certificates issued by
// public CAs for real destinations) are indexed. Pins referring to custom
// or never-deployed certificates resolve to nothing — which is why the
// paper could associate certificates with only ~50% of unique pins.
package ctlog

import (
	"crypto/x509"
	"sync"

	"pinscope/internal/pki"
)

// Log is an in-memory CT index. It is safe for concurrent use.
type Log struct {
	mu sync.RWMutex
	// bySPKI maps canonical pin keys (alg:hexdigest) to certificates.
	bySPKI map[string][]*x509.Certificate
	// byName maps subject common names to certificates, which supports the
	// static↔dynamic certificate matching of §5.3.2.
	byName map[string][]*x509.Certificate
	total  int
}

// New returns an empty log.
func New() *Log {
	return &Log{
		bySPKI: make(map[string][]*x509.Certificate),
		byName: make(map[string][]*x509.Certificate),
	}
}

// Submit indexes cert under both its SHA-256 and SHA-1 SPKI digests, as
// crt.sh does. Duplicate submissions are ignored.
func (l *Log) Submit(cert *x509.Certificate) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k256 := pki.NewPin(cert, pki.SHA256).Key()
	for _, existing := range l.bySPKI[k256] {
		if existing.Equal(cert) {
			return
		}
	}
	k1 := pki.NewPin(cert, pki.SHA1).Key()
	l.bySPKI[k256] = append(l.bySPKI[k256], cert)
	l.bySPKI[k1] = append(l.bySPKI[k1], cert)
	cn := cert.Subject.CommonName
	l.byName[cn] = append(l.byName[cn], cert)
	l.total++
}

// SubmitChain indexes every certificate in the chain.
func (l *Log) SubmitChain(chain pki.Chain) {
	for _, c := range chain {
		l.Submit(c)
	}
}

// Lookup returns the certificates whose SPKI digest matches the pin, or nil
// if the pin is unknown to the log.
func (l *Log) Lookup(p pki.Pin) []*x509.Certificate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bySPKI[p.Key()]
}

// LookupByName returns certificates whose subject common name equals cn.
func (l *Log) LookupByName(cn string) []*x509.Certificate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.byName[cn]
}

// Size returns the number of distinct certificates indexed.
func (l *Log) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.total
}
