package apppkg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackageBasics(t *testing.T) {
	p := New("com.example.app")
	p.Add("assets/a.txt", []byte("hello"))
	p.AddExecutable("lib/libnative.so", []byte{0x7f, 'E', 'L', 'F'})
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.Get("assets/a.txt"); got == nil || string(got.Data) != "hello" {
		t.Fatalf("Get = %v", got)
	}
	if p.Get("missing") != nil {
		t.Fatal("missing path returned a file")
	}
	// Replacement keeps a single entry.
	p.Add("assets/a.txt", []byte("world"))
	if p.Len() != 2 || string(p.Get("assets/a.txt").Data) != "world" {
		t.Fatal("replacement failed")
	}
	// Deterministic order.
	files := p.Files()
	if files[0].Path != "assets/a.txt" || files[1].Path != "lib/libnative.so" {
		t.Fatalf("order: %v %v", files[0].Path, files[1].Path)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := New("com.example.app")
	p.Add("f", []byte{1, 2, 3})
	c := p.Clone()
	c.Get("f").Data[0] = 9
	if p.Get("f").Data[0] != 1 {
		t.Fatal("clone shares backing data")
	}
}

func TestIOSEncryptionRoundTrip(t *testing.T) {
	p := New("com.example.ios")
	plistData := BuildInfoPlist("com.example.ios", "Example")
	p.Add("Payload/Example.app/Info.plist", plistData)
	binData := []byte("MachO\x00\x00pin:sha256/AAAA secret strings inside binary")
	p.AddExecutable("Payload/Example.app/Example", append([]byte{}, binData...))

	p.EncryptIOS()
	if !p.Encrypted {
		t.Fatal("not marked encrypted")
	}
	// Executable content is ciphertext; plist is untouched.
	if bytes.Equal(p.Get("Payload/Example.app/Example").Data, binData) {
		t.Fatal("executable not encrypted")
	}
	if !bytes.Equal(p.Get("Payload/Example.app/Info.plist").Data, plistData) {
		t.Fatal("plist was encrypted")
	}
	// Searching the encrypted binary must not find the pin string.
	if bytes.Contains(p.Get("Payload/Example.app/Example").Data, []byte("sha256/")) {
		t.Fatal("pin string visible through encryption")
	}

	// Idempotent.
	p.EncryptIOS()
	p.DecryptIOS()
	if p.Encrypted {
		t.Fatal("still marked encrypted")
	}
	if !bytes.Equal(p.Get("Payload/Example.app/Example").Data, binData) {
		t.Fatal("decryption did not restore plaintext")
	}
	p.DecryptIOS() // no-op
}

func TestEncryptionKeyIsPerApp(t *testing.T) {
	mk := func(id string) *Package {
		p := New(id)
		p.AddExecutable("bin", []byte("same plaintext content here"))
		p.EncryptIOS()
		return p
	}
	a, b := mk("com.a"), mk("com.b")
	if bytes.Equal(a.Get("bin").Data, b.Get("bin").Data) {
		t.Fatal("different apps share ciphertext (shared key)")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := BuildManifest("com.example.app", "Example", "@xml/network_security_config")
	id, nsc, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != "com.example.app" || nsc != "@xml/network_security_config" {
		t.Fatalf("parsed %q %q", id, nsc)
	}
	// Without NSC.
	data = BuildManifest("com.example.app", "Example", "")
	_, nsc, err = ParseManifest(data)
	if err != nil || nsc != "" {
		t.Fatalf("no-NSC parse: %q %v", nsc, err)
	}
	if _, _, err := ParseManifest([]byte("<garbage/>")); err == nil {
		t.Fatal("garbage manifest accepted")
	}
}

func TestNSCRoundTrip(t *testing.T) {
	in := &NSC{Domains: []NSCDomain{
		{
			Domain:            "api.example.com",
			IncludeSubdomains: true,
			PinSetExpiration:  "2023-01-01",
			Pins: []NSCPin{
				{Digest: "SHA-256", Value: "r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E="},
				{Digest: "SHA-256", Value: "WoiWRyIOVNa9ihaBciRSC7XHjliYS9VwUGOIud4PB18="},
			},
		},
		{
			Domain:         "cdn.example.com",
			TrustAnchorSrc: "@raw/custom_ca",
		},
	}}
	out, err := ParseNSC(BuildNSC(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Domains) != 2 {
		t.Fatalf("%d domains", len(out.Domains))
	}
	d0 := out.Domains[0]
	if d0.Domain != "api.example.com" || !d0.IncludeSubdomains {
		t.Fatalf("domain 0: %+v", d0)
	}
	if len(d0.Pins) != 2 || d0.Pins[0].Digest != "SHA-256" || d0.Pins[0].Value != in.Domains[0].Pins[0].Value {
		t.Fatalf("pins: %+v", d0.Pins)
	}
	if d0.PinSetExpiration != "2023-01-01" {
		t.Fatalf("expiration: %q", d0.PinSetExpiration)
	}
	if !out.HasPins() {
		t.Fatal("HasPins false")
	}
	if out.Domains[1].TrustAnchorSrc != "@raw/custom_ca" {
		t.Fatalf("trust anchor: %+v", out.Domains[1])
	}
}

func TestNSCOverridePinsMisconfig(t *testing.T) {
	in := &NSC{Domains: []NSCDomain{{
		Domain:       "example.com",
		Pins:         []NSCPin{{Digest: "SHA-256", Value: "AAAA"}},
		OverridePins: true,
	}}}
	out, err := ParseNSC(BuildNSC(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Domains[0].OverridePins {
		t.Fatal("overridePins not preserved")
	}
}

func TestNSCWithoutPins(t *testing.T) {
	in := &NSC{Domains: []NSCDomain{{Domain: "plain.example.com"}}}
	out, err := ParseNSC(BuildNSC(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.HasPins() {
		t.Fatal("pinless NSC reports pins")
	}
}

func TestParseNSCGarbage(t *testing.T) {
	if _, err := ParseNSC([]byte("not xml at all <")); err == nil {
		t.Fatal("garbage NSC accepted")
	}
}

func TestEntitlementsRoundTrip(t *testing.T) {
	data := BuildEntitlements("com.example.ios", []string{"example.com", "www.example.com"})
	domains, err := ParseEntitlementsDomains(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 2 || domains[0] != "example.com" || domains[1] != "www.example.com" {
		t.Fatalf("domains: %v", domains)
	}
	// No associated domains.
	data = BuildEntitlements("com.example.ios", nil)
	domains, err = ParseEntitlementsDomains(data)
	if err != nil || len(domains) != 0 {
		t.Fatalf("empty entitlements: %v %v", domains, err)
	}
}

func TestEntitlementsIgnoresOtherArrays(t *testing.T) {
	doc := []byte(`<?xml version="1.0"?>
<plist version="1.0"><dict>
  <key>keychain-access-groups</key>
  <array><string>group.example</string></array>
  <key>com.apple.developer.associated-domains</key>
  <array><string>applinks:real.example.com</string></array>
</dict></plist>`)
	domains, err := ParseEntitlementsDomains(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 1 || domains[0] != "real.example.com" {
		t.Fatalf("domains: %v", domains)
	}
}

func TestEncryptionInvolution(t *testing.T) {
	f := func(id string, content []byte) bool {
		if id == "" {
			id = "x"
		}
		p := New(id)
		orig := append([]byte{}, content...)
		p.AddExecutable("bin", content)
		p.EncryptIOS()
		p.DecryptIOS()
		return bytes.Equal(p.Get("bin").Data, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
