package apppkg_test

import (
	"fmt"

	"pinscope/internal/apppkg"
)

// ExampleBuildNSC renders and re-parses an Android Network Security
// Configuration with a pin-set — the §4.1.1 detection surface.
func ExampleBuildNSC() {
	doc := apppkg.BuildNSC(&apppkg.NSC{Domains: []apppkg.NSCDomain{{
		Domain:            "api.example.com",
		IncludeSubdomains: true,
		Pins: []apppkg.NSCPin{
			{Digest: "SHA-256", Value: "r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E="},
		},
	}}})
	parsed, _ := apppkg.ParseNSC(doc)
	fmt.Println(parsed.HasPins(), parsed.Domains[0].Domain)
	// Output: true api.example.com
}

// ExamplePackage_EncryptIOS shows the store-encryption gate static analysis
// must pass through (the Appendix A jailbreak requirement).
func ExamplePackage_EncryptIOS() {
	pkg := apppkg.New("com.example.app")
	pkg.AddExecutable("Payload/App.app/App", []byte("sha256/secret-pin-material"))
	pkg.EncryptIOS()
	fmt.Println("readable while encrypted:",
		string(pkg.Get("Payload/App.app/App").Data[:6]) == "sha256")
	pkg.DecryptIOS()
	fmt.Println("readable after decryption:",
		string(pkg.Get("Payload/App.app/App").Data[:6]) == "sha256")
	// Output:
	// readable while encrypted: false
	// readable after decryption: true
}
