// Package apppkg models mobile application packages as file trees: the APK
// contents Apktool would produce for Android, and the IPA payload
// (Info.plist, entitlements, main binary, frameworks) for iOS. It owns the
// concrete on-disk formats — Android manifests, Network Security
// Configuration XML, iOS property lists — providing both the writers the
// world generator uses and the parsers the static-analysis pipeline uses,
// so generator and analyzer meet only at real bytes.
//
// iOS packages are encrypted the way App Store binaries are (per-app key,
// executable pages only): static analysis must first obtain a decrypted
// payload via a jailbroken device, mirroring the Flexdecrypt/Frida-iOS-Dump
// step of the paper (§4.1.2, Appendix A).
package apppkg

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// File is one entry in a package.
type File struct {
	Path string
	Data []byte
	// Executable marks binary code files; on iOS only these are encrypted.
	Executable bool
}

// Package is an application package's file tree.
type Package struct {
	AppID string
	// Encrypted is set for store-downloaded iOS packages; executable file
	// contents are ciphertext until DecryptIOS is applied.
	Encrypted bool

	files map[string]*File
	order []string // deterministic iteration order
}

// New returns an empty package for the app.
func New(appID string) *Package {
	return &Package{AppID: appID, files: make(map[string]*File)}
}

// Add inserts or replaces a file.
func (p *Package) Add(path string, data []byte) {
	p.add(&File{Path: path, Data: data})
}

// AddExecutable inserts a binary code file.
func (p *Package) AddExecutable(path string, data []byte) {
	p.add(&File{Path: path, Data: data, Executable: true})
}

func (p *Package) add(f *File) {
	if _, exists := p.files[f.Path]; !exists {
		p.order = append(p.order, f.Path)
	}
	p.files[f.Path] = f
}

// Get returns the file at path, or nil.
func (p *Package) Get(path string) *File {
	return p.files[path]
}

// Files returns all files in insertion order.
func (p *Package) Files() []*File {
	out := make([]*File, 0, len(p.order))
	for _, path := range p.order {
		out = append(out, p.files[path])
	}
	return out
}

// Len returns the number of files.
func (p *Package) Len() int { return len(p.files) }

// Clone deep-copies the package.
func (p *Package) Clone() *Package {
	cp := New(p.AppID)
	cp.Encrypted = p.Encrypted
	for _, f := range p.Files() {
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		cp.add(&File{Path: f.Path, Data: data, Executable: f.Executable})
	}
	return cp
}

// --- iOS FairPlay-style encryption ----------------------------------------

// iosKeystream derives the per-app XOR keystream block for a counter.
func iosKeystream(appID string, counter uint64, out []byte) {
	var block [32]byte
	var n int
	for n < len(out) {
		h := sha256.New()
		h.Write([]byte("fairplay:" + appID))
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], counter)
		h.Write(c[:])
		h.Sum(block[:0])
		n += copy(out[n:], block[:])
		counter++
	}
}

func xorExecutables(p *Package) {
	for _, f := range p.Files() {
		if !f.Executable {
			continue
		}
		ks := make([]byte, len(f.Data))
		iosKeystream(p.AppID+"/"+f.Path, 0, ks)
		for i := range f.Data {
			f.Data[i] ^= ks[i]
		}
	}
}

// EncryptIOS converts a plaintext package into its store-downloaded form:
// executable files become ciphertext. Non-executable resources (plists,
// entitlements, loose assets) remain readable, as in real IPAs.
func (p *Package) EncryptIOS() {
	if p.Encrypted {
		return
	}
	xorExecutables(p)
	p.Encrypted = true
}

// DecryptIOS reverses EncryptIOS. In the study this capability requires a
// jailbroken device (the keys live in hardware); internal/device gates
// access accordingly.
func (p *Package) DecryptIOS() {
	if !p.Encrypted {
		return
	}
	xorExecutables(p) // XOR keystream is an involution
	p.Encrypted = false
}

// --- Android manifest ------------------------------------------------------

type xmlManifest struct {
	XMLName     xml.Name       `xml:"manifest"`
	Package     string         `xml:"package,attr"`
	Application xmlApplication `xml:"application"`
}

type xmlApplication struct {
	NetworkSecurityConfig string `xml:"networkSecurityConfig,attr"`
	Label                 string `xml:"label,attr"`
}

// BuildManifest renders an AndroidManifest.xml. nscRef is the
// networkSecurityConfig resource reference ("@xml/network_security_config")
// or "" when the app declares none.
func BuildManifest(appID, label, nscRef string) []byte {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, `<manifest xmlns:android="http://schemas.android.com/apk/res/android" package=%q>`+"\n", appID)
	if nscRef != "" {
		fmt.Fprintf(&b, `  <application android:label=%q android:networkSecurityConfig=%q>`+"\n", label, nscRef)
	} else {
		fmt.Fprintf(&b, `  <application android:label=%q>`+"\n", label)
	}
	b.WriteString("    <activity android:name=\".MainActivity\"/>\n  </application>\n</manifest>\n")
	return b.Bytes()
}

// ParseManifest extracts the package id and NSC resource reference from an
// AndroidManifest.xml. Attribute namespaces are tolerated.
func ParseManifest(data []byte) (appID, nscRef string, err error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, terr := dec.Token()
		if terr != nil {
			break
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "manifest":
			for _, a := range se.Attr {
				if a.Name.Local == "package" {
					appID = a.Value
				}
			}
		case "application":
			for _, a := range se.Attr {
				if a.Name.Local == "networkSecurityConfig" {
					nscRef = a.Value
				}
			}
		}
	}
	if appID == "" {
		return "", "", fmt.Errorf("apppkg: no package attribute in manifest")
	}
	return appID, nscRef, nil
}

// --- Network Security Configuration ----------------------------------------

// NSCPin is one <pin> entry.
type NSCPin struct {
	Digest string // "SHA-256" or "SHA-1"
	Value  string // base64 SPKI hash
}

// NSCDomain is one <domain-config> block.
type NSCDomain struct {
	Domain            string
	IncludeSubdomains bool
	Pins              []NSCPin
	PinSetExpiration  string
	// OverridePins mirrors the <certificates overridePins="true"/>
	// misconfiguration Possemato et al. found: trust anchors that bypass
	// the pin set, defeating its purpose.
	OverridePins bool
	// TrustAnchorSrc names a custom CA resource ("@raw/my_ca") when the
	// config installs its own anchor.
	TrustAnchorSrc string
}

// NSC is a parsed (or to-be-rendered) network security configuration.
type NSC struct {
	Domains []NSCDomain
}

// HasPins reports whether any domain block carries a pin-set.
func (n *NSC) HasPins() bool {
	for _, d := range n.Domains {
		if len(d.Pins) > 0 {
			return true
		}
	}
	return false
}

// BuildNSC renders network_security_config.xml.
func BuildNSC(cfg *NSC) []byte {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<network-security-config>\n")
	for _, d := range cfg.Domains {
		b.WriteString("  <domain-config>\n")
		fmt.Fprintf(&b, "    <domain includeSubdomains=%q>%s</domain>\n",
			boolStr(d.IncludeSubdomains), xmlEscape(d.Domain))
		if len(d.Pins) > 0 {
			if d.PinSetExpiration != "" {
				fmt.Fprintf(&b, "    <pin-set expiration=%q>\n", d.PinSetExpiration)
			} else {
				b.WriteString("    <pin-set>\n")
			}
			for _, p := range d.Pins {
				fmt.Fprintf(&b, "      <pin digest=%q>%s</pin>\n", p.Digest, p.Value)
			}
			b.WriteString("    </pin-set>\n")
		}
		if d.TrustAnchorSrc != "" || d.OverridePins {
			b.WriteString("    <trust-anchors>\n")
			src := d.TrustAnchorSrc
			if src == "" {
				src = "system"
			}
			if d.OverridePins {
				fmt.Fprintf(&b, "      <certificates src=%q overridePins=\"true\"/>\n", src)
			} else {
				fmt.Fprintf(&b, "      <certificates src=%q/>\n", src)
			}
			b.WriteString("    </trust-anchors>\n")
		}
		b.WriteString("  </domain-config>\n")
	}
	b.WriteString("</network-security-config>\n")
	return b.Bytes()
}

func boolStr(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

func xmlEscape(s string) string {
	var b bytes.Buffer
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

type xmlNSC struct {
	XMLName xml.Name       `xml:"network-security-config"`
	Domains []xmlNSCDomain `xml:"domain-config"`
}

type xmlNSCDomain struct {
	Domain struct {
		Value             string `xml:",chardata"`
		IncludeSubdomains string `xml:"includeSubdomains,attr"`
	} `xml:"domain"`
	PinSet *struct {
		Expiration string `xml:"expiration,attr"`
		Pins       []struct {
			Digest string `xml:"digest,attr"`
			Value  string `xml:",chardata"`
		} `xml:"pin"`
	} `xml:"pin-set"`
	TrustAnchors *struct {
		Certificates []struct {
			Src          string `xml:"src,attr"`
			OverridePins string `xml:"overridePins,attr"`
		} `xml:"certificates"`
	} `xml:"trust-anchors"`
}

// ParseNSC parses a network security configuration document.
func ParseNSC(data []byte) (*NSC, error) {
	var doc xmlNSC
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("apppkg: parse NSC: %w", err)
	}
	out := &NSC{}
	for _, d := range doc.Domains {
		nd := NSCDomain{
			Domain:            strings.TrimSpace(d.Domain.Value),
			IncludeSubdomains: d.Domain.IncludeSubdomains == "true",
		}
		if d.PinSet != nil {
			nd.PinSetExpiration = d.PinSet.Expiration
			for _, p := range d.PinSet.Pins {
				nd.Pins = append(nd.Pins, NSCPin{
					Digest: p.Digest,
					Value:  strings.TrimSpace(p.Value),
				})
			}
		}
		if d.TrustAnchors != nil {
			for _, c := range d.TrustAnchors.Certificates {
				if c.OverridePins == "true" {
					nd.OverridePins = true
				}
				if strings.HasPrefix(c.Src, "@") {
					nd.TrustAnchorSrc = c.Src
				}
			}
		}
		out.Domains = append(out.Domains, nd)
	}
	return out, nil
}

// --- iOS property lists -----------------------------------------------------

// BuildInfoPlist renders a minimal Info.plist.
func BuildInfoPlist(bundleID, name string) []byte {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<plist version=\"1.0\">\n<dict>\n")
	fmt.Fprintf(&b, "  <key>CFBundleIdentifier</key><string>%s</string>\n", xmlEscape(bundleID))
	fmt.Fprintf(&b, "  <key>CFBundleName</key><string>%s</string>\n", xmlEscape(name))
	b.WriteString("  <key>CFBundleShortVersionString</key><string>1.0</string>\n")
	b.WriteString("</dict>\n</plist>\n")
	return b.Bytes()
}

// BuildEntitlements renders an entitlements plist carrying associated
// domains ("applinks:example.com" entries), the source of the iOS
// background verification traffic of §4.5.
func BuildEntitlements(bundleID string, associatedDomains []string) []byte {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<plist version=\"1.0\">\n<dict>\n")
	fmt.Fprintf(&b, "  <key>application-identifier</key><string>%s</string>\n", xmlEscape(bundleID))
	if len(associatedDomains) > 0 {
		b.WriteString("  <key>com.apple.developer.associated-domains</key>\n  <array>\n")
		for _, d := range associatedDomains {
			fmt.Fprintf(&b, "    <string>applinks:%s</string>\n", xmlEscape(d))
		}
		b.WriteString("  </array>\n")
	}
	b.WriteString("</dict>\n</plist>\n")
	return b.Bytes()
}

// ParseEntitlementsDomains extracts the associated domains (hostnames,
// "applinks:" prefix stripped) from an entitlements plist.
func ParseEntitlementsDomains(data []byte) ([]string, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var domains []string
	inArray := false
	keyWasAssociated := false
	var lastText string
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "array":
				if keyWasAssociated {
					inArray = true
				}
			}
			lastText = ""
		case xml.CharData:
			lastText += string(t)
		case xml.EndElement:
			switch t.Name.Local {
			case "key":
				keyWasAssociated = strings.TrimSpace(lastText) == "com.apple.developer.associated-domains"
			case "string":
				if inArray {
					v := strings.TrimSpace(lastText)
					v = strings.TrimPrefix(v, "applinks:")
					if v != "" {
						domains = append(domains, v)
					}
				}
			case "array":
				if inArray {
					inArray = false
					keyWasAssociated = false
				}
			}
			lastText = ""
		}
	}
	sort.Strings(domains)
	return domains, nil
}
