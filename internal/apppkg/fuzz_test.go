package apppkg

import "testing"

// FuzzParseNSC: arbitrary XML must never panic the parser, and whatever
// parses must round-trip through the builder without loss of pins.
func FuzzParseNSC(f *testing.F) {
	f.Add(string(BuildNSC(&NSC{Domains: []NSCDomain{{
		Domain: "a.example.com",
		Pins:   []NSCPin{{Digest: "SHA-256", Value: "AAAA"}},
	}}})))
	f.Add("<network-security-config><domain-config></domain-config></network-security-config>")
	f.Add("not xml")
	f.Fuzz(func(t *testing.T, doc string) {
		nsc, err := ParseNSC([]byte(doc))
		if err != nil {
			return
		}
		back, err := ParseNSC(BuildNSC(nsc))
		if err != nil {
			t.Fatalf("builder output unparseable: %v", err)
		}
		if back.HasPins() != nsc.HasPins() {
			t.Fatal("pin-set presence changed across round trip")
		}
		if len(back.Domains) != len(nsc.Domains) {
			t.Fatalf("domain count changed: %d vs %d", len(back.Domains), len(nsc.Domains))
		}
	})
}

// FuzzParseManifest must never panic.
func FuzzParseManifest(f *testing.F) {
	f.Add(string(BuildManifest("com.a.b", "A", "@xml/nsc")))
	f.Add("<manifest package=\"x\"/>")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		ParseManifest([]byte(doc))
	})
}

// FuzzParseEntitlements must never panic and never return empty hostnames.
func FuzzParseEntitlements(f *testing.F) {
	f.Add(string(BuildEntitlements("com.a", []string{"x.example.com"})))
	f.Add("<plist><dict></dict></plist>")
	f.Fuzz(func(t *testing.T, doc string) {
		domains, _ := ParseEntitlementsDomains([]byte(doc))
		for _, d := range domains {
			if d == "" {
				t.Fatal("empty associated domain returned")
			}
		}
	})
}

// FuzzIOSCrypto: encrypt/decrypt is an involution for any content and app id.
func FuzzIOSCrypto(f *testing.F) {
	f.Add("com.a.b", []byte("binary content"))
	f.Fuzz(func(t *testing.T, id string, content []byte) {
		if id == "" {
			id = "x"
		}
		orig := append([]byte(nil), content...)
		p := New(id)
		p.AddExecutable("bin", content)
		p.EncryptIOS()
		p.DecryptIOS()
		got := p.Get("bin").Data
		if len(got) != len(orig) {
			t.Fatal("length changed")
		}
		for i := range got {
			if got[i] != orig[i] {
				t.Fatal("content changed")
			}
		}
	})
}
