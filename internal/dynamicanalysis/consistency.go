package dynamicanalysis

import (
	"pinscope/internal/stats"
)

// PairOutcome says on which platforms a common app pins.
type PairOutcome int

const (
	PinsNeither PairOutcome = iota
	PinsBoth
	PinsAndroidOnly
	PinsIOSOnly
)

func (o PairOutcome) String() string {
	switch o {
	case PinsBoth:
		return "both"
	case PinsAndroidOnly:
		return "android-only"
	case PinsIOSOnly:
		return "ios-only"
	}
	return "neither"
}

// ConsistencyClass is the paper's §5.1 classification.
type ConsistencyClass int

const (
	// ClassConsistent: at least one common pinned domain and no domain
	// pinned on one platform while unpinned on the other.
	ClassConsistent ConsistencyClass = iota
	// ClassInconsistent: some domain is pinned on one platform and
	// demonstrably not pinned on the other.
	ClassInconsistent
	// ClassInconclusive: the pinned domains of one platform were never
	// observed on the other, so no comparison is possible.
	ClassInconclusive
)

func (c ConsistencyClass) String() string {
	switch c {
	case ClassConsistent:
		return "consistent"
	case ClassInconsistent:
		return "inconsistent"
	}
	return "inconclusive"
}

// PairAnalysis compares the Android and iOS dynamic results of one common
// app (Figures 2–4).
type PairAnalysis struct {
	Name    string
	Outcome PairOutcome
	Class   ConsistencyClass

	// JaccardPinned is the similarity of the two pinned-domain sets
	// (meaningful when pinning on both platforms).
	JaccardPinned float64
	// IdenticalSets marks equal pinned sets on both platforms.
	IdenticalSets bool
	// PinnedAndroidSeenUnpinnedIOS is the fraction of Android-pinned
	// domains observed NOT pinned on iOS (a Figure 3/4 heatmap cell), and
	// vice versa.
	PinnedAndroidSeenUnpinnedIOS float64
	PinnedIOSSeenUnpinnedAndroid float64
}

// AnalyzePair classifies one common app from its per-platform results.
func AnalyzePair(name string, android, ios *Result) *PairAnalysis {
	pa := &PairAnalysis{Name: name}
	pinA := stats.Set(android.PinnedDests())
	pinI := stats.Set(ios.PinnedDests())
	notA := stats.Set(android.NotPinnedDests())
	notI := stats.Set(ios.NotPinnedDests())

	switch {
	case len(pinA) > 0 && len(pinI) > 0:
		pa.Outcome = PinsBoth
	case len(pinA) > 0:
		pa.Outcome = PinsAndroidOnly
	case len(pinI) > 0:
		pa.Outcome = PinsIOSOnly
	default:
		pa.Outcome = PinsNeither
		pa.Class = ClassInconclusive
		return pa
	}

	pa.JaccardPinned = stats.Jaccard(pinA, pinI)
	pa.IdenticalSets = len(pinA) > 0 && pa.JaccardPinned == 1
	pa.PinnedAndroidSeenUnpinnedIOS = stats.Overlap(pinA, notI)
	pa.PinnedIOSSeenUnpinnedAndroid = stats.Overlap(pinI, notA)

	inconsistent := pa.PinnedAndroidSeenUnpinnedIOS > 0 || pa.PinnedIOSSeenUnpinnedAndroid > 0
	switch pa.Outcome {
	case PinsBoth:
		sharePinned := false
		for d := range pinA {
			if pinI[d] {
				sharePinned = true
				break
			}
		}
		switch {
		case inconsistent:
			pa.Class = ClassInconsistent
		case sharePinned:
			pa.Class = ClassConsistent
		default:
			// Pins on both, but the pinned sets never meet — the other
			// platform never contacted those domains at all.
			pa.Class = ClassInconclusive
		}
	default:
		// Exclusive pinners can only be inconsistent (pinned here, seen
		// unpinned there) or inconclusive (never seen there).
		if inconsistent {
			pa.Class = ClassInconsistent
		} else {
			pa.Class = ClassInconclusive
		}
	}
	return pa
}
