// Package dynamicanalysis implements the study's run-time pinning detector
// (§4.2): classify every captured TLS connection as used or failed with the
// version-specific heuristics of §4.2.2, then compare the non-MITM and MITM
// captures of an app differentially — a destination whose connections carry
// data without interception but always fail under interception is pinned.
//
// The package consumes only passive observations (netem flow summaries);
// nothing here reads app ground truth. It is the half of the paper's core
// contribution that complements internal/staticanalysis.
package dynamicanalysis

import (
	"sort"
	"strings"

	"pinscope/internal/netem"
	"pinscope/internal/tlswire"
	"pinscope/internal/whois"
)

// ConnStatus classifies one connection.
type ConnStatus int

const (
	// StatusUsed: application data was transmitted (per the §4.2.2
	// heuristics).
	StatusUsed ConnStatus = iota
	// StatusFailed: the connection went unused and the client tore it down
	// (TLS alert, TCP RST, or FIN).
	StatusFailed
	// StatusInconclusive: unused but never observed closing (e.g. capture
	// window ended first).
	StatusInconclusive
)

func (s ConnStatus) String() string {
	switch s {
	case StatusUsed:
		return "used"
	case StatusFailed:
		return "failed"
	}
	return "inconclusive"
}

// ClassifyFlow applies the used/failed heuristics to one captured flow.
//
// TLS <= 1.2: any application_data record means the connection was used —
// handshake records are distinguishable on the wire.
//
// TLS 1.3: every encrypted record is disguised as application_data, so the
// client's record sequence is examined: more than two records, or a second
// record that is not exactly the size of an encrypted alert, indicates real
// application data (the first is always the client Finished on successful
// connections).
func ClassifyFlow(f *netem.Flow) ConnStatus {
	version := f.NegotiatedVersion()
	used := false
	switch {
	case version == 0:
		// No ServerHello in the capture: either the handshake really died
		// that early, or the tap lost the record. Fall back to length
		// fingerprints, which hold for both wire formats: any client
		// application_data record that is neither a Finished nor an
		// encrypted alert, or any server record beyond the first (the
		// certificate flight) that is neither Finished, ticket nor alert,
		// is application traffic.
		serverApp := 0
		for _, r := range f.Records() {
			if r.WireType != tlswire.RecAppData {
				continue
			}
			if r.FromClient {
				if r.Length != tlswire.FinishedWireLen && r.Length != tlswire.EncryptedAlertWireLen {
					used = true
				}
				continue
			}
			serverApp++
			if serverApp > 1 && r.Length != tlswire.FinishedWireLen &&
				r.Length != tlswire.SessionTicketWireLen &&
				r.Length != tlswire.EncryptedAlertWireLen {
				used = true
			}
		}
	case version <= tlswire.TLS12:
		for _, r := range f.Records() {
			if r.WireType == tlswire.RecAppData {
				used = true
				break
			}
		}
	default: // TLS 1.3
		var clientApp []int
		serverApp := 0
		for _, r := range f.Records() {
			if r.WireType != tlswire.RecAppData {
				continue
			}
			if r.FromClient {
				clientApp = append(clientApp, r.Length)
				continue
			}
			serverApp++
			// Server-side evidence, robust to capture loss of client
			// records: after the certificate flight (the first encrypted
			// server record), an unused connection only ever carries
			// Finished, session tickets, and alerts — all of fixed wire
			// length. A later server record of any other length is an
			// application response, and responses only follow requests.
			if serverApp > 1 && r.Length != tlswire.FinishedWireLen &&
				r.Length != tlswire.SessionTicketWireLen &&
				r.Length != tlswire.EncryptedAlertWireLen {
				used = true
			}
		}
		switch {
		case len(clientApp) > 2:
			used = true
		case len(clientApp) == 2 && clientApp[1] != tlswire.EncryptedAlertWireLen:
			used = true
		}
	}
	if used {
		return StatusUsed
	}
	clientClose, _ := f.CloseFlags()
	if clientClose == tlswire.CloseNone {
		return StatusInconclusive
	}
	if version == 0 && clientClose != tlswire.CloseRST {
		// An orderly client teardown on a connection that died before a
		// ServerHello ever appeared: the client never saw a certificate, so
		// the close cannot be a pinning verdict — this is the reachability
		// confounder of §4.2.2 (unreachable hosts, proxy forge errors), not
		// a rejection. An abrupt RST is kept as a failure: that is how
		// aborting clients look whether or not the tap caught the
		// ServerHello.
		return StatusInconclusive
	}
	return StatusFailed
}

// flowDest returns the destination key for grouping: SNI when present
// (>99% of study traffic), else the dialed host.
func flowDest(f *netem.Flow) string {
	if sni := f.SNI(); sni != "" {
		return sni
	}
	return f.Dst
}

// DestSummary aggregates one destination's connections within one capture.
type DestSummary struct {
	Dest         string
	Used         int
	Failed       int
	Inconclusive int
	// WeakCipherOffered is set when any ClientHello to this destination
	// advertised a weak suite (Table 8's per-connection criterion).
	WeakCipherOffered bool
	// Versions seen in ServerHellos.
	Versions map[tlswire.Version]bool
	// SawClientAlert is set when a plaintext client alert was captured.
	SawClientAlert bool
}

// SummarizeCapture groups a capture's flows by destination.
func SummarizeCapture(cap *netem.Capture) map[string]*DestSummary {
	out := make(map[string]*DestSummary)
	for _, f := range cap.Flows() {
		dest := flowDest(f)
		ds := out[dest]
		if ds == nil {
			ds = &DestSummary{Dest: dest, Versions: make(map[tlswire.Version]bool)}
			out[dest] = ds
		}
		switch ClassifyFlow(f) {
		case StatusUsed:
			ds.Used++
		case StatusFailed:
			ds.Failed++
		default:
			ds.Inconclusive++
		}
		if h := f.ClientHello(); h != nil {
			for _, c := range h.CipherSuites {
				if c.IsWeak() {
					ds.WeakCipherOffered = true
				}
			}
		}
		if v := f.NegotiatedVersion(); v != 0 {
			ds.Versions[v] = true
		}
		for _, r := range f.Records() {
			if r.FromClient && r.HasAlert && r.Alert != tlswire.AlertCloseNotify {
				ds.SawClientAlert = true
			}
		}
	}
	return out
}

// DestVerdict is the per-destination outcome of the differential analysis.
type DestVerdict struct {
	Dest string
	// Pinned: used without MITM, always failed with MITM.
	Pinned bool
	// UsedNoMITM / UsedMITM report data transmission in each setting.
	UsedNoMITM bool
	UsedMITM   bool
	// Excluded destinations (OS background traffic) are reported for
	// transparency but never counted.
	Excluded bool
	// WeakCipherOffered comes from the non-MITM run's ClientHellos.
	WeakCipherOffered bool
	// ConclusiveFlows counts flows classified used or failed across both
	// captures; a verdict with none rests entirely on inconclusive
	// (truncated) observations.
	ConclusiveFlows int
}

// Result is the dynamic verdict for one app run pair.
type Result struct {
	AppID    string
	Verdicts map[string]*DestVerdict
}

// Quality scores how much conclusive evidence backs this result: the
// number of non-excluded destinations with at least one conclusively
// classified flow. Used to arbitrate between repeated runs of the same app
// (§4.5's delayed re-run) and to grade degraded results under faults.
// Nil-safe; a nil result scores -1 so any real result beats it.
func (r *Result) Quality() int {
	if r == nil {
		return -1
	}
	n := 0
	for _, v := range r.Verdicts {
		if !v.Excluded && v.ConclusiveFlows > 0 {
			n++
		}
	}
	return n
}

// Pins reports whether any destination was detected as pinned.
func (r *Result) Pins() bool {
	for _, v := range r.Verdicts {
		if v.Pinned {
			return true
		}
	}
	return false
}

// PinnedDests returns the pinned destinations, sorted.
func (r *Result) PinnedDests() []string {
	var out []string
	for _, v := range r.Verdicts {
		if v.Pinned {
			out = append(out, v.Dest)
		}
	}
	sort.Strings(out)
	return out
}

// NotPinnedDests returns destinations that demonstrably carried data under
// MITM (the "not pinned" sets of §5.1), sorted.
func (r *Result) NotPinnedDests() []string {
	var out []string
	for _, v := range r.Verdicts {
		if !v.Pinned && !v.Excluded && v.UsedMITM {
			out = append(out, v.Dest)
		}
	}
	sort.Strings(out)
	return out
}

// ContactedDests returns every non-excluded destination observed, sorted.
func (r *Result) ContactedDests() []string {
	var out []string
	for _, v := range r.Verdicts {
		if !v.Excluded {
			out = append(out, v.Dest)
		}
	}
	sort.Strings(out)
	return out
}

// Options configure the differential detector.
type Options struct {
	// ExcludeDomains are OS-attributed destinations (Apple service domains
	// plus the app's associated domains from its entitlements, §4.5).
	// Matching is exact or by-suffix on label boundaries.
	ExcludeDomains []string
}

func excluded(dest string, patterns []string) bool {
	for _, p := range patterns {
		if dest == p || strings.HasSuffix(dest, "."+p) {
			return true
		}
	}
	return false
}

// Detect runs the differential analysis over an app's two captures.
func Detect(appID string, noMITM, mitm *netem.Capture, opts Options) *Result {
	base := SummarizeCapture(noMITM)
	inter := SummarizeCapture(mitm)
	res := &Result{AppID: appID, Verdicts: make(map[string]*DestVerdict)}

	all := make(map[string]bool)
	for d := range base {
		all[d] = true
	}
	for d := range inter {
		all[d] = true
	}
	for dest := range all {
		v := &DestVerdict{Dest: dest, Excluded: excluded(dest, opts.ExcludeDomains)}
		if b := base[dest]; b != nil {
			v.UsedNoMITM = b.Used > 0
			v.WeakCipherOffered = b.WeakCipherOffered
			v.ConclusiveFlows += b.Used + b.Failed
		}
		if m := inter[dest]; m != nil {
			v.UsedMITM = m.Used > 0
			v.ConclusiveFlows += m.Used + m.Failed
		}
		// Pinned: data flowed without interception; the destination was
		// attempted under interception and every attempt failed — and it
		// failed MORE often than without interception. Failures common to
		// both captures (redundant connections an app opens and abandons,
		// protocol problems) cancel out differentially; only the excess is
		// interception-induced. For a real pinner the excess is exactly the
		// connections that carried data without MITM, so this never costs a
		// detection.
		if !v.Excluded && v.UsedNoMITM {
			bFailed := 0
			if b := base[dest]; b != nil {
				bFailed = b.Failed
			}
			if m := inter[dest]; m != nil && m.Used == 0 && m.Failed > bFailed {
				v.Pinned = true
			}
		}
		res.Verdicts[dest] = v
	}
	return res
}

// IsFirstParty attributes a destination to the app's own organization using
// whois data and name similarity, the way the paper combined "whois data,
// certificate subject names, etc." (§5.2). It returns false (third party)
// when no signal matches.
func IsFirstParty(dest, developer, appName string, reg *whois.Registry) bool {
	if reg != nil {
		if org, ok := reg.Lookup(dest); ok {
			if strings.EqualFold(org, developer) {
				return true
			}
			// Registered to an unrelated org: decisively third-party.
			return false
		}
	}
	// Whois unavailable (privacy-protected): fall back to name tokens.
	slugify := func(s string) string {
		var b strings.Builder
		for _, r := range strings.ToLower(s) {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	d := slugify(dest)
	if n := slugify(appName); len(n) >= 5 && strings.Contains(d, n) {
		return true
	}
	if dv := slugify(developer); len(dv) >= 5 && strings.Contains(d, dv) {
		return true
	}
	return false
}
