package dynamicanalysis

// faults_test.go exercises the detector against monitoring-point fault
// injection: truncated capture windows must classify inconclusive, not
// failed, and tap record drops must only ever degrade the differential
// verdict toward a miss — never invert an open destination into a pin.

import (
	"testing"

	"pinscope/internal/netem"
	"pinscope/internal/tlswire"
)

// runFaulted is harness.run with per-connection capture faults applied to
// every dial.
func (h *harness) runFaulted(mitm bool, scripts []script, faults netem.ConnFaults) *netem.Capture {
	h.t.Helper()
	if mitm {
		h.net.SetInterceptor(h.proxy)
	} else {
		h.net.SetInterceptor(nil)
	}
	cap := netem.NewCapture()
	for _, s := range scripts {
		tr, err := h.net.Dial(s.host, netem.DialOpts{Capture: cap, Faults: faults})
		if err != nil {
			h.t.Fatal(err)
		}
		conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
			ServerName: s.host,
			RootStore:  h.store,
			Pins:       s.pins,
			PinFailure: s.mode,
			MaxVersion: s.maxV,
		})
		if err == nil && s.used {
			conn.Send([]byte(s.payload))
			conn.Recv()
			conn.Close()
		}
		tr.Close(tlswire.CloseFIN)
	}
	h.net.WaitIdle()
	return cap
}

func TestClassifyFlowInconclusiveUnderWindowCut(t *testing.T) {
	// The capture window cuts off mid-handshake: the connection really was
	// torn down by the client (a pin rejection), but the tap never saw the
	// teardown. Without close evidence the flow must stay inconclusive.
	h := newHarness(t, "cut.example.com")
	scripts := []script{{
		host: "cut.example.com", pins: caPin(h, "cut.example.com"),
		mode: tlswire.FailAlertClose, used: true, payload: "x",
	}}
	cap := h.runFaulted(true, scripts, netem.ConnFaults{CaptureTailAfter: 2})
	fl := cap.Flows()[0]
	if got := ClassifyFlow(fl); got != StatusInconclusive {
		t.Fatalf("window-cut flow classified %v, want inconclusive", got)
	}
	sum := SummarizeCapture(cap)
	ds := sum["cut.example.com"]
	if ds.Inconclusive != 1 || ds.Failed != 0 || ds.Used != 0 {
		t.Fatalf("summary %+v, want 1 inconclusive", ds)
	}
}

func TestClassifyFlowInconclusiveOnInjectedReset(t *testing.T) {
	// An injected mid-handshake RST arrives from the server direction; the
	// client never closed. That must not read as a client pin rejection.
	h := newHarness(t, "reset.example.com")
	scripts := []script{{host: "reset.example.com", used: true, payload: "x"}}
	cap := h.runFaulted(true, scripts, netem.ConnFaults{ResetAfter: 2})
	fl := cap.Flows()[0]
	clientClose, serverClose := fl.CloseFlags()
	if clientClose != tlswire.CloseNone || serverClose != tlswire.CloseRST {
		t.Fatalf("closes %s/%s, want none/RST", clientClose, serverClose)
	}
	if got := ClassifyFlow(fl); got != StatusInconclusive {
		t.Fatalf("injected-reset flow classified %v, want inconclusive", got)
	}
}

func TestDetectorDegradesToMissUnderRecordDrops(t *testing.T) {
	// Sweep single-record tap drops over both captures of a two-destination
	// differential. The invariant under ANY observation loss: the open
	// destination is never inverted into a pin (fabrication); the pinned
	// destination may at worst be missed (degradation).
	for drop := 0; drop < 8; drop++ {
		for _, v := range []tlswire.Version{tlswire.TLS12, tlswire.TLS13} {
			h := newHarness(t, "pinned.example.com", "open.example.com")
			scripts := []script{
				{host: "pinned.example.com", pins: caPin(h, "pinned.example.com"),
					mode: tlswire.FailAlertClose, maxV: v, used: true, payload: "GET /secure"},
				{host: "open.example.com", maxV: v, used: true, payload: "GET /"},
			}
			faults := netem.ConnFaults{DropCaptureRecord: func(i int) bool { return i == drop }}
			base := h.runFaulted(false, scripts, faults)
			inter := h.runFaulted(true, scripts, faults)
			res := Detect("test.app", base, inter, Options{})
			if res.Verdicts["open.example.com"].Pinned {
				t.Fatalf("drop=%d v=%v: open destination inverted into a pin", drop, v)
			}
			if ov := res.Verdicts["open.example.com"]; !ov.UsedMITM && drop > 6 {
				// Late drops never touch the payload records; data under MITM
				// must still be observed.
				t.Fatalf("drop=%d v=%v: open destination lost its MITM usage evidence", drop, v)
			}
		}
	}
}

func TestDetectorStillFiresWithoutDrops(t *testing.T) {
	// Control for the sweep above: with the same scripted world and no
	// faults, the pinned destination is detected — so any miss under drops
	// is attributable to the injected observation loss alone.
	h := newHarness(t, "pinned.example.com", "open.example.com")
	scripts := []script{
		{host: "pinned.example.com", pins: caPin(h, "pinned.example.com"),
			mode: tlswire.FailAlertClose, maxV: tlswire.TLS13, used: true, payload: "GET /secure"},
		{host: "open.example.com", maxV: tlswire.TLS13, used: true, payload: "GET /"},
	}
	base := h.runFaulted(false, scripts, netem.ConnFaults{})
	inter := h.runFaulted(true, scripts, netem.ConnFaults{})
	res := Detect("test.app", base, inter, Options{})
	if !res.Verdicts["pinned.example.com"].Pinned {
		t.Fatal("faultless control missed the pinned destination")
	}
	if res.Verdicts["open.example.com"].Pinned {
		t.Fatal("faultless control misdetected the open destination")
	}
}
