package dynamicanalysis

import "testing"

// mkResult builds a Result with the given pinned and not-pinned (used under
// MITM) destinations.
func mkResult(pinned, notPinned []string) *Result {
	r := &Result{AppID: "t", Verdicts: map[string]*DestVerdict{}}
	for _, d := range pinned {
		r.Verdicts[d] = &DestVerdict{Dest: d, Pinned: true, UsedNoMITM: true}
	}
	for _, d := range notPinned {
		r.Verdicts[d] = &DestVerdict{Dest: d, UsedNoMITM: true, UsedMITM: true}
	}
	return r
}

func TestPairConsistentIdentical(t *testing.T) {
	a := mkResult([]string{"api.x.com", "cdn.x.com"}, []string{"t.net"})
	i := mkResult([]string{"api.x.com", "cdn.x.com"}, []string{"t.net"})
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsBoth || pa.Class != ClassConsistent {
		t.Fatalf("%v %v", pa.Outcome, pa.Class)
	}
	if !pa.IdenticalSets || pa.JaccardPinned != 1 {
		t.Fatalf("identical sets: %+v", pa)
	}
}

func TestPairConsistentSubset(t *testing.T) {
	// Overlapping pinned sets, with the extra Android domain never observed
	// on iOS: consistent (no contradiction).
	a := mkResult([]string{"api.x.com", "extra.x.com"}, nil)
	i := mkResult([]string{"api.x.com"}, nil)
	pa := AnalyzePair("X", a, i)
	if pa.Class != ClassConsistent {
		t.Fatalf("class %v", pa.Class)
	}
	if pa.IdenticalSets {
		t.Fatal("subset reported identical")
	}
	if pa.JaccardPinned != 0.5 {
		t.Fatalf("jaccard %v", pa.JaccardPinned)
	}
}

func TestPairInconsistentBoth(t *testing.T) {
	// Both pin, but a domain pinned on Android is demonstrably unpinned on
	// iOS.
	a := mkResult([]string{"api.x.com", "shared.x.com"}, nil)
	i := mkResult([]string{"shared.x.com"}, []string{"api.x.com"})
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsBoth || pa.Class != ClassInconsistent {
		t.Fatalf("%v %v", pa.Outcome, pa.Class)
	}
	if pa.PinnedAndroidSeenUnpinnedIOS != 0.5 {
		t.Fatalf("heatmap cell: %v", pa.PinnedAndroidSeenUnpinnedIOS)
	}
	if pa.PinnedIOSSeenUnpinnedAndroid != 0 {
		t.Fatalf("reverse cell: %v", pa.PinnedIOSSeenUnpinnedAndroid)
	}
}

func TestPairInconclusiveBoth(t *testing.T) {
	// Both pin but on disjoint domains never seen on the other platform.
	a := mkResult([]string{"android-api.x.com"}, nil)
	i := mkResult([]string{"ios-api.x.com"}, nil)
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsBoth || pa.Class != ClassInconclusive {
		t.Fatalf("%v %v", pa.Outcome, pa.Class)
	}
}

func TestExclusiveAndroidInconsistent(t *testing.T) {
	a := mkResult([]string{"api.x.com"}, nil)
	i := mkResult(nil, []string{"api.x.com"})
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsAndroidOnly || pa.Class != ClassInconsistent {
		t.Fatalf("%v %v", pa.Outcome, pa.Class)
	}
	if pa.PinnedAndroidSeenUnpinnedIOS != 1 {
		t.Fatalf("cell %v", pa.PinnedAndroidSeenUnpinnedIOS)
	}
}

func TestExclusiveIOSInconclusive(t *testing.T) {
	a := mkResult(nil, []string{"other.net"})
	i := mkResult([]string{"ios-only.x.com"}, nil)
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsIOSOnly || pa.Class != ClassInconclusive {
		t.Fatalf("%v %v", pa.Outcome, pa.Class)
	}
}

func TestPairNeither(t *testing.T) {
	a := mkResult(nil, []string{"a.net"})
	i := mkResult(nil, []string{"a.net"})
	pa := AnalyzePair("X", a, i)
	if pa.Outcome != PinsNeither {
		t.Fatalf("outcome %v", pa.Outcome)
	}
}
