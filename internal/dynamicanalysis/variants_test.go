package dynamicanalysis

import (
	"testing"

	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// TestNaiveDetectorFalsePositives: the non-differential detector must flag
// destinations whose connections go unused under MITM for reasons other
// than pinning — here a redundant connection that never carries data in
// either setting (one of the §4.2.2 confounders).
func TestNaiveDetectorFalsePositives(t *testing.T) {
	h := newHarness(t, "idle.example.com")
	scripts := []script{{host: "idle.example.com", used: false}}
	capB := h.run(true, scripts)

	naive := DetectNaive("app", capB, Options{})
	if !naive.Pins() {
		t.Fatal("naive detector did not flag the unused (non-pinned) destination")
	}
	// The differential detector, seeing no data in the baseline either,
	// does not.
	capA := h.run(false, scripts)
	full := Detect("app", capA, capB, Options{})
	if full.Pins() {
		t.Fatal("differential detector flagged a redundant connection")
	}
}

// TestLegacyClassifierMissesTLS13Pinning: treating TLS 1.3 records like
// TLS 1.2 makes the disguised encrypted alert look like application data,
// so the MITM run appears "used" and the pinning goes undetected.
func TestLegacyClassifierMissesTLS13Pinning(t *testing.T) {
	h := newHarness(t, "pinned.example.com")
	scripts := []script{{
		host: "pinned.example.com",
		pins: caPin(h, "pinned.example.com"),
		mode: tlswire.FailAlertClose,
		maxV: tlswire.TLS13,
		used: true, payload: "GET /",
	}}
	capA := h.run(false, scripts)
	capB := h.run(true, scripts)

	proper := Detect("app", capA, capB, Options{})
	if !proper.Pins() {
		t.Fatal("proper detector missed TLS 1.3 pinning")
	}
	legacy := DetectWith("app", capA, capB, Options{}, ClassifyFlowLegacy)
	if legacy.Pins() {
		t.Fatal("legacy classifier should have been fooled by the disguised alert")
	}
}

// TestLegacyClassifierFineOnTLS12: on TLS <= 1.2 both classifiers agree.
func TestLegacyClassifierFineOnTLS12(t *testing.T) {
	h := newHarness(t, "pinned.example.com")
	scripts := []script{{
		host: "pinned.example.com",
		pins: caPin(h, "pinned.example.com"),
		mode: tlswire.FailAlertClose,
		maxV: tlswire.TLS12,
		used: true, payload: "GET /",
	}}
	capA := h.run(false, scripts)
	capB := h.run(true, scripts)
	if !DetectWith("app", capA, capB, Options{}, ClassifyFlowLegacy).Pins() {
		t.Fatal("legacy classifier missed TLS 1.2 pinning")
	}
}

// TestDetectWithMatchesDetect: the default classifier plugged into
// DetectWith must reproduce Detect exactly.
func TestDetectWithMatchesDetect(t *testing.T) {
	h := newHarness(t, "pinned.example.com", "open.example.com")
	scripts := []script{
		{host: "pinned.example.com", pins: caPin(h, "pinned.example.com"), used: true, payload: "x"},
		{host: "open.example.com", used: true, payload: "y"},
	}
	capA := h.run(false, scripts)
	capB := h.run(true, scripts)
	a := Detect("app", capA, capB, Options{})
	b := DetectWith("app", capA, capB, Options{}, ClassifyFlow)
	if len(a.Verdicts) != len(b.Verdicts) {
		t.Fatalf("verdict counts differ: %d vs %d", len(a.Verdicts), len(b.Verdicts))
	}
	for d, va := range a.Verdicts {
		vb := b.Verdicts[d]
		if vb == nil || va.Pinned != vb.Pinned || va.UsedNoMITM != vb.UsedNoMITM {
			t.Fatalf("verdicts differ at %s: %+v vs %+v", d, va, vb)
		}
	}
}

// TestSummarizeCaptureWithCustomClassifier sanity-checks the pluggable
// summarizer.
func TestSummarizeCaptureWithCustomClassifier(t *testing.T) {
	h := newHarness(t, "x.example.com")
	cap := h.run(false, []script{{host: "x.example.com", used: true, payload: "z"}})
	everythingFails := func(*netem.Flow) ConnStatus { return StatusFailed }
	sum := SummarizeCaptureWith(cap, everythingFails)
	ds := sum["x.example.com"]
	if ds == nil || ds.Failed == 0 || ds.Used != 0 {
		t.Fatalf("custom classifier ignored: %+v", ds)
	}
}

// TestOSFingerprintIndistinguishable reproduces the §4.5 observation that
// motivated name-based exclusion: OS verification traffic and app traffic
// ride the same TLS stack, so their ClientHello fingerprints collide.
func TestOSFingerprintIndistinguishable(t *testing.T) {
	stack := func(sni string) *tlswire.HelloInfo {
		return &tlswire.HelloInfo{
			SNI: sni, MaxVersion: tlswire.TLS13,
			CipherSuites: tlswire.ModernSuites, ALPN: []string{"h2"},
		}
	}
	osHello := stack("assoc.example.com")    // OS associated-domain check
	appHello := stack("api.app.example.com") // app traffic, same platform stack
	if osHello.Fingerprint() != appHello.Fingerprint() {
		t.Fatal("fingerprints differ — the paper's exclusion-by-name would have been unnecessary")
	}
}

var _ = pki.SHA256 // keep the import used if helpers change
