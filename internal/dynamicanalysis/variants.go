package dynamicanalysis

// variants.go hosts detector variants used by the ablation benches: a
// naive non-differential detector and a classifier that ignores the TLS 1.3
// record disguise. They quantify how much each design choice of §4.2
// contributes to the methodology's accuracy.

import (
	"pinscope/internal/netem"
	"pinscope/internal/tlswire"
)

// Classifier maps a flow to a connection status.
type Classifier func(*netem.Flow) ConnStatus

// ClassifyFlowLegacy treats every version like TLS <= 1.2: any
// application_data record counts as "used". Under TLS 1.3 this mistakes
// handshake flights and encrypted alerts for application traffic.
func ClassifyFlowLegacy(f *netem.Flow) ConnStatus {
	for _, r := range f.Records() {
		if r.WireType == tlswire.RecAppData {
			return StatusUsed
		}
	}
	clientClose, _ := f.CloseFlags()
	if clientClose != tlswire.CloseNone {
		return StatusFailed
	}
	return StatusInconclusive
}

// SummarizeCaptureWith is SummarizeCapture with a pluggable classifier.
func SummarizeCaptureWith(cap *netem.Capture, classify Classifier) map[string]*DestSummary {
	out := make(map[string]*DestSummary)
	for _, f := range cap.Flows() {
		dest := flowDest(f)
		ds := out[dest]
		if ds == nil {
			ds = &DestSummary{Dest: dest, Versions: make(map[tlswire.Version]bool)}
			out[dest] = ds
		}
		switch classify(f) {
		case StatusUsed:
			ds.Used++
		case StatusFailed:
			ds.Failed++
		default:
			ds.Inconclusive++
		}
		if h := f.ClientHello(); h != nil {
			for _, c := range h.CipherSuites {
				if c.IsWeak() {
					ds.WeakCipherOffered = true
				}
			}
		}
		if v := f.NegotiatedVersion(); v != 0 {
			ds.Versions[v] = true
		}
	}
	return out
}

// DetectWith runs the differential analysis with a pluggable classifier.
func DetectWith(appID string, noMITM, mitm *netem.Capture, opts Options, classify Classifier) *Result {
	base := SummarizeCaptureWith(noMITM, classify)
	inter := SummarizeCaptureWith(mitm, classify)
	res := &Result{AppID: appID, Verdicts: make(map[string]*DestVerdict)}
	all := make(map[string]bool)
	for d := range base {
		all[d] = true
	}
	for d := range inter {
		all[d] = true
	}
	for dest := range all {
		v := &DestVerdict{Dest: dest, Excluded: excluded(dest, opts.ExcludeDomains)}
		if b := base[dest]; b != nil {
			v.UsedNoMITM = b.Used > 0
			v.WeakCipherOffered = b.WeakCipherOffered
			v.ConclusiveFlows += b.Used + b.Failed
		}
		if m := inter[dest]; m != nil {
			v.UsedMITM = m.Used > 0
			v.ConclusiveFlows += m.Used + m.Failed
		}
		// Same failure-excess differential as Detect: failures present in
		// both captures cancel; only interception-induced ones count.
		if !v.Excluded && v.UsedNoMITM {
			bFailed := 0
			if b := base[dest]; b != nil {
				bFailed = b.Failed
			}
			if m := inter[dest]; m != nil && m.Used == 0 && m.Failed > bFailed {
				v.Pinned = true
			}
		}
		res.Verdicts[dest] = v
	}
	return res
}

// DetectNaive is the non-differential strawman: it looks ONLY at the MITM
// capture and calls every destination whose connections always failed
// "pinned". Without the baseline it cannot distinguish pinning from server
// failures, redundant connections or protocol problems.
func DetectNaive(appID string, mitm *netem.Capture, opts Options) *Result {
	inter := SummarizeCapture(mitm)
	res := &Result{AppID: appID, Verdicts: make(map[string]*DestVerdict)}
	for dest, m := range inter {
		v := &DestVerdict{Dest: dest, Excluded: excluded(dest, opts.ExcludeDomains)}
		v.UsedMITM = m.Used > 0
		if !v.Excluded && m.Used == 0 && m.Failed > 0 {
			v.Pinned = true
		}
		res.Verdicts[dest] = v
	}
	return res
}
