package dynamicanalysis

import (
	"testing"

	"pinscope/internal/detrand"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
	"pinscope/internal/whois"
)

// harness builds a two-host world and executes a scripted client behaviour
// with and without MITM, returning the detector verdicts.
type harness struct {
	t     *testing.T
	net   *netem.Network
	eco   *pki.Ecosystem
	chain map[string]pki.Chain
	proxy *mitmproxy.Proxy
	store *pki.RootStore // device store including proxy CA
}

func newHarness(t *testing.T, hosts ...string) *harness {
	t.Helper()
	eco, err := pki.BuildEcosystem(detrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: netem.New(), eco: eco, chain: map[string]pki.Chain{}}
	rng := detrand.New(2)
	for _, host := range hosts {
		chain, _, err := eco.IssuePublicChain(rng.Child(host), host, pki.LeafOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h.chain[host] = chain
		hh := host
		h.net.Listen(hh, func(tr tlswire.Transport) {
			tlswire.Serve(tr, &tlswire.ServerConfig{Chain: h.chain[hh]})
		})
	}
	h.proxy, err = mitmproxy.NewWithCA(detrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	h.store = eco.AOSP.Clone("device")
	h.store.Add(h.proxy.CACert().Cert)
	return h
}

// script is one client connection to run.
type script struct {
	host    string
	pins    *pki.PinSet
	mode    tlswire.FailureMode
	maxV    tlswire.Version
	used    bool
	payload string
}

func (h *harness) run(mitm bool, scripts []script) *netem.Capture {
	h.t.Helper()
	if mitm {
		h.net.SetInterceptor(h.proxy)
	} else {
		h.net.SetInterceptor(nil)
	}
	cap := netem.NewCapture()
	for _, s := range scripts {
		tr, err := h.net.Dial(s.host, netem.DialOpts{Capture: cap})
		if err != nil {
			h.t.Fatal(err)
		}
		conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
			ServerName: s.host,
			RootStore:  h.store,
			Pins:       s.pins,
			PinFailure: s.mode,
			MaxVersion: s.maxV,
		})
		if err == nil && s.used {
			conn.Send([]byte(s.payload))
			conn.Recv()
			conn.Close()
		}
		tr.Close(tlswire.CloseFIN)
	}
	h.net.WaitIdle()
	return cap
}

func (h *harness) detect(scripts []script, opts Options) *Result {
	a := h.run(false, scripts)
	b := h.run(true, scripts)
	return Detect("test.app", a, b, opts)
}

func caPin(h *harness, host string) *pki.PinSet {
	return &pki.PinSet{Pins: []pki.Pin{pki.NewPin(h.chain[host][1], pki.SHA256)}}
}

func TestDetectsPinnedDestination(t *testing.T) {
	for _, mode := range []tlswire.FailureMode{
		tlswire.FailAlertClose, tlswire.FailReset, tlswire.FailSilentIdle,
	} {
		for _, v := range []tlswire.Version{tlswire.TLS12, tlswire.TLS13} {
			h := newHarness(t, "pinned.example.com", "open.example.com")
			res := h.detect([]script{
				{host: "pinned.example.com", pins: caPin(h, "pinned.example.com"),
					mode: mode, maxV: v, used: true, payload: "GET /secure"},
				{host: "open.example.com", maxV: v, used: true, payload: "GET /"},
			}, Options{})
			if !res.Verdicts["pinned.example.com"].Pinned {
				t.Fatalf("mode=%v v=%v: pinned destination missed", mode, v)
			}
			if res.Verdicts["open.example.com"].Pinned {
				t.Fatalf("mode=%v v=%v: open destination misdetected", mode, v)
			}
			if !res.Pins() {
				t.Fatal("Result.Pins false")
			}
			got := res.PinnedDests()
			if len(got) != 1 || got[0] != "pinned.example.com" {
				t.Fatalf("PinnedDests: %v", got)
			}
			notPinned := res.NotPinnedDests()
			if len(notPinned) != 1 || notPinned[0] != "open.example.com" {
				t.Fatalf("NotPinnedDests: %v", notPinned)
			}
		}
	}
}

func TestRedundantConnectionsNotMisdetected(t *testing.T) {
	// A destination contacted with used + redundant (unused) connections in
	// both settings must not be flagged: the MITM run still carries data.
	h := newHarness(t, "multi.example.com")
	scripts := []script{
		{host: "multi.example.com", used: true, payload: "GET /"},
		{host: "multi.example.com", used: false},
		{host: "multi.example.com", used: false},
	}
	res := h.detect(scripts, Options{})
	if res.Verdicts["multi.example.com"].Pinned {
		t.Fatal("redundant connections caused a false pinning verdict")
	}
}

func TestOnlyRedundantConnectionsNotPinned(t *testing.T) {
	// A destination never used in the baseline cannot be called pinned even
	// though its MITM connections all fail/idle.
	h := newHarness(t, "idle.example.com")
	res := h.detect([]script{{host: "idle.example.com", used: false}}, Options{})
	if res.Verdicts["idle.example.com"].Pinned {
		t.Fatal("never-used destination flagged as pinned")
	}
}

func TestVersionFailureNotMisdetected(t *testing.T) {
	// A server that rejects the client's protocol version produces alerts
	// in BOTH settings — the differential design must not call it pinned.
	h := newHarness(t, "legacy.example.com")
	h.net.Listen("legacy.example.com", func(tr tlswire.Transport) {
		tlswire.Serve(tr, &tlswire.ServerConfig{
			Chain:      h.chain["legacy.example.com"],
			MinVersion: tlswire.TLS13,
		})
	})
	scripts := []script{{host: "legacy.example.com", maxV: tlswire.TLS11, used: true}}
	res := h.detect(scripts, Options{})
	if res.Verdicts["legacy.example.com"].Pinned {
		t.Fatal("protocol-version failure misdetected as pinning")
	}
}

func TestServerResetNotMisdetected(t *testing.T) {
	h := newHarness(t, "flaky.example.com")
	h.net.Listen("flaky.example.com", func(tr tlswire.Transport) {
		tlswire.Serve(tr, &tlswire.ServerConfig{
			Chain:         h.chain["flaky.example.com"],
			ResetOnAccept: true,
		})
	})
	res := h.detect([]script{{host: "flaky.example.com", used: true}}, Options{})
	if res.Verdicts["flaky.example.com"].Pinned {
		t.Fatal("server-side reset misdetected as pinning")
	}
}

func TestExclusionSuppressesOSDomains(t *testing.T) {
	// An OS-pinned destination (fails under MITM) is excluded by name.
	h := newHarness(t, "assoc.example.com", "app.example.com")
	scripts := []script{
		{host: "assoc.example.com", pins: caPin(h, "assoc.example.com"),
			mode: tlswire.FailAlertClose, used: true, payload: "verify"},
		{host: "app.example.com", used: true, payload: "GET /"},
	}
	res := h.detect(scripts, Options{ExcludeDomains: []string{"assoc.example.com"}})
	v := res.Verdicts["assoc.example.com"]
	if !v.Excluded || v.Pinned {
		t.Fatalf("exclusion failed: %+v", v)
	}
	if res.Pins() {
		t.Fatal("excluded destination still counted as pinning")
	}
	// Suffix exclusion covers subdomains.
	if !excluded("sub.icloud.com", []string{"icloud.com"}) {
		t.Fatal("suffix exclusion broken")
	}
	if excluded("notanicloud.com", []string{"icloud.com"}) {
		t.Fatal("suffix exclusion matches non-boundary")
	}
}

func TestWeakCipherObservation(t *testing.T) {
	h := newHarness(t, "weak.example.com")
	cap := netem.NewCapture()
	tr, _ := h.net.Dial("weak.example.com", netem.DialOpts{Capture: cap})
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName:   "weak.example.com",
		RootStore:    h.store,
		CipherSuites: tlswire.LegacySuites,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Send([]byte("x"))
	conn.Recv()
	conn.Close()
	tr.Close(tlswire.CloseFIN)
	h.net.WaitIdle()
	sum := SummarizeCapture(cap)
	if !sum["weak.example.com"].WeakCipherOffered {
		t.Fatal("weak offer not observed")
	}
	if sum["weak.example.com"].Used != 1 {
		t.Fatalf("used count %d", sum["weak.example.com"].Used)
	}
}

func TestClassifyFlowInconclusiveWhenNeverClosed(t *testing.T) {
	// Build a flow by hand: handshake only, no close events.
	cap := netem.NewCapture()
	h := newHarness(t, "x.example.com")
	tr, _ := h.net.Dial("x.example.com", netem.DialOpts{Capture: cap})
	_, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "x.example.com", RootStore: h.store, MaxVersion: tlswire.TLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Connection intentionally left open (capture window ends first).
	fl := cap.Flows()[0]
	if got := ClassifyFlow(fl); got != StatusInconclusive {
		t.Fatalf("open unused flow classified %v", got)
	}
	tr.Close(tlswire.CloseFIN)
	h.net.WaitIdle()
	if got := ClassifyFlow(fl); got != StatusFailed {
		t.Fatalf("closed unused flow classified %v", got)
	}
}

func TestIsFirstParty(t *testing.T) {
	reg := whois.NewRegistry()
	reg.Register(whois.Record{Domain: "swiftrecipe.com", Org: "Recipe Labs"})
	reg.Register(whois.Record{Domain: "tracker.net", Org: "AdTech Corp"})
	reg.Register(whois.Record{Domain: "private.io", Org: "Recipe Labs", Private: true})

	if !IsFirstParty("api.swiftrecipe.com", "Recipe Labs", "Swift Recipe", reg) {
		t.Fatal("whois org match failed")
	}
	if IsFirstParty("collect.tracker.net", "Recipe Labs", "Swift Recipe", reg) {
		t.Fatal("foreign org attributed first-party")
	}
	// Privacy-protected: fall back to name-token matching.
	if !IsFirstParty("swiftrecipe.private.io", "Recipe Labs", "Swift Recipe", reg) {
		t.Fatal("name-token fallback failed")
	}
	if IsFirstParty("cdn.unrelated.org", "Recipe Labs", "Swift Recipe", reg) {
		t.Fatal("unrelated unregistered domain attributed first-party")
	}
}
