package report

import (
	"strings"
	"testing"

	"pinscope/internal/core"
	"pinscope/internal/worldgen"
)

func TestLongitudinalSectionsRender(t *testing.T) {
	cfg := core.Config{
		Params: worldgen.Params{
			Seed:       77,
			CommonSize: 3, PopularSize: 4, RandomSize: 4,
			StoreAndroid: 400, StoreIOS: 390,
			CrossProducts: 4, PopularCut: 120,
		},
		Window: 30,
	}
	ls, err := core.RunLongitudinal(cfg, core.TimelineConfig{
		Points: []string{"froyo", "kitkat", "distrust-ca-distrust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	full := Longitudinal(ls)
	for _, want := range []string{
		"Timeline:", "Table 3 over time", "Breakage per timeline point",
		"Breakage deltas", "froyo", "kitkat", "distrust-ca-distrust",
		"froyo -> kitkat",
	} {
		if !strings.Contains(full, want) {
			t.Errorf("longitudinal report missing %q", want)
		}
	}
	// One column per point in the over-time table.
	head := strings.SplitN(Table3OverTime(ls), "\n", 4)[2]
	for _, tag := range []string{"froyo", "kitkat", "distrust-ca-distrust"} {
		if !strings.Contains(head, tag) {
			t.Errorf("Table3OverTime header missing point column %q:\n%s", tag, head)
		}
	}
	if Timeline(ls) == "" || Breakage(ls) == "" || BreakageDeltas(ls) == "" {
		t.Fatal("empty sections")
	}
}
