package report

// snapshot.go renders the aggregates recomputed from a released snapshot
// (core.SnapshotAggregates) with the same column formatter as the live
// study tables, so the serving layer's text endpoints and the one-shot
// reports line up visually.

import (
	"fmt"
	"strings"

	"pinscope/internal/core"
)

// SnapshotPrevalence renders the snapshot's Table 3 counterpart.
func SnapshotPrevalence(a *core.SnapshotAggregates) string {
	t := &table{header: []string{"Dataset", "Platform", "Apps", "Dynamic", "Embedded Certs", "Config Files (NSC)"}}
	for _, c := range a.Prevalence {
		nsc := "-"
		if c.NSCPinSets >= 0 {
			nsc = fmt.Sprintf("%s (%d)", pct(c.NSCPinSets, c.Apps), c.NSCPinSets)
		}
		t.add(c.Dataset, c.Platform,
			fmt.Sprintf("%d", c.Apps),
			fmt.Sprintf("%s (%d)", pct(c.Dynamic, c.Apps), c.Dynamic),
			fmt.Sprintf("%s (%d)", pct(c.StaticEmbedded, c.Apps), c.StaticEmbedded),
			nsc)
	}
	return "Snapshot table 1: pinning prevalence by method and dataset\n\n" + t.String()
}

// SnapshotCategories renders the snapshot's Table 4/5 counterpart.
func SnapshotCategories(a *core.SnapshotAggregates) string {
	t := &table{header: []string{"Platform", "Category", "Pinning %", "Pinning", "Apps"}}
	for _, c := range a.Categories {
		t.add(c.Platform, c.Category,
			fmt.Sprintf("%.2f%%", c.Pct),
			fmt.Sprintf("%d", c.Pinning),
			fmt.Sprintf("%d", c.Apps))
	}
	return "Snapshot table 2: top categories of pinning apps\n\n" + t.String()
}

// SnapshotPKI renders the snapshot's Table 6 counterpart.
func SnapshotPKI(a *core.SnapshotAggregates) string {
	t := &table{header: []string{"Pinned destinations", "Default PKI", "Custom PKI", "Self-signed", "Data Unavailable"}}
	p := a.PKI
	t.add(fmt.Sprintf("%d", p.Destinations),
		fmt.Sprintf("%d", p.DefaultPKI),
		fmt.Sprintf("%d", p.CustomPKI),
		fmt.Sprintf("%d", p.SelfSigned),
		fmt.Sprintf("%d", p.Unavailable))
	return "Snapshot table 3: PKI type of pinned destinations\n\n" + t.String()
}

// SnapshotTables renders every snapshot table, in endpoint order.
func SnapshotTables(a *core.SnapshotAggregates) string {
	return strings.Join([]string{
		SnapshotPrevalence(a), SnapshotCategories(a), SnapshotPKI(a),
	}, "\n")
}
