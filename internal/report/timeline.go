package report

// timeline.go renders the longitudinal study's time axis: Table 3 pivoted
// over root-program releases and distrust events, the per-point breakage
// table, and the transition deltas between consecutive points.

import (
	"fmt"
	"strings"

	"pinscope/internal/core"
)

// Timeline renders the merged timeline itself: each point's logical date,
// the release in effect per platform, and the distrust events in force.
func Timeline(ls *core.LongitudinalStudy) string {
	t := &table{header: []string{"Point", "Day", "Android", "iOS", "Distrusted"}}
	for _, p := range ls.Points {
		dis := "-"
		if len(p.Point.Distrusted) > 0 {
			dis = strings.Join(p.Point.Distrusted, ",")
		}
		t.add(p.Point.Tag, fmt.Sprintf("%d", p.Point.Date), p.Point.Android, p.Point.IOS, dis)
	}
	return "Timeline: root-program points measured (days relative to the study epoch)\n\n" + t.String()
}

// Table3OverTime renders pinning prevalence per dataset cell across every
// measured timeline point — Table 3 with time as the extra axis.
func Table3OverTime(ls *core.LongitudinalStudy) string {
	header := []string{"Dataset", "Platform"}
	for _, p := range ls.Points {
		header = append(header, p.Point.Tag)
	}
	t := &table{header: header}
	for _, row := range ls.Table3OverTime() {
		cells := []string{row.Cell.Dataset, platName(row.Cell.Platform)}
		for _, c := range row.Points {
			cells = append(cells, fmt.Sprintf("%s (%d)", pct(c.Dynamic, c.N), c.Dynamic))
		}
		t.add(cells...)
	}
	return "Table 3 over time: dynamic pinning prevalence per store release\n\n" + t.String()
}

// Breakage renders the per-point dark-destination counts: connections
// whose baseline leg carried no data because the point's store no longer
// (or did not yet) trust their chain's anchor.
func Breakage(ls *core.LongitudinalStudy) string {
	t := &table{header: []string{"Point", "Platform", "Apps", "Broken Apps", "Dests", "Broken Dests", "Pinned+Broken"}}
	for _, p := range ls.Points {
		for _, c := range p.Breakage {
			t.add(p.Point.Tag, platName(c.Platform),
				fmt.Sprintf("%d", c.Apps),
				fmt.Sprintf("%s (%d)", pct(c.BrokenApps, c.Apps), c.BrokenApps),
				fmt.Sprintf("%d", c.Dests),
				fmt.Sprintf("%s (%d)", pct(c.BrokenDests, c.Dests), c.BrokenDests),
				fmt.Sprintf("%d", c.PinnedBroken))
		}
	}
	return "Breakage per timeline point (destinations dark on the baseline leg)\n\n" + t.String()
}

// BreakageDeltas renders the transitions: how many apps/destinations each
// consecutive point pair broke (positive) or healed (negative).
func BreakageDeltas(ls *core.LongitudinalStudy) string {
	t := &table{header: []string{"Transition", "Platform", "ΔBroken Apps", "ΔBroken Dests", "ΔPinned+Broken"}}
	signed := func(n int) string {
		if n > 0 {
			return fmt.Sprintf("+%d", n)
		}
		return fmt.Sprintf("%d", n)
	}
	for _, d := range ls.BreakageDeltas() {
		t.add(d.From+" -> "+d.To, platName(d.Platform),
			signed(d.BrokenApps), signed(d.BrokenDests), signed(d.PinnedBroken))
	}
	return "Breakage deltas across consecutive timeline points\n\n" + t.String()
}

// Longitudinal renders the full time-axis report.
func Longitudinal(ls *core.LongitudinalStudy) string {
	sections := []string{
		Timeline(ls), Table3OverTime(ls), Breakage(ls), BreakageDeltas(ls),
	}
	return strings.Join(sections, "\n"+strings.Repeat("=", 72)+"\n\n")
}
