// Package report renders the study's experiments as the ASCII counterparts
// of the paper's tables and figures. Every renderer consumes the typed
// results computed by internal/core, so cmd/pinstudy, the benches and
// EXPERIMENTS.md all show identical numbers.
package report

import (
	"fmt"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
	"pinscope/internal/pii"
	"pinscope/internal/stats"
)

// table is a minimal column formatter.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func pct(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", stats.Percent(n, d))
}

func platName(p appmodel.Platform) string {
	if p == appmodel.Android {
		return "Android"
	}
	return "iOS"
}

// Table1 renders the dataset overview.
func Table1(s *core.Study) string {
	var b strings.Builder
	b.WriteString("Table 1: dataset overview (top categories per dataset)\n\n")
	for _, row := range s.Table1(10) {
		fmt.Fprintf(&b, "%s %s (n=%d):\n", row.Cell.Dataset, platName(row.Cell.Platform), row.Total)
		for i, kv := range row.Top {
			fmt.Fprintf(&b, "  %2d. %-18s %s\n", i+1, kv.Key, pct(kv.Count, row.Total))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 renders the prior-work comparison.
func Table2(s *core.Study) string {
	t := &table{header: []string{"Study", "Year", "Prevalence", "Analysis", "Dataset"}}
	for _, r := range s.Table2() {
		marker := ""
		if r.Measured {
			marker = " *"
		}
		t.add(r.Study+marker, fmt.Sprintf("%d", r.Year),
			fmt.Sprintf("%.2f%%", r.Prevalence), r.Analysis, r.Dataset)
	}
	return "Table 2: certificate pinning prevalence in prior work vs the\nNSC-only technique measured on our datasets (*)\n\n" + t.String()
}

// Table3 renders prevalence by method.
func Table3(s *core.Study) string {
	t := &table{header: []string{"Dataset", "Platform", "Dynamic", "Embedded Certs", "Config Files (NSC)"}}
	for _, c := range s.Table3() {
		nsc := "-"
		if c.NSCPins >= 0 {
			nsc = fmt.Sprintf("%s (%d)", pct(c.NSCPins, c.N), c.NSCPins)
		}
		t.add(
			fmt.Sprintf("%s (n=%d)", c.Cell.Dataset, c.N),
			platName(c.Cell.Platform),
			fmt.Sprintf("%s (%d)", pct(c.Dynamic, c.N), c.Dynamic),
			fmt.Sprintf("%s (%d)", pct(c.StaticEmbedded, c.N), c.StaticEmbedded),
			nsc,
		)
	}
	return "Table 3: pinning prevalence by method and dataset\n\n" + t.String()
}

// TableCategories renders Table 4 (Android) or Table 5 (iOS).
func TableCategories(s *core.Study, platform appmodel.Platform, minApps int) string {
	n := 4
	if platform == appmodel.IOS {
		n = 5
	}
	t := &table{header: []string{"Category (Rank)", "Pinning %", "No. of Apps"}}
	for _, r := range s.TableCategories(platform, 10, minApps) {
		t.add(fmt.Sprintf("%s (%d)", r.Category, r.Rank),
			fmt.Sprintf("%.2f%%", r.Pct),
			fmt.Sprintf("%d", r.Pinning))
	}
	return fmt.Sprintf("Table %d: top categories of pinning apps on %s (all datasets)\n\n%s",
		n, platName(platform), t.String())
}

// Figure2 renders the common-dataset split.
func Figure2(s *core.Study) string {
	f := s.Figure2Data()
	var b strings.Builder
	b.WriteString("Figure 2: pinning in the Common dataset, split by platform\n\n")
	fmt.Fprintf(&b, "  common pairs analyzed:        %d\n", f.Pairs)
	fmt.Fprintf(&b, "  pin on at least one platform: %d\n", f.PinsEither)
	fmt.Fprintf(&b, "  pin on both platforms:        %d\n", f.PinsBoth)
	fmt.Fprintf(&b, "  pin on Android only:          %d\n", f.AndroidOnly)
	fmt.Fprintf(&b, "  pin on iOS only:              %d\n", f.IOSOnly)
	fmt.Fprintf(&b, "  of both-platform pinners:\n")
	fmt.Fprintf(&b, "    consistent:                 %d (identical domain sets: %d)\n", f.Consistent, f.IdenticalSets)
	fmt.Fprintf(&b, "    inconsistent:               %d\n", f.Inconsistent)
	fmt.Fprintf(&b, "    inconclusive:               %d\n", f.Inconclusive)
	return b.String()
}

// Figure3 renders the both-platform inconsistency heatmap.
func Figure3(s *core.Study) string {
	t := &table{header: []string{"App", "Jaccard(pinned)", "% pinnedAndroid not pinned iOS", "% pinnedIOS not pinned Android"}}
	for _, r := range s.Figure3Data() {
		t.add(r.Name,
			fmt.Sprintf("%.2f", r.Jaccard),
			fmt.Sprintf("%.0f%%", r.PinnedAOnNotI*100),
			fmt.Sprintf("%.0f%%", r.PinnedIOnNotA*100))
	}
	return "Figure 3: inconsistent apps that pin on both platforms\n\n" + t.String()
}

// Figure4 renders the exclusive-pinner heatmaps.
func Figure4(s *core.Study) string {
	android, ios := s.Figure4Data()
	var b strings.Builder
	b.WriteString("Figure 4: apps pinning exclusively on one platform\n\n")
	b.WriteString("(a) Android-only pinners: % of pinned domains seen NOT pinned on iOS\n")
	ta := &table{header: []string{"App", "% pinned->unpinned on iOS"}}
	for _, r := range android {
		ta.add(r.Name, fmt.Sprintf("%.0f%%", r.PinnedAOnNotI*100))
	}
	b.WriteString(ta.String())
	b.WriteString("\n(b) iOS-only pinners: % of pinned domains seen NOT pinned on Android\n")
	ti := &table{header: []string{"App", "% pinned->unpinned on Android"}}
	for _, r := range ios {
		ti.add(r.Name, fmt.Sprintf("%.0f%%", r.PinnedIOnNotA*100))
	}
	b.WriteString(ti.String())
	return b.String()
}

// Figure5 renders the per-app domain-split summary.
func Figure5(s *core.Study) string {
	var b strings.Builder
	b.WriteString("Figure 5: pinned vs not-pinned domains per pinning app\n")
	b.WriteString("(Popular+Random datasets; first/third-party attribution via whois)\n\n")
	for _, plat := range appmodel.Platforms {
		f := s.Figure5Stats(plat)
		fmt.Fprintf(&b, "%s (%d pinning apps):\n", platName(plat), f.Apps)
		fmt.Fprintf(&b, "  pin ALL first-party domains contacted:  %d\n", f.PinsAllFP)
		fmt.Fprintf(&b, "  leave some first parties unpinned:      %d\n", f.HasUnpinnedFP)
		fmt.Fprintf(&b, "  pin every destination contacted:        %d\n", f.PinsAllContacted)
		fmt.Fprintf(&b, "  pinned destinations: %d first-party, %d third-party (%s third-party)\n",
			f.PinnedDestsFP, f.PinnedDestsTP,
			pct(f.PinnedDestsTP, f.PinnedDestsFP+f.PinnedDestsTP))
		bars := s.Figure5Data(plat)
		fmt.Fprintf(&b, "  per-app bars (FPpin/FPopen/TPpin/TPopen), first %d shown:\n", min(8, len(bars)))
		for i, bar := range bars {
			if i == 8 {
				break
			}
			fmt.Fprintf(&b, "    %-28s %d/%d/%d/%d\n", bar.AppID,
				bar.FPPinned, bar.FPUnpinned, bar.TPPinned, bar.TPUnpinned)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table6 renders the pinned-destination PKI classification.
func Table6(s *core.Study) string {
	t := &table{header: []string{"Platform", "Default PKI", "Custom PKI", "Self-signed", "Data Unavailable"}}
	for _, r := range s.Table6() {
		t.add(platName(r.Platform),
			fmt.Sprintf("%d", r.DefaultPKI),
			fmt.Sprintf("%d", r.CustomPKI),
			fmt.Sprintf("%d", r.SelfSigned),
			fmt.Sprintf("%d", r.Unavailable))
	}
	return "Table 6: PKI type of pinned destinations\n\n" + t.String()
}

// CertAnalysis renders the §5.3.2-§5.3.4 statistics.
func CertAnalysis(s *core.Study) string {
	pt := s.PinTargets()
	rot := s.Rotations()
	var b strings.Builder
	b.WriteString("Certificate analysis (§5.3)\n\n")
	fmt.Fprintf(&b, "  static/dynamic cert matching: %d of %d pinning apps matched (%s)\n",
		pt.AppsMatched, pt.PinningApps, pct(pt.AppsMatched, pt.PinningApps))
	fmt.Fprintf(&b, "  matched pinned certificates: %d CA (%s) vs %d leaf\n",
		pt.CACerts, pct(pt.CACerts, pt.MatchedCerts), pt.LeafCerts)
	fmt.Fprintf(&b, "  leaf-pinned destinations: %d; served a renewed leaf: %d; key reused: %d\n",
		rot.LeafPinnedDests, rot.ServedNewLeaf, rot.KeyReused)
	fmt.Fprintf(&b, "  pinned destinations serving expired-yet-accepted certs: %d\n", s.ExpiredAccepted())
	return b.String()
}

// Table7 renders the third-party framework attribution.
func Table7(s *core.Study, minApps int) string {
	var b strings.Builder
	b.WriteString("Table 7: top third-party frameworks carrying certificate material\n\n")
	for _, plat := range appmodel.Platforms {
		fmt.Fprintf(&b, "%s:\n", platName(plat))
		t := &table{header: []string{"Framework", "Kind", "# apps"}}
		for _, fw := range s.Table7(plat, 5, minApps) {
			t.add(fw.SDK.Name, fw.SDK.Kind, fmt.Sprintf("%d", fw.Apps))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Table8 renders the weak-cipher comparison.
func Table8(s *core.Study) string {
	t := &table{header: []string{"Dataset", "Platform", "Overall (weak ciphers)", "Pinning apps (weak pinned conns)"}}
	for _, c := range s.Table8() {
		t.add(c.Cell.Dataset, platName(c.Cell.Platform),
			pct(c.OverallWeak, c.OverallApps),
			pct(c.PinnedWeak, c.PinningApps))
	}
	return "Table 8: weak ciphers in pinned vs all connections\n\n" + t.String()
}

// Table9 renders the PII comparison.
func Table9(s *core.Study) string {
	t := &table{header: []string{"Platform", "PII", "Pinned", "Non-Pinned", "p-value", "Significant"}}
	for _, r := range s.Table9() {
		if r.PinnedWith == 0 && r.NonPinnedWith == 0 {
			continue
		}
		name := string(r.Kind)
		if r.Kind == pii.GeoLat {
			name = "lat/lon"
		}
		sig := ""
		if r.Significant {
			sig = "* (p<0.05)"
		}
		t.add(platName(r.Platform), name,
			fmt.Sprintf("%.2f%% (%d/%d)", r.PctPinned, r.PinnedWith, r.PinnedTotal),
			fmt.Sprintf("%.2f%% (%d/%d)", r.PctNonPinned, r.NonPinnedWith, r.NonPinnedTotal),
			fmt.Sprintf("%.3f", r.PValue), sig)
	}
	return "Table 9: PII in pinned vs non-pinned traffic (destination level)\n\n" + t.String()
}

// Circumvention renders the §4.3 rates.
func Circumvention(s *core.Study) string {
	t := &table{header: []string{"Platform", "Pinned destinations", "Circumvented", "Rate"}}
	for _, c := range s.Circumvention() {
		t.add(platName(c.Platform), fmt.Sprintf("%d", c.Dests),
			fmt.Sprintf("%d", c.Circumvented), fmt.Sprintf("%.2f%%", c.Pct))
	}
	return "Pinning circumvention by TLS-library hooking (§4.3)\n\n" + t.String()
}

// Quality renders the simulation-validation confusion matrix.
func Quality(s *core.Study) string {
	q := s.Quality()
	var b strings.Builder
	b.WriteString("Detector validation against generator ground truth (simulation only)\n\n")
	fmt.Fprintf(&b, "  apps studied:     %d\n", q.Apps)
	fmt.Fprintf(&b, "  true positives:   %d\n", q.TruePositives)
	fmt.Fprintf(&b, "  false positives:  %d\n", q.FalsePositives)
	fmt.Fprintf(&b, "  false negatives:  %d\n", q.FalseNegatives)
	fmt.Fprintf(&b, "  precision:        %.3f\n", q.Precision)
	fmt.Fprintf(&b, "  recall:           %.3f\n", q.Recall)
	return b.String()
}

// Interaction renders the §4.2.1 app-interaction comparison.
func Interaction(s *core.Study, sample int) string {
	r := s.InteractionExperiment(sample)
	var b strings.Builder
	b.WriteString("App-interaction experiment (§4.2.1)\n\n")
	fmt.Fprintf(&b, "  apps sampled:                      %d\n", r.Apps)
	fmt.Fprintf(&b, "  avg domains, launch only:          %.2f\n", r.AvgDomainsLaunchOnly)
	fmt.Fprintf(&b, "  avg domains, with monkey input:    %.2f\n", r.AvgDomainsInteractive)
	fmt.Fprintf(&b, "  relative change:                   %+.1f%%\n", r.RelativeChange*100)
	b.WriteString("  (semantic flows — sign-up, log-in — stay out of reach of random\n")
	b.WriteString("   input, so interactions are omitted from the main runs, as in the paper)\n")
	return b.String()
}

// Misconfigs renders the NSC misconfiguration analysis.
func Misconfigs(s *core.Study) string {
	m := s.Misconfigs()
	var b strings.Builder
	b.WriteString("Android NSC misconfiguration analysis (§2.2 context)\n\n")
	fmt.Fprintf(&b, "  Android apps analyzed:        %d\n", m.AndroidApps)
	fmt.Fprintf(&b, "  shipping an NSC:              %d (%s)\n", m.NSCApps, pct(m.NSCApps, m.AndroidApps))
	fmt.Fprintf(&b, "  NSC with pin-set:             %d\n", m.NSCPinApps)
	fmt.Fprintf(&b, "  with misconfigurations:       %d\n", m.Misconfigured)
	for _, e := range m.Examples {
		fmt.Fprintf(&b, "    e.g. %s\n", e)
	}
	return b.String()
}

// Sweep renders the §4.2.1 sleep-window sweep.
func Sweep(points []core.SweepPoint) string {
	t := &table{header: []string{"Window (s)", "Apps sampled", "Avg TLS handshakes"}}
	for _, p := range points {
		t.add(fmt.Sprintf("%.0f", p.Window), fmt.Sprintf("%d", p.AppsSampled),
			fmt.Sprintf("%.2f", p.AvgHandshakes))
	}
	return "Sleep-window sweep (§4.2.1)\n\n" + t.String()
}

// Ablations renders the methodology ablations.
func Ablations(rows []core.AblationResult) string {
	t := &table{header: []string{"Ablation", "Apps", "False positives", "Missed pinners"}}
	for _, r := range rows {
		t.add(r.Name, fmt.Sprintf("%d", r.Apps),
			fmt.Sprintf("%d", r.FalsePositives), fmt.Sprintf("%d", r.Missed))
	}
	return "Methodology ablations\n\n" + t.String()
}

// Robustness renders the resilient runner's retry/quarantine/degradation
// accounting.
func Robustness(s *core.Study) string {
	st := s.Robustness()
	var b strings.Builder
	b.WriteString("Study robustness (fault injection, retries, quarantine)\n\n")
	if s.Cfg.Faults.Enabled() {
		r := s.Cfg.Faults.Rates()
		fmt.Fprintf(&b, "  fault rates: reset %.0f%%, record drop %.0f%%, capture trunc %.0f%%,\n",
			r.ConnReset*100, r.RecordDrop*100, r.CaptureTrunc*100)
		fmt.Fprintf(&b, "               app crash %.0f%%, decrypt fail %.0f%%, forge fail %.0f%%\n",
			r.AppCrash*100, r.DecryptFail*100, r.ForgeFail*100)
		fmt.Fprintf(&b, "  retry budget per app:    %d\n\n", s.Cfg.Retries)
	} else {
		b.WriteString("  fault injection disabled (clean run)\n\n")
	}
	fmt.Fprintf(&b, "  apps studied:            %d\n", st.Apps)
	fmt.Fprintf(&b, "  measurement attempts:    %d\n", st.Attempts)
	fmt.Fprintf(&b, "  apps retried:            %d (%s)\n", st.Retried, pct(st.Retried, st.Apps))
	fmt.Fprintf(&b, "  apps quarantined:        %d (%s)\n", st.Quarantined, pct(st.Quarantined, st.Apps))
	fmt.Fprintf(&b, "  confidence: full %d, dynamic-only %d, static-only %d, none %d\n",
		st.Full, st.DynamicOnly, st.StaticOnly, st.None)
	fmt.Fprintf(&b, "  iOS Common delayed re-run kept: %d\n", st.DelayedRerunKept)
	return b.String()
}

// Chaos renders a chaos sweep: per fault rate, the robustness accounting
// and the largest drift of any Table 3 dynamic prevalence from the
// fault-free reference.
func Chaos(points []core.ChaosPoint) string {
	t := &table{header: []string{"Fault rate", "Apps", "Attempts", "Retried", "Quarantined", "Degraded", "Max |drift| (pp)", "Shards killed", "Resumed frames", "Shard merge", "Net faults", "Fenced", "Net merge"}}
	for _, p := range points {
		degraded := p.Stats.DynamicOnly + p.Stats.StaticOnly + p.Stats.None
		killed, resumed, merge := "-", "-", "-"
		if p.Sharded != nil {
			killed = fmt.Sprintf("%d", p.Sharded.Stats.WorkersKilled)
			resumed = fmt.Sprintf("%d", p.Sharded.Stats.ResumedFrames)
			merge = "diverged"
			if p.Sharded.ByteIdentical {
				merge = "identical"
			}
		}
		netFaults, fenced, netMerge := "-", "-", "-"
		if p.Net != nil {
			netFaults = fmt.Sprintf("%d", p.Net.NetFaults)
			fenced = fmt.Sprintf("%d", p.Net.Stats.Net.Fenced)
			netMerge = "diverged"
			if p.Net.ByteIdentical {
				netMerge = "identical"
			}
		}
		t.add(
			fmt.Sprintf("%.0f%%", p.Rate*100),
			fmt.Sprintf("%d", p.Stats.Apps),
			fmt.Sprintf("%d", p.Stats.Attempts),
			fmt.Sprintf("%d", p.Stats.Retried),
			fmt.Sprintf("%d", p.Stats.Quarantined),
			fmt.Sprintf("%d", degraded),
			fmt.Sprintf("%.2f", p.MaxAbsDriftPP),
			killed, resumed, merge,
			netFaults, fenced, netMerge,
		)
	}
	return "Chaos sweep: Table 3 dynamic-prevalence drift under rising fault rates\n\n" + t.String()
}

// Full renders the entire study.
func Full(s *core.Study) string {
	sections := []string{
		Table1(s), Table2(s), Table3(s),
		TableCategories(s, appmodel.Android, minAppsFor(s)),
		TableCategories(s, appmodel.IOS, minAppsFor(s)),
		Figure2(s), Figure3(s), Figure4(s), Figure5(s),
		Table6(s), CertAnalysis(s), Table7(s, table7MinApps(s)),
		Table8(s), Table9(s), Circumvention(s), Misconfigs(s),
		Interaction(s, interactionSampleFor(s)),
	}
	// Only faulted runs carry robustness information worth a section;
	// omitting it on clean runs keeps their report byte-identical to
	// pre-fault-injection builds.
	if s.Cfg.Faults.Enabled() {
		sections = append(sections, Robustness(s))
	}
	return strings.Join(sections, "\n"+strings.Repeat("=", 72)+"\n\n")
}

// minAppsFor scales the category-table noise filter with dataset size.
func minAppsFor(s *core.Study) int {
	n := len(s.World.DS.PopularAndroid.Listings)
	m := n / 100
	if m < 2 {
		m = 2
	}
	return m
}

// interactionSampleFor caps the interaction-experiment sample.
func interactionSampleFor(s *core.Study) int {
	n := len(s.World.DS.PopularAndroid.Listings)
	if n > 400 {
		return 400
	}
	return n
}

// table7MinApps scales the paper's ">5 apps" review threshold.
func table7MinApps(s *core.Study) int {
	n := len(s.World.DS.PopularAndroid.Listings)
	m := n * 5 / 1000
	if m < 2 {
		m = 2
	}
	return m
}
