package report

import (
	"strings"
	"sync"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
)

var (
	once  sync.Once
	study *core.Study
	sErr  error
)

func sharedStudy(t *testing.T) *core.Study {
	t.Helper()
	once.Do(func() {
		study, sErr = core.Run(core.TestConfig(4321))
	})
	if sErr != nil {
		t.Fatal(sErr)
	}
	return study
}

func TestAllSectionsRender(t *testing.T) {
	s := sharedStudy(t)
	sections := map[string]string{
		"table1":  Table1(s),
		"table2":  Table2(s),
		"table3":  Table3(s),
		"table4":  TableCategories(s, appmodel.Android, 2),
		"table5":  TableCategories(s, appmodel.IOS, 2),
		"figure2": Figure2(s),
		"figure3": Figure3(s),
		"figure4": Figure4(s),
		"figure5": Figure5(s),
		"table6":  Table6(s),
		"certs":   CertAnalysis(s),
		"table7":  Table7(s, 2),
		"table8":  Table8(s),
		"table9":  Table9(s),
		"circ":    Circumvention(s),
	}
	for name, out := range sections {
		if len(out) < 40 {
			t.Fatalf("section %s suspiciously short: %q", name, out)
		}
		if strings.Contains(out, "%!") {
			t.Fatalf("section %s has a formatting bug: %q", name, out)
		}
	}
}

func TestTable3MentionsAllDatasets(t *testing.T) {
	out := Table3(sharedStudy(t))
	for _, want := range []string{"Common", "Popular", "Random", "Android", "iOS", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Arithmetic(t *testing.T) {
	s := sharedStudy(t)
	f := s.Figure2Data()
	if f.PinsEither != f.PinsBoth+f.AndroidOnly+f.IOSOnly {
		t.Fatalf("split does not add up: %+v", f)
	}
	if f.PinsBoth != f.Consistent+f.Inconsistent+f.Inconclusive {
		t.Fatalf("both-platform classes do not add up: %+v", f)
	}
	if f.IdenticalSets > f.Consistent {
		t.Fatalf("identical sets exceed consistent: %+v", f)
	}
}

func TestFullConcatenatesEverything(t *testing.T) {
	out := Full(sharedStudy(t))
	for _, marker := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Table 6", "Certificate analysis", "Table 7", "Table 8", "Table 9",
		"circumvention",
	} {
		if !strings.Contains(out, marker) {
			t.Fatalf("full report missing %q", marker)
		}
	}
}

func TestSweepAndAblationsRender(t *testing.T) {
	s := sharedStudy(t)
	points, err := core.SleepSweep(s.World, 5, []float64{15, 30, 60}, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := Sweep(points)
	if !strings.Contains(out, "15") || !strings.Contains(out, "60") {
		t.Fatalf("sweep output: %s", out)
	}
	rows, err := core.RunAblations(s.World, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	aout := Ablations(rows)
	if !strings.Contains(aout, "naive-detector") {
		t.Fatalf("ablations output: %s", aout)
	}
}

func TestTableFormatterAlignment(t *testing.T) {
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	w := len(lines[0])
	for i, l := range lines[1:] {
		if len(l) > w+2 && i < 1 {
			t.Fatalf("misaligned: %q", out)
		}
	}
}

func TestQualityRendering(t *testing.T) {
	out := Quality(sharedStudy(t))
	if !strings.Contains(out, "precision") || !strings.Contains(out, "recall") {
		t.Fatalf("quality output: %s", out)
	}
}

func TestInteractionAndMisconfigsRender(t *testing.T) {
	s := sharedStudy(t)
	out := Interaction(s, 20)
	if !strings.Contains(out, "relative change") {
		t.Fatalf("interaction: %s", out)
	}
	out = Misconfigs(s)
	if !strings.Contains(out, "NSC") {
		t.Fatalf("misconfigs: %s", out)
	}
}
