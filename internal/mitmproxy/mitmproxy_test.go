package mitmproxy

import (
	"bytes"
	"strings"
	"testing"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

type world struct {
	net   *netem.Network
	eco   *pki.Ecosystem
	proxy *Proxy
	chain pki.Chain // genuine chain of svc.example.com
	// trustingStore is a device store that includes the proxy CA.
	trustingStore *pki.RootStore
}

func newWorld(t *testing.T) *world {
	t.Helper()
	eco, err := pki.BuildEcosystem(detrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	chain, _, err := eco.IssuePublicChain(detrand.New(2), "svc.example.com", pki.LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := netem.New()
	n.Listen("svc.example.com", func(tr tlswire.Transport) {
		tlswire.Serve(tr, &tlswire.ServerConfig{Chain: chain})
	})
	proxy, err := NewWithCA(detrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	n.SetInterceptor(proxy)
	store := eco.AOSP.Clone("device")
	store.Add(proxy.CACert().Cert)
	return &world{net: n, eco: eco, proxy: proxy, chain: chain, trustingStore: store}
}

func TestInterceptionRelaysData(t *testing.T) {
	w := newWorld(t)
	cap := netem.NewCapture()
	tr, err := w.net.Dial("svc.example.com", netem.DialOpts{Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)

	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "svc.example.com",
		RootStore:  w.trustingStore,
	})
	if err != nil {
		t.Fatalf("handshake through proxy: %v", err)
	}
	// The chain the client saw must be the FORGED one, not the genuine one.
	if conn.PeerChain.Root().Subject.CommonName != "mitmproxy" {
		t.Fatalf("client saw root %q, want forged mitmproxy root",
			conn.PeerChain.Root().Subject.CommonName)
	}
	if err := conn.Send([]byte("GET /secret?adid=XYZ")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "200") {
		t.Fatalf("relayed response: %q", resp)
	}
	conn.Close()
	tr.Close(tlswire.CloseFIN)
	w.net.WaitIdle()

	logs := w.proxy.Logs()
	if len(logs) != 1 {
		t.Fatalf("%d proxy logs", len(logs))
	}
	lg := logs[0]
	if !lg.ClientOK || !lg.UpstreamOK {
		t.Fatalf("log flags: %+v", lg)
	}
	if len(lg.Payloads) != 1 || !strings.Contains(string(lg.Payloads[0]), "adid=XYZ") {
		t.Fatalf("plaintext not logged: %q", lg.Payloads)
	}
	// The proxy recorded the GENUINE upstream chain.
	if !lg.UpstreamChain.Leaf().Equal(w.chain.Leaf()) {
		t.Fatal("upstream chain not the genuine one")
	}
}

func TestUntrustedProxyCAFailsWithoutInstall(t *testing.T) {
	w := newWorld(t)
	tr, err := w.net.Dial("svc.example.com", netem.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	_, err = tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "svc.example.com",
		RootStore:  w.eco.AOSP, // proxy CA NOT installed
	})
	if err == nil {
		t.Fatal("client accepted forged chain without trusting proxy CA")
	}
	w.net.WaitIdle()
	if lg := w.proxy.Logs()[0]; lg.ClientOK {
		t.Fatal("proxy logged ClientOK for rejected handshake")
	}
}

func TestPinnedClientRejectsForgedChain(t *testing.T) {
	w := newWorld(t)
	// Pin the genuine leaf: even though the proxy CA is trusted, the forged
	// chain cannot contain the pinned certificate.
	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(w.chain.Leaf(), pki.SHA256)}}
	tr, err := w.net.Dial("svc.example.com", netem.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	_, err = tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "svc.example.com",
		RootStore:  w.trustingStore,
		Pins:       pins,
	})
	if !tlswire.IsPinFailure(err) {
		t.Fatalf("err = %v, want pin failure", err)
	}
	w.net.WaitIdle()
	if lg := w.proxy.Logs()[0]; lg.ClientOK || len(lg.Payloads) != 0 {
		t.Fatalf("pinned connection leaked through proxy: %+v", lg)
	}
}

func TestPinnedClientSucceedsWithoutProxy(t *testing.T) {
	// Sanity check of the differential design: same pinned client works
	// fine when no interception happens.
	w := newWorld(t)
	w.net.SetInterceptor(nil)
	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(w.chain.Leaf(), pki.SHA256)}}
	tr, err := w.net.Dial("svc.example.com", netem.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "svc.example.com",
		RootStore:  w.eco.AOSP,
		Pins:       pins,
	})
	if err != nil {
		t.Fatalf("pinned client failed without MITM: %v", err)
	}
	conn.Close()
	w.net.WaitIdle()
}

func TestUpstreamUnreachable(t *testing.T) {
	w := newWorld(t)
	tr, err := w.net.Dial("ghost.example.com", netem.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "ghost.example.com",
		RootStore:  w.trustingStore,
	})
	// Handshake with the proxy succeeds (forged chain), but the first
	// exchange fails because there is no upstream.
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	conn.Send([]byte("hi"))
	if _, err := conn.Recv(); err == nil {
		t.Fatal("expected failure for unreachable upstream")
	}
	w.net.WaitIdle()
	if lg := w.proxy.Logs()[0]; lg.UpstreamOK {
		t.Fatal("UpstreamOK for unreachable host")
	}
}

func TestForgedLeafCache(t *testing.T) {
	w := newWorld(t)
	c1, err := w.proxy.forgedChain("a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := w.proxy.forgedChain("a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Leaf().Equal(c2.Leaf()) {
		t.Fatal("cache miss on repeated host")
	}
	c3, err := w.proxy.forgedChain("b.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Leaf().Equal(c3.Leaf()) {
		t.Fatal("distinct hosts share a forged leaf")
	}
	// Forged leaf must carry the requested hostname.
	if c3.Leaf().DNSNames[0] != "b.example.com" {
		t.Fatalf("forged SAN %v", c3.Leaf().DNSNames)
	}
}

func TestResetLogs(t *testing.T) {
	w := newWorld(t)
	tr, _ := w.net.Dial("svc.example.com", netem.DialOpts{})
	tr.Close(tlswire.CloseFIN)
	w.net.WaitIdle()
	if len(w.proxy.Logs()) == 0 {
		t.Fatal("no log recorded")
	}
	w.proxy.ResetLogs()
	if len(w.proxy.Logs()) != 0 {
		t.Fatal("ResetLogs did not clear")
	}
}

func TestInterceptionTLS12(t *testing.T) {
	// Interception must work for legacy clients too: the forged chain is
	// delivered in cleartext and the relay still carries data.
	w := newWorld(t)
	cap := netem.NewCapture()
	tr, err := w.net.Dial("svc.example.com", netem.DialOpts{Capture: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close(tlswire.CloseFIN)
	conn, err := tlswire.Client(tr, &tlswire.ClientConfig{
		ServerName: "svc.example.com",
		RootStore:  w.trustingStore,
		MaxVersion: tlswire.TLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Version != tlswire.TLS12 {
		t.Fatalf("negotiated %s", conn.Version)
	}
	conn.Send([]byte("GET /legacy"))
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	w.net.WaitIdle()
	// The captured cleartext chain is the FORGED one.
	chain := cap.Flows()[0].ObservedChain()
	if len(chain) == 0 || chain.Root().Subject.CommonName != "mitmproxy" {
		t.Fatalf("capture did not see the forged chain: %v", chain)
	}
	lg := w.proxy.Logs()[0]
	if !lg.ClientOK || len(lg.Payloads) != 1 {
		t.Fatalf("log: %+v", lg)
	}
}

func TestDestPrefersSNI(t *testing.T) {
	lg := &ConnLog{Host: "1.2.3.4", SNI: "real.example.com"}
	if lg.Dest() != "real.example.com" {
		t.Fatalf("Dest = %q", lg.Dest())
	}
	lg2 := &ConnLog{Host: "fallback.example.com"}
	if lg2.Dest() != "fallback.example.com" {
		t.Fatalf("Dest = %q", lg2.Dest())
	}
}

// TestSharedChainStore: two proxies built from the same CA and the same
// deterministic rng derivation, wired to one shared chain store, serve
// pointer-identical forged chains — and the leaf is issued exactly once
// between them. This is the cross-worker plane contract.
func TestSharedChainStore(t *testing.T) {
	base := detrand.New(9)
	ca, err := pki.NewRootCA(base.Child("mitm-ca"), "mitmproxy", "mitmproxy", 10)
	if err != nil {
		t.Fatal(err)
	}
	store := pki.NewChainStore()
	p1 := New(ca, base.Child("mitm-forge"))
	p1.UseChainStore(store)
	p2 := New(ca, base.Child("mitm-forge"))
	p2.UseChainStore(store)

	c1, err := p1.forgedChain("shared.example.com")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p2.forgedChain("shared.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Leaf() != c2.Leaf() {
		t.Fatal("proxies sharing a chain store got distinct leaf objects")
	}
	if store.Len() != 1 {
		t.Fatalf("store interned %d chains, want 1", store.Len())
	}

	// A cold proxy on the same derivation must forge the same leaf identity:
	// the key is detrand-derived, so only the (export-invisible) ECDSA
	// signature nonce differs between issuances. Sharing moves who pays the
	// issuance cost, not what the device sees validated or pinned.
	cold := New(ca, detrand.New(9).Child("mitm-forge"))
	c3, err := cold.forgedChain("shared.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Leaf().RawSubjectPublicKeyInfo, c3.Leaf().RawSubjectPublicKeyInfo) {
		t.Fatal("shared-store leaf key differs from a cold proxy's forge")
	}
	if c1.Leaf().DNSNames[0] != c3.Leaf().DNSNames[0] {
		t.Fatal("shared-store leaf SAN differs from a cold proxy's forge")
	}
}

// TestForgeFaultBeatsSharedCache: a transient forge fault must fire even
// when the shared store already holds the host's chain.
func TestForgeFaultBeatsSharedCache(t *testing.T) {
	base := detrand.New(10)
	ca, err := pki.NewRootCA(base.Child("mitm-ca"), "mitmproxy", "mitmproxy", 10)
	if err != nil {
		t.Fatal(err)
	}
	p := New(ca, base.Child("mitm-forge"))
	p.UseChainStore(pki.NewChainStore())
	if _, err := p.forgedChain("faulty.example.com"); err != nil {
		t.Fatal(err)
	}
	p.SetForgeFaults(alwaysFail{})
	if _, err := p.forgedChain("faulty.example.com"); err == nil {
		t.Fatal("warm shared cache masked a forge fault")
	}
	p.SetForgeFaults(nil)
	if _, err := p.forgedChain("faulty.example.com"); err != nil {
		t.Fatal(err)
	}
}

type alwaysFail struct{}

func (alwaysFail) ForgeFails(string) bool { return true }
