// Package mitmproxy is the study's interception proxy, the counterpart of
// mitmproxy in the paper's dynamic pipeline (§4.2.1). Installed as the
// netem interceptor, it terminates every TLS connection with a leaf forged
// on the fly from its own CA, opens its own upstream session to the real
// destination, and relays application data while logging the plaintext.
//
// Devices that trust the proxy CA (the study phones) accept the forged
// chain for non-pinned connections; pinned connections reject it, which is
// precisely the differential signal the detector consumes. The proxy also
// records, per connection, whether the client completed the handshake and
// what the genuine upstream chain was.
package mitmproxy

import (
	"fmt"
	"sync"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/tlswire"
)

// ConnLog records one intercepted connection.
type ConnLog struct {
	Host          string
	SNI           string
	ClientOK      bool  // client completed the TLS handshake with the proxy
	ClientErr     error // why the client leg failed, if it did
	UpstreamOK    bool
	UpstreamChain pki.Chain // genuine chain served by the destination
	Payloads      [][]byte  // client→server plaintext application data
}

// Dest returns the destination key for the log entry: the SNI when the
// client sent one, else the dialed host — matching how captures key flows.
func (c *ConnLog) Dest() string {
	if c.SNI != "" {
		return c.SNI
	}
	return c.Host
}

// ForgeFaults decides transient leaf-forging failures — the fault-injection
// layer's model of mitmproxy's occasional on-the-fly certificate generation
// errors. Implementations must be deterministic and concurrency-safe.
type ForgeFaults interface {
	ForgeFails(host string) bool
}

// Proxy forges certificates from CA and relays intercepted traffic.
type Proxy struct {
	ca  *pki.Authority
	rng *detrand.Source

	mu          sync.Mutex
	leafCache   map[string]pki.Chain
	shared      *pki.ChainStore
	logs        []*ConnLog
	forgeFaults ForgeFaults
}

// New creates a proxy around an issuing CA. The CA certificate is what a
// device must trust for interception to succeed.
func New(ca *pki.Authority, rng *detrand.Source) *Proxy {
	return &Proxy{ca: ca, rng: rng, leafCache: make(map[string]pki.Chain)}
}

// NewWithCA generates a fresh proxy CA from rng and returns the proxy.
func NewWithCA(rng *detrand.Source) (*Proxy, error) {
	ca, err := pki.NewRootCA(rng.Child("mitm-ca"), "mitmproxy", "mitmproxy", 10)
	if err != nil {
		return nil, fmt.Errorf("mitmproxy: generate CA: %w", err)
	}
	return New(ca, rng.Child("mitm-forge")), nil
}

// CACert returns the proxy's root certificate for installation into a
// device trust store.
func (p *Proxy) CACert() *pki.Authority { return p.ca }

// Logs returns the connection logs accumulated so far, in interception
// order.
func (p *Proxy) Logs() []*ConnLog {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*ConnLog, len(p.logs))
	copy(out, p.logs)
	return out
}

// ResetLogs clears accumulated logs (between per-app runs).
func (p *Proxy) ResetLogs() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logs = nil
}

// SetForgeFaults installs (or with nil removes) the transient forging-fault
// decider consulted on every leaf request, ahead of the leaf cache — so a
// faulted host fails even when a forged chain is already cached, exactly
// like a proxy worker dying mid-handshake.
func (p *Proxy) SetForgeFaults(f ForgeFaults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forgeFaults = f
}

// UseChainStore points the proxy's forged-leaf cache at a shared
// content-addressed store (the study's crypto plane). Proxies forging from
// the same CA and the same deterministic rng derivation produce identical
// leaves, so cross-worker sharing changes which worker pays the ECDSA
// issuance cost, never the bytes on the wire. With no store set the proxy
// falls back to its private per-proxy cache.
func (p *Proxy) UseChainStore(s *pki.ChainStore) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shared = s
}

// forgedChain returns (building and caching if needed) the forged chain for
// host: a leaf issued by the proxy CA plus the CA certificate.
func (p *Proxy) forgedChain(host string) (pki.Chain, error) {
	p.mu.Lock()
	ff, shared := p.forgeFaults, p.shared
	p.mu.Unlock()
	// Fault check stays ahead of every cache: a faulted host fails even when
	// a forged chain is already interned, like a proxy worker dying
	// mid-handshake.
	if ff != nil && ff.ForgeFails(host) {
		return nil, fmt.Errorf("mitmproxy: transient forge failure for %q", host)
	}
	issue := func() (pki.Chain, error) {
		leaf, err := p.ca.IssueLeaf(p.rng.Child("leaf/"+host), host, pki.LeafOptions{})
		if err != nil {
			return nil, fmt.Errorf("mitmproxy: forge leaf for %q: %w", host, err)
		}
		return pki.Chain{leaf.Cert, p.ca.Cert}, nil
	}
	if shared != nil {
		// Key by issuing authority as well as hostname so one store can
		// serve proxies with distinct CAs without collisions. The authority
		// is identified by its SPKI, not its certificate bytes: a CA
		// re-derived from the same seed carries the same key but a fresh
		// (nondeterministic) self-signature, and forged leaves depend only
		// on the key — so SPKI keying lets re-derived proxies share leaves
		// a previous study already paid to issue.
		sum := pki.SPKIDigest(p.ca.Cert, pki.SHA256)
		return shared.GetOrIssue(string(sum)+"|leaf/"+host, issue)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.leafCache[host]; ok {
		return c, nil
	}
	chain, err := issue()
	if err != nil {
		return nil, err
	}
	p.leafCache[host] = chain
	return chain, nil
}

// HandleConn implements netem.Interceptor.
func (p *Proxy) HandleConn(clientSide tlswire.Transport, dst string, net *netem.Network) {
	log := &ConnLog{Host: dst}
	defer func() {
		p.mu.Lock()
		p.logs = append(p.logs, log)
		p.mu.Unlock()
	}()
	defer clientSide.Close(tlswire.CloseFIN)

	srvCfg := &tlswire.ServerConfig{
		GetChain: func(h *tlswire.HelloInfo) (pki.Chain, error) {
			name := h.SNI
			if name == "" {
				name = dst
			}
			log.SNI = h.SNI
			return p.forgedChain(name)
		},
	}
	clientConn, _, err := tlswire.ServerHandshake(clientSide, srvCfg)
	if err != nil {
		// The client refused our forged chain (pinning, most likely) or
		// aborted for another reason. Record and stop.
		log.ClientErr = err
		return
	}
	log.ClientOK = true

	// Upstream leg to the genuine destination (not captured: the study's
	// vantage point is between device and proxy).
	upT, err := net.DialDirect(dst)
	if err != nil {
		clientConn.Abort()
		return
	}
	defer upT.Close(tlswire.CloseFIN)
	upstream, err := tlswire.Client(upT, &tlswire.ClientConfig{
		ServerName: dst,
		SkipVerify: true, // the proxy forwards regardless of upstream PKI
	})
	if err != nil {
		clientConn.Abort()
		return
	}
	log.UpstreamOK = true
	log.UpstreamChain = upstream.PeerChain

	// Turn-based relay: request up, response down, until the client quits.
	for {
		req, err := clientConn.Recv()
		if err != nil {
			upstream.Close()
			clientConn.Close()
			return
		}
		log.Payloads = append(log.Payloads, req)
		if err := upstream.Send(req); err != nil {
			clientConn.Abort()
			return
		}
		resp, err := upstream.Recv()
		if err != nil {
			clientConn.Abort()
			return
		}
		if err := clientConn.Send(resp); err != nil {
			upstream.Close()
			return
		}
	}
}
