// Package rootprogram models platform root programs as versioned
// artifacts: an ordered timeline of named releases (android froyo→kitkat,
// a parallel iOS line), each an immutable pki.RootStore derived by
// applying add/remove deltas keyed by root SHA-256 fingerprint, plus a
// deterministic stream of CA-distrust events (mis-issued or leaked roots,
// Superfish/WoSign/TURKTRUST-style) that can be materialized "as of" any
// logical date.
//
// Time is logical throughout: release and event dates are day offsets
// relative to pki.StudyEpoch (negative = before the study snapshot), so
// materialization never consults the host clock. All randomness comes
// from a detrand stream, so the same world seed always yields the same
// timeline, the same injected roots and the same distrust dates.
package rootprogram

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

// Fingerprint returns the lowercase hex SHA-256 of the certificate's
// SubjectPublicKeyInfo — the key under which root programs track adds,
// removes and distrust events (certigo antitrust-style, but over the SPKI
// like HPKP pins). The SPKI is derived from detrand, so fingerprints are
// stable across same-seed world rebuilds; whole-cert DER is not (ECDSA
// signatures are hedged-randomized), and a fingerprint that changed on
// every process restart would break journal resume and distrust queries
// against previously exported snapshots.
func Fingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
	return hex.EncodeToString(sum[:])
}

// Delta is one release's change set against its predecessor: roots added
// (full certificates, in order) and roots removed (by fingerprint).
type Delta struct {
	Add    []*x509.Certificate
	Remove []string
}

// Release is a named, dated root-store release. Date is a day offset from
// pki.StudyEpoch; releases in a Program are strictly ordered by Date.
type Release struct {
	Tag  string
	Date int
	Delta
}

// Apply materializes this release's store from its predecessor's. prev may
// be nil (first release). Removal preserves the insertion order of the
// surviving roots, so delta application is order-consistent: building a
// release incrementally or from scratch yields byte-identical digests.
func (r Release) Apply(prev *pki.RootStore, name string) *pki.RootStore {
	out := pki.NewRootStore(name)
	removed := make(map[string]bool, len(r.Remove))
	for _, fp := range r.Remove {
		removed[fp] = true
	}
	if prev != nil {
		for _, c := range prev.Certs() {
			if !removed[Fingerprint(c)] {
				out.Add(c)
			}
		}
	}
	for _, c := range r.Add {
		out.Add(c)
	}
	return out
}

// Program is one platform's root program: an ordered timeline of releases.
type Program struct {
	Platform appmodel.Platform
	Releases []Release

	mu    sync.Mutex
	memo  map[string]*pki.RootStore
	index map[string]int
}

// Tags returns the release tags in timeline order.
func (p *Program) Tags() []string {
	tags := make([]string, len(p.Releases))
	for i, r := range p.Releases {
		tags[i] = r.Tag
	}
	return tags
}

// Latest returns the newest release.
func (p *Program) Latest() Release { return p.Releases[len(p.Releases)-1] }

// find returns the index of tag, building the lookup table lazily.
// Caller holds p.mu.
func (p *Program) find(tag string) (int, bool) {
	if p.index == nil {
		p.index = make(map[string]int, len(p.Releases))
		for i, r := range p.Releases {
			p.index[r.Tag] = i
		}
	}
	i, ok := p.index[tag]
	return i, ok
}

// Materialize returns the immutable store shipped with release tag,
// applying deltas from the first release forward. Results are memoized:
// the store (and its content digest, pre-warmed here) is shared by every
// caller, so crypto-plane memo keys never re-hash a release store.
// Callers must treat the returned store as read-only; Clone before
// mutating.
func (p *Program) Materialize(tag string) (*pki.RootStore, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.memo[tag]; ok {
		return s, nil
	}
	i, ok := p.find(tag)
	if !ok {
		return nil, fmt.Errorf("rootprogram: %s has no release %q", p.Platform, tag)
	}
	var prev *pki.RootStore
	for j := 0; j <= i; j++ {
		r := p.Releases[j]
		cur, ok := p.memo[r.Tag]
		if !ok {
			cur = r.Apply(prev, string(p.Platform)+"@"+r.Tag)
			cur.Digest() // pre-warm: the store is immutable from here on
			if p.memo == nil {
				p.memo = make(map[string]*pki.RootStore)
			}
			p.memo[r.Tag] = cur
		}
		prev = cur
	}
	return prev, nil
}

// ReleaseAt returns the newest release with Date <= date (the store a
// device running at that logical date shipped with).
func (p *Program) ReleaseAt(date int) Release {
	cur := p.Releases[0]
	for _, r := range p.Releases {
		if r.Date <= date {
			cur = r
		}
	}
	return cur
}

// DistrustEvent is a CA-distrust incident: at Date, the root identified by
// Fingerprint stops being trusted on every platform (it is subtracted from
// whatever release store is in effect). Slug is a stable, CLI-friendly
// identifier; Reason is display text.
type DistrustEvent struct {
	Slug        string
	Fingerprint string
	Name        string
	Date        int
	Reason      string
}

// Point is one position on the merged timeline: the logical date, the
// release in effect per platform, and the distrust events already in
// force. Tag is the release or event slug that created the point.
type Point struct {
	Tag        string
	Date       int
	Android    string
	IOS        string
	Distrusted []string // event slugs with Date <= this point's Date
}

// Timeline is the full time axis of the study: both platform programs plus
// the distrust-event stream.
type Timeline struct {
	Android *Program
	IOS     *Program
	Events  []DistrustEvent
}

// Points returns the merged timeline: one point per Android release, per
// iOS release and per distrust event, in date order (ties broken by kind:
// releases before events, Android before iOS, then by tag). Each point
// carries the release in effect on both platforms at that date.
func (t *Timeline) Points() []Point {
	type raw struct {
		tag  string
		date int
		kind int // 0 = android release, 1 = ios release, 2 = event
	}
	var rs []raw
	for _, r := range t.Android.Releases {
		rs = append(rs, raw{r.Tag, r.Date, 0})
	}
	for _, r := range t.IOS.Releases {
		rs = append(rs, raw{r.Tag, r.Date, 1})
	}
	for _, e := range t.Events {
		rs = append(rs, raw{"distrust-" + e.Slug, e.Date, 2})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].date != rs[j].date {
			return rs[i].date < rs[j].date
		}
		if rs[i].kind != rs[j].kind {
			return rs[i].kind < rs[j].kind
		}
		return rs[i].tag < rs[j].tag
	})
	pts := make([]Point, len(rs))
	for i, r := range rs {
		pts[i] = Point{
			Tag:     r.tag,
			Date:    r.date,
			Android: t.Android.ReleaseAt(r.date).Tag,
			IOS:     t.IOS.ReleaseAt(r.date).Tag,
		}
		for _, e := range t.Events {
			if e.Date <= r.date {
				pts[i].Distrusted = append(pts[i].Distrusted, e.Slug)
			}
		}
	}
	return pts
}

// PointByTag returns the point with the given tag.
func (t *Timeline) PointByTag(tag string) (Point, error) {
	for _, p := range t.Points() {
		if p.Tag == tag {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("rootprogram: no timeline point %q", tag)
}

// Event returns the distrust event with the given slug.
func (t *Timeline) Event(slug string) (DistrustEvent, error) {
	for _, e := range t.Events {
		if e.Slug == slug {
			return e, nil
		}
	}
	return DistrustEvent{}, fmt.Errorf("rootprogram: no distrust event %q", slug)
}

// StoresAt materializes the per-platform stores in effect at point p: the
// release store minus every root distrusted on or before p.Date. Distrust
// subtraction preserves store order and is keyed by fingerprint, so events
// sharing a logical date commute — applying them in any order yields the
// same store bytes.
func (t *Timeline) StoresAt(p Point) (android, ios *pki.RootStore, err error) {
	a, err := t.Android.Materialize(p.Android)
	if err != nil {
		return nil, nil, err
	}
	i, err := t.IOS.Materialize(p.IOS)
	if err != nil {
		return nil, nil, err
	}
	var dead []string
	for _, e := range t.Events {
		if e.Date <= p.Date {
			dead = append(dead, e.Fingerprint)
		}
	}
	if len(dead) == 0 {
		return a, i, nil
	}
	sub := Release{Tag: p.Tag, Delta: Delta{Remove: dead}}
	return sub.Apply(a, a.Name+"@"+p.Tag), sub.Apply(i, i.Name+"@"+p.Tag), nil
}

// ReleaseFor returns the app-facing release tags for platform pf, newest
// last — the population worldgen draws from when assigning each generated
// app the release it shipped against.
func (t *Timeline) ReleaseFor(pf appmodel.Platform) *Program {
	if pf == appmodel.IOS {
		return t.IOS
	}
	return t.Android
}

// AssignRelease draws a release tag for a generated app on platform pf,
// weighted toward recent releases (new apps target new OS versions; a
// long tail still ships against older stores).
func (t *Timeline) AssignRelease(rng *detrand.Source, pf appmodel.Platform) string {
	rel := t.ReleaseFor(pf).Releases
	weights := make([]float64, len(rel))
	w := 1.0
	for i := len(rel) - 1; i >= 0; i-- {
		weights[i] = w
		w *= 0.45
	}
	return rel[rng.WeightedIndex(weights)].Tag
}
