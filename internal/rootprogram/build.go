package rootprogram

import (
	"crypto/x509"
	"fmt"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

// Logical dates (day offsets from pki.StudyEpoch) of the built-in release
// lines. Negative: every release predates the study snapshot, mirroring
// how the paper measured a world whose trust stores had already evolved.
const (
	dateFroyo       = -2000
	dateGingerbread = -1500
	dateIcecream    = -1000
	dateJellybean   = -600
	dateKitkat      = -250

	dateIOS10 = -1600
	dateIOS11 = -1200
	dateIOS12 = -800
	dateIOS13 = -400
	dateIOS14 = -100
)

// BuildTimeline deterministically derives both platform root programs and
// the distrust-event stream from the ecosystem's roots plus rng.
//
// The Android line (froyo→kitkat, after cfssl_trust's per-release stores)
// grows from 10 roots to the full OEM set, picking up the public CAs,
// the OEM-only obscure roots, and — in gingerbread — an injected
// "bloatware" root shipped by the OEM with an extractable key
// (Superfish-style); kitkat removes it again. The iOS line (ios10→ios14)
// grows the public set and drops the legacy 2006 root in ios12 ("Apple
// removed" — the same divergence the static eco.IOS store bakes in).
//
// The latest release of each line trusts exactly the same root set as the
// static eco.OEM / eco.IOS stores (insertion order differs, so content
// digests differ, but validation verdicts — which depend only on the set —
// are identical). That anchors the longitudinal study: its newest point
// reproduces the snapshot study's world.
//
// Three distrust events ride the timeline under fixed, CLI-stable slugs;
// rng chooses only which root each one hits and contributes the injected
// root's key material:
//
//   - oem-keyleak: the gingerbread bloatware root's private key leaks
//     (no public host anchors there, so breakage is zero — like Superfish,
//     removal is free).
//   - ca-misissue: one OEM-only obscure root is caught mis-issuing
//     (TURKTRUST-style); Android-only trust shrinks.
//   - ca-distrust: a mainstream public CA is distrusted (WoSign-style).
//     Live host chains anchor there, so pinned and unpinned apps alike
//     lose destinations — the event that moves the breakage tables.
func BuildTimeline(rng *detrand.Source, eco *pki.Ecosystem) (*Timeline, error) {
	if len(eco.PublicCAs) < 12 || len(eco.ObscureCAs) < 3 {
		return nil, fmt.Errorf("rootprogram: ecosystem too small (%d public, %d obscure)",
			len(eco.PublicCAs), len(eco.ObscureCAs))
	}
	pubCert := func(i int) *pki.Authority { return eco.PublicCAs[i] }
	legacy, err := legacyRoot(eco)
	if err != nil {
		return nil, err
	}

	bloat, err := pki.NewRootCA(rng.Child("bloatware-root"),
		"OEM Bloatware Root CA", "OEM Preload Services", 12)
	if err != nil {
		return nil, fmt.Errorf("rootprogram: bloatware root: %w", err)
	}

	android := &Program{
		Platform: appmodel.Android,
		Releases: []Release{
			{Tag: "froyo", Date: dateFroyo, Delta: Delta{Add: certList(
				pubCert(0).Cert, pubCert(1).Cert, pubCert(2).Cert, pubCert(3).Cert,
				pubCert(4).Cert, pubCert(5).Cert, pubCert(6).Cert, pubCert(7).Cert,
				legacy, eco.ObscureCAs[0].Cert)}},
			{Tag: "gingerbread", Date: dateGingerbread, Delta: Delta{Add: certList(
				pubCert(8).Cert, eco.ObscureCAs[1].Cert, bloat.Cert)}},
			{Tag: "icecream", Date: dateIcecream, Delta: Delta{Add: certList(
				pubCert(9).Cert, eco.ObscureCAs[2].Cert)}},
			{Tag: "jellybean", Date: dateJellybean, Delta: Delta{Add: certList(
				pubCert(10).Cert)}},
			{Tag: "kitkat", Date: dateKitkat, Delta: Delta{
				Add:    certList(pubCert(11).Cert),
				Remove: []string{Fingerprint(bloat.Cert)},
			}},
		},
	}

	ios := &Program{
		Platform: appmodel.IOS,
		Releases: []Release{
			{Tag: "ios10", Date: dateIOS10, Delta: Delta{Add: certList(
				pubCert(0).Cert, pubCert(1).Cert, pubCert(2).Cert, pubCert(3).Cert,
				pubCert(4).Cert, pubCert(5).Cert, pubCert(6).Cert, pubCert(7).Cert,
				pubCert(8).Cert, legacy)}},
			{Tag: "ios11", Date: dateIOS11, Delta: Delta{Add: certList(
				pubCert(9).Cert)}},
			{Tag: "ios12", Date: dateIOS12, Delta: Delta{
				Add:    certList(pubCert(10).Cert),
				Remove: []string{Fingerprint(legacy)},
			}},
			{Tag: "ios13", Date: dateIOS13, Delta: Delta{Add: certList(
				pubCert(11).Cert)}},
			{Tag: "ios14", Date: dateIOS14, Delta: Delta{}},
		},
	}

	erng := rng.Child("distrust")
	misissued := eco.ObscureCAs[erng.Intn(len(eco.ObscureCAs))]
	// A mid-range public CA: never index 0 (too many froyo-era chains) and
	// never the newest (kitkat-only), so every release in the sweep feels
	// the event.
	distrusted := eco.PublicCAs[4+erng.Intn(6)]

	tl := &Timeline{
		Android: android,
		IOS:     ios,
		Events: []DistrustEvent{
			{
				Slug:        "oem-keyleak",
				Fingerprint: Fingerprint(bloat.Cert),
				Name:        bloat.Cert.Subject.CommonName,
				Date:        -700,
				Reason:      "preloaded OEM root's private key extracted from shipped firmware",
			},
			{
				Slug:        "ca-misissue",
				Fingerprint: Fingerprint(misissued.Cert),
				Name:        misissued.Cert.Subject.CommonName,
				Date:        -450,
				Reason:      "unconstrained intermediate issued to a subscriber",
			},
			{
				Slug:        "ca-distrust",
				Fingerprint: Fingerprint(distrusted.Cert),
				Name:        distrusted.Cert.Subject.CommonName,
				Date:        -50,
				Reason:      "root program votes to distrust after repeated audit failures",
			},
		},
	}
	return tl, nil
}

// certList is a variadic-to-slice helper that keeps the release tables
// readable.
func certList(certs ...*x509.Certificate) []*x509.Certificate { return certs }

// legacyRoot digs the legacy root Apple removed out of the ecosystem: it
// is the one AOSP cert absent from both the iOS store and the public-CA
// list (BuildEcosystem adds it to Mozilla/AOSP/OEM only and does not
// export it as an Authority).
func legacyRoot(eco *pki.Ecosystem) (*x509.Certificate, error) {
	for _, c := range eco.AOSP.Certs() {
		if !eco.IOS.Contains(c) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("rootprogram: ecosystem has no AOSP-only legacy root")
}
