package rootprogram

import (
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

func buildTL(t *testing.T) (*Timeline, *pki.Ecosystem) {
	t.Helper()
	rng := detrand.New(7)
	eco, err := pki.BuildEcosystem(rng.Child("pki"))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := BuildTimeline(rng.Child("rootprogram"), eco)
	if err != nil {
		t.Fatal(err)
	}
	return tl, eco
}

// Applying deltas froyo→kitkat then cloning must equal building kitkat
// directly from its cumulative delta: byte-identical digests (the ISSUE's
// materialization invariant).
func TestIncrementalEqualsDirect(t *testing.T) {
	tl, _ := buildTL(t)
	for _, prog := range []*Program{tl.Android, tl.IOS} {
		// Incremental: walk every release via Apply, cloning at the end.
		var prev *pki.RootStore
		for _, r := range prog.Releases {
			prev = r.Apply(prev, "inc@"+r.Tag)
		}
		inc := prev.Clone("inc-clone")

		// Direct: collapse all deltas into one and apply it to nil.
		var flat Delta
		removed := map[string]bool{}
		for _, r := range prog.Releases {
			for _, fp := range r.Remove {
				removed[fp] = true
			}
		}
		for _, r := range prog.Releases {
			for _, c := range r.Add {
				if !removed[Fingerprint(c)] {
					flat.Add = append(flat.Add, c)
				}
			}
		}
		direct := Release{Tag: prog.Latest().Tag, Delta: flat}.Apply(nil, "direct")

		if inc.Digest() != direct.Digest() {
			t.Errorf("%s: incremental+clone digest != direct-build digest", prog.Platform)
		}

		// And the memoized Materialize path agrees with both.
		mat, err := prog.Materialize(prog.Latest().Tag)
		if err != nil {
			t.Fatal(err)
		}
		if mat.Digest() != inc.Digest() {
			t.Errorf("%s: Materialize digest != incremental digest", prog.Platform)
		}
	}
}

// Distrust subtraction is keyed by fingerprint and preserves store order,
// so events sharing a logical date commute: any application order yields
// the same bytes.
func TestDistrustOrderIndependentWithinDate(t *testing.T) {
	tl, _ := buildTL(t)
	base, err := tl.Android.Materialize("kitkat")
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := tl.Events[1], tl.Events[2]

	oneShot := Release{Tag: "x", Delta: Delta{Remove: []string{e1.Fingerprint, e2.Fingerprint}}}.Apply(base, "both")
	swapped := Release{Tag: "x", Delta: Delta{Remove: []string{e2.Fingerprint, e1.Fingerprint}}}.Apply(base, "both-swapped")
	stepwise := Release{Tag: "x", Delta: Delta{Remove: []string{e2.Fingerprint}}}.Apply(
		Release{Tag: "x", Delta: Delta{Remove: []string{e1.Fingerprint}}}.Apply(base, "step1"), "step2")

	if oneShot.Digest() != swapped.Digest() {
		t.Error("distrust removal is order-dependent within a date")
	}
	if oneShot.Digest() != stepwise.Digest() {
		t.Error("batched distrust removal differs from stepwise removal")
	}

	// The Timeline API gives all events with Date <= point date at once;
	// reversing the event stream must not change StoresAt output.
	pt, err := tl.PointByTag("distrust-ca-distrust")
	if err != nil {
		t.Fatal(err)
	}
	a1, i1, err := tl.StoresAt(pt)
	if err != nil {
		t.Fatal(err)
	}
	rev := &Timeline{Android: tl.Android, IOS: tl.IOS}
	for k := len(tl.Events) - 1; k >= 0; k-- {
		ev := tl.Events[k]
		ev.Date = pt.Date // collapse all events onto one logical date
		rev.Events = append(rev.Events, ev)
	}
	a2, i2, err := rev.StoresAt(Point{Tag: pt.Tag, Date: pt.Date, Android: pt.Android, IOS: pt.IOS})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Digest() != a2.Digest() || i1.Digest() != i2.Digest() {
		t.Error("StoresAt depends on event-stream order within a date")
	}
}

// The newest release of each line must trust exactly the same root set as
// the static ecosystem stores — the longitudinal study's latest point
// reproduces the snapshot study's world.
func TestLatestReleaseMatchesEcosystem(t *testing.T) {
	tl, eco := buildTL(t)
	check := func(prog *Program, want *pki.RootStore) {
		got, err := prog.Materialize(prog.Latest().Tag)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s latest: %d roots, ecosystem store has %d", prog.Platform, got.Len(), want.Len())
		}
		for _, c := range want.Certs() {
			if !got.Contains(c) {
				t.Errorf("%s latest missing %q", prog.Platform, c.Subject.CommonName)
			}
		}
	}
	check(tl.Android, eco.OEM)
	check(tl.IOS, eco.IOS)
}

// Materialize memoizes: repeated calls return the same store pointer with
// a pre-warmed digest, and earlier releases materialized as a side effect
// are shared too.
func TestMaterializeMemoized(t *testing.T) {
	tl, _ := buildTL(t)
	a, err := tl.Android.Materialize("kitkat")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tl.Android.Materialize("kitkat")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Materialize did not memoize the release store")
	}
	froyo1, _ := tl.Android.Materialize("froyo")
	froyo2, _ := tl.Android.Materialize("froyo")
	if froyo1 != froyo2 {
		t.Error("intermediate releases not memoized")
	}
	if _, err := tl.Android.Materialize("donut"); err == nil {
		t.Error("unknown release tag must error")
	}
}

// Same seed, same timeline: tags, dates, fingerprints and store digests
// all reproduce.
func TestTimelineDeterministic(t *testing.T) {
	t1, _ := buildTL(t)
	t2, _ := buildTL(t)
	p1, p2 := t1.Points(), t2.Points()
	if len(p1) != len(p2) {
		t.Fatalf("point counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if !samePoint(p1[i], p2[i]) {
			t.Fatalf("point %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
		a1, i1, err := t1.StoresAt(p1[i])
		if err != nil {
			t.Fatal(err)
		}
		a2, i2, err := t2.StoresAt(p2[i])
		if err != nil {
			t.Fatal(err)
		}
		// Whole-cert digests vary across rebuilds (hedged ECDSA signatures),
		// but the SPKI fingerprint sets — everything the timeline keys on —
		// must reproduce exactly.
		if fpSet(a1) != fpSet(a2) || fpSet(i1) != fpSet(i2) {
			t.Fatalf("point %q: store fingerprint sets differ across identical seeds", p1[i].Tag)
		}
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
}

// fpSet concatenates a store's SPKI fingerprints in insertion order.
func fpSet(rs *pki.RootStore) string {
	var s string
	for _, c := range rs.Certs() {
		s += Fingerprint(c) + "\n"
	}
	return s
}

// samePoint compares two points field by field (Point holds a slice, so
// it is not ==-comparable).
func samePoint(a, b Point) bool {
	if a.Tag != b.Tag || a.Date != b.Date || a.Android != b.Android || a.IOS != b.IOS {
		return false
	}
	if len(a.Distrusted) != len(b.Distrusted) {
		return false
	}
	for i := range a.Distrusted {
		if a.Distrusted[i] != b.Distrusted[i] {
			return false
		}
	}
	return true
}

// Release assignment is platform-aware, deterministic, and weighted toward
// recent releases.
func TestAssignRelease(t *testing.T) {
	tl, _ := buildTL(t)
	rng := detrand.New(99)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		tag := tl.AssignRelease(rng.ChildN("app", i), appmodel.Android)
		if _, err := tl.Android.Materialize(tag); err != nil {
			t.Fatalf("assigned unknown release %q", tag)
		}
		counts[tag]++
	}
	if counts["kitkat"] <= counts["froyo"] {
		t.Errorf("expected recent releases to dominate: kitkat=%d froyo=%d", counts["kitkat"], counts["froyo"])
	}
	tag := tl.AssignRelease(detrand.New(5), appmodel.IOS)
	if _, err := tl.IOS.Materialize(tag); err != nil {
		t.Fatalf("iOS assignment yielded Android tag %q", tag)
	}
	// Determinism: same child stream, same draw.
	r1 := tl.AssignRelease(detrand.New(42).Child("x"), appmodel.Android)
	r2 := tl.AssignRelease(detrand.New(42).Child("x"), appmodel.Android)
	if r1 != r2 {
		t.Error("AssignRelease not deterministic")
	}
}

// Points are date-ordered with deterministic tie-breaks, and each point
// reports the releases in effect plus the distrust events already in
// force.
func TestPointsOrdering(t *testing.T) {
	tl, _ := buildTL(t)
	pts := tl.Points()
	if len(pts) != len(tl.Android.Releases)+len(tl.IOS.Releases)+len(tl.Events) {
		t.Fatalf("expected one point per release and event, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Date < pts[i-1].Date {
			t.Fatalf("points out of date order at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}
	first := pts[0]
	if first.Tag != "froyo" || first.Android != "froyo" {
		t.Errorf("first point should be froyo, got %+v", first)
	}
	last := pts[len(pts)-1]
	if last.Android != "kitkat" || last.IOS != "ios14" {
		t.Errorf("last point should see both latest releases, got %+v", last)
	}
	if len(last.Distrusted) != len(tl.Events) {
		t.Errorf("last point should have all %d events in force, got %v", len(tl.Events), last.Distrusted)
	}
	ev, err := tl.Event("ca-distrust")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Fingerprint) != 64 {
		t.Errorf("fingerprint should be hex sha256, got %q", ev.Fingerprint)
	}
}
