package pki_test

import (
	"fmt"

	"pinscope/internal/detrand"
	"pinscope/internal/pki"
)

// Example shows the pinning primitives end to end: issue a chain, pin the
// issuing CA by SPKI hash, and check the chain against the pin — exactly
// what an app's TLS stack does on every connection.
func Example() {
	rng := detrand.New(1)
	root, _ := pki.NewRootCA(rng, "Example Root CA", "Example", 20)
	inter, _ := root.NewIntermediate(rng, "Example Issuing CA", 10)
	leaf, _ := inter.IssueLeaf(rng, "api.example.com", pki.LeafOptions{})
	chain := pki.Chain{leaf.Cert, inter.Cert, root.Cert}

	pins := &pki.PinSet{Pins: []pki.Pin{pki.NewPin(inter.Cert, pki.SHA256)}}
	fmt.Println("chain matches CA pin:", pins.MatchChain(chain))

	// A chain from anyone else fails the pin even if publicly trusted.
	otherRoot, _ := pki.NewRootCA(detrand.New(2), "Other Root", "Other", 20)
	otherLeaf, _ := otherRoot.IssueLeaf(detrand.New(3), "api.example.com", pki.LeafOptions{})
	forged := pki.Chain{otherLeaf.Cert, otherRoot.Cert}
	fmt.Println("forged chain matches pin:", pins.MatchChain(forged))
	// Output:
	// chain matches CA pin: true
	// forged chain matches pin: false
}

// ExampleParsePin parses the conventional pin string format found in app
// packages.
func ExampleParsePin() {
	pin, err := pki.ParsePin("sha256/r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E=")
	fmt.Println(err == nil, pin.Alg)
	// Output: true sha256
}
