package pki

import (
	"bytes"
	"crypto/x509"
	"sync"
	"sync/atomic"
	"testing"

	"pinscope/internal/detrand"
)

func TestChainStoreIssuesOncePerKey(t *testing.T) {
	rng := detrand.New(101)
	ca, err := NewRootCA(rng.Child("ca"), "Test CA", "Test Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	store := NewChainStore()

	var issued atomic.Int64
	issue := func(host string) func() (Chain, error) {
		return func() (Chain, error) {
			issued.Add(1)
			leaf, err := ca.IssueLeaf(rng.Child("leaf/"+host), host, LeafOptions{})
			if err != nil {
				return nil, err
			}
			return Chain{leaf.Cert, ca.Cert}, nil
		}
	}

	hosts := []string{"a.example.com", "b.example.com", "c.example.com"}
	const workers = 8
	chains := make([][]Chain, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for _, h := range hosts {
					c, err := store.GetOrIssue(h, issue(h))
					if err != nil {
						t.Error(err)
						return
					}
					chains[w] = append(chains[w], c)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := issued.Load(); got != int64(len(hosts)) {
		t.Fatalf("issue ran %d times, want exactly %d (once per key)", got, len(hosts))
	}
	if store.Len() != len(hosts) {
		t.Fatalf("store.Len() = %d, want %d", store.Len(), len(hosts))
	}
	// Every worker must have received the SAME interned chain per host, not
	// an equal copy: pointer identity is what makes the digest memo shared.
	for w := 1; w < workers; w++ {
		for i := range chains[0] {
			if chains[w][i][0] != chains[0][i][0] {
				t.Fatalf("worker %d got a distinct leaf for slot %d", w, i)
			}
		}
	}
}

func TestChainStoreInternsErrors(t *testing.T) {
	store := NewChainStore()
	calls := 0
	boom := func() (Chain, error) { calls++; return nil, ErrEmptyChain }
	if _, err := store.GetOrIssue("k", boom); err != ErrEmptyChain {
		t.Fatalf("first call: err = %v, want ErrEmptyChain", err)
	}
	if _, err := store.GetOrIssue("k", boom); err != ErrEmptyChain {
		t.Fatalf("second call: err = %v, want interned ErrEmptyChain", err)
	}
	if calls != 1 {
		t.Fatalf("issue ran %d times after error, want 1 (errors are interned)", calls)
	}
}

func TestDigestMemoMatchesDirectHashing(t *testing.T) {
	rng := detrand.New(202)
	ca, err := NewRootCA(rng.Child("ca"), "Digest CA", "Test Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(rng.Child("leaf"), "digest.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []HashAlg{SHA256, SHA1} {
		first := SPKIDigest(leaf.Cert, alg)
		second := SPKIDigest(leaf.Cert, alg)
		if !bytes.Equal(first, second) {
			t.Fatalf("%v digest unstable across calls", alg)
		}
		// The public API hands out fresh copies: mutating one must not
		// poison the memo or other callers.
		first[0] ^= 0xff
		if bytes.Equal(first, SPKIDigest(leaf.Cert, alg)) {
			t.Fatalf("%v digest aliases the memo's backing array", alg)
		}
	}

	pin := NewPin(leaf.Cert, SHA256)
	if !pin.Matches(leaf.Cert) {
		t.Fatal("pin built from cert does not match it")
	}
	if pin.Matches(ca.Cert) {
		t.Fatal("pin matches an unrelated cert")
	}
}

func TestRootStoreDigest(t *testing.T) {
	rng := detrand.New(303)
	ca1, err := NewRootCA(rng.Child("ca1"), "CA One", "Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := NewRootCA(rng.Child("ca2"), "CA Two", "Org", 10)
	if err != nil {
		t.Fatal(err)
	}

	a := NewRootStore("a")
	a.Add(ca1.Cert)
	b := a.Clone("renamed")
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on store name, want content-only")
	}

	before := a.Digest()
	a.Add(ca2.Cert)
	if a.Digest() == before {
		t.Fatal("Add did not change the content digest")
	}
	if a.Digest() == b.Digest() {
		t.Fatal("stores with different roots share a digest")
	}

	// Concurrent readers must agree (exercised under -race in check.sh).
	var wg sync.WaitGroup
	want := a.Digest()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a.Digest() != want {
				t.Error("concurrent Digest readers disagree")
			}
		}()
	}
	wg.Wait()
}

func TestPinSetDigestKey(t *testing.T) {
	rng := detrand.New(404)
	ca, err := NewRootCA(rng.Child("ca"), "Pins CA", "Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(rng.Child("leaf"), "pins.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var empty *PinSet
	if empty.DigestKey() != "" {
		t.Fatal("nil set must digest to empty string")
	}
	if (&PinSet{}).DigestKey() != "" {
		t.Fatal("empty set must digest to empty string")
	}

	spki := &PinSet{Pins: []Pin{NewPin(leaf.Cert, SHA256)}}
	if spki.DigestKey() == "" {
		t.Fatal("non-empty set digests to empty string")
	}
	again := &PinSet{Pins: []Pin{NewPin(leaf.Cert, SHA256)}}
	if spki.DigestKey() != again.DigestKey() {
		t.Fatal("equal pin material yields different digests")
	}
	other := &PinSet{Pins: []Pin{NewPin(ca.Cert, SHA256)}}
	if spki.DigestKey() == other.DigestKey() {
		t.Fatal("different pin material yields equal digests")
	}
	rawSet := &PinSet{RawCerts: []*x509.Certificate{leaf.Cert}}
	if rawSet.DigestKey() == spki.DigestKey() {
		t.Fatal("raw-cert pin digests like an SPKI pin")
	}
}
