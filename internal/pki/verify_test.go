package pki

import (
	"bytes"
	"crypto/x509"
	"fmt"
	"testing"
	"time"

	"pinscope/internal/detrand"
)

// x509Verify is the reference implementation verifyChain replaced: the
// exact call Chain.Validate used to make.
func x509Verify(c Chain, store *RootStore, hostname string, at time.Time) error {
	if len(c) == 0 {
		return ErrEmptyChain
	}
	inters := x509.NewCertPool()
	for _, ic := range c[1:] {
		inters.AddCert(ic)
	}
	_, err := c[0].Verify(x509.VerifyOptions{
		DNSName:       hostname,
		Roots:         store.Pool(),
		Intermediates: inters,
		CurrentTime:   at,
	})
	return err
}

// agree fails the test unless the walker and x509.Verify reach the same
// valid/invalid verdict for the case.
func agree(t *testing.T, label string, c Chain, store *RootStore, hostname string, at time.Time) {
	t.Helper()
	got := verifyChain(c, store, hostname, at)
	want := x509Verify(c, store, hostname, at)
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: walker says %v, x509.Verify says %v", label, got, want)
	}
}

func TestVerifyChainMatchesX509(t *testing.T) {
	rng := detrand.New(77)
	root, err := NewRootCA(rng.Child("root"), "Test Root", "TestOrg", 10)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate(rng.Child("inter"), "Test Intermediate", 5)
	if err != nil {
		t.Fatal(err)
	}
	otherRoot, err := NewRootCA(rng.Child("other"), "Other Root", "OtherOrg", 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.IssueLeaf(rng.Child("leaf"), "api.example.com", LeafOptions{ExtraDNS: []string{"*.alt.example.com"}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := root.IssueLeaf(rng.Child("direct"), "direct.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	expired, err := inter.IssueLeaf(rng.Child("expired"), "old.example.com", LeafOptions{
		NotBefore: StudyEpoch.AddDate(-2, 0, 0), NotAfter: StudyEpoch.AddDate(-1, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	selfSigned, err := NewSelfSigned(rng.Child("self"), "self.example.com", 27)
	if err != nil {
		t.Fatal(err)
	}

	store := NewRootStore("test")
	store.Add(root.Cert)
	withSelf := store.Clone("with-self")
	withSelf.Add(selfSigned.Cert)
	otherStore := NewRootStore("other")
	otherStore.Add(otherRoot.Cert)
	empty := NewRootStore("empty")

	future := StudyEpoch.AddDate(3, 0, 0)
	cases := []struct {
		label string
		chain Chain
		store *RootStore
		host  string
		at    time.Time
	}{
		{"full chain", Chain{leaf.Cert, inter.Cert}, store, "api.example.com", StudyEpoch},
		{"chain with root included", Chain{leaf.Cert, inter.Cert, root.Cert}, store, "api.example.com", StudyEpoch},
		{"wildcard SAN", Chain{leaf.Cert, inter.Cert}, store, "x.alt.example.com", StudyEpoch},
		{"direct-under-root leaf", Chain{direct.Cert}, store, "direct.example.com", StudyEpoch},
		{"hostname mismatch", Chain{leaf.Cert, inter.Cert}, store, "evil.example.org", StudyEpoch},
		{"missing intermediate", Chain{leaf.Cert}, store, "api.example.com", StudyEpoch},
		{"untrusting store", Chain{leaf.Cert, inter.Cert}, otherStore, "api.example.com", StudyEpoch},
		{"empty store", Chain{leaf.Cert, inter.Cert}, empty, "api.example.com", StudyEpoch},
		{"expired leaf", Chain{expired.Cert, inter.Cert}, store, "old.example.com", StudyEpoch},
		{"leaf after validity", Chain{leaf.Cert, inter.Cert}, store, "api.example.com", future},
		{"standalone self-signed", Chain{selfSigned.Cert}, store, "self.example.com", StudyEpoch},
		{"self-signed in store", Chain{selfSigned.Cert}, withSelf, "self.example.com", StudyEpoch},
		{"leaf as trust anchor", Chain{leaf.Cert, inter.Cert}, func() *RootStore {
			s := NewRootStore("leaf-anchored")
			s.Add(inter.Cert)
			return s
		}(), "api.example.com", StudyEpoch},
		{"out-of-order extras", Chain{leaf.Cert, otherRoot.Cert, inter.Cert}, store, "api.example.com", StudyEpoch},
		{"wrong leaf first", Chain{inter.Cert, leaf.Cert}, store, "api.example.com", StudyEpoch},
	}
	for _, tc := range cases {
		agree(t, tc.label, tc.chain, tc.store, tc.host, tc.at)
	}
}

func TestVerifyChainMatchesX509OverGeneratedPKI(t *testing.T) {
	// Sweep many generated (CA, host) shapes — including a forged-MITM
	// shape (leaf under a foreign CA) — and hold the walker to the
	// reference verdict under the trusting store, a non-trusting store,
	// and a wrong hostname.
	rng := detrand.New(99)
	mitmCA, err := NewRootCA(rng.Child("mitm"), "mitmproxy", "mitmproxy", 10)
	if err != nil {
		t.Fatal(err)
	}
	mitmStore := NewRootStore("mitm-trusting")
	mitmStore.Add(mitmCA.Cert)

	for i := 0; i < 12; i++ {
		caRng := rng.Child(fmt.Sprintf("ca/%d", i))
		root, err := NewRootCA(caRng.Child("root"), fmt.Sprintf("CA %d", i), "Org", 10)
		if err != nil {
			t.Fatal(err)
		}
		host := fmt.Sprintf("h%d.example.com", i)
		var issuer *Authority = root
		chainTail := Chain{}
		if i%2 == 1 {
			inter, err := root.NewIntermediate(caRng.Child("i"), fmt.Sprintf("Inter %d", i), 5)
			if err != nil {
				t.Fatal(err)
			}
			issuer, chainTail = inter, Chain{inter.Cert}
		}
		leaf, err := issuer.IssueLeaf(caRng.Child("leaf"), host, LeafOptions{})
		if err != nil {
			t.Fatal(err)
		}
		chain := append(Chain{leaf.Cert}, chainTail...)

		trusting := NewRootStore("trusting")
		trusting.Add(root.Cert)
		agree(t, host+"/trusting", chain, trusting, host, StudyEpoch)
		agree(t, host+"/mitm-store", chain, mitmStore, host, StudyEpoch)
		agree(t, host+"/wrong-host", chain, trusting, "nope.example.net", StudyEpoch)

		forged, err := mitmCA.IssueLeaf(caRng.Child("forge"), host, LeafOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fchain := Chain{forged.Cert, mitmCA.Cert}
		agree(t, host+"/forged-trusted", fchain, mitmStore, host, StudyEpoch)
		agree(t, host+"/forged-untrusted", fchain, trusting, host, StudyEpoch)
	}
}

func TestSignatureMemoDetectsRogueIssuer(t *testing.T) {
	// The memo is content-addressed by certificate bytes, so a leaf signed
	// by a rogue CA that merely copies the genuine root's subject name
	// must miss the cache, run the real signature check against the
	// genuine key, and fail — even after the genuine leaf validated and
	// warmed the memo.
	rng := detrand.New(101)
	root, err := NewRootCA(rng.Child("root"), "Memo Root", "Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(rng.Child("leaf"), "memo.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store := NewRootStore("memo")
	store.Add(root.Cert)
	if err := (Chain{leaf.Cert}).Validate(store, "memo.example.com", StudyEpoch); err != nil {
		t.Fatalf("genuine chain rejected: %v", err)
	}

	rogue, err := NewRootCA(rng.Child("rogue"), "Memo Root", "Org", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rogue.Cert.RawSubject, root.Cert.RawSubject) {
		t.Fatal("rogue CA subject does not mirror the genuine root")
	}
	forged, err := rogue.IssueLeaf(rng.Child("forged"), "memo.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := (Chain{forged.Cert}).Validate(store, "memo.example.com", StudyEpoch); err == nil {
		t.Fatal("rogue-signed certificate validated against the genuine root")
	}
	agree(t, "rogue issuer", Chain{forged.Cert}, store, "memo.example.com", StudyEpoch)
}
