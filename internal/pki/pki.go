// Package pki models the public-key infrastructure of the study: root
// stores as shipped on Android (AOSP + OEM additions), iOS and in the
// Mozilla CA bundle; certificate authorities that issue real X.509
// certificates (ECDSA P-256); and the pin representations apps embed
// (SPKI SHA-1/SHA-256 hashes in base64 or hex, raw PEM/DER certificates).
//
// All certificates are genuine crypto/x509 certificates, so chain
// validation, hostname matching and expiry checks exercise the real
// algorithms. Key generation is deterministic: private scalars are derived
// from a detrand stream, which makes every SubjectPublicKeyInfo — and
// therefore every pin — reproducible from the world seed.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/base64"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pinscope/internal/detrand"
)

// StudyEpoch is the reference wall-clock instant of the simulated study.
// The paper collected data in 2021; all validity windows are expressed
// relative to this instant so the world never depends on the host clock.
var StudyEpoch = time.Date(2021, time.May, 15, 12, 0, 0, 0, time.UTC)

// Entity is a key pair with its certificate. It may be a root CA, an
// intermediate CA, or a leaf.
type Entity struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
}

// Authority is an issuing certificate authority. The serial counter is
// drawn atomically: the crypto plane shares one Authority across all study
// workers, so concurrent issuance is the norm, not the exception.
type Authority struct {
	Entity
	serial atomic.Int64
}

// deterministicKey derives an ECDSA P-256 private key from rng without
// consulting crypto/rand, so the same world seed always yields the same
// SubjectPublicKeyInfo (and therefore the same pins).
func deterministicKey(rng *detrand.Source) *ecdsa.PrivateKey {
	curve := elliptic.P256()
	n := curve.Params().N
	for {
		b := make([]byte, 32)
		rng.Read(b)
		d := new(big.Int).SetBytes(b)
		if d.Sign() == 0 || d.Cmp(n) >= 0 {
			continue
		}
		priv := &ecdsa.PrivateKey{D: d}
		priv.PublicKey.Curve = curve
		priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
		return priv
	}
}

// NewRootCA creates a self-signed root CA. Validity is expressed as years
// around StudyEpoch.
func NewRootCA(rng *detrand.Source, commonName, org string, validYears int) (*Authority, error) {
	key := deterministicKey(rng)
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(int64(rng.Intn(1 << 30))),
		Subject: pkix.Name{
			CommonName:   commonName,
			Organization: []string{org},
		},
		NotBefore:             StudyEpoch.AddDate(-validYears/2, 0, 0),
		NotAfter:              StudyEpoch.AddDate(validYears, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
		BasicConstraintsValid: true,
	}
	//pinlint:allow detrandonly ECDSA signing is hedged-randomized by design; signature bytes never reach exported artifacts — pins hash the detrand-derived SPKI
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: create root %q: %w", commonName, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Authority{Entity: Entity{Cert: cert, Key: key}}, nil
}

// NewIntermediate issues an intermediate CA under parent.
func (a *Authority) NewIntermediate(rng *detrand.Source, commonName string, validYears int) (*Authority, error) {
	key := deterministicKey(rng)
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(a.serial.Add(1)<<20 | int64(rng.Intn(1<<20))),
		Subject: pkix.Name{
			CommonName:   commonName,
			Organization: a.Cert.Subject.Organization,
		},
		NotBefore:             StudyEpoch.AddDate(-1, 0, 0),
		NotAfter:              StudyEpoch.AddDate(validYears, 0, 0),
		IsCA:                  true,
		MaxPathLenZero:        false,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
		BasicConstraintsValid: true,
	}
	//pinlint:allow detrandonly ECDSA signing is hedged-randomized by design; signature bytes never reach exported artifacts — pins hash the detrand-derived SPKI
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.Cert, &key.PublicKey, a.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: create intermediate %q: %w", commonName, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Authority{Entity: Entity{Cert: cert, Key: key}}, nil
}

// LeafOptions control leaf issuance.
type LeafOptions struct {
	// NotBefore/NotAfter default to [StudyEpoch-90d, StudyEpoch+275d]
	// (a typical ~1y leaf) when zero.
	NotBefore time.Time
	NotAfter  time.Time
	// ExtraDNS adds SANs beyond the primary hostname.
	ExtraDNS []string
}

// IssueLeaf issues a server certificate for hostname.
func (a *Authority) IssueLeaf(rng *detrand.Source, hostname string, opts LeafOptions) (*Entity, error) {
	key := deterministicKey(rng)
	return a.issueLeafWithKey(rng, hostname, key, opts)
}

// ReissueLeaf issues a fresh certificate for the same hostname reusing the
// key of prev. This models operators who rotate certificates but keep the
// key pair, which is what makes SPKI pinning survive renewal (§5.3.3).
func (a *Authority) ReissueLeaf(rng *detrand.Source, prev *Entity, opts LeafOptions) (*Entity, error) {
	host := ""
	if len(prev.Cert.DNSNames) > 0 {
		host = prev.Cert.DNSNames[0]
	}
	return a.issueLeafWithKey(rng, host, prev.Key, opts)
}

func (a *Authority) issueLeafWithKey(rng *detrand.Source, hostname string, key *ecdsa.PrivateKey, opts LeafOptions) (*Entity, error) {
	if opts.NotBefore.IsZero() {
		opts.NotBefore = StudyEpoch.AddDate(0, -3, 0)
	}
	if opts.NotAfter.IsZero() {
		opts.NotAfter = StudyEpoch.AddDate(0, 9, 0)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(a.serial.Add(1)<<20 | int64(rng.Intn(1<<20))),
		Subject:      pkix.Name{CommonName: hostname},
		NotBefore:    opts.NotBefore,
		NotAfter:     opts.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     append([]string{hostname}, opts.ExtraDNS...),
	}
	// The create step (sign, self-verify, encode, parse) is interned by TBS
	// content: re-deriving the same world from the same seed reuses the
	// already-issued certificate instead of minting a fresh signature over
	// identical bytes. Key and serial were already drawn above, so a hit
	// consumes exactly the same rng stream as a miss.
	cert, err := internLeafCertificate(a.Cert, tmpl, &key.PublicKey, func() (*x509.Certificate, error) {
		//pinlint:allow detrandonly ECDSA signing is hedged-randomized by design; signature bytes never reach exported artifacts — pins hash the detrand-derived SPKI
		der, err := x509.CreateCertificate(rand.Reader, tmpl, a.Cert, &key.PublicKey, a.Key)
		if err != nil {
			return nil, fmt.Errorf("pki: issue leaf %q: %w", hostname, err)
		}
		return x509.ParseCertificate(der)
	})
	if err != nil {
		return nil, err
	}
	return &Entity{Cert: cert, Key: key}, nil
}

// NewSelfSigned creates a self-signed server certificate (no chain). The
// paper found two pinned destinations serving these, with 27- and 10-year
// validities (§5.3.1).
func NewSelfSigned(rng *detrand.Source, hostname string, validYears int) (*Entity, error) {
	key := deterministicKey(rng)
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(int64(rng.Intn(1 << 30))),
		Subject:      pkix.Name{CommonName: hostname},
		NotBefore:    StudyEpoch.AddDate(0, -1, 0),
		NotAfter:     StudyEpoch.AddDate(validYears, 0, 0),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{hostname},
		IsCA:         false,
	}
	//pinlint:allow detrandonly ECDSA signing is hedged-randomized by design; signature bytes never reach exported artifacts — pins hash the detrand-derived SPKI
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-signed %q: %w", hostname, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Entity{Cert: cert, Key: key}, nil
}

// Chain is an ordered certificate chain, leaf first (as delivered in a TLS
// handshake).
type Chain []*x509.Certificate

// Leaf returns the first certificate or nil.
func (c Chain) Leaf() *x509.Certificate {
	if len(c) == 0 {
		return nil
	}
	return c[0]
}

// Root returns the last certificate or nil.
func (c Chain) Root() *x509.Certificate {
	if len(c) == 0 {
		return nil
	}
	return c[len(c)-1]
}

// ErrEmptyChain is returned when validating a zero-length chain.
var ErrEmptyChain = errors.New("pki: empty certificate chain")

// Validate verifies the chain against store for hostname at time at. The
// last element of the chain is treated as the trust-anchor candidate: it
// must itself be present in (or signed by a member of) the store.
// Per-link signature checks are served from a global content-addressed
// memo (see verify.go); the non-cryptographic checks run every time.
func (c Chain) Validate(store *RootStore, hostname string, at time.Time) error {
	return verifyChain(c, store, hostname, at)
}

// RootStore is a named set of trusted root certificates. It carries a
// validation cache: the study validates the same (chain, hostname, time)
// triples tens of thousands of times across app runs, and x509 chain
// verification costs two ECDSA verifications each.
type RootStore struct {
	Name  string
	certs []*x509.Certificate
	pool  *x509.CertPool

	vmu    sync.RWMutex
	vcache map[string]error
	digest string
	subj   map[string][]*x509.Certificate
}

// NewRootStore returns an empty store with the given name.
func NewRootStore(name string) *RootStore {
	return &RootStore{Name: name}
}

// Add appends a trusted root. It invalidates the cached pool and any
// cached validation results.
func (rs *RootStore) Add(cert *x509.Certificate) {
	rs.vmu.Lock()
	rs.certs = append(rs.certs, cert)
	rs.pool = nil
	rs.vcache = nil
	rs.digest = ""
	rs.subj = nil
	rs.vmu.Unlock()
}

// bySubject returns the trusted roots whose subject matches rawSubject,
// from a lazily built index (invalidated by Add). Safe for concurrent use.
func (rs *RootStore) bySubject(rawSubject []byte) []*x509.Certificate {
	rs.vmu.RLock()
	idx := rs.subj
	rs.vmu.RUnlock()
	if idx == nil {
		rs.vmu.Lock()
		if rs.subj == nil {
			rs.subj = make(map[string][]*x509.Certificate, len(rs.certs))
			for _, c := range rs.certs {
				rs.subj[string(c.RawSubject)] = append(rs.subj[string(c.RawSubject)], c)
			}
		}
		idx = rs.subj
		rs.vmu.Unlock()
	}
	return idx[string(rawSubject)]
}

// Validate verifies chain for hostname at time at against the store,
// caching results. Equivalent to chain.Validate(rs, ...) but safe for
// concurrent use and much cheaper on repeats.
func (rs *RootStore) Validate(chain Chain, hostname string, at time.Time) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	var key strings.Builder
	sum := RawDigest(chain[0])
	key.Write(sum[:])
	for _, c := range chain[1:] {
		key.WriteByte('|')
		key.Write(c.RawSubjectPublicKeyInfo[:16])
	}
	key.WriteByte('|')
	key.WriteString(hostname)
	fmt.Fprintf(&key, "|%d", at.Unix())
	k := key.String()

	rs.vmu.RLock()
	err, ok := rs.vcache[k]
	rs.vmu.RUnlock()
	if ok {
		return err
	}
	err = chain.Validate(rs, hostname, at)
	rs.vmu.Lock()
	if rs.vcache == nil {
		rs.vcache = make(map[string]error)
	}
	rs.vcache[k] = err
	rs.vmu.Unlock()
	return err
}

// Certs returns the roots in insertion order.
func (rs *RootStore) Certs() []*x509.Certificate { return rs.certs }

// Len returns the number of trusted roots.
func (rs *RootStore) Len() int { return len(rs.certs) }

// Pool returns (and caches) an x509.CertPool of the roots. Safe for
// concurrent use.
func (rs *RootStore) Pool() *x509.CertPool {
	rs.vmu.Lock()
	defer rs.vmu.Unlock()
	if rs.pool == nil {
		rs.pool = x509.NewCertPool()
		for _, c := range rs.certs {
			rs.pool.AddCert(c)
		}
	}
	return rs.pool
}

// Contains reports whether the store holds a certificate with the same
// raw bytes.
func (rs *RootStore) Contains(cert *x509.Certificate) bool {
	for _, c := range rs.certs {
		if c.Equal(cert) {
			return true
		}
	}
	return false
}

// Clone returns a copy that can be mutated (e.g. to install a MITM CA on a
// test device) without affecting the original. The content digest only
// depends on the trusted roots, so a clone inherits the cached digest:
// per-release stores cloned onto thousands of devices must not re-hash the
// same immutable content on every HandshakeMemo lookup.
func (rs *RootStore) Clone(name string) *RootStore {
	rs.vmu.RLock()
	cp := &RootStore{
		Name:   name,
		certs:  make([]*x509.Certificate, len(rs.certs)),
		digest: rs.digest,
	}
	copy(cp.certs, rs.certs)
	rs.vmu.RUnlock()
	return cp
}

// Digest returns a digest of the store's trusted-root content (not its
// Name), cached until the next Add. Two stores trusting the same roots in
// the same order share a digest, which is what handshake memo keys need:
// the handshake outcome depends on what is trusted, not what the store is
// called. Safe for concurrent use.
func (rs *RootStore) Digest() string {
	rs.vmu.RLock()
	d := rs.digest
	rs.vmu.RUnlock()
	if d != "" {
		return d
	}
	rs.vmu.Lock()
	defer rs.vmu.Unlock()
	if rs.digest == "" {
		h := sha256.New()
		for _, c := range rs.certs {
			sum := RawDigest(c)
			h.Write(sum[:])
		}
		rs.digest = string(h.Sum(nil))
	}
	return rs.digest
}

// --- Pins ---------------------------------------------------------------

// HashAlg identifies the digest used for an SPKI pin.
type HashAlg int

const (
	SHA256 HashAlg = iota
	SHA1
)

func (h HashAlg) String() string {
	if h == SHA1 {
		return "sha1"
	}
	return "sha256"
}

// SPKIDigest hashes the SubjectPublicKeyInfo of cert. Digests are computed
// once per certificate and memoized (see chainstore.go); the returned slice
// is a fresh copy the caller may keep or mutate.
func SPKIDigest(cert *x509.Certificate, alg HashAlg) []byte {
	d := digestsOf(cert)
	if alg == SHA1 {
		return append([]byte(nil), d.spki1[:]...)
	}
	return append([]byte(nil), d.spki256[:]...)
}

// Pin is a single certificate pin as apps embed them: an SPKI digest plus
// its presentation (which algorithm, and whether it was written base64 or
// hex — the paper's regex accepts both, §4.1.2).
type Pin struct {
	Alg    HashAlg
	Digest []byte
	Hex    bool // presentation detail only; matching uses Digest
}

// NewPin pins cert's SubjectPublicKeyInfo with alg.
func NewPin(cert *x509.Certificate, alg HashAlg) Pin {
	return Pin{Alg: alg, Digest: SPKIDigest(cert, alg)}
}

// String renders the pin in the conventional "sha256/<base64>" form, or
// "sha256/<hex>" when the Hex presentation flag is set. This is the exact
// shape the static-analysis regex hunts for.
func (p Pin) String() string {
	if p.Hex {
		return p.Alg.String() + "/" + hex.EncodeToString(p.Digest)
	}
	return p.Alg.String() + "/" + base64.StdEncoding.EncodeToString(p.Digest)
}

// Key returns a canonical comparable representation (algorithm + digest),
// independent of base64/hex presentation.
func (p Pin) Key() string {
	return p.Alg.String() + ":" + hex.EncodeToString(p.Digest)
}

// Matches reports whether cert's SPKI digest equals the pin. It reads the
// memoized digests directly, so a pin check allocates nothing.
func (p Pin) Matches(cert *x509.Certificate) bool {
	md := digestsOf(cert)
	d := md.spki256[:]
	if p.Alg == SHA1 {
		d = md.spki1[:]
	}
	if len(d) != len(p.Digest) {
		return false
	}
	for i := range d {
		if d[i] != p.Digest[i] {
			return false
		}
	}
	return true
}

// ParsePin parses a "sha256/..." or "sha1/..." pin string in base64 or hex
// form. It returns an error for malformed input or wrong digest length.
func ParsePin(s string) (Pin, error) {
	var alg HashAlg
	var rest string
	switch {
	case len(s) > 7 && s[:7] == "sha256/":
		alg, rest = SHA256, s[7:]
	case len(s) > 5 && s[:5] == "sha1/":
		alg, rest = SHA1, s[5:]
	default:
		return Pin{}, fmt.Errorf("pki: unrecognized pin prefix in %q", s)
	}
	want := sha256.Size
	if alg == SHA1 {
		want = sha1.Size
	}
	if d, err := base64.StdEncoding.DecodeString(rest); err == nil && len(d) == want {
		return Pin{Alg: alg, Digest: d}, nil
	}
	if d, err := hex.DecodeString(rest); err == nil && len(d) == want {
		return Pin{Alg: alg, Digest: d, Hex: true}, nil
	}
	return Pin{}, fmt.Errorf("pki: pin %q is neither valid base64 nor hex of the right length", s)
}

// PinSet is the set of pins an app (or one of its SDKs) enforces for a
// destination. A chain satisfies the set if ANY certificate in the chain
// matches ANY pin — the standard OkHttp/NSC semantics.
type PinSet struct {
	Pins []Pin
	// RawCerts holds whole certificates pinned verbatim (rather than by
	// SPKI hash). A chain matches a raw cert if the exact certificate is
	// present, so server-side renewal breaks these (§5.3.3).
	RawCerts []*x509.Certificate
}

// Empty reports whether the set contains no pin material.
func (ps *PinSet) Empty() bool {
	return ps == nil || (len(ps.Pins) == 0 && len(ps.RawCerts) == 0)
}

// DigestKey returns a canonical digest of the set's pin material, for use
// in memo keys. Empty sets (including nil) digest to "".
func (ps *PinSet) DigestKey() string {
	if ps.Empty() {
		return ""
	}
	h := sha256.New()
	for _, p := range ps.Pins {
		h.Write([]byte(p.Alg.String()))
		h.Write(p.Digest)
	}
	for _, rc := range ps.RawCerts {
		sum := RawDigest(rc)
		h.Write(sum[:])
	}
	return string(h.Sum(nil))
}

// MatchChain reports whether any certificate in the chain satisfies any pin.
func (ps *PinSet) MatchChain(chain Chain) bool {
	if ps.Empty() {
		return false
	}
	for _, cert := range chain {
		for _, p := range ps.Pins {
			if p.Matches(cert) {
				return true
			}
		}
		for _, rc := range ps.RawCerts {
			if rc.Equal(cert) {
				return true
			}
		}
	}
	return false
}

// --- Encoding helpers ----------------------------------------------------

// EncodePEM renders cert as a PEM CERTIFICATE block.
func EncodePEM(cert *x509.Certificate) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw})
}

// DecodePEM parses the first CERTIFICATE block in data.
func DecodePEM(data []byte) (*x509.Certificate, error) {
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			return nil, errors.New("pki: no CERTIFICATE block found")
		}
		if block.Type == "CERTIFICATE" {
			return x509.ParseCertificate(block.Bytes)
		}
	}
}

// DecodeAllPEM parses every CERTIFICATE block in data.
func DecodeAllPEM(data []byte) []*x509.Certificate {
	var out []*x509.Certificate
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			return out
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		if c, err := x509.ParseCertificate(block.Bytes); err == nil {
			out = append(out, c)
		}
	}
}
