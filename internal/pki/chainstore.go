package pki

// chainstore.go is the interning layer of the shared crypto plane. A study
// issues the same certificate material over and over: every worker's MITM
// proxy forges a leaf for the same hosts, and every pin check and chain
// validation hashes the same DER bytes. Two caches collapse that work:
//
//   - ChainStore interns issued chains content-addressed by caller-chosen
//     key (authority digest + hostname + leaf options). Each key's chain is
//     issued exactly once per store, no matter how many workers race on it.
//   - a package-level digest memo precomputes, per *x509.Certificate, the
//     SPKI SHA-256/SHA-1 and whole-cert SHA-256 digests, so sha256.Sum256
//     never runs twice over the same DER.
//
// Both caches hold immutable values, so sharing them across workers cannot
// perturb results; the equivalence test in internal/core proves a plane-
// backed run exports byte-identical data to a cold one.

import (
	"crypto/ecdsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"strconv"
	"sync"
)

// ChainStore is a content-addressed intern table for issued chains. The
// zero value is NOT ready; use NewChainStore. Safe for concurrent use:
// concurrent GetOrIssue calls for the same key run the issue function
// exactly once and all receive the same interned chain.
type ChainStore struct {
	m sync.Map // key string -> *chainEntry
}

type chainEntry struct {
	once  sync.Once
	chain Chain
	err   error
}

// NewChainStore returns an empty store.
func NewChainStore() *ChainStore { return &ChainStore{} }

// GetOrIssue returns the chain interned under key, calling issue to build
// it on first use. issue runs at most once per key for the store's
// lifetime; a returned error is interned too (the issuance is assumed
// deterministic, so retrying could only repeat it).
func (s *ChainStore) GetOrIssue(key string, issue func() (Chain, error)) (Chain, error) {
	v, _ := s.m.LoadOrStore(key, &chainEntry{})
	e := v.(*chainEntry)
	e.once.Do(func() {
		e.chain, e.err = issue()
	})
	return e.chain, e.err
}

// Len reports how many keys have been interned (including pending ones).
func (s *ChainStore) Len() int {
	n := 0
	s.m.Range(func(any, any) bool { n++; return true })
	return n
}

// --- Per-certificate digest memo -----------------------------------------

// certDigests holds every digest the study ever takes of one certificate.
type certDigests struct {
	spki256 [sha256.Size]byte
	spki1   [sha1.Size]byte
	raw256  [sha256.Size]byte
}

// digestMemo maps *x509.Certificate to its *certDigests. Keying by pointer
// is sound here: the simulation parses each certificate exactly once (at
// issuance or PEM decode) and passes the same pointer everywhere after.
// Distinct pointers with equal DER merely compute the digests once each.
var digestMemo sync.Map

func digestsOf(cert *x509.Certificate) *certDigests {
	if v, ok := digestMemo.Load(cert); ok {
		return v.(*certDigests)
	}
	d := &certDigests{
		spki256: sha256.Sum256(cert.RawSubjectPublicKeyInfo),
		spki1:   sha1.Sum(cert.RawSubjectPublicKeyInfo),
		raw256:  sha256.Sum256(cert.Raw),
	}
	v, _ := digestMemo.LoadOrStore(cert, d)
	return v.(*certDigests)
}

// RawDigest returns the memoized SHA-256 of cert.Raw.
func RawDigest(cert *x509.Certificate) [sha256.Size]byte {
	return digestsOf(cert).raw256
}

// --- Leaf-issuance intern table -------------------------------------------

// leafIntern caches parsed leaf certificates keyed by the full TBS content
// of the issuance (issuer key, serial, validity, SANs, subject key). A
// process that runs the same study twice re-derives identical keys and
// serials from the seed, so every x509.CreateCertificate call after the
// first would sign, self-verify, encode and re-parse a certificate that
// differs only in its (unobservable) hedged signature bytes. The intern hit
// skips all of that. The key covers every template field issueLeafWithKey
// varies; constant fields (key usages, EKU) need no representation.
var leafIntern sync.Map // string -> *x509.Certificate

// leafInternKey builds the content key for one leaf issuance.
func leafInternKey(parent *x509.Certificate, tmpl *x509.Certificate, pub *ecdsa.PublicKey) string {
	d := digestsOf(parent)
	b := make([]byte, 0, 192)
	b = append(b, d.spki256[:]...)
	ser := tmpl.SerialNumber.Bytes()
	b = append(b, byte(len(ser))) // length prefix: serial bytes may contain any value
	b = append(b, ser...)
	b = append(b, '|')
	b = strconv.AppendInt(b, tmpl.NotBefore.Unix(), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, tmpl.NotAfter.Unix(), 10)
	for _, name := range tmpl.DNSNames {
		b = append(b, '|')
		b = append(b, name...)
	}
	b = append(b, 0)
	b = append(b, pub.X.Bytes()...)
	b = append(b, 0)
	b = append(b, pub.Y.Bytes()...)
	return string(b)
}

// internLeafCertificate returns the parsed certificate for the issuance
// described by (parent, tmpl, pub), creating and caching it on first use.
// create performs the actual x509.CreateCertificate + ParseCertificate;
// its errors are not interned (they are deterministic, so a retry merely
// repeats them).
func internLeafCertificate(parent, tmpl *x509.Certificate, pub *ecdsa.PublicKey, create func() (*x509.Certificate, error)) (*x509.Certificate, error) {
	key := leafInternKey(parent, tmpl, pub)
	if v, ok := leafIntern.Load(key); ok {
		return v.(*x509.Certificate), nil
	}
	cert, err := create()
	if err != nil {
		return nil, err
	}
	v, _ := leafIntern.LoadOrStore(key, cert)
	return v.(*x509.Certificate), nil
}
