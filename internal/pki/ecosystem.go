package pki

import (
	"fmt"

	"pinscope/internal/detrand"
)

// Ecosystem is the study's complete PKI world: the public CAs, the platform
// root stores built from them, and bookkeeping for custom (non-public)
// PKIs used by a handful of pinning apps.
//
// The store relationships mirror reality as described in the paper (§2.1,
// §5.3.1): AOSP and iOS ship large overlapping root sets; OEM Android
// builds add extra (sometimes obscure or expired) roots; the Mozilla bundle
// is the reference "default PKI" used to classify pinned destinations in
// Table 6.
type Ecosystem struct {
	// PublicCAs are the commercial CAs whose roots appear in public stores.
	PublicCAs []*Authority
	// Intermediates holds one issuing intermediate per public CA, keyed by
	// position in PublicCAs. Leaf certs are issued from these, so served
	// chains are [leaf, intermediate, root]-shaped like real deployments.
	Intermediates []*Authority

	AOSP    *RootStore // Android Open Source Project store
	OEM     *RootStore // AOSP plus manufacturer additions
	IOS     *RootStore // Apple trust store
	Mozilla *RootStore // reference bundle used for Table 6 classification

	// ObscureCAs are OEM-only roots not present in Mozilla; chains anchored
	// here validate on (OEM) Android devices but are classified as outside
	// the default PKI by the Mozilla check.
	ObscureCAs []*Authority
}

// Common commercial CA names; enough to make chains look plausible and to
// give the CT log some variety.
var publicCANames = []string{
	"GlobalTrust Root CA", "DigiCert Global Root", "Sectigo RSA Root",
	"ISRG Root X1", "Amazon Root CA 1", "GTS Root R1",
	"Baltimore CyberTrust Root", "Entrust Root CA", "GoDaddy Root CA",
	"QuoVadis Root CA 2", "Starfield Root CA", "IdenTrust Commercial Root",
}

var obscureCANames = []string{
	"Regional Telecom Root CA", "Legacy Gov Root 2009", "VendorTrust Device CA",
}

// BuildEcosystem deterministically constructs the PKI world.
func BuildEcosystem(rng *detrand.Source) (*Ecosystem, error) {
	eco := &Ecosystem{
		AOSP:    NewRootStore("AOSP"),
		OEM:     NewRootStore("OEM-Android"),
		IOS:     NewRootStore("iOS"),
		Mozilla: NewRootStore("Mozilla"),
	}
	for i, name := range publicCANames {
		crng := rng.ChildN("public-ca", i)
		root, err := NewRootCA(crng, name, name, 20)
		if err != nil {
			return nil, fmt.Errorf("pki: ecosystem root %d: %w", i, err)
		}
		inter, err := root.NewIntermediate(crng, name+" Issuing CA", 10)
		if err != nil {
			return nil, fmt.Errorf("pki: ecosystem intermediate %d: %w", i, err)
		}
		eco.PublicCAs = append(eco.PublicCAs, root)
		eco.Intermediates = append(eco.Intermediates, inter)

		eco.Mozilla.Add(root.Cert)
		eco.AOSP.Add(root.Cert)
		eco.OEM.Add(root.Cert)
		eco.IOS.Add(root.Cert)
	}
	// Stores differ a little in practice: AOSP (and Mozilla) retain a
	// legacy root that Apple removed. No live site chains to it, so the
	// difference never breaks issuance.
	legacy, err := NewRootCA(rng.Child("legacy-root"), "Legacy Web Root 2006", "Legacy Web CA", 30)
	if err != nil {
		return nil, err
	}
	eco.Mozilla.Add(legacy.Cert)
	eco.AOSP.Add(legacy.Cert)
	eco.OEM.Add(legacy.Cert)
	for i, name := range obscureCANames {
		crng := rng.ChildN("obscure-ca", i)
		root, err := NewRootCA(crng, name, name, 25)
		if err != nil {
			return nil, fmt.Errorf("pki: obscure root %d: %w", i, err)
		}
		eco.ObscureCAs = append(eco.ObscureCAs, root)
		eco.OEM.Add(root.Cert) // OEM-only: not in AOSP, iOS or Mozilla
	}
	return eco, nil
}

// PublicCA returns a deterministic public intermediate authority for
// issuing a leaf, chosen by rng.
func (e *Ecosystem) PublicCA(rng *detrand.Source) (root, intermediate *Authority) {
	i := rng.Intn(len(e.Intermediates))
	return e.PublicCAs[i], e.Intermediates[i]
}

// IssuePublicChain issues a leaf for hostname from a randomly chosen public
// CA and returns the full served chain [leaf, intermediate, root] along
// with the leaf entity (whose key the server holds).
func (e *Ecosystem) IssuePublicChain(rng *detrand.Source, hostname string, opts LeafOptions) (Chain, *Entity, error) {
	root, inter := e.PublicCA(rng)
	leaf, err := inter.IssueLeaf(rng, hostname, opts)
	if err != nil {
		return nil, nil, err
	}
	return Chain{leaf.Cert, inter.Cert, root.Cert}, leaf, nil
}

// NewCustomPKI creates a private CA hierarchy (root + issuing intermediate)
// that is NOT added to any public store — the "custom PKI" case of Table 6.
func (e *Ecosystem) NewCustomPKI(rng *detrand.Source, org string) (root, intermediate *Authority, err error) {
	root, err = NewRootCA(rng, org+" Private Root", org, 15)
	if err != nil {
		return nil, nil, err
	}
	intermediate, err = root.NewIntermediate(rng, org+" Private Issuing CA", 8)
	if err != nil {
		return nil, nil, err
	}
	return root, intermediate, nil
}

// IsDefaultPKI reports whether the chain anchors in the Mozilla reference
// store — the paper's operational definition of "default PKI" (§5.3.1,
// validated with OpenSSL against the Mozilla bundle).
func (e *Ecosystem) IsDefaultPKI(chain Chain, hostname string) bool {
	return chain.Validate(e.Mozilla, hostname, StudyEpoch) == nil
}
