package pki

// verify.go is the crypto plane's chain verifier. The study validates tens
// of thousands of chains per run, and the dominant cost inside
// x509.Certificate.Verify is the per-link ECDSA signature check — yet a
// study re-checks the same (parent, child) signature pairs over and over:
// every host's leaf under its issuing CA, every CA under its root, every
// forged leaf under the one proxy CA, across two platforms and every trust
// store. Signatures over identical bytes under identical keys cannot
// change, so verifyChain walks the path itself and routes each link
// through a global content-addressed signature memo (keyed by the raw
// digests of parent and child). Everything non-cryptographic — validity
// windows, hostname matching, CA constraints, key usage — is re-evaluated
// on every call; only the signature math is memoized.
//
// The walker reproduces the exact x509.Verify semantics this simulation's
// PKI exercises (see TestVerifyChainMatchesX509, which holds the walker to
// x509.Verify's verdict across every chain shape the world generator and
// the proxy produce, plus the mutated failure cases). The simulation never
// uses the x509 features the walker omits: name constraints, policy
// graphs, signature algorithms beyond ECDSA-P256/SHA256, or system roots.

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"sync"
	"time"
)

// sigMemo caches signature-check outcomes keyed by the raw digests of
// (parent, child). Content-addressed, so entries can never go stale; it
// grows with the number of distinct certificates seen by the process.
var sigMemo sync.Map // [2*sha256.Size]byte -> error (nil stored as nilError)

// nilError is the sentinel for a cached successful check (sync.Map can
// store nil values, but a typed sentinel keeps the Load site unambiguous).
var nilError = struct{}{}

// checkSigCached verifies that parent's key signed child, memoized.
func checkSigCached(parent, child *x509.Certificate) error {
	var key [2 * sha256.Size]byte
	p, c := RawDigest(parent), RawDigest(child)
	copy(key[:], p[:])
	copy(key[sha256.Size:], c[:])
	if v, ok := sigMemo.Load(key); ok {
		if v == nilError {
			return nil
		}
		return v.(error)
	}
	err := parent.CheckSignature(child.SignatureAlgorithm, child.RawTBSCertificate, child.Signature)
	if err == nil {
		sigMemo.Store(key, nilError)
	} else {
		sigMemo.Store(key, err)
	}
	return err
}

// canSign reports whether parent may act as a CA for child under the
// constraints x509.Verify enforces: a v3 parent must carry valid basic
// constraints with the CA bit, and a parent with a key-usage extension
// must include certificate signing.
func canSign(parent *x509.Certificate) error {
	if parent.Version == 3 && !parent.BasicConstraintsValid ||
		parent.BasicConstraintsValid && !parent.IsCA {
		return x509.ConstraintViolationError{}
	}
	if parent.KeyUsage != 0 && parent.KeyUsage&x509.KeyUsageCertSign == 0 {
		return x509.ConstraintViolationError{}
	}
	return nil
}

// inValidity reports the x509 expiry verdict for c at instant at.
func inValidity(c *x509.Certificate, at time.Time) error {
	if at.Before(c.NotBefore) || at.After(c.NotAfter) {
		return x509.CertificateInvalidError{Cert: c, Reason: x509.Expired}
	}
	return nil
}

// alreadyOnPath mirrors x509's alreadyInChain: a candidate parent with the
// same subject and public key as a cert already on the path is skipped
// (this is what makes a lone self-signed cert fail even when it sits in
// the store).
func alreadyOnPath(candidate *x509.Certificate, path []*x509.Certificate) bool {
	for _, c := range path {
		if bytes.Equal(c.RawSubject, candidate.RawSubject) &&
			bytes.Equal(c.RawSubjectPublicKeyInfo, candidate.RawSubjectPublicKeyInfo) {
			return true
		}
	}
	return false
}

// verifyChain validates chain for hostname at instant at against the
// store's roots, using chain[1:] as the intermediate pool — the same
// inputs Chain.Validate previously handed to x509.Certificate.Verify.
func verifyChain(chain Chain, store *RootStore, hostname string, at time.Time) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	leaf := chain[0]
	if err := inValidity(leaf, at); err != nil {
		return err
	}
	if hostname != "" {
		if err := leaf.VerifyHostname(hostname); err != nil {
			return err
		}
	}
	// Server-auth key usage, as x509.Verify's default KeyUsages enforces
	// along the whole chain: a cert with an EKU list must include
	// ServerAuth or Any; an absent list is unconstrained.
	for _, c := range chain {
		if len(c.ExtKeyUsage) == 0 {
			continue
		}
		ok := false
		for _, u := range c.ExtKeyUsage {
			if u == x509.ExtKeyUsageServerAuth || u == x509.ExtKeyUsageAny {
				ok = true
				break
			}
		}
		if !ok {
			return x509.CertificateInvalidError{Cert: c, Reason: x509.IncompatibleUsage}
		}
	}

	// A leaf that is itself a trust anchor is accepted as a length-one
	// chain with no signature check, mirroring x509.Verify's
	// opts.Roots.contains(c) fast path.
	for _, r := range store.bySubject(leaf.RawSubject) {
		if bytes.Equal(r.Raw, leaf.Raw) {
			return nil
		}
	}

	// Depth-first path walk: at each step try store roots (terminating the
	// path) before chain-supplied intermediates (extending it), exactly as
	// x509 prefers shorter root-anchored chains.
	var walk func(current *x509.Certificate, path []*x509.Certificate) error
	walk = func(current *x509.Certificate, path []*x509.Certificate) error {
		for _, root := range store.bySubject(current.RawIssuer) {
			if alreadyOnPath(root, path) {
				continue
			}
			if canSign(root) != nil || inValidity(root, at) != nil {
				continue
			}
			if checkSigCached(root, current) == nil {
				return nil
			}
		}
		for _, inter := range chain[1:] {
			if !bytes.Equal(inter.RawSubject, current.RawIssuer) || alreadyOnPath(inter, path) {
				continue
			}
			if canSign(inter) != nil || inValidity(inter, at) != nil {
				continue
			}
			// Intermediates must themselves be CA certificates (x509's
			// intermediate isValid check).
			if !(inter.BasicConstraintsValid && inter.IsCA) {
				continue
			}
			if checkSigCached(inter, current) != nil {
				continue
			}
			if err := walk(inter, append(path, inter)); err == nil {
				return nil
			}
		}
		return x509.UnknownAuthorityError{Cert: current}
	}
	return walk(leaf, Chain{leaf})
}
