package pki

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"pinscope/internal/detrand"
)

func testChain(t *testing.T, seed int64) (Chain, *Entity, *Authority, *Authority) {
	t.Helper()
	rng := detrand.New(seed)
	root, err := NewRootCA(rng, "Test Root", "TestOrg", 20)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate(rng, "Test Issuing CA", 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.IssueLeaf(rng, "api.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return Chain{leaf.Cert, inter.Cert, root.Cert}, leaf, inter, root
}

func TestDeterministicKeys(t *testing.T) {
	k1 := deterministicKey(detrand.New(5))
	k2 := deterministicKey(detrand.New(5))
	if k1.D.Cmp(k2.D) != 0 {
		t.Fatal("same seed produced different keys")
	}
	k3 := deterministicKey(detrand.New(6))
	if k1.D.Cmp(k3.D) == 0 {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestChainValidates(t *testing.T) {
	chain, _, _, root := testChain(t, 1)
	store := NewRootStore("test")
	store.Add(root.Cert)
	if err := chain.Validate(store, "api.example.com", StudyEpoch); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestChainRejectsWrongHostname(t *testing.T) {
	chain, _, _, root := testChain(t, 2)
	store := NewRootStore("test")
	store.Add(root.Cert)
	if err := chain.Validate(store, "evil.example.org", StudyEpoch); err == nil {
		t.Fatal("hostname mismatch accepted")
	}
}

func TestChainRejectsUntrustedRoot(t *testing.T) {
	chain, _, _, _ := testChain(t, 3)
	_, _, _, otherRoot := testChain(t, 4)
	store := NewRootStore("test")
	store.Add(otherRoot.Cert)
	if err := chain.Validate(store, "api.example.com", StudyEpoch); err == nil {
		t.Fatal("chain with untrusted root accepted")
	}
}

func TestChainRejectsExpired(t *testing.T) {
	chain, _, _, root := testChain(t, 5)
	store := NewRootStore("test")
	store.Add(root.Cert)
	future := StudyEpoch.AddDate(5, 0, 0)
	if err := chain.Validate(store, "api.example.com", future); err == nil {
		t.Fatal("expired leaf accepted")
	}
}

func TestEmptyChain(t *testing.T) {
	store := NewRootStore("test")
	if err := Chain(nil).Validate(store, "x", StudyEpoch); err != ErrEmptyChain {
		t.Fatalf("got %v, want ErrEmptyChain", err)
	}
	if Chain(nil).Leaf() != nil || Chain(nil).Root() != nil {
		t.Fatal("empty chain leaf/root should be nil")
	}
}

func TestLeafRootAccessors(t *testing.T) {
	chain, leaf, _, root := testChain(t, 6)
	if !chain.Leaf().Equal(leaf.Cert) {
		t.Fatal("Leaf() wrong")
	}
	if !chain.Root().Equal(root.Cert) {
		t.Fatal("Root() wrong")
	}
}

func TestPinRoundTrip(t *testing.T) {
	chain, _, _, _ := testChain(t, 7)
	for _, alg := range []HashAlg{SHA256, SHA1} {
		for _, hexForm := range []bool{false, true} {
			p := NewPin(chain.Leaf(), alg)
			p.Hex = hexForm
			parsed, err := ParsePin(p.String())
			if err != nil {
				t.Fatalf("ParsePin(%q): %v", p.String(), err)
			}
			if parsed.Key() != p.Key() {
				t.Fatalf("round trip changed pin: %q vs %q", parsed.Key(), p.Key())
			}
			if !parsed.Matches(chain.Leaf()) {
				t.Fatal("parsed pin does not match the certificate it was made from")
			}
		}
	}
}

func TestParsePinRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "sha256/", "md5/abcd", "sha256/!!!not-base64!!!",
		"sha256/aGVsbG8=", // valid base64, wrong length
		"sha1/abcd",
	}
	for _, s := range bad {
		if _, err := ParsePin(s); err == nil {
			t.Fatalf("ParsePin(%q) accepted", s)
		}
	}
}

func TestPinMatchesOnlyOwnCert(t *testing.T) {
	chainA, _, _, _ := testChain(t, 8)
	chainB, _, _, _ := testChain(t, 9)
	p := NewPin(chainA.Leaf(), SHA256)
	if p.Matches(chainB.Leaf()) {
		t.Fatal("pin matched a different certificate")
	}
}

func TestPinSetSemantics(t *testing.T) {
	chain, _, inter, _ := testChain(t, 10)

	// CA pin matches the whole chain (any cert in chain).
	caPin := &PinSet{Pins: []Pin{NewPin(inter.Cert, SHA256)}}
	if !caPin.MatchChain(chain) {
		t.Fatal("CA pin did not match chain containing the CA")
	}

	// Leaf pin matches.
	leafPin := &PinSet{Pins: []Pin{NewPin(chain.Leaf(), SHA256)}}
	if !leafPin.MatchChain(chain) {
		t.Fatal("leaf pin did not match")
	}

	// Unrelated pin does not match.
	other, _, _, _ := testChain(t, 11)
	bad := &PinSet{Pins: []Pin{NewPin(other.Leaf(), SHA256)}}
	if bad.MatchChain(chain) {
		t.Fatal("unrelated pin matched")
	}

	// Raw-cert pinning matches exact cert only.
	rawSet := &PinSet{}
	rawSet.RawCerts = append(rawSet.RawCerts, chain.Leaf())
	if !rawSet.MatchChain(chain) {
		t.Fatal("raw cert pin did not match own chain")
	}
	if rawSet.MatchChain(other) {
		t.Fatal("raw cert pin matched foreign chain")
	}

	// Empty set never matches.
	var empty *PinSet
	if !empty.Empty() || empty.MatchChain(chain) {
		t.Fatal("nil PinSet misbehaved")
	}
}

func TestRawCertPinBreaksOnReissueWithNewKey(t *testing.T) {
	rng := detrand.New(12)
	root, _ := NewRootCA(rng, "R", "R", 20)
	inter, _ := root.NewIntermediate(rng, "I", 10)
	leaf1, _ := inter.IssueLeaf(rng, "svc.example.com", LeafOptions{})
	leaf2, _ := inter.IssueLeaf(rng, "svc.example.com", LeafOptions{}) // new key

	set := &PinSet{}
	set.RawCerts = append(set.RawCerts, leaf1.Cert)
	newChain := Chain{leaf2.Cert, inter.Cert, root.Cert}
	if set.MatchChain(newChain) {
		t.Fatal("raw-cert pin survived reissue with a new key")
	}

	// SPKI pin with key reuse survives (§5.3.3).
	leaf3, err := inter.ReissueLeaf(rng, leaf1, LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spki := &PinSet{Pins: []Pin{NewPin(leaf1.Cert, SHA256)}}
	rotated := Chain{leaf3.Cert, inter.Cert, root.Cert}
	if !spki.MatchChain(rotated) {
		t.Fatal("SPKI pin did not survive key-reusing rotation")
	}
	if leaf3.Cert.Equal(leaf1.Cert) {
		t.Fatal("reissued cert should differ from original")
	}
}

func TestPEMRoundTrip(t *testing.T) {
	chain, _, _, _ := testChain(t, 13)
	p := EncodePEM(chain.Leaf())
	if !bytes.Contains(p, []byte("-----BEGIN CERTIFICATE-----")) {
		t.Fatal("PEM missing header")
	}
	back, err := DecodePEM(p)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(chain.Leaf()) {
		t.Fatal("PEM round trip changed certificate")
	}
	// Multi-cert bundle.
	bundle := append(append([]byte{}, EncodePEM(chain[0])...), EncodePEM(chain[1])...)
	all := DecodeAllPEM(bundle)
	if len(all) != 2 {
		t.Fatalf("DecodeAllPEM found %d certs", len(all))
	}
}

func TestDecodePEMErrors(t *testing.T) {
	if _, err := DecodePEM([]byte("not pem at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if got := DecodeAllPEM([]byte("junk")); len(got) != 0 {
		t.Fatal("garbage produced certs")
	}
}

func TestSelfSigned(t *testing.T) {
	rng := detrand.New(14)
	e, err := NewSelfSigned(rng, "standalone.example.com", 27)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cert.NotAfter.Before(StudyEpoch.AddDate(26, 0, 0)) {
		t.Fatal("validity shorter than requested")
	}
	// Self-signed chains never validate against a public store.
	store := NewRootStore("empty")
	if err := (Chain{e.Cert}).Validate(store, "standalone.example.com", StudyEpoch); err == nil {
		t.Fatal("self-signed validated against empty store")
	}
}

func TestRootStoreCloneIsolation(t *testing.T) {
	chain, _, _, root := testChain(t, 15)
	orig := NewRootStore("orig")
	orig.Add(root.Cert)
	clone := orig.Clone("clone")
	extra, _, _, extraRoot := testChain(t, 16)
	clone.Add(extraRoot.Cert)
	if orig.Contains(extra.Root()) {
		t.Fatal("clone mutation leaked into original")
	}
	if !clone.Contains(root.Cert) {
		t.Fatal("clone missing original root")
	}
	if err := chain.Validate(clone, "api.example.com", StudyEpoch); err != nil {
		t.Fatalf("clone lost validation: %v", err)
	}
}

func TestEcosystem(t *testing.T) {
	eco, err := BuildEcosystem(detrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if eco.Mozilla.Len() != len(publicCANames)+1 { // +1 legacy root
		t.Fatalf("Mozilla store has %d roots", eco.Mozilla.Len())
	}
	if eco.OEM.Len() != len(publicCANames)+len(obscureCANames)+1 {
		t.Fatalf("OEM store has %d roots", eco.OEM.Len())
	}
	if eco.IOS.Len() >= eco.AOSP.Len() {
		t.Fatal("expected iOS store slightly smaller than AOSP")
	}

	rng := detrand.New(18)
	chain, leaf, err := eco.IssuePublicChain(rng, "cdn.example.net", pkiLeafOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	if leaf.Key == nil {
		t.Fatal("no leaf key")
	}
	if !eco.IsDefaultPKI(chain, "cdn.example.net") {
		t.Fatal("public chain not classified as default PKI")
	}
	if err := chain.Validate(eco.AOSP, "cdn.example.net", StudyEpoch); err != nil {
		t.Fatalf("public chain fails on AOSP: %v", err)
	}
	if err := chain.Validate(eco.OEM, "cdn.example.net", StudyEpoch); err != nil {
		t.Fatalf("public chain fails on OEM: %v", err)
	}
}

func pkiLeafOpts() LeafOptions { return LeafOptions{} }

func TestCustomPKIClassification(t *testing.T) {
	eco, err := BuildEcosystem(detrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	rng := detrand.New(20)
	root, inter, err := eco.NewCustomPKI(rng, "AcmeBank")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.IssueLeaf(rng, "vault.acmebank.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{leaf.Cert, inter.Cert, root.Cert}
	if eco.IsDefaultPKI(chain, "vault.acmebank.com") {
		t.Fatal("custom PKI classified as default")
	}
}

func TestObscureCAOnlyOnOEM(t *testing.T) {
	eco, err := BuildEcosystem(detrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	rng := detrand.New(22)
	leaf, err := eco.ObscureCAs[0].IssueLeaf(rng, "legacy.example.com", LeafOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{leaf.Cert, eco.ObscureCAs[0].Cert}
	if err := chain.Validate(eco.OEM, "legacy.example.com", StudyEpoch); err != nil {
		t.Fatalf("obscure chain fails on OEM store: %v", err)
	}
	if err := chain.Validate(eco.AOSP, "legacy.example.com", StudyEpoch); err == nil {
		t.Fatal("obscure chain validated on AOSP store")
	}
	if eco.IsDefaultPKI(chain, "legacy.example.com") {
		t.Fatal("obscure chain classified as default PKI")
	}
}

func TestPinKeyCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := detrand.New(seed)
		root, err := NewRootCA(rng, "r", "r", 10)
		if err != nil {
			return false
		}
		p1 := NewPin(root.Cert, SHA256)
		p2 := NewPin(root.Cert, SHA256)
		p2.Hex = true
		return p1.Key() == p2.Key() && p1.String() != p2.String()
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLeafDefaultValidity(t *testing.T) {
	chain, _, _, _ := testChain(t, 23)
	leaf := chain.Leaf()
	if !leaf.NotBefore.Before(StudyEpoch) || !leaf.NotAfter.After(StudyEpoch) {
		t.Fatalf("default validity window [%v, %v] does not contain StudyEpoch", leaf.NotBefore, leaf.NotAfter)
	}
	if leaf.NotAfter.Sub(leaf.NotBefore) > 380*24*time.Hour {
		t.Fatal("default leaf validity implausibly long")
	}
}

func TestRootStoreValidateCached(t *testing.T) {
	chain, _, _, root := testChain(t, 30)
	store := NewRootStore("cache-test")
	store.Add(root.Cert)
	// Repeated validations agree and hit the cache.
	for i := 0; i < 3; i++ {
		if err := store.Validate(chain, "api.example.com", StudyEpoch); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if err := store.Validate(chain, "evil.example.org", StudyEpoch); err == nil {
		t.Fatal("cached path accepted wrong hostname")
	}
	// Negative results are cached per (hostname,time) key, so a different
	// time is a different entry.
	future := StudyEpoch.AddDate(9, 0, 0)
	if err := store.Validate(chain, "api.example.com", future); err == nil {
		t.Fatal("expired chain accepted via cache")
	}
	// Mutating the store must invalidate cached results.
	empty := NewRootStore("empty")
	if err := empty.Validate(chain, "api.example.com", StudyEpoch); err == nil {
		t.Fatal("empty store validated chain")
	}
	empty.Add(root.Cert)
	if err := empty.Validate(chain, "api.example.com", StudyEpoch); err != nil {
		t.Fatalf("stale negative cache survived Add: %v", err)
	}
	if err := store.Validate(nil, "x", StudyEpoch); err != ErrEmptyChain {
		t.Fatalf("empty chain: %v", err)
	}
}

func TestRootStoreValidateConcurrent(t *testing.T) {
	chain, _, _, root := testChain(t, 31)
	store := NewRootStore("conc")
	store.Add(root.Cert)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			done <- store.Validate(chain, "api.example.com", StudyEpoch)
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Clone carries the cached content digest (content-identical stores share
// a digest by Digest's own contract), and mutating the clone re-derives it
// rather than serving the stale value.
func TestCloneInheritsDigest(t *testing.T) {
	_, _, inter, root := testChain(t, 37)
	store := NewRootStore("orig")
	store.Add(root.Cert)
	d := store.Digest()

	cp := store.Clone("copy")
	if cp.Digest() != d {
		t.Fatal("clone of a digested store must share its digest")
	}

	// A clone taken before the original ever computed its digest still
	// answers correctly (it just computes lazily like the original).
	fresh := NewRootStore("fresh")
	fresh.Add(root.Cert)
	if fresh.Clone("fresh-copy").Digest() != d {
		t.Fatal("clone of an undigested store computed a different digest")
	}

	// Mutation invalidates: the mutated clone must not keep the inherited
	// digest, and the original must be unaffected.
	cp.Add(inter.Cert)
	if cp.Digest() == d {
		t.Fatal("mutated clone served the stale inherited digest")
	}
	if store.Digest() != d {
		t.Fatal("mutating a clone changed the original's digest")
	}
}

// FuzzParsePin: arbitrary strings must never panic, and anything accepted
// must round-trip canonically.
func FuzzParsePin(f *testing.F) {
	f.Add("sha256/r/mIkG3eEpVdm+u/ko/cwxzOMo1bk4TyHIlByibiA5E=")
	f.Add("sha1/2jmj7l5rSw0yVb/vlWAYkK/YBwk=")
	f.Add("sha256/abcdef")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePin(s)
		if err != nil {
			return
		}
		back, err := ParsePin(p.String())
		if err != nil {
			t.Fatalf("canonical form %q unparseable: %v", p.String(), err)
		}
		if back.Key() != p.Key() {
			t.Fatal("round trip changed pin identity")
		}
	})
}
