package core

// aux.go holds the supporting experiments: the sleep-time sweep of §4.2.1,
// the prior-work comparison context of Table 2, and the methodology
// ablations called out in DESIGN.md.

import (
	"sort"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/pki"
	"pinscope/internal/stats"
	"pinscope/internal/uiauto"
	"pinscope/internal/worldgen"
)

func newProxy(rng *detrand.Source) (*mitmproxy.Proxy, error) {
	return mitmproxy.NewWithCA(rng)
}

// SweepPoint is one sleep-window measurement.
type SweepPoint struct {
	Window        float64
	AppsSampled   int
	AvgHandshakes float64
}

// SleepSweep reruns a random sample of apps at several capture windows and
// reports the average number of TLS handshakes observed — the experiment
// the paper used to settle on 30 s (measuring 20.78/23.5/24.62 at
// 15/30/60 s).
func SleepSweep(w *worldgen.World, seed int64, windows []float64, sample int) ([]SweepPoint, error) {
	rng := detrand.New(seed).Child("sweep")
	var apps []*appmodel.App
	for _, ds := range w.DS.All() {
		apps = append(apps, w.Apps(ds)...)
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Platform != apps[j].Platform {
			return apps[i].Platform < apps[j].Platform
		}
		return apps[i].ID < apps[j].ID
	})
	picked := detrand.Sample(rng, apps, sample)

	stores := map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM,
		appmodel.IOS:     w.Eco.IOS,
	}
	var out []SweepPoint
	for _, win := range windows {
		net := w.NewNetwork(true)
		devs := map[appmodel.Platform]*device.Device{}
		for _, plat := range appmodel.Platforms {
			devs[plat] = device.New(plat, net, stores[plat],
				detrand.New(seed).Child("sweepdev/"+string(plat)))
		}
		total := 0
		for _, a := range picked {
			cap := devs[a.Platform].Run(a, device.RunOptions{Window: win})
			// Count completed TLS handshakes: flows with a ServerHello.
			for _, f := range cap.Flows() {
				if f.NegotiatedVersion() != 0 {
					total++
				}
			}
		}
		out = append(out, SweepPoint{
			Window: win, AppsSampled: len(picked),
			AvgHandshakes: float64(total) / float64(len(picked)),
		})
	}
	return out, nil
}

// Table2Row is one prior-work context row. Literature rows carry the
// numbers reported by the original studies; the final rows are measured on
// our datasets with the corresponding technique, enabling the comparison
// the paper makes in §5 ("Pinning by Technique").
type Table2Row struct {
	Study      string
	Year       int
	Prevalence float64 // percent
	Analysis   string
	Dataset    string
	Measured   bool // true for rows computed on our data
}

// LiteratureTable2 returns the prior-study numbers quoted in Table 2.
func LiteratureTable2() []Table2Row {
	return []Table2Row{
		{"Fahl et al.", 2012, 10, "Dynamic", "20 high-profile Android apps", false},
		{"Oltrogge et al.", 2015, 0.07, "Static", "639,283 Play Store apps", false},
		{"Razaghpanah et al.", 2017, 2, "Dynamic", "7,258 Android apps in the wild", false},
		{"Stone et al.", 2017, 28, "Dynamic", "135 security-sensitive apps", false},
		{"Possemato et al.", 2020, 0.62, "Static", "16,332 Android apps using NSCs", false},
		{"Oltrogge et al.", 2021, 0.67, "Static", "99,212 Android apps using NSCs", false},
	}
}

// Table2 combines the literature rows with the NSC-only technique measured
// on our Android datasets (the directly comparable cells of Table 3).
func (s *Study) Table2() []Table2Row {
	rows := LiteratureTable2()
	for _, cell := range s.Table3() {
		if cell.NSCPins < 0 {
			continue
		}
		rows = append(rows, Table2Row{
			Study:      "this work (NSC-only technique)",
			Year:       2022,
			Prevalence: stats.Percent(cell.NSCPins, cell.N),
			Analysis:   "Static",
			Dataset:    cell.Cell.Dataset + " Android (n=" + itoa(cell.N) + ")",
			Measured:   true,
		})
	}
	return rows
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// DetectorQuality scores the dynamic pipeline against generator ground
// truth. This is simulation-validation machinery, not a paper experiment:
// the paper had no ground truth (that is why it calls dynamic analysis
// "the ground truth" for static), whereas the simulation can audit its own
// detector. The claim the numbers back: verdicts are sound (no false
// positives) and misses are rare and explainable (pinned connections that
// never fired inside the capture window, or iOS associated-domain
// exclusions outside the Common re-run).
type DetectorQuality struct {
	Apps           int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
}

// Quality computes the detector's app-level confusion counts.
func (s *Study) Quality() DetectorQuality {
	var q DetectorQuality
	for _, r := range s.results {
		q.Apps++
		truth := r.App.Truth.PinsAtRuntime
		got := r.Pinned()
		switch {
		case got && truth:
			q.TruePositives++
		case got && !truth:
			q.FalsePositives++
		case !got && truth:
			q.FalseNegatives++
		}
	}
	if q.TruePositives+q.FalsePositives > 0 {
		q.Precision = float64(q.TruePositives) / float64(q.TruePositives+q.FalsePositives)
	}
	if q.TruePositives+q.FalseNegatives > 0 {
		q.Recall = float64(q.TruePositives) / float64(q.TruePositives+q.FalseNegatives)
	}
	return q
}

// InteractionExperiment reproduces the §4.2.1 app-interaction check: does
// random UI input (monkey events) change the set of domains contacted? The
// paper found no significant change and dropped interactions; the same
// conclusion should fall out here.
func (s *Study) InteractionExperiment(sample int) uiauto.CompareResult {
	rng := detrand.New(s.Cfg.Params.Seed).Child("interact")
	var apps []*appmodel.App
	for _, ds := range s.World.DS.All() {
		apps = append(apps, s.World.Apps(ds)...)
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Platform != apps[j].Platform {
			return apps[i].Platform < apps[j].Platform
		}
		return apps[i].ID < apps[j].ID
	})
	picked := detrand.Sample(rng, apps, sample)
	return uiauto.CompareDomains(picked, s.Cfg.Params.Seed)
}

// MisconfigStats aggregates Network Security Configuration findings — the
// Possemato-style misconfiguration analysis the paper cites (§2.2).
type MisconfigStats struct {
	AndroidApps   int
	NSCApps       int // apps shipping any NSC
	NSCPinApps    int // apps with an NSC pin-set
	Misconfigured int // apps with at least one misconfiguration
	Examples      []string
}

// Misconfigs scans static reports for NSC misconfigurations.
func (s *Study) Misconfigs() MisconfigStats {
	var out MisconfigStats
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := s.results[k]
		if r.App.Platform != appmodel.Android || r.Static == nil {
			continue
		}
		out.AndroidApps++
		if r.Static.NSC == nil {
			continue
		}
		out.NSCApps++
		if r.Static.NSCHasPins {
			out.NSCPinApps++
		}
		if len(r.Static.Misconfigs) > 0 {
			out.Misconfigured++
			if len(out.Examples) < 5 {
				out.Examples = append(out.Examples,
					r.App.ID+": "+r.Static.Misconfigs[0])
			}
		}
	}
	return out
}

// AblationResult quantifies one methodology ablation over a sample of apps.
type AblationResult struct {
	Name string
	// Apps examined and how many verdicts changed relative to the full
	// methodology (split into spurious and missed pinning apps).
	Apps           int
	FalsePositives int
	Missed         int
}

// RunAblations reruns a sample of apps under the degraded detector
// variants: naive (non-differential), no iOS background exclusion, and
// legacy (no TLS 1.3 heuristic). Ground truth comes from the generator, so
// "false positive" and "missed" are exact.
func RunAblations(w *worldgen.World, seed int64, sample int) ([]AblationResult, error) {
	rng := detrand.New(seed).Child("ablate")
	var apps []*appmodel.App
	for _, ds := range w.DS.All() {
		apps = append(apps, w.Apps(ds)...)
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Platform != apps[j].Platform {
			return apps[i].Platform < apps[j].Platform
		}
		return apps[i].ID < apps[j].ID
	})
	picked := detrand.Sample(rng, apps, sample)

	stores := map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM,
		appmodel.IOS:     w.Eco.IOS,
	}
	results := map[string]*AblationResult{}
	for _, name := range []string{"naive-detector", "no-background-exclusion", "no-tls13-heuristic"} {
		results[name] = &AblationResult{Name: name}
	}

	proxyRng := detrand.New(seed).Child("ablate-proxy")
	for _, a := range picked {
		plat := a.Platform
		netPlain := w.NewNetwork(true)
		netMITM := w.NewNetwork(true)
		proxy, err := newProxy(proxyRng)
		if err != nil {
			return nil, err
		}
		netMITM.SetInterceptor(proxy)
		devRng := func() *detrand.Source { return detrand.New(seed).Child("abl-dev/" + string(plat)) }
		dPlain := device.New(plat, netPlain, stores[plat], devRng())
		dMITM := device.New(plat, netMITM, stores[plat], devRng())
		dMITM.InstallCA(proxy.CACert())

		capA := dPlain.Run(a, device.RunOptions{})
		capB := dMITM.Run(a, device.RunOptions{})

		opts := dynamicanalysis.Options{}
		if plat == appmodel.IOS {
			opts.ExcludeDomains = append(opts.ExcludeDomains, device.AppleBackgroundDomains...)
			opts.ExcludeDomains = append(opts.ExcludeDomains, a.AssociatedDomains...)
		}
		truth := a.Truth.PinsAtRuntime

		score := func(name string, got bool) {
			r := results[name]
			r.Apps++
			if got && !truth {
				r.FalsePositives++
			}
			if !got && truth {
				r.Missed++
			}
		}
		score("naive-detector", dynamicanalysis.DetectNaive(a.ID, capB, opts).Pins())
		score("no-background-exclusion",
			dynamicanalysis.Detect(a.ID, capA, capB, dynamicanalysis.Options{}).Pins())
		score("no-tls13-heuristic",
			dynamicanalysis.DetectWith(a.ID, capA, capB, opts, dynamicanalysis.ClassifyFlowLegacy).Pins())
	}
	return []AblationResult{
		*results["naive-detector"],
		*results["no-background-exclusion"],
		*results["no-tls13-heuristic"],
	}, nil
}
