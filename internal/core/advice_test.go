package core

import (
	"testing"

	"pinscope/internal/appmodel"
)

func TestAdviceForPinningApps(t *testing.T) {
	s := expShared(t)
	advised := 0
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			if !r.Pinned() {
				continue
			}
			recs := s.Advice(r)
			if len(recs) == 0 {
				t.Fatalf("no advice for pinning app %s", r.App.ID)
			}
			advised++
			for _, rec := range recs {
				if rec.Host == "" {
					t.Fatal("empty host in recommendation")
				}
				if rec.Pin && len(rec.Rationale) == 0 {
					t.Fatalf("pin recommended without rationale: %+v", rec)
				}
			}
			if advised > 20 {
				return
			}
		}
	}
	if advised == 0 {
		t.Fatal("no pinning apps advised")
	}
}

func TestAdviceByID(t *testing.T) {
	s := expShared(t)
	var app *AppResult
	for _, r := range s.results {
		app = r
		break
	}
	recs, err := s.AdviceByID(app.App.Platform, app.App.ID)
	if err != nil || len(recs) == 0 {
		t.Fatalf("AdviceByID: %v (%d recs)", err, len(recs))
	}
	if _, err := s.AdviceByID(appmodel.Android, "com.does.not.exist"); err == nil {
		t.Fatal("unknown app resolved")
	}
}

func TestAdviceCrossPlatformWarningsForInconsistentPairs(t *testing.T) {
	// Common pairs with inconsistent pinning must surface cross-platform
	// warnings for at least one destination.
	s := expShared(t)
	checked := 0
	for _, p := range s.Pairs {
		if p.Analysis.Class.String() != "inconsistent" {
			continue
		}
		checked++
		warned := false
		for _, side := range []*AppResult{p.Android, p.IOS} {
			for _, rec := range s.Advice(side) {
				for _, w := range rec.Warnings {
					if contains(w, "other platform") {
						warned = true
					}
				}
			}
		}
		if !warned {
			t.Fatalf("inconsistent pair %s produced no cross-platform warning", p.Name)
		}
	}
	if checked == 0 {
		t.Skip("no inconsistent pairs in this seed")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
