package core

import (
	"testing"

	"pinscope/internal/appmodel"
)

func runMini(t *testing.T, seed int64) *Study {
	t.Helper()
	s, err := Run(TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyEndToEnd(t *testing.T) {
	s := runMini(t, 1)

	// Every dataset listing has a result.
	for _, ds := range s.World.DS.All() {
		for _, l := range ds.Listings {
			if s.ResultForListing(l) == nil {
				t.Fatalf("no result for %s/%s", l.Platform, l.ID)
			}
		}
	}

	// Detector quality vs ground truth: dynamic detection must recover
	// runtime pinning with high precision and recall. Recall losses come
	// only from pinned connections that went unused in the baseline run
	// (the paper's partial-observation limitation).
	var tp, fp, fn int
	seen := map[string]bool{}
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			key := string(r.App.Platform) + "/" + r.App.ID
			if seen[key] {
				continue
			}
			seen[key] = true
			truth := r.App.Truth.PinsAtRuntime
			got := r.Pinned()
			switch {
			case got && truth:
				tp++
			case got && !truth:
				fp++
			case !got && truth:
				fn++
			}
		}
	}
	if tp == 0 {
		t.Fatal("detector found no pinning at all")
	}
	if fp > 0 {
		t.Fatalf("false positives: %d (differential design must not produce these)", fp)
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.7 {
		t.Fatalf("recall %.2f too low (tp=%d fn=%d)", recall, tp, fn)
	}
	t.Logf("detector: tp=%d fp=%d fn=%d recall=%.2f", tp, fp, fn, recall)
}

func TestPinnedDestsAreTrulyPinned(t *testing.T) {
	s := runMini(t, 2)
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			truthPinned := r.App.PinnedHostSet()
			for _, d := range r.Dyn.PinnedDests() {
				if !truthPinned[d] {
					t.Fatalf("app %s: destination %s detected pinned but is not", r.App.ID, d)
				}
			}
		}
	}
}

func TestStaticResultsPresent(t *testing.T) {
	s := runMini(t, 3)
	static, total := 0, 0
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			total++
			if r.StaticErr != nil {
				t.Fatalf("static analysis failed for %s: %v", r.App.ID, r.StaticErr)
			}
			if r.Static.HasCertMaterial() {
				static++
			}
		}
	}
	if static == 0 {
		t.Fatal("static pipeline found nothing")
	}
	t.Logf("static material in %d/%d results", static, total)
}

func TestPairsBuilt(t *testing.T) {
	s := runMini(t, 4)
	if len(s.Pairs) != len(s.World.CommonPairs) {
		t.Fatalf("%d pairs, want %d", len(s.Pairs), len(s.World.CommonPairs))
	}
	outcomes := map[string]int{}
	for _, p := range s.Pairs {
		outcomes[p.Analysis.Outcome.String()]++
	}
	if outcomes["neither"] == 0 {
		t.Fatalf("pair outcomes implausible: %v", outcomes)
	}
	t.Logf("pair outcomes: %v", outcomes)
}

func TestProbesClassifyPKI(t *testing.T) {
	s := runMini(t, 5)
	if len(s.Probes) == 0 {
		t.Fatal("no pinned destinations probed")
	}
	def, custom, selfs, unavail := 0, 0, 0, 0
	for _, p := range s.Probes {
		switch {
		case p.DefaultPKI:
			def++
		case p.SelfSigned:
			selfs++
		case p.CustomPKI:
			custom++
		case p.Unavailable:
			unavail++
		}
	}
	if def == 0 {
		t.Fatal("no default-PKI pinned destinations")
	}
	// Default PKI must dominate (Table 6).
	if def < (custom+selfs)*3 {
		t.Fatalf("default PKI (%d) does not dominate custom (%d) + self-signed (%d)", def, custom, selfs)
	}
	t.Logf("probes: default=%d custom=%d self=%d unavailable=%d", def, custom, selfs, unavail)
}

func TestCircumventionAndPII(t *testing.T) {
	s := runMini(t, 6)
	circOK, circFail, piiDests := 0, 0, 0
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			if !r.Pinned() {
				continue
			}
			for _, ok := range r.CircumventedDests {
				if ok {
					circOK++
				} else {
					circFail++
				}
			}
			piiDests += len(r.DestPII)
		}
	}
	if circOK == 0 {
		t.Fatal("no pinned destination was circumvented")
	}
	if circFail == 0 {
		t.Fatal("every pinned destination was circumvented — custom stacks should resist")
	}
	if piiDests == 0 {
		t.Fatal("no PII observed in hooked runs")
	}
	t.Logf("circumvented=%d resisted=%d piiDests=%d", circOK, circFail, piiDests)
}

func TestIOSBackgroundNotMisdetected(t *testing.T) {
	// No Apple service domain may ever appear as a pinned destination.
	s := runMini(t, 7)
	for _, ds := range s.World.DS.All() {
		for _, r := range s.DatasetResults(ds) {
			for _, d := range r.Dyn.PinnedDests() {
				for _, apple := range []string{"icloud.com", "apple.com", "mzstatic.com"} {
					if d == apple {
						t.Fatalf("app %s: OS domain %s detected as pinned", r.App.ID, d)
					}
				}
			}
			_ = r
		}
	}
	_ = appmodel.IOS
}
