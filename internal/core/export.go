package core

// export.go serializes a study into the shareable dataset the paper
// releases alongside its code (github.com/NEU-SNS/app-tls-pinning): per-app
// detection verdicts, pinned destinations with their infrastructure
// classification, and the study metadata needed to reproduce the run.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"pinscope/internal/atomicio"
	"pinscope/internal/pii"
)

// Dataset load failures fall into two operationally distinct classes:
// corruption (truncated file, checksum mismatch, undecodable JSON, no apps)
// means the artifact is damaged and should be re-exported, while a version
// mismatch means the reader is older than the writer and needs an upgrade.
// Consumers (pinserve reload, pinscoped) classify via errors.Is.
var (
	// ErrDatasetCorrupt marks a truncated or corrupt snapshot.
	ErrDatasetCorrupt = errors.New("truncated or corrupt snapshot")
	// ErrDatasetVersion marks a snapshot written by a newer format version.
	ErrDatasetVersion = errors.New("snapshot version mismatch")
)

// DatasetVersion is the current export format version. WriteJSON stamps it;
// ReadJSON accepts any version up to it. Exports written before the field
// existed decode as version 0 and stay loadable.
const DatasetVersion = 1

// ExportedDataset is the JSON shape of a released study.
type ExportedDataset struct {
	// Version is the export format version (see DatasetVersion).
	Version int `json:"version"`

	// Meta reproduces the run: the seed and sizes regenerate the world.
	Meta struct {
		Seed        int64   `json:"seed"`
		CommonSize  int     `json:"common_size"`
		PopularSize int     `json:"popular_size"`
		RandomSize  int     `json:"random_size"`
		Window      float64 `json:"capture_window_s"`
	} `json:"meta"`

	Apps         []ExportedApp   `json:"apps"`
	Destinations []ExportedProbe `json:"pinned_destinations"`
}

// ExportedApp is one app's verdicts.
type ExportedApp struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	Developer string   `json:"developer"`
	Platform  string   `json:"platform"`
	Category  string   `json:"category"`
	Datasets  []string `json:"datasets"`

	PinsDynamic    bool     `json:"pins_dynamic"`
	PinnedDomains  []string `json:"pinned_domains,omitempty"`
	StaticMaterial bool     `json:"static_cert_material"`
	NSCPinSet      bool     `json:"nsc_pin_set"`
	StaticCerts    int      `json:"static_certs"`
	StaticPins     int      `json:"static_pins"`
	// PinSPKIHashes are the canonical keys ("sha256:<hex>") of the distinct
	// pins found in the package — the reverse-lookup handle a pinning
	// intelligence service needs to answer "who ships this pin".
	PinSPKIHashes []string `json:"pin_spki_hashes,omitempty"`

	WeakCipherAny    bool `json:"weak_cipher_any_conn"`
	WeakCipherPinned bool `json:"weak_cipher_pinned_conn"`

	CircumventedDomains []string `json:"circumvented_domains,omitempty"`
	PIIKindsObserved    []string `json:"pii_kinds_observed,omitempty"`
}

// ExportedProbe is one pinned destination's classification (Table 6 data).
type ExportedProbe struct {
	Host        string `json:"host"`
	DefaultPKI  bool   `json:"default_pki"`
	CustomPKI   bool   `json:"custom_pki"`
	SelfSigned  bool   `json:"self_signed"`
	Unavailable bool   `json:"unavailable"`
	LeafCN      string `json:"leaf_cn,omitempty"`
	ChainLen    int    `json:"chain_len,omitempty"`
}

// Export builds the dataset structure.
func (s *Study) Export() *ExportedDataset {
	out := &ExportedDataset{Version: DatasetVersion}
	out.Meta.Seed = s.Cfg.Params.Seed
	out.Meta.CommonSize = s.Cfg.Params.CommonSize
	out.Meta.PopularSize = s.Cfg.Params.PopularSize
	out.Meta.RandomSize = s.Cfg.Params.RandomSize
	out.Meta.Window = s.Cfg.Window

	// Dataset membership per app.
	membership := map[string][]string{}
	for _, e := range s.datasetList() {
		for _, l := range e.DS.Listings {
			key := string(l.Platform) + "/" + l.ID
			membership[key] = append(membership[key], e.Cell.Dataset)
		}
	}

	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := s.results[k]
		ea := ExportedApp{
			ID:        r.App.ID,
			Name:      r.App.Name,
			Developer: r.App.Developer,
			Platform:  string(r.App.Platform),
			Category:  r.App.Category,
			Datasets:  membership[k],

			PinsDynamic:      r.Pinned(),
			PinnedDomains:    r.Dyn.PinnedDests(),
			WeakCipherAny:    r.WeakAnyConn,
			WeakCipherPinned: r.WeakPinnedConn,
		}
		if r.Static != nil {
			ea.StaticMaterial = r.Static.HasCertMaterial()
			ea.NSCPinSet = r.Static.NSCHasPins
			ea.StaticCerts = len(r.Static.Certs)
			ea.StaticPins = len(r.Static.Pins)
			for _, p := range r.Static.UniquePins() {
				ea.PinSPKIHashes = append(ea.PinSPKIHashes, p.Key())
			}
			sort.Strings(ea.PinSPKIHashes)
		}
		for d, ok := range r.CircumventedDests {
			if ok {
				ea.CircumventedDomains = append(ea.CircumventedDomains, d)
			}
		}
		sort.Strings(ea.CircumventedDomains)
		kinds := map[pii.Kind]bool{}
		for _, m := range r.DestPII {
			for kind := range m {
				kinds[kind] = true
			}
		}
		for _, kind := range pii.AllKinds {
			if kinds[kind] {
				ea.PIIKindsObserved = append(ea.PIIKindsObserved, string(kind))
			}
		}
		out.Apps = append(out.Apps, ea)
	}

	dests := make([]string, 0, len(s.Probes))
	for d := range s.Probes {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, d := range dests {
		p := s.Probes[d]
		ep := ExportedProbe{
			Host:       p.Dest,
			DefaultPKI: p.DefaultPKI, CustomPKI: p.CustomPKI,
			SelfSigned: p.SelfSigned, Unavailable: p.Unavailable,
		}
		if p.Chain != nil {
			ep.LeafCN = p.Chain.Leaf().Subject.CommonName
			ep.ChainLen = len(p.Chain)
		}
		out.Destinations = append(out.Destinations, ep)
	}
	return out
}

// WriteJSON writes the dataset as indented JSON.
func (s *Study) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// ReadJSON is the strict inverse of WriteJSON: it rejects unknown fields
// and future format versions, so a snapshot consumer fails loudly on a
// malformed or newer-format file instead of silently serving partial data.
func ReadJSON(r io.Reader) (*ExportedDataset, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ds ExportedDataset
	if err := dec.Decode(&ds); err != nil {
		return nil, fmt.Errorf("core: decode dataset: %w: %w", ErrDatasetCorrupt, err)
	}
	if ds.Version > DatasetVersion {
		return nil, fmt.Errorf("core: %w: dataset format version %d is newer than supported %d",
			ErrDatasetVersion, ds.Version, DatasetVersion)
	}
	if len(ds.Apps) == 0 {
		return nil, fmt.Errorf("core: %w: dataset contains no apps", ErrDatasetCorrupt)
	}
	return &ds, nil
}

// LoadDataset parses a previously exported dataset.
func LoadDataset(r io.Reader) (*ExportedDataset, error) {
	return ReadJSON(r)
}

// LoadExportedDataset reads one exported snapshot file. A `.crc` sidecar
// (written by atomicio.WithChecksum, as `pinstudy -export` does) is
// verified first, so bit rot surfaces as ErrDatasetCorrupt before any byte
// is parsed; snapshots without a sidecar load as before.
func LoadExportedDataset(path string) (*ExportedDataset, error) {
	if _, err := atomicio.VerifyFile(path); err != nil {
		return nil, fmt.Errorf("%s: %w: %w", path, ErrDatasetCorrupt, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ds, nil
}
