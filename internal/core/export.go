package core

// export.go serializes a study into the shareable dataset the paper
// releases alongside its code (github.com/NEU-SNS/app-tls-pinning): per-app
// detection verdicts, pinned destinations with their infrastructure
// classification, and the study metadata needed to reproduce the run.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"pinscope/internal/atomicio"
	"pinscope/internal/pii"
	"pinscope/internal/rootprogram"
	"pinscope/internal/worldgen"
)

// Dataset load failures fall into two operationally distinct classes:
// corruption (truncated file, checksum mismatch, undecodable JSON, no apps)
// means the artifact is damaged and should be re-exported, while a version
// mismatch means the reader is older than the writer and needs an upgrade.
// Consumers (pinserve reload, pinscoped) classify via errors.Is.
var (
	// ErrDatasetCorrupt marks a truncated or corrupt snapshot.
	ErrDatasetCorrupt = errors.New("truncated or corrupt snapshot")
	// ErrDatasetVersion marks a snapshot written by a newer format version.
	ErrDatasetVersion = errors.New("snapshot version mismatch")
)

// DatasetVersion is the current export format version. WriteJSON stamps it;
// ReadJSON accepts any version up to it. Exports written before the field
// existed decode as version 0 and stay loadable. Version 2 added the
// root-program time axis: meta/app release tags and per-probe root
// fingerprints (all omitempty, so version-1 snapshots still load).
const DatasetVersion = 2

// DatasetMeta reproduces the run: the seed and sizes regenerate the world.
type DatasetMeta struct {
	Seed        int64   `json:"seed"`
	CommonSize  int     `json:"common_size"`
	PopularSize int     `json:"popular_size"`
	RandomSize  int     `json:"random_size"`
	Window      float64 `json:"capture_window_s"`
	// Release is the root-program timeline point the run measured "as of"
	// (empty for snapshot runs). pinserve treats it as the snapshot's
	// lineage tag.
	Release string `json:"release,omitempty"`
}

// ExportedDataset is the JSON shape of a released study.
type ExportedDataset struct {
	// Version is the export format version (see DatasetVersion).
	Version int `json:"version"`

	Meta DatasetMeta `json:"meta"`

	Apps         []ExportedApp   `json:"apps"`
	Destinations []ExportedProbe `json:"pinned_destinations"`
}

// exportMeta derives the export metadata from a run configuration.
func exportMeta(cfg Config) DatasetMeta {
	return DatasetMeta{
		Seed:        cfg.Params.Seed,
		CommonSize:  cfg.Params.CommonSize,
		PopularSize: cfg.Params.PopularSize,
		RandomSize:  cfg.Params.RandomSize,
		Window:      cfg.Window,
		Release:     cfg.Release,
	}
}

// ExportedApp is one app's verdicts.
type ExportedApp struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	Developer string   `json:"developer"`
	Platform  string   `json:"platform"`
	Category  string   `json:"category"`
	Datasets  []string `json:"datasets"`
	// Release is the root-program release the app shipped against.
	Release string `json:"release,omitempty"`

	PinsDynamic    bool     `json:"pins_dynamic"`
	PinnedDomains  []string `json:"pinned_domains,omitempty"`
	StaticMaterial bool     `json:"static_cert_material"`
	NSCPinSet      bool     `json:"nsc_pin_set"`
	StaticCerts    int      `json:"static_certs"`
	StaticPins     int      `json:"static_pins"`
	// PinSPKIHashes are the canonical keys ("sha256:<hex>") of the distinct
	// pins found in the package — the reverse-lookup handle a pinning
	// intelligence service needs to answer "who ships this pin".
	PinSPKIHashes []string `json:"pin_spki_hashes,omitempty"`

	WeakCipherAny    bool `json:"weak_cipher_any_conn"`
	WeakCipherPinned bool `json:"weak_cipher_pinned_conn"`

	CircumventedDomains []string `json:"circumvented_domains,omitempty"`
	PIIKindsObserved    []string `json:"pii_kinds_observed,omitempty"`
}

// ExportedProbe is one pinned destination's classification (Table 6 data).
type ExportedProbe struct {
	Host        string `json:"host"`
	DefaultPKI  bool   `json:"default_pki"`
	CustomPKI   bool   `json:"custom_pki"`
	SelfSigned  bool   `json:"self_signed"`
	Unavailable bool   `json:"unavailable"`
	LeafCN      string `json:"leaf_cn,omitempty"`
	ChainLen    int    `json:"chain_len,omitempty"`
	// RootFP is the SPKI SHA-256 fingerprint of the chain's trust anchor
	// (rootprogram.Fingerprint) — the join key for distrust-impact
	// queries: distrusting root X breaks the destinations whose RootFP
	// matches. SPKI-based, so it is stable across same-seed rebuilds.
	RootFP string `json:"root_fp,omitempty"`
}

// datasetMembership indexes dataset membership by result key. It is an
// index over listings, not results: small enough to hold in memory even
// when the results themselves are streamed.
func datasetMembership(w *worldgen.World) map[string][]string {
	membership := map[string][]string{}
	for _, e := range datasetList(w) {
		for _, l := range e.DS.Listings {
			key := string(l.Platform) + "/" + l.ID
			membership[key] = append(membership[key], e.Cell.Dataset)
		}
	}
	return membership
}

// exportApp renders one result as its export record. datasets is the
// app's dataset membership (from datasetMembership).
func exportApp(r *AppResult, datasets []string) ExportedApp {
	ea := ExportedApp{
		ID:        r.App.ID,
		Name:      r.App.Name,
		Developer: r.App.Developer,
		Platform:  string(r.App.Platform),
		Category:  r.App.Category,
		Datasets:  datasets,
		Release:   r.App.Release,

		PinsDynamic:      r.Pinned(),
		PinnedDomains:    r.Dyn.PinnedDests(),
		WeakCipherAny:    r.WeakAnyConn,
		WeakCipherPinned: r.WeakPinnedConn,
	}
	if r.Static != nil {
		ea.StaticMaterial = r.Static.HasCertMaterial()
		ea.NSCPinSet = r.Static.NSCHasPins
		ea.StaticCerts = len(r.Static.Certs)
		ea.StaticPins = len(r.Static.Pins)
		for _, p := range r.Static.UniquePins() {
			ea.PinSPKIHashes = append(ea.PinSPKIHashes, p.Key())
		}
		sort.Strings(ea.PinSPKIHashes)
	}
	for d, ok := range r.CircumventedDests {
		if ok {
			ea.CircumventedDomains = append(ea.CircumventedDomains, d)
		}
	}
	sort.Strings(ea.CircumventedDomains)
	kinds := map[pii.Kind]bool{}
	for _, m := range r.DestPII {
		for kind := range m {
			kinds[kind] = true
		}
	}
	for _, kind := range pii.AllKinds {
		if kinds[kind] {
			ea.PIIKindsObserved = append(ea.PIIKindsObserved, string(kind))
		}
	}
	return ea
}

// exportProbe renders one destination probe as its export record.
func exportProbe(p *DestProbe) ExportedProbe {
	ep := ExportedProbe{
		Host:       p.Dest,
		DefaultPKI: p.DefaultPKI, CustomPKI: p.CustomPKI,
		SelfSigned: p.SelfSigned, Unavailable: p.Unavailable,
	}
	if p.Chain != nil {
		ep.LeafCN = p.Chain.Leaf().Subject.CommonName
		ep.ChainLen = len(p.Chain)
		ep.RootFP = rootprogram.Fingerprint(p.Chain[len(p.Chain)-1])
	}
	return ep
}

// Export builds the dataset structure.
func (s *Study) Export() *ExportedDataset {
	out := &ExportedDataset{Version: DatasetVersion, Meta: exportMeta(s.Cfg)}

	membership := datasetMembership(s.World)
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Apps = append(out.Apps, exportApp(s.results[k], membership[k]))
	}

	dests := make([]string, 0, len(s.Probes))
	for d := range s.Probes {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, d := range dests {
		out.Destinations = append(out.Destinations, exportProbe(s.Probes[d]))
	}
	return out
}

// WriteJSON writes the dataset as indented JSON.
func (s *Study) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// StreamExporter emits an ExportedDataset byte-identically to WriteJSON
// without ever materializing the dataset: the header is written up front,
// each app record is encoded and flushed as it arrives, and the probe
// tail closes the document. The streaming shard merge feeds it one
// journal frame at a time — this is what keeps the merge's peak memory
// bounded by a single record, not the dataset.
//
// The byte-identity contract (asserted by tests against WriteJSON) pins
// the exact framing encoding/json uses: two-space indentation, one
// element per MarshalIndent call with the element's nesting as its
// prefix, null for empty slices, and the encoder's trailing newline.
type StreamExporter struct {
	w    io.Writer
	apps int
	err  error
}

// NewStreamExporter writes the document head (version and meta) and
// leaves the exporter positioned at the apps array.
func NewStreamExporter(w io.Writer, meta DatasetMeta) (*StreamExporter, error) {
	head := struct {
		Version int         `json:"version"`
		Meta    DatasetMeta `json:"meta"`
	}{DatasetVersion, meta}
	b, err := json.MarshalIndent(head, "", "  ")
	if err != nil {
		return nil, err
	}
	// Reopen the marshaled object: drop its closing "\n}" and continue
	// with the apps field where the encoder would have put it.
	b = append(b[:len(b)-2], []byte(",\n  \"apps\": ")...)
	e := &StreamExporter{w: w}
	e.write(b)
	return e, e.err
}

func (e *StreamExporter) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// App appends one app record. Records must arrive in export order (keys
// ascending); the exporter frames them without buffering.
func (e *StreamExporter) App(ea *ExportedApp) error {
	if e.apps == 0 {
		e.write([]byte("[\n    "))
	} else {
		e.write([]byte(",\n    "))
	}
	b, err := json.MarshalIndent(ea, "    ", "  ")
	if err != nil {
		return err
	}
	e.write(b)
	e.apps++
	return e.err
}

// Finish writes the pinned-destination tail and closes the document.
func (e *StreamExporter) Finish(probes []ExportedProbe) error {
	if e.apps == 0 {
		e.write([]byte("null")) // json renders a nil slice as null
	} else {
		e.write([]byte("\n  ]"))
	}
	e.write([]byte(",\n  \"pinned_destinations\": "))
	if len(probes) == 0 {
		e.write([]byte("null"))
	} else {
		e.write([]byte("[\n    "))
		for i := range probes {
			if i > 0 {
				e.write([]byte(",\n    "))
			}
			b, err := json.MarshalIndent(&probes[i], "    ", "  ")
			if err != nil {
				return err
			}
			e.write(b)
		}
		e.write([]byte("\n  ]"))
	}
	e.write([]byte("\n}\n")) // Encode's trailing newline
	return e.err
}

// ReadJSON is the strict inverse of WriteJSON: it rejects unknown fields
// and future format versions, so a snapshot consumer fails loudly on a
// malformed or newer-format file instead of silently serving partial data.
func ReadJSON(r io.Reader) (*ExportedDataset, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ds ExportedDataset
	if err := dec.Decode(&ds); err != nil {
		return nil, fmt.Errorf("core: decode dataset: %w: %w", ErrDatasetCorrupt, err)
	}
	if ds.Version > DatasetVersion {
		return nil, fmt.Errorf("core: %w: dataset format version %d is newer than supported %d",
			ErrDatasetVersion, ds.Version, DatasetVersion)
	}
	if len(ds.Apps) == 0 {
		return nil, fmt.Errorf("core: %w: dataset contains no apps", ErrDatasetCorrupt)
	}
	return &ds, nil
}

// LoadDataset parses a previously exported dataset.
func LoadDataset(r io.Reader) (*ExportedDataset, error) {
	return ReadJSON(r)
}

// LoadExportedDataset reads one exported snapshot file. A `.crc` sidecar
// (written by atomicio.WithChecksum, as `pinstudy -export` does) is
// verified first, so bit rot surfaces as ErrDatasetCorrupt before any byte
// is parsed; snapshots without a sidecar load as before.
func LoadExportedDataset(path string) (*ExportedDataset, error) {
	if _, err := atomicio.VerifyFile(path); err != nil {
		return nil, fmt.Errorf("%s: %w: %w", path, ErrDatasetCorrupt, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ds, nil
}
