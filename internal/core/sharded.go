package core

// sharded.go runs the study as a fleet of crash-only shards and merges
// their journals back into the canonical export. The app universe — the
// same deduped work list a single-process run uses, re-sorted into export
// order — is cut into contiguous slices; internal/shardcoord hands the
// slices to workers under crash-tolerant leases, and every worker journals
// its slice through the same WAL the single-process runner uses. Because
// each result frame is a pure function of (run config, app), the slice
// journals' contents are independent of scheduling, takeovers and kills —
// which is what lets MergeShards stitch them into an export byte-identical
// to an unsharded same-seed run, streaming one frame at a time.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
	"pinscope/internal/shardcoord"
	"pinscope/internal/worldgen"
)

// ShardedConfig parameterizes a sharded run of a study Config.
type ShardedConfig struct {
	// Shards is the slice count; Workers (0 = one per shard) the worker
	// pool measuring them.
	Shards  int
	Workers int
	// Dir holds the slice journals (shard-NNN.wal), created if missing.
	// Rerunning over an interrupted run's directory resumes from the
	// journals instead of recomputing.
	Dir string
	// LeaseTTL is the lease duration in logical ticks (0 = default).
	LeaseTTL int64
	// Faults is the deterministic shard-death plan (kills, induced lease
	// expiries). Nil injects nothing.
	Faults *faultinject.ShardPlan
}

// shardMeta is a slice journal's header: the full run configuration plus
// the slice's coordinates. Takeover and merge verify it byte-for-byte, so
// a journal can never be resumed into — or merged with — a different run,
// shard layout, or slice position.
type shardMeta struct {
	Run    journalMeta `json:"run"`
	Slice  int         `json:"slice"`
	Slices int         `json:"slices"`
	Start  int         `json:"start"`
	Count  int         `json:"count"`
}

func shardPath(dir string, slice int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", slice))
}

// shardUniverse is the canonical sharded work order: the study work list
// sorted by result key — the order Export emits apps in. Concatenating
// slice journals in slice order therefore streams apps in final export
// order with no buffering or re-sorting.
func shardUniverse(w *worldgen.World) []workItem {
	uni := studyWork(w)
	sort.Slice(uni, func(i, j int) bool { return uni[i].key() < uni[j].key() })
	return uni
}

// sliceRanges cuts n items into contiguous {start, count} ranges.
func sliceRanges(n, shards int) [][2]int {
	out := make([][2]int, shards)
	start := 0
	for i := range out {
		count := n / shards
		if i < n%shards {
			count++
		}
		out[i] = [2]int{start, count}
		start += count
	}
	return out
}

// shardSlices renders the shardcoord slice list for (cfg, sc, universe).
func shardSlices(cfg Config, sc ShardedConfig, n int) ([]shardcoord.Slice, [][2]int, error) {
	ranges := sliceRanges(n, sc.Shards)
	slices := make([]shardcoord.Slice, 0, sc.Shards)
	for i, rg := range ranges {
		meta, err := json.Marshal(shardMeta{
			Run: metaFor(cfg), Slice: i, Slices: sc.Shards, Start: rg[0], Count: rg[1],
		})
		if err != nil {
			return nil, nil, err
		}
		slices = append(slices, shardcoord.Slice{Path: shardPath(sc.Dir, i), Meta: meta, Items: rg[1]})
	}
	return slices, ranges, nil
}

// shardBench adapts one worker's lab to the coordinator: each worker gets
// its own crypto plane and bench, the in-process stand-in for a separate
// shard machine.
type shardBench struct {
	uni    []workItem
	ranges [][2]int
	lab    *lab
}

func (b *shardBench) RunItem(slice, item int) ([]byte, error) {
	it := b.uni[b.ranges[slice][0]+item]
	res := b.lab.studyAppResilient(it.app, it.common)
	return encodeAppResult(it.key(), res)
}

// RunSharded executes the study as sc.Shards crash-only slices under the
// lease coordinator, leaving one complete journal per slice in sc.Dir.
// It does not build a Study: the deliverable of a sharded run is its
// journals, folded into an export by MergeShards. If the run is killed
// (injected or real), rerunning with the same arguments resumes every
// slice from its journal.
func RunSharded(cfg Config, sc ShardedConfig) (*shardcoord.Stats, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	if sc.Shards <= 0 {
		return nil, errors.New("core: sharded run needs at least one shard")
	}
	if cfg.Journal != nil || cfg.Kill != nil {
		return nil, errors.New("core: sharded runs journal per slice; Config.Journal and Config.Kill must be nil")
	}
	if sc.Dir == "" {
		return nil, errors.New("core: sharded run needs a journal directory")
	}
	if err := os.MkdirAll(sc.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: shard dir: %w", err)
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	uni := shardUniverse(w)
	slices, ranges, err := shardSlices(cfg, sc, len(uni))
	if err != nil {
		return nil, err
	}
	return shardcoord.Run(shardcoord.Config{
		Slices:   slices,
		Workers:  sc.Workers,
		LeaseTTL: sc.LeaseTTL,
		Faults:   sc.Faults,
		NewBench: func(worker int) (shardcoord.Bench, error) {
			var plane *cryptoPlane
			if !cfg.ColdCrypto {
				var perr error
				plane, perr = newCryptoPlane(cfg, w)
				if perr != nil {
					return nil, perr
				}
			}
			lab, lerr := newLab(cfg, w, plane)
			if lerr != nil {
				return nil, lerr
			}
			return &shardBench{uni: uni, ranges: ranges, lab: lab}, nil
		},
	})
}

// MergeShards streams the slice journals of a completed sharded run into
// one exported dataset, byte-identical to WriteJSON of an unsharded
// same-seed run. Peak memory is bounded: one journal frame is decoded,
// exported and discarded at a time, and only two small indexes (dataset
// membership and the pinned-destination set) live across the walk — the
// full dataset never materializes.
func MergeShards(out io.Writer, cfg Config, sc ShardedConfig) error {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	if sc.Shards <= 0 {
		return errors.New("core: merge needs the run's shard count")
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return err
	}
	uni := shardUniverse(w)
	slices, ranges, err := shardSlices(cfg, sc, len(uni))
	if err != nil {
		return err
	}
	membership := datasetMembership(w)
	se, err := NewStreamExporter(out, exportMeta(cfg))
	if err != nil {
		return err
	}
	dests := map[string]bool{}
	for i, rg := range ranges {
		if err := mergeSlice(se, slices[i], rg, uni, membership, dests); err != nil {
			return err
		}
	}
	sorted := make([]string, 0, len(dests))
	for d := range dests {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	probes := probeDests(cfg, w, sorted)
	eps := make([]ExportedProbe, 0, len(sorted))
	for _, d := range sorted {
		eps = append(eps, exportProbe(probes[d]))
	}
	return se.Finish(eps)
}

// mergeSlice folds one slice journal into the stream.
func mergeSlice(se *StreamExporter, sl shardcoord.Slice, rg [2]int,
	uni []workItem, membership map[string][]string, dests map[string]bool) error {
	r, err := journal.OpenReader(sl.Path)
	if err != nil {
		return fmt.Errorf("core: merge slice %s: %w", sl.Path, err)
	}
	defer r.Close()
	if !bytes.Equal(r.Meta(), sl.Meta) {
		return fmt.Errorf("core: merge slice %s: journal belongs to a different run or shard layout", sl.Path)
	}
	for item := 0; ; item++ {
		data, err := r.Next()
		if errors.Is(err, io.EOF) {
			if item != rg[1] {
				return fmt.Errorf("core: merge slice %s: %d of %d results journaled — incomplete run, rerun -shards to finish it",
					sl.Path, item, rg[1])
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: merge slice %s: %w", sl.Path, err)
		}
		if item >= rg[1] {
			return fmt.Errorf("core: merge slice %s: more results than the slice's %d items", sl.Path, rg[1])
		}
		it := uni[rg[0]+item]
		res, err := decodeAppResult(data, it.app) // verifies the record key
		if err != nil {
			return fmt.Errorf("core: merge slice %s item %d: %w", sl.Path, item, err)
		}
		ea := exportApp(res, membership[it.key()])
		if err := se.App(&ea); err != nil {
			return err
		}
		for _, d := range res.Dyn.PinnedDests() {
			dests[d] = true
		}
	}
}
