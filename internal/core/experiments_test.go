package core

import (
	"bytes"
	"sync"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/pii"
)

var (
	expOnce  sync.Once
	expStudy *Study
	expErr   error
)

// expShared builds one study shared by every aggregation-shape test.
func expShared(t *testing.T) *Study {
	t.Helper()
	expOnce.Do(func() {
		expStudy, expErr = Run(TestConfig(777))
	})
	if expErr != nil {
		t.Fatal(expErr)
	}
	return expStudy
}

func TestTable1Shapes(t *testing.T) {
	s := expShared(t)
	rows := s.Table1(10)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total == 0 || len(r.Top) == 0 {
			t.Fatalf("empty row %+v", r.Cell)
		}
		sum := 0
		for _, kv := range r.Top {
			sum += kv.Count
		}
		if sum > r.Total {
			t.Fatalf("top categories exceed total: %+v", r)
		}
	}
}

func TestTable3Invariants(t *testing.T) {
	s := expShared(t)
	for _, c := range s.Table3() {
		if c.Dynamic > c.N || c.StaticEmbedded > c.N {
			t.Fatalf("counts exceed N: %+v", c)
		}
		if c.Cell.Platform == appmodel.IOS && c.NSCPins != -1 {
			t.Fatalf("NSC reported for iOS: %+v", c)
		}
		if c.Cell.Platform == appmodel.Android && c.NSCPins < 0 {
			t.Fatalf("NSC missing for Android: %+v", c)
		}
		// Static potential pinning exceeds dynamic confirmation (§5).
		if c.StaticEmbedded < c.Dynamic/2 {
			t.Fatalf("static implausibly below dynamic: %+v", c)
		}
		if c.NSCPins > 0 && c.NSCPins > c.StaticEmbedded {
			t.Fatalf("NSC-only exceeds full static: %+v", c)
		}
	}
}

func TestCategoryTableInvariants(t *testing.T) {
	s := expShared(t)
	for _, plat := range appmodel.Platforms {
		rows := s.TableCategories(plat, 10, 2)
		prev := 101.0
		for i, r := range rows {
			if r.Pct > prev {
				t.Fatalf("not sorted by pct: %+v", rows)
			}
			prev = r.Pct
			if r.Pinning > r.Apps || r.Pct < 0 || r.Pct > 100 {
				t.Fatalf("bad row %+v", r)
			}
			// At paper scale Games never appears at all; mini-scale noise
			// can push a lone pinning game into the tail, but never the top.
			if r.Category == "Games" && i < 3 {
				t.Fatalf("Games ranked #%d in the pinning-category table", i+1)
			}
		}
	}
}

func TestFigure5TotalsMatchVerdicts(t *testing.T) {
	s := expShared(t)
	for _, plat := range appmodel.Platforms {
		bars := s.Figure5Data(plat)
		stats := s.Figure5Stats(plat)
		if stats.Apps != len(bars) {
			t.Fatalf("stats apps %d vs %d bars", stats.Apps, len(bars))
		}
		fp, tp := 0, 0
		for _, b := range bars {
			fp += b.FPPinned
			tp += b.TPPinned
			if b.FPPinned+b.TPPinned == 0 {
				t.Fatalf("pinning app %s with zero pinned destinations in Figure 5", b.AppID)
			}
		}
		if fp != stats.PinnedDestsFP || tp != stats.PinnedDestsTP {
			t.Fatalf("stats totals mismatch: %d/%d vs %d/%d", fp, tp, stats.PinnedDestsFP, stats.PinnedDestsTP)
		}
		// The paper's core claim: third-party pinned destinations dominate.
		// (Strict dominance holds at paper scale; mini worlds allow a tie.)
		if tp < fp {
			t.Fatalf("%s: third-party pinned (%d) should dominate first-party (%d)", plat, tp, fp)
		}
	}
}

func TestTable6AccountsForAllPinnedDests(t *testing.T) {
	s := expShared(t)
	for _, row := range s.Table6() {
		total := row.DefaultPKI + row.CustomPKI + row.SelfSigned + row.Unavailable
		want := len(s.pinnedDestsByPlatform(row.Platform))
		if total != want {
			t.Fatalf("%s: table 6 accounts for %d of %d pinned destinations",
				row.Platform, total, want)
		}
		if row.DefaultPKI <= row.CustomPKI+row.SelfSigned {
			t.Fatalf("%s: default PKI does not dominate: %+v", row.Platform, row)
		}
	}
}

func TestPinTargetsShape(t *testing.T) {
	s := expShared(t)
	pt := s.PinTargets()
	if pt.PinningApps == 0 {
		t.Fatal("no pinning apps")
	}
	if pt.CACerts+pt.LeafCerts != pt.MatchedCerts {
		t.Fatalf("CA+leaf != matched: %+v", pt)
	}
	if pt.MatchedCerts > 0 && pt.CACerts <= pt.LeafCerts {
		t.Fatalf("CA pins should dominate (§5.3.2): %+v", pt)
	}
	if pt.AppsMatched > pt.PinningApps {
		t.Fatalf("matched apps exceed pinning apps: %+v", pt)
	}
}

func TestRotationsShape(t *testing.T) {
	s := expShared(t)
	rot := s.Rotations()
	if rot.ServedNewLeaf > rot.LeafPinnedDests {
		t.Fatalf("rotated exceeds leaf-pinned: %+v", rot)
	}
	if rot.KeyReused > rot.ServedNewLeaf {
		t.Fatalf("key-reused exceeds rotated: %+v", rot)
	}
	// Every rotation in our world reuses the key (pins keep working), so
	// whenever rotation is observed, key reuse must equal it.
	if rot.ServedNewLeaf != rot.KeyReused {
		t.Fatalf("rotation without key reuse observed: %+v", rot)
	}
}

func TestExpiredAcceptedIsZero(t *testing.T) {
	if n := expShared(t).ExpiredAccepted(); n != 0 {
		t.Fatalf("%d pinned destinations served expired-yet-accepted certs", n)
	}
}

func TestTable7OrderedAndAttributed(t *testing.T) {
	s := expShared(t)
	for _, plat := range appmodel.Platforms {
		fw := s.Table7(plat, 5, 2)
		if len(fw) == 0 {
			t.Fatalf("%s: no frameworks attributed", plat)
		}
		prev := 1 << 30
		for _, f := range fw {
			if f.Apps > prev {
				t.Fatalf("%s: not sorted: %+v", plat, fw)
			}
			prev = f.Apps
			if f.SDK.Name == "" || !f.SDK.CertCarrier {
				t.Fatalf("%s: attributed non-carrier: %+v", plat, f)
			}
		}
	}
}

func TestTable8Bounds(t *testing.T) {
	s := expShared(t)
	for _, c := range s.Table8() {
		if c.OverallWeak > c.OverallApps || c.PinnedWeak > c.PinningApps {
			t.Fatalf("bounds: %+v", c)
		}
	}
}

func TestTable9Structure(t *testing.T) {
	s := expShared(t)
	rows := s.Table9()
	if len(rows) != 2*len(pii.AllKinds) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PinnedWith > r.PinnedTotal || r.NonPinnedWith > r.NonPinnedTotal {
			t.Fatalf("bounds: %+v", r)
		}
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("p-value: %+v", r)
		}
		if r.Significant && r.PValue >= 0.05 {
			t.Fatalf("significance flag wrong: %+v", r)
		}
	}
}

func TestCircumventionBounds(t *testing.T) {
	s := expShared(t)
	for _, c := range s.Circumvention() {
		if c.Circumvented > c.Dests {
			t.Fatalf("bounds: %+v", c)
		}
		if c.Dests > 0 && (c.Pct <= 0 || c.Pct >= 100) {
			t.Fatalf("rate should be partial (some stacks resist): %+v", c)
		}
	}
}

func TestMisconfigsShape(t *testing.T) {
	s := expShared(t)
	m := s.Misconfigs()
	if m.AndroidApps == 0 {
		t.Fatal("no Android apps")
	}
	if m.NSCPinApps > m.NSCApps || m.NSCApps > m.AndroidApps {
		t.Fatalf("NSC accounting: %+v", m)
	}
	if m.Misconfigured > m.NSCApps {
		t.Fatalf("misconfigs exceed NSC apps: %+v", m)
	}
}

func TestInteractionExperimentSmallChange(t *testing.T) {
	s := expShared(t)
	r := s.InteractionExperiment(80)
	if r.Apps != 80 {
		t.Fatalf("apps %d", r.Apps)
	}
	if r.AvgDomainsInteractive < r.AvgDomainsLaunchOnly {
		t.Fatal("interaction reduced domains")
	}
	if r.RelativeChange > 0.15 {
		t.Fatalf("relative change %.3f too large (paper: no significant change)", r.RelativeChange)
	}
}

func TestSleepSweepMonotone(t *testing.T) {
	s := expShared(t)
	points, err := SleepSweep(s.World, 3, []float64{15, 30, 60}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if !(points[0].AvgHandshakes <= points[1].AvgHandshakes &&
		points[1].AvgHandshakes <= points[2].AvgHandshakes) {
		t.Fatalf("handshakes not monotone: %+v", points)
	}
	// Diminishing returns: the 30→60 gain is smaller than 15→30.
	if points[2].AvgHandshakes-points[1].AvgHandshakes >
		points[1].AvgHandshakes-points[0].AvgHandshakes {
		t.Fatalf("no diminishing returns: %+v", points)
	}
}

func TestAblationsDamageTheRightThing(t *testing.T) {
	s := expShared(t)
	rows, err := RunAblations(s.World, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The naive detector, blind to the baseline, must produce false
	// positives (server failures, redundant conns, OS traffic).
	if byName["naive-detector"].FalsePositives == 0 {
		t.Fatal("naive detector produced no false positives")
	}
	// Ignoring the TLS 1.3 disguise must miss pinners (their MITM alerts
	// masquerade as application data).
	if byName["no-tls13-heuristic"].Missed == 0 {
		t.Fatal("legacy classifier missed nobody")
	}
	// The full methodology on the same sample: no false positives.
	for _, r := range rows {
		if r.Apps != 60 {
			t.Fatalf("sample size: %+v", r)
		}
	}
}

func TestTable2IncludesMeasuredRows(t *testing.T) {
	s := expShared(t)
	rows := s.Table2()
	lit, measured := 0, 0
	for _, r := range rows {
		if r.Measured {
			measured++
			if r.Prevalence < 0 || r.Prevalence > 100 {
				t.Fatalf("measured prevalence: %+v", r)
			}
		} else {
			lit++
		}
	}
	if lit != 6 || measured != 3 {
		t.Fatalf("lit=%d measured=%d", lit, measured)
	}
}

func TestDeterministicStudyResults(t *testing.T) {
	// Two studies from the same seed produce identical headline tables.
	if testing.Short() {
		t.Skip("second study build is slow")
	}
	s1 := expShared(t)
	s2, err := Run(TestConfig(777))
	if err != nil {
		t.Fatal(err)
	}
	t3a, t3b := s1.Table3(), s2.Table3()
	for i := range t3a {
		if t3a[i] != t3b[i] {
			t.Fatalf("Table3 differs at %d: %+v vs %+v", i, t3a[i], t3b[i])
		}
	}
	f2a, f2b := s1.Figure2Data(), s2.Figure2Data()
	if f2a != f2b {
		t.Fatalf("Figure2 differs: %+v vs %+v", f2a, f2b)
	}
}

func TestExportRoundTrip(t *testing.T) {
	s := expShared(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Meta.Seed != s.Cfg.Params.Seed {
		t.Fatalf("meta seed %d", ds.Meta.Seed)
	}
	if len(ds.Apps) == 0 || len(ds.Destinations) == 0 {
		t.Fatalf("empty export: %d apps, %d dests", len(ds.Apps), len(ds.Destinations))
	}
	// Export agrees with Table 3 on dynamic pinning counts.
	counts := map[string]int{}
	for _, a := range ds.Apps {
		if a.PinsDynamic {
			for _, dsName := range a.Datasets {
				counts[dsName+"/"+a.Platform]++
			}
		}
		if a.PinsDynamic && len(a.PinnedDomains) == 0 {
			t.Fatalf("app %s pins without domains in export", a.ID)
		}
		if len(a.Datasets) == 0 {
			t.Fatalf("app %s in no dataset", a.ID)
		}
	}
	for _, c := range s.Table3() {
		key := c.Cell.Dataset + "/" + string(c.Cell.Platform)
		if counts[key] != c.Dynamic {
			t.Fatalf("export disagrees with Table 3 at %s: %d vs %d", key, counts[key], c.Dynamic)
		}
	}
	// Destination classifications are mutually exclusive.
	for _, d := range ds.Destinations {
		n := 0
		for _, b := range []bool{d.DefaultPKI, d.CustomPKI, d.SelfSigned, d.Unavailable} {
			if b {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("destination %s has %d classifications", d.Host, n)
		}
	}
}

func TestQualitySoundness(t *testing.T) {
	q := expShared(t).Quality()
	if q.FalsePositives != 0 {
		t.Fatalf("detector produced %d false positives", q.FalsePositives)
	}
	if q.Recall < 0.85 {
		t.Fatalf("recall %.3f below bar (fn=%d)", q.Recall, q.FalseNegatives)
	}
	if q.Precision != 1 {
		t.Fatalf("precision %.3f", q.Precision)
	}
}
