package core

// aggregate.go recomputes the report-layer tables from a released snapshot
// alone — no world, no per-app results. This is the computation a serving
// layer caches at snapshot-load time: the Table 3 prevalence cells, the
// Table 4/5 category leaders and the Table 6 PKI classification, derived
// purely from the exported verdicts the way downstream consumers (and
// cmd/pinreport) see them.

import (
	"sort"

	"pinscope/internal/stats"
)

// SnapshotCell is one dataset/platform prevalence cell recomputed from
// released verdicts (the Table 3 counterpart).
type SnapshotCell struct {
	Dataset        string `json:"dataset"`
	Platform       string `json:"platform"`
	Apps           int    `json:"apps"`
	Dynamic        int    `json:"dynamic"`
	StaticEmbedded int    `json:"static_embedded"`
	// NSCPinSets is -1 on iOS (not applicable).
	NSCPinSets int `json:"nsc_pin_sets"`
}

// SnapshotCategory is one category's pinning rate on a platform (the
// Table 4/5 counterpart).
type SnapshotCategory struct {
	Platform string  `json:"platform"`
	Category string  `json:"category"`
	Apps     int     `json:"apps"`
	Pinning  int     `json:"pinning"`
	Pct      float64 `json:"pct"`
}

// SnapshotPKI classifies the snapshot's pinned destinations (the Table 6
// counterpart; the export does not retain the per-platform split).
type SnapshotPKI struct {
	Destinations int `json:"pinned_destinations"`
	DefaultPKI   int `json:"default_pki"`
	CustomPKI    int `json:"custom_pki"`
	SelfSigned   int `json:"self_signed"`
	Unavailable  int `json:"unavailable"`
}

// SnapshotAggregates bundles every table derivable from a snapshot.
type SnapshotAggregates struct {
	Prevalence []SnapshotCell     `json:"prevalence"`
	Categories []SnapshotCategory `json:"categories"`
	PKI        SnapshotPKI        `json:"pki"`
}

// snapshotCategoryMinApps filters single-app categories that would report
// 100%, mirroring the report layer's noise floor.
const snapshotCategoryMinApps = 2

// Aggregate recomputes the cached tables from the exported verdicts.
func (ds *ExportedDataset) Aggregate() *SnapshotAggregates {
	agg := &SnapshotAggregates{}

	// Prevalence: dataset × platform in report order.
	cells := map[string]*SnapshotCell{}
	for _, a := range ds.Apps {
		for _, d := range a.Datasets {
			key := d + "/" + a.Platform
			c := cells[key]
			if c == nil {
				c = &SnapshotCell{Dataset: d, Platform: a.Platform, NSCPinSets: -1}
				if a.Platform == "android" {
					c.NSCPinSets = 0
				}
				cells[key] = c
			}
			c.Apps++
			if a.PinsDynamic {
				c.Dynamic++
			}
			if a.StaticMaterial {
				c.StaticEmbedded++
			}
			if a.NSCPinSet && c.NSCPinSets >= 0 {
				c.NSCPinSets++
			}
		}
	}
	for _, d := range []string{"Common", "Popular", "Random"} {
		for _, p := range []string{"android", "ios"} {
			if c := cells[d+"/"+p]; c != nil {
				agg.Prevalence = append(agg.Prevalence, *c)
				delete(cells, d+"/"+p)
			}
		}
	}
	// Any non-standard dataset names follow, in sorted order.
	rest := make([]string, 0, len(cells))
	for k := range cells {
		rest = append(rest, k)
	}
	sort.Strings(rest)
	for _, k := range rest {
		agg.Prevalence = append(agg.Prevalence, *cells[k])
	}

	// Categories: unique apps per platform/category, pinning rates.
	type catKey struct{ platform, category string }
	perCat := map[catKey]*SnapshotCategory{}
	for _, a := range ds.Apps {
		k := catKey{a.Platform, a.Category}
		c := perCat[k]
		if c == nil {
			c = &SnapshotCategory{Platform: a.Platform, Category: a.Category}
			perCat[k] = c
		}
		c.Apps++
		if a.PinsDynamic {
			c.Pinning++
		}
	}
	for _, c := range perCat {
		if c.Pinning == 0 || c.Apps < snapshotCategoryMinApps {
			continue
		}
		c.Pct = stats.Percent(c.Pinning, c.Apps)
		agg.Categories = append(agg.Categories, *c)
	}
	sort.Slice(agg.Categories, func(i, j int) bool {
		a, b := agg.Categories[i], agg.Categories[j]
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Pct != b.Pct {
			return a.Pct > b.Pct
		}
		return a.Category < b.Category
	})

	// PKI classification of pinned destinations.
	for _, d := range ds.Destinations {
		agg.PKI.Destinations++
		switch {
		case d.Unavailable:
			agg.PKI.Unavailable++
		case d.DefaultPKI:
			agg.PKI.DefaultPKI++
		case d.SelfSigned:
			agg.PKI.SelfSigned++
		default:
			agg.PKI.CustomPKI++
		}
	}
	return agg
}
