package core

// plane.go builds the study's shared immutable crypto plane: the one copy
// of every cryptographic object the workers previously rebuilt per-lab.
//
//   - one proxy CA (the same detrand derivation every worker's NewWithCA
//     used, so cold and shared runs forge identical leaf identities);
//   - one process-wide content-addressed forged-leaf chain store
//     (pki.ChainStore) that every worker's proxy interns into;
//   - one handshake-outcome memo (device.HandshakeMemo) replaying clean
//     runs' record sequences without re-dialing;
//   - one trust store per (platform, leg): workers share the stores' x509
//     validation caches instead of each warming a private clone.
//
// Sharing is sound because every worker derives the identical proxy CA and
// identical devices from the study seed: the plane only moves where the
// work happens, never what any device observes. Config.ColdCrypto disables
// the plane wholesale, which is both the equivalence test's control and an
// escape hatch for profiling the uncached pipeline.

import (
	"fmt"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/pki"
	"pinscope/internal/worldgen"
)

// sharedForged is the process-wide forged-leaf store every plane adopts.
// Forged leaves are pure functions of (proxy CA key, hostname) — the proxy
// keys the store by CA SPKI — so chains issued for one study are byte-
// equivalent in every observable way for any later study with the same
// seed, and studies with different seeds simply miss. Like the pki
// signature memo it grows with the distinct material seen by the process;
// entries are a few KB each and immutable.
var sharedForged = pki.NewChainStore()

// planeStores is the per-platform trust-store set of the plane.
type planeStores struct {
	plainUser *pki.RootStore // app store, baseline leg
	mitmUser  *pki.RootStore // app store with the proxy CA installed
	system    *pki.RootStore // OS store; never trusts user CAs, shared by both legs
}

// cryptoPlane is the shared immutable crypto plane. All fields are built
// once in RunOnWorld and only read (or internally locked) afterwards.
type cryptoPlane struct {
	proxyCA *pki.Authority
	forged  *pki.ChainStore
	memo    *device.HandshakeMemo
	stores  map[appmodel.Platform]planeStores
}

// newCryptoPlane derives the plane for a study configuration. The proxy CA
// reproduces exactly what each worker's mitmproxy.NewWithCA derived from
// the study seed, so adopting the plane changes no observable bytes.
func newCryptoPlane(cfg Config, w *worldgen.World) (*cryptoPlane, error) {
	proxyRng := detrand.New(cfg.Params.Seed).Child("study-proxy")
	ca, err := pki.NewRootCA(proxyRng.Child("mitm-ca"), "mitmproxy", "mitmproxy", 10)
	if err != nil {
		return nil, fmt.Errorf("core: crypto plane CA: %w", err)
	}
	p := &cryptoPlane{
		proxyCA: ca,
		forged:  sharedForged,
		memo:    device.NewHandshakeMemo(),
		stores:  map[appmodel.Platform]planeStores{},
	}
	base := cfg.baseStores(w)
	for _, plat := range appmodel.Platforms {
		ps := planeStores{
			plainUser: base[plat].Clone(string(plat) + "-user"),
			mitmUser:  base[plat].Clone(string(plat) + "-user"),
			system:    base[plat].Clone(string(plat) + "-system"),
		}
		ps.mitmUser.Add(ca.Cert)
		p.stores[plat] = ps
	}
	return p, nil
}

// forgeRng returns the per-proxy forging rng of the study seed — the same
// stream NewWithCA would hand a cold proxy.
func forgeRng(cfg Config) *detrand.Source {
	return detrand.New(cfg.Params.Seed).Child("study-proxy").Child("mitm-forge")
}
