package core

// export_test.go covers the snapshot format contract: version stamping,
// the strict reader's error surface, the file loader, and the snapshot
// aggregates that the serving layer caches.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pinscope/internal/atomicio"
)

func TestWriteJSONStampsVersion(t *testing.T) {
	s := expShared(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Version != DatasetVersion {
		t.Fatalf("exported version %d, want %d", ds.Version, DatasetVersion)
	}
}

func TestExportCarriesPinHashes(t *testing.T) {
	s := expShared(t)
	ds := s.Export()
	apps, hashes := 0, 0
	for _, a := range ds.Apps {
		if a.StaticPins > 0 {
			apps++
			if len(a.PinSPKIHashes) == 0 {
				t.Fatalf("app %s has %d static pins but no exported hashes", a.ID, a.StaticPins)
			}
		}
		for _, h := range a.PinSPKIHashes {
			hashes++
			if !strings.Contains(h, ":") {
				t.Fatalf("pin hash %q is not in canonical alg:hex form", h)
			}
		}
	}
	if apps == 0 || hashes == 0 {
		t.Fatalf("no pin hashes exported (%d apps with pins)", apps)
	}
}

func TestReadJSONStrict(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"meta":{},"apps":[{"id":"a","platform":"android","bogus_field":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"meta":{},"apps":[{"id":"a","platform":"android"}]}`)); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version accepted: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"meta":{},"apps":[]}`)); err == nil {
		t.Fatal("empty dataset accepted")
	}
	// Legacy exports (no version field) decode as version 0 and load.
	ds, err := ReadJSON(strings.NewReader(`{"meta":{"seed":7},"apps":[{"id":"a","name":"A","developer":"d","platform":"android","category":"Tools","datasets":["Popular"],"pins_dynamic":false,"static_cert_material":false,"nsc_pin_set":false,"static_certs":0,"static_pins":0,"weak_cipher_any_conn":false,"weak_cipher_pinned_conn":false}],"pinned_destinations":[]}`))
	if err != nil {
		t.Fatalf("legacy dataset rejected: %v", err)
	}
	if ds.Version != 0 || ds.Meta.Seed != 7 {
		t.Fatalf("legacy decode: version %d seed %d", ds.Version, ds.Meta.Seed)
	}
}

func TestReadJSONErrorClassification(t *testing.T) {
	// Reload paths branch on the error class, so the sentinels are API.
	if _, err := ReadJSON(strings.NewReader(`{"ver`)); !errors.Is(err, ErrDatasetCorrupt) {
		t.Fatalf("truncated JSON: %v, want ErrDatasetCorrupt", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"meta":{},"apps":[]}`)); !errors.Is(err, ErrDatasetCorrupt) {
		t.Fatalf("empty dataset: %v, want ErrDatasetCorrupt", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"meta":{},"apps":[{"id":"a","platform":"android"}]}`)); !errors.Is(err, ErrDatasetVersion) {
		t.Fatalf("future version: %v, want ErrDatasetVersion", err)
	}
}

func TestLoadExportedDatasetVerifiesSidecar(t *testing.T) {
	s := expShared(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	w, err := atomicio.Create(path, atomicio.WithChecksum())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadExportedDataset(path); err != nil {
		t.Fatalf("checksummed snapshot rejected: %v", err)
	}
	// Flip one byte: the sidecar catches it before the JSON layer runs.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadExportedDataset(path); !errors.Is(err, ErrDatasetCorrupt) {
		t.Fatalf("bit rot under a sidecar: %v, want ErrDatasetCorrupt", err)
	}
}

func TestLoadExportedDatasetFile(t *testing.T) {
	s := expShared(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadExportedDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Apps) == 0 {
		t.Fatal("file round trip lost apps")
	}
	if _, err := LoadExportedDataset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSnapshotAggregatesAgreeWithStudy(t *testing.T) {
	s := expShared(t)
	agg := s.Export().Aggregate()
	if len(agg.Prevalence) == 0 {
		t.Fatal("no prevalence cells")
	}
	// The snapshot's prevalence cells must equal Table 3 computed on the
	// live study.
	want := map[string]Table3Cell{}
	for _, c := range s.Table3() {
		want[c.Cell.Dataset+"/"+string(c.Cell.Platform)] = c
	}
	for _, c := range agg.Prevalence {
		w, ok := want[c.Dataset+"/"+c.Platform]
		if !ok {
			t.Fatalf("unexpected cell %s/%s", c.Dataset, c.Platform)
		}
		if c.Apps != w.N || c.Dynamic != w.Dynamic || c.StaticEmbedded != w.StaticEmbedded || c.NSCPinSets != w.NSCPins {
			t.Fatalf("cell %s/%s: snapshot %+v vs study %+v", c.Dataset, c.Platform, c, w)
		}
	}
	// PKI classification must cover every exported destination exactly once.
	p := agg.PKI
	if p.Destinations != len(s.Export().Destinations) {
		t.Fatalf("PKI covers %d of %d destinations", p.Destinations, len(s.Export().Destinations))
	}
	if p.DefaultPKI+p.CustomPKI+p.SelfSigned+p.Unavailable != p.Destinations {
		t.Fatalf("PKI classes don't partition: %+v", p)
	}
	for _, c := range agg.Categories {
		if c.Pinning == 0 || c.Apps < snapshotCategoryMinApps || c.Pinning > c.Apps {
			t.Fatalf("bad category row %+v", c)
		}
	}
}
