package core

import (
	"fmt"

	"pinscope/internal/advisor"
	"pinscope/internal/appmodel"
	"pinscope/internal/dynamicanalysis"
)

// sensitiveCategories are the store categories whose data the study found
// worth pinning for (Tables 4, 5 concentrate there).
var sensitiveCategories = map[string]bool{
	"Finance": true, "Social": true, "Social Networking": true,
	"Dating": true, "Health": true, "Health & Fitness": true,
	"Medical": true, "Shopping": true,
}

// Advice builds per-destination pinning recommendations for a studied app
// from its measured results: contacted destinations and verdicts from the
// dynamic analysis, ownership from whois attribution, sensitivity from the
// store category and observed PII, and — for common apps — the sibling
// platform's policy.
func (s *Study) Advice(r *AppResult) []advisor.Recommendation {
	var sibling *AppResult
	for _, p := range s.Pairs {
		if p.Android == r {
			sibling = p.IOS
		}
		if p.IOS == r {
			sibling = p.Android
		}
	}

	prof := advisor.Profile{
		AppID:             r.App.ID,
		Android:           r.App.Platform == appmodel.Android,
		SensitiveCategory: sensitiveCategories[r.App.Category],
	}
	pinned := map[string]bool{}
	for _, d := range r.Dyn.PinnedDests() {
		pinned[d] = true
	}
	var sibPinned, sibContacts map[string]bool
	if sibling != nil {
		sibPinned, sibContacts = map[string]bool{}, map[string]bool{}
		for _, d := range sibling.Dyn.PinnedDests() {
			sibPinned[d] = true
		}
		for _, d := range sibling.Dyn.ContactedDests() {
			sibContacts[d] = true
		}
	}
	for _, dest := range r.Dyn.ContactedDests() {
		d := advisor.Destination{
			Host:       dest,
			FirstParty: dynamicanalysis.IsFirstParty(dest, r.App.Developer, r.App.Name, s.World.Whois),
			PinnedHere: pinned[dest],
			CarriesPII: len(r.DestPII[dest]) > 0,
		}
		if sibling != nil {
			d.PinnedOnSibling = sibPinned[dest]
			d.SiblingContacts = sibContacts[dest]
		}
		prof.Destinations = append(prof.Destinations, d)
	}
	return advisor.Advise(prof)
}

// AdviceByID resolves an app by ID+platform and returns its advice.
func (s *Study) AdviceByID(platform appmodel.Platform, appID string) ([]advisor.Recommendation, error) {
	r := s.results[string(platform)+"/"+appID]
	if r == nil {
		return nil, fmt.Errorf("core: no result for %s/%s", platform, appID)
	}
	return s.Advice(r), nil
}
