package core

import (
	"bytes"
	"errors"
	"testing"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
)

// exportPoints renders every point's dataset to bytes, keyed by tag.
func exportPoints(t *testing.T, ls *LongitudinalStudy) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, p := range ls.Points {
		var b bytes.Buffer
		if err := ls.ExportPoint(&b, p.Point.Tag); err != nil {
			t.Fatal(err)
		}
		out[p.Point.Tag] = b.Bytes()
	}
	return out
}

// The acceptance invariant: same seed + timeline config yields
// byte-identical per-release exports — including after a kill/resume
// mid-timeline.
func TestLongitudinalDeterministicAndCrashSafe(t *testing.T) {
	cfg := microCfg(11)
	// Out-of-order tags resolve to timeline order.
	tc := TimelineConfig{Points: []string{"kitkat", "gingerbread", "distrust-ca-distrust"}}

	clean, err := RunLongitudinal(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(clean.Points))
	}
	for i, want := range []string{"gingerbread", "kitkat", "distrust-ca-distrust"} {
		if got := clean.Points[i].Point.Tag; got != want {
			t.Fatalf("point %d = %q, want %q (timeline order)", i, got, want)
		}
	}
	for _, p := range clean.Points {
		if p.Study.Cfg.Release != p.Point.Tag {
			t.Fatalf("point %q ran with Release %q", p.Point.Tag, p.Study.Cfg.Release)
		}
	}
	cleanBytes := exportPoints(t, clean)

	// Kill the sweep mid-timeline: first point completes, the cut fires
	// while the second point's journal is being written.
	dir := t.TempDir()
	killCfg := cfg
	killCfg.Kill = &faultinject.ProcessKill{AfterResults: 7, TornBytes: 3}
	_, err = RunLongitudinal(killCfg, TimelineConfig{
		Points: tc.Points, Dir: dir, KillAtPoint: "kitkat",
	})
	if !errors.Is(err, journal.ErrKilled) {
		t.Fatalf("killed sweep returned %v, want ErrKilled", err)
	}

	// Resume: same config without the kill. The first point replays
	// wholesale, the killed point resumes from its torn journal, the
	// last point runs fresh.
	resumed, err := RunLongitudinal(cfg, TimelineConfig{Points: tc.Points, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Result("gingerbread").Study.Resumed; got == 0 {
		t.Error("completed point should have replayed from its journal")
	}
	kp := resumed.Result("kitkat").Study
	if kp.Resumed == 0 {
		t.Error("killed point should have resumed its partial journal")
	}
	for tag, want := range cleanBytes {
		var b bytes.Buffer
		if err := resumed.ExportPoint(&b, tag); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Bytes(), want) {
			t.Errorf("point %q: resumed export differs from clean run", tag)
		}
	}

	// A second journaled sweep over the now-complete directory replays
	// everything and still matches byte for byte.
	again, err := RunLongitudinal(cfg, TimelineConfig{Points: tc.Points, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for tag, want := range cleanBytes {
		var b bytes.Buffer
		if err := again.ExportPoint(&b, tag); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Bytes(), want) {
			t.Errorf("point %q: replayed export differs from clean run", tag)
		}
	}
}

// A journal written for one timeline point must refuse to resume as a
// different point: Release is part of the strict header match.
func TestPointJournalRefusesOtherRelease(t *testing.T) {
	cfg := microCfg(12)
	cfg.Release = "froyo"
	dir := t.TempDir()
	path := PointJournalPath(dir, "froyo")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Release = "kitkat"
	if _, err := ResumeJournal(path, other); err == nil {
		t.Fatal("resume across timeline points must fail")
	}
	if _, err := ResumeJournal(path, cfg); err != nil {
		t.Fatalf("same-point resume failed: %v", err)
	}
}

// The longitudinal axis must actually move the needle: early stores miss
// roots that modern chains anchor at, so the past shows more dark
// destinations than the newest release; a public-CA distrust re-breaks a
// completed store.
func TestLongitudinalBreakageSignal(t *testing.T) {
	cfg := microCfg(13)
	ls, err := RunLongitudinal(cfg, TimelineConfig{
		Points: []string{"froyo", "kitkat", "distrust-ca-distrust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	broken := func(tag string) (n int) {
		for _, c := range ls.Result(tag).Breakage {
			n += c.BrokenDests
		}
		return n
	}
	if broken("froyo") <= broken("kitkat") {
		t.Errorf("froyo (missing 4 public roots) should break more than kitkat: %d vs %d",
			broken("froyo"), broken("kitkat"))
	}
	if broken("distrust-ca-distrust") <= broken("kitkat") {
		t.Errorf("distrusting a live public CA should break destinations: %d vs %d",
			broken("distrust-ca-distrust"), broken("kitkat"))
	}

	if got := len(ls.BreakageDeltas()); got != 4 {
		t.Fatalf("expected 2 transitions x 2 platforms = 4 deltas, got %d", got)
	}
	healedAny := false
	for _, d := range ls.BreakageDeltas() {
		if d.From == "froyo" && d.To == "kitkat" && d.BrokenDests < 0 {
			healedAny = true
		}
	}
	if !healedAny {
		t.Error("froyo->kitkat should heal destinations on at least one platform")
	}

	over := ls.Table3OverTime()
	if len(over) == 0 || len(over[0].Points) != 3 {
		t.Fatalf("Table3OverTime should carry 3 points per cell, got %+v", over)
	}
}
