package core

// longitudinal.go is the time axis of the study: it replays the same app
// universe against every selected root-program timeline point (platform
// release or distrust event, see internal/rootprogram) and collects one
// Study per point. The sweep reuses the crash-only machinery wholesale —
// each point is an independently journaled pass with its own WAL, so a
// killed sweep resumes exactly where it died: completed points replay
// from their journals, the interrupted point resumes mid-journal, and
// untouched points run fresh. Per-point exports are byte-identical
// between an uninterrupted sweep and a killed-and-resumed one.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pinscope/internal/appmodel"
	"pinscope/internal/pki"
	"pinscope/internal/rootprogram"
	"pinscope/internal/worldgen"
)

// TimelineConfig selects the points and durability of a longitudinal run.
type TimelineConfig struct {
	// Points are timeline point tags to measure, in timeline order; empty
	// means every point (each release and each distrust event).
	Points []string
	// Dir, when non-empty, journals each point at Dir/point-<tag>.wal. An
	// existing journal is resumed automatically: its completed results
	// replay instead of re-measuring, which is what makes a re-run after a
	// mid-timeline kill both cheap and byte-identical.
	Dir string
	// KillAtPoint, when non-empty, arms Config.Kill only for the named
	// point, so tests and demos can cut the process mid-timeline (after
	// earlier points completed). Empty arms Config.Kill for every point.
	KillAtPoint string
}

// PointResult is one timeline point's completed study.
type PointResult struct {
	Point    rootprogram.Point
	Study    *Study
	Breakage []BreakageCell
}

// LongitudinalStudy is a completed timeline sweep.
type LongitudinalStudy struct {
	Cfg    Config
	World  *worldgen.World
	Points []*PointResult
}

// RunLongitudinal builds the world once and replays the study across the
// selected timeline points.
func RunLongitudinal(cfg Config, tc TimelineConfig) (*LongitudinalStudy, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	return RunLongitudinalOnWorld(cfg, tc, w)
}

// RunLongitudinalOnWorld is RunLongitudinal against an existing world.
func RunLongitudinalOnWorld(cfg Config, tc TimelineConfig, w *worldgen.World) (*LongitudinalStudy, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	pts, err := selectPoints(w.Timeline, tc.Points)
	if err != nil {
		return nil, err
	}
	if tc.Dir != "" {
		if err := os.MkdirAll(tc.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: longitudinal journal dir: %w", err)
		}
	}
	ls := &LongitudinalStudy{Cfg: cfg, World: w}
	for _, pt := range pts {
		android, ios, err := w.Timeline.StoresAt(pt)
		if err != nil {
			return nil, fmt.Errorf("core: longitudinal point %q: %w", pt.Tag, err)
		}
		pcfg := cfg
		pcfg.Release = pt.Tag
		pcfg.Stores = map[appmodel.Platform]*pki.RootStore{
			appmodel.Android: android,
			appmodel.IOS:     ios,
		}
		if tc.KillAtPoint != "" && tc.KillAtPoint != pt.Tag {
			pcfg.Kill = nil
		}
		var s *Study
		if tc.Dir != "" {
			s, err = runPointJournaled(pcfg, w, PointJournalPath(tc.Dir, pt.Tag))
		} else {
			s, err = RunOnWorld(pcfg, w)
		}
		if err != nil {
			return nil, fmt.Errorf("core: longitudinal point %q: %w", pt.Tag, err)
		}
		ls.Points = append(ls.Points, &PointResult{Point: pt, Study: s})
	}
	// Breakage classification runs after the whole sweep: whether a dark
	// destination counts as "pinned and broken" depends on pin verdicts
	// from points where it was reachable (a destination dark at this point
	// cannot be differentially classified at this point).
	pinned := ls.pinnedUnion()
	for _, p := range ls.Points {
		p.Breakage = p.Study.breakage(pinned)
	}
	return ls, nil
}

// pinnedUnion collects, per app key, every destination detected as pinned
// at any measured point.
func (ls *LongitudinalStudy) pinnedUnion() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, p := range ls.Points {
		for key, r := range p.Study.results {
			if r.Dyn == nil {
				continue
			}
			for _, d := range r.Dyn.PinnedDests() {
				if out[key] == nil {
					out[key] = map[string]bool{}
				}
				out[key][d] = true
			}
		}
	}
	return out
}

// PointJournalPath is where a timeline point's WAL lives under dir.
func PointJournalPath(dir, tag string) string {
	return filepath.Join(dir, "point-"+tag+".wal")
}

// selectPoints resolves tags against the timeline, preserving timeline
// order regardless of the order tags were given in. Empty means all.
func selectPoints(tl *rootprogram.Timeline, tags []string) ([]rootprogram.Point, error) {
	all := tl.Points()
	if len(tags) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(tags))
	for _, t := range tags {
		want[t] = true
	}
	var out []rootprogram.Point
	for _, p := range all {
		if want[p.Tag] {
			out = append(out, p)
			delete(want, p.Tag)
		}
	}
	for t := range want {
		return nil, fmt.Errorf("core: unknown timeline point %q", t)
	}
	return out, nil
}

// runPointJournaled runs one point crash-only against an existing world:
// an existing journal at path is resumed (strict config match included),
// a missing one is created. This mirrors RunJournaled but reuses the
// world — a timeline sweep builds it once, not once per point.
func runPointJournaled(cfg Config, w *worldgen.World, path string) (*Study, error) {
	var (
		j   *StudyJournal
		err error
	)
	if _, statErr := os.Stat(path); statErr == nil {
		j, err = ResumeJournal(path, cfg)
	} else {
		j, err = CreateJournal(path, cfg)
	}
	if err != nil {
		return nil, err
	}
	cfg.Journal = j
	s, err := RunOnWorld(cfg, w)
	if err != nil {
		j.Close()
		return nil, err
	}
	if err := j.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// Result returns the point result for tag, or nil.
func (ls *LongitudinalStudy) Result(tag string) *PointResult {
	for _, p := range ls.Points {
		if p.Point.Tag == tag {
			return p
		}
	}
	return nil
}

// ExportPoint writes the named point's dataset as indented JSON — the
// same bytes Study.WriteJSON emits, with Meta.Release stamped to the
// point tag.
func (ls *LongitudinalStudy) ExportPoint(w io.Writer, tag string) error {
	p := ls.Result(tag)
	if p == nil {
		return fmt.Errorf("core: no completed timeline point %q", tag)
	}
	return p.Study.WriteJSON(w)
}

// BreakageCell aggregates trust breakage for one platform at one timeline
// point: destinations an app contacted whose baseline (no-MITM) leg never
// carried data — on an old or distrust-shrunken store, chains anchored at
// missing roots fail validation and their connections go dark.
type BreakageCell struct {
	Platform appmodel.Platform
	// Apps measured; BrokenApps have >= 1 dark destination.
	Apps       int
	BrokenApps int
	// Dests are (app, destination) verdicts; BrokenDests are dark ones,
	// and PinnedBroken the dark destinations known to be pinned (per the
	// sweep-wide union of pin verdicts — a destination dark here was
	// classified at a point where its chain still validated).
	Dests        int
	BrokenDests  int
	PinnedBroken int
}

// Breakage aggregates the per-destination dark counts of a completed
// study, per platform (Android first, then iOS). Standalone studies have
// no cross-point pin union, so PinnedBroken stays 0 here; the
// longitudinal runner fills it via breakage(pinnedUnion()).
func (s *Study) Breakage() []BreakageCell { return s.breakage(nil) }

func (s *Study) breakage(pinned map[string]map[string]bool) []BreakageCell {
	cells := make(map[appmodel.Platform]*BreakageCell)
	out := make([]BreakageCell, 0, len(appmodel.Platforms))
	for _, plat := range appmodel.Platforms {
		cells[plat] = &BreakageCell{Platform: plat}
	}
	for key, r := range s.results {
		c := cells[r.App.Platform]
		c.Apps++
		broken := false
		if r.Dyn != nil {
			for _, d := range r.Dyn.ContactedDests() {
				v := r.Dyn.Verdicts[d]
				if v.Excluded {
					continue
				}
				c.Dests++
				if !v.UsedNoMITM {
					c.BrokenDests++
					broken = true
					if pinned[key][d] {
						c.PinnedBroken++
					}
				}
			}
		}
		if broken {
			c.BrokenApps++
		}
	}
	for _, plat := range appmodel.Platforms {
		out = append(out, *cells[plat])
	}
	return out
}

// Table3Over is one dataset cell's prevalence at every timeline point, in
// point order — Table 3 with time as the extra axis.
type Table3Over struct {
	Cell   DatasetCell
	Points []Table3Cell
}

// Table3OverTime pivots the per-point Table 3 into per-cell time series.
func (ls *LongitudinalStudy) Table3OverTime() []Table3Over {
	var out []Table3Over
	for _, p := range ls.Points {
		for i, c := range p.Study.Table3() {
			if i >= len(out) {
				out = append(out, Table3Over{Cell: c.Cell})
			}
			out[i].Points = append(out[i].Points, c)
		}
	}
	return out
}

// BreakageDelta is the change in breakage between two consecutive
// timeline points for one platform.
type BreakageDelta struct {
	From, To string // point tags
	Platform appmodel.Platform
	// Deltas of the respective BreakageCell counts (To minus From).
	BrokenApps   int
	BrokenDests  int
	PinnedBroken int
}

// BreakageDeltas walks consecutive point pairs and reports how many apps
// and destinations each transition broke (positive) or healed (negative).
func (ls *LongitudinalStudy) BreakageDeltas() []BreakageDelta {
	var out []BreakageDelta
	for i := 1; i < len(ls.Points); i++ {
		prev, cur := ls.Points[i-1], ls.Points[i]
		for j, plat := range appmodel.Platforms {
			out = append(out, BreakageDelta{
				From:         prev.Point.Tag,
				To:           cur.Point.Tag,
				Platform:     plat,
				BrokenApps:   cur.Breakage[j].BrokenApps - prev.Breakage[j].BrokenApps,
				BrokenDests:  cur.Breakage[j].BrokenDests - prev.Breakage[j].BrokenDests,
				PinnedBroken: cur.Breakage[j].PinnedBroken - prev.Breakage[j].PinnedBroken,
			})
		}
	}
	return out
}
