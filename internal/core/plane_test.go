package core

import (
	"bytes"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/faultinject"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/worldgen"
)

// The crypto plane is a pure performance layer: a warm (shared, memoized)
// run and a cold (per-lab, uncached) run of the same seed must export the
// exact same bytes. These tests are the contract that lets every cache in
// the plane exist.

func runExport(t *testing.T, cfg Config) []byte {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exportBytes(t, s)
}

func TestWarmColdExportsByteIdentical(t *testing.T) {
	for _, seed := range []int64{5, 61} {
		warm := microCfg(seed)
		cold := microCfg(seed)
		cold.ColdCrypto = true
		if !bytes.Equal(runExport(t, warm), runExport(t, cold)) {
			t.Fatalf("seed %d: warm export differs from cold export", seed)
		}
	}
}

func TestWarmColdExportsByteIdenticalParallel(t *testing.T) {
	// Workers share the plane's chain store, memo, and trust stores; the
	// export must still match a cold single-worker run byte for byte.
	warm := microCfg(17)
	warm.Workers = 4
	cold := microCfg(17)
	cold.ColdCrypto = true
	if !bytes.Equal(runExport(t, warm), runExport(t, cold)) {
		t.Fatal("parallel warm export differs from cold export")
	}
}

func TestWarmColdExportsByteIdenticalUnderFaults(t *testing.T) {
	// Faulted attempts bypass the memo and forge caches take the fault
	// path first, so a 10% fault rate must not open any warm/cold gap.
	mk := func(coldCrypto bool) Config {
		cfg := microCfg(23)
		cfg.Faults = faultinject.NewPlan(23, faultinject.Uniform(0.1))
		cfg.Retries = 2
		cfg.ColdCrypto = coldCrypto
		return cfg
	}
	if !bytes.Equal(runExport(t, mk(false)), runExport(t, mk(true))) {
		t.Fatal("warm export differs from cold export under a 10% fault plan")
	}
}

func TestPlaneMatchesColdProxyIdentity(t *testing.T) {
	// The plane's CA must be the same derivation a cold worker's proxy
	// makes from the study seed, or warm and cold runs would forge under
	// different issuers. Signature bytes vary per issuance (ECDSA), so the
	// comparison is the key material and name, not raw DER.
	cfg := microCfg(9)
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := newCryptoPlane(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	coldProxy, err := mitmproxy.NewWithCA(detrand.New(cfg.Params.Seed).Child("study-proxy"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plane.proxyCA.Cert.RawSubjectPublicKeyInfo, coldProxy.CACert().Cert.RawSubjectPublicKeyInfo) {
		t.Fatal("plane CA key differs from a cold proxy's CA key")
	}
	if plane.proxyCA.Cert.Subject.CommonName != coldProxy.CACert().Cert.Subject.CommonName {
		t.Fatal("plane CA name differs from a cold proxy's CA name")
	}
	for _, plat := range appmodel.Platforms {
		ps := plane.stores[plat]
		if ps.plainUser == nil || ps.mitmUser == nil || ps.system == nil {
			t.Fatalf("%s: plane stores incomplete", plat)
		}
		if ps.plainUser.Digest() == ps.mitmUser.Digest() {
			t.Fatalf("%s: MITM user store does not include the proxy CA", plat)
		}
		if ps.plainUser.Digest() != ps.system.Digest() {
			t.Fatalf("%s: system store content deviates from the base store", plat)
		}
	}
}

func TestPlaneCachesAreExercised(t *testing.T) {
	// A warm run must actually route through the plane: forged chains
	// interned, handshake outcomes replayed.
	cfg := microCfg(13)
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := newCryptoPlane(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runOnWorldWithPlane(cfg, w, plane); err != nil {
		t.Fatal(err)
	}
	if plane.forged.Len() == 0 {
		t.Fatal("study run interned no forged chains")
	}
	if plane.memo.Len() == 0 {
		t.Fatal("study run memoized no handshake outcomes")
	}
	if plane.memo.Hits() == 0 {
		t.Fatal("study run never replayed a memoized handshake")
	}
}
