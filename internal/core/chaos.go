package core

// chaos.go sweeps the study across fault rates and measures how far the
// headline prevalence numbers (Table 3) drift from the fault-free run — the
// robustness claim behind the fault-injection layer: operational messiness
// degrades coverage, it must not invert conclusions.

import (
	"bytes"
	"fmt"
	"math"
	"os"

	"pinscope/internal/faultinject"
	"pinscope/internal/shardcoord"
	"pinscope/internal/worldgen"
)

// ChaosPoint is one fault rate's outcome in a chaos sweep.
type ChaosPoint struct {
	Rate  float64
	Stats RobustnessStats
	Cells []Table3Cell
	// MaxAbsDriftPP is the largest absolute drift, over all dataset cells,
	// of the dynamic pinning prevalence versus the fault-free reference, in
	// percentage points.
	MaxAbsDriftPP float64
	// Sharded is the shard-death drill at this rate: the same point rerun
	// as a 4-shard sharded study under a ShardPlan derived from (seed,
	// rate), with the merged export held against the point's own export.
	// Nil for the rate-0 reference and for rates whose derived plan is
	// empty.
	Sharded *ShardDrill
	// Net is the network-chaos drill at this rate: the same point rerun
	// over the simulated shardnet transport under the derived plan's
	// network fault family (delays, drops, duplicate delivery,
	// partitions) plus its worker kills, again held byte-identical to the
	// point's own export. Nil under the same conditions as Sharded.
	Net *NetDrill
}

// ShardDrill is one chaos point's sharded rerun: coordinator accounting
// plus the merge-equivalence verdict. ChaosSweep fails loudly if the merge
// diverges, so a recorded drill always has ByteIdentical true — the field
// keeps the report honest about what was checked rather than assumed.
type ShardDrill struct {
	Stats         shardcoord.Stats
	ByteIdentical bool
}

// NetDrill is one chaos point's transported rerun over the simulated
// network: transport accounting, the injected fault counts, and the
// merge-equivalence verdict (same loud-failure contract as ShardDrill).
type NetDrill struct {
	Stats         NetShardStats
	NetFaults     int
	ByteIdentical bool
}

// DynamicPrevalencePct is a cell's dynamic pinning prevalence in percent.
func DynamicPrevalencePct(c Table3Cell) float64 {
	if c.N == 0 {
		return 0
	}
	return 100 * float64(c.Dynamic) / float64(c.N)
}

// ChaosSweep reruns the study at each fault rate (plus a rate-0 reference)
// and reports per-rate robustness accounting and Table 3 drift. A fresh
// world is built per point: a study mutates world state (iOS package
// decryption), so reusing one world would couple the points.
//
// Points with a positive rate run with a Uniform fault plan seeded from
// cfg.Params.Seed and at least two retries, so the sweep exercises the full
// retry/quarantine machinery.
func ChaosSweep(cfg Config, rates []float64) ([]ChaosPoint, error) {
	ref, err := chaosPoint(cfg, 0)
	if err != nil {
		return nil, err
	}
	refPct := map[DatasetCell]float64{}
	for _, c := range ref.Cells {
		refPct[c.Cell] = DynamicPrevalencePct(c)
	}

	out := make([]ChaosPoint, 0, len(rates))
	for _, rate := range rates {
		pt := ref
		if rate != 0 {
			pt, err = chaosPoint(cfg, rate)
			if err != nil {
				return nil, err
			}
		}
		pt.MaxAbsDriftPP = 0
		for _, c := range pt.Cells {
			if d := math.Abs(DynamicPrevalencePct(c) - refPct[c.Cell]); d > pt.MaxAbsDriftPP {
				pt.MaxAbsDriftPP = d
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

func chaosPoint(cfg Config, rate float64) (ChaosPoint, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	cfg.Faults = nil
	if rate > 0 {
		cfg.Faults = faultinject.NewPlan(cfg.Params.Seed, faultinject.Uniform(rate))
		if cfg.Retries < 2 {
			cfg.Retries = 2
		}
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return ChaosPoint{}, err
	}
	s, err := RunOnWorld(cfg, w)
	if err != nil {
		return ChaosPoint{}, err
	}
	pt := ChaosPoint{Rate: rate, Stats: s.Robustness(), Cells: s.Table3()}
	if rate > 0 {
		pt.Sharded, err = shardDrill(cfg, rate, s)
		if err != nil {
			return ChaosPoint{}, err
		}
		pt.Net, err = netDrill(cfg, rate, s)
		if err != nil {
			return ChaosPoint{}, err
		}
	}
	return pt, nil
}

// shardDrill reruns one chaos point as a sharded study under a derived
// shard-death plan and verifies the merged export matches the point's own
// export byte for byte — the sweep's coverage of the crash-tolerance
// machinery: rising fault rates kill shards too, and the dataset must not
// notice.
func shardDrill(cfg Config, rate float64, s *Study) (*ShardDrill, error) {
	const shards, workers = 4, 4
	ranges := sliceRanges(len(shardUniverse(s.World)), shards)
	items := make([]int, len(ranges))
	for i, rg := range ranges {
		items[i] = rg[1]
	}
	plan := faultinject.DeriveShardPlan(cfg.Params.Seed, rate, workers, items)
	if plan == nil {
		return nil, nil
	}
	dir, err := os.MkdirTemp("", "pinscope-chaos-shard-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	stats, err := RunSharded(cfg, ShardedConfig{Shards: shards, Workers: workers, Dir: dir, Faults: plan})
	if err != nil {
		return nil, fmt.Errorf("core: chaos shard drill at rate %g: %w", rate, err)
	}
	var single, merged bytes.Buffer
	if err := s.WriteJSON(&single); err != nil {
		return nil, err
	}
	if err := MergeShards(&merged, cfg, ShardedConfig{Shards: shards, Dir: dir}); err != nil {
		return nil, fmt.Errorf("core: chaos shard drill at rate %g: %w", rate, err)
	}
	if !bytes.Equal(merged.Bytes(), single.Bytes()) {
		return nil, fmt.Errorf("core: chaos shard drill at rate %g: merged export diverges from the point's own export (%d vs %d bytes)",
			rate, merged.Len(), single.Len())
	}
	return &ShardDrill{Stats: *stats, ByteIdentical: true}, nil
}

// netDrill reruns one chaos point over the simulated shardnet transport
// under the same derived fault plan — kills become mid-stream connection
// deaths, and the plan's network family batters the wire itself — then
// holds the merged export against the point's own export byte for byte:
// the sweep's proof that a hostile network degrades progress, never data.
func netDrill(cfg Config, rate float64, s *Study) (*NetDrill, error) {
	const shards, workers = 4, 4
	ranges := sliceRanges(len(shardUniverse(s.World)), shards)
	items := make([]int, len(ranges))
	for i, rg := range ranges {
		items[i] = rg[1]
	}
	plan := faultinject.DeriveShardPlan(cfg.Params.Seed, rate, workers, items)
	if plan == nil {
		return nil, nil
	}
	dir, err := os.MkdirTemp("", "pinscope-chaos-net-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	stats, err := RunShardedNet(cfg, ShardedConfig{Shards: shards, Workers: workers, Dir: dir, Faults: plan})
	if err != nil {
		return nil, fmt.Errorf("core: chaos net drill at rate %g: %w", rate, err)
	}
	var single, merged bytes.Buffer
	if err := s.WriteJSON(&single); err != nil {
		return nil, err
	}
	if err := MergeShards(&merged, cfg, ShardedConfig{Shards: shards, Dir: dir}); err != nil {
		return nil, fmt.Errorf("core: chaos net drill at rate %g: %w", rate, err)
	}
	if !bytes.Equal(merged.Bytes(), single.Bytes()) {
		return nil, fmt.Errorf("core: chaos net drill at rate %g: merged export diverges from the point's own export (%d vs %d bytes)",
			rate, merged.Len(), single.Len())
	}
	return &NetDrill{Stats: *stats, NetFaults: plan.Net.Faults(), ByteIdentical: true}, nil
}
