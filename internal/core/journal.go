package core

// journal.go makes study runs crash-only: every completed AppResult is
// streamed into an append-only internal/journal WAL, and a resumed run
// replays the journaled results instead of re-measuring those apps.
// Because every per-app measurement is a pure function of (seed, app) —
// the same property that makes worker scheduling irrelevant — a resumed
// run's export is byte-identical to an uninterrupted run's.

import (
	"bytes"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/worldgen"
)

// journalFormatVersion versions the record payloads inside the WAL (the
// frame layer has its own magic). Bump on any journalRecord shape change.
const journalFormatVersion = 1

// journalMeta is the header frame: everything that must match for a
// journal's results to be valid replays in the current run. All fields
// are comparable, so resume verification is a struct equality.
type journalMeta struct {
	Format     int               `json:"format"`
	Params     worldgen.Params   `json:"params"`
	Window     float64           `json:"capture_window_s"`
	FaultSeed  int64             `json:"fault_seed"`
	FaultRates faultinject.Rates `json:"fault_rates"`
	Retries    int               `json:"retries"`
	// Release is the root-program timeline point measured (empty for
	// snapshot runs). omitempty keeps pre-timeline journals replayable:
	// their headers decode to "" and snapshot runs marshal no field at
	// all, so the bytes match too.
	Release string `json:"release,omitempty"`
}

func metaFor(cfg Config) journalMeta {
	return journalMeta{
		Format:     journalFormatVersion,
		Params:     cfg.Params,
		Window:     cfg.Window,
		FaultSeed:  cfg.Faults.Seed(),
		FaultRates: cfg.Faults.Rates(),
		Retries:    cfg.Retries,
		Release:    cfg.Release,
	}
}

// journalCert carries a found certificate as DER bytes; *x509.Certificate
// itself cannot round-trip JSON (interface-typed PublicKey), but its Raw
// encoding re-parses into a semantically identical certificate.
type journalCert struct {
	Path string `json:"path"`
	DER  []byte `json:"der"`
}

type journalPin struct {
	Path string  `json:"path"`
	Raw  string  `json:"raw"`
	Pin  pki.Pin `json:"pin"`
}

// journalStatic mirrors staticanalysis.Report with serializable certs.
type journalStatic struct {
	AppID             string        `json:"app_id"`
	Platform          string        `json:"platform"`
	Certs             []journalCert `json:"certs,omitempty"`
	Pins              []journalPin  `json:"pins,omitempty"`
	NSC               *apppkg.NSC   `json:"nsc,omitempty"`
	NSCHasPins        bool          `json:"nsc_has_pins"`
	AssociatedDomains []string      `json:"associated_domains,omitempty"`
	Misconfigs        []string      `json:"misconfigs,omitempty"`
}

// journalRecord is one journaled AppResult. The App pointer is not
// serialized: the world is rebuilt deterministically on resume and the
// record re-links to it by Key.
type journalRecord struct {
	Key string `json:"key"`

	Static    *journalStatic          `json:"static,omitempty"`
	StaticErr string                  `json:"static_err,omitempty"`
	Dyn       *dynamicanalysis.Result `json:"dyn,omitempty"`

	WeakAnyConn    bool `json:"weak_any_conn"`
	WeakPinnedConn bool `json:"weak_pinned_conn"`

	CircumventedDests map[string]bool              `json:"circumvented_dests,omitempty"`
	DestPII           map[string]map[pii.Kind]bool `json:"dest_pii,omitempty"`
	ObservedDests     map[string]bool              `json:"observed_dests,omitempty"`

	Confidence  int    `json:"confidence"`
	Attempts    int    `json:"attempts"`
	FromAttempt int    `json:"from_attempt"`
	Quarantined bool   `json:"quarantined"`
	Err         string `json:"err,omitempty"`
	DynRun      string `json:"dyn_run,omitempty"`
}

// encodeAppResult serializes one result for the journal.
func encodeAppResult(key string, r *AppResult) ([]byte, error) {
	rec := journalRecord{
		Key:               key,
		Dyn:               r.Dyn,
		WeakAnyConn:       r.WeakAnyConn,
		WeakPinnedConn:    r.WeakPinnedConn,
		CircumventedDests: r.CircumventedDests,
		DestPII:           r.DestPII,
		ObservedDests:     r.ObservedDests,
		Confidence:        int(r.Confidence),
		Attempts:          r.Attempts,
		FromAttempt:       r.FromAttempt,
		Quarantined:       r.Quarantined,
		DynRun:            r.DynRun,
	}
	if r.StaticErr != nil {
		rec.StaticErr = r.StaticErr.Error()
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	if r.Static != nil {
		js := &journalStatic{
			AppID:             r.Static.AppID,
			Platform:          string(r.Static.Platform),
			NSC:               r.Static.NSC,
			NSCHasPins:        r.Static.NSCHasPins,
			AssociatedDomains: r.Static.AssociatedDomains,
			Misconfigs:        r.Static.Misconfigs,
		}
		for _, c := range r.Static.Certs {
			if c.Cert == nil {
				return nil, fmt.Errorf("core: journal encode %s: found cert %s has no parsed certificate", key, c.Path)
			}
			js.Certs = append(js.Certs, journalCert{Path: c.Path, DER: c.Cert.Raw})
		}
		for _, p := range r.Static.Pins {
			js.Pins = append(js.Pins, journalPin{Path: p.Path, Raw: p.Raw, Pin: p.Pin})
		}
		rec.Static = js
	}
	return json.Marshal(rec)
}

// decodeAppResult materializes a journaled record against the rebuilt
// world's app. Every byte has already passed the journal's CRC; failures
// here mean a format change, and are loud.
func decodeAppResult(data []byte, app *appmodel.App) (*AppResult, error) {
	var rec journalRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("core: decode journal record: %w", err)
	}
	if want := string(app.Platform) + "/" + app.ID; rec.Key != want {
		// The streaming merge relies on slice journals holding their items
		// in work order; a key out of place means the journal does not
		// belong where the caller thinks it does.
		return nil, fmt.Errorf("core: journal record %q where %q belongs", rec.Key, want)
	}
	r := &AppResult{
		App:               app,
		Dyn:               rec.Dyn,
		WeakAnyConn:       rec.WeakAnyConn,
		WeakPinnedConn:    rec.WeakPinnedConn,
		CircumventedDests: rec.CircumventedDests,
		DestPII:           rec.DestPII,
		ObservedDests:     rec.ObservedDests,
		Confidence:        Confidence(rec.Confidence),
		Attempts:          rec.Attempts,
		FromAttempt:       rec.FromAttempt,
		Quarantined:       rec.Quarantined,
		DynRun:            rec.DynRun,
	}
	if rec.StaticErr != "" {
		r.StaticErr = errors.New(rec.StaticErr)
	}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	if rec.Static != nil {
		rep := &staticanalysis.Report{
			AppID:             rec.Static.AppID,
			Platform:          appmodel.Platform(rec.Static.Platform),
			NSC:               rec.Static.NSC,
			NSCHasPins:        rec.Static.NSCHasPins,
			AssociatedDomains: rec.Static.AssociatedDomains,
			Misconfigs:        rec.Static.Misconfigs,
		}
		for _, c := range rec.Static.Certs {
			cert, err := x509.ParseCertificate(c.DER)
			if err != nil {
				return nil, fmt.Errorf("core: journal record %s: reparse cert %s: %w", rec.Key, c.Path, err)
			}
			rep.Certs = append(rep.Certs, staticanalysis.FoundCert{Path: c.Path, Cert: cert})
		}
		for _, p := range rec.Static.Pins {
			rep.Pins = append(rep.Pins, staticanalysis.FoundPin{Path: p.Path, Raw: p.Raw, Pin: p.Pin})
		}
		r.Static = rep
	}
	return r, nil
}

// StudyJournal is the runner-facing face of the WAL: a sink for completed
// results plus (after a resume) the replay source of previously journaled
// ones. All methods tolerate a nil receiver, so the runner threads one
// pointer through without guarding.
type StudyJournal struct {
	w *journal.Writer

	mu     sync.Mutex
	replay map[string][]byte
}

// CreateJournal starts a fresh journal for cfg at path. The header frame
// records the full run configuration so a later resume can refuse to mix
// runs.
func CreateJournal(path string, cfg Config) (*StudyJournal, error) {
	meta, err := json.Marshal(metaFor(cfg))
	if err != nil {
		return nil, err
	}
	w, err := journal.Create(path, meta)
	if err != nil {
		return nil, err
	}
	return &StudyJournal{w: w}, nil
}

// ResumeJournal recovers the journal at path, verifies it was written by
// an identical configuration, and reopens it for appending (dropping a
// torn tail at the last verified frame).
func ResumeJournal(path string, cfg Config) (*StudyJournal, error) {
	rec, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	var got journalMeta
	dec := json.NewDecoder(bytes.NewReader(rec.Meta))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&got); err != nil {
		return nil, fmt.Errorf("core: journal %s: undecodable header: %w", path, err)
	}
	if want := metaFor(cfg); got != want {
		return nil, fmt.Errorf("core: journal %s was written by a different run configuration: journal %+v, current %+v",
			path, got, want)
	}
	replay := make(map[string][]byte, len(rec.Results))
	for i, data := range rec.Results {
		var k struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(data, &k); err != nil || k.Key == "" {
			return nil, fmt.Errorf("core: journal %s: result %d has no key: %v", path, i, err)
		}
		replay[k.Key] = data
	}
	w, err := rec.AppendTo(path)
	if err != nil {
		return nil, err
	}
	return &StudyJournal{w: w, replay: replay}, nil
}

// Replayed returns how many journaled results this journal holds for
// replay. Nil-safe.
func (j *StudyJournal) Replayed() int {
	if j == nil {
		return 0
	}
	return len(j.replay)
}

// Close releases the underlying file. Nil-safe; the journal file itself
// stays on disk as the run's durable record.
func (j *StudyJournal) Close() error {
	if j == nil {
		return nil
	}
	return j.w.Close()
}

// arm installs the power-cut tap. Nil-safe on both sides.
func (j *StudyJournal) arm(k *faultinject.ProcessKill) {
	if j == nil || k == nil {
		return
	}
	j.w.SetCrashTap(k.Tap())
}

// replayed hands out (and consumes nothing from) the replay record for
// key. Nil-safe.
func (j *StudyJournal) replayed(key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.replay[key]
	return data, ok
}

// append journals one completed result durably. Nil-safe (then a no-op).
func (j *StudyJournal) append(key string, r *AppResult) error {
	if j == nil {
		return nil
	}
	data, err := encodeAppResult(key, r)
	if err != nil {
		return err
	}
	if err := j.w.Append(data); err != nil {
		if errors.Is(err, journal.ErrKilled) {
			return err
		}
		return fmt.Errorf("core: journal append %s: %w", key, err)
	}
	return nil
}

// RunJournaled is Run with crash-only durability: results stream into the
// journal at path, and with resume set the journaled results of a previous
// (killed) run are replayed instead of re-measured. Determinism makes the
// resumed study's export byte-identical to an uninterrupted run's.
func RunJournaled(cfg Config, path string, resume bool) (*Study, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	var (
		j   *StudyJournal
		err error
	)
	if resume {
		j, err = ResumeJournal(path, cfg)
	} else {
		j, err = CreateJournal(path, cfg)
	}
	if err != nil {
		return nil, err
	}
	cfg.Journal = j
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		j.Close()
		return nil, err
	}
	s, err := RunOnWorld(cfg, w)
	if err != nil {
		j.Close()
		return nil, err
	}
	if err := j.Close(); err != nil {
		return nil, err
	}
	return s, nil
}
