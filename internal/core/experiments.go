package core

// experiments.go computes every table and figure of the paper's evaluation
// from per-app results. Each method corresponds to one experiment in the
// DESIGN.md index; internal/report renders them.

import (
	"crypto/x509"
	"sort"

	"pinscope/internal/appmodel"
	"pinscope/internal/appstore"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/stats"
	"pinscope/internal/worldgen"
)

// DatasetCell identifies one dataset/platform combination.
type DatasetCell struct {
	Dataset  string // "Common", "Popular", "Random"
	Platform appmodel.Platform
}

// datasetList returns (cell, dataset) pairs in report order.
func datasetList(w *worldgen.World) []struct {
	Cell DatasetCell
	DS   *appstore.Dataset
} {
	d := w.DS
	return []struct {
		Cell DatasetCell
		DS   *appstore.Dataset
	}{
		{DatasetCell{"Common", appmodel.Android}, d.CommonAndroid},
		{DatasetCell{"Common", appmodel.IOS}, d.CommonIOS},
		{DatasetCell{"Popular", appmodel.Android}, d.PopularAndroid},
		{DatasetCell{"Popular", appmodel.IOS}, d.PopularIOS},
		{DatasetCell{"Random", appmodel.Android}, d.RandomAndroid},
		{DatasetCell{"Random", appmodel.IOS}, d.RandomIOS},
	}
}

// --- Table 1 ---------------------------------------------------------------

// Table1Row is one dataset's category overview.
type Table1Row struct {
	Cell  DatasetCell
	Total int
	Top   []stats.KV // top categories by app count
}

// Table1 reproduces the dataset overview (top-10 categories per dataset).
func (s *Study) Table1(topN int) []Table1Row {
	var out []Table1Row
	for _, e := range datasetList(s.World) {
		c := stats.NewCounter()
		for _, l := range e.DS.Listings {
			c.Inc(l.Category)
		}
		out = append(out, Table1Row{Cell: e.Cell, Total: len(e.DS.Listings), Top: c.Top(topN)})
	}
	return out
}

// --- Table 3 (and the Table 2 NSC baseline) ---------------------------------

// Table3Cell holds detection counts for one dataset/platform.
type Table3Cell struct {
	Cell DatasetCell
	N    int
	// Dynamic: apps with at least one pinned connection at run time.
	Dynamic int
	// StaticEmbedded: apps with embedded certificates or pin hashes.
	StaticEmbedded int
	// NSCPins: apps with an NSC pin-set (prior work's criterion; Android
	// only — -1 marks not-applicable).
	NSCPins int
}

// Table3 reproduces the prevalence-by-method table.
func (s *Study) Table3() []Table3Cell {
	var out []Table3Cell
	for _, e := range datasetList(s.World) {
		cell := Table3Cell{Cell: e.Cell, NSCPins: -1}
		if e.Cell.Platform == appmodel.Android {
			cell.NSCPins = 0
		}
		for _, r := range s.DatasetResults(e.DS) {
			cell.N++
			if r.Pinned() {
				cell.Dynamic++
			}
			if r.Static != nil && r.Static.HasCertMaterial() {
				cell.StaticEmbedded++
			}
			if e.Cell.Platform == appmodel.Android && r.Static != nil && r.Static.NSCHasPins {
				cell.NSCPins++
			}
		}
		out = append(out, cell)
	}
	return out
}

// --- Tables 4 & 5 ------------------------------------------------------------

// CategoryRow is one category's pinning statistics across all datasets of a
// platform.
type CategoryRow struct {
	Category string
	// Rank is the category's popularity rank (by app count) among all
	// categories of the platform's datasets.
	Rank    int
	Apps    int // unique apps in the category
	Pinning int // of which pin
	Pct     float64
}

// TableCategories reproduces Tables 4 (Android) and 5 (iOS): the top-N
// categories by pinning rate across all datasets. minApps filters
// single-app categories that would otherwise report 100%.
func (s *Study) TableCategories(platform appmodel.Platform, topN, minApps int) []CategoryRow {
	type agg struct{ apps, pins int }
	perCat := map[string]*agg{}
	seen := map[string]bool{}
	for _, e := range datasetList(s.World) {
		if e.Cell.Platform != platform {
			continue
		}
		for _, r := range s.DatasetResults(e.DS) {
			key := r.App.ID
			if seen[key] {
				continue
			}
			seen[key] = true
			a := perCat[r.App.Category]
			if a == nil {
				a = &agg{}
				perCat[r.App.Category] = a
			}
			a.apps++
			if r.Pinned() {
				a.pins++
			}
		}
	}
	// Popularity ranks by app count.
	type catCount struct {
		cat  string
		apps int
	}
	var counts []catCount
	for c, a := range perCat {
		counts = append(counts, catCount{c, a.apps})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].apps != counts[j].apps {
			return counts[i].apps > counts[j].apps
		}
		return counts[i].cat < counts[j].cat
	})
	rank := map[string]int{}
	for i, c := range counts {
		rank[c.cat] = i + 1
	}

	var rows []CategoryRow
	for c, a := range perCat {
		if a.pins == 0 || a.apps < minApps {
			continue
		}
		rows = append(rows, CategoryRow{
			Category: c, Rank: rank[c], Apps: a.apps, Pinning: a.pins,
			Pct: stats.Percent(a.pins, a.apps),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Pct != rows[j].Pct {
			return rows[i].Pct > rows[j].Pct
		}
		return rows[i].Category < rows[j].Category
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// --- Figures 2, 3, 4 ----------------------------------------------------------

// Figure2 summarizes common-dataset pinning splits.
type Figure2 struct {
	Pairs       int
	PinsEither  int
	PinsBoth    int
	AndroidOnly int
	IOSOnly     int
	// Of PinsBoth:
	Consistent    int
	IdenticalSets int
	Inconsistent  int
	Inconclusive  int
}

// Figure2Data computes the §5.1 split.
func (s *Study) Figure2Data() Figure2 {
	var f Figure2
	for _, p := range s.Pairs {
		f.Pairs++
		a := p.Analysis
		switch a.Outcome {
		case dynamicanalysis.PinsBoth:
			f.PinsEither++
			f.PinsBoth++
			switch a.Class {
			case dynamicanalysis.ClassConsistent:
				f.Consistent++
				if a.IdenticalSets {
					f.IdenticalSets++
				}
			case dynamicanalysis.ClassInconsistent:
				f.Inconsistent++
			default:
				f.Inconclusive++
			}
		case dynamicanalysis.PinsAndroidOnly:
			f.PinsEither++
			f.AndroidOnly++
		case dynamicanalysis.PinsIOSOnly:
			f.PinsEither++
			f.IOSOnly++
		}
	}
	return f
}

// HeatRow is a Figure 3/4 heatmap row.
type HeatRow struct {
	Name string
	// Jaccard of the pinned sets (Figure 3 first column).
	Jaccard float64
	// PinnedAOnNotI / PinnedIOnNotA: fraction of one platform's pinned
	// domains observed unpinned on the other.
	PinnedAOnNotI float64
	PinnedIOnNotA float64
}

// Figure3Data lists both-platform pinners with inconsistent pinning.
func (s *Study) Figure3Data() []HeatRow {
	var out []HeatRow
	for _, p := range s.Pairs {
		a := p.Analysis
		if a.Outcome != dynamicanalysis.PinsBoth || a.Class != dynamicanalysis.ClassInconsistent {
			continue
		}
		out = append(out, HeatRow{
			Name: p.Name, Jaccard: a.JaccardPinned,
			PinnedAOnNotI: a.PinnedAndroidSeenUnpinnedIOS,
			PinnedIOnNotA: a.PinnedIOSSeenUnpinnedAndroid,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Figure4Data lists exclusive pinners' cross-platform observations,
// separated by pinning platform, including the inconclusive ones (all-zero
// rows in the paper's heatmap).
func (s *Study) Figure4Data() (android, ios []HeatRow) {
	for _, p := range s.Pairs {
		a := p.Analysis
		row := HeatRow{Name: p.Name,
			PinnedAOnNotI: a.PinnedAndroidSeenUnpinnedIOS,
			PinnedIOnNotA: a.PinnedIOSSeenUnpinnedAndroid,
		}
		switch a.Outcome {
		case dynamicanalysis.PinsAndroidOnly:
			android = append(android, row)
		case dynamicanalysis.PinsIOSOnly:
			ios = append(ios, row)
		}
	}
	sort.Slice(android, func(i, j int) bool { return android[i].Name < android[j].Name })
	sort.Slice(ios, func(i, j int) bool { return ios[i].Name < ios[j].Name })
	return android, ios
}

// --- Figure 5 -------------------------------------------------------------------

// Fig5Bar is one app's domain split: pinned/unpinned × first/third party.
type Fig5Bar struct {
	AppID                string
	FPPinned, FPUnpinned int
	TPPinned, TPUnpinned int
}

// Figure5Data computes the per-app pinned/not-pinned domain splits with
// first/third-party attribution for Popular+Random pinners of a platform.
func (s *Study) Figure5Data(platform appmodel.Platform) []Fig5Bar {
	var out []Fig5Bar
	seen := map[string]bool{}
	for _, e := range datasetList(s.World) {
		if e.Cell.Platform != platform || e.Cell.Dataset == "Common" {
			continue
		}
		for _, r := range s.DatasetResults(e.DS) {
			if seen[r.App.ID] || !r.Pinned() {
				continue
			}
			seen[r.App.ID] = true
			bar := Fig5Bar{AppID: r.App.ID}
			pinned := stats.Set(r.Dyn.PinnedDests())
			for _, d := range r.Dyn.ContactedDests() {
				fp := dynamicanalysis.IsFirstParty(d, r.App.Developer, r.App.Name, s.World.Whois)
				switch {
				case pinned[d] && fp:
					bar.FPPinned++
				case pinned[d]:
					bar.TPPinned++
				case fp:
					bar.FPUnpinned++
				default:
					bar.TPUnpinned++
				}
			}
			out = append(out, bar)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AppID < out[j].AppID })
	return out
}

// Figure5Summary aggregates the claims made around Figure 5.
type Figure5Summary struct {
	Apps int
	// PinsAllFP / HasUnpinnedFP: apps contacting first parties that pin
	// all vs leave some unpinned.
	PinsAllFP, HasUnpinnedFP int
	// PinsAllContacted: apps pinning every destination they contact.
	PinsAllContacted int
	// PinnedDestsFP / PinnedDestsTP: destination-level attribution.
	PinnedDestsFP, PinnedDestsTP int
}

// Figure5Stats summarizes a platform's Figure 5 bars.
func (s *Study) Figure5Stats(platform appmodel.Platform) Figure5Summary {
	var f Figure5Summary
	for _, b := range s.Figure5Data(platform) {
		f.Apps++
		if b.FPPinned > 0 && b.FPUnpinned == 0 {
			f.PinsAllFP++
		}
		if b.FPUnpinned > 0 {
			f.HasUnpinnedFP++
		}
		if b.FPUnpinned == 0 && b.TPUnpinned == 0 {
			f.PinsAllContacted++
		}
		f.PinnedDestsFP += b.FPPinned
		f.PinnedDestsTP += b.TPPinned
	}
	return f
}

// --- Table 6 and §5.3 ------------------------------------------------------------

// Table6Row classifies pinned destinations' PKI for one platform.
type Table6Row struct {
	Platform    appmodel.Platform
	DefaultPKI  int
	CustomPKI   int
	SelfSigned  int
	Unavailable int
}

// Table6 classifies each platform's pinned destinations.
func (s *Study) Table6() []Table6Row {
	rows := map[appmodel.Platform]*Table6Row{
		appmodel.Android: {Platform: appmodel.Android},
		appmodel.IOS:     {Platform: appmodel.IOS},
	}
	for _, plat := range appmodel.Platforms {
		dests := s.pinnedDestsByPlatform(plat)
		for _, d := range dests {
			p := s.Probes[d]
			if p == nil {
				continue
			}
			switch {
			case p.Unavailable:
				rows[plat].Unavailable++
			case p.DefaultPKI:
				rows[plat].DefaultPKI++
			case p.SelfSigned:
				rows[plat].SelfSigned++
			default:
				rows[plat].CustomPKI++
			}
		}
	}
	return []Table6Row{*rows[appmodel.Android], *rows[appmodel.IOS]}
}

// pinnedDestsByPlatform returns the unique pinned destinations of a
// platform, sorted.
func (s *Study) pinnedDestsByPlatform(plat appmodel.Platform) []string {
	set := map[string]bool{}
	for _, r := range s.results {
		if r.App.Platform != plat {
			continue
		}
		for _, d := range r.Dyn.PinnedDests() {
			set[d] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// PinTargetStats is the §5.3.2 CA-vs-leaf analysis over certificates that
// appear both statically (in app packages) and dynamically (in chains
// served at the app's pinned destinations), matched by common name.
type PinTargetStats struct {
	MatchedCerts int
	CACerts      int
	LeafCerts    int
	AppsMatched  int
	PinningApps  int
}

// PinTargets computes the CA/leaf split.
func (s *Study) PinTargets() PinTargetStats {
	var out PinTargetStats
	for _, r := range s.results {
		if !r.Pinned() || r.Static == nil {
			continue
		}
		out.PinningApps++
		// Names served at this app's pinned destinations.
		servedNames := map[string]bool{}
		servedCA := map[string]bool{}
		for _, d := range r.Dyn.PinnedDests() {
			p := s.Probes[d]
			if p == nil || p.Chain == nil {
				continue
			}
			for i, c := range p.Chain {
				servedNames[c.Subject.CommonName] = true
				if i > 0 || c.IsCA {
					servedCA[c.Subject.CommonName] = true
				}
			}
		}
		matched := false
		seenCN := map[string]bool{}
		for _, fc := range r.Static.Certs {
			cn := fc.Cert.Subject.CommonName
			if !servedNames[cn] || seenCN[cn] {
				continue
			}
			seenCN[cn] = true
			matched = true
			out.MatchedCerts++
			if servedCA[cn] {
				out.CACerts++
			} else {
				out.LeafCerts++
			}
		}
		// Pins resolved through CT count too (the paper's §4.1.3 path).
		resolved, _ := staticanalysis.ResolvePins(r.Static, s.World.CT)
		for _, certs := range resolved {
			for _, c := range certs {
				cn := c.Subject.CommonName
				if !servedNames[cn] || seenCN[cn] {
					continue
				}
				seenCN[cn] = true
				matched = true
				out.MatchedCerts++
				if servedCA[cn] {
					out.CACerts++
				} else {
					out.LeafCerts++
				}
			}
		}
		if matched {
			out.AppsMatched++
		}
	}
	return out
}

// RotationStats is the §5.3.3 analysis: leaf-pinned destinations whose
// servers rotated certificates during the study while connections stayed
// pinned (evidence of SPKI pinning / key reuse).
type RotationStats struct {
	// LeafPinnedDests: pinned destinations whose embedded material matches
	// the served leaf's subject.
	LeafPinnedDests int
	// ServedNewLeaf: of those, destinations serving a different certificate
	// than the embedded one (renewed server-side) yet still pinned.
	ServedNewLeaf int
	// KeyReused: rotated leaves whose SubjectPublicKeyInfo matches the
	// embedded certificate — the mechanism that keeps pins alive.
	KeyReused int
}

// Rotations computes the leaf-rotation statistics. Candidate "shipped"
// leaf certificates come from raw certs embedded in packages and from SPKI
// pins resolved through the CT log (§4.1.3) — the log retains the
// pre-renewal certificate, so a served leaf that differs from a logged
// sibling with the same key is direct evidence of key-reusing rotation.
func (s *Study) Rotations() RotationStats {
	var out RotationStats
	seen := map[string]bool{}
	for _, r := range s.results {
		if !r.Pinned() || r.Static == nil {
			continue
		}
		var resolved map[string][]*x509.Certificate
		for _, d := range r.Dyn.PinnedDests() {
			if seen[d] {
				continue
			}
			p := s.Probes[d]
			if p == nil || p.Chain == nil {
				continue
			}
			leaf := p.Chain.Leaf()

			var candidates []*x509.Certificate
			for _, fc := range r.Static.Certs {
				candidates = append(candidates, fc.Cert)
			}
			if resolved == nil {
				resolved, _ = staticanalysis.ResolvePins(r.Static, s.World.CT)
			}
			// Iterate resolved pins in sorted key order: candidate order
			// decides which certificate the leaf-comparison below settles
			// on, so map order must not reach it.
			rkeys := make([]string, 0, len(resolved))
			for k := range resolved {
				rkeys = append(rkeys, k)
			}
			sort.Strings(rkeys)
			for _, k := range rkeys {
				candidates = append(candidates, resolved[k]...)
			}

			for _, cand := range candidates {
				if cand.IsCA || cand.Subject.CommonName != leaf.Subject.CommonName {
					continue
				}
				seen[d] = true
				out.LeafPinnedDests++
				if !cand.Equal(leaf) {
					out.ServedNewLeaf++
					if pki.NewPin(cand, pki.SHA256).Matches(leaf) {
						out.KeyReused++
					}
				}
				break
			}
		}
	}
	return out
}

// ExpiredAccepted counts pinned destinations whose served chain contains a
// certificate expired at study time (§5.3.4 — the paper, and we, find
// none: pinning apps still run full validation).
func (s *Study) ExpiredAccepted() int {
	n := 0
	for _, p := range s.Probes {
		if p.Chain == nil {
			continue
		}
		for _, c := range p.Chain {
			if pki.StudyEpoch.After(c.NotAfter) || pki.StudyEpoch.Before(c.NotBefore) {
				n++
				break
			}
		}
	}
	return n
}

// --- Table 7 -----------------------------------------------------------------

// Table7 attributes embedded certificate material to third-party
// frameworks. minApps mirrors the paper's >5-apps review threshold, scaled.
func (s *Study) Table7(platform appmodel.Platform, topN, minApps int) []staticanalysis.AttributedFramework {
	var reports []*staticanalysis.Report
	for _, r := range s.results {
		if r.App.Platform == platform && r.Static != nil {
			reports = append(reports, r.Static)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].AppID < reports[j].AppID })
	fw := staticanalysis.AttributeFrameworks(reports, platform, minApps)
	if topN > 0 && len(fw) > topN {
		fw = fw[:topN]
	}
	return fw
}

// --- Table 8 -----------------------------------------------------------------

// Table8Cell is one dataset/platform weak-cipher measurement.
type Table8Cell struct {
	Cell DatasetCell
	// OverallApps/OverallWeak: apps with >=1 connection offering weak
	// suites, over all apps.
	OverallApps, OverallWeak int
	// PinningApps/PinnedWeak: pinning apps with >=1 PINNED connection
	// offering weak suites.
	PinningApps, PinnedWeak int
}

// Table8 computes weak-cipher prevalence overall vs in pinned connections.
func (s *Study) Table8() []Table8Cell {
	var out []Table8Cell
	for _, e := range datasetList(s.World) {
		cell := Table8Cell{Cell: e.Cell}
		for _, r := range s.DatasetResults(e.DS) {
			cell.OverallApps++
			if r.WeakAnyConn {
				cell.OverallWeak++
			}
			if r.Pinned() {
				cell.PinningApps++
				if r.WeakPinnedConn {
					cell.PinnedWeak++
				}
			}
		}
		out = append(out, cell)
	}
	return out
}

// --- Table 9 -----------------------------------------------------------------

// Table9Row is one PII kind's prevalence comparison on one platform.
type Table9Row struct {
	Platform appmodel.Platform
	Kind     pii.Kind
	// Destination-level prevalence among observed (decrypted) traffic.
	PinnedWith, PinnedTotal       int
	NonPinnedWith, NonPinnedTotal int
	PctPinned, PctNonPinned       float64
	ChiSq, PValue                 float64
	Significant                   bool
}

// Table9 compares PII prevalence in pinned vs non-pinned destinations of
// pinning apps, with chi-square significance (p < 0.05).
func (s *Study) Table9() []Table9Row {
	var out []Table9Row
	for _, plat := range appmodel.Platforms {
		type bucket struct{ with, total int }
		pinned := map[pii.Kind]*bucket{}
		nonPinned := map[pii.Kind]*bucket{}
		for _, k := range pii.AllKinds {
			pinned[k] = &bucket{}
			nonPinned[k] = &bucket{}
		}
		for _, r := range s.results {
			if r.App.Platform != plat || !r.Pinned() || r.ObservedDests == nil {
				continue
			}
			pinnedSet := stats.Set(r.Dyn.PinnedDests())
			for d := range r.ObservedDests {
				target := nonPinned
				if pinnedSet[d] {
					target = pinned
				}
				for _, k := range pii.AllKinds {
					target[k].total++
					if r.DestPII[d][k] {
						target[k].with++
					}
				}
			}
		}
		for _, k := range pii.AllKinds {
			p, n := pinned[k], nonPinned[k]
			chi, pv := stats.ChiSquare2x2(
				float64(p.with), float64(p.total-p.with),
				float64(n.with), float64(n.total-n.with))
			// The chi-square approximation needs adequate expected counts
			// (the classic >=5 rule); sparse rows never earn a star.
			total := float64(p.total + n.total)
			sig := pv < 0.05
			if total > 0 {
				withRate := float64(p.with+n.with) / total
				for _, exp := range []float64{
					float64(p.total) * withRate, float64(p.total) * (1 - withRate),
					float64(n.total) * withRate, float64(n.total) * (1 - withRate),
				} {
					if exp < 5 {
						sig = false
					}
				}
			}
			out = append(out, Table9Row{
				Platform: plat, Kind: k,
				PinnedWith: p.with, PinnedTotal: p.total,
				NonPinnedWith: n.with, NonPinnedTotal: n.total,
				PctPinned:    stats.Percent(p.with, p.total),
				PctNonPinned: stats.Percent(n.with, n.total),
				ChiSq:        chi, PValue: pv, Significant: sig,
			})
		}
	}
	return out
}

// --- §4.3 circumvention -------------------------------------------------------

// CircumventionStats summarizes hook success per platform.
type CircumventionStats struct {
	Platform     appmodel.Platform
	Dests        int // unique pinned destinations attempted
	Circumvented int
	Pct          float64
}

// Circumvention computes the §4.3 destination rates.
func (s *Study) Circumvention() []CircumventionStats {
	var out []CircumventionStats
	for _, plat := range appmodel.Platforms {
		agg := map[string]bool{}
		for _, r := range s.results {
			if r.App.Platform != plat {
				continue
			}
			for d, ok := range r.CircumventedDests {
				agg[d] = agg[d] || ok
			}
		}
		cs := CircumventionStats{Platform: plat, Dests: len(agg)}
		for _, ok := range agg {
			if ok {
				cs.Circumvented++
			}
		}
		cs.Pct = stats.Percent(cs.Circumvented, cs.Dests)
		out = append(out, cs)
	}
	return out
}
