package core

// shardnet.go lifts the sharded study over internal/shardnet's message
// transport: the coordinator ships each worker the run's identity — the
// journalMeta the slice journals already carry, i.e. the seed and
// parameters, never data — and the worker rebuilds the world, the crypto
// plane and its lab from that alone. A transported run therefore leaves
// behind the same slice journals an in-process RunSharded leaves behind,
// and MergeShards consumes them unchanged; the merged export is held
// byte-identical to a single-process run by the chaos drills and the
// public tests.
//
// Two entry points run the whole fleet in-process: RunShardedNet over the
// deterministic simulated network (with the fault plan's network chaos
// injected), RunShardedTCP over real loopback TCP. ServeShards and
// ConnectShardWorker split coordinator and worker across processes — the
// cross-machine recipe in the README.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"pinscope/internal/appmodel"
	"pinscope/internal/faultinject"
	"pinscope/internal/pki"
	"pinscope/internal/shardcoord"
	"pinscope/internal/shardnet"
	"pinscope/internal/worldgen"
)

// netRunConfig is the Welcome payload: the run identity a worker needs to
// rebuild its bench. Run is the same journalMeta every slice journal
// carries, so a worker and a journal can never disagree about what run
// they belong to.
type netRunConfig struct {
	Run        journalMeta `json:"run"`
	Shards     int         `json:"shards"`
	ColdCrypto bool        `json:"cold_crypto,omitempty"`
}

func encodeNetRunConfig(cfg Config, shards int) ([]byte, error) {
	return json.Marshal(netRunConfig{Run: metaFor(cfg), Shards: shards, ColdCrypto: cfg.ColdCrypto})
}

// benchFromRunConfig rebuilds a worker bench from the wire run config —
// the worker side of "ship the seed, not the data". The round-trip is
// verified: the rebuilt config must reproduce the shipped journalMeta
// exactly, so a journalMeta field that this decoder forgets to restore
// fails loudly instead of silently measuring a different run.
func benchFromRunConfig(raw []byte) (shardnet.Bench, error) {
	var rc netRunConfig
	if err := json.Unmarshal(raw, &rc); err != nil {
		return nil, fmt.Errorf("core: run config: %w", err)
	}
	if rc.Run.Format != journalFormatVersion {
		return nil, fmt.Errorf("core: run config format %d, this worker speaks %d", rc.Run.Format, journalFormatVersion)
	}
	if rc.Shards <= 0 {
		return nil, fmt.Errorf("core: run config has %d shards", rc.Shards)
	}
	cfg := Config{
		Params:     rc.Run.Params,
		Window:     rc.Run.Window,
		Retries:    rc.Run.Retries,
		Release:    rc.Run.Release,
		ColdCrypto: rc.ColdCrypto,
	}
	if rc.Run.FaultSeed != 0 || rc.Run.FaultRates != (faultinject.Rates{}) {
		cfg.Faults = faultinject.NewPlan(rc.Run.FaultSeed, rc.Run.FaultRates)
	}
	if got := metaFor(cfg); got != rc.Run {
		return nil, errors.New("core: run config did not round-trip; a run-identity field is not being shipped")
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	if cfg.Release != "" {
		pts, err := selectPoints(w.Timeline, []string{cfg.Release})
		if err != nil {
			return nil, fmt.Errorf("core: run config release: %w", err)
		}
		android, ios, err := w.Timeline.StoresAt(pts[0])
		if err != nil {
			return nil, fmt.Errorf("core: run config release: %w", err)
		}
		cfg.Stores = map[appmodel.Platform]*pki.RootStore{
			appmodel.Android: android,
			appmodel.IOS:     ios,
		}
	}
	uni := shardUniverse(w)
	ranges := sliceRanges(len(uni), rc.Shards)
	var plane *cryptoPlane
	if !cfg.ColdCrypto {
		if plane, err = newCryptoPlane(cfg, w); err != nil {
			return nil, err
		}
	}
	lab, err := newLab(cfg, w, plane)
	if err != nil {
		return nil, err
	}
	return &shardBench{uni: uni, ranges: ranges, lab: lab}, nil
}

// netKillTap renders the plan's kill family as a shardnet worker KillTap:
// the holder dies right before sending result AfterResults, so exactly
// AfterResults frames of that epoch reach the coordinator intact. Fires
// once per slice, like every faultinject member.
func netKillTap(plan *faultinject.ShardPlan) func(slice, item int) (int, bool) {
	if plan == nil || len(plan.Kills) == 0 {
		return nil
	}
	var mu sync.Mutex
	fired := map[int]bool{}
	return func(slice, item int) (int, bool) {
		k := plan.KillFor(slice)
		if k == nil || k.AfterResults != item {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if fired[slice] {
			return 0, false
		}
		fired[slice] = true
		return k.TornBytes, true
	}
}

func toNetSlices(slices []shardcoord.Slice) []shardnet.Slice {
	out := make([]shardnet.Slice, 0, len(slices))
	for _, s := range slices {
		out = append(out, shardnet.Slice{Path: s.Path, Meta: s.Meta, Items: s.Items})
	}
	return out
}

// NetShardStats reports a transported sharded run: the coordinator's
// transport accounting plus the injected worker deaths that fired.
type NetShardStats struct {
	Net           shardnet.Stats
	WorkersKilled int
}

// netRunSetup is the shared front half of every transported run.
func netRunSetup(cfg *Config, sc ShardedConfig) ([]shardnet.Slice, []byte, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	if sc.Shards <= 0 {
		return nil, nil, errors.New("core: sharded run needs at least one shard")
	}
	if cfg.Journal != nil || cfg.Kill != nil {
		return nil, nil, errors.New("core: sharded runs journal per slice; Config.Journal and Config.Kill must be nil")
	}
	if sc.Dir == "" {
		return nil, nil, errors.New("core: sharded run needs a journal directory")
	}
	if err := os.MkdirAll(sc.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("core: shard dir: %w", err)
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, nil, err
	}
	uni := shardUniverse(w)
	slices, _, err := shardSlices(*cfg, sc, len(uni))
	if err != nil {
		return nil, nil, err
	}
	rc, err := encodeNetRunConfig(*cfg, sc.Shards)
	if err != nil {
		return nil, nil, err
	}
	return toNetSlices(slices), rc, nil
}

// runNetFleet drives one coordinator plus an in-process worker fleet to
// completion and folds their outcomes together. Worker errors are
// expected noise when the run completed (a worker mid-reconnect when the
// listener closes gives up harmlessly); when the coordinator failed they
// are joined in for diagnosis.
func runNetFleet(coord *shardnet.Coordinator, workers int,
	runWorker func(i int) error) (*NetShardStats, error) {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runWorker(i)
		}(i)
	}
	stats, err := coord.Run()
	wg.Wait()
	out := &NetShardStats{}
	if stats != nil {
		out.Net = *stats
	}
	var werrs []error
	for _, e := range errs {
		if errors.Is(e, shardnet.ErrWorkerKilled) {
			out.WorkersKilled++
		} else if e != nil && err != nil {
			werrs = append(werrs, e)
		}
	}
	if err != nil {
		return out, errors.Join(append([]error{err}, werrs...)...)
	}
	return out, nil
}

// RunShardedNet executes the study as a transported sharded run over the
// deterministic simulated network: same slices, same journals, same merge
// as RunSharded, with the coordinator and workers talking shardnet frames
// under the fault plan's network chaos (sc.Faults.Net), worker kills
// rendered as mid-stream connection deaths, and lease expiries covered by
// the network faults themselves (a partition is heartbeat silence).
func RunShardedNet(cfg Config, sc ShardedConfig) (*NetShardStats, error) {
	slices, rc, err := netRunSetup(&cfg, sc)
	if err != nil {
		return nil, err
	}
	net := shardnet.NewSimNet(sc.Faults.NetFaults())
	coord, err := shardnet.NewCoordinator(shardnet.Config{
		Listener:        net.Listener(),
		Clock:           net,
		Slices:          slices,
		RunConfig:       rc,
		LeaseTTL:        sc.LeaseTTL,
		BackoffSeed:     cfg.Params.Seed,
		FailWhenDrained: true,
	})
	if err != nil {
		return nil, err
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = sc.Shards
	}
	kill := netKillTap(sc.Faults)
	return runNetFleet(coord, workers, func(i int) error {
		return shardnet.RunWorker(net.Dialer(), shardnet.WorkerOptions{
			Clock:       net,
			NewBench:    benchFromRunConfig,
			Reconnects:  16,
			BackoffSeed: cfg.Params.Seed,
			Scope:       "sim/" + strconv.Itoa(i),
			KillTap:     kill,
		})
	})
}

// TCP-side timing: wall-clock analogues of the simulated network's
// tick-denominated lease TTL, generous enough for loopback and LAN.
const (
	tcpLeaseTTL    = 2 * time.Second
	tcpIdleTimeout = 500 * time.Millisecond
)

// RunShardedTCP is RunShardedNet over real loopback TCP: the coordinator
// listens on 127.0.0.1, the worker fleet dials it, and every frame
// crosses an actual socket. Network chaos is not injected — the wire is
// real — but injected worker kills still fire, leaving torn wire frames
// the receiver's framing must reject.
func RunShardedTCP(cfg Config, sc ShardedConfig) (*NetShardStats, error) {
	slices, rc, err := netRunSetup(&cfg, sc)
	if err != nil {
		return nil, err
	}
	ln, err := shardnet.ListenTCP("127.0.0.1:0", shardnet.TCPOptions{})
	if err != nil {
		return nil, err
	}
	coord, err := shardnet.NewCoordinator(shardnet.Config{
		Listener:        ln,
		Clock:           shardnet.WallClock(),
		Slices:          slices,
		RunConfig:       rc,
		LeaseTTL:        int64(tcpLeaseTTL),
		BackoffSeed:     cfg.Params.Seed,
		FailWhenDrained: true,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = sc.Shards
	}
	kill := netKillTap(sc.Faults)
	addr := ln.Addr()
	return runNetFleet(coord, workers, func(i int) error {
		return shardnet.RunWorker(shardnet.TCPDialer{Addr: addr}, shardnet.WorkerOptions{
			Clock:       shardnet.WallClock(),
			NewBench:    benchFromRunConfig,
			IdleTimeout: int64(tcpIdleTimeout),
			Reconnects:  16,
			BackoffSeed: cfg.Params.Seed,
			BackoffBase: int64(50 * time.Millisecond),
			Scope:       "tcp/" + strconv.Itoa(i),
			KillTap:     kill,
		})
	})
}

// ServeShards runs the coordinator half of a cross-machine sharded study:
// it listens on addr, ships every connecting worker the run config, and
// returns when all slices are journaled in sc.Dir (merge them with
// MergeShards). It waits for workers rather than failing when none are
// connected, so workers may be started after — or restarted during — the
// run; an interrupted serve resumes from the journals like any sharded
// run.
func ServeShards(cfg Config, sc ShardedConfig, addr string) (*NetShardStats, error) {
	slices, rc, err := netRunSetup(&cfg, sc)
	if err != nil {
		return nil, err
	}
	ln, err := shardnet.ListenTCP(addr, shardnet.TCPOptions{})
	if err != nil {
		return nil, err
	}
	coord, err := shardnet.NewCoordinator(shardnet.Config{
		Listener:    ln,
		Clock:       shardnet.WallClock(),
		Slices:      slices,
		RunConfig:   rc,
		LeaseTTL:    int64(tcpLeaseTTL),
		BackoffSeed: cfg.Params.Seed,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	stats, err := coord.Run()
	out := &NetShardStats{}
	if stats != nil {
		out.Net = *stats
	}
	return out, err
}

// ConnectShardWorker runs the worker half of a cross-machine sharded
// study: it dials the coordinator at addr, rebuilds the world from the
// run config it is handed, and works granted slices until the coordinator
// reports the run done.
func ConnectShardWorker(addr string, scope string) error {
	return shardnet.RunWorker(shardnet.TCPDialer{Addr: addr}, shardnet.WorkerOptions{
		Clock:       shardnet.WallClock(),
		NewBench:    benchFromRunConfig,
		IdleTimeout: int64(tcpIdleTimeout),
		Reconnects:  60,
		BackoffBase: int64(250 * time.Millisecond),
		Scope:       "cli/" + scope,
	})
}

// DeriveNetPlan derives the seeded fault plan for a transported sharded
// run of cfg cut into sc.Shards slices — worker kills, lease expiries,
// and the network fault family (delays, drops, duplicate delivery,
// partitions), capped so at least one shard always progresses on a
// never-severed link. Rate 0 yields nil. The same (config, shape, rate)
// always derives the same plan.
func DeriveNetPlan(cfg Config, sc ShardedConfig, rate float64) (*faultinject.ShardPlan, error) {
	if sc.Shards <= 0 {
		return nil, errors.New("core: sharded run needs at least one shard")
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = sc.Shards
	}
	ranges := sliceRanges(len(shardUniverse(w)), sc.Shards)
	items := make([]int, len(ranges))
	for i, rg := range ranges {
		items[i] = rg[1]
	}
	return faultinject.DeriveShardPlan(cfg.Params.Seed, rate, workers, items), nil
}
