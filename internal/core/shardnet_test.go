package core

import (
	"bytes"
	"strings"
	"testing"

	"pinscope/internal/faultinject"
	"pinscope/internal/worldgen"
)

// netShardedExport runs cfg as a transported sharded run over the
// simulated network and merges the journals — the transport analogue of
// shardedExport.
func netShardedExport(t *testing.T, cfg Config, sc ShardedConfig) ([]byte, *NetShardStats) {
	t.Helper()
	stats, err := RunShardedNet(cfg, sc)
	if err != nil {
		t.Fatalf("transported sharded run: %v (stats %+v)", err, stats)
	}
	var buf bytes.Buffer
	if err := MergeShards(&buf, cfg, sc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

func TestShardNetSimMergesByteIdentical(t *testing.T) {
	// The tentpole acceptance shape: a transported sharded run under a
	// seeded sweep of every network fault kind — a delayed frame, a
	// dropped frame (severed conn), duplicate delivery, a partition long
	// enough to expire a lease, plus a mid-stream worker death — must
	// merge into the exact bytes an unsharded same-seed run exports.
	cfg := microCfg(29)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0 // transported runs own their worker fleet
	sc := ShardedConfig{
		Shards:  4,
		Workers: 3,
		Dir:     t.TempDir(),
		Faults: &faultinject.ShardPlan{
			Kills: []faultinject.ShardKill{{Slice: 2, AfterResults: 1, TornBytes: 7}},
			Net: &faultinject.NetChaos{
				Delays:     []faultinject.NetDelay{{Slice: 0, Item: 1, Ticks: faultinject.NetTTL / 2}},
				Drops:      []faultinject.NetDrop{{Slice: 1, Item: 1}},
				Dups:       []faultinject.NetDup{{Slice: 2, Item: 0}},
				Partitions: []faultinject.NetPartition{{Slice: 3, AfterItem: 0, Ticks: 3 * faultinject.NetTTL / 2}},
			},
		},
	}
	merged, stats := netShardedExport(t, shardedCfg, sc)
	if !bytes.Equal(merged, single) {
		t.Fatalf("transported sharded merge diverges from single-process export (%d vs %d bytes)",
			len(merged), len(single))
	}

	// The faults must actually have fired, or the equivalence proved
	// nothing.
	if stats.WorkersKilled != 1 {
		t.Fatalf("WorkersKilled = %d, want 1", stats.WorkersKilled)
	}
	if stats.Net.Duplicates < 1 {
		t.Fatalf("Duplicates = %d, want >= 1 (injected duplicate never arrived twice)", stats.Net.Duplicates)
	}
	if stats.Net.ConnDrops < 2 { // the dropped frame severs one conn, the kill another
		t.Fatalf("ConnDrops = %d, want >= 2", stats.Net.ConnDrops)
	}
	if stats.Net.Expired < 1 { // the partition must outlive a lease TTL
		t.Fatalf("Expired = %d, want >= 1 (partition never expired a lease)", stats.Net.Expired)
	}
	if stats.Net.Reassigned < 1 {
		t.Fatalf("Reassigned = %d, want >= 1", stats.Net.Reassigned)
	}
}

func TestShardNetTCPMergesByteIdentical(t *testing.T) {
	// Same equivalence over real loopback TCP: every frame crosses a
	// socket, a killed worker leaves a torn wire frame the receiver's
	// framing must reject, and the merge still matches the single-process
	// bytes.
	cfg := microCfg(71)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0
	sc := ShardedConfig{
		Shards:  2,
		Workers: 2,
		Dir:     t.TempDir(),
		Faults: &faultinject.ShardPlan{
			Kills: []faultinject.ShardKill{{Slice: 1, AfterResults: 1, TornBytes: 5}},
		},
	}
	merged, stats := netShardedExport(t, shardedCfg, sc)
	if !bytes.Equal(merged, single) {
		t.Fatalf("TCP sharded merge diverges from single-process export (%d vs %d bytes)",
			len(merged), len(single))
	}
	if stats.WorkersKilled != 1 {
		t.Fatalf("WorkersKilled = %d, want 1", stats.WorkersKilled)
	}
	if stats.Net.Slices != 2 || stats.Net.Granted < 2 {
		t.Fatalf("stats %+v: want 2 slices and >= 2 grants", stats.Net)
	}
}

func TestShardNetRerunResumesAfterFleetDeath(t *testing.T) {
	// One worker, one kill: the whole fleet dies with work outstanding
	// and the coordinator must fail loudly rather than wait forever. A
	// rerun over the same directory resumes from the journals — the
	// frames admitted before the death are never recomputed — and the
	// merge still matches the unsharded export.
	cfg := microCfg(41)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0
	dir := t.TempDir()
	sc := ShardedConfig{Shards: 3, Workers: 1, Dir: dir,
		Faults: &faultinject.ShardPlan{Kills: []faultinject.ShardKill{{Slice: 0, AfterResults: 2}}}}
	if _, err := RunShardedNet(shardedCfg, sc); err == nil {
		t.Fatal("run with its only worker killed reported success")
	} else if !strings.Contains(err.Error(), "all workers disconnected") {
		t.Fatalf("fleet-death error = %v, want all-workers-disconnected", err)
	}

	// Merging a half-finished run must fail loudly, not emit partial data.
	if err := MergeShards(&bytes.Buffer{}, shardedCfg, ShardedConfig{Shards: 3, Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "incomplete run") {
		t.Fatalf("merge of interrupted run: %v, want incomplete-run error", err)
	}

	rerun := ShardedConfig{Shards: 3, Workers: 1, Dir: dir}
	merged, stats := netShardedExport(t, shardedCfg, rerun)
	if stats.Net.ResumedFrames < 2 {
		t.Fatalf("rerun ResumedFrames = %d, want >= 2", stats.Net.ResumedFrames)
	}
	if !bytes.Equal(merged, single) {
		t.Fatal("resumed transported merge diverges from single-process export")
	}
}

func TestShardNetDerivedPlanMergesByteIdentical(t *testing.T) {
	// Same equivalence under the derived (seeded) fault plan with its
	// network family — the path the chaos sweep's network drill exercises.
	cfg := microCfg(57)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	ranges := sliceRanges(len(shardUniverse(w)), 4)
	items := make([]int, len(ranges))
	for i, rg := range ranges {
		items[i] = rg[1]
	}
	plan := faultinject.DeriveShardPlan(cfg.Params.Seed, 1.0, 4, items)
	if plan == nil || !plan.Net.Any() {
		t.Fatalf("derived plan injected no network chaos: %+v", plan)
	}
	sc := ShardedConfig{Shards: 4, Workers: 4, Dir: t.TempDir(), Faults: plan}
	merged, _ := netShardedExport(t, shardedCfg, sc)
	if !bytes.Equal(merged, single) {
		t.Fatalf("derived-plan transported merge diverges (%d vs %d bytes)", len(merged), len(single))
	}
}
