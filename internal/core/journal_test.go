package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
	"pinscope/internal/worldgen"
)

// microCfg is deliberately smaller than TestConfig: the kill sweep below
// runs one partial study plus one resumed study per journal frame, so the
// world must stay tiny for the sweep to be O(seconds).
func microCfg(seed int64) Config {
	return Config{
		Params: worldgen.Params{
			Seed:       seed,
			CommonSize: 3, PopularSize: 4, RandomSize: 4,
			StoreAndroid: 400, StoreIOS: 390,
			CrossProducts: 4, PopularCut: 120,
		},
		Window:  30,
		Workers: 1, // one worker => the Nth journal append is the Nth result
	}
}

func runJournaled(t *testing.T, cfg Config, path string, resume bool) *Study {
	t.Helper()
	s, err := RunJournaled(cfg, path, resume)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJournaledRunMatchesPlainRun(t *testing.T) {
	plain := runCfg(t, microCfg(71))
	path := filepath.Join(t.TempDir(), "run.wal")
	journaled := runJournaled(t, microCfg(71), path, false)

	if !bytes.Equal(exportBytes(t, plain), exportBytes(t, journaled)) {
		t.Fatal("journaling changed the exported dataset")
	}
	if journaled.Resumed != 0 {
		t.Fatalf("fresh journaled run replayed %d results", journaled.Resumed)
	}
	rec, err := journal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != len(journaled.results) {
		t.Fatalf("journal holds %d results, study has %d", len(rec.Results), len(journaled.results))
	}
	if rec.Truncated {
		t.Fatal("clean run left a torn tail")
	}
}

// TestKillAtEveryFrameBoundaryThenResume is the crash-recovery acceptance
// test: for every journal frame boundary, kill the run there (with a
// varying number of torn bytes left on disk), resume from the journal, and
// require the resumed export to be byte-identical to an uninterrupted
// run's.
func TestKillAtEveryFrameBoundaryThenResume(t *testing.T) {
	want := exportBytes(t, runCfg(t, microCfg(72)))
	// Count the frames one uninterrupted journaled run writes.
	probe := filepath.Join(t.TempDir(), "probe.wal")
	total := len(runJournaled(t, microCfg(72), probe, false).results)
	if total < 10 {
		t.Fatalf("micro world too small for a meaningful sweep: %d apps", total)
	}

	for i := 0; i < total; i++ {
		torn := []int{0, 1, 7}[i%3] // die before, inside the length field, inside the frame
		path := filepath.Join(t.TempDir(), fmt.Sprintf("kill%d.wal", i))

		cfg := microCfg(72)
		cfg.Kill = &faultinject.ProcessKill{AfterResults: i, TornBytes: torn}
		_, err := RunJournaled(cfg, path, false)
		if !errors.Is(err, journal.ErrKilled) {
			t.Fatalf("kill-after=%d: RunJournaled = %v, want ErrKilled", i, err)
		}

		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatalf("kill-after=%d: recover: %v", i, err)
		}
		if len(rec.Results) != i || rec.TornBytes != int64(torn) {
			t.Fatalf("kill-after=%d torn=%d: recovered %d results, %d torn bytes",
				i, torn, len(rec.Results), rec.TornBytes)
		}

		s := runJournaled(t, microCfg(72), path, true)
		if s.Resumed != i {
			t.Fatalf("kill-after=%d: resumed run replayed %d results", i, s.Resumed)
		}
		if !bytes.Equal(want, exportBytes(t, s)) {
			t.Fatalf("kill-after=%d torn=%d: resumed export differs from uninterrupted run", i, torn)
		}
		if i == total/2 {
			if got, want := s.Robustness(), runCfg(t, microCfg(72)).Robustness(); got != want {
				t.Fatalf("resumed robustness stats %+v, want %+v", got, want)
			}
		}
	}
}

func TestResumeOfCompletedJournalReplaysEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.wal")
	first := runJournaled(t, microCfg(73), path, false)
	second := runJournaled(t, microCfg(73), path, true)
	if second.Resumed != len(first.results) {
		t.Fatalf("replayed %d of %d results", second.Resumed, len(first.results))
	}
	if !bytes.Equal(exportBytes(t, first), exportBytes(t, second)) {
		t.Fatal("fully replayed export differs")
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	runJournaled(t, microCfg(74), path, false)

	other := microCfg(74)
	other.Params.Seed = 99
	if _, err := RunJournaled(other, path, true); err == nil ||
		!strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("foreign journal accepted for resume: %v", err)
	}

	faulted := microCfg(74)
	faulted.Faults = faultinject.NewPlan(7, faultinject.Uniform(0.1))
	faulted.Retries = 2
	if _, err := RunJournaled(faulted, path, true); err == nil ||
		!strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("journal from a fault-free run accepted under a fault plan: %v", err)
	}
}

func TestFreshJournalRefusesExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	runJournaled(t, microCfg(75), path, false)
	if _, err := RunJournaled(microCfg(75), path, false); err == nil {
		t.Fatal("second fresh run clobbered an existing journal")
	}
}

// TestJournaledFaultedRunResumes exercises the interaction of both fault
// families: transient measurement faults (retried, quarantined) and a
// process kill. The resumed export must still match the uninterrupted
// faulted run byte for byte.
func TestJournaledFaultedRunResumes(t *testing.T) {
	mk := func() Config {
		cfg := microCfg(76)
		cfg.Faults = faultinject.NewPlan(76, faultinject.Uniform(0.15))
		cfg.Retries = 2
		return cfg
	}
	want := exportBytes(t, runCfg(t, mk()))

	path := filepath.Join(t.TempDir(), "faulted.wal")
	cfg := mk()
	cfg.Kill = &faultinject.ProcessKill{AfterResults: 5, TornBytes: 3}
	if _, err := RunJournaled(cfg, path, false); !errors.Is(err, journal.ErrKilled) {
		t.Fatalf("RunJournaled = %v, want ErrKilled", err)
	}
	s := runJournaled(t, mk(), path, true)
	if s.Resumed != 5 {
		t.Fatalf("resumed run replayed %d results, want 5", s.Resumed)
	}
	if !bytes.Equal(want, exportBytes(t, s)) {
		t.Fatal("resumed faulted export differs from uninterrupted run")
	}
}
