// Package core orchestrates the full study: it generates the world, runs
// static analysis over every app package, drives the dynamic differential
// experiments on emulated devices (baseline run, MITM run, and the iOS
// Common re-run of §4.5), circumvents pinning with instrumentation hooks
// for the PII analysis, and probes pinned destinations for the certificate
// analyses. The aggregate tables and figures are computed on top of the
// per-app results by the report layer.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pinscope/internal/appmodel"
	"pinscope/internal/appstore"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/faultinject"
	"pinscope/internal/frida"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/netem"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/worldgen"
)

// Config parameterizes a study run.
type Config struct {
	Params worldgen.Params
	// Window is the per-app capture window in seconds (paper: 30).
	Window float64
	// Workers caps parallel app processing; 0 means GOMAXPROCS.
	Workers int
	// Faults, when non-nil and enabled, injects deterministic operational
	// faults into every layer of the pipeline. A nil plan (or all-zero
	// rates) leaves the study byte-identical to a fault-free build.
	Faults *faultinject.Plan
	// Retries bounds extra measurement attempts per app when an attempt
	// hard-fails or comes back below full confidence. Only consulted while
	// faults are enabled: clean runs are deterministic, so retrying them
	// cannot change the outcome.
	Retries int
	// Journal, when non-nil, streams every completed per-app result into a
	// crash-safe write-ahead log and replays the results it already holds,
	// so a resumed run skips re-measuring journaled apps. Most callers use
	// RunJournaled, which builds and closes it.
	Journal *StudyJournal
	// Kill, when non-nil (and Journal is set), arms the fault layer's
	// power-cut: the process "dies" deterministically on the journal's
	// append path, leaving a torn frame for recovery to truncate.
	Kill *faultinject.ProcessKill
	// ColdCrypto disables the shared crypto plane (interned forged chains,
	// handshake memo, shared trust stores), forcing every worker to rebuild
	// and re-handshake everything — the pre-plane behavior. Results are
	// byte-identical either way (the equivalence test holds the study to
	// that); the switch exists as the test's control and for profiling the
	// uncached pipeline.
	ColdCrypto bool
	// Release names the root-program timeline point this run measures "as
	// of" (see internal/rootprogram); empty means the static snapshot
	// world. It is stamped into journal headers and export metadata so a
	// resume cannot mix timeline points and a served snapshot knows its
	// lineage.
	Release string
	// Stores, when non-nil, replaces the per-platform device trust stores
	// with the materialized stores of the timeline point named by Release.
	// Nil falls back to the ecosystem's static OEM/iOS stores. Stores is
	// derived (Release + seed regenerate it), so it never appears in
	// journal metadata itself. RunLongitudinal sets both together.
	Stores map[appmodel.Platform]*pki.RootStore
}

// baseStores returns the per-platform trust stores this run measures
// against: the configured timeline-point stores, or the ecosystem's
// static stores when no timeline point is set.
func (cfg Config) baseStores(w *worldgen.World) map[appmodel.Platform]*pki.RootStore {
	if cfg.Stores != nil {
		return cfg.Stores
	}
	return map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM, // Pixel 3 factory image, OEM store
		appmodel.IOS:     w.Eco.IOS,
	}
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Params: worldgen.DefaultParams(), Window: 30}
}

// TestConfig is a miniature configuration for tests and examples.
func TestConfig(seed int64) Config {
	return Config{Params: worldgen.TestParams(seed), Window: 30}
}

// AppResult is everything the study learned about one app.
type AppResult struct {
	App *appmodel.App

	// Static pipeline output (§4.1). StaticErr records decryption or
	// packaging obstacles.
	Static    *staticanalysis.Report
	StaticErr error

	// Dyn is the differential dynamic verdict (§4.2).
	Dyn *dynamicanalysis.Result

	// Weak-cipher observations from the baseline capture (Table 8).
	WeakAnyConn    bool
	WeakPinnedConn bool

	// CircumventedDests maps each pinned destination to whether the
	// instrumentation hooks exposed its plaintext (§4.3).
	CircumventedDests map[string]bool

	// DestPII is the PII observed per destination in the hooked MITM run
	// (§4.4); only populated for pinning apps.
	DestPII map[string]map[pii.Kind]bool
	// ObservedDests are the destinations whose plaintext was observable in
	// the hooked run (Table 9's denominators).
	ObservedDests map[string]bool

	// Robustness accounting, filled in by the resilient runner.

	// Confidence grades how much of the pipeline informed this result.
	Confidence Confidence
	// Attempts is how many measurement attempts this app consumed (>= 1).
	Attempts int
	// FromAttempt is the 0-based attempt whose result was kept.
	FromAttempt int
	// Quarantined marks an app every attempt of which failed to produce
	// analysis-grade data; the study records it instead of aborting.
	Quarantined bool
	// Err joins the per-attempt failures of a degraded or quarantined app.
	Err error
	// DynRun records, for iOS Common apps, which §4.5 run produced the kept
	// dynamic verdicts: "initial" or "delayed-rerun".
	DynRun string
}

// Pinned is a convenience accessor.
func (r *AppResult) Pinned() bool { return r.Dyn != nil && r.Dyn.Pins() }

// Confidence grades an AppResult by which pipeline halves produced valid
// data — the study's graceful-degradation signal. Ordering matters: higher
// is better, and the dynamic differential (the paper's core contribution)
// outranks static extraction when only one survived.
type Confidence int

const (
	// ConfidenceNone: neither pipeline produced analysis-grade data.
	ConfidenceNone Confidence = iota
	// ConfidenceStaticOnly: the dynamic differential never completed; only
	// static extraction stands.
	ConfidenceStaticOnly
	// ConfidenceDynamicOnly: static extraction failed (e.g. decryption);
	// dynamic verdicts stand.
	ConfidenceDynamicOnly
	// ConfidenceFull: both pipelines completed.
	ConfidenceFull
)

func (c Confidence) String() string {
	switch c {
	case ConfidenceFull:
		return "full"
	case ConfidenceDynamicOnly:
		return "dynamic-only"
	case ConfidenceStaticOnly:
		return "static-only"
	}
	return "none"
}

func confidenceFor(staticOK, dynOK bool) Confidence {
	switch {
	case staticOK && dynOK:
		return ConfidenceFull
	case dynOK:
		return ConfidenceDynamicOnly
	case staticOK:
		return ConfidenceStaticOnly
	}
	return ConfidenceNone
}

// DestProbe is the infrastructure classification of one pinned destination
// (Table 6).
type DestProbe struct {
	Dest        string
	Chain       pki.Chain
	DefaultPKI  bool
	SelfSigned  bool
	CustomPKI   bool
	Unavailable bool
}

// PairResult is a common app's cross-platform comparison.
type PairResult struct {
	Name     string
	Android  *AppResult
	IOS      *AppResult
	Analysis *dynamicanalysis.PairAnalysis
}

// Study is a completed run.
type Study struct {
	Cfg   Config
	World *worldgen.World

	mu      sync.Mutex
	results map[string]*AppResult

	Pairs  []*PairResult
	Probes map[string]*DestProbe

	// Resumed counts results replayed from a journal instead of measured
	// in this process (0 for fresh runs).
	Resumed int
}

// Result returns the result for an app (nil if the app was not studied).
func (s *Study) Result(a *appmodel.App) *AppResult {
	return s.results[string(a.Platform)+"/"+a.ID]
}

// ResultForListing resolves a dataset listing to its result.
func (s *Study) ResultForListing(l *appstore.Listing) *AppResult {
	return s.results[string(l.Platform)+"/"+l.ID]
}

// DatasetResults returns the results of a dataset in listing order.
func (s *Study) DatasetResults(ds *appstore.Dataset) []*AppResult {
	out := make([]*AppResult, 0, len(ds.Listings))
	for _, l := range ds.Listings {
		if r := s.ResultForListing(l); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// RobustnessStats aggregates the resilient runner's accounting across a
// completed study.
type RobustnessStats struct {
	// Apps studied; Attempts is the total measurement attempts consumed.
	Apps     int
	Attempts int
	// Retried counts apps that needed more than one attempt; Quarantined
	// counts apps recorded as failures after exhausting their budget.
	Retried     int
	Quarantined int
	// Per-confidence app counts.
	Full        int
	DynamicOnly int
	StaticOnly  int
	None        int
	// DelayedRerunKept counts iOS Common apps whose §4.5 delayed re-run won
	// the verdict arbitration (at zero fault rate: all of them).
	DelayedRerunKept int
}

// Robustness tallies retry/quarantine/degradation accounting. Call after
// the run completes.
func (s *Study) Robustness() RobustnessStats {
	var st RobustnessStats
	for _, r := range s.results {
		st.Apps++
		st.Attempts += r.Attempts
		if r.Attempts > 1 {
			st.Retried++
		}
		if r.Quarantined {
			st.Quarantined++
		}
		switch r.Confidence {
		case ConfidenceFull:
			st.Full++
		case ConfidenceDynamicOnly:
			st.DynamicOnly++
		case ConfidenceStaticOnly:
			st.StaticOnly++
		default:
			st.None++
		}
		if r.DynRun == "delayed-rerun" {
			st.DelayedRerunKept++
		}
	}
	return st
}

// workItem is one unique app to measure; common marks members of the
// Common datasets (which get the iOS §4.5 re-run).
type workItem struct {
	app    *appmodel.App
	common bool
}

func (it workItem) key() string { return string(it.app.Platform) + "/" + it.app.ID }

// studyWork returns the deduped unique-app work list in dataset order
// (Common, Popular, Random; Android before iOS). Collisions are analyzed
// once, common pairs are marked for the iOS §4.5 re-run. Per-app results
// are pure functions of (seed, app), so this list — not worker
// scheduling — is the canonical identity of a run's work; the sharded
// runner re-sorts it by key to get the export order.
func studyWork(w *worldgen.World) []workItem {
	var work []workItem
	seen := map[string]bool{}
	add := func(ds *appstore.Dataset, common bool) {
		for _, l := range ds.Listings {
			key := string(l.Platform) + "/" + l.ID
			if seen[key] {
				continue
			}
			seen[key] = true
			work = append(work, workItem{app: w.App(l), common: common})
		}
	}
	add(w.DS.CommonAndroid, true)
	add(w.DS.CommonIOS, true)
	add(w.DS.PopularAndroid, false)
	add(w.DS.PopularIOS, false)
	add(w.DS.RandomAndroid, false)
	add(w.DS.RandomIOS, false)
	return work
}

// Run executes the complete study.
func Run(cfg Config) (*Study, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	return RunOnWorld(cfg, w)
}

// RunOnWorld executes the study against an existing world (lets callers
// reuse one world across experiments).
func RunOnWorld(cfg Config, w *worldgen.World) (*Study, error) {
	// The shared crypto plane: built once, read by every worker's lab.
	var plane *cryptoPlane
	if !cfg.ColdCrypto {
		var err error
		plane, err = newCryptoPlane(cfg, w)
		if err != nil {
			return nil, err
		}
	}
	return runOnWorldWithPlane(cfg, w, plane)
}

func runOnWorldWithPlane(cfg Config, w *worldgen.World, plane *cryptoPlane) (*Study, error) {
	s := &Study{Cfg: cfg, World: w, results: make(map[string]*AppResult)}
	cfg.Journal.arm(cfg.Kill)

	// Apps already in the journal are replayed here instead of scheduled —
	// per-app results are pure functions of (seed, app), so a replayed
	// result is identical to a re-measured one.
	var work []workItem
	var replayErr error
	for _, item := range studyWork(w) {
		key := item.key()
		if data, ok := cfg.Journal.replayed(key); ok {
			res, err := decodeAppResult(data, item.app)
			if err != nil {
				replayErr = errors.Join(replayErr, err)
				continue
			}
			s.results[key] = res
			s.Resumed++
			continue
		}
		work = append(work, item)
	}
	if replayErr != nil {
		return nil, replayErr
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}

	// Per-app failures never reach this level anymore — the resilient
	// runner retries and quarantines them. A worker only fails fatally when
	// its bench cannot be built; the shared context then cancels the feeder
	// and the remaining workers promptly instead of letting them grind
	// through a doomed queue, and every fatal error is reported (joined),
	// not just the first one drained.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		failMu sync.Mutex
		fatal  []error
	)
	fail := func(err error) {
		failMu.Lock()
		fatal = append(fatal, err)
		failMu.Unlock()
		cancel()
	}
	jobs := make(chan workItem)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lab, err := newLab(cfg, w, plane)
			if err != nil {
				fail(fmt.Errorf("core: worker bench setup: %w", err))
				return
			}
			for {
				select {
				case <-ctx.Done():
					return
				case item, ok := <-jobs:
					if !ok {
						return
					}
					key := item.key()
					res := lab.studyAppResilient(item.app, item.common)
					// Journal before recording: a result the study saw but
					// the journal did not would be re-measured identically
					// on resume, but the reverse (journaled, then the
					// process dies before the map insert) must also be
					// harmless — and it is, because a killed run discards
					// the in-memory study entirely.
					if err := cfg.Journal.append(key, res); err != nil {
						fail(err)
						return
					}
					s.mu.Lock()
					s.results[key] = res
					s.mu.Unlock()
				}
			}
		}()
	}
feed:
	for _, item := range work {
		select {
		case jobs <- item:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	failMu.Lock()
	err := errors.Join(fatal...)
	failMu.Unlock()
	if err != nil {
		return nil, err
	}

	s.buildPairs()
	if err := s.probePinnedDests(); err != nil {
		return nil, err
	}
	return s, nil
}

// lab is one worker's private measurement bench: its own networks, proxy
// and devices (the real study serialized everything through two phones;
// the per-app experiments are independent, so they parallelize cleanly).
type lab struct {
	cfg   Config
	world *worldgen.World

	proxy *mitmproxy.Proxy
	// Devices per platform: a clean one for baseline runs and one with the
	// proxy CA installed on an intercepted network.
	plain map[appmodel.Platform]*device.Device
	mitm  map[appmodel.Platform]*device.Device
	hooks map[appmodel.Platform]*frida.Session
}

func newLab(cfg Config, w *worldgen.World, plane *cryptoPlane) (*lab, error) {
	l := &lab{
		cfg: cfg, world: w,
		plain: map[appmodel.Platform]*device.Device{},
		mitm:  map[appmodel.Platform]*device.Device{},
		hooks: map[appmodel.Platform]*frida.Session{},
	}
	if plane != nil {
		// The plane already derived the CA from the same seed stream; the
		// proxy keeps its private forging rng but interns results into the
		// shared chain store.
		proxy := mitmproxy.New(plane.proxyCA, forgeRng(cfg))
		proxy.UseChainStore(plane.forged)
		l.proxy = proxy
	} else {
		proxy, err := mitmproxy.NewWithCA(detrand.New(cfg.Params.Seed).Child("study-proxy"))
		if err != nil {
			return nil, err
		}
		l.proxy = proxy
	}

	baseStores := cfg.baseStores(w)
	for _, plat := range appmodel.Platforms {
		// Device randomness is platform-keyed, not worker-keyed, so every
		// worker sees the identical device (profile and payload stream).
		devRng := func() *detrand.Source {
			return detrand.New(cfg.Params.Seed).Child("device/" + string(plat))
		}
		netPlain := w.NewNetwork(true)
		dp := device.New(plat, netPlain, baseStores[plat], devRng())
		l.plain[plat] = dp

		netMITM := w.NewNetwork(true)
		netMITM.SetInterceptor(l.proxy)
		dm := device.New(plat, netMITM, baseStores[plat], devRng())
		l.mitm[plat] = dm

		if plane != nil {
			ps := plane.stores[plat]
			dp.UseStores(ps.plainUser, ps.system)
			dm.UseStores(ps.mitmUser, ps.system)
			dp.UseHandshakeMemo(plane.memo)
			dm.UseHandshakeMemo(plane.memo)
		} else {
			dm.InstallCA(l.proxy.CACert())
		}

		hooks, err := frida.Attach(plat, true)
		if err != nil {
			return nil, err
		}
		l.hooks[plat] = hooks
	}
	return l, nil
}

// studyAppResilient wraps studyApp in the robustness layer: bounded retry
// with per-attempt fault scopes, keep-the-best-confidence arbitration, and
// quarantine — an app whose every attempt failed becomes a recorded failure
// instead of killing the study.
func (l *lab) studyAppResilient(app *appmodel.App, common bool) *AppResult {
	key := string(app.Platform) + "/" + app.ID
	maxAttempts := 1 + l.cfg.Retries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var best *AppResult
	var failures []error
	var valids []*dynamicanalysis.Result // per-attempt valid differentials
	attempts := 0
	for a := 0; a < maxAttempts; a++ {
		attempts++
		res, err := l.studyApp(app, common, l.cfg.Faults.ForApp(key, a))
		if err != nil {
			failures = append(failures, fmt.Errorf("attempt %d: %w", a+1, err))
		} else if res.Dyn != nil {
			valids = append(valids, res.Dyn)
		}
		if best == nil || res.Confidence > best.Confidence {
			res.FromAttempt = a
			best = res
		}
		if !l.cfg.Faults.Enabled() {
			break // clean runs are deterministic; a retry changes nothing
		}
		// Under faults a single differential is never trusted outright:
		// transient faults can hide pins and, more rarely, fabricate them.
		// Stop only once a full-confidence result has a second independent
		// differential to cross-examine against.
		if best.Confidence == ConfidenceFull && len(valids) >= 2 {
			break
		}
	}
	// Cross-attempt verdict arbitration, exploiting that fault scopes are
	// re-rolled per attempt. Two signals with opposite strengths:
	//
	//   - Refutation is decisive: a destination a truly pinning app contacts
	//     can never carry data under MITM, so ANY attempt observing it used
	//     under interception disproves a pin another attempt fabricated.
	//   - A single unrefuted sighting is suspicious but not conclusive — a
	//     transient fault can fabricate one — so a pin must be sighted by
	//     two independent differentials to stand. Contested pins (sighted
	//     once, unrefuted) earn extra tie-break attempts while the retry
	//     budget lasts.
	if l.cfg.Faults.Enabled() && len(valids) >= 2 && best.Dyn != nil {
		type tally struct {
			pins    map[string]int
			refuted map[string]bool
			seenAs  map[string]*dynamicanalysis.DestVerdict
		}
		count := func() tally {
			tl := tally{map[string]int{}, map[string]bool{}, map[string]*dynamicanalysis.DestVerdict{}}
			for _, r := range valids {
				for d, v := range r.Verdicts {
					if v.UsedMITM {
						tl.refuted[d] = true
					}
					if v.Pinned {
						tl.pins[d]++
						tl.seenAs[d] = v
					}
				}
			}
			return tl
		}
		tl := count()
		contested := func() bool {
			for d, n := range tl.pins {
				if n == 1 && !tl.refuted[d] {
					return true
				}
			}
			return false
		}
		for a := attempts; a < maxAttempts && contested(); a++ {
			attempts++
			res, err := l.studyApp(app, common, l.cfg.Faults.ForApp(key, a))
			if err != nil {
				failures = append(failures, fmt.Errorf("attempt %d: %w", a+1, err))
			} else if res.Dyn != nil {
				valids = append(valids, res.Dyn)
			}
			if res.Confidence > best.Confidence {
				res.FromAttempt = a
				best = res
			}
			tl = count()
		}
		for d, v := range best.Dyn.Verdicts {
			if v.Pinned && (tl.pins[d] < 2 || tl.refuted[d]) {
				v.Pinned = false
				delete(best.CircumventedDests, d)
			}
		}
		for d, n := range tl.pins {
			if n < 2 || tl.refuted[d] {
				continue
			}
			if bv := best.Dyn.Verdicts[d]; bv != nil {
				bv.Pinned = true
			} else {
				cp := *tl.seenAs[d]
				best.Dyn.Verdicts[d] = &cp
			}
		}
	}
	best.Attempts = attempts
	if len(failures) > 0 {
		best.Err = errors.Join(failures...)
	}
	if best.Confidence == ConfidenceNone {
		best.Quarantined = true
	}
	if best.Dyn == nil {
		// Keep downstream aggregation nil-safe: a quarantined app carries an
		// empty-but-valid dynamic result (contacted nothing, pinned nothing).
		best.Dyn = &dynamicanalysis.Result{
			AppID:    app.ID,
			Verdicts: map[string]*dynamicanalysis.DestVerdict{},
		}
	}
	return best
}

// studyApp runs the full per-app pipeline for one measurement attempt. The
// returned error marks a hard failure of the dynamic differential (an
// injected crash killed a leg before any connection); res is still valid,
// carrying whatever the attempt salvaged.
func (l *lab) studyApp(app *appmodel.App, common bool, af *faultinject.AppFaults) (res *AppResult, err error) {
	res = &AppResult{App: app}
	plat := app.Platform

	// Record-buffer recycling: once this attempt's result is assembled, the
	// captures' record slices go back to the netem pool. Release is nil-safe
	// and idempotent, so the capA = capA2 alias below is harmless.
	var spent []*netem.Capture
	defer func() {
		for _, c := range spent {
			c.Release()
		}
	}()

	// Attempt-scoped fault taps. All of these are no-ops for a nil af: the
	// taps install as nil, which netem and mitmproxy treat as absent.
	setTaps := func(baseLeg, mitmLeg string) {
		l.plain[plat].Net.SetFaultTap(af.NetTap(baseLeg))
		l.mitm[plat].Net.SetFaultTap(af.NetTap(mitmLeg))
	}
	setTaps("baseline", "mitm")
	l.proxy.SetForgeFaults(af.ForgeTap())
	defer func() {
		l.plain[plat].Net.SetFaultTap(nil)
		l.mitm[plat].Net.SetFaultTap(nil)
		l.proxy.SetForgeFaults(nil)
	}()

	// --- static (§4.1): decrypt iOS packages on the jailbroken device.
	if app.Pkg != nil && app.Pkg.Encrypted && af.DecryptFails() {
		res.StaticErr = faultinject.ErrTransient("decryption", app.ID)
	} else if err := l.mitm[plat].DecryptApp(app); err != nil {
		res.StaticErr = err
	} else {
		rep, err := staticanalysis.Analyze(app)
		if err != nil {
			res.StaticErr = err
		} else {
			res.Static = rep
		}
	}
	staticOK := res.StaticErr == nil && res.Static != nil

	// --- dynamic (§4.2): baseline + MITM runs.
	opts := device.RunOptions{Window: l.cfg.Window, Faults: af.Run("baseline")}
	capA, errA := l.plain[plat].Measure(app, opts)
	optsB := device.RunOptions{Window: l.cfg.Window, Faults: af.Run("mitm")}
	capB, errB := l.mitm[plat].Measure(app, optsB)
	spent = append(spent, capA, capB)
	if errA != nil || errB != nil {
		// One leg lost the app before it spoke: the differential is invalid
		// (a dead baseline hides pinners; a dead MITM leg hides rejections).
		// Hard-fail the attempt so the resilient runner retries it.
		res.Confidence = confidenceFor(staticOK, false)
		return res, errors.Join(errA, errB)
	}

	detOpts := dynamicanalysis.Options{}
	if plat == appmodel.IOS {
		detOpts.ExcludeDomains = append(detOpts.ExcludeDomains, device.AppleBackgroundDomains...)
		if res.Static != nil {
			detOpts.ExcludeDomains = append(detOpts.ExcludeDomains, res.Static.AssociatedDomains...)
		}
	}
	res.Dyn = dynamicanalysis.Detect(app.ID, capA, capB, detOpts)
	res.Confidence = confidenceFor(staticOK, true)

	// --- iOS Common re-run (§4.5): pinning verdicts from a delayed launch
	// that lets associated-domain verification finish before capture, so
	// the associated-domain exclusion (and the false negatives it causes)
	// is no longer needed.
	if common && plat == appmodel.IOS {
		res.DynRun = "initial"
		setTaps("rerun-baseline", "rerun-mitm")
		rOpts := device.RunOptions{Window: l.cfg.Window, LaunchDelay: 120, Faults: af.Run("rerun-baseline")}
		capA2, errA2 := l.plain[plat].Measure(app, rOpts)
		rOptsB := device.RunOptions{Window: l.cfg.Window, LaunchDelay: 120, Faults: af.Run("rerun-mitm")}
		capB2, errB2 := l.mitm[plat].Measure(app, rOptsB)
		spent = append(spent, capA2, capB2)
		if errA2 == nil && errB2 == nil {
			rerunOpts := dynamicanalysis.Options{ExcludeDomains: device.AppleBackgroundDomains}
			rerun := dynamicanalysis.Detect(app.ID, capA2, capB2, rerunOpts)
			// Keep whichever run rests on more conclusive evidence. Ties go
			// to the re-run: with both runs clean it sees every destination
			// the initial run saw, minus the associated-domain exclusion
			// that §4.5 exists to remove.
			if rerun.Quality() >= res.Dyn.Quality() {
				res.Dyn = rerun
				res.DynRun = "delayed-rerun"
				capA = capA2 // weak-cipher observations follow the verdicts
			}
		}
	}

	// --- weak-cipher observations from the baseline capture (Table 8).
	pinnedSet := map[string]bool{}
	for _, d := range res.Dyn.PinnedDests() {
		pinnedSet[d] = true
	}
	for dest, sum := range dynamicanalysis.SummarizeCapture(capA) {
		if sum.WeakCipherOffered {
			res.WeakAnyConn = true
			if pinnedSet[dest] {
				res.WeakPinnedConn = true
			}
		}
	}

	// --- circumvention + PII (§4.3, §4.4): hooked MITM run for pinners.
	if res.Dyn.Pins() {
		l.mitm[plat].Net.SetFaultTap(af.NetTap("hooked"))
		l.proxy.ResetLogs()
		l.mitm[plat].Run(app, device.RunOptions{Window: l.cfg.Window, Hooks: l.hooks[plat], Faults: af.Run("hooked")})
		res.CircumventedDests = map[string]bool{}
		res.DestPII = map[string]map[pii.Kind]bool{}
		res.ObservedDests = map[string]bool{}
		scanner := pii.NewScanner(l.mitm[plat].Profile)
		for _, lg := range l.proxy.Logs() {
			if pinnedSet[lg.Dest()] {
				if lg.ClientOK {
					res.CircumventedDests[lg.Dest()] = true
				} else if _, ok := res.CircumventedDests[lg.Dest()]; !ok {
					res.CircumventedDests[lg.Dest()] = false
				}
			}
			if len(lg.Payloads) == 0 {
				continue
			}
			res.ObservedDests[lg.Dest()] = true
			found := scanner.ScanAll(lg.Payloads)
			if len(found) == 0 {
				continue
			}
			m := res.DestPII[lg.Dest()]
			if m == nil {
				m = map[pii.Kind]bool{}
				res.DestPII[lg.Dest()] = m
			}
			for k := range found {
				m[k] = true
			}
		}
	}
	return res, nil
}

// buildPairs attaches results and consistency analysis to common pairs.
func (s *Study) buildPairs() {
	for _, p := range s.World.CommonPairs {
		ra := s.Result(p.Android)
		ri := s.Result(p.IOS)
		if ra == nil || ri == nil {
			continue
		}
		s.Pairs = append(s.Pairs, &PairResult{
			Name:     p.Name,
			Android:  ra,
			IOS:      ri,
			Analysis: dynamicanalysis.AnalyzePair(p.Name, ra.Dyn, ri.Dyn),
		})
	}
}

// probePinnedDests fetches served chains at every pinned destination and
// classifies their PKI (Table 6). Flaky hosts are offline by probe time.
func (s *Study) probePinnedDests() error {
	dests := map[string]bool{}
	for _, r := range s.results {
		for _, d := range r.Dyn.PinnedDests() {
			dests[d] = true
		}
	}
	sorted := make([]string, 0, len(dests))
	for d := range dests {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	s.Probes = probeDests(s.Cfg, s.World, sorted)
	return nil
}

// probeDests probes and classifies pinned destinations (sorted order is
// the probe order) — shared by the in-process study and the streaming
// shard merge, which both must classify the identical destination set
// identically. The prober trusts the run's configured Android store (the
// timeline point's, when one is set), though classification itself is
// store-independent: probes fetch chains without validating, and the
// default-PKI check runs against the static Mozilla reference bundle.
func probeDests(cfg Config, w *worldgen.World, sorted []string) map[string]*DestProbe {
	probeNet := w.NewNetwork(false) // flaky hosts are gone
	prober := device.New(appmodel.Android, probeNet, cfg.baseStores(w)[appmodel.Android],
		detrand.New(cfg.Params.Seed).Child("prober"))

	probes := make(map[string]*DestProbe, len(sorted))
	for _, dest := range sorted {
		p := &DestProbe{Dest: dest}
		chain, err := prober.ProbeChain(dest)
		if err != nil {
			p.Unavailable = true
		} else {
			p.Chain = chain
			switch {
			case w.Eco.IsDefaultPKI(chain, dest):
				p.DefaultPKI = true
			case len(chain) == 1:
				p.SelfSigned = true
			default:
				p.CustomPKI = true
			}
		}
		probes[dest] = p
	}
	return probes
}
