// Package core orchestrates the full study: it generates the world, runs
// static analysis over every app package, drives the dynamic differential
// experiments on emulated devices (baseline run, MITM run, and the iOS
// Common re-run of §4.5), circumvents pinning with instrumentation hooks
// for the PII analysis, and probes pinned destinations for the certificate
// analyses. The aggregate tables and figures are computed on top of the
// per-app results by the report layer.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pinscope/internal/appmodel"
	"pinscope/internal/appstore"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/frida"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/worldgen"
)

// Config parameterizes a study run.
type Config struct {
	Params worldgen.Params
	// Window is the per-app capture window in seconds (paper: 30).
	Window float64
	// Workers caps parallel app processing; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Params: worldgen.DefaultParams(), Window: 30}
}

// TestConfig is a miniature configuration for tests and examples.
func TestConfig(seed int64) Config {
	return Config{Params: worldgen.TestParams(seed), Window: 30}
}

// AppResult is everything the study learned about one app.
type AppResult struct {
	App *appmodel.App

	// Static pipeline output (§4.1). StaticErr records decryption or
	// packaging obstacles.
	Static    *staticanalysis.Report
	StaticErr error

	// Dyn is the differential dynamic verdict (§4.2).
	Dyn *dynamicanalysis.Result

	// Weak-cipher observations from the baseline capture (Table 8).
	WeakAnyConn    bool
	WeakPinnedConn bool

	// CircumventedDests maps each pinned destination to whether the
	// instrumentation hooks exposed its plaintext (§4.3).
	CircumventedDests map[string]bool

	// DestPII is the PII observed per destination in the hooked MITM run
	// (§4.4); only populated for pinning apps.
	DestPII map[string]map[pii.Kind]bool
	// ObservedDests are the destinations whose plaintext was observable in
	// the hooked run (Table 9's denominators).
	ObservedDests map[string]bool
}

// Pinned is a convenience accessor.
func (r *AppResult) Pinned() bool { return r.Dyn != nil && r.Dyn.Pins() }

// DestProbe is the infrastructure classification of one pinned destination
// (Table 6).
type DestProbe struct {
	Dest        string
	Chain       pki.Chain
	DefaultPKI  bool
	SelfSigned  bool
	CustomPKI   bool
	Unavailable bool
}

// PairResult is a common app's cross-platform comparison.
type PairResult struct {
	Name     string
	Android  *AppResult
	IOS      *AppResult
	Analysis *dynamicanalysis.PairAnalysis
}

// Study is a completed run.
type Study struct {
	Cfg   Config
	World *worldgen.World

	mu      sync.Mutex
	results map[string]*AppResult

	Pairs  []*PairResult
	Probes map[string]*DestProbe
}

// Result returns the result for an app (nil if the app was not studied).
func (s *Study) Result(a *appmodel.App) *AppResult {
	return s.results[string(a.Platform)+"/"+a.ID]
}

// ResultForListing resolves a dataset listing to its result.
func (s *Study) ResultForListing(l *appstore.Listing) *AppResult {
	return s.results[string(l.Platform)+"/"+l.ID]
}

// DatasetResults returns the results of a dataset in listing order.
func (s *Study) DatasetResults(ds *appstore.Dataset) []*AppResult {
	out := make([]*AppResult, 0, len(ds.Listings))
	for _, l := range ds.Listings {
		if r := s.ResultForListing(l); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Run executes the complete study.
func Run(cfg Config) (*Study, error) {
	if cfg.Window == 0 {
		cfg.Window = 30
	}
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		return nil, err
	}
	return RunOnWorld(cfg, w)
}

// RunOnWorld executes the study against an existing world (lets callers
// reuse one world across experiments).
func RunOnWorld(cfg Config, w *worldgen.World) (*Study, error) {
	s := &Study{Cfg: cfg, World: w, results: make(map[string]*AppResult)}

	// Unique app-tier work list: collisions are analyzed once, common
	// pairs are marked for the iOS §4.5 re-run.
	type workItem struct {
		app    *appmodel.App
		common bool
	}
	var work []workItem
	seen := map[string]bool{}
	add := func(ds *appstore.Dataset, common bool) {
		for _, l := range ds.Listings {
			key := string(l.Platform) + "/" + l.ID
			if seen[key] {
				continue
			}
			seen[key] = true
			work = append(work, workItem{app: w.App(l), common: common})
		}
	}
	add(w.DS.CommonAndroid, true)
	add(w.DS.CommonIOS, true)
	add(w.DS.PopularAndroid, false)
	add(w.DS.PopularIOS, false)
	add(w.DS.RandomAndroid, false)
	add(w.DS.RandomIOS, false)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	// Buffered to the full work list so the feeder below never blocks,
	// even if every worker exits early on an error.
	jobs := make(chan workItem, len(work))
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lab, err := newLab(cfg, w)
			if err != nil {
				errs <- err
				return
			}
			for item := range jobs {
				res, err := lab.studyApp(item.app, item.common)
				if err != nil {
					errs <- fmt.Errorf("core: app %s: %w", item.app.ID, err)
					return
				}
				s.mu.Lock()
				s.results[string(item.app.Platform)+"/"+item.app.ID] = res
				s.mu.Unlock()
			}
		}()
	}
	for _, item := range work {
		jobs <- item
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	s.buildPairs()
	if err := s.probePinnedDests(); err != nil {
		return nil, err
	}
	return s, nil
}

// lab is one worker's private measurement bench: its own networks, proxy
// and devices (the real study serialized everything through two phones;
// the per-app experiments are independent, so they parallelize cleanly).
type lab struct {
	cfg   Config
	world *worldgen.World

	proxy *mitmproxy.Proxy
	// Devices per platform: a clean one for baseline runs and one with the
	// proxy CA installed on an intercepted network.
	plain map[appmodel.Platform]*device.Device
	mitm  map[appmodel.Platform]*device.Device
	hooks map[appmodel.Platform]*frida.Session
}

func newLab(cfg Config, w *worldgen.World) (*lab, error) {
	l := &lab{
		cfg: cfg, world: w,
		plain: map[appmodel.Platform]*device.Device{},
		mitm:  map[appmodel.Platform]*device.Device{},
		hooks: map[appmodel.Platform]*frida.Session{},
	}
	proxy, err := mitmproxy.NewWithCA(detrand.New(cfg.Params.Seed).Child("study-proxy"))
	if err != nil {
		return nil, err
	}
	l.proxy = proxy

	baseStores := map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM, // Pixel 3 factory image, OEM store
		appmodel.IOS:     w.Eco.IOS,
	}
	for _, plat := range appmodel.Platforms {
		// Device randomness is platform-keyed, not worker-keyed, so every
		// worker sees the identical device (profile and payload stream).
		devRng := func() *detrand.Source {
			return detrand.New(cfg.Params.Seed).Child("device/" + string(plat))
		}
		netPlain := w.NewNetwork(true)
		l.plain[plat] = device.New(plat, netPlain, baseStores[plat], devRng())

		netMITM := w.NewNetwork(true)
		netMITM.SetInterceptor(proxy)
		dm := device.New(plat, netMITM, baseStores[plat], devRng())
		dm.InstallCA(proxy.CACert())
		l.mitm[plat] = dm

		hooks, err := frida.Attach(plat, true)
		if err != nil {
			return nil, err
		}
		l.hooks[plat] = hooks
	}
	return l, nil
}

// studyApp runs the full per-app pipeline.
func (l *lab) studyApp(app *appmodel.App, common bool) (*AppResult, error) {
	res := &AppResult{App: app}
	plat := app.Platform

	// --- static (§4.1): decrypt iOS packages on the jailbroken device.
	if err := l.mitm[plat].DecryptApp(app); err != nil {
		res.StaticErr = err
	} else {
		rep, err := staticanalysis.Analyze(app)
		if err != nil {
			res.StaticErr = err
		} else {
			res.Static = rep
		}
	}

	// --- dynamic (§4.2): baseline + MITM runs.
	opts := device.RunOptions{Window: l.cfg.Window}
	capA := l.plain[plat].Run(app, opts)
	capB := l.mitm[plat].Run(app, opts)

	detOpts := dynamicanalysis.Options{}
	if plat == appmodel.IOS {
		detOpts.ExcludeDomains = append(detOpts.ExcludeDomains, device.AppleBackgroundDomains...)
		if res.Static != nil {
			detOpts.ExcludeDomains = append(detOpts.ExcludeDomains, res.Static.AssociatedDomains...)
		}
	}
	res.Dyn = dynamicanalysis.Detect(app.ID, capA, capB, detOpts)

	// --- iOS Common re-run (§4.5): pinning verdicts from a delayed launch
	// that lets associated-domain verification finish before capture, so
	// the associated-domain exclusion (and the false negatives it causes)
	// is no longer needed.
	if common && plat == appmodel.IOS {
		rOpts := device.RunOptions{Window: l.cfg.Window, LaunchDelay: 120}
		capA2 := l.plain[plat].Run(app, rOpts)
		capB2 := l.mitm[plat].Run(app, rOpts)
		rerunOpts := dynamicanalysis.Options{ExcludeDomains: device.AppleBackgroundDomains}
		res.Dyn = dynamicanalysis.Detect(app.ID, capA2, capB2, rerunOpts)
		capA = capA2 // weak-cipher observations follow the final verdicts
	}

	// --- weak-cipher observations from the baseline capture (Table 8).
	pinnedSet := map[string]bool{}
	for _, d := range res.Dyn.PinnedDests() {
		pinnedSet[d] = true
	}
	for dest, sum := range dynamicanalysis.SummarizeCapture(capA) {
		if sum.WeakCipherOffered {
			res.WeakAnyConn = true
			if pinnedSet[dest] {
				res.WeakPinnedConn = true
			}
		}
	}

	// --- circumvention + PII (§4.3, §4.4): hooked MITM run for pinners.
	if res.Dyn.Pins() {
		l.proxy.ResetLogs()
		l.mitm[plat].Run(app, device.RunOptions{Window: l.cfg.Window, Hooks: l.hooks[plat]})
		res.CircumventedDests = map[string]bool{}
		res.DestPII = map[string]map[pii.Kind]bool{}
		res.ObservedDests = map[string]bool{}
		scanner := pii.NewScanner(l.mitm[plat].Profile)
		for _, lg := range l.proxy.Logs() {
			if pinnedSet[lg.Dest()] {
				if lg.ClientOK {
					res.CircumventedDests[lg.Dest()] = true
				} else if _, ok := res.CircumventedDests[lg.Dest()]; !ok {
					res.CircumventedDests[lg.Dest()] = false
				}
			}
			if len(lg.Payloads) == 0 {
				continue
			}
			res.ObservedDests[lg.Dest()] = true
			found := scanner.ScanAll(lg.Payloads)
			if len(found) == 0 {
				continue
			}
			m := res.DestPII[lg.Dest()]
			if m == nil {
				m = map[pii.Kind]bool{}
				res.DestPII[lg.Dest()] = m
			}
			for k := range found {
				m[k] = true
			}
		}
	}
	return res, nil
}

// buildPairs attaches results and consistency analysis to common pairs.
func (s *Study) buildPairs() {
	for _, p := range s.World.CommonPairs {
		ra := s.Result(p.Android)
		ri := s.Result(p.IOS)
		if ra == nil || ri == nil {
			continue
		}
		s.Pairs = append(s.Pairs, &PairResult{
			Name:     p.Name,
			Android:  ra,
			IOS:      ri,
			Analysis: dynamicanalysis.AnalyzePair(p.Name, ra.Dyn, ri.Dyn),
		})
	}
}

// probePinnedDests fetches served chains at every pinned destination and
// classifies their PKI (Table 6). Flaky hosts are offline by probe time.
func (s *Study) probePinnedDests() error {
	dests := map[string]bool{}
	for _, r := range s.results {
		for _, d := range r.Dyn.PinnedDests() {
			dests[d] = true
		}
	}
	sorted := make([]string, 0, len(dests))
	for d := range dests {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	probeNet := s.World.NewNetwork(false) // flaky hosts are gone
	prober := device.New(appmodel.Android, probeNet, s.World.Eco.OEM,
		detrand.New(s.Cfg.Params.Seed).Child("prober"))

	s.Probes = make(map[string]*DestProbe, len(sorted))
	for _, dest := range sorted {
		p := &DestProbe{Dest: dest}
		chain, err := prober.ProbeChain(dest)
		if err != nil {
			p.Unavailable = true
		} else {
			p.Chain = chain
			switch {
			case s.World.Eco.IsDefaultPKI(chain, dest):
				p.DefaultPKI = true
			case len(chain) == 1:
				p.SelfSigned = true
			default:
				p.CustomPKI = true
			}
		}
		s.Probes[dest] = p
	}
	return nil
}
