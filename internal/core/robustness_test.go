package core

import (
	"bytes"
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/faultinject"
)

func runCfg(t *testing.T, cfg Config) *Study {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func exportBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestZeroFaultRateIsByteIdentical(t *testing.T) {
	// A zero-rate plan (even with a retry budget) must be a strict no-op:
	// the exported dataset matches a run without any plan, byte for byte.
	plain := runCfg(t, TestConfig(31))

	cfg := TestConfig(31)
	cfg.Faults = faultinject.NewPlan(31, faultinject.Uniform(0))
	cfg.Retries = 3
	zeroed := runCfg(t, cfg)

	if !bytes.Equal(exportBytes(t, plain), exportBytes(t, zeroed)) {
		t.Fatal("zero-rate fault plan changed the exported dataset")
	}

	// Accounting sanity on the clean run: single attempts, full confidence,
	// nothing quarantined, and every iOS Common verdict from the §4.5
	// delayed re-run (ties go to it).
	st := zeroed.Robustness()
	if st.Apps == 0 || st.Attempts != st.Apps {
		t.Fatalf("clean run consumed %d attempts for %d apps", st.Attempts, st.Apps)
	}
	if st.Retried != 0 || st.Quarantined != 0 || st.Full != st.Apps {
		t.Fatalf("clean run accounting off: %+v", st)
	}
	nCommonIOS := len(zeroed.World.DS.CommonIOS.Listings)
	if st.DelayedRerunKept != nCommonIOS {
		t.Fatalf("delayed re-run kept for %d iOS Common apps, want %d", st.DelayedRerunKept, nCommonIOS)
	}
}

func TestFaultedStudyIsDeterministicAcrossSchedules(t *testing.T) {
	// Fault decisions are pure functions of (seed, scope), so the same plan
	// must produce identical results no matter how work lands on workers.
	mk := func(workers int) Config {
		cfg := TestConfig(32)
		cfg.Faults = faultinject.NewPlan(32, faultinject.Uniform(0.15))
		cfg.Retries = 2
		cfg.Workers = workers
		return cfg
	}
	a := runCfg(t, mk(4))
	b := runCfg(t, mk(2))
	if !bytes.Equal(exportBytes(t, a), exportBytes(t, b)) {
		t.Fatal("faulted study output depends on worker scheduling")
	}
}

func TestStudySurvivesHeavyFaults(t *testing.T) {
	cfg := TestConfig(33)
	cfg.Faults = faultinject.NewPlan(33, faultinject.Uniform(0.2))
	cfg.Retries = 2
	s := runCfg(t, cfg)

	// Quarantine, not abort: every dataset listing still has a result with
	// a usable (possibly empty) dynamic verdict.
	for _, ds := range s.World.DS.All() {
		for _, l := range ds.Listings {
			r := s.ResultForListing(l)
			if r == nil {
				t.Fatalf("no result for %s/%s", l.Platform, l.ID)
			}
			if r.Dyn == nil || r.Dyn.Verdicts == nil {
				t.Fatalf("%s/%s: nil dynamic result under faults", l.Platform, l.ID)
			}
			if r.Quarantined && r.Err == nil && r.StaticErr == nil {
				t.Fatalf("%s/%s: quarantined without a recorded failure", l.Platform, l.ID)
			}
		}
	}
	st := s.Robustness()
	if st.Attempts <= st.Apps {
		t.Fatalf("20%% faults triggered no retries: %+v", st)
	}
	if st.Retried == 0 {
		t.Fatalf("no app was retried: %+v", st)
	}
	if st.Full+st.DynamicOnly+st.StaticOnly+st.None != st.Apps {
		t.Fatalf("confidence counts do not partition apps: %+v", st)
	}
	t.Logf("robustness at 20%%: %+v", st)
}

func TestDegradationAndQuarantinePaths(t *testing.T) {
	// Decryption failing on every attempt degrades iOS apps to
	// dynamic-only; adding certain crashes drives some apps to quarantine.
	cfg := TestConfig(34)
	cfg.Faults = faultinject.NewPlan(34, faultinject.Rates{DecryptFail: 1})
	cfg.Retries = 1
	s := runCfg(t, cfg)
	st := s.Robustness()
	if st.DynamicOnly == 0 {
		t.Fatalf("certain decryption failure produced no dynamic-only results: %+v", st)
	}
	if st.Retried == 0 {
		t.Fatal("below-full confidence did not trigger retries")
	}
	for _, ds := range s.World.DS.All() {
		for _, l := range ds.Listings {
			r := s.ResultForListing(l)
			if l.Platform == appmodel.Android && r.Confidence != ConfidenceFull {
				t.Fatalf("android app %s degraded by an iOS-only fault", l.ID)
			}
		}
	}

	cfg = TestConfig(34)
	cfg.Faults = faultinject.NewPlan(34, faultinject.Rates{DecryptFail: 1, AppCrash: 1})
	cfg.Retries = 1
	s = runCfg(t, cfg)
	st = s.Robustness()
	if st.None == 0 || st.Quarantined == 0 {
		t.Fatalf("total static+dynamic loss quarantined nothing: %+v", st)
	}
	if st.Quarantined != st.None {
		t.Fatalf("quarantine must equal zero-confidence count: %+v", st)
	}
	t.Logf("forced degradation: %+v", st)
}
