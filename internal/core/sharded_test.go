package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pinscope/internal/faultinject"
	"pinscope/internal/worldgen"
)

// streamBytes renders a completed study through the streaming exporter —
// the same head/app/tail path the shard merge uses — so tests can hold it
// against WriteJSON byte for byte.
func streamBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	ds := s.Export()
	var buf bytes.Buffer
	se, err := NewStreamExporter(&buf, ds.Meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Apps {
		if err := se.App(&ds.Apps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Finish(ds.Destinations); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamExporterMatchesWriteJSON(t *testing.T) {
	s := runCfg(t, TestConfig(77))
	want := exportBytes(t, s)
	got := streamBytes(t, s)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed export diverges from WriteJSON (%d vs %d bytes)", len(got), len(want))
	}
}

func TestStreamExporterEmptyDocument(t *testing.T) {
	// The degenerate shapes — no apps, no probes — must reproduce
	// encoding/json's null rendering of nil slices exactly.
	meta := DatasetMeta{Seed: 1, Window: 30}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&ExportedDataset{Version: DatasetVersion, Meta: meta}); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	se, err := NewStreamExporter(&got, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("empty streamed doc diverges:\ngot:  %q\nwant: %q", got.Bytes(), want.Bytes())
	}
}

// shardedExport runs cfg as a sharded study and merges the journals.
func shardedExport(t *testing.T, cfg Config, sc ShardedConfig) []byte {
	t.Helper()
	stats, err := RunSharded(cfg, sc)
	if err != nil {
		t.Fatalf("sharded run: %v (stats %+v)", err, stats)
	}
	var buf bytes.Buffer
	if err := MergeShards(&buf, cfg, sc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardedRunMergesByteIdentical(t *testing.T) {
	// The acceptance shape: a sharded run with shard kills at two distinct
	// slice boundaries plus an induced lease expiry must merge into the
	// exact bytes an unsharded same-seed run exports.
	cfg := microCfg(93)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0 // sharded runs own their worker pool
	sc := ShardedConfig{
		Shards:  4,
		Workers: 4,
		Dir:     t.TempDir(),
		Faults: &faultinject.ShardPlan{
			Kills: []faultinject.ShardKill{
				{Slice: 1, AfterResults: 1, TornBytes: 9},
				{Slice: 3, AfterResults: 2, TornBytes: 3},
			},
			Expiries: []faultinject.LeaseExpiry{{Slice: 2, AfterResults: 1}},
		},
	}
	merged := shardedExport(t, shardedCfg, sc)
	if !bytes.Equal(merged, single) {
		t.Fatalf("sharded merge diverges from single-process export (%d vs %d bytes)",
			len(merged), len(single))
	}

	// And the faults must actually have fired, or the test proved nothing.
	stats2, err := RunSharded(shardedCfg, ShardedConfig{
		Shards: 4, Workers: 4, Dir: t.TempDir(), Faults: sc.Faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.WorkersKilled != 2 {
		t.Fatalf("WorkersKilled = %d, want 2", stats2.WorkersKilled)
	}
	if stats2.Expired < 2 { // each killed holder's lease must expire
		t.Fatalf("Expired = %d, want >= 2", stats2.Expired)
	}
	if stats2.ResumedFrames < 3 {
		t.Fatalf("ResumedFrames = %d, want >= 3 (survivors must resume, not recompute)", stats2.ResumedFrames)
	}
}

func TestShardedDerivedPlanMergesByteIdentical(t *testing.T) {
	// Same equivalence under the derived (seeded) fault plan — the path
	// ChaosSweep and pinstudy -shard-kill exercise.
	cfg := microCfg(57)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0
	w, err := worldgen.Build(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	ranges := sliceRanges(len(shardUniverse(w)), 4)
	items := make([]int, len(ranges))
	for i, rg := range ranges {
		items[i] = rg[1]
	}
	plan := faultinject.DeriveShardPlan(cfg.Params.Seed, 1.0, 4, items)
	if plan == nil || len(plan.Kills) == 0 {
		t.Fatalf("derived plan injected nothing: %+v", plan)
	}
	sc := ShardedConfig{Shards: 4, Workers: 4, Dir: t.TempDir(), Faults: plan}
	merged := shardedExport(t, shardedCfg, sc)
	if !bytes.Equal(merged, single) {
		t.Fatalf("derived-plan sharded merge diverges (%d vs %d bytes)", len(merged), len(single))
	}
}

func TestShardedRerunResumesInterruptedRun(t *testing.T) {
	// One worker, one kill: the run dies with work outstanding. A rerun
	// over the same directory resumes from the journals and the merge
	// still matches the unsharded export.
	cfg := microCfg(41)
	single := exportBytes(t, runCfg(t, cfg))

	shardedCfg := cfg
	shardedCfg.Workers = 0
	dir := t.TempDir()
	sc := ShardedConfig{Shards: 3, Workers: 1, Dir: dir,
		Faults: &faultinject.ShardPlan{Kills: []faultinject.ShardKill{{Slice: 0, AfterResults: 2, TornBytes: 5}}}}
	if _, err := RunSharded(shardedCfg, sc); err == nil {
		t.Fatal("run with its only worker killed reported success")
	}

	// Merging a half-finished run must fail loudly, not emit partial data.
	if err := MergeShards(&bytes.Buffer{}, shardedCfg, ShardedConfig{Shards: 3, Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "incomplete run") {
		t.Fatalf("merge of interrupted run: %v, want incomplete-run error", err)
	}

	rerun := ShardedConfig{Shards: 3, Workers: 1, Dir: dir}
	stats, err := RunSharded(shardedCfg, rerun)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedFrames < 2 {
		t.Fatalf("rerun ResumedFrames = %d, want >= 2", stats.ResumedFrames)
	}
	var buf bytes.Buffer
	if err := MergeShards(&buf, shardedCfg, rerun); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), single) {
		t.Fatal("resumed sharded merge diverges from single-process export")
	}
}

func TestMergeRejectsForeignRun(t *testing.T) {
	cfg := microCfg(8)
	cfg.Workers = 0
	dir := t.TempDir()
	sc := ShardedConfig{Shards: 2, Workers: 2, Dir: dir}
	if _, err := RunSharded(cfg, sc); err != nil {
		t.Fatal(err)
	}
	other := microCfg(9)
	other.Workers = 0
	err := MergeShards(&bytes.Buffer{}, other, ShardedConfig{Shards: 2, Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("merge with mismatched config: %v, want different-run error", err)
	}
}

func TestRunShardedValidation(t *testing.T) {
	cfg := microCfg(3)
	if _, err := RunSharded(cfg, ShardedConfig{Shards: 0, Dir: t.TempDir()}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := RunSharded(cfg, ShardedConfig{Shards: 2}); err == nil {
		t.Fatal("missing journal dir accepted")
	}
	bad := cfg
	bad.Kill = &faultinject.ProcessKill{AfterResults: 1}
	if _, err := RunSharded(bad, ShardedConfig{Shards: 2, Dir: t.TempDir()}); err == nil {
		t.Fatal("Config.Kill accepted in sharded mode")
	}
}
