// Package pinserve is the serving layer over released study snapshots: it
// loads one or more exported datasets (core.WriteJSON shape) into an
// immutable, shard-by-appID in-memory index and answers the pinning
// intelligence queries auditors and platform owners ask — per-app verdicts,
// reverse pin-hash lookups, per-destination pinner lists, and the aggregate
// tables cached at snapshot-build time.
//
// An Index is never mutated after Build returns; the Server swaps whole
// indexes atomically (see server.go), so readers are lock-free.
package pinserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"pinscope/internal/core"
	"pinscope/internal/report"
)

// shardCount splits the app map. Power of two so shardFor is a mask; 64
// keeps shards around a hundred entries at paper scale (~5k unique apps)
// and lets the loader populate them in parallel-friendly batches without
// one giant map dominating rebuild time.
const shardCount = 64

// AppKey is the canonical "platform/id" identity used across the study.
func AppKey(platform, id string) string { return platform + "/" + id }

func shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() & (shardCount - 1))
}

// DestInfo is everything the snapshot knows about one destination host.
type DestInfo struct {
	Host string `json:"host"`
	// Probe is the destination's PKI classification, when it was probed
	// (only destinations seen pinned at study time are).
	Probe *core.ExportedProbe `json:"probe,omitempty"`
	// PinnedBy / CircumventedBy list app keys ("platform/id"), sorted.
	PinnedBy       []string `json:"pinned_by,omitempty"`
	CircumventedBy []string `json:"circumvented_by,omitempty"`
}

// IndexStats summarizes a built index for /v1/healthz and /v1/stats.
type IndexStats struct {
	Snapshots    int `json:"snapshots"`
	Apps         int `json:"apps"`
	Destinations int `json:"destinations"`
	UniquePins   int `json:"unique_pins"`
	// Roots counts distinct trust anchors seen across probed destinations
	// (the /v1/distrust key space).
	Roots    int `json:"roots"`
	Replaced int `json:"replaced_apps"`
	// Release is the snapshot's root-program lineage tag; empty for
	// snapshot-mode (timeless) datasets.
	Release     string `json:"release,omitempty"`
	BuildMicros int64  `json:"build_micros"`
}

// cachedTable is one aggregate endpoint's pre-rendered payloads.
type cachedTable struct {
	JSON []byte
	Text string
}

// appEntry pairs an app with its response body, marshaled once at build
// time — the index is immutable, so the serving hot path is a shard-map
// lookup plus a byte write.
type appEntry struct {
	app  *core.ExportedApp
	json []byte
}

// destEntry likewise pre-renders a destination's response.
type destEntry struct {
	info *DestInfo
	json []byte
}

// rootEntry is one trust anchor's distrust-impact answer with its
// pre-rendered body.
type rootEntry struct {
	answer *DistrustAnswer
	json   []byte
}

// Index is an immutable queryable view over one or more snapshots.
type Index struct {
	shards  [shardCount]map[string]*appEntry
	byPin   map[string][]string // canonical pin key -> sorted app keys
	pinJSON map[string][]byte   // canonical pin key -> /v1/pins response
	byDest  map[string]*destEntry
	byRoot  map[string]*rootEntry // root SPKI fingerprint -> distrust impact
	tables  []cachedTable         // tables[n-1] serves /v1/tables/{n}
	release string                // root-program lineage tag (may be empty)
	stats   IndexStats
}

// NormalizePin canonicalizes a pin key for lookup: trimmed, lower-cased,
// and with the "sha256/": separator variant folded to "sha256:".
func NormalizePin(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i] + ":" + s[i+1:]
	}
	return s
}

// Build assembles an index from loaded datasets. When the same app appears
// in several snapshots the later one wins — the multi-snapshot contract is
// "base release plus incremental re-measurements", so order is meaningful.
func Build(datasets ...*core.ExportedDataset) (*Index, error) {
	if len(datasets) == 0 {
		return nil, errors.New("pinserve: no datasets to index")
	}
	start := time.Now()
	ix := &Index{
		byPin:   map[string][]string{},
		pinJSON: map[string][]byte{},
		byDest:  map[string]*destEntry{},
		byRoot:  map[string]*rootEntry{},
	}
	for i := range ix.shards {
		ix.shards[i] = map[string]*appEntry{}
	}
	for _, ds := range datasets {
		if ds == nil {
			return nil, errors.New("pinserve: nil dataset")
		}
		// All snapshots in one index must come from the same root-program
		// lineage: mixing "as of froyo" apps with "as of kitkat" probes
		// would make distrust answers incoherent. Release-less (snapshot
		// mode) datasets carry no lineage and combine with anything.
		if r := ds.Meta.Release; r != "" {
			if ix.release != "" && ix.release != r {
				return nil, fmt.Errorf("pinserve: snapshots span root-program releases %q and %q", ix.release, r)
			}
			ix.release = r
		}
		ix.stats.Snapshots++
		for i := range ds.Apps {
			a := &ds.Apps[i]
			if a.ID == "" || a.Platform == "" {
				return nil, fmt.Errorf("pinserve: app %d of snapshot %d has empty identity", i, ix.stats.Snapshots)
			}
			key := AppKey(a.Platform, a.ID)
			sh := ix.shards[shardFor(key)]
			if _, dup := sh[key]; dup {
				ix.stats.Replaced++
			}
			sh[key] = &appEntry{app: a}
		}
		for i := range ds.Destinations {
			p := &ds.Destinations[i]
			ix.dest(p.Host).info.Probe = p
		}
	}

	// Inverted maps are built off the post-override shard contents, so a
	// replaced app's pins and destinations never leak into answers.
	for _, sh := range ix.shards {
		for key, e := range sh {
			ix.stats.Apps++
			for _, pin := range e.app.PinSPKIHashes {
				k := NormalizePin(pin)
				ix.byPin[k] = append(ix.byPin[k], key)
			}
			for _, d := range e.app.PinnedDomains {
				de := ix.dest(d)
				de.info.PinnedBy = append(de.info.PinnedBy, key)
			}
			for _, d := range e.app.CircumventedDomains {
				de := ix.dest(d)
				de.info.CircumventedBy = append(de.info.CircumventedBy, key)
			}
		}
	}
	for _, keys := range ix.byPin {
		sort.Strings(keys)
	}
	for _, de := range ix.byDest {
		sort.Strings(de.info.PinnedBy)
		sort.Strings(de.info.CircumventedBy)
	}
	ix.buildDistrust()
	ix.stats.Destinations = len(ix.byDest)
	ix.stats.UniquePins = len(ix.byPin)
	ix.stats.Roots = len(ix.byRoot)
	ix.stats.Release = ix.release

	if err := ix.renderResponses(); err != nil {
		return nil, err
	}
	if err := ix.buildTables(datasets); err != nil {
		return nil, err
	}
	ix.stats.BuildMicros = time.Since(start).Microseconds()
	return ix, nil
}

// renderResponses pre-marshals every hit response. An immutable index can
// pay the serialization cost once per snapshot swap instead of once per
// request, which is what keeps the hot path at a map probe plus a write.
func (ix *Index) renderResponses() error {
	for _, sh := range ix.shards {
		for _, e := range sh {
			js, err := json.Marshal(e.app)
			if err != nil {
				return fmt.Errorf("pinserve: render app %s: %w", e.app.ID, err)
			}
			e.json = js
		}
	}
	for host, de := range ix.byDest {
		js, err := json.Marshal(de.info)
		if err != nil {
			return fmt.Errorf("pinserve: render dest %s: %w", host, err)
		}
		de.json = js
	}
	for pin, keys := range ix.byPin {
		matches := make([]PinMatch, 0, len(keys))
		for _, k := range keys {
			m := PinMatch{Key: k}
			if a := ix.AppByKey(k); a != nil {
				m.Name, m.Developer = a.Name, a.Developer
			}
			matches = append(matches, m)
		}
		js, err := json.Marshal(PinAnswer{SPKI: pin, Count: len(matches), Apps: matches})
		if err != nil {
			return fmt.Errorf("pinserve: render pin %s: %w", pin, err)
		}
		ix.pinJSON[pin] = js
	}
	for fp, re := range ix.byRoot {
		js, err := json.Marshal(re.answer)
		if err != nil {
			return fmt.Errorf("pinserve: render distrust %s: %w", fp, err)
		}
		re.json = js
	}
	return nil
}

// buildTables caches the aggregate endpoints. Aggregation runs over the
// deduplicated index contents (not the raw snapshot concatenation), so the
// tables agree with what the lookup endpoints answer.
func (ix *Index) buildTables(datasets []*core.ExportedDataset) error {
	merged := &core.ExportedDataset{Version: core.DatasetVersion}
	merged.Meta = datasets[len(datasets)-1].Meta
	for _, sh := range ix.shards {
		for _, e := range sh {
			merged.Apps = append(merged.Apps, *e.app)
		}
	}
	for _, de := range ix.byDest {
		if de.info.Probe != nil {
			merged.Destinations = append(merged.Destinations, *de.info.Probe)
		}
	}
	// Aggregate is commutative over apps and destinations, but keep the
	// merged dataset itself deterministic so the tables never depend on
	// shard or map order even if aggregation grows order-sensitive terms.
	sort.Slice(merged.Apps, func(i, j int) bool {
		if merged.Apps[i].Platform != merged.Apps[j].Platform {
			return merged.Apps[i].Platform < merged.Apps[j].Platform
		}
		return merged.Apps[i].ID < merged.Apps[j].ID
	})
	sort.Slice(merged.Destinations, func(i, j int) bool {
		return merged.Destinations[i].Host < merged.Destinations[j].Host
	})
	agg := merged.Aggregate()
	for _, tb := range []struct {
		data any
		text string
	}{
		{struct {
			Table string              `json:"table"`
			Cells []core.SnapshotCell `json:"cells"`
		}{"prevalence", agg.Prevalence}, report.SnapshotPrevalence(agg)},
		{struct {
			Table      string                  `json:"table"`
			Categories []core.SnapshotCategory `json:"categories"`
		}{"categories", agg.Categories}, report.SnapshotCategories(agg)},
		{struct {
			Table string           `json:"table"`
			PKI   core.SnapshotPKI `json:"pki"`
		}{"pki", agg.PKI}, report.SnapshotPKI(agg)},
	} {
		js, err := json.Marshal(tb.data)
		if err != nil {
			return fmt.Errorf("pinserve: cache table: %w", err)
		}
		ix.tables = append(ix.tables, cachedTable{JSON: js, Text: tb.text})
	}
	return nil
}

// DistrustAnswer is the /v1/distrust response: the blast radius of
// removing one trust anchor from the root program. Hosts are the probed
// destinations whose serving chain anchors at the root; Apps are the
// shipping apps known to depend on those hosts (pinning or circumventing
// them) — the connections that go dark if the root is distrusted.
type DistrustAnswer struct {
	Fingerprint string `json:"fingerprint"`
	// Release is the lineage the answer is valid for (empty when the
	// snapshot was measured without a timeline).
	Release   string     `json:"release,omitempty"`
	HostCount int        `json:"host_count"`
	AppCount  int        `json:"app_count"`
	Hosts     []string   `json:"hosts"`
	Apps      []PinMatch `json:"apps"`
}

// NormalizeFingerprint canonicalizes a root fingerprint for lookup.
func NormalizeFingerprint(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// buildDistrust inverts probe trust anchors into per-root impact answers.
// Runs after the byDest inverted maps are final so app lists agree with
// what /v1/dest serves.
func (ix *Index) buildDistrust() {
	for host, de := range ix.byDest {
		p := de.info.Probe
		if p == nil || p.RootFP == "" {
			continue
		}
		fp := NormalizeFingerprint(p.RootFP)
		re := ix.byRoot[fp]
		if re == nil {
			re = &rootEntry{answer: &DistrustAnswer{Fingerprint: fp, Release: ix.release}}
			ix.byRoot[fp] = re
		}
		re.answer.Hosts = append(re.answer.Hosts, host)
	}
	for _, re := range ix.byRoot {
		a := re.answer
		sort.Strings(a.Hosts)
		seen := map[string]bool{}
		for _, host := range a.Hosts {
			de := ix.byDest[host]
			for _, keys := range [][]string{de.info.PinnedBy, de.info.CircumventedBy} {
				for _, k := range keys {
					if seen[k] {
						continue
					}
					seen[k] = true
					m := PinMatch{Key: k}
					if app := ix.AppByKey(k); app != nil {
						m.Name, m.Developer = app.Name, app.Developer
					}
					a.Apps = append(a.Apps, m)
				}
			}
		}
		sort.Slice(a.Apps, func(i, j int) bool { return a.Apps[i].Key < a.Apps[j].Key })
		a.HostCount, a.AppCount = len(a.Hosts), len(a.Apps)
	}
}

// Distrust returns the impact answer for a root fingerprint, or nil if no
// probed destination anchors there.
func (ix *Index) Distrust(fp string) *DistrustAnswer {
	if re := ix.byRoot[NormalizeFingerprint(fp)]; re != nil {
		return re.answer
	}
	return nil
}

// DistrustJSON returns the pre-rendered /v1/distrust response body.
func (ix *Index) DistrustJSON(fp string) ([]byte, bool) {
	if re := ix.byRoot[NormalizeFingerprint(fp)]; re != nil {
		return re.json, true
	}
	return nil, false
}

// Release returns the root-program lineage tag the index was built from
// (empty for timeless snapshots).
func (ix *Index) Release() string { return ix.release }

func (ix *Index) dest(host string) *destEntry {
	de := ix.byDest[host]
	if de == nil {
		de = &destEntry{info: &DestInfo{Host: host}}
		ix.byDest[host] = de
	}
	return de
}

// PinMatch is one reverse-lookup hit.
type PinMatch struct {
	Key       string `json:"key"`
	Name      string `json:"name"`
	Developer string `json:"developer"`
}

// PinAnswer is the /v1/pins response body.
type PinAnswer struct {
	SPKI  string     `json:"spki"`
	Count int        `json:"count"`
	Apps  []PinMatch `json:"apps"`
}

// App returns one app's exported verdict, or nil.
func (ix *Index) App(platform, id string) *core.ExportedApp {
	key := AppKey(platform, id)
	if e := ix.shards[shardFor(key)][key]; e != nil {
		return e.app
	}
	return nil
}

// AppJSON returns the pre-rendered response body for an app.
func (ix *Index) AppJSON(platform, id string) ([]byte, bool) {
	key := AppKey(platform, id)
	if e := ix.shards[shardFor(key)][key]; e != nil {
		return e.json, true
	}
	return nil, false
}

// AppByKey resolves a "platform/id" key.
func (ix *Index) AppByKey(key string) *core.ExportedApp {
	if e := ix.shards[shardFor(key)][key]; e != nil {
		return e.app
	}
	return nil
}

// AppsForPin returns the keys of apps shipping the pin (any accepted
// spelling), sorted. The returned slice is shared — callers must not
// mutate it.
func (ix *Index) AppsForPin(spki string) []string {
	return ix.byPin[NormalizePin(spki)]
}

// PinJSON returns the pre-rendered /v1/pins response for a pin with at
// least one shipper.
func (ix *Index) PinJSON(spki string) ([]byte, bool) {
	js, ok := ix.pinJSON[NormalizePin(spki)]
	return js, ok
}

// Dest returns a destination's info, or nil if the snapshot never saw the
// host pinned, circumvented or probed.
func (ix *Index) Dest(host string) *DestInfo {
	if de := ix.byDest[host]; de != nil {
		return de.info
	}
	return nil
}

// DestJSON returns the pre-rendered response body for a destination.
func (ix *Index) DestJSON(host string) ([]byte, bool) {
	if de := ix.byDest[host]; de != nil {
		return de.json, true
	}
	return nil, false
}

// Table returns the cached aggregate payloads for table n (1-based).
func (ix *Index) Table(n int) (cachedTable, bool) {
	if n < 1 || n > len(ix.tables) {
		return cachedTable{}, false
	}
	return ix.tables[n-1], true
}

// Tables reports how many aggregate tables are cached.
func (ix *Index) Tables() int { return len(ix.tables) }

// Stats returns the index summary.
func (ix *Index) Stats() IndexStats { return ix.stats }
