package pinserve

// server_test.go drives every endpoint through httptest: hits validated
// against the snapshot, misses, malformed ids, reload semantics, and the
// -race-checked concurrent-lookups-during-swap scenario.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pinscope/internal/core"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Options{MaxInFlight: 8, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestAppEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()

	code, body := get(t, h, "/v1/app/android/com.bank.app")
	if code != http.StatusOK {
		t.Fatalf("hit: %d %s", code, body)
	}
	var a core.ExportedApp
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Name != "Bank" || !a.PinsDynamic || len(a.PinnedDomains) != 2 {
		t.Fatalf("answer: %+v", a)
	}

	if code, _ := get(t, h, "/v1/app/android/com.missing.app"); code != http.StatusNotFound {
		t.Fatalf("miss: %d", code)
	}
	if code, body := get(t, h, "/v1/app/windows/com.bank.app"); code != http.StatusBadRequest {
		t.Fatalf("malformed platform: %d %s", code, body)
	}
	if code, _ := get(t, h, "/v1/app/android/"+strings.Repeat("x", 300)); code != http.StatusBadRequest {
		t.Fatalf("oversized id: %d", code)
	}
}

func TestPinsEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()

	code, body := get(t, h, "/v1/pins?spki=sha256%2F00FF")
	if code != http.StatusOK {
		t.Fatalf("hit: %d %s", code, body)
	}
	var resp struct {
		SPKI  string `json:"spki"`
		Count int    `json:"count"`
		Apps  []struct {
			Key  string `json:"key"`
			Name string `json:"name"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SPKI != "sha256:00ff" || resp.Count != 2 || resp.Apps[0].Key != "android/com.bank.app" || resp.Apps[0].Name != "Bank" {
		t.Fatalf("answer: %+v", resp)
	}

	// A valid query with no match is an empty result, not an error.
	code, body = get(t, h, "/v1/pins?spki=sha256:dead")
	if code != http.StatusOK || !strings.Contains(string(body), `"count": 0`) {
		t.Fatalf("no-match: %d %s", code, body)
	}
	if code, _ := get(t, h, "/v1/pins"); code != http.StatusBadRequest {
		t.Fatalf("missing param: %d", code)
	}
}

func TestDestEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()

	code, body := get(t, h, "/v1/dest/api.bank.com")
	if code != http.StatusOK {
		t.Fatalf("hit: %d %s", code, body)
	}
	var di DestInfo
	if err := json.Unmarshal(body, &di); err != nil {
		t.Fatal(err)
	}
	if di.Host != "api.bank.com" || di.Probe == nil || !di.Probe.CustomPKI || len(di.PinnedBy) != 2 {
		t.Fatalf("answer: %+v", di)
	}
	if code, _ := get(t, h, "/v1/dest/unknown.example.net"); code != http.StatusNotFound {
		t.Fatalf("miss: %d", code)
	}
}

func TestTablesEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()
	for n := 1; n <= 3; n++ {
		code, body := get(t, h, fmt.Sprintf("/v1/tables/%d", n))
		if code != http.StatusOK || !json.Valid(body) {
			t.Fatalf("table %d: %d %.80s", n, code, body)
		}
		code, body = get(t, h, fmt.Sprintf("/v1/tables/%d?format=text", n))
		if code != http.StatusOK || !strings.Contains(string(body), "Snapshot table") {
			t.Fatalf("table %d text: %d %.80s", n, code, body)
		}
	}
	if code, _ := get(t, h, "/v1/tables/9"); code != http.StatusNotFound {
		t.Fatalf("out of range: %d", code)
	}
	if code, _ := get(t, h, "/v1/tables/one"); code != http.StatusBadRequest {
		t.Fatalf("non-integer: %d", code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Before any snapshot: unhealthy, and lookups shed cleanly.
	if code, _ := get(t, s.Handler(), "/v1/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty healthz: %d", code)
	}
	if code, _ := get(t, s.Handler(), "/v1/app/android/x"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty lookup: %d", code)
	}

	if err := s.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s.Handler(), "/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"apps": 4`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	get(t, s.Handler(), "/v1/app/android/com.bank.app")
	get(t, s.Handler(), "/v1/app/android/com.bank.app")
	code, body = get(t, s.Handler(), "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st struct {
		Snapshot  *IndexStats     `json:"snapshot"`
		Endpoints []EndpointStats `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == nil || st.Snapshot.Apps != 4 {
		t.Fatalf("stats snapshot: %+v", st.Snapshot)
	}
	var appStats *EndpointStats
	for i := range st.Endpoints {
		if st.Endpoints[i].Endpoint == "/v1/app" {
			appStats = &st.Endpoints[i]
		}
	}
	// Three /v1/app requests total: the pre-load 503 plus the two hits.
	if appStats == nil || appStats.Requests != 3 || appStats.Errors5xx != 1 || appStats.P99Micros == 0 {
		t.Fatalf("endpoint stats: %+v", appStats)
	}
}

func TestReloadSwapsSnapshot(t *testing.T) {
	s := newTestServer(t)
	before := s.Index()

	req := httptest.NewRequest("POST", "/v1/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body)
	}
	if s.Index() == before {
		t.Fatal("index not swapped")
	}
	// Answers survive the swap unchanged.
	if code, _ := get(t, s.Handler(), "/v1/app/android/com.bank.app"); code != http.StatusOK {
		t.Fatalf("post-reload lookup: %d", code)
	}
	// GET on the reload endpoint is not routed.
	if code, _ := get(t, s.Handler(), "/v1/reload"); code != http.StatusMethodNotAllowed && code != http.StatusNotFound {
		t.Fatalf("GET reload: %d", code)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	if _, err := New(Options{Paths: []string{"/nonexistent/snapshot.json"}, MaxInFlight: 4}); err == nil {
		t.Fatal("bad path accepted at startup")
	}
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload with nothing to load succeeded")
	}
}

// TestReloadErrorClassification drives both snapshot-failure classes
// through the real file path: a truncated/corrupt file and a future format
// version. In each case the old index must keep serving, the failure must
// be counted, and the error class must be readable from the 500 body and
// from /v1/stats; the next good reload clears the sticky error.
func TestReloadErrorClassification(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	writeFile := func(data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	good, err := json.Marshal(testDataset())
	if err != nil {
		t.Fatal(err)
	}
	writeFile(good)

	s, err := New(Options{Paths: []string{path}, MaxInFlight: 8, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	post := func() (int, string) {
		req := httptest.NewRequest("POST", "/v1/reload", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	stats := func() statsResponse {
		code, body := get(t, h, "/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats: %d", code)
		}
		var st statsResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Truncated file → the corruption class.
	writeFile([]byte(`{"version":1,"meta"`))
	code, body := post()
	if code != http.StatusInternalServerError || !strings.Contains(body, "truncated or corrupt snapshot") {
		t.Fatalf("corrupt reload: %d %s", code, body)
	}
	if code, _ := get(t, h, "/v1/app/android/com.bank.app"); code != http.StatusOK {
		t.Fatalf("old index stopped serving after failed reload: %d", code)
	}
	st := stats()
	if st.ReloadFailures != 1 || !strings.Contains(st.LastReloadError, "truncated or corrupt snapshot") {
		t.Fatalf("stats after corrupt reload: failures=%d lastErr=%q", st.ReloadFailures, st.LastReloadError)
	}

	// Future format version → the version-mismatch class.
	writeFile([]byte(`{"version":99,"meta":{},"apps":[{"id":"a","platform":"android"}]}`))
	code, body = post()
	if code != http.StatusInternalServerError || !strings.Contains(body, "version mismatch") {
		t.Fatalf("version reload: %d %s", code, body)
	}
	st = stats()
	if st.ReloadFailures != 2 || !strings.Contains(st.LastReloadError, "version mismatch") {
		t.Fatalf("stats after version reload: failures=%d lastErr=%q", st.ReloadFailures, st.LastReloadError)
	}

	// A good snapshot reloads and clears the sticky error (the failure
	// counter is history and stays).
	writeFile(good)
	if code, body := post(); code != http.StatusOK {
		t.Fatalf("recovery reload: %d %s", code, body)
	}
	st = stats()
	if st.ReloadFailures != 2 || st.LastReloadError != "" {
		t.Fatalf("stats after recovery: failures=%d lastErr=%q", st.ReloadFailures, st.LastReloadError)
	}
}

// TestConcurrentLookupsDuringSwap is the -race scenario the check script
// runs: readers hammer every endpoint while the snapshot is swapped
// repeatedly. Failures here are data races or a reader observing a
// half-built index.
func TestConcurrentLookupsDuringSwap(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{
		"/v1/app/android/com.bank.app",
		"/v1/app/ios/id.bank.ios",
		"/v1/pins?spki=sha256:00ff",
		"/v1/dest/api.bank.com",
		"/v1/tables/1",
		"/v1/healthz",
		"/v1/stats",
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(w+i)%len(paths)]
				req := httptest.NewRequest("GET", p, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: %d during swap", p, rec.Code)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if err := s.Reload(); err != nil {
			t.Errorf("reload %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if s.reloads.Load() < 50 {
		t.Fatalf("only %d reloads recorded", s.reloads.Load())
	}
}
