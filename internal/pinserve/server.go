package pinserve

// server.go is the HTTP face of the index: a Go 1.22 pattern mux behind a
// bounded-concurrency middleware with per-request timeouts, an atomic
// snapshot swap for zero-downtime reloads, and graceful shutdown.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pinscope/internal/core"
)

// Options configures a Server. The zero value is usable for tests that
// Load datasets directly.
type Options struct {
	// Paths are snapshot files; Reload re-reads them. Later files override
	// earlier ones app-by-app.
	Paths []string
	// MaxInFlight bounds concurrent request handling (default 256). A
	// request waits up to RequestTimeout for a slot, then is shed with 503.
	MaxInFlight int
	// RequestTimeout bounds each request end to end (default 2s).
	RequestTimeout time.Duration
}

// Server serves pinning intelligence over an atomically swappable Index.
type Server struct {
	opts    Options
	idx     atomic.Pointer[Index]
	metrics *metrics
	sem     chan struct{}
	handler http.Handler
	start   time.Time

	// loadMu serializes Reload/Load; lastDatasets backs Reload when the
	// server was fed in-memory datasets instead of paths.
	loadMu       sync.Mutex
	lastDatasets []*core.ExportedDataset
	reloads      atomic.Int64
	lastLoad     atomic.Int64 // unix micros of the last successful swap

	// reloadFailures counts failed Reloads; lastReloadErr keeps the most
	// recent failure (cleared by the next successful reload) so operators
	// can see from /v1/stats why the served snapshot is stale.
	reloadFailures atomic.Int64
	errMu          sync.Mutex
	lastReloadErr  string
}

// New builds a Server. When opts.Paths is set the snapshots load
// immediately; otherwise call Load before serving (healthz answers 503
// until a snapshot is in).
func New(opts Options) (*Server, error) {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 256
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	s := &Server{
		opts:    opts,
		metrics: newMetrics(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		start:   time.Now(),
	}
	s.handler = s.buildMux()
	if len(opts.Paths) > 0 {
		if err := s.Reload(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Index returns the currently served index (nil before the first load).
func (s *Server) Index() *Index { return s.idx.Load() }

// Load builds an index from in-memory datasets and swaps it in. Used by
// tests and the selftest driver; path-configured servers use Reload.
func (s *Server) Load(datasets ...*core.ExportedDataset) error {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	ix, err := Build(datasets...)
	if err != nil {
		return err
	}
	s.lastDatasets = datasets
	s.swap(ix)
	return nil
}

// Reload rebuilds the index — from Options.Paths when configured, else
// from the last directly loaded datasets — and swaps it in atomically.
// On failure the previous index keeps serving untouched; the failure is
// counted and its message (prefixed with the error class, so a truncated
// or corrupt snapshot reads differently from a version mismatch) is kept
// for /v1/stats until a reload succeeds.
func (s *Server) Reload() error {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	var datasets []*core.ExportedDataset
	if len(s.opts.Paths) > 0 {
		for _, p := range s.opts.Paths {
			ds, err := core.LoadExportedDataset(p)
			if err != nil {
				return s.reloadFailed(fmt.Errorf("pinserve: reload (%s): %w", reloadErrorClass(err), err))
			}
			datasets = append(datasets, ds)
		}
	} else if len(s.lastDatasets) > 0 {
		datasets = s.lastDatasets
	} else {
		return s.reloadFailed(errors.New("pinserve: nothing to reload: no paths configured and no datasets loaded"))
	}
	ix, err := Build(datasets...)
	if err != nil {
		return s.reloadFailed(err)
	}
	// A reload must stay on the lineage being served: swapping a froyo
	// snapshot under clients querying kitkat answers would silently change
	// every distrust and prevalence response. Operators restart the server
	// to change lineage deliberately.
	if cur := s.idx.Load(); cur != nil && cur.Release() != "" && ix.Release() != "" && cur.Release() != ix.Release() {
		return s.reloadFailed(fmt.Errorf(
			"pinserve: reload (release lineage mismatch): serving release %q, new snapshot is release %q",
			cur.Release(), ix.Release()))
	}
	s.swap(ix)
	s.errMu.Lock()
	s.lastReloadErr = ""
	s.errMu.Unlock()
	return nil
}

// reloadErrorClass maps a snapshot load error onto its operational class:
// corruption wants a re-export, a version mismatch wants a newer server.
func reloadErrorClass(err error) string {
	switch {
	case errors.Is(err, core.ErrDatasetVersion):
		return "version mismatch"
	case errors.Is(err, core.ErrDatasetCorrupt):
		return "truncated or corrupt snapshot"
	default:
		return "load failure"
	}
}

func (s *Server) reloadFailed(err error) error {
	s.reloadFailures.Add(1)
	s.errMu.Lock()
	s.lastReloadErr = err.Error()
	s.errMu.Unlock()
	return err
}

func (s *Server) swap(ix *Index) {
	if s.idx.Swap(ix) != nil {
		s.reloads.Add(1)
	}
	s.lastLoad.Store(time.Now().UnixMicro())
}

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests for up to grace. A zero grace means 5s.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, grace)
}

// Serve is ListenAndServe over an existing listener (lets callers bind
// port 0 and read the real address first).
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// --- mux and middleware -----------------------------------------------------

func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/app/{platform}/{id}", s.wrap("/v1/app", s.handleApp))
	mux.HandleFunc("GET /v1/pins", s.wrap("/v1/pins", s.handlePins))
	mux.HandleFunc("GET /v1/dest/{host}", s.wrap("/v1/dest", s.handleDest))
	mux.HandleFunc("GET /v1/distrust/{fingerprint}", s.wrap("/v1/distrust", s.handleDistrust))
	mux.HandleFunc("GET /v1/tables/{n}", s.wrap("/v1/tables", s.handleTables))
	mux.HandleFunc("GET /v1/healthz", s.wrap("/v1/healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/stats", s.wrap("/v1/stats", s.handleStats))
	mux.HandleFunc("POST /v1/reload", s.wrap("/v1/reload", s.handleReload))
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap applies the service middleware: bounded concurrency (wait up to the
// request timeout for a slot, then shed with 503), a per-request deadline,
// and metrics recording.
func (s *Server) wrap(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			em.record(http.StatusServiceUnavailable, time.Since(start))
			writeError(w, http.StatusServiceUnavailable, "server at capacity")
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		em.record(sw.code, time.Since(start))
	}
}

// writeRaw serves a pre-rendered 200 body from the index cache.
func writeRaw(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}

// index returns the live index or answers 503 itself.
func (s *Server) index(w http.ResponseWriter) *Index {
	ix := s.idx.Load()
	if ix == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
	}
	return ix
}

// --- handlers ---------------------------------------------------------------

func validPlatform(p string) bool { return p == "android" || p == "ios" }

// maxIDLen rejects garbage path values before they hit the maps.
const maxIDLen = 256

func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	ix := s.index(w)
	if ix == nil {
		return
	}
	platform, id := r.PathValue("platform"), r.PathValue("id")
	if !validPlatform(platform) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown platform %q (want android or ios)", platform))
		return
	}
	if id == "" || len(id) > maxIDLen {
		writeError(w, http.StatusBadRequest, "malformed app id")
		return
	}
	body, ok := ix.AppJSON(platform, id)
	if !ok {
		writeError(w, http.StatusNotFound, "app not studied")
		return
	}
	writeRaw(w, body)
}

func (s *Server) handlePins(w http.ResponseWriter, r *http.Request) {
	ix := s.index(w)
	if ix == nil {
		return
	}
	spki := r.URL.Query().Get("spki")
	if spki == "" || len(spki) > maxIDLen {
		writeError(w, http.StatusBadRequest, "missing or malformed ?spki= parameter")
		return
	}
	if body, ok := ix.PinJSON(spki); ok {
		writeRaw(w, body)
		return
	}
	// A valid pin nobody ships is an empty result, not an error.
	writeJSON(w, http.StatusOK, PinAnswer{SPKI: NormalizePin(spki), Count: 0, Apps: []PinMatch{}})
}

func (s *Server) handleDest(w http.ResponseWriter, r *http.Request) {
	ix := s.index(w)
	if ix == nil {
		return
	}
	host := r.PathValue("host")
	if host == "" || len(host) > maxIDLen || strings.ContainsAny(host, " \t") {
		writeError(w, http.StatusBadRequest, "malformed host")
		return
	}
	body, ok := ix.DestJSON(host)
	if !ok {
		writeError(w, http.StatusNotFound, "destination never seen pinned, circumvented or probed")
		return
	}
	writeRaw(w, body)
}

// hexFingerprint reports whether s looks like a SHA-256 hex fingerprint
// (rootprogram.Fingerprint shape) in any case.
func hexFingerprint(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

func (s *Server) handleDistrust(w http.ResponseWriter, r *http.Request) {
	ix := s.index(w)
	if ix == nil {
		return
	}
	fp := r.PathValue("fingerprint")
	if !hexFingerprint(strings.TrimSpace(fp)) {
		writeError(w, http.StatusBadRequest, "fingerprint must be 64 hex chars (SPKI SHA-256)")
		return
	}
	body, ok := ix.DistrustJSON(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no probed destination anchors at this root")
		return
	}
	writeRaw(w, body)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	ix := s.index(w)
	if ix == nil {
		return
	}
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "table id must be an integer")
		return
	}
	tb, ok := ix.Table(n)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no table %d (have 1..%d)", n, ix.Tables()))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(tb.Text)) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tb.JSON) //nolint:errcheck
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ix := s.idx.Load()
	if ix == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string     `json:"status"`
		Snapshot IndexStats `json:"snapshot"`
	}{"ok", ix.Stats()})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	UptimeSeconds   float64         `json:"uptime_seconds"`
	Reloads         int64           `json:"reloads"`
	ReloadFailures  int64           `json:"reload_failures"`
	LastReloadError string          `json:"last_reload_error,omitempty"`
	LastLoadMicros  int64           `json:"last_load_unix_micros"`
	Snapshot        *IndexStats     `json:"snapshot,omitempty"`
	Endpoints       []EndpointStats `json:"endpoints"`
	MaxInFlight     int             `json:"max_in_flight"`
	RequestTimeoutS float64         `json:"request_timeout_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.errMu.Lock()
	lastErr := s.lastReloadErr
	s.errMu.Unlock()
	resp := statsResponse{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Reloads:         s.reloads.Load(),
		ReloadFailures:  s.reloadFailures.Load(),
		LastReloadError: lastErr,
		LastLoadMicros:  s.lastLoad.Load(),
		Endpoints:       s.metrics.snapshot(),
		MaxInFlight:     s.opts.MaxInFlight,
		RequestTimeoutS: s.opts.RequestTimeout.Seconds(),
	}
	if ix := s.idx.Load(); ix != nil {
		st := ix.Stats()
		resp.Snapshot = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string     `json:"status"`
		Reloads  int64      `json:"reloads"`
		Snapshot IndexStats `json:"snapshot"`
	}{"reloaded", s.reloads.Load(), s.idx.Load().Stats()})
}
