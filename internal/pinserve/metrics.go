package pinserve

// metrics.go instruments every endpoint with lock-free request counters
// and a fixed-bucket latency histogram (power-of-two microsecond bounds),
// from which /v1/stats derives p50/p99 without retaining samples.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount covers 1µs .. ~8.4s in power-of-two steps; the last bucket
// is the overflow.
const bucketCount = 24

// bucketBound returns bucket i's inclusive upper bound in microseconds.
func bucketBound(i int) int64 { return 1 << i }

type endpointMetrics struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
	sumMicros atomic.Int64
	buckets   [bucketCount]atomic.Int64
}

func (m *endpointMetrics) record(status int, d time.Duration) {
	m.requests.Add(1)
	switch {
	case status >= 500:
		m.errors5xx.Add(1)
	case status >= 400:
		m.errors4xx.Add(1)
	}
	us := d.Microseconds()
	m.sumMicros.Add(us)
	b := 0
	for b < bucketCount-1 && us > bucketBound(b) {
		b++
	}
	m.buckets[b].Add(1)
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation — an over-estimate by at most one bucket width (2x).
func (m *endpointMetrics) quantile(q float64) int64 {
	total := int64(0)
	var counts [bucketCount]int64
	for i := range counts {
		counts[i] = m.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total)*q + 0.5)
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= target {
			return bucketBound(i)
		}
	}
	return bucketBound(bucketCount - 1)
}

// EndpointStats is one endpoint's /v1/stats entry.
type EndpointStats struct {
	Endpoint   string  `json:"endpoint"`
	Requests   int64   `json:"requests"`
	Errors4xx  int64   `json:"errors_4xx"`
	Errors5xx  int64   `json:"errors_5xx"`
	MeanMicros float64 `json:"mean_micros"`
	P50Micros  int64   `json:"p50_micros"`
	P99Micros  int64   `json:"p99_micros"`
}

// metrics is the per-server registry. Endpoints register once at mux
// construction, so the read path only touches atomics.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newMetrics() *metrics {
	return &metrics{endpoints: map[string]*endpointMetrics{}}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

func (m *metrics) snapshot() []EndpointStats {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	ems := make([]*endpointMetrics, len(names))
	for i, n := range names {
		ems[i] = m.endpoints[n]
	}
	m.mu.Unlock()

	out := make([]EndpointStats, 0, len(names))
	for i, em := range ems {
		st := EndpointStats{
			Endpoint:  names[i],
			Requests:  em.requests.Load(),
			Errors4xx: em.errors4xx.Load(),
			Errors5xx: em.errors5xx.Load(),
			P50Micros: em.quantile(0.50),
			P99Micros: em.quantile(0.99),
		}
		if st.Requests > 0 {
			st.MeanMicros = float64(em.sumMicros.Load()) / float64(st.Requests)
		}
		out = append(out, st)
	}
	return out
}
