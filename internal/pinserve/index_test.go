package pinserve

import (
	"encoding/json"
	"testing"

	"pinscope/internal/core"
)

// testDataset is a small hand-built snapshot with every lookup surface
// populated: a pinning Android app, a clean Android app, and an iOS app
// sharing one pin hash with the first.
func testDataset() *core.ExportedDataset {
	ds := &core.ExportedDataset{Version: core.DatasetVersion}
	ds.Meta.Seed = 42
	ds.Apps = []core.ExportedApp{
		{
			ID: "com.bank.app", Name: "Bank", Developer: "Bank Inc",
			Platform: "android", Category: "Finance", Datasets: []string{"Popular"},
			PinsDynamic:   true,
			PinnedDomains: []string{"api.bank.com", "cdn.bank.com"},
			StaticPins:    1,
			PinSPKIHashes: []string{"sha256:00ff"},
			CircumventedDomains: []string{
				"api.bank.com",
			},
		},
		{
			ID: "com.game.app", Name: "Game", Developer: "Game Co",
			Platform: "android", Category: "Games", Datasets: []string{"Random"},
		},
		{
			ID: "id.bank.ios", Name: "Bank", Developer: "Bank Inc",
			Platform: "ios", Category: "Finance", Datasets: []string{"Popular"},
			PinsDynamic:   true,
			PinnedDomains: []string{"api.bank.com"},
			StaticPins:    1,
			PinSPKIHashes: []string{"sha256:00FF"},
		},
		{
			ID: "com.also.finance", Name: "Ledger", Developer: "L",
			Platform: "android", Category: "Finance", Datasets: []string{"Popular"},
		},
	}
	ds.Destinations = []core.ExportedProbe{
		{Host: "api.bank.com", CustomPKI: true, LeafCN: "api.bank.com", ChainLen: 2},
		{Host: "cdn.bank.com", DefaultPKI: true, ChainLen: 3},
	}
	return ds
}

func TestIndexLookups(t *testing.T) {
	ix, err := Build(testDataset())
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Apps != 4 || st.Snapshots != 1 || st.Destinations != 2 || st.UniquePins != 1 {
		t.Fatalf("stats %+v", st)
	}

	a := ix.App("android", "com.bank.app")
	if a == nil || a.Name != "Bank" || !a.PinsDynamic {
		t.Fatalf("app lookup: %+v", a)
	}
	if ix.App("android", "com.missing") != nil {
		t.Fatal("phantom app")
	}
	if ix.App("ios", "com.bank.app") != nil {
		t.Fatal("platform not part of the key")
	}

	// Pin lookup normalizes case and the sha256/ spelling.
	for _, q := range []string{"sha256:00ff", "SHA256:00FF", "sha256/00ff", "  sha256:00ff "} {
		keys := ix.AppsForPin(q)
		if len(keys) != 2 || keys[0] != "android/com.bank.app" || keys[1] != "ios/id.bank.ios" {
			t.Fatalf("pin %q -> %v", q, keys)
		}
	}
	if len(ix.AppsForPin("sha256:dead")) != 0 {
		t.Fatal("phantom pin match")
	}

	d := ix.Dest("api.bank.com")
	if d == nil || d.Probe == nil || !d.Probe.CustomPKI {
		t.Fatalf("dest probe: %+v", d)
	}
	if len(d.PinnedBy) != 2 || d.PinnedBy[0] != "android/com.bank.app" || d.PinnedBy[1] != "ios/id.bank.ios" {
		t.Fatalf("pinned_by: %v", d.PinnedBy)
	}
	if len(d.CircumventedBy) != 1 || d.CircumventedBy[0] != "android/com.bank.app" {
		t.Fatalf("circumvented_by: %v", d.CircumventedBy)
	}
	if ix.Dest("nope.example.com") != nil {
		t.Fatal("phantom destination")
	}
}

func TestIndexCachedTables(t *testing.T) {
	ix, err := Build(testDataset())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tables() != 3 {
		t.Fatalf("%d tables cached", ix.Tables())
	}
	tb, ok := ix.Table(1)
	if !ok {
		t.Fatal("table 1 missing")
	}
	var prev struct {
		Cells []core.SnapshotCell `json:"cells"`
	}
	if err := json.Unmarshal(tb.JSON, &prev); err != nil {
		t.Fatal(err)
	}
	// Popular/android: com.bank.app + com.also.finance, one dynamic pinner.
	found := false
	for _, c := range prev.Cells {
		if c.Dataset == "Popular" && c.Platform == "android" {
			found = true
			if c.Apps != 2 || c.Dynamic != 1 {
				t.Fatalf("cell %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("Popular/android cell missing: %+v", prev.Cells)
	}
	if tb.Text == "" {
		t.Fatal("no cached text rendering")
	}
	if _, ok := ix.Table(0); ok {
		t.Fatal("table 0 exists")
	}
	if _, ok := ix.Table(4); ok {
		t.Fatal("table 4 exists")
	}
}

func TestIndexMultiSnapshotOverride(t *testing.T) {
	base := testDataset()
	patch := &core.ExportedDataset{Version: core.DatasetVersion}
	patch.Apps = []core.ExportedApp{{
		ID: "com.bank.app", Name: "Bank v2", Developer: "Bank Inc",
		Platform: "android", Category: "Finance", Datasets: []string{"Popular"},
		// The re-measurement no longer sees pinning at all.
	}}
	ix, err := Build(base, patch)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Apps != 4 || st.Replaced != 1 || st.Snapshots != 2 {
		t.Fatalf("stats %+v", st)
	}
	if a := ix.App("android", "com.bank.app"); a.Name != "Bank v2" || a.PinsDynamic {
		t.Fatalf("override lost: %+v", a)
	}
	// The replaced app's pins and pinner entries must not leak.
	if keys := ix.AppsForPin("sha256:00ff"); len(keys) != 1 || keys[0] != "ios/id.bank.ios" {
		t.Fatalf("stale pin entries: %v", keys)
	}
	if d := ix.Dest("api.bank.com"); len(d.PinnedBy) != 1 || d.PinnedBy[0] != "ios/id.bank.ios" {
		t.Fatalf("stale pinner list: %+v", d.PinnedBy)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := Build(nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := &core.ExportedDataset{}
	bad.Apps = []core.ExportedApp{{Name: "anonymous"}}
	if _, err := Build(bad); err == nil {
		t.Fatal("empty identity accepted")
	}
}
