package pinserve

// roundtrip_test.go closes the loop the subsystem exists for: a study is
// exported through the real JSON writer, read back with the strict reader,
// indexed, and the index must answer identically to the live study for
// every app.

import (
	"bytes"
	"sync"
	"testing"

	"pinscope/internal/core"
)

var (
	rtOnce  sync.Once
	rtStudy *core.Study
	rtErr   error
)

func rtShared(t *testing.T) *core.Study {
	t.Helper()
	rtOnce.Do(func() {
		rtStudy, rtErr = core.Run(core.TestConfig(777))
	})
	if rtErr != nil {
		t.Fatal(rtErr)
	}
	return rtStudy
}

func TestRoundTripIndexAnswers(t *testing.T) {
	s := rtShared(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := core.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Apps != len(ds.Apps) {
		t.Fatalf("index holds %d of %d apps", ix.Stats().Apps, len(ds.Apps))
	}

	pinners := 0
	for _, want := range ds.Apps {
		got := ix.App(want.Platform, want.ID)
		if got == nil {
			t.Fatalf("app %s/%s lost in round trip", want.Platform, want.ID)
		}
		if got.Name != want.Name || got.PinsDynamic != want.PinsDynamic ||
			got.StaticMaterial != want.StaticMaterial || got.NSCPinSet != want.NSCPinSet {
			t.Fatalf("verdict drifted for %s: %+v vs %+v", want.ID, got, want)
		}
		key := AppKey(want.Platform, want.ID)
		if want.PinsDynamic {
			pinners++
			for _, d := range want.PinnedDomains {
				di := ix.Dest(d)
				if di == nil {
					t.Fatalf("pinned destination %s unknown to index", d)
				}
				found := false
				for _, k := range di.PinnedBy {
					if k == key {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s missing from %s pinners %v", key, d, di.PinnedBy)
				}
			}
		}
		for _, pin := range want.PinSPKIHashes {
			found := false
			for _, k := range ix.AppsForPin(pin) {
				if k == key {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s missing from pin %s", key, pin)
			}
		}
	}
	if pinners == 0 {
		t.Fatal("round-trip study contains no pinners; test is vacuous")
	}
	// Probed destinations carry their classification through.
	for _, p := range ds.Destinations {
		di := ix.Dest(p.Host)
		if di == nil || di.Probe == nil {
			t.Fatalf("probe for %s lost", p.Host)
		}
		if *di.Probe != p {
			t.Fatalf("probe drifted for %s", p.Host)
		}
	}
}
