package pinserve

// bench_test.go measures the serving hot path on the committed paper-scale
// snapshot (~5k apps). BenchmarkPinserveLookup drives complete HTTP
// request handling (mux, middleware, JSON encoding) across a mixed query
// plan; the acceptance bar is ≥100k lookups/sec. BenchmarkIndexLookup
// isolates the raw index.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pinscope/internal/core"
)

const paperSnapshot = "../../dataset_paper_scale.json"

func loadPaperIndex(b *testing.B) (*Server, []*core.ExportedDataset) {
	b.Helper()
	ds, err := core.LoadExportedDataset(paperSnapshot)
	if err != nil {
		b.Skipf("paper-scale snapshot unavailable: %v", err)
	}
	s, err := New(Options{MaxInFlight: 1024, RequestTimeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Load(ds); err != nil {
		b.Fatal(err)
	}
	return s, []*core.ExportedDataset{ds}
}

// benchPlan builds the mixed lookup mix: every app, every pinned
// destination, every pin hash, plus the aggregate tables.
func benchPlan(datasets []*core.ExportedDataset) []string {
	var paths []string
	for _, ds := range datasets {
		for i := range ds.Apps {
			a := &ds.Apps[i]
			paths = append(paths, "/v1/app/"+a.Platform+"/"+a.ID)
			for _, d := range a.PinnedDomains {
				paths = append(paths, "/v1/dest/"+d)
			}
			for _, p := range a.PinSPKIHashes {
				paths = append(paths, "/v1/pins?spki="+p)
			}
		}
	}
	paths = append(paths, "/v1/tables/1", "/v1/tables/2", "/v1/tables/3", "/v1/healthz")
	return paths
}

func BenchmarkPinserveLookup(b *testing.B) {
	s, datasets := loadPaperIndex(b)
	h := s.Handler()
	paths := benchPlan(datasets)
	reqs := make([]*http.Request, len(paths))
	for i, p := range paths {
		reqs[i] = httptest.NewRequest("GET", p, nil)
	}
	var cursor atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(cursor.Add(1)) % len(reqs)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, reqs[i])
			if rec.Code != http.StatusOK {
				b.Fatalf("%s: %d", paths[i], rec.Code)
			}
		}
	})
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "lookups/s")
}

func BenchmarkIndexLookup(b *testing.B) {
	s, datasets := loadPaperIndex(b)
	ix := s.Index()
	type q struct{ platform, id string }
	var qs []q
	for _, ds := range datasets {
		for _, a := range ds.Apps {
			qs = append(qs, q{a.Platform, a.ID})
		}
	}
	b.ResetTimer()
	var cursor atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(cursor.Add(1)) % len(qs)
			if ix.App(qs[i].platform, qs[i].id) == nil {
				b.Fatalf("miss on %v", qs[i])
			}
		}
	})
}

// BenchmarkIndexBuild measures snapshot-swap cost (the reload path).
func BenchmarkIndexBuild(b *testing.B) {
	_, datasets := loadPaperIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := Build(datasets...)
		if err != nil {
			b.Fatal(err)
		}
		if ix.Stats().Apps == 0 {
			b.Fatal("empty build")
		}
	}
}
