package pinserve

// distrust_test.go covers the time-axis serving surface: the /v1/distrust
// reverse index (root fingerprint -> blast radius), lineage tracking from
// snapshot metadata, and the reload guard that refuses to swap a snapshot
// from a different root-program release under a live index.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pinscope/internal/core"
	"pinscope/internal/worldgen"
)

// fpA/fpB are well-formed SPKI SHA-256 fingerprints for hand-built probes.
var (
	fpA = strings.Repeat("ab", 32)
	fpB = strings.Repeat("cd", 32)
)

// releaseDataset is testDataset stamped with a lineage tag and root
// fingerprints on its probes.
func releaseDataset(release string) *core.ExportedDataset {
	ds := testDataset()
	ds.Meta.Release = release
	ds.Destinations[0].RootFP = fpA // api.bank.com
	ds.Destinations[1].RootFP = fpB // cdn.bank.com
	return ds
}

func TestDistrustIndex(t *testing.T) {
	ix, err := Build(releaseDataset("kitkat"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Release() != "kitkat" {
		t.Fatalf("Release() = %q", ix.Release())
	}
	if ix.Stats().Roots != 2 || ix.Stats().Release != "kitkat" {
		t.Fatalf("stats: %+v", ix.Stats())
	}

	a := ix.Distrust(strings.ToUpper(fpA)) // any case accepted
	if a == nil {
		t.Fatal("no answer for fpA")
	}
	if a.Release != "kitkat" || a.HostCount != 1 || a.Hosts[0] != "api.bank.com" {
		t.Fatalf("answer: %+v", a)
	}
	// api.bank.com is pinned by both bank apps and circumvented by the
	// Android one; the union is deduplicated and sorted by key.
	if a.AppCount != 2 || a.Apps[0].Key != "android/com.bank.app" || a.Apps[1].Key != "ios/id.bank.ios" {
		t.Fatalf("apps: %+v", a.Apps)
	}
	if _, ok := ix.DistrustJSON(fpB); !ok {
		t.Fatal("fpB not indexed")
	}
	if ix.Distrust(strings.Repeat("00", 32)) != nil {
		t.Fatal("unknown fingerprint answered")
	}
}

func TestBuildRejectsMixedReleases(t *testing.T) {
	if _, err := Build(releaseDataset("froyo"), releaseDataset("kitkat")); err == nil {
		t.Fatal("mixed-lineage build succeeded")
	}
	// A release-less snapshot carries no lineage and combines freely.
	ix, err := Build(testDataset(), releaseDataset("kitkat"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Release() != "kitkat" {
		t.Fatalf("Release() = %q", ix.Release())
	}
}

func TestDistrustEndpoint(t *testing.T) {
	s, err := New(Options{MaxInFlight: 8, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(releaseDataset("kitkat")); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	code, body := get(t, h, "/v1/distrust/"+strings.ToUpper(fpA))
	if code != http.StatusOK {
		t.Fatalf("hit: %d %s", code, body)
	}
	var a DistrustAnswer
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != fpA || a.Release != "kitkat" || a.AppCount != 2 {
		t.Fatalf("answer: %+v", a)
	}

	if code, _ := get(t, h, "/v1/distrust/"+strings.Repeat("00", 32)); code != http.StatusNotFound {
		t.Fatalf("unknown root: %d", code)
	}
	for _, bad := range []string{"zz", strings.Repeat("g", 64), strings.Repeat("ab", 40)} {
		if code, _ := get(t, h, "/v1/distrust/"+bad); code != http.StatusBadRequest {
			t.Fatalf("malformed %q: %d", bad, code)
		}
	}
}

// The acceptance path: a longitudinal sweep's per-point export answers a
// distrust-impact query for the root the timeline actually distrusts.
func TestDistrustAgainstLongitudinalSnapshot(t *testing.T) {
	cfg := core.Config{
		Params: worldgen.Params{
			Seed:       77,
			CommonSize: 3, PopularSize: 4, RandomSize: 4,
			StoreAndroid: 400, StoreIOS: 390,
			CrossProducts: 4, PopularCut: 120,
		},
		Window: 30,
	}
	ls, err := core.RunLongitudinal(cfg, core.TimelineConfig{Points: []string{"kitkat"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ls.ExportPoint(&buf, "kitkat"); err != nil {
		t.Fatal(err)
	}
	ds, err := core.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{MaxInFlight: 8, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(ds); err != nil {
		t.Fatal(err)
	}
	ev, err := ls.World.Timeline.Event("ca-distrust")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, s.Handler(), "/v1/distrust/"+ev.Fingerprint)
	if code != http.StatusOK {
		t.Fatalf("distrusted public CA unknown to snapshot: %d %s", code, body)
	}
	var a DistrustAnswer
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Release != "kitkat" || a.HostCount == 0 || a.AppCount == 0 {
		t.Fatalf("empty blast radius for a live public CA: %+v", a)
	}
}

// A reload must not move a live index across root-program releases; the
// failure is sticky in /v1/stats until a same-lineage reload succeeds.
func TestReloadRejectsLineageMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	write := func(ds *core.ExportedDataset) {
		t.Helper()
		js, err := json.Marshal(ds)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(releaseDataset("froyo"))
	s, err := New(Options{Paths: []string{path}, MaxInFlight: 8, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	post := func() (int, string) {
		req := httptest.NewRequest("POST", "/v1/reload", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	write(releaseDataset("kitkat"))
	code, body := post()
	if code != http.StatusInternalServerError || !strings.Contains(body, "release lineage mismatch") {
		t.Fatalf("cross-lineage reload: %d %s", code, body)
	}
	if got := s.Index().Release(); got != "froyo" {
		t.Fatalf("served lineage moved to %q", got)
	}
	code, stBody := get(t, h, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st statsResponse
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.ReloadFailures != 1 || !strings.Contains(st.LastReloadError, "release lineage mismatch") {
		t.Fatalf("stats after rejected reload: failures=%d lastErr=%q", st.ReloadFailures, st.LastReloadError)
	}

	// Same-lineage snapshots still reload, clearing the sticky error.
	write(releaseDataset("froyo"))
	if code, body := post(); code != http.StatusOK {
		t.Fatalf("same-lineage reload: %d %s", code, body)
	}
	if st := func() statsResponse {
		_, body := get(t, h, "/v1/stats")
		var st statsResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}(); st.LastReloadError != "" {
		t.Fatalf("sticky error not cleared: %q", st.LastReloadError)
	}
}
