package worldgen

import (
	"fmt"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
)

// materializeCommonPairs builds both platform versions of every common app.
// Cross-platform pinning behaviour follows the §5.1 class distribution: the
// same product may pin identically, partially, contradictorily, or on one
// platform only — or not at all.
func (w *World) materializeCommonPairs() error {
	da, di := w.DS.CommonAndroid, w.DS.CommonIOS
	avg := w.avgCatMult(da)
	for idx := range da.Listings {
		la, li := da.Listings[idx], di.Listings[idx]
		rng := w.rng.Child("pair/" + la.CrossKey)
		class := drawPairClass(rng, catMultOf(la.Category)/avg)

		slug := w.slugFor(la.Name, "pair/"+la.CrossKey)
		base := slug + ".com"
		api := "api." + base
		www := "www." + base
		syncA := "sync." + base // contacted by Android builds only
		imgI := "img." + base   // contacted by iOS builds only
		cfgI := "cfg." + base

		bpA := &blueprint{listing: la, tier: TierCommon, fpPinned: map[string]bool{}, forceUsedFP: true, caPinOnly: true}
		bpI := &blueprint{listing: li, tier: TierCommon, fpPinned: map[string]bool{}, forceUsedFP: true, caPinOnly: true}

		pinA := func(ds ...string) {
			bpA.pins, bpA.fpPin = true, true
			for _, d := range ds {
				bpA.fpPinned[d] = true
			}
		}
		pinI := func(ds ...string) {
			bpI.pins, bpI.fpPin = true, true
			for _, d := range ds {
				bpI.fpPinned[d] = true
			}
		}

		switch class {
		case pairNeither:
			bpA.fpContact = []string{api, www}
			bpI.fpContact = []string{api, www}

		case pairBothIdentical:
			bpA.fpContact = []string{api, www}
			bpI.fpContact = []string{api, www}
			if rng.Bool(0.5) {
				pinA(api)
				pinI(api)
			} else {
				pinA(api, www)
				pinI(api, www)
			}

		case pairBothSubset:
			// One shared pinned domain; each platform pins extras the other
			// never contacts (consistent but non-identical sets).
			bpA.fpContact = []string{api, syncA}
			bpI.fpContact = []string{api, imgI, cfgI}
			pinA(api, syncA)
			pinI(api, imgI, cfgI)

		case pairBothInconsistent:
			if rng.Bool(0.4) {
				// Overlapping variant: both pin api; Android also pins www,
				// which iOS uses unpinned.
				bpA.fpContact = []string{api, www}
				bpI.fpContact = []string{api, www}
				pinA(api, www)
				pinI(api)
			} else {
				// Disjoint variant: each pins what the other leaves open.
				bpA.fpContact = []string{api, www}
				bpI.fpContact = []string{api, www}
				pinA(www)
				pinI(api)
			}

		case pairBothInconclusive:
			// Both pin, but only platform-exclusive domains.
			bpA.fpContact = []string{www, syncA}
			bpI.fpContact = []string{www, imgI}
			pinA(syncA)
			pinI(imgI)

		case pairAndroidOnlyInconsistent:
			bpA.fpContact = []string{api, www}
			bpI.fpContact = []string{api, www}
			pinA(api)

		case pairAndroidOnlyInconclusive:
			bpA.fpContact = []string{syncA, www}
			bpI.fpContact = []string{www, imgI}
			pinA(syncA)

		case pairIOSOnlyInconsistent:
			bpA.fpContact = []string{api, www}
			bpI.fpContact = []string{api, www}
			pinI(api)

		case pairIOSOnlyInconclusive:
			bpA.fpContact = []string{www, syncA}
			bpI.fpContact = []string{www, imgI}
			pinI(imgI)
		}

		appA, err := w.buildApp(bpA, rng.Child("android"))
		if err != nil {
			return fmt.Errorf("worldgen: pair %s android: %w", la.CrossKey, err)
		}
		appI, err := w.buildApp(bpI, rng.Child("ios"))
		if err != nil {
			return fmt.Errorf("worldgen: pair %s ios: %w", la.CrossKey, err)
		}
		w.apps[string(appmodel.Android)+"/"+la.ID] = appA
		w.apps[string(appmodel.IOS)+"/"+li.ID] = appI
		w.CommonPairs = append(w.CommonPairs, &CommonPair{
			Name: la.Name, Android: appA, IOS: appI, TruthClass: classNames[class],
		})
	}
	return nil
}

var classNames = map[pairClass]string{
	pairNeither:                 "neither",
	pairBothIdentical:           "both-identical",
	pairBothSubset:              "both-subset",
	pairBothInconsistent:        "both-inconsistent",
	pairBothInconclusive:        "both-inconclusive",
	pairAndroidOnlyInconsistent: "android-only-inconsistent",
	pairAndroidOnlyInconclusive: "android-only-inconclusive",
	pairIOSOnlyInconsistent:     "ios-only-inconsistent",
	pairIOSOnlyInconclusive:     "ios-only-inconclusive",
}

// drawPairClass samples a consistency class. catBoost scales the overall
// probability of pinning at all (finance products pin more, on both
// platforms), leaving the conditional class mix unchanged.
func drawPairClass(rng *detrand.Source, catBoost float64) pairClass {
	var pinW, noneW float64
	for _, cw := range pairClassWeights {
		if cw.class == pairNeither {
			noneW += cw.w
		} else {
			pinW += cw.w
		}
	}
	pPin := pinW / (pinW + noneW) * catBoost
	if pPin > 0.95 {
		pPin = 0.95
	}
	if !rng.Bool(pPin) {
		return pairNeither
	}
	weights := make([]float64, 0, len(pairClassWeights))
	classes := make([]pairClass, 0, len(pairClassWeights))
	for _, cw := range pairClassWeights {
		if cw.class == pairNeither {
			continue
		}
		classes = append(classes, cw.class)
		weights = append(weights, cw.w)
	}
	return classes[rng.WeightedIndex(weights)]
}
