package worldgen

import (
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/pki"
	"pinscope/internal/staticanalysis"
)

func buildTestWorld(t *testing.T, seed int64) *World {
	t.Helper()
	w, err := Build(TestParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allApps(w *World) []*appmodel.App {
	var out []*appmodel.App
	seen := map[string]bool{}
	for _, ds := range w.DS.All() {
		for _, a := range w.Apps(ds) {
			key := string(a.Platform) + "/" + a.ID
			if !seen[key] {
				seen[key] = true
				out = append(out, a)
			}
		}
	}
	return out
}

func TestBuildSizes(t *testing.T) {
	w := buildTestWorld(t, 1)
	if n := len(w.DS.CommonAndroid.Listings); n != 60 {
		t.Fatalf("common size %d", n)
	}
	if n := len(w.DS.PopularAndroid.Listings); n != 100 {
		t.Fatalf("popular size %d", n)
	}
	if len(w.CommonPairs) != 60 {
		t.Fatalf("%d common pairs", len(w.CommonPairs))
	}
	for _, ds := range w.DS.All() {
		for _, l := range ds.Listings {
			if w.App(l) == nil {
				t.Fatalf("listing %s/%s not materialized", l.Platform, l.ID)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	w1 := buildTestWorld(t, 2)
	w2 := buildTestWorld(t, 2)
	a1, a2 := allApps(w1), allApps(w2)
	if len(a1) != len(a2) {
		t.Fatalf("app counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		x, y := a1[i], a2[i]
		if x.ID != y.ID || x.Truth.PinsAtRuntime != y.Truth.PinsAtRuntime ||
			len(x.Conns) != len(y.Conns) {
			t.Fatalf("app %d differs: %s/%v/%d vs %s/%v/%d",
				i, x.ID, x.Truth.PinsAtRuntime, len(x.Conns),
				y.ID, y.Truth.PinsAtRuntime, len(y.Conns))
		}
		for j := range x.Conns {
			if x.Conns[j].Host != y.Conns[j].Host || x.Conns[j].At != y.Conns[j].At {
				t.Fatalf("conn %d of %s differs", j, x.ID)
			}
		}
	}
}

// TestPinnedAppsWork is the central world invariant: every pinned
// connection's pin set matches the chain its destination actually serves,
// and the chain validates against the trust configuration the connection
// uses — pinning apps must function when not intercepted.
func TestPinnedAppsWork(t *testing.T) {
	w := buildTestWorld(t, 3)
	deviceStores := map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM,
		appmodel.IOS:     w.Eco.IOS,
	}
	checked := 0
	for _, a := range allApps(w) {
		for _, c := range a.Conns {
			h := w.Hosts[c.Host]
			if h == nil {
				t.Fatalf("app %s contacts unknown host %s", a.ID, c.Host)
			}
			if c.Pins.Empty() {
				continue
			}
			checked++
			if !c.Pins.MatchChain(h.Chain) {
				t.Fatalf("app %s: pins for %s do not match served chain", a.ID, c.Host)
			}
			store := deviceStores[a.Platform]
			if c.TrustAnchors != nil {
				store = c.TrustAnchors
			}
			if err := h.Chain.Validate(store, c.Host, pki.StudyEpoch); err != nil {
				t.Fatalf("app %s: chain for %s fails validation: %v", a.ID, c.Host, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pinned connections in the world")
	}
}

func TestPinningRatesShape(t *testing.T) {
	// With a 100-app popular set, rates are noisy; assert ordering and
	// loose ranges rather than exact values.
	w := buildTestWorld(t, 4)
	rate := func(ds interface{ apps(*World) []*appmodel.App }) float64 { return 0 }
	_ = rate
	count := func(apps []*appmodel.App) (pin, static int) {
		for _, a := range apps {
			if a.Truth.PinsAtRuntime {
				pin++
			}
			if a.Truth.EmbedsPinMaterial {
				static++
			}
		}
		return
	}
	pa, sa := count(w.Apps(w.DS.PopularAndroid))
	pi, si := count(w.Apps(w.DS.PopularIOS))
	ra, _ := count(w.Apps(w.DS.RandomAndroid))
	ri, _ := count(w.Apps(w.DS.RandomIOS))

	if pi <= pa/2 {
		t.Fatalf("iOS popular pinning (%d) should exceed Android (%d)", pi, pa)
	}
	if ra >= pa || ri >= pi {
		t.Fatalf("random pinning (%d/%d) should be far below popular (%d/%d)", ra, ri, pa, pi)
	}
	if sa <= pa || si <= pi {
		t.Fatalf("static material (%d/%d) should exceed dynamic pinning (%d/%d)", sa, si, pa, pi)
	}
}

func TestCommonPairClassesRealized(t *testing.T) {
	w := buildTestWorld(t, 5)
	classes := map[string]int{}
	for _, p := range w.CommonPairs {
		classes[p.TruthClass]++
		pinsA := p.Android.Truth.PinsAtRuntime
		pinsI := p.IOS.Truth.PinsAtRuntime
		switch p.TruthClass {
		case "neither":
			if pinsA || pinsI {
				t.Fatalf("pair %s class neither but pins %v/%v", p.Name, pinsA, pinsI)
			}
		case "both-identical":
			if !pinsA || !pinsI {
				t.Fatalf("pair %s class both-identical but pins %v/%v", p.Name, pinsA, pinsI)
			}
			sa, si := p.Android.PinnedHostSet(), p.IOS.PinnedHostSet()
			if len(sa) != len(si) {
				t.Fatalf("pair %s identical sets differ in size", p.Name)
			}
			for h := range sa {
				if !si[h] {
					t.Fatalf("pair %s pinned sets differ at %s", p.Name, h)
				}
			}
		case "android-only-inconsistent", "android-only-inconclusive":
			if !pinsA || pinsI {
				t.Fatalf("pair %s class %s but pins %v/%v", p.Name, p.TruthClass, pinsA, pinsI)
			}
		case "ios-only-inconsistent", "ios-only-inconclusive":
			if pinsA || !pinsI {
				t.Fatalf("pair %s class %s but pins %v/%v", p.Name, p.TruthClass, pinsA, pinsI)
			}
		}
	}
	if classes["neither"] == 0 {
		t.Fatal("no neither pairs — class draw broken")
	}
}

func TestStaticMaterialIsScannable(t *testing.T) {
	w := buildTestWorld(t, 6)
	found, pinningApps := 0, 0
	for _, a := range allApps(w) {
		if !a.Truth.PinsAtRuntime || a.Truth.Obfuscated {
			continue
		}
		pinningApps++
		if a.Platform == appmodel.IOS {
			a.Pkg.DecryptIOS()
		}
		r, err := staticanalysis.Analyze(a)
		if err != nil {
			t.Fatalf("analyze %s: %v", a.ID, err)
		}
		if r.HasCertMaterial() {
			found++
		}
	}
	if pinningApps == 0 {
		t.Fatal("no unobfuscated pinning apps")
	}
	// First-party pin material is always scannable; SDK-only pinning apps
	// embed material through their SDK dirs, also scannable.
	if found < pinningApps*8/10 {
		t.Fatalf("static analysis found material in only %d/%d pinning apps", found, pinningApps)
	}
}

func TestObfuscatedAppsHideFromStatic(t *testing.T) {
	// Obfuscated FP-pinning apps without pinning SDKs must yield nothing.
	w := buildTestWorld(t, 7)
	for _, a := range allApps(w) {
		if !a.Truth.Obfuscated || a.Platform == appmodel.IOS {
			continue
		}
		r, err := staticanalysis.Analyze(a)
		if err != nil {
			t.Fatal(err)
		}
		// The app may still carry SDK material; but its own pins are gone.
		for _, p := range r.Pins {
			if p.Path == "smali/"+a.ID+"/net/PinningConfig.smali" {
				t.Fatalf("obfuscated app %s leaked first-party pins", a.ID)
			}
		}
	}
}

func TestIOSPackagesEncrypted(t *testing.T) {
	w := buildTestWorld(t, 8)
	for _, a := range allApps(w) {
		if a.Platform != appmodel.IOS {
			continue
		}
		if !a.Pkg.Encrypted {
			t.Fatalf("iOS app %s not encrypted", a.ID)
		}
		if _, err := staticanalysis.Analyze(a); err == nil {
			t.Fatalf("encrypted iOS app %s accepted by static analysis", a.ID)
		}
		break
	}
}

func TestHostsServeValidChains(t *testing.T) {
	w := buildTestWorld(t, 9)
	for host, h := range w.Hosts {
		if h.SelfSigned || h.CustomPKI {
			continue
		}
		if w.Eco.IsDefaultPKI(h.Chain, host) != true {
			t.Fatalf("public host %s chain not default-PKI", host)
		}
	}
}

func TestSelfSignedTrustAnchorValidates(t *testing.T) {
	// The trust configuration generated for self-signed pinned hosts must
	// actually validate in crypto/x509, or those apps would be broken.
	w := buildTestWorld(t, 10)
	for _, h := range w.Hosts {
		if !h.SelfSigned {
			continue
		}
		store := pki.NewRootStore("anchor")
		store.Add(h.CustomRoot)
		if err := h.Chain.Validate(store, h.Host, pki.StudyEpoch); err != nil {
			t.Fatalf("self-signed host %s rejected by its own anchor: %v", h.Host, err)
		}
		return
	}
	t.Skip("no self-signed host in this seed")
}

func TestRotatedLeavesKeepPins(t *testing.T) {
	w := buildTestWorld(t, 11)
	rotated := 0
	for _, h := range w.Hosts {
		if h.OriginalLeaf == nil {
			continue
		}
		rotated++
		if h.Chain.Leaf().Equal(h.OriginalLeaf) {
			t.Fatalf("host %s marked rotated but serves original leaf", h.Host)
		}
		// Key reuse: SPKI pin of the original matches the served leaf.
		pin := pki.NewPin(h.OriginalLeaf, pki.SHA256)
		if !pin.Matches(h.Chain.Leaf()) {
			t.Fatalf("host %s rotation changed the key", h.Host)
		}
	}
	t.Logf("%d rotated hosts", rotated)
}

func TestAssociatedDomainsExist(t *testing.T) {
	w := buildTestWorld(t, 12)
	withAssoc := 0
	for _, a := range allApps(w) {
		if a.Platform != appmodel.IOS {
			continue
		}
		if len(a.AssociatedDomains) > 0 {
			withAssoc++
		}
		for _, d := range a.AssociatedDomains {
			if w.Hosts[d] == nil {
				t.Fatalf("associated domain %s of %s has no server", d, a.ID)
			}
		}
	}
	if withAssoc == 0 {
		t.Fatal("no iOS apps with associated domains")
	}
}

func TestConnCountsPlausible(t *testing.T) {
	w := buildTestWorld(t, 13)
	apps := allApps(w)
	total := 0
	for _, a := range apps {
		if len(a.Conns) < 3 {
			t.Fatalf("app %s has only %d connections", a.ID, len(a.Conns))
		}
		total += len(a.Conns)
	}
	avg := float64(total) / float64(len(apps))
	if avg < 8 || avg > 40 {
		t.Fatalf("average connections per app %.1f outside plausible band", avg)
	}
}

func TestNetworkInstallsAllHosts(t *testing.T) {
	w := buildTestWorld(t, 14)
	n := w.NewNetwork(true)
	for host := range w.Hosts {
		if !n.HasHost(host) {
			t.Fatalf("host %s not installed", host)
		}
	}
	// Flaky hosts disappear from the probe network.
	nProbe := w.NewNetwork(false)
	flaky := 0
	for host, h := range w.Hosts {
		if h.Flaky {
			flaky++
			if nProbe.HasHost(host) {
				t.Fatalf("flaky host %s present in probe network", host)
			}
		}
	}
	t.Logf("%d flaky hosts", flaky)
}
