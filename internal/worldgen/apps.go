package worldgen

import (
	"crypto/x509"
	"fmt"
	"sort"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/apppkg"
	"pinscope/internal/appstore"
	"pinscope/internal/detrand"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/sdkregistry"
	"pinscope/internal/tlswire"
)

// blueprint carries the per-app generation decisions into buildApp.
type blueprint struct {
	listing *appstore.Listing
	tier    Tier

	pins          bool
	fpPin, sdkPin bool
	pinEverything bool

	// fpContact is the list of first-party domains this build contacts;
	// fpPinned the subset it pins. Pairs preset these; singles derive them.
	fpContact []string
	fpPinned  map[string]bool

	// allowCustomPKI gates the custom/self-signed destination draws (off
	// for common pairs, which share first-party hosts across platforms).
	allowCustomPKI bool
	// forceUsedFP guarantees first-party connections transmit data, so a
	// pair's consistency class survives into the traffic (pairs only).
	forceUsedFP bool
	// caPinOnly restricts pin configurations to CA pins; pairs share hosts
	// across platforms, so leaf rotation games are off-limits.
	caPinOnly bool
}

// materializeDataset builds every not-yet-built app of a dataset.
func (w *World) materializeDataset(ds *appstore.Dataset, tier Tier) error {
	avg := w.avgCatMult(ds)
	for _, l := range ds.Listings {
		key := string(l.Platform) + "/" + l.ID
		if _, done := w.apps[key]; done {
			continue // dataset collision: reuse the first materialization
		}
		rng := w.rng.Child("plan/" + key)
		base := dynPinRate[l.Platform][tier]
		p := base * catMultOf(l.Category) / avg
		if p > 0.9 {
			p = 0.9
		}
		bp := &blueprint{listing: l, tier: tier, pins: rng.Bool(p), allowCustomPKI: true}
		w.planSingle(bp, rng)
		app, err := w.buildApp(bp, rng)
		if err != nil {
			return err
		}
		w.apps[key] = app
	}
	return nil
}

// avgCatMult is the dataset-mean category multiplier, used to normalize so
// the tier-average pinning rate stays on target.
func (w *World) avgCatMult(ds *appstore.Dataset) float64 {
	if len(ds.Listings) == 0 {
		return 1
	}
	var sum float64
	for _, l := range ds.Listings {
		sum += catMultOf(l.Category)
	}
	return sum / float64(len(ds.Listings))
}

func catMultOf(cat string) float64 {
	if m, ok := catPinMult[cat]; ok {
		return m
	}
	return 1
}

// planSingle fills the pinning-shape decisions for a non-common app: which
// first-party domains exist and which are pinned.
func (w *World) planSingle(bp *blueprint, rng *detrand.Source) {
	l := bp.listing
	slug := w.slugFor(l.Name, string(l.Platform)+"/"+l.ID)
	nFP := 1 + rng.Intn(3)
	subs := []string{"api", "www", "cdn", "sync"}
	for i := 0; i < nFP; i++ {
		bp.fpContact = append(bp.fpContact, subs[i]+"."+slug+".com")
	}
	bp.fpPinned = map[string]bool{}
	if !bp.pins {
		return
	}
	mech := rng.Float64()
	switch {
	case mech < pinMechanismFirstParty:
		bp.fpPin = true
	case mech < pinMechanismFirstParty+pinMechanismBoth:
		bp.fpPin, bp.sdkPin = true, true
	default:
		bp.sdkPin = true
	}
	bp.pinEverything = rng.Bool(pinEverythingRate)
	if bp.pinEverything {
		bp.fpPin = true
	}
	// Pure-SDK apps: third-party-pinning apps often contact no
	// developer-owned domain at all (Figure 5's Android claim).
	if bp.sdkPin && !bp.fpPin {
		noFP := sdkOnlyNoFPRateAndroid
		if l.Platform == appmodel.IOS {
			noFP = sdkOnlyNoFPRateIOS
		}
		if rng.Bool(noFP) {
			bp.fpContact = nil
		}
	}
	if bp.fpPin {
		pinAllRate := androidPinAllFPRate
		if l.Platform == appmodel.IOS {
			pinAllRate = iosPinAllFPRate
		}
		if bp.pinEverything || rng.Bool(pinAllRate) {
			for _, d := range bp.fpContact {
				bp.fpPinned[d] = true
			}
		} else {
			// Pin a strict subset (at least one, at least one left out).
			k := 1
			if len(bp.fpContact) > 2 {
				k += rng.Intn(len(bp.fpContact) - 1)
			}
			for _, d := range detrand.Sample(rng, bp.fpContact, k) {
				bp.fpPinned[d] = true
			}
		}
	}
}

// fpPinMaterial is the runtime+static pin configuration for one pinned
// first-party destination.
type fpPinMaterial struct {
	host      string
	runtime   *pki.PinSet
	anchors   *pki.RootStore // non-nil for custom-PKI/self-signed hosts
	embedCert *x509.Certificate
	embedPins []pki.Pin
}

// buildApp materializes the app: hosts, behaviour plan and package bytes.
func (w *World) buildApp(bp *blueprint, rng *detrand.Source) (*appmodel.App, error) {
	l := bp.listing
	app := &appmodel.App{
		ID:        l.ID,
		Name:      l.Name,
		Developer: l.Developer,
		Platform:  l.Platform,
		Category:  l.Category,
		CrossKey:  l.CrossKey,
		// The root-program release the app shipped against. Drawn from a
		// dedicated child stream so adding the time axis did not perturb
		// any pre-existing draw in this function.
		Release: w.Timeline.AssignRelease(rng.Child("release"), l.Platform),
	}

	// --- first-party hosts -------------------------------------------------
	var fpMaterials []fpPinMaterial
	for _, d := range bp.fpContact {
		pinned := bp.fpPinned[d]
		h, ok := w.Hosts[d]
		if !ok {
			var err error
			switch {
			case pinned && bp.allowCustomPKI && rng.Child("ss/"+d).Bool(selfSignedRate):
				years := 10
				if rng.Bool(0.5) {
					years = 27
				}
				h, err = w.addSelfSignedHost(d, l.Developer, years)
			case pinned && bp.allowCustomPKI && rng.Child("cp/"+d).Bool(customPKIRateFor(l.Platform)):
				h, err = w.addCustomHost(d, l.Developer)
			default:
				h, err = w.addPublicHost(d, KindFirstParty, l.Developer,
					rng.Child("wp/"+d).Bool(whoisPrivateRate))
			}
			if err != nil {
				return nil, err
			}
		}
		if !pinned {
			continue
		}
		mat, err := w.fpPinConfig(h, rng.Child("pin/"+d), bp.caPinOnly)
		if err != nil {
			return nil, err
		}
		fpMaterials = append(fpMaterials, mat)
		if !h.CustomPKI && !h.SelfSigned && rng.Child("flaky/"+d).Bool(flakyHostRate) {
			h.Flaky = true
		}
	}
	fpMatByHost := map[string]fpPinMaterial{}
	for _, m := range fpMaterials {
		fpMatByHost[m.host] = m
	}

	// --- SDK selection -----------------------------------------------------
	var sdks []sdkregistry.SDK
	tierMult := sdkTierMult[bp.tier]
	for _, s := range sdkregistry.Catalog(l.Platform) {
		p := s.Weight * tierMult
		if p > 0.95 {
			p = 0.95
		}
		if rng.Child("sdk/" + s.Name).Bool(p) {
			sdks = append(sdks, s)
		}
	}
	if bp.sdkPin {
		hasPinning := false
		for _, s := range sdks {
			if s.Pinning && len(s.PinnedDomains) > 0 {
				hasPinning = true
				break
			}
		}
		if !hasPinning {
			cands := sdkregistry.PinningSDKs(l.Platform)
			var usable []sdkregistry.SDK
			weights := []float64{}
			for _, s := range cands {
				if len(s.PinnedDomains) > 0 {
					usable = append(usable, s)
					weights = append(weights, s.Weight)
				}
			}
			sdks = append(sdks, usable[rng.WeightedIndex(weights)])
		}
	}

	// --- shared third-party pool -------------------------------------------
	nMisc := rng.NormInt(miscDomainsMean, miscDomainsSpread, miscDomainsMin, miscDomainsMax)
	miscHosts := detrand.Sample(rng.Child("misc"), w.pool, nMisc)

	// --- behaviour plan ------------------------------------------------------
	weakGeneric := rng.Bool(weakGenericRate[l.Platform][bp.tier])
	weakPinned := bp.pins && rng.Bool(weakPinnedRate[l.Platform][bp.tier])
	failureMode := tlswire.FailureMode(rng.WeightedIndex(pinFailureModeWeights))
	fpLib := pickLib(rng, fpLibMix[l.Platform])
	fpPinLib := pickLib(rng, fpPinnedLibMix[l.Platform])

	arrival := func(r *detrand.Source) float64 {
		weights := make([]float64, len(arrivalBuckets))
		for i, b := range arrivalBuckets {
			weights[i] = b.w
		}
		b := arrivalBuckets[r.WeightedIndex(weights)]
		return b.min + r.Float64()*(b.max-b.min)
	}
	version := func(r *detrand.Source) tlswire.Version {
		return []tlswire.Version{tlswire.TLS13, tlswire.TLS12, tlswire.TLS11}[r.WeightedIndex(versionMixWeights)]
	}

	pinnedHostSet := map[string]bool{}
	addConn := func(r *detrand.Source, host string, kind HostKind, pins *pki.PinSet,
		anchors *pki.RootStore, lib appmodel.TLSLib, kinds []pii.Kind, path string) {
		if bp.pinEverything && pins == nil {
			pins = w.chainCAPin(host)
			// Pin-everything apps run every connection through the one
			// stack that implements their global pinning policy.
			lib = fpPinLib
		}
		weak := weakGeneric
		if pins != nil {
			weak = weakPinned
		}
		ciphers := tlswire.ModernSuites
		if weak {
			ciphers = tlswire.LegacySuites
		}
		used := r.Bool(usedConnRate)
		at := arrival(r)
		if pins != nil {
			// Apps exercise the APIs they bothered to pin: pinned primaries
			// transmit data, early in the session.
			used = true
			if at > 25 {
				at = r.Float64() * 20
			}
		}
		if bp.forceUsedFP && kind == KindFirstParty {
			used = true
		}
		pc := appmodel.PlannedConn{
			Host: host, At: at,
			Used:         used,
			Pins:         pins,
			TrustAnchors: anchors,
			FailureMode:  failureMode,
			MaxVersion:   version(r),
			Ciphers:      ciphers,
			Lib:          lib,
			PIIKinds:     kinds,
			Path:         path,
			FirstParty:   kind == KindFirstParty,
		}
		app.Conns = append(app.Conns, pc)
		if pins != nil {
			pinnedHostSet[host] = true
		}
		if r.Bool(redundantConnRate) {
			red := pc
			red.Used = false
			red.At = arrival(r)
			red.PIIKinds = nil
			app.Conns = append(app.Conns, red)
		}
	}

	fpPinnedAdIDRate := fpPinnedAdIDRateAndroid
	adIDBoost := pinnedAdIDBoostAndroid
	if l.Platform == appmodel.IOS {
		fpPinnedAdIDRate = fpPinnedAdIDRateIOS
		adIDBoost = pinnedAdIDBoostIOS
	}

	// First-party connections.
	for i, d := range bp.fpContact {
		r := rng.ChildN("fpconn", i)
		var pins *pki.PinSet
		var anchors *pki.RootStore
		lib := fpLib
		if m, ok := fpMatByHost[d]; ok {
			pins = m.runtime
			anchors = m.anchors
			lib = fpPinLib
		}
		kinds := fpPIIKinds(r)
		if pins != nil && r.Bool(fpPinnedAdIDRate) {
			kinds = append(kinds, pii.AdID)
		}
		addConn(r, d, KindFirstParty, pins, anchors, lib, kinds, "/api/v1/sync")
		if r.Bool(fpExtraConnRate) {
			addConn(r.Child("x"), d, KindFirstParty, pins, anchors, lib, nil, "/api/v1/state")
		}
	}

	// SDK connections.
	for i, s := range sdks {
		r := rng.ChildN("sdkconn", i)
		sdkPinSet := w.sdkPins[string(l.Platform)+"/"+s.Name]
		active := bp.sdkPin && s.Pinning
		pinnedDomains := map[string]bool{}
		for _, d := range s.PinnedDomains {
			pinnedDomains[d] = true
		}
		for j, d := range s.Domains {
			cr := r.ChildN("d", j)
			var pins *pki.PinSet
			adRate := s.AdIDRate
			if active && pinnedDomains[d] {
				pins = sdkPinSet
				adRate *= adIDBoost
				if adRate > 0.95 {
					adRate = 0.95
				}
			}
			var kinds []pii.Kind
			if cr.Bool(adRate) {
				kinds = append(kinds, pii.AdID)
			}
			addConn(cr, d, KindSDK, pins, nil, s.Lib, kinds, "/v2/events")
		}
		// TrustKit pins the host app's own domains rather than SDK hosts;
		// when it is the forced pinning SDK the first-party conns above
		// already carry pins, so nothing extra here.
	}

	// Shared third-party pool connections.
	for i, h := range miscHosts {
		r := rng.ChildN("misc", i)
		var kinds []pii.Kind
		rate := map[HostKind]float64{
			KindCDN: cdnAdIDRate, KindAds: adPoolAdIDRate,
			KindMetrics: adPoolAdIDRate * 0.8, KindAPI: 0.04,
		}[h.Kind]
		if r.Bool(rate) {
			kinds = append(kinds, pii.AdID)
		}
		path := map[HostKind]string{
			KindCDN: "/assets/app.js", KindAds: "/ad/bid",
			KindMetrics: "/collect", KindAPI: "/v1/query",
		}[h.Kind]
		addConn(r, h.Host, h.Kind, nil, nil, fpLib, kinds, path)
	}

	// Tail connection for the sleep-sweep shape.
	if rng.Bool(lateConnRate) && len(miscHosts) > 0 {
		r := rng.Child("late")
		h := miscHosts[0]
		pc := appmodel.PlannedConn{
			Host: h.Host, At: 30 + r.Float64()*30, Used: true,
			MaxVersion: version(r), Ciphers: tlswire.ModernSuites,
			Lib: fpLib, Path: "/v1/heartbeat",
		}
		if bp.pinEverything {
			pc.Pins = w.chainCAPin(h.Host)
			pinnedHostSet[h.Host] = true
		}
		app.Conns = append(app.Conns, pc)
	}

	// --- iOS associated domains ---------------------------------------------
	if l.Platform == appmodel.IOS && rng.Child("assoc").Bool(assocDomainRate) {
		r := rng.Child("assocd")
		n := assocDomainMin + r.Intn(assocDomainMax-assocDomainMin+1)
		seen := map[string]bool{}
		// Associated domains point at websites (universal links), so
		// non-pinned hosts like www dominate; pinned API hosts appear only
		// occasionally. This matters: the §4.5 exclusion silences pinning
		// signals on associated domains outside the Common re-run.
		for _, d := range bp.fpContact {
			if len(app.AssociatedDomains) >= n {
				break
			}
			if bp.fpPinned[d] && !r.Bool(0.15) {
				continue
			}
			if !seen[d] {
				seen[d] = true
				app.AssociatedDomains = append(app.AssociatedDomains, d)
			}
		}
		extras := []string{"links", "get", "share", "open", "go", "m"}
		slugDomain := ""
		if len(bp.fpContact) > 0 {
			parts := strings.SplitN(bp.fpContact[0], ".", 2)
			if len(parts) == 2 {
				slugDomain = parts[1]
			}
		}
		for i := 0; len(app.AssociatedDomains) < n && slugDomain != "" && i < len(extras); i++ {
			d := extras[i] + "." + slugDomain
			if _, err := w.addPublicHost(d, KindFirstParty, l.Developer, false); err != nil {
				return nil, err
			}
			app.AssociatedDomains = append(app.AssociatedDomains, d)
		}
	}

	// --- package -------------------------------------------------------------
	obfuscated := bp.pins && rng.Child("obf").Bool(obfuscationRate)
	embedExtra := !bp.pins && rng.Child("extra").Bool(staticExtraRate[l.Platform][bp.tier])
	w.buildPackage(app, bp, rng.Child("pkg"), fpMaterials, sdks, obfuscated, embedExtra)

	// --- ground truth ---------------------------------------------------------
	app.Truth.PinsAtRuntime = len(pinnedHostSet) > 0
	for h := range pinnedHostSet {
		app.Truth.PinnedHosts = append(app.Truth.PinnedHosts, h)
	}
	sort.Strings(app.Truth.PinnedHosts)
	app.Truth.Obfuscated = obfuscated
	return app, nil
}

func customPKIRateFor(p appmodel.Platform) float64 {
	if p == appmodel.Android {
		return customPKIRateAndroid
	}
	return customPKIRateIOS
}

// chainCAPin returns a pin set pinning the host chain's CA (or the leaf for
// chains without one).
func (w *World) chainCAPin(host string) *pki.PinSet {
	h := w.Hosts[host]
	if h == nil {
		return nil
	}
	target := h.Chain.Leaf()
	if len(h.Chain) > 1 {
		target = h.Chain[1]
	}
	return &pki.PinSet{Pins: []pki.Pin{pki.NewPin(target, pki.SHA256)}}
}

// fpPinConfig draws the pin representation for one pinned first-party host
// (§5.3): CA vs leaf, SPKI vs raw cert, rotation, digest diversity.
func (w *World) fpPinConfig(h *HostInfo, rng *detrand.Source, caOnly bool) (fpPinMaterial, error) {
	m := fpPinMaterial{host: h.Host, runtime: &pki.PinSet{}}

	if h.CustomPKI || h.SelfSigned {
		// Trust and pin the private anchor; embed it (the app must ship it).
		anchorStore := pki.NewRootStore("custom:" + h.Host)
		anchorStore.Add(h.CustomRoot)
		m.anchors = anchorStore
		pin := pki.NewPin(h.CustomRoot, pki.SHA256)
		m.runtime.Pins = append(m.runtime.Pins, pin)
		m.embedCert = h.CustomRoot
		m.embedPins = append(m.embedPins, pin)
		return m, nil
	}

	caPin := caOnly || rng.Bool(caPinRate)
	var target *x509.Certificate
	if caPin {
		// Intermediate or root, roughly evenly.
		target = h.Chain[1]
		if rng.Bool(0.5) && len(h.Chain) > 2 {
			target = h.Chain[2]
		}
	} else {
		target = h.Chain.Leaf()
	}

	alg := pki.SHA256
	if rng.Bool(sha1PinRate) {
		alg = pki.SHA1
	}
	pin := pki.NewPin(target, alg)
	pin.Hex = rng.Bool(hexPinRate)

	if caPin {
		m.runtime.Pins = append(m.runtime.Pins, pin)
		m.embedPins = append(m.embedPins, pin)
		// CA pins are occasionally shipped as the whole CA cert.
		if rng.Bool(0.3) {
			m.embedCert = target
		}
		return m, nil
	}

	// Leaf pin: SPKI hash vs raw certificate embedding.
	if rng.Bool(spkiPinRate) {
		m.runtime.Pins = append(m.runtime.Pins, pin)
		m.embedPins = append(m.embedPins, pin)
		// Key-reusing rotation keeps SPKI pins valid (§5.3.3).
		if h.OriginalLeaf == nil && rng.Bool(leafRotationRate) {
			if err := w.rotateLeaf(h); err != nil {
				return m, err
			}
		}
	} else {
		m.embedCert = target
		if rng.Bool(rawCertStrictRate) {
			// Truly pins the exact certificate: rotation would break it, so
			// these hosts never rotate.
			m.runtime.RawCerts = append(m.runtime.RawCerts, target)
		} else {
			// Ships the cert but effectively pins its public key.
			m.runtime.Pins = append(m.runtime.Pins, pki.NewPin(target, pki.SHA256))
			if h.OriginalLeaf == nil && rng.Bool(leafRotationRate) {
				if err := w.rotateLeaf(h); err != nil {
					return m, err
				}
			}
		}
	}
	return m, nil
}

func pickLib(rng *detrand.Source, mix map[appmodel.TLSLib]float64) appmodel.TLSLib {
	// Deterministic iteration: sort keys.
	libs := make([]string, 0, len(mix))
	for l := range mix {
		libs = append(libs, string(l))
	}
	sort.Strings(libs)
	weights := make([]float64, len(libs))
	for i, l := range libs {
		weights[i] = mix[appmodel.TLSLib(l)]
	}
	return appmodel.TLSLib(libs[rng.WeightedIndex(weights)])
}

func fpPIIKinds(r *detrand.Source) []pii.Kind {
	var kinds []pii.Kind
	if r.Bool(fpEmailRate) {
		kinds = append(kinds, pii.Email)
	}
	if r.Bool(fpStateRate) {
		kinds = append(kinds, pii.State)
	}
	if r.Bool(fpCityRate) {
		kinds = append(kinds, pii.City)
	}
	if r.Bool(fpGeoRate) {
		kinds = append(kinds, pii.GeoLat)
	}
	return kinds
}

// ensure fmt retained when debugging aids are stripped
var _ = fmt.Sprintf

// buildPackage writes the app's file tree: manifests/plists, pin material,
// SDK payload, native code — everything static analysis will scan.
func (w *World) buildPackage(app *appmodel.App, bp *blueprint, rng *detrand.Source,
	fpMats []fpPinMaterial, sdks []sdkregistry.SDK, obfuscated, embedExtra bool) {

	pkg := apppkg.New(app.ID)
	isAndroid := app.Platform == appmodel.Android

	// Collect printable pin material (unless the app obfuscates it).
	var pinStrings []string
	var certFiles []*x509.Certificate
	if !obfuscated {
		for _, m := range fpMats {
			for _, p := range m.embedPins {
				pinStrings = append(pinStrings, p.String())
			}
			if m.embedCert != nil {
				certFiles = append(certFiles, m.embedCert)
			}
		}
	}
	if bp.pins {
		app.Truth.EmbedsPinMaterial = !obfuscated
	}

	// Unused material for non-pinning apps (the static/dynamic gap).
	if embedExtra {
		h := detrand.Pick(rng.Child("extrapick"), w.pool)
		if rng.Bool(0.5) {
			certFiles = append(certFiles, h.Chain[1])
		} else {
			pinStrings = append(pinStrings, pki.NewPin(h.Chain[1], pki.SHA256).String())
		}
		app.Truth.EmbedsPinMaterial = true
	}

	if isAndroid {
		w.buildAndroidPackage(app, bp, rng, pkg, fpMats, sdks, pinStrings, certFiles, obfuscated)
	} else {
		w.buildIOSPackage(app, bp, rng, pkg, sdks, pinStrings, certFiles)
	}
	app.Pkg = pkg
}

func (w *World) buildAndroidPackage(app *appmodel.App, bp *blueprint, rng *detrand.Source,
	pkg *apppkg.Package, fpMats []fpPinMaterial, sdks []sdkregistry.SDK,
	pinStrings []string, certFiles []*x509.Certificate, obfuscated bool) {

	pkgPath := "smali/" + strings.ReplaceAll(app.ID, ".", "/")

	// NSC (the prior-work-visible mechanism). Pins land in the NSC for
	// first-party material and, failing that, for the app's pinning SDK
	// domains (developers transcribe SDK integration guides into NSCs).
	nscRef := ""
	useNSCPins := bp.pins && rng.Child("nsc").Bool(nscPinRate[bp.tier])
	plainNSC := !useNSCPins && rng.Child("nscplain").Bool(nscPlainRate)
	if useNSCPins && !obfuscated {
		var nsc apppkg.NSC
		misconfig := rng.Child("miscfg").Bool(nscMisconfigRate)
		for i, m := range fpMats {
			if len(m.embedPins) == 0 {
				continue
			}
			d := apppkg.NSCDomain{Domain: m.host, IncludeSubdomains: true}
			for _, p := range m.embedPins {
				d.Pins = append(d.Pins, nscPinOf(p))
			}
			if misconfig && i == 0 {
				d.OverridePins = true
				d.TrustAnchorSrc = "@raw/debug_ca"
			}
			nsc.Domains = append(nsc.Domains, d)
		}
		if len(nsc.Domains) == 0 {
			for _, s := range sdks {
				if !s.Pinning || len(s.PinnedDomains) == 0 {
					continue
				}
				ps := w.sdkPins[string(app.Platform)+"/"+s.Name]
				if ps == nil || len(ps.Pins) == 0 {
					continue
				}
				d := apppkg.NSCDomain{Domain: s.PinnedDomains[0], IncludeSubdomains: true}
				for _, p := range ps.Pins {
					d.Pins = append(d.Pins, nscPinOf(p))
				}
				nsc.Domains = append(nsc.Domains, d)
				break
			}
		}
		if len(nsc.Domains) > 0 {
			nscRef = "@xml/network_security_config"
			pkg.Add("res/xml/network_security_config.xml", apppkg.BuildNSC(&nsc))
			app.Truth.UsesNSCPins = true
		}
	} else if plainNSC {
		nscRef = "@xml/network_security_config"
		pkg.Add("res/xml/network_security_config.xml", apppkg.BuildNSC(&apppkg.NSC{
			Domains: []apppkg.NSCDomain{{Domain: firstOr(bp.fpContact, "example.org")}},
		}))
	}
	pkg.Add("AndroidManifest.xml", apppkg.BuildManifest(app.ID, app.Name, nscRef))

	// First-party pin code (OkHttp CertificatePinner style).
	if len(pinStrings) > 0 {
		var b strings.Builder
		b.WriteString(".class public L" + strings.ReplaceAll(app.ID, ".", "/") + "/net/PinningConfig;\n")
		for i, ps := range pinStrings {
			fmt.Fprintf(&b, "    const-string v%d, \"%s\"\n", i%16, ps)
		}
		pkg.Add(pkgPath+"/net/PinningConfig.smali", []byte(b.String()))
	}
	for i, c := range certFiles {
		name := fmt.Sprintf("assets/certs/pin_%d", i)
		if rng.ChildN("certform", i).Bool(0.6) {
			pkg.Add(name+".pem", pki.EncodePEM(c))
		} else {
			pkg.Add(name+".der", c.Raw)
		}
	}

	// SDK payload.
	for i, s := range sdks {
		r := rng.ChildN("sdkpkg", i)
		pkg.Add(s.CodePath+"/BuildConfig.smali",
			[]byte(".class public L"+s.CodePath+"/BuildConfig;\n    const-string v0, \"https://"+firstOr(s.Domains, "sdk.example")+"\"\n"))
		if !s.CertCarrier {
			continue
		}
		mat := w.sdkMaterial(app.Platform, s)
		if mat.pin != "" {
			pkg.Add(s.CodePath+"/PinRegistry.smali",
				[]byte(".class public L"+s.CodePath+"/PinRegistry;\n    const-string v0, \""+mat.pin+"\"\n"))
		}
		if mat.cert != nil && r.Bool(0.7) {
			pkg.Add(s.CodePath+"/res/ca.pem", pki.EncodePEM(mat.cert))
		}
	}

	// Native library with extractable strings.
	if rng.Child("native").Bool(nativeLibRate) {
		blob := nativeBlob(rng.Child("blob"), pinStrings, bp.fpContact)
		pkg.AddExecutable("lib/arm64-v8a/libapp.so", blob)
	}

	// Inert filler so packages are not suspiciously minimal.
	pkg.Add("res/values/strings.xml", []byte("<resources><string name=\"app_name\">"+app.Name+"</string></resources>"))
	pkg.Add("assets/config.json", []byte(fmt.Sprintf(`{"app":"%s","flags":{"analytics":true}}`, app.ID)))
}

func (w *World) buildIOSPackage(app *appmodel.App, bp *blueprint, rng *detrand.Source,
	pkg *apppkg.Package, sdks []sdkregistry.SDK,
	pinStrings []string, certFiles []*x509.Certificate) {

	appDir := "Payload/" + slugTitle(app.Name) + ".app"
	pkg.Add(appDir+"/Info.plist", apppkg.BuildInfoPlist(app.ID, app.Name))
	pkg.Add(appDir+"/embedded.mobileprovision",
		apppkg.BuildEntitlements(app.ID, app.AssociatedDomains))

	// Main binary: URLs, pin strings and embedded PEM live inside the
	// (encrypted-at-rest) executable.
	var bin strings.Builder
	bin.WriteString("\xfe\xed\xfa\xceMACH-O-SIM\x00\x00")
	for _, d := range bp.fpContact {
		bin.WriteString("https://" + d + "/api\x00")
	}
	for _, ps := range pinStrings {
		bin.WriteString(ps + "\x00")
	}
	for _, c := range certFiles {
		bin.Write(pki.EncodePEM(c))
		bin.WriteString("\x00\x01\x02")
	}
	bin.WriteString(strings.Repeat("\x00\x7f\x10", 24))
	pkg.AddExecutable(appDir+"/"+slugTitle(app.Name), []byte(bin.String()))

	// Frameworks.
	for i, s := range sdks {
		r := rng.ChildN("sdkpkg", i)
		fwDir := appDir + "/" + s.CodePath
		fwName := strings.TrimSuffix(strings.TrimPrefix(s.CodePath, "Frameworks/"), ".framework")
		var fb strings.Builder
		fb.WriteString("\xfe\xed\xfa\xceFRAMEWORK\x00")
		fb.WriteString("https://" + firstOr(s.Domains, "sdk.example") + "\x00")
		if s.CertCarrier {
			mat := w.sdkMaterial(app.Platform, s)
			if mat.pin != "" {
				fb.WriteString(mat.pin + "\x00")
			}
			if mat.cert != nil && r.Bool(0.6) {
				pkg.Add(fwDir+"/cert.der", mat.cert.Raw)
			}
		}
		pkg.AddExecutable(fwDir+"/"+fwName, []byte(fb.String()))
	}

	// Store form: executables encrypted until dumped on a jailbroken device.
	pkg.EncryptIOS()
}

// sdkMat is an SDK's embeddable material.
type sdkMat struct {
	pin  string
	cert *x509.Certificate
}

// sdkMaterial returns the (global, per-SDK) embedded material matching its
// runtime pin configuration.
func (w *World) sdkMaterial(plat appmodel.Platform, s sdkregistry.SDK) sdkMat {
	var out sdkMat
	if ps := w.sdkPins[string(plat)+"/"+s.Name]; ps != nil && len(ps.Pins) > 0 {
		out.pin = ps.Pins[0].String()
	}
	if len(s.PinnedDomains) > 0 {
		if h := w.Hosts[s.PinnedDomains[0]]; h != nil && len(h.Chain) > 1 {
			out.cert = h.Chain[1]
		}
	} else if len(s.Domains) > 0 {
		if h := w.Hosts[s.Domains[0]]; h != nil && len(h.Chain) > 1 {
			out.cert = h.Chain[1]
		}
	}
	return out
}

// nativeBlob fabricates a shared-object-like binary with embedded strings.
func nativeBlob(rng *detrand.Source, pinStrings, hosts []string) []byte {
	var b []byte
	b = append(b, 0x7f, 'E', 'L', 'F', 2, 1, 1, 0)
	junk := make([]byte, 96)
	rng.Read(junk)
	b = append(b, junk...)
	for _, h := range hosts {
		b = append(b, []byte("https://"+h)...)
		b = append(b, 0)
	}
	if rng.Bool(0.35) {
		for _, ps := range pinStrings {
			b = append(b, []byte(ps)...)
			b = append(b, 0)
		}
	}
	more := make([]byte, 64)
	rng.Read(more)
	return append(b, more...)
}

// nscPinOf renders a pin as an NSC <pin> entry.
func nscPinOf(p pki.Pin) apppkg.NSCPin {
	digest := "SHA-256"
	if p.Alg == pki.SHA1 {
		digest = "SHA-1"
	}
	s := p.String()
	return apppkg.NSCPin{Digest: digest, Value: s[strings.Index(s, "/")+1:]}
}

func firstOr(s []string, def string) string {
	if len(s) > 0 {
		return s[0]
	}
	return def
}

func slugTitle(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "App"
	}
	return b.String()
}
