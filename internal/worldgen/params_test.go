package worldgen

import (
	"testing"

	"pinscope/internal/appmodel"
)

// TestRateTablesAreProbabilities guards against calibration edits pushing
// any probability outside [0,1].
func TestRateTablesAreProbabilities(t *testing.T) {
	check := func(name string, v float64) {
		t.Helper()
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v outside [0,1]", name, v)
		}
	}
	for plat, tiers := range dynPinRate {
		for tier, v := range tiers {
			check("dynPinRate["+string(plat)+"]["+string(tier)+"]", v)
		}
	}
	for plat, tiers := range staticExtraRate {
		for tier, v := range tiers {
			check("staticExtraRate["+string(plat)+"]["+string(tier)+"]", v)
		}
	}
	for tier, v := range nscPinRate {
		check("nscPinRate["+string(tier)+"]", v)
	}
	for plat, tiers := range weakGenericRate {
		for tier, v := range tiers {
			check("weakGenericRate["+string(plat)+"]["+string(tier)+"]", v)
		}
	}
	for plat, tiers := range weakPinnedRate {
		for tier, v := range tiers {
			check("weakPinnedRate["+string(plat)+"]["+string(tier)+"]", v)
		}
	}
	for _, v := range []float64{
		obfuscationRate, nscPlainRate, nscMisconfigRate,
		caPinRate, sdkCAPinRate, spkiPinRate, rawCertStrictRate,
		sha1PinRate, hexPinRate, leafRotationRate,
		customPKIRateAndroid, customPKIRateIOS, selfSignedRate, flakyHostRate,
		pinMechanismFirstParty, pinMechanismBoth,
		androidPinAllFPRate, iosPinAllFPRate,
		sdkOnlyNoFPRateAndroid, sdkOnlyNoFPRateIOS, pinEverythingRate,
		fpEmailRate, fpStateRate, fpCityRate, fpGeoRate,
		cdnAdIDRate, adPoolAdIDRate,
		fpPinnedAdIDRateAndroid, fpPinnedAdIDRateIOS,
		assocDomainRate, whoisPrivateRate, serverResetRate, nativeLibRate,
		redundantConnRate, fpExtraConnRate, lateConnRate, usedConnRate,
	} {
		check("const", v)
	}
}

func TestLibMixesSumToOne(t *testing.T) {
	for name, mix := range map[string]map[appmodel.Platform]map[appmodel.TLSLib]float64{
		"fpLibMix": fpLibMix, "fpPinnedLibMix": fpPinnedLibMix,
	} {
		for plat, m := range mix {
			var sum float64
			for _, w := range m {
				if w < 0 {
					t.Fatalf("%s[%s] negative weight", name, plat)
				}
				sum += w
			}
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("%s[%s] sums to %v", name, plat, sum)
			}
		}
	}
}

func TestArrivalBucketsCoverHour(t *testing.T) {
	var total float64
	for _, b := range arrivalBuckets {
		if b.min >= b.max {
			t.Fatalf("bucket [%v,%v) empty", b.min, b.max)
		}
		total += b.w
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("bucket weights sum to %v", total)
	}
	last := arrivalBuckets[len(arrivalBuckets)-1]
	if last.max != 60 {
		t.Fatalf("arrival window ends at %v, want 60", last.max)
	}
}

func TestPairClassWeightsMatchPaperCounts(t *testing.T) {
	var pin, total float64
	for _, cw := range pairClassWeights {
		total += cw.w
		if cw.class != pairNeither {
			pin += cw.w
		}
	}
	if total != 575 {
		t.Fatalf("pair weights total %v, want 575 (the common dataset size)", total)
	}
	if pin != 69 {
		t.Fatalf("pinning pair weight %v, want 69 (the paper's count)", pin)
	}
}

func TestCatPinMultShape(t *testing.T) {
	if catPinMult["Finance"] <= catPinMult["Games"] {
		t.Fatal("Finance must out-pin Games")
	}
	if catPinMult["Games"] >= 0.5 {
		t.Fatal("Games multiplier should be strongly suppressed")
	}
	for cat, m := range catPinMult {
		if m <= 0 || m > 5 {
			t.Fatalf("catPinMult[%s] = %v implausible", cat, m)
		}
	}
}
